// Package mindetail is a from-scratch Go implementation of
//
//	M. O. Akinde, O. G. Jensen, and M. H. Böhlen.
//	"Minimizing Detail Data in Data Warehouses." EDBT 1998.
//
// It derives, for a materialized GPSJ view (a generalized project-select-
// join view: grouping and aggregation over selections over key joins), the
// unique minimal set of auxiliary views such that the view and the
// auxiliary views together are self-maintainable — maintainable under
// insertions, deletions, and updates to the base tables without ever
// accessing the sources. The derivation combines local reductions, join
// reductions, and the paper's smart duplicate compression, and omits
// auxiliary views (typically the huge fact table's) when the Section 3.3
// elimination conditions hold.
//
// The top-level entry point is the Warehouse, driven by a small SQL
// dialect:
//
//	w := mindetail.New()
//	w.MustExec(`CREATE TABLE sale (id INTEGER PRIMARY KEY, ...)`)
//	w.MustExec(`CREATE MATERIALIZED VIEW product_sales AS SELECT ...`)
//	w.MustExec(`INSERT INTO sale VALUES (...)`)   // propagates to the view
//	rel, err := w.Query("product_sales")
//
// After w.DetachSources() the operational sources become unreachable and
// changes arrive as explicit deltas via w.ApplyDelta — the scenario the
// paper targets.
//
// The exported names below are stable aliases into the implementation
// packages; see DESIGN.md for the package map.
package mindetail

import (
	"fmt"
	"io"
	"sort"

	"mindetail/internal/core"
	"mindetail/internal/gpsj"
	"mindetail/internal/maintain"
	"mindetail/internal/persist"
	"mindetail/internal/ra"
	"mindetail/internal/schema"
	"mindetail/internal/sizing"
	"mindetail/internal/sqlparse"
	"mindetail/internal/tuple"
	"mindetail/internal/types"
	"mindetail/internal/wal"
	"mindetail/internal/warehouse"
	"mindetail/internal/workload"
)

// Warehouse owns sources, catalog, and materialized views (see
// internal/warehouse).
type Warehouse = warehouse.Warehouse

// StorageReport summarizes base-versus-auxiliary storage per view.
type StorageReport = warehouse.StorageReport

// New creates an empty warehouse.
func New() *Warehouse { return warehouse.New() }

// FormatReport renders storage reports as a table.
func FormatReport(reports []StorageReport) string { return warehouse.FormatReport(reports) }

// Value is a scalar runtime value; build them with Int, Float, Str, Bool.
type Value = types.Value

// Int returns an integer value.
func Int(v int64) Value { return types.Int(v) }

// Float returns a float value.
func Float(v float64) Value { return types.Float(v) }

// Str returns a string value.
func Str(v string) Value { return types.Str(v) }

// Bool returns a boolean value.
func Bool(v bool) Value { return types.Bool(v) }

// Tuple is a row of values.
type Tuple = tuple.Tuple

// Relation is a materialized result with a schema; Format renders it.
type Relation = ra.Relation

// Delta is a change to one base table, for ApplyDelta after detaching.
type Delta = maintain.Delta

// Update is one in-place row update with old and new images.
type Update = maintain.Update

// View is a validated GPSJ view definition.
type View = gpsj.View

// Plan is the result of the paper's Algorithm 3.2: the extended join graph
// and one (possibly omitted) auxiliary view per base table.
type Plan = core.Plan

// AuxView is one derived auxiliary view.
type AuxView = core.AuxView

// Catalog holds base-table schemas and integrity constraints.
type Catalog = schema.Catalog

// Derive parses a view body against a catalog and runs the paper's
// derivation, without materializing anything — for inspecting what the
// minimal detail data for a view would be.
func Derive(cat *Catalog, name, selectSQL string) (*Plan, error) {
	s, err := sqlparse.Parse(selectSQL)
	if err != nil {
		return nil, err
	}
	sel, ok := s.(*sqlparse.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("mindetail: Derive expects a SELECT statement, got %T", s)
	}
	v, err := gpsj.FromSelect(cat, name, sel)
	if err != nil {
		return nil, err
	}
	return core.Derive(v)
}

// DeriveAppendOnly is Derive under the paper's Section 4 append-only
// relaxation: base tables only receive insertions, so MIN/MAX become
// completely self-maintainable and compress into the auxiliary views.
func DeriveAppendOnly(cat *Catalog, name, selectSQL string) (*Plan, error) {
	s, err := sqlparse.Parse(selectSQL)
	if err != nil {
		return nil, err
	}
	sel, ok := s.(*sqlparse.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("mindetail: DeriveAppendOnly expects a SELECT statement, got %T", s)
	}
	v, err := gpsj.FromSelect(cat, name, sel)
	if err != nil {
		return nil, err
	}
	return core.DeriveAppendOnly(v)
}

// SharedPlan is the minimal detail data for a class of views (the
// Section 4 generalization): one auxiliary-view set serving them all.
type SharedPlan = core.SharedPlan

// DeriveShared derives one shared minimal auxiliary-view set for a class
// of views, each given as "name: SELECT ...".
func DeriveShared(cat *Catalog, views map[string]string) (*SharedPlan, error) {
	var vs []*gpsj.View
	// Deterministic order by name.
	names := make([]string, 0, len(views))
	for n := range views {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s, err := sqlparse.Parse(views[n])
		if err != nil {
			return nil, err
		}
		sel, ok := s.(*sqlparse.SelectStmt)
		if !ok {
			return nil, fmt.Errorf("mindetail: view %s is not a SELECT", n)
		}
		v, err := gpsj.FromSelect(cat, n, sel)
		if err != nil {
			return nil, err
		}
		vs = append(vs, v)
	}
	return core.DeriveShared(vs)
}

// SharedEngines maintains a class of views over one shared auxiliary-view
// set (see internal/maintain).
type SharedEngines = maintain.SharedEngines

// NewSharedEngines builds a maintenance coordinator for a shared plan;
// call Init with source relations before applying deltas. A malformed
// shared plan is reported as an error, not a panic.
func NewSharedEngines(sp *SharedPlan) (*SharedEngines, error) { return maintain.NewSharedEngines(sp) }

// Save snapshots the warehouse state to a writer; with includeSources the
// source tables are written too and the restored warehouse starts
// attached, otherwise it restores detached (sources are external, per the
// paper's architecture).
func Save(w *Warehouse, out io.Writer, includeSources bool) error {
	return persist.Save(w, out, includeSources)
}

// Load restores a warehouse from a snapshot written by Save.
func Load(in io.Reader) (*Warehouse, error) { return persist.Load(in) }

// Durable is a warehouse bound to an on-disk directory holding a snapshot
// and a write-ahead log: every mutation is logged before it is applied, so
// a crash at any instant loses nothing that was acknowledged (see
// internal/wal and DESIGN.md §10).
type Durable = wal.Durable

// DurableOptions configures OpenDurable (fsync policy).
type DurableOptions = wal.Options

// Sync policies for the write-ahead log, strongest first.
const (
	// SyncAlways fsyncs every record — intents and outcomes.
	SyncAlways = wal.SyncAlways
	// SyncCommit fsyncs once per durable mutation, on the commit record.
	SyncCommit = wal.SyncCommit
	// SyncNever leaves flushing to the OS (tests and benchmarks).
	SyncNever = wal.SyncNever
)

// OpenDurable opens (or creates) a durable warehouse in dir. Recovery is
// automatic: the snapshot is restored and the committed suffix of the log
// is replayed through the normal maintenance path. Call Checkpoint to
// compact the log and Close to release the directory.
func OpenDurable(dir string, opts DurableOptions) (*Durable, error) { return wal.Open(dir, opts) }

// RetailParams sizes the paper's Section 1.1 retail workload.
type RetailParams = workload.RetailParams

// PaperRetailParams returns the paper's full-scale case-study parameters
// (13.14 billion fact tuples).
func PaperRetailParams() RetailParams { return workload.PaperParams() }

// SizeModel is the paper's tuples × fields × 4 bytes storage estimate.
type SizeModel = sizing.Model
