// Benchmarks regenerating the paper's tables and figures and timing the
// ablations of DESIGN.md. One benchmark per artifact:
//
//	Table 1 / Table 2  — aggregate classification (E1, E2)
//	Table 3 / Table 4  — smart duplicate compression instances (E3, E4)
//	Figure 2           — extended join graph construction (E5)
//	Section 1.1        — storage sizing, analytic and materialized (E6)
//	A1–A7              — ablations (compression sweep, maintenance
//	                     strategies, elimination, Need sets, selectivity,
//	                     append-only, shared classes)
//
// Run with: go test -bench=. -benchmem
package mindetail_test

import (
	"fmt"
	"testing"

	"mindetail/internal/aggregates"
	"mindetail/internal/core"
	"mindetail/internal/experiments"
	"mindetail/internal/maintain"
	"mindetail/internal/ra"
	"mindetail/internal/sizing"
	"mindetail/internal/tuple"
	"mindetail/internal/types"
	"mindetail/internal/workload"
)

// benchScale keeps materialized benchmarks laptop-sized; the analytic
// models extrapolate to the paper's 13.14e9-tuple scale.
const benchScale = 20000

// BenchmarkTable1Classification regenerates Table 1 (E1).
func BenchmarkTable1Classification(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if rows := aggregates.FormatTable1(); len(rows) != 4 {
			b.Fatal("bad table 1")
		}
	}
}

// BenchmarkTable2Replacement regenerates Table 2 (E2).
func BenchmarkTable2Replacement(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if rows := aggregates.FormatTable2(); len(rows) != 4 {
			b.Fatal("bad table 2")
		}
	}
}

// BenchmarkTable3AuxViewCountStar regenerates Table 3 (E3): the sale
// auxiliary view instance after adding COUNT(*).
func BenchmarkTable3AuxViewCountStar(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4DuplicateCompression regenerates Table 4 (E4): the same
// instance after smart duplicate compression.
func BenchmarkTable4DuplicateCompression(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table4(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2JoinGraph regenerates Figure 2 (E5): building and
// annotating the extended join graph and deriving the auxiliary views.
func BenchmarkFigure2JoinGraph(b *testing.B) {
	b.ReportAllocs()
	env, err := experiments.NewEnv(workload.RetailParams{
		Days: 2, Stores: 1, Products: 2, ProductsSoldPerDay: 1,
		TransactionsPerProduct: 1, Brands: 1, SelectYear: 1997, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	v, err := env.View("product_sales", workload.ProductSalesSQL(1997))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := core.Derive(v)
		if err != nil {
			b.Fatal(err)
		}
		if p.Graph.Root != "sale" {
			b.Fatal("wrong root")
		}
	}
}

// BenchmarkSizingSection11Analytic evaluates the paper's storage arithmetic
// (E6, analytic part).
func BenchmarkSizingSection11Analytic(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fact := sizing.PaperFactTable()
		aux := sizing.PaperAuxView()
		if fact.Bytes() != 262_800_000_000 || aux.Bytes() != 175_200_000 {
			b.Fatal("paper numbers drifted")
		}
	}
}

// BenchmarkSizingSection11Materialized measures the E6 validation run: load
// the scaled retail workload and materialize the minimal auxiliary views.
func BenchmarkSizingSection11Materialized(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env, err := experiments.NewEnv(workload.ScaledDown(benchScale))
		if err != nil {
			b.Fatal(err)
		}
		eng, err := env.MinimalEngine(workload.ProductSalesSQL(1997))
		if err != nil {
			b.Fatal(err)
		}
		if eng.Aux("sale").Len() == 0 {
			b.Fatal("empty aux view")
		}
	}
}

// maintenanceBench streams deltas through an engine, measuring per-delta
// cost. The engine initializes before the timer starts.
func maintenanceBench(b *testing.B, build func(*experiments.Env) (func(maintain.Delta) error, error), mix workload.Mix) {
	b.ReportAllocs()
	env, err := experiments.NewEnv(workload.ScaledDown(benchScale))
	if err != nil {
		b.Fatal(err)
	}
	apply, err := build(env)
	if err != nil {
		b.Fatal(err)
	}
	mut := workload.NewMutator(env.DB, env.Params)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d, err := mut.Next(mix)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := apply(d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMaintainMinimal measures the paper's engine on the default mix
// (A2, minimal strategy).
func BenchmarkMaintainMinimal(b *testing.B) {
	b.ReportAllocs()
	maintenanceBench(b, func(env *experiments.Env) (func(maintain.Delta) error, error) {
		eng, err := env.MinimalEngine(workload.CSMASOnlySQL(1997))
		if err != nil {
			return nil, err
		}
		return eng.Apply, nil
	}, workload.DefaultMix())
}

// BenchmarkMaintainPSJ measures the Quass-style PSJ baseline (A2).
func BenchmarkMaintainPSJ(b *testing.B) {
	b.ReportAllocs()
	maintenanceBench(b, func(env *experiments.Env) (func(maintain.Delta) error, error) {
		eng, err := env.PSJEngine(workload.CSMASOnlySQL(1997))
		if err != nil {
			return nil, err
		}
		return eng.Apply, nil
	}, workload.DefaultMix())
}

// BenchmarkMaintainRecompute measures per-batch recomputation over a full
// replica (A2). Expected to lose to both incremental engines by orders of
// magnitude.
func BenchmarkMaintainRecompute(b *testing.B) {
	b.ReportAllocs()
	maintenanceBench(b, func(env *experiments.Env) (func(maintain.Delta) error, error) {
		rep, err := env.Replica(workload.CSMASOnlySQL(1997), true)
		if err != nil {
			return nil, err
		}
		return rep.Apply, nil
	}, workload.DefaultMix())
}

// BenchmarkMaintainPaperViewWithDistinct measures the full paper view,
// whose COUNT(DISTINCT brand) forces partial recomputation from the
// auxiliary views on deletions and brand renames.
func BenchmarkMaintainPaperViewWithDistinct(b *testing.B) {
	b.ReportAllocs()
	maintenanceBench(b, func(env *experiments.Env) (func(maintain.Delta) error, error) {
		eng, err := env.MinimalEngine(workload.ProductSalesSQL(1997))
		if err != nil {
			return nil, err
		}
		return eng.Apply, nil
	}, workload.DefaultMix())
}

// BenchmarkMaintainEliminatedRoot measures maintenance with the fact
// auxiliary view omitted (A3): inserts and deletes self-maintain from the
// deltas alone.
func BenchmarkMaintainEliminatedRoot(b *testing.B) {
	b.ReportAllocs()
	maintenanceBench(b, func(env *experiments.Env) (func(maintain.Delta) error, error) {
		eng, err := env.MinimalEngine(workload.EliminationSQL())
		if err != nil {
			return nil, err
		}
		if eng.Aux("sale") != nil {
			return nil, fmt.Errorf("sale aux should be omitted")
		}
		return eng.Apply, nil
	}, workload.InsertOnlyMix())
}

// needSetsBench measures A4 with the Need-set optimization toggled.
func needSetsBench(b *testing.B, use bool) {
	viewSQL := `SELECT time.month, SUM(price) AS TotalPrice, COUNT(*) AS TotalCount
		FROM sale, time, product, store
		WHERE time.year = 1997 AND sale.timeid = time.id
		  AND sale.productid = product.id AND sale.storeid = store.id
		GROUP BY time.month`
	maintenanceBench(b, func(env *experiments.Env) (func(maintain.Delta) error, error) {
		v, err := env.View("v", viewSQL)
		if err != nil {
			return nil, err
		}
		p, err := core.Derive(v)
		if err != nil {
			return nil, err
		}
		eng, err := maintain.NewEngine(p)
		if err != nil {
			return nil, err
		}
		eng.UseNeedSets = use
		if err := eng.Init(env.Src); err != nil {
			return nil, err
		}
		return eng.Apply, nil
	}, workload.DefaultMix())
}

// BenchmarkMaintainNeedSetsOn measures Need-set-restricted delta joins (A4).
func BenchmarkMaintainNeedSetsOn(b *testing.B) { needSetsBench(b, true) }

// BenchmarkMaintainNeedSetsOff measures joining every auxiliary view (A4).
func BenchmarkMaintainNeedSetsOff(b *testing.B) { needSetsBench(b, false) }

// BenchmarkCompressionSweep measures the A1 sweep end to end (load +
// derive + materialize at several duplication factors).
func BenchmarkCompressionSweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.AblationCompression([]int{1, 10})
		if err != nil {
			b.Fatal(err)
		}
		if pts[1].Ratio <= pts[0].Ratio {
			b.Fatal("compression did not scale with duplication")
		}
	}
}

// BenchmarkSelectivitySweep measures the A5 local-reduction sweep.
func BenchmarkSelectivitySweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationSelectivity([]float64{0.25, 1.0}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReconstruction measures rebuilding V from the auxiliary views
// alone (the Section 3.2 reconstruction query).
func BenchmarkReconstruction(b *testing.B) {
	b.ReportAllocs()
	env, err := experiments.NewEnv(workload.ScaledDown(benchScale))
	if err != nil {
		b.Fatal(err)
	}
	v, err := env.View("v", workload.ProductSalesSQL(1997))
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.Derive(v)
	if err != nil {
		b.Fatal(err)
	}
	aux, err := p.Materialize(env.Src)
	if err != nil {
		b.Fatal(err)
	}
	rec, err := p.Reconstruction()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var out *ra.Relation
	for i := 0; i < b.N; i++ {
		out, err = rec.Eval(aux)
		if err != nil {
			b.Fatal(err)
		}
	}
	if out.Len() == 0 {
		b.Fatal("empty reconstruction")
	}
}

// BenchmarkDeriveAlgorithm32 measures the derivation itself — parsing,
// normalization, join graph, Need sets, Algorithm 3.1/3.2.
func BenchmarkDeriveAlgorithm32(b *testing.B) {
	b.ReportAllocs()
	env, err := experiments.NewEnv(workload.RetailParams{
		Days: 2, Stores: 1, Products: 2, ProductsSoldPerDay: 1,
		TransactionsPerProduct: 1, Brands: 1, SelectYear: 1997, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := env.View("product_sales", workload.ProductSalesSQL(1997))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.Derive(v); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppendOnlyDerivation measures the A6 ablation end to end.
func BenchmarkAppendOnlyDerivation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationAppendOnly(5000)
		if err != nil {
			b.Fatal(err)
		}
		if r.RelaxedRows >= r.StandardRows {
			b.Fatal("append-only compression ineffective")
		}
	}
}

// BenchmarkSharedDerivation measures the A7 class derivation and
// materialization end to end.
func BenchmarkSharedDerivation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rs, err := experiments.AblationSharing(5000)
		if err != nil {
			b.Fatal(err)
		}
		if len(rs) != 2 {
			b.Fatal("bad sharing result")
		}
	}
}

// applySmallDeltaLargeAuxParams sizes the headline delta-scoped benchmark:
// ≥20k-row sale auxiliary view (low duplicate compression), fine group-by
// granularity so a 1-row delta touches a tiny fraction of the warehouse.
func applySmallDeltaLargeAuxParams() workload.RetailParams {
	return workload.RetailParams{
		Days: 730, Stores: 2, Products: 5000, ProductsSoldPerDay: 50,
		TransactionsPerProduct: 1, Brands: 50, SelectYear: 1997, Seed: 1,
	}
}

// applySmallDeltaLargeAuxSQL is a paper-style view with COUNT(DISTINCT ...)
// so that every deletion-carrying delta forces group recomputation from the
// auxiliary views — the path the delta-scoped pipeline optimizes.
const applySmallDeltaLargeAuxSQL = `SELECT time.month, time.day, SUM(price) AS TotalPrice,
	COUNT(*) AS TotalCount, COUNT(DISTINCT brand) AS DifferentBrands
FROM sale, time, product
WHERE time.year = 1997 AND sale.timeid = time.id AND sale.productid = product.id
GROUP BY time.month, time.day`

// BenchmarkApplySmallDeltaLargeAux is the tentpole's headline number: a
// 1-row update delta (delete+insert pair) against ≥20k-row auxiliary views.
// Self-maintenance should cost O(|delta| + |affected group|), not
// O(|auxiliary views|).
func BenchmarkApplySmallDeltaLargeAux(b *testing.B) {
	b.ReportAllocs()
	env, err := experiments.NewEnv(applySmallDeltaLargeAuxParams())
	if err != nil {
		b.Fatal(err)
	}
	eng, err := env.MinimalEngine(applySmallDeltaLargeAuxSQL)
	if err != nil {
		b.Fatal(err)
	}
	if n := eng.Aux("sale").Len(); n < 20000 {
		b.Fatalf("sale auxiliary view has %d rows, want >= 20000", n)
	}
	// Sale 1 references timeid 1 (day 0), which falls in the selected year.
	old := env.DB.Table("sale").Get(types.Int(1))
	if old == nil {
		b.Fatal("sale 1 missing")
	}
	alt := old.Clone()
	alt[4] = types.Float(old[4].AsFloat() + 1)
	imgs := [2]tuple.Tuple{old, alt}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := maintain.Delta{Table: "sale", Updates: []maintain.Update{
			{Old: imgs[i%2], New: imgs[(i+1)%2]},
		}}
		if err := eng.Apply(d); err != nil {
			b.Fatal(err)
		}
	}
}

var benchKeySink string

// BenchmarkGroupKeyEncode measures the group-key encoding used by every
// group lookup on the maintenance hot path.
func BenchmarkGroupKeyEncode(b *testing.B) {
	row := tuple.Tuple{
		types.Int(7), types.Str("brand42"), types.Float(19.5),
		types.Int(1997), types.Str("cat3"),
	}
	pos := []int{0, 1, 3}
	b.Run("KeyAt", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchKeySink = row.KeyAt(pos)
		}
	})
	// AppendKeyAt is the scratch-buffer form the hot loops use: zero
	// allocations once the buffer has grown.
	b.Run("AppendKeyAt", func(b *testing.B) {
		b.ReportAllocs()
		var buf []byte
		for i := 0; i < b.N; i++ {
			buf = row.AppendKeyAt(buf[:0], pos)
		}
		benchKeySink = string(buf)
	})
}
