package mindetail_test

import (
	"fmt"
	"strings"
	"testing"

	"mindetail"
)

const ddl = `
CREATE TABLE time (id INTEGER PRIMARY KEY, day INTEGER, month INTEGER, year INTEGER);
CREATE TABLE product (id INTEGER PRIMARY KEY, brand VARCHAR MUTABLE, category VARCHAR);
CREATE TABLE sale (id INTEGER PRIMARY KEY,
	timeid INTEGER REFERENCES time,
	productid INTEGER REFERENCES product,
	price FLOAT MUTABLE);
INSERT INTO time VALUES (1, 5, 1, 1997), (2, 6, 2, 1997);
INSERT INTO product VALUES (100, 'acme', 'tools'), (101, 'bolt', 'tools');
INSERT INTO sale VALUES (1, 1, 100, 10), (2, 1, 100, 10), (3, 2, 101, 5);
`

func TestPublicAPIEndToEnd(t *testing.T) {
	w := mindetail.New()
	w.MustExec(ddl)
	w.MustExec(`
		CREATE MATERIALIZED VIEW product_sales AS
		SELECT time.month, SUM(price) AS TotalPrice, COUNT(*) AS TotalCount
		FROM sale, time WHERE sale.timeid = time.id AND time.year = 1997
		GROUP BY time.month`)
	w.MustExec(`INSERT INTO sale VALUES (4, 2, 100, 2.5)`)
	rel, err := w.Query("product_sales")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Fatalf("view:\n%s", rel.Format())
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}

	// Detach and keep maintaining via deltas.
	w.DetachSources()
	err = w.ApplyDelta(mindetail.Delta{
		Table: "sale",
		Inserts: []mindetail.Tuple{{
			mindetail.Int(5), mindetail.Int(1), mindetail.Int(101), mindetail.Float(7),
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rel, err = w.Query("product_sales")
	if err != nil {
		t.Fatal(err)
	}
	s := rel.Sorted()
	if s.Rows[0][1].AsFloat() != 27 || s.Rows[0][2].AsInt() != 3 {
		t.Errorf("month 1 after detached insert = %v", s.Rows[0])
	}
}

func TestPublicDerive(t *testing.T) {
	w := mindetail.New()
	w.MustExec(ddl)
	plan, err := mindetail.Derive(w.Catalog(), "ps", `
		SELECT time.month, SUM(price) AS TotalPrice, COUNT(*) AS TotalCount
		FROM sale, time WHERE sale.timeid = time.id AND time.year = 1997
		GROUP BY time.month`)
	if err != nil {
		t.Fatal(err)
	}
	text := plan.Text()
	for _, want := range []string{"sale_dtl", "time_dtl", "SUM(price)", "COUNT(*)"} {
		if !strings.Contains(text, want) {
			t.Errorf("Plan.Text missing %q:\n%s", want, text)
		}
	}
	if _, err := mindetail.Derive(w.Catalog(), "bad", `INSERT INTO sale VALUES (9, 1, 100, 1)`); err == nil {
		t.Error("non-SELECT accepted by Derive")
	}
	if _, err := mindetail.Derive(w.Catalog(), "bad", `SELECT nope FROM`); err == nil {
		t.Error("parse error not propagated")
	}
}

func TestPaperScaleModels(t *testing.T) {
	p := mindetail.PaperRetailParams()
	if p.FactTuples() != 13_140_000_000 {
		t.Errorf("paper fact tuples = %d", p.FactTuples())
	}
}

func ExampleWarehouse() {
	w := mindetail.New()
	w.MustExec(`
		CREATE TABLE product (id INTEGER PRIMARY KEY, brand VARCHAR);
		CREATE TABLE sale (id INTEGER PRIMARY KEY,
			productid INTEGER REFERENCES product, price FLOAT);
		INSERT INTO product VALUES (1, 'acme');
		INSERT INTO sale VALUES (1, 1, 10), (2, 1, 5);
		CREATE MATERIALIZED VIEW totals AS
		SELECT product.id AS id, SUM(price) AS total, COUNT(*) AS cnt
		FROM sale, product WHERE sale.productid = product.id
		GROUP BY product.id;
	`)
	w.MustExec(`INSERT INTO sale VALUES (3, 1, 2.5)`)
	rel, _ := w.Query("totals")
	fmt.Print(rel.Format())
	// Output:
	// id | total | cnt
	// ---+-------+----
	// 1  | 17.5  | 3
	// (1 rows)
}

func TestPublicDeriveShared(t *testing.T) {
	w := mindetail.New()
	w.MustExec(ddl)
	sp, err := mindetail.DeriveShared(w.Catalog(), map[string]string{
		"by_month": `SELECT time.month, SUM(price) AS total, COUNT(*) AS cnt
			FROM sale, time WHERE sale.timeid = time.id GROUP BY time.month`,
		"by_product": `SELECT sale.productid, SUM(price) AS total, COUNT(*) AS cnt
			FROM sale GROUP BY sale.productid`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Views) != 2 {
		t.Fatalf("views = %d", len(sp.Views))
	}
	if !strings.Contains(sp.Text(), "shared auxiliary views") {
		t.Errorf("Text:\n%s", sp.Text())
	}
	if _, err := mindetail.DeriveShared(w.Catalog(), map[string]string{"bad": "SELECT nope FROM"}); err == nil {
		t.Error("bad view accepted")
	}
}

func TestPublicSaveLoad(t *testing.T) {
	w := mindetail.New()
	w.MustExec(ddl)
	w.MustExec(`
		CREATE MATERIALIZED VIEW t AS
		SELECT sale.productid, SUM(price) AS total, COUNT(*) AS cnt
		FROM sale GROUP BY sale.productid`)
	var buf strings.Builder
	if err := mindetail.Save(w, &buf, false); err != nil {
		t.Fatal(err)
	}
	r, err := mindetail.Load(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Detached() {
		t.Error("restored warehouse should be detached")
	}
	rel, err := r.Query("t")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := w.Query("t")
	if rel.Len() != want.Len() {
		t.Errorf("restored view:\n%s\nwant:\n%s", rel.Format(), want.Format())
	}
}

func TestPublicOpenDurable(t *testing.T) {
	dir := t.TempDir()
	d, err := mindetail.OpenDurable(dir, mindetail.DurableOptions{Sync: mindetail.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	w := d.Warehouse()
	w.MustExec(ddl)
	w.MustExec(`
		CREATE MATERIALIZED VIEW t AS
		SELECT sale.productid, SUM(price) AS total, COUNT(*) AS cnt
		FROM sale GROUP BY sale.productid`)
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	w.MustExec(`INSERT INTO sale VALUES (4, 2, 101, 2.5)`)
	want, err := w.Query("t")
	if err != nil {
		t.Fatal(err)
	}
	wantText := want.Format()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: snapshot + committed log suffix must reproduce the view.
	r, err := mindetail.OpenDurable(dir, mindetail.DurableOptions{Sync: mindetail.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rel, err := r.Warehouse().Query("t")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Format() != wantText {
		t.Errorf("recovered view:\n%s\nwant:\n%s", rel.Format(), wantText)
	}
}
