// MinMax: the paper's Section 3.2 product_sales_max example — non-CSMAS
// aggregates under smart duplicate compression.
//
// MAX(price) is not completely self-maintainable (Table 1: deletions may
// remove the extremum), so price must stay a plain attribute of the
// auxiliary view; SUM(price) over the same attribute is then reconstructed
// as SUM(price * SaleCount) — the f(a·cnt0) rule. Insertions use the SMA
// fast path; deleting the extremum repairs the group from the auxiliary
// view alone.
//
//	go run ./examples/minmax
package main

import (
	"fmt"
	"log"

	"mindetail"
)

func main() {
	w := mindetail.New()
	w.MustExec(`
		CREATE TABLE sale (id INTEGER PRIMARY KEY, productid INTEGER, price FLOAT MUTABLE);
		INSERT INTO sale VALUES
			(1, 100, 10), (2, 100, 10), (3, 100, 25),
			(4, 101, 5),  (5, 101, 5);
	`)

	const viewSQL = `
		SELECT sale.productid, MAX(sale.price) AS MaxPrice,
		       SUM(sale.price) AS TotalPrice, COUNT(*) AS TotalCount
		FROM sale GROUP BY sale.productid`

	plan, err := mindetail.Derive(w.Catalog(), "product_sales_max", viewSQL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== derivation (Section 3.2 example) ===")
	fmt.Println(plan.Text())
	fmt.Println("note: price stays plain (it feeds MAX); duplicates compress per (productid, price).")
	fmt.Println()

	w.MustExec(`CREATE MATERIALIZED VIEW product_sales_max AS ` + viewSQL)
	show(w, "initially")

	// Insertion: MAX is self-maintainable for insertions (Table 1) — the
	// engine raises the extremum without touching the auxiliary views.
	w.MustExec(`INSERT INTO sale VALUES (6, 100, 40)`)
	show(w, "after inserting a new maximum (40)")

	// Deleting the extremum: MAX cannot be adjusted incrementally; the
	// group is recomputed from the auxiliary view — never from the base
	// table.
	w.MustExec(`DELETE FROM sale WHERE id = 6`)
	show(w, "after deleting the maximum again")

	// An update that moves the extremum.
	w.MustExec(`UPDATE sale SET price = 1 WHERE id = 3`)
	show(w, "after updating the old maximum down to 1")

	if err := w.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified against full recomputation.")
}

func show(w *mindetail.Warehouse, when string) {
	rel, err := w.Query("product_sales_max")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("--- product_sales_max %s ---\n%s\n", when, rel.Format())
}
