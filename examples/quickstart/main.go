// Quickstart: the paper's Section 1.1 running example, end to end.
//
// Defines the retail star schema, materializes the product_sales view,
// shows the derived minimal auxiliary views (local + join reductions +
// smart duplicate compression), applies changes, and proves the view stays
// correct after the sources are detached.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mindetail"
)

func main() {
	w := mindetail.New()

	// The paper's schema: one fact table, three dimensions, referential
	// integrity from the fact table to each dimension key.
	w.MustExec(`
		CREATE TABLE time (id INTEGER PRIMARY KEY, day INTEGER, month INTEGER, year INTEGER);
		CREATE TABLE product (id INTEGER PRIMARY KEY, brand VARCHAR MUTABLE, category VARCHAR);
		CREATE TABLE store (id INTEGER PRIMARY KEY, street_address VARCHAR, city VARCHAR, country VARCHAR, manager VARCHAR MUTABLE);
		CREATE TABLE sale (id INTEGER PRIMARY KEY,
			timeid INTEGER REFERENCES time,
			productid INTEGER REFERENCES product,
			storeid INTEGER REFERENCES store,
			price FLOAT);

		INSERT INTO time VALUES (1, 5, 1, 1997), (2, 20, 1, 1997), (3, 7, 2, 1997), (4, 9, 2, 1998);
		INSERT INTO product VALUES (100, 'acme', 'tools'), (101, 'bolt', 'tools'), (102, 'cask', 'food');
		INSERT INTO store VALUES (7, '1 main st', 'aalborg', 'dk', 'kim');
		INSERT INTO sale VALUES
			(1, 1, 100, 7, 12.50), (2, 1, 100, 7, 12.50), (3, 1, 101, 7, 3.00),
			(4, 2, 102, 7, 8.25),  (5, 3, 101, 7, 3.00),  (6, 4, 100, 7, 99.00);
	`)

	// Inspect the derivation before materializing: Algorithm 3.2's output.
	plan, err := mindetail.Derive(w.Catalog(), "product_sales", `
		SELECT time.month, SUM(price) AS TotalPrice, COUNT(*) AS TotalCount,
		       COUNT(DISTINCT brand) AS DifferentBrands
		FROM sale, time, product
		WHERE time.year = 1997 AND sale.timeid = time.id AND sale.productid = product.id
		GROUP BY time.month`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== derivation (Algorithm 3.2) ===")
	fmt.Println(plan.Text())

	// Materialize it. The warehouse initializes the auxiliary views and
	// the view itself from the sources — the last time they are read.
	w.MustExec(`
		CREATE MATERIALIZED VIEW product_sales AS
		SELECT time.month, SUM(price) AS TotalPrice, COUNT(*) AS TotalCount,
		       COUNT(DISTINCT brand) AS DifferentBrands
		FROM sale, time, product
		WHERE time.year = 1997 AND sale.timeid = time.id AND sale.productid = product.id
		GROUP BY time.month`)

	show := func(when string) {
		rel, err := w.Query("product_sales")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== product_sales %s ===\n%s\n", when, rel.Format())
	}
	show("initially")

	// Changes propagate through the auxiliary views.
	w.MustExec(`INSERT INTO sale VALUES (7, 3, 102, 7, 8.25)`)
	w.MustExec(`UPDATE product SET brand = 'acme' WHERE id = 101`)
	w.MustExec(`DELETE FROM sale WHERE id = 1`)
	show("after insert, brand rename, delete")

	fmt.Println("=== storage ===")
	fmt.Print(mindetail.FormatReport(w.Report()))

	// Detach the sources: the warehouse can no longer reach them, yet
	// deltas (as a change log would deliver them) keep the view exact.
	w.DetachSources()
	err = w.ApplyDelta(mindetail.Delta{
		Table: "sale",
		Inserts: []mindetail.Tuple{{
			mindetail.Int(8), mindetail.Int(2), mindetail.Int(100),
			mindetail.Int(7), mindetail.Float(30),
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	show("after a delta with sources detached")
}
