// Retail: the Section 1.1 storage experiment at a realistic (scaled-down)
// size, plus a maintenance stream against detached sources.
//
// Loads the retail star schema with tens of thousands of fact rows where
// each (day, product) pair sells many times — the duplication smart
// duplicate compression exploits — materializes product_sales, reports
// base-versus-auxiliary storage, detaches the sources, and streams deltas.
//
//	go run ./examples/retail [-scale 50000] [-deltas 500]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"mindetail"
)

func main() {
	scale := flag.Int("scale", 50000, "approximate number of fact rows")
	deltas := flag.Int("deltas", 500, "deltas to stream after detaching")
	flag.Parse()

	w := mindetail.New()
	w.MustExec(`
		CREATE TABLE time (id INTEGER PRIMARY KEY, day INTEGER, month INTEGER, year INTEGER);
		CREATE TABLE product (id INTEGER PRIMARY KEY, brand VARCHAR MUTABLE, category VARCHAR);
		CREATE TABLE store (id INTEGER PRIMARY KEY, city VARCHAR, manager VARCHAR MUTABLE);
		CREATE TABLE sale (id INTEGER PRIMARY KEY,
			timeid INTEGER REFERENCES time,
			productid INTEGER REFERENCES product,
			storeid INTEGER REFERENCES store,
			price FLOAT MUTABLE);
	`)

	// Dimensions: 60 days (half in 1997), 40 products, 5 stores.
	const days, products, stores = 60, 40, 5
	src := w.Source()
	for d := 1; d <= days; d++ {
		year := 1997
		if d > days/2 {
			year = 1998
		}
		insert(src, "time", mindetail.Int(int64(d)), mindetail.Int(int64(d%28+1)),
			mindetail.Int(int64((d/28)%12+1)), mindetail.Int(int64(year)))
	}
	for p := 1; p <= products; p++ {
		insert(src, "product", mindetail.Int(int64(p)),
			mindetail.Str(fmt.Sprintf("brand%d", p%8)), mindetail.Str(fmt.Sprintf("cat%d", p%5)))
	}
	for s := 1; s <= stores; s++ {
		insert(src, "store", mindetail.Int(int64(s)),
			mindetail.Str(fmt.Sprintf("city%d", s)), mindetail.Str(fmt.Sprintf("mgr%d", s)))
	}
	// Facts: cycle (day, store, product) with many transactions each.
	rng := rand.New(rand.NewSource(1))
	id := int64(0)
	for id < int64(*scale) {
		id++
		insert(src, "sale",
			mindetail.Int(id),
			mindetail.Int(int64(rng.Intn(days)+1)),
			mindetail.Int(int64(rng.Intn(products)+1)),
			mindetail.Int(int64(rng.Intn(stores)+1)),
			mindetail.Float(float64(rng.Intn(5000))/100+0.5))
	}
	fmt.Printf("loaded %d fact rows\n", id)

	start := time.Now()
	w.MustExec(`
		CREATE MATERIALIZED VIEW product_sales AS
		SELECT time.month, SUM(price) AS TotalPrice, COUNT(*) AS TotalCount,
		       COUNT(DISTINCT brand) AS DifferentBrands
		FROM sale, time, product
		WHERE time.year = 1997 AND sale.timeid = time.id AND sale.productid = product.id
		GROUP BY time.month`)
	fmt.Printf("derived + initialized in %s\n\n", time.Since(start).Round(time.Millisecond))

	fmt.Print(mindetail.FormatReport(w.Report()))

	rel, err := w.Query("product_sales")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nproduct_sales (%d groups):\n%s\n", rel.Len(), rel.Format())

	// Detach and stream inserts as a change log would deliver them.
	w.DetachSources()
	start = time.Now()
	for i := 0; i < *deltas; i++ {
		id++
		err := w.ApplyDelta(mindetail.Delta{
			Table: "sale",
			Inserts: []mindetail.Tuple{{
				mindetail.Int(id),
				mindetail.Int(int64(rng.Intn(days) + 1)),
				mindetail.Int(int64(rng.Intn(products) + 1)),
				mindetail.Int(int64(rng.Intn(stores) + 1)),
				mindetail.Float(float64(rng.Intn(5000))/100 + 0.5),
			}},
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("streamed %d deltas against detached sources in %s (%.0f deltas/s)\n",
		*deltas, elapsed.Round(time.Millisecond), float64(*deltas)/elapsed.Seconds())

	rel, err = w.Query("product_sales")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nproduct_sales after the stream:\n%s", rel.Format())
}

// insert adds a row directly through the source storage engine (much
// faster than SQL for bulk loads).
func insert(src interface {
	Insert(table string, row mindetail.Tuple) error
}, table string, vals ...mindetail.Value) {
	if err := src.Insert(table, mindetail.Tuple(vals)); err != nil {
		log.Fatal(err)
	}
}
