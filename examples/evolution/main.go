// Evolution: the Section 4 extensions working together.
//
//  1. A HAVING-restricted view over a live warehouse.
//
//  2. An append-only warehouse where MIN/MAX compress into the auxiliary
//     views and the fact table's view is omitted.
//
//  3. The class-of-views derivation: one shared auxiliary-view set.
//
//  4. Persistence: snapshot the warehouse, restore it, and keep
//     maintaining against detached sources.
//
//     go run ./examples/evolution
package main

import (
	"fmt"
	"log"
	"strings"

	"mindetail"
)

const ddl = `
CREATE TABLE time (id INTEGER PRIMARY KEY, day INTEGER, month INTEGER, year INTEGER);
CREATE TABLE product (id INTEGER PRIMARY KEY, brand VARCHAR MUTABLE, category VARCHAR);
CREATE TABLE sale (id INTEGER PRIMARY KEY,
	timeid INTEGER REFERENCES time,
	productid INTEGER REFERENCES product,
	price FLOAT);

INSERT INTO time VALUES (1, 5, 1, 1997), (2, 20, 1, 1997), (3, 7, 2, 1997);
INSERT INTO product VALUES (100, 'acme', 'tools'), (101, 'bolt', 'food');
INSERT INTO sale VALUES
	(1, 1, 100, 12.50), (2, 1, 100, 12.50), (3, 1, 101, 3.00),
	(4, 2, 100, 8.25),  (5, 3, 101, 3.00);
`

func main() {
	havingDemo()
	appendOnlyDemo()
	sharedDemo()
	persistenceDemo()
}

func havingDemo() {
	fmt.Println("=== 1. HAVING: restrictions on groups ===")
	w := mindetail.New()
	w.MustExec(ddl)
	w.MustExec(`
		CREATE MATERIALIZED VIEW busy_months AS
		SELECT time.month, COUNT(*) AS cnt, SUM(price) AS total
		FROM sale, time WHERE sale.timeid = time.id AND time.year = 1997
		GROUP BY time.month
		HAVING cnt >= 3`)
	show(w, "busy_months", "only month 1 qualifies")
	// Month 2 (timeid 3) crosses the threshold as data arrives.
	w.MustExec(`INSERT INTO sale VALUES (6, 3, 101, 1), (7, 3, 101, 2)`)
	show(w, "busy_months", "month 2 crossed the threshold")
}

func appendOnlyDemo() {
	fmt.Println("=== 2. append-only: MIN/MAX compress, fact detail vanishes ===")
	w := mindetail.New()
	w.AppendOnly = true
	w.MustExec(ddl)
	w.MustExec(`
		CREATE MATERIALIZED VIEW price_range AS
		SELECT product.id, MIN(price) AS lo, MAX(price) AS hi, COUNT(*) AS cnt
		FROM sale, product WHERE sale.productid = product.id
		GROUP BY product.id`)
	plan := w.View("price_range").Plan
	fmt.Println(plan.Aux["sale"].SQL())
	fmt.Println()
	fmt.Print(mindetail.FormatReport(w.Report()))
	w.MustExec(`INSERT INTO sale VALUES (8, 1, 100, 99.99)`)
	show(w, "price_range", "after inserting a new maximum")
}

func sharedDemo() {
	fmt.Println("=== 3. classes of summary data: one shared auxiliary set ===")
	w := mindetail.New()
	w.MustExec(ddl)
	sp, err := mindetail.DeriveShared(w.Catalog(), map[string]string{
		"sales_1997": `SELECT time.month, SUM(price) AS total, COUNT(*) AS cnt
			FROM sale, time WHERE time.year = 1997 AND sale.timeid = time.id
			GROUP BY time.month`,
		"sales_1998": `SELECT time.month, SUM(price) AS total, COUNT(*) AS cnt
			FROM sale, time WHERE time.year = 1998 AND sale.timeid = time.id
			GROUP BY time.month`,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sp.Text())
	shared, perView := sp.FieldTotals()
	fmt.Printf("field totals: shared=%d vs separate=%d\n\n", shared, perView)
}

func persistenceDemo() {
	fmt.Println("=== 4. persistence: snapshot, restore, keep maintaining ===")
	w := mindetail.New()
	w.MustExec(ddl)
	w.MustExec(`
		CREATE MATERIALIZED VIEW totals AS
		SELECT product.brand, SUM(price) AS total, COUNT(*) AS cnt
		FROM sale, product WHERE sale.productid = product.id
		GROUP BY product.brand`)

	var snapshot strings.Builder
	if err := mindetail.Save(w, &snapshot, false); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot: %d bytes (warehouse-resident state only)\n", snapshot.Len())

	restored, err := mindetail.Load(strings.NewReader(snapshot.String()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored: detached=%v, views=%v\n", restored.Detached(), restored.ViewNames())
	// Maintenance continues from deltas alone.
	err = restored.ApplyDelta(mindetail.Delta{
		Table: "sale",
		Inserts: []mindetail.Tuple{{
			mindetail.Int(9), mindetail.Int(1), mindetail.Int(101), mindetail.Float(7),
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	show(restored, "totals", "after a delta against the restored, detached warehouse")
}

func show(w *mindetail.Warehouse, view, when string) {
	rel, err := w.Query(view)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("--- %s (%s) ---\n%s\n", view, when, rel.Format())
}
