// Snowflake: Need sets on a snowflake schema and fact-table elimination.
//
// Part 1 builds a snowflake (sale → product → brand) and shows how the
// Need sets of Definition 3/4 chain through the middle dimension, and how a
// brand rename propagates down an entire subtree of sales.
//
// Part 2 shows the Section 3.3 elimination: grouping on a dimension key
// with CSMAS-only aggregates lets the warehouse omit the fact table's
// auxiliary view entirely — the typically huge table is not stored at all.
//
//	go run ./examples/snowflake
package main

import (
	"fmt"
	"log"

	"mindetail"
)

func main() {
	part1()
	part2()
}

func part1() {
	fmt.Println("=== part 1: snowflake Need sets ===")
	w := mindetail.New()
	w.MustExec(`
		CREATE TABLE brand (id INTEGER PRIMARY KEY, name VARCHAR MUTABLE, country VARCHAR);
		CREATE TABLE product (id INTEGER PRIMARY KEY, brandid INTEGER REFERENCES brand, category VARCHAR);
		CREATE TABLE sale (id INTEGER PRIMARY KEY, productid INTEGER REFERENCES product, price FLOAT);

		INSERT INTO brand VALUES (1, 'acme', 'dk'), (2, 'bolt', 'se');
		INSERT INTO product VALUES (10, 1, 'tools'), (11, 1, 'food'), (12, 2, 'tools');
		INSERT INTO sale VALUES (1, 10, 5), (2, 10, 5), (3, 11, 2), (4, 12, 9);
	`)
	plan, err := mindetail.Derive(w.Catalog(), "brand_sales", `
		SELECT brand.name, SUM(price) AS total, COUNT(*) AS cnt
		FROM sale, product, brand
		WHERE sale.productid = product.id AND product.brandid = brand.id
		GROUP BY brand.name`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plan.Text())

	w.MustExec(`
		CREATE MATERIALIZED VIEW brand_sales AS
		SELECT brand.name, SUM(price) AS total, COUNT(*) AS cnt
		FROM sale, product, brand
		WHERE sale.productid = product.id AND product.brandid = brand.id
		GROUP BY brand.name`)
	show(w, "brand_sales", "initially")

	// Renaming a brand moves every sale of every product of that brand.
	w.MustExec(`UPDATE brand SET name = 'acme-new' WHERE id = 1`)
	show(w, "brand_sales", "after renaming brand 1")
}

func part2() {
	fmt.Println("=== part 2: fact-table elimination (Section 3.3) ===")
	w := mindetail.New()
	w.MustExec(`
		CREATE TABLE product (id INTEGER PRIMARY KEY, brand VARCHAR, category VARCHAR);
		CREATE TABLE sale (id INTEGER PRIMARY KEY, productid INTEGER REFERENCES product, price FLOAT);

		INSERT INTO product VALUES (10, 'acme', 'tools'), (11, 'bolt', 'food');
		INSERT INTO sale VALUES (1, 10, 5), (2, 10, 5), (3, 11, 2);
	`)
	plan, err := mindetail.Derive(w.Catalog(), "by_product", `
		SELECT product.id, SUM(price) AS total, COUNT(*) AS cnt
		FROM sale, product WHERE sale.productid = product.id
		GROUP BY product.id`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plan.Text())
	fmt.Println("note: sale_dtl is omitted — the view self-maintains from deltas alone.")

	w.MustExec(`
		CREATE MATERIALIZED VIEW by_product AS
		SELECT product.id, SUM(price) AS total, COUNT(*) AS cnt
		FROM sale, product WHERE sale.productid = product.id
		GROUP BY product.id`)
	show(w, "by_product", "initially")

	// Inserts and deletes on the fact table are absorbed with no fact
	// detail stored in the warehouse at all.
	w.MustExec(`INSERT INTO sale VALUES (4, 11, 7.5)`)
	w.MustExec(`DELETE FROM sale WHERE id = 1`)
	show(w, "by_product", "after fact changes with no stored fact detail")
	fmt.Print(mindetail.FormatReport(w.Report()))
}

func show(w *mindetail.Warehouse, view, when string) {
	rel, err := w.Query(view)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("--- %s %s ---\n%s\n", view, when, rel.Format())
}
