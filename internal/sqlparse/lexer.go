// Package sqlparse implements a lexer and recursive-descent parser for the
// SQL subset the paper uses throughout: CREATE TABLE with PRIMARY KEY and
// REFERENCES, CREATE [MATERIALIZED] VIEW ... AS SELECT with aggregation and
// GROUP BY, and INSERT/DELETE/UPDATE statements for driving deltas.
//
// Two deliberate departures from full SQL, both documented in README:
//
//   - SELECT in a view body denotes the paper's generalized projection Π_A,
//     which is duplicate-eliminating (Section 2.1); plain attributes in the
//     select list are the group-by attributes and must match the GROUP BY
//     clause when one is given.
//   - The nonstandard column option MUTABLE declares attributes that the
//     application may update in place; all others are immutable after
//     insertion. This drives the exposed-update analysis (Section 2.1).
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokOp    // = <> < <= > >= + - * /
	tokPunct // ( ) , . ;
)

type token struct {
	kind tokenKind
	text string // keywords upper-cased, identifiers lower-cased
	pos  int
}

var keywords = map[string]bool{
	"CREATE": true, "TABLE": true, "VIEW": true, "MATERIALIZED": true,
	"DROP": true, "IF": true, "EXISTS": true,
	"AS": true, "SELECT": true, "FROM": true, "WHERE": true, "GROUP": true,
	"BY": true, "HAVING": true, "AND": true, "DISTINCT": true, "PRIMARY": true, "KEY": true,
	"REFERENCES": true, "MUTABLE": true, "INSERT": true, "INTO": true,
	"VALUES": true, "DELETE": true, "UPDATE": true, "SET": true,
	"INTEGER": true, "INT": true, "FLOAT": true, "REAL": true, "DOUBLE": true,
	"VARCHAR": true, "TEXT": true, "STRING": true, "BOOLEAN": true, "BOOL": true,
	"TRUE": true, "FALSE": true, "NULL": true, "IN": true, "NOT": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

// lex tokenizes the input. Errors carry byte offsets.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < len(src) && src[i+1] == '-': // line comment
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < len(src) && (unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i])) || src[i] == '_') {
				i++
			}
			word := src[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{tokKeyword, up, start})
			} else {
				toks = append(toks, token{tokIdent, strings.ToLower(word), start})
			}
		case unicode.IsDigit(rune(c)):
			start := i
			seenDot := false
			for i < len(src) && (unicode.IsDigit(rune(src[i])) || (src[i] == '.' && !seenDot)) {
				if src[i] == '.' {
					// A trailing dot followed by a letter is a qualified
					// name, not a float — but digits cannot start an
					// identifier, so '.' after digits is always a decimal
					// point here.
					seenDot = true
				}
				i++
			}
			toks = append(toks, token{tokNumber, src[start:i], start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < len(src) {
				if src[i] == '\'' {
					if i+1 < len(src) && src[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(src[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sqlparse: unterminated string at offset %d", start)
			}
			toks = append(toks, token{tokString, sb.String(), start})
		case c == '<':
			if i+1 < len(src) && (src[i+1] == '=' || src[i+1] == '>') {
				toks = append(toks, token{tokOp, src[i : i+2], i})
				i += 2
			} else {
				toks = append(toks, token{tokOp, "<", i})
				i++
			}
		case c == '>':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tokOp, ">=", i})
				i += 2
			} else {
				toks = append(toks, token{tokOp, ">", i})
				i++
			}
		case c == '=' || c == '+' || c == '-' || c == '*' || c == '/':
			toks = append(toks, token{tokOp, string(c), i})
			i++
		case c == '(' || c == ')' || c == ',' || c == '.' || c == ';':
			toks = append(toks, token{tokPunct, string(c), i})
			i++
		default:
			return nil, fmt.Errorf("sqlparse: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(src)})
	return toks, nil
}
