package sqlparse

import (
	"testing"
	"testing/quick"
)

// TestParseNeverPanics: arbitrary input must produce errors, not panics.
func TestParseNeverPanics(t *testing.T) {
	f := func(src string) (ok bool) {
		defer func() {
			if recover() != nil {
				t.Logf("panic on %q", src)
				ok = false
			}
		}()
		_, _ = ParseAll(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestParseNeverPanicsOnSQLishInput: mutated fragments of real SQL.
func TestParseNeverPanicsOnSQLishInput(t *testing.T) {
	base := `CREATE TABLE t (id INTEGER PRIMARY KEY, x FLOAT MUTABLE);
SELECT t.x, COUNT(*) AS c FROM t WHERE t.x > 1.5 GROUP BY t.x HAVING c > 2;
INSERT INTO t VALUES (1, 2.5), (2, -3);
UPDATE t SET x = 9 WHERE id = 1;
DELETE FROM t WHERE x <> 0;`
	for cut := 0; cut < len(base); cut += 3 {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on truncation at %d: %v", cut, r)
				}
			}()
			_, _ = ParseAll(base[:cut])
			_, _ = ParseAll(base[cut:])
		}()
	}
	// Character substitutions.
	for i := 0; i < len(base); i += 7 {
		mutated := base[:i] + "(" + base[i+1:]
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on mutation at %d: %v", i, r)
				}
			}()
			_, _ = ParseAll(mutated)
		}()
	}
}
