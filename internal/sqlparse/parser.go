package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"mindetail/internal/ra"
	"mindetail/internal/schema"
	"mindetail/internal/types"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// CreateTable defines a base table, its key, its mutable attributes, and
// the referential integrity constraints declared via REFERENCES.
type CreateTable struct {
	Table *schema.Table
	FKs   []schema.ForeignKey
}

// CreateView defines a (typically materialized) GPSJ view.
type CreateView struct {
	Name         string
	Materialized bool
	Query        *SelectStmt
}

// DropView removes a materialized view from the catalog. IfExists makes
// dropping an absent view a no-op instead of an error.
type DropView struct {
	Name     string
	IfExists bool
}

// SelectStmt is a parsed SELECT in GPSJ shape, optionally with a HAVING
// restriction on the produced groups (the generalization Section 4 of the
// paper suggests). HAVING conditions reference output column names.
type SelectStmt struct {
	Items   []ra.ProjItem
	From    []string
	Where   []ra.Comparison
	GroupBy []ra.ColRef
	Having  []ra.Comparison
}

// Insert adds rows of literals to a table.
type Insert struct {
	Table string
	Rows  [][]types.Value
}

// Delete removes the rows matching a conjunctive condition.
type Delete struct {
	Table string
	Where []ra.Comparison
}

// Update assigns literal values to columns of the rows matching a
// conjunctive condition.
type Update struct {
	Table string
	Set   []Assignment
	Where []ra.Comparison
}

// Assignment is one SET column = literal pair.
type Assignment struct {
	Column string
	Value  types.Value
}

func (*CreateTable) stmt() {}
func (*CreateView) stmt()  {}
func (*DropView) stmt()    {}
func (*SelectStmt) stmt()  {}
func (*Insert) stmt()      {}
func (*Delete) stmt()      {}
func (*Update) stmt()      {}

type parser struct {
	toks []token
	pos  int
}

// Parse parses a single SQL statement (a trailing semicolon is allowed).
func Parse(src string) (Statement, error) {
	stmts, err := ParseAll(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("sqlparse: expected exactly one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

// ParseAll parses a semicolon-separated script.
func ParseAll(src string) ([]Statement, error) {
	script, err := ParseScript(src)
	if err != nil {
		return nil, err
	}
	stmts := make([]Statement, len(script))
	for i, s := range script {
		stmts[i] = s.Stmt
	}
	return stmts, nil
}

// ScriptStatement pairs one parsed statement of a script with its source
// fragment and position, so executors can attribute a mid-script failure
// to the exact statement that caused it.
type ScriptStatement struct {
	Stmt  Statement
	SQL   string // the statement's source text, trimmed, without the ';'
	Index int    // 0-based position in the script
}

// ParseScript parses a semicolon-separated script, retaining each
// statement's source fragment.
func ParseScript(src string) ([]ScriptStatement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmts []ScriptStatement
	for {
		for p.peek().kind == tokPunct && p.peek().text == ";" {
			p.next()
		}
		if p.peek().kind == tokEOF {
			break
		}
		start := p.peek().pos
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		end := p.peek().pos // offset of the ';' or EOF after the statement
		stmts = append(stmts, ScriptStatement{
			Stmt:  s,
			SQL:   strings.TrimSpace(src[start:end]),
			Index: len(stmts),
		})
		if t := p.peek(); t.kind != tokEOF && !(t.kind == tokPunct && t.text == ";") {
			return nil, p.errf("expected ';' or end of input, got %q", t.text)
		}
	}
	return stmts, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sqlparse: at offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

func (p *parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.kind == tokKeyword && t.text == kw {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s, got %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) acceptPunct(s string) bool {
	if t := p.peek(); t.kind == tokPunct && t.text == s {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return p.errf("expected %q, got %q", s, p.peek().text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errf("expected identifier, got %q", t.text)
	}
	p.next()
	return t.text, nil
}

func (p *parser) statement() (Statement, error) {
	t := p.peek()
	if t.kind != tokKeyword {
		return nil, p.errf("expected statement keyword, got %q", t.text)
	}
	switch t.text {
	case "CREATE":
		p.next()
		if p.acceptKeyword("TABLE") {
			return p.createTable()
		}
		mat := p.acceptKeyword("MATERIALIZED")
		if p.acceptKeyword("VIEW") {
			return p.createView(mat)
		}
		return nil, p.errf("expected TABLE or [MATERIALIZED] VIEW after CREATE")
	case "DROP":
		p.next()
		p.acceptKeyword("MATERIALIZED")
		if !p.acceptKeyword("VIEW") {
			return nil, p.errf("expected [MATERIALIZED] VIEW after DROP")
		}
		return p.dropView()
	case "SELECT":
		return p.selectStmt()
	case "INSERT":
		return p.insert()
	case "DELETE":
		return p.delete()
	case "UPDATE":
		return p.update()
	default:
		return nil, p.errf("unsupported statement %s", t.text)
	}
}

func typeFromKeyword(kw string) (types.Kind, bool) {
	switch kw {
	case "INTEGER", "INT":
		return types.KindInt, true
	case "FLOAT", "REAL", "DOUBLE":
		return types.KindFloat, true
	case "VARCHAR", "TEXT", "STRING":
		return types.KindString, true
	case "BOOLEAN", "BOOL":
		return types.KindBool, true
	}
	return 0, false
}

func (p *parser) createTable() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	tab := &schema.Table{Name: name}
	var fks []schema.ForeignKey
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		t := p.peek()
		if t.kind != tokKeyword {
			return nil, p.errf("expected column type, got %q", t.text)
		}
		kind, ok := typeFromKeyword(t.text)
		if !ok {
			return nil, p.errf("unknown column type %s", t.text)
		}
		p.next()
		tab.Attrs = append(tab.Attrs, schema.Attribute{Name: col, Type: kind})
		// Column options, any order.
		for {
			if p.acceptKeyword("PRIMARY") {
				if err := p.expectKeyword("KEY"); err != nil {
					return nil, err
				}
				if tab.Key != "" {
					return nil, p.errf("table %s: multiple primary keys (the paper assumes a single-attribute key)", name)
				}
				tab.Key = col
				continue
			}
			if p.acceptKeyword("REFERENCES") {
				ref, err := p.ident()
				if err != nil {
					return nil, err
				}
				fks = append(fks, schema.ForeignKey{FromTable: name, FromAttr: col, ToTable: ref})
				continue
			}
			if p.acceptKeyword("MUTABLE") {
				tab.Mutable = append(tab.Mutable, col)
				continue
			}
			break
		}
		if p.acceptPunct(",") {
			continue
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		break
	}
	return &CreateTable{Table: tab, FKs: fks}, nil
}

func (p *parser) createView(materialized bool) (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	if p.peek().kind != tokKeyword || p.peek().text != "SELECT" {
		return nil, p.errf("expected SELECT in view body")
	}
	q, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	return &CreateView{Name: name, Materialized: materialized, Query: q.(*SelectStmt)}, nil
}

func (p *parser) dropView() (Statement, error) {
	ifExists := false
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		ifExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &DropView{Name: name, IfExists: ifExists}, nil
}

func (p *parser) selectStmt() (Statement, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	var stmt SelectStmt
	for {
		item, err := p.projItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		t, err := p.ident()
		if err != nil {
			return nil, err
		}
		stmt.From = append(stmt.From, t)
		if !p.acceptPunct(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		conds, err := p.conjunction()
		if err != nil {
			return nil, err
		}
		stmt.Where = conds
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.colRef()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, c)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		conds, err := p.conjunction()
		if err != nil {
			return nil, err
		}
		stmt.Having = conds
	}
	if err := stmt.validateGrouping(); err != nil {
		return nil, err
	}
	return &stmt, nil
}

// validateGrouping enforces the paper's requirement that all group-by
// attributes are projected and that plain select items are exactly the
// group-by attributes (Section 3.3: "we require all group-by attributes to
// be projected in the view").
func (s *SelectStmt) validateGrouping() error {
	if len(s.GroupBy) == 0 {
		return nil
	}
	grouped := make(map[string]bool, len(s.GroupBy))
	for _, g := range s.GroupBy {
		grouped[g.String()] = true
	}
	seen := make(map[string]bool)
	for _, it := range s.Items {
		if it.IsAggregate() {
			continue
		}
		cr, ok := it.Expr.(ra.ColRef)
		if !ok {
			return fmt.Errorf("sqlparse: plain select item %q must be a column when GROUP BY is present", it.Expr)
		}
		if !grouped[cr.String()] {
			return fmt.Errorf("sqlparse: select column %s is not in GROUP BY", cr)
		}
		seen[cr.String()] = true
	}
	for _, g := range s.GroupBy {
		if !seen[g.String()] {
			return fmt.Errorf("sqlparse: GROUP BY attribute %s must be projected in the select list", g)
		}
	}
	return nil
}

func (p *parser) projItem() (ra.ProjItem, error) {
	var item ra.ProjItem
	t := p.peek()
	if t.kind == tokKeyword {
		switch t.text {
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			agg, err := p.aggregate()
			if err != nil {
				return item, err
			}
			item.Agg = agg
			item.Name = agg.String()
		}
	}
	if item.Agg == nil {
		e, err := p.expr()
		if err != nil {
			return item, err
		}
		item.Expr = e
		item.Name = e.String()
	}
	if p.acceptKeyword("AS") {
		alias, err := p.ident()
		if err != nil {
			return item, err
		}
		item.Name = alias
	}
	return item, nil
}

func (p *parser) aggregate() (*ra.Aggregate, error) {
	fn := ra.AggFunc(p.next().text)
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	agg := &ra.Aggregate{Func: fn}
	if p.peek().kind == tokOp && p.peek().text == "*" {
		if fn != ra.FuncCount {
			return nil, p.errf("%s(*) is not valid SQL; only COUNT(*)", fn)
		}
		p.next()
	} else {
		if p.acceptKeyword("DISTINCT") {
			agg.Distinct = true
		}
		arg, err := p.expr()
		if err != nil {
			return nil, err
		}
		agg.Arg = arg
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return agg, nil
}

func (p *parser) conjunction() ([]ra.Comparison, error) {
	var conds []ra.Comparison
	for {
		c, err := p.comparison()
		if err != nil {
			return nil, err
		}
		conds = append(conds, c)
		if !p.acceptKeyword("AND") {
			break
		}
	}
	return conds, nil
}

func (p *parser) comparison() (ra.Comparison, error) {
	var c ra.Comparison
	l, err := p.expr()
	if err != nil {
		return c, err
	}
	t := p.peek()
	if t.kind != tokOp {
		return c, p.errf("expected comparison operator, got %q", t.text)
	}
	switch t.text {
	case "=", "<>", "<", "<=", ">", ">=":
		c.Op = ra.CmpOp(t.text)
	default:
		return c, p.errf("expected comparison operator, got %q", t.text)
	}
	p.next()
	r, err := p.expr()
	if err != nil {
		return c, err
	}
	c.L, c.R = l, r
	return c, nil
}

// expr parses additive expressions with standard precedence.
func (p *parser) expr() (ra.Expr, error) {
	l, err := p.term()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokOp && (t.text == "+" || t.text == "-") {
			p.next()
			r, err := p.term()
			if err != nil {
				return nil, err
			}
			l = ra.Arith{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) term() (ra.Expr, error) {
	l, err := p.factor()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokOp && (t.text == "*" || t.text == "/") {
			p.next()
			r, err := p.factor()
			if err != nil {
				return nil, err
			}
			l = ra.Arith{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) factor() (ra.Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokPunct && t.text == "(":
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokNumber || (t.kind == tokOp && t.text == "-"):
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		return ra.Lit{V: v}, nil
	case t.kind == tokString || (t.kind == tokKeyword && (t.text == "TRUE" || t.text == "FALSE" || t.text == "NULL")):
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		return ra.Lit{V: v}, nil
	case t.kind == tokIdent:
		c, err := p.colRef()
		if err != nil {
			return nil, err
		}
		return c, nil
	default:
		return nil, p.errf("expected expression, got %q", t.text)
	}
}

func (p *parser) colRef() (ra.ColRef, error) {
	first, err := p.ident()
	if err != nil {
		return ra.ColRef{}, err
	}
	if p.acceptPunct(".") {
		second, err := p.ident()
		if err != nil {
			return ra.ColRef{}, err
		}
		return ra.ColRef{Table: first, Name: second}, nil
	}
	return ra.ColRef{Name: first}, nil
}

func (p *parser) literal() (types.Value, error) {
	t := p.peek()
	switch {
	case t.kind == tokOp && t.text == "-":
		p.next()
		v, err := p.literal()
		if err != nil {
			return types.Null, err
		}
		switch v.Kind() {
		case types.KindInt:
			return types.Int(-v.AsInt()), nil
		case types.KindFloat:
			return types.Float(-v.AsFloat()), nil
		default:
			return types.Null, p.errf("cannot negate %s", v.Kind())
		}
	case t.kind == tokNumber:
		p.next()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return types.Null, p.errf("bad number %q", t.text)
			}
			return types.Float(f), nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return types.Null, p.errf("bad number %q", t.text)
		}
		return types.Int(n), nil
	case t.kind == tokString:
		p.next()
		return types.Str(t.text), nil
	case t.kind == tokKeyword && t.text == "TRUE":
		p.next()
		return types.Bool(true), nil
	case t.kind == tokKeyword && t.text == "FALSE":
		p.next()
		return types.Bool(false), nil
	case t.kind == tokKeyword && t.text == "NULL":
		p.next()
		return types.Null, nil
	default:
		return types.Null, p.errf("expected literal, got %q", t.text)
	}
}

func (p *parser) insert() (Statement, error) {
	p.next() // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	ins := &Insert{Table: table}
	for {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var row []types.Value
		for {
			v, err := p.literal()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.acceptPunct(",") {
			break
		}
	}
	return ins, nil
}

func (p *parser) delete() (Statement, error) {
	p.next() // DELETE
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	del := &Delete{Table: table}
	if p.acceptKeyword("WHERE") {
		conds, err := p.conjunction()
		if err != nil {
			return nil, err
		}
		del.Where = conds
	}
	return del, nil
}

func (p *parser) update() (Statement, error) {
	p.next() // UPDATE
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	upd := &Update{Table: table}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if t := p.peek(); !(t.kind == tokOp && t.text == "=") {
			return nil, p.errf("expected '=' in SET, got %q", t.text)
		}
		p.next()
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		upd.Set = append(upd.Set, Assignment{Column: col, Value: v})
		if !p.acceptPunct(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		conds, err := p.conjunction()
		if err != nil {
			return nil, err
		}
		upd.Where = conds
	}
	return upd, nil
}
