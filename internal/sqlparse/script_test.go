package sqlparse

import (
	"strings"
	"testing"
)

func TestParseScriptFragments(t *testing.T) {
	src := `
		CREATE TABLE t (id INTEGER PRIMARY KEY, v FLOAT MUTABLE);

		INSERT INTO t VALUES (1, 2.5);
		SELECT t.id, SUM(v) AS s FROM t GROUP BY t.id;
	`
	stmts, err := ParseScript(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("statements = %d", len(stmts))
	}
	wantPrefix := []string{"CREATE TABLE t", "INSERT INTO t", "SELECT t.id"}
	for i, s := range stmts {
		if s.Index != i {
			t.Errorf("stmt %d: Index = %d", i, s.Index)
		}
		if !strings.HasPrefix(s.SQL, wantPrefix[i]) {
			t.Errorf("stmt %d fragment = %q, want prefix %q", i, s.SQL, wantPrefix[i])
		}
		if strings.HasSuffix(s.SQL, ";") {
			t.Errorf("stmt %d fragment retains ';': %q", i, s.SQL)
		}
	}
	// ParseAll stays equivalent.
	all, err := ParseAll(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(stmts) {
		t.Fatalf("ParseAll = %d statements, ParseScript = %d", len(all), len(stmts))
	}
}

func TestParseScriptEmptyAndSeparators(t *testing.T) {
	for _, src := range []string{"", " \n\t", ";;;", "; ;\n;"} {
		stmts, err := ParseScript(src)
		if err != nil || len(stmts) != 0 {
			t.Errorf("%q: stmts=%d err=%v", src, len(stmts), err)
		}
	}
}
