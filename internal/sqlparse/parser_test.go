package sqlparse

import (
	"strings"
	"testing"

	"mindetail/internal/ra"
	"mindetail/internal/types"
)

func parseOne(t *testing.T, src string) Statement {
	t.Helper()
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return s
}

func TestCreateTable(t *testing.T) {
	s := parseOne(t, `CREATE TABLE sale (
		id INTEGER PRIMARY KEY,
		timeid INTEGER REFERENCES time,
		productid INTEGER REFERENCES product,
		storeid INTEGER REFERENCES store,
		price FLOAT MUTABLE
	)`)
	ct, ok := s.(*CreateTable)
	if !ok {
		t.Fatalf("got %T", s)
	}
	if ct.Table.Name != "sale" || ct.Table.Key != "id" || len(ct.Table.Attrs) != 5 {
		t.Errorf("table = %+v", ct.Table)
	}
	if len(ct.FKs) != 3 || ct.FKs[0].ToTable != "time" {
		t.Errorf("FKs = %v", ct.FKs)
	}
	if len(ct.Table.Mutable) != 1 || ct.Table.Mutable[0] != "price" {
		t.Errorf("Mutable = %v", ct.Table.Mutable)
	}
	if ct.Table.Attrs[4].Type != types.KindFloat {
		t.Errorf("price type = %v", ct.Table.Attrs[4].Type)
	}
}

func TestCreateTableTypeAliases(t *testing.T) {
	s := parseOne(t, `CREATE TABLE x (a INT PRIMARY KEY, b REAL, c TEXT, d BOOL)`)
	ct := s.(*CreateTable)
	want := []types.Kind{types.KindInt, types.KindFloat, types.KindString, types.KindBool}
	for i, k := range want {
		if ct.Table.Attrs[i].Type != k {
			t.Errorf("attr %d type = %v, want %v", i, ct.Table.Attrs[i].Type, k)
		}
	}
}

func TestPaperProductSalesView(t *testing.T) {
	// Verbatim from the paper's Section 1.1 (modulo the view name quoting).
	s := parseOne(t, `CREATE VIEW product_sales AS
		SELECT time.month, SUM(price) AS TotalPrice, COUNT(*) AS TotalCount,
		       COUNT(DISTINCT brand) AS DifferentBrands
		FROM sale, time, product
		WHERE time.year = 1997 AND sale.timeid = time.id AND sale.productid = product.id
		GROUP BY time.month`)
	cv, ok := s.(*CreateView)
	if !ok {
		t.Fatalf("got %T", s)
	}
	if cv.Name != "product_sales" || cv.Materialized {
		t.Errorf("view = %+v", cv)
	}
	q := cv.Query
	if len(q.Items) != 4 || len(q.From) != 3 || len(q.Where) != 3 || len(q.GroupBy) != 1 {
		t.Fatalf("query shape: items=%d from=%d where=%d groupby=%d",
			len(q.Items), len(q.From), len(q.Where), len(q.GroupBy))
	}
	if q.Items[0].IsAggregate() || q.Items[0].Name != "time.month" {
		t.Errorf("item 0 = %+v", q.Items[0])
	}
	if q.Items[1].Agg.Func != ra.FuncSum || q.Items[1].Name != "totalprice" {
		t.Errorf("item 1 = %+v", q.Items[1])
	}
	if !q.Items[3].Agg.Distinct {
		t.Error("DISTINCT not parsed")
	}
	if q.GroupBy[0].Table != "time" || q.GroupBy[0].Name != "month" {
		t.Errorf("group by = %+v", q.GroupBy[0])
	}
}

func TestMaterializedView(t *testing.T) {
	s := parseOne(t, `CREATE MATERIALIZED VIEW v AS SELECT a, COUNT(*) FROM t GROUP BY a`)
	if !s.(*CreateView).Materialized {
		t.Error("MATERIALIZED not parsed")
	}
}

func TestSelectAggregateForms(t *testing.T) {
	s := parseOne(t, `SELECT MIN(price), MAX(price), AVG(price), COUNT(price), SUM(DISTINCT price) FROM sale`)
	q := s.(*SelectStmt)
	funcs := []ra.AggFunc{ra.FuncMin, ra.FuncMax, ra.FuncAvg, ra.FuncCount, ra.FuncSum}
	for i, f := range funcs {
		if q.Items[i].Agg == nil || q.Items[i].Agg.Func != f {
			t.Errorf("item %d = %+v, want %s", i, q.Items[i], f)
		}
	}
	if q.Items[3].Agg.IsCountStar() {
		t.Error("COUNT(price) mistaken for COUNT(*)")
	}
	if !q.Items[4].Agg.Distinct {
		t.Error("SUM(DISTINCT) not parsed")
	}
}

func TestWhereOperatorsAndLiterals(t *testing.T) {
	s := parseOne(t, `SELECT a FROM t WHERE a >= -2 AND b <> 'x''y' AND c < 3.5 AND d = TRUE AND e <= 7 AND f > 1`)
	q := s.(*SelectStmt)
	if len(q.Where) != 6 {
		t.Fatalf("where = %d conds", len(q.Where))
	}
	if q.Where[0].Op != ra.OpGE {
		t.Errorf("op 0 = %s", q.Where[0].Op)
	}
	lit := q.Where[0].R.(ra.Lit)
	if lit.V.AsInt() != -2 {
		t.Errorf("literal = %v", lit.V)
	}
	if q.Where[1].R.(ra.Lit).V.AsString() != "x'y" {
		t.Errorf("string literal = %v", q.Where[1].R)
	}
	if q.Where[2].R.(ra.Lit).V.AsFloat() != 3.5 {
		t.Errorf("float literal = %v", q.Where[2].R)
	}
	if !q.Where[3].R.(ra.Lit).V.AsBool() {
		t.Errorf("bool literal = %v", q.Where[3].R)
	}
}

func TestArithmeticPrecedence(t *testing.T) {
	s := parseOne(t, `SELECT a + b * c AS x, (a + b) * c AS y FROM t`)
	q := s.(*SelectStmt)
	x := q.Items[0].Expr.(ra.Arith)
	if x.Op != "+" {
		t.Errorf("precedence: top op = %s, want +", x.Op)
	}
	if inner, ok := x.R.(ra.Arith); !ok || inner.Op != "*" {
		t.Errorf("precedence: right = %v", x.R)
	}
	y := q.Items[1].Expr.(ra.Arith)
	if y.Op != "*" {
		t.Errorf("parens: top op = %s, want *", y.Op)
	}
}

func TestInsertDeleteUpdate(t *testing.T) {
	s := parseOne(t, `INSERT INTO sale VALUES (1, 2, 3, 4, 9.5), (2, 2, 3, 4, 1)`)
	ins := s.(*Insert)
	if ins.Table != "sale" || len(ins.Rows) != 2 || len(ins.Rows[0]) != 5 {
		t.Errorf("insert = %+v", ins)
	}
	if ins.Rows[0][4].AsFloat() != 9.5 {
		t.Errorf("insert value = %v", ins.Rows[0][4])
	}

	s = parseOne(t, `DELETE FROM sale WHERE id = 7`)
	del := s.(*Delete)
	if del.Table != "sale" || len(del.Where) != 1 {
		t.Errorf("delete = %+v", del)
	}

	s = parseOne(t, `UPDATE sale SET price = 2.5, storeid = 9 WHERE id = 7 AND price > 1`)
	upd := s.(*Update)
	if upd.Table != "sale" || len(upd.Set) != 2 || len(upd.Where) != 2 {
		t.Errorf("update = %+v", upd)
	}
	if upd.Set[0].Column != "price" || upd.Set[0].Value.AsFloat() != 2.5 {
		t.Errorf("set = %+v", upd.Set[0])
	}
}

func TestParseAllScript(t *testing.T) {
	stmts, err := ParseAll(`
		-- the retail schema
		CREATE TABLE t (id INT PRIMARY KEY);
		INSERT INTO t VALUES (1);
		SELECT id FROM t;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("stmts = %d", len(stmts))
	}
}

func TestGroupingValidation(t *testing.T) {
	cases := []struct {
		src, errSub string
	}{
		{`SELECT a, b FROM t GROUP BY a`, "not in GROUP BY"},
		{`SELECT a FROM t GROUP BY a, b`, "must be projected"},
		{`SELECT a + 1 FROM t GROUP BY a`, "must be a column"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil || !strings.Contains(err.Error(), c.errSub) {
			t.Errorf("%q: got %v, want error containing %q", c.src, err, c.errSub)
		}
	}
	// Valid: all group-by attrs projected, aggregates free.
	if _, err := Parse(`SELECT a, b, COUNT(*) FROM t GROUP BY a, b`); err != nil {
		t.Errorf("valid grouping rejected: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELEC a FROM t`,
		`CREATE INDEX i ON t`,
		`CREATE TABLE t (a WIBBLE)`,
		`CREATE TABLE t (a INT PRIMARY KEY, b INT PRIMARY KEY)`,
		`SELECT FROM t`,
		`SELECT a FROM`,
		`SELECT a t`,
		`SELECT SUM(*) FROM t`,
		`SELECT a FROM t WHERE a !! 3`,
		`SELECT a FROM t WHERE a = 'unterminated`,
		`SELECT a FROM t WHERE a = @`,
		`INSERT INTO t VALUES 1`,
		`UPDATE t SET a 1`,
		`SELECT a FROM t; garbage`,
		`SELECT a FROM t extra`,
		`SELECT a FROM t WHERE a = -'x'`,
		`CREATE VIEW v AS INSERT INTO t VALUES (1)`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestNullLiteral(t *testing.T) {
	s := parseOne(t, `SELECT a FROM t WHERE a = NULL`)
	q := s.(*SelectStmt)
	if !q.Where[0].R.(ra.Lit).V.IsNull() {
		t.Error("NULL literal not parsed")
	}
}

func TestLexerOffsetsInErrors(t *testing.T) {
	_, err := Parse(`SELECT a FROM t WHERE a = @`)
	if err == nil || !strings.Contains(err.Error(), "offset") {
		t.Errorf("error should carry offset: %v", err)
	}
}

func TestQualifiedStar(t *testing.T) {
	// COUNT(*) only; a bare * select item is not part of the GPSJ subset.
	if _, err := Parse(`SELECT * FROM t`); err == nil {
		t.Error("SELECT * accepted; GPSJ requires explicit projection")
	}
}
