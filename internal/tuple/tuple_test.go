package tuple

import (
	"testing"
	"testing/quick"

	"mindetail/internal/types"
)

func row(vs ...types.Value) Tuple { return Tuple(vs) }

func TestCloneIndependence(t *testing.T) {
	orig := row(types.Int(1), types.Str("a"))
	c := orig.Clone()
	c[0] = types.Int(99)
	if orig[0].AsInt() != 1 {
		t.Error("Clone shares backing array")
	}
	if !Identical(orig, row(types.Int(1), types.Str("a"))) {
		t.Error("original mutated")
	}
}

func TestIdentical(t *testing.T) {
	a := row(types.Int(2), types.Null, types.Str("x"))
	b := row(types.Float(2), types.Null, types.Str("x"))
	if !Identical(a, b) {
		t.Error("coerced tuples should be identical")
	}
	if Identical(a, row(types.Int(2), types.Null)) {
		t.Error("length mismatch should differ")
	}
	if Identical(a, row(types.Int(2), types.Int(0), types.Str("x"))) {
		t.Error("null vs 0 should differ")
	}
}

func TestProjectAndConcat(t *testing.T) {
	a := row(types.Int(1), types.Int(2), types.Int(3))
	p := a.Project([]int{2, 0})
	if !Identical(p, row(types.Int(3), types.Int(1))) {
		t.Errorf("Project = %v", p)
	}
	c := Concat(a[:1], p)
	if !Identical(c, row(types.Int(1), types.Int(3), types.Int(1))) {
		t.Errorf("Concat = %v", c)
	}
	// Concat must not alias its inputs.
	c[0] = types.Int(42)
	if a[0].AsInt() != 1 {
		t.Error("Concat aliases input")
	}
}

func TestKeyMatchesIdentical(t *testing.T) {
	f := func(a1, b1 int64, a2, b2 string) bool {
		ta := row(types.Int(a1), types.Str(a2))
		tb := row(types.Int(b1), types.Str(b2))
		return (ta.Key() == tb.Key()) == Identical(ta, tb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyAt(t *testing.T) {
	a := row(types.Int(1), types.Str("x"), types.Int(2))
	b := row(types.Int(9), types.Str("x"), types.Int(2))
	if a.KeyAt([]int{1, 2}) != b.KeyAt([]int{1, 2}) {
		t.Error("KeyAt over equal positions should match")
	}
	if a.KeyAt([]int{0}) == b.KeyAt([]int{0}) {
		t.Error("KeyAt over differing positions should differ")
	}
}

func TestEncodedSize(t *testing.T) {
	a := row(types.Int(1), types.Str("abc"))
	want := types.EncodedSize(types.Int(1)) + types.EncodedSize(types.Str("abc"))
	if got := a.EncodedSize(); got != want {
		t.Errorf("EncodedSize = %d, want %d", got, want)
	}
}

func TestHasNullAndString(t *testing.T) {
	if row(types.Int(1)).HasNull() {
		t.Error("HasNull false positive")
	}
	if !row(types.Int(1), types.Null).HasNull() {
		t.Error("HasNull false negative")
	}
	if got := row(types.Int(1), types.Str("a")).String(); got != "(1, 'a')" {
		t.Errorf("String = %q", got)
	}
}
