// Package tuple provides the row representation shared by the storage
// engine and the relational algebra evaluator.
package tuple

import (
	"strings"

	"mindetail/internal/types"
)

// Tuple is a flat row of values. Position meaning is given by a schema or a
// column list owned by the relation holding the tuple.
type Tuple []types.Value

// Clone returns a copy of t. Values are immutable, so a shallow copy of the
// slice suffices.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Identical reports positional identity of two tuples under
// types.Identical (so NULLs match and Int/Float coerce).
func Identical(a, b Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !types.Identical(a[i], b[i]) {
			return false
		}
	}
	return true
}

// Project returns the sub-tuple at the given positions.
func (t Tuple) Project(positions []int) Tuple {
	out := make(Tuple, len(positions))
	for i, p := range positions {
		out[i] = t[p]
	}
	return out
}

// Concat returns the concatenation of a and b as a new tuple.
func Concat(a, b Tuple) Tuple {
	out := make(Tuple, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

// Key returns the canonical byte-encoding of the tuple, suitable as a map
// key for grouping and duplicate detection. Tuples that are Identical
// produce equal keys.
func (t Tuple) Key() string {
	var buf []byte
	for _, v := range t {
		buf = types.Encode(buf, v)
	}
	return string(buf)
}

// KeyAt is like Key but encodes only the given positions.
func (t Tuple) KeyAt(positions []int) string {
	var buf []byte
	for _, p := range positions {
		buf = types.Encode(buf, t[p])
	}
	return string(buf)
}

// AppendKey appends the canonical encoding of the whole tuple to buf and
// returns the extended buffer. It is the allocation-free form of Key for
// hot loops: callers keep a scratch buffer, reset it with buf[:0], and use
// string(buf) map lookups (which Go compiles without a copy).
func (t Tuple) AppendKey(buf []byte) []byte {
	for _, v := range t {
		buf = types.Encode(buf, v)
	}
	return buf
}

// AppendKeyAt is AppendKey restricted to the given positions — the scratch-
// buffer form of KeyAt.
func (t Tuple) AppendKeyAt(buf []byte, positions []int) []byte {
	for _, p := range positions {
		buf = types.Encode(buf, t[p])
	}
	return buf
}

// EncodedSize returns the byte-accounting size of the tuple, used for
// storage statistics.
func (t Tuple) EncodedSize() int {
	n := 0
	for _, v := range t {
		n += types.EncodedSize(v)
	}
	return n
}

// HasNull reports whether any field is NULL.
func (t Tuple) HasNull() bool {
	for _, v := range t {
		if v.IsNull() {
			return true
		}
	}
	return false
}

// String renders the tuple as (v1, v2, ...).
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}
