package wire

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"mindetail/internal/maintain"
	"mindetail/internal/ra"
	"mindetail/internal/tuple"
	"mindetail/internal/types"
)

func TestFrameRoundTrip(t *testing.T) {
	for _, f := range []Frame{
		{Kind: KindPing, ID: 0},
		{Kind: KindHello, ID: 1, Body: AppendHello(nil, "s3cret")},
		{Kind: KindExec, ID: 1 << 40, Body: AppendStringBody(nil, "SELECT 1")},
		{Kind: KindOK, ID: 7},
		{Kind: KindError, ID: 8, Body: AppendStringBody(nil, "boom")},
	} {
		enc := AppendFrame(nil, f)
		got, rest, err := DecodeFrame(enc, 0)
		if err != nil {
			t.Fatalf("%s: decode: %v", f.Kind, err)
		}
		if len(rest) != 0 {
			t.Fatalf("%s: %d leftover bytes", f.Kind, len(rest))
		}
		if got.Kind != f.Kind || got.ID != f.ID || !bytes.Equal(got.Body, f.Body) {
			t.Fatalf("%s: round trip mismatch: %+v != %+v", f.Kind, got, f)
		}
	}
}

func TestFrameStreamRoundTrip(t *testing.T) {
	var net bytes.Buffer
	var wbuf []byte
	var err error
	frames := []Frame{
		{Kind: KindQuery, ID: 1, Body: AppendStringBody(nil, "product_sales")},
		{Kind: KindApply, ID: 2, Body: AppendDeltaBody(nil, maintain.Delta{Table: "sale"})},
		{Kind: KindOK, ID: 3},
	}
	for _, f := range frames {
		if wbuf, err = WriteFrame(&net, wbuf, f); err != nil {
			t.Fatal(err)
		}
	}
	var rbuf []byte
	for _, want := range frames {
		var got Frame
		if got, rbuf, err = ReadFrame(&net, rbuf, 0); err != nil {
			t.Fatal(err)
		}
		if got.Kind != want.Kind || got.ID != want.ID || !bytes.Equal(got.Body, want.Body) {
			t.Fatalf("stream mismatch: %+v != %+v", got, want)
		}
	}
}

func TestDecodeFrameRejects(t *testing.T) {
	good := AppendFrame(nil, Frame{Kind: KindPing, ID: 9})
	cases := map[string][]byte{
		"torn header":     good[:4],
		"torn payload":    good[:len(good)-1],
		"flipped crc":     append(append([]byte{}, good[:4]...), append([]byte{good[4] ^ 1}, good[5:]...)...),
		"flipped payload": append(append([]byte{}, good[:len(good)-1]...), good[len(good)-1]^1),
		"empty":           {},
	}
	for name, data := range cases {
		if _, _, err := DecodeFrame(data, 0); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Oversized length prefix against a small limit.
	big := AppendFrame(nil, Frame{Kind: KindExec, ID: 1, Body: make([]byte, 1024)})
	if _, _, err := DecodeFrame(big, 16); err == nil {
		t.Error("oversized frame accepted")
	}
}

func TestResultBodyRoundTrip(t *testing.T) {
	rel := &ra.Relation{
		Cols: ra.Schema{{Table: "t", Name: "a"}, {Name: "b"}},
		Rows: []tuple.Tuple{
			{types.Int(1), types.Str("x")},
			{types.Float(2.5), types.Null},
		},
	}
	rs, err := DecodeResultBody(AppendResultBody(nil, rel))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rs.Cols, []string{"t.a", "b"}) {
		t.Fatalf("cols = %v", rs.Cols)
	}
	if len(rs.Rows) != 2 || !types.Identical(rs.Rows[0][0], types.Int(1)) ||
		!types.Identical(rs.Rows[1][1], types.Null) {
		t.Fatalf("rows = %v", rs.Rows)
	}
	// Absent relation (DDL/DML scripts).
	if rs, err := DecodeResultBody(AppendResultBody(nil, nil)); err != nil || rs != nil {
		t.Fatalf("nil relation: %v %v", rs, err)
	}
}

func TestBatchResultBodyRoundTrip(t *testing.T) {
	in := []error{nil, errors.New("unknown table x"), nil}
	out, err := DecodeBatchResultBody(AppendBatchResultBody(nil, in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, []string{"", "unknown table x", ""}) {
		t.Fatalf("outcomes = %v", out)
	}
}

func TestDeltaBatchBodyRoundTrip(t *testing.T) {
	ds := []maintain.Delta{
		{Table: "sale", Inserts: []tuple.Tuple{{types.Int(1), types.Float(2.5)}}},
		{Table: "time", Deletes: []tuple.Tuple{{types.Int(9)}},
			Updates: []maintain.Update{{Old: tuple.Tuple{types.Str("a")}, New: tuple.Tuple{types.Str("b")}}}},
	}
	got, err := DecodeDeltaBatchBody(AppendDeltaBatchBody(nil, ds))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ds) {
		t.Fatalf("batch round trip mismatch:\n got %#v\nwant %#v", got, ds)
	}
}

// FuzzDecodeFrame mirrors the WAL's FuzzDecodePayload at the wire layer:
// torn or corrupt frames must be rejected with an error — never a panic or
// a huge allocation — and an accepted frame must re-encode byte-
// identically (each valid frame has exactly one wire representation).
// When the frame carries a known body shape, the body decoder is fuzzed
// through the same invariant.
func FuzzDecodeFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(AppendFrame(nil, Frame{Kind: KindPing, ID: 3}))
	f.Add(AppendFrame(nil, Frame{Kind: KindHello, ID: 0, Body: AppendHello(nil, "pw")}))
	f.Add(AppendFrame(nil, Frame{Kind: KindExec, ID: 5, Body: AppendStringBody(nil, "SELECT month FROM v")}))
	f.Add(AppendFrame(nil, Frame{Kind: KindApply, ID: 6, Body: AppendDeltaBody(nil, maintain.Delta{
		Table:   "sale",
		Inserts: []tuple.Tuple{{types.Int(1), types.Str("x"), types.Float(1.5)}},
	})}))
	f.Add(AppendFrame(nil, Frame{Kind: KindBatchResult, ID: 7,
		Body: AppendBatchResultBody(nil, []error{nil, errors.New("e")})}))
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, rest, err := DecodeFrame(data, 1<<20)
		if err != nil {
			return
		}
		enc := AppendFrame(nil, fr)
		if want := data[:len(data)-len(rest)]; !bytes.Equal(enc, want) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", enc, want)
		}
		// Body decoders must also never panic, and accepted bodies must
		// re-encode identically.
		switch fr.Kind {
		case KindHello:
			if _, secret, err := DecodeHello(fr.Body); err == nil {
				if got := AppendHello(nil, secret); !bytes.Equal(got, fr.Body) {
					t.Fatalf("hello re-encode mismatch")
				}
			}
		case KindExec, KindQuery, KindError:
			if s, err := DecodeStringBody(fr.Body); err == nil {
				if got := AppendStringBody(nil, s); !bytes.Equal(got, fr.Body) {
					t.Fatalf("string body re-encode mismatch")
				}
			}
		case KindApply:
			if d, err := DecodeDeltaBody(fr.Body); err == nil {
				if got := AppendDeltaBody(nil, d); !bytes.Equal(got, fr.Body) {
					t.Fatalf("delta body re-encode mismatch")
				}
			}
		case KindApplyBatch:
			if ds, err := DecodeDeltaBatchBody(fr.Body); err == nil {
				if got := AppendDeltaBatchBody(nil, ds); !bytes.Equal(got, fr.Body) {
					t.Fatalf("delta batch re-encode mismatch")
				}
			}
		case KindBatchResult:
			if msgs, err := DecodeBatchResultBody(fr.Body); err == nil {
				errs := make([]error, len(msgs))
				for i, m := range msgs {
					if m != "" {
						errs[i] = errors.New(m)
					}
				}
				if got := AppendBatchResultBody(nil, errs); !bytes.Equal(got, fr.Body) {
					t.Fatalf("batch result re-encode mismatch")
				}
			}
		case KindResult:
			_, _ = DecodeResultBody(fr.Body) // reject-never-panic; result sets
			// are server→client only, so identity is covered by the typed
			// round-trip tests rather than reconstructing an ra.Relation here.
		}
	})
}
