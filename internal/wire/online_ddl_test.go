package wire_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"mindetail/internal/wire"
	"mindetail/internal/wireclient"
)

// TestServerOnlineDDL drives CREATE/DROP MATERIALIZED VIEW over the wire
// EXEC path while other sessions keep committing deltas and querying:
// the backfill runs on the serve path, so it must absorb group-committed
// writes from concurrent connections and install a view that answers
// queries immediately, and the drop must leave later queries with a
// clean "no such view" error rather than a torn catalog.
func TestServerOnlineDDL(t *testing.T) {
	w := newServerWarehouse(t)
	s := startServer(t, w, wire.Config{Secret: "hunter2"})
	addr := s.Addr().String()

	ddl, err := wireclient.Dial(addr, "hunter2")
	if err != nil {
		t.Fatal(err)
	}
	defer ddl.Close()

	// Background sessions: one streams SQL INSERTs through the write path
	// (sources stay in sync, so Verify's recomputation stays meaningful),
	// one reads the preexisting view off the snapshot path.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var bgErr error
	var bgMu sync.Mutex
	fail := func(err error) {
		bgMu.Lock()
		if bgErr == nil {
			bgErr = err
		}
		bgMu.Unlock()
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		c, err := wireclient.Dial(addr, "hunter2")
		if err != nil {
			fail(err)
			return
		}
		defer c.Close()
		for {
			select {
			case <-stop:
				return
			default:
			}
			id := nextSaleID.Add(1)
			ins := fmt.Sprintf("INSERT INTO sale VALUES (%d, %d, %d, 1, %.2f);",
				id, id%3+1, id%10+1, float64(id%16)*0.25)
			if _, err := c.Exec(ins); err != nil {
				fail(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		c, err := wireclient.Dial(addr, "hunter2")
		if err != nil {
			fail(err)
			return
		}
		defer c.Close()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := c.Query("product_sales"); err != nil {
				fail(err)
				return
			}
		}
	}()

	const viewSQL = `CREATE MATERIALIZED VIEW brand_totals_wire AS
SELECT brand, SUM(price) AS total, COUNT(*) AS cnt
FROM sale, product
WHERE sale.productid = product.id
GROUP BY brand;`
	for cycle := 0; cycle < 3; cycle++ {
		if _, err := ddl.Exec(viewSQL); err != nil {
			t.Fatalf("cycle %d: create over wire: %v", cycle, err)
		}
		rs, err := ddl.Query("brand_totals_wire")
		if err != nil {
			t.Fatalf("cycle %d: query new view: %v", cycle, err)
		}
		if len(rs.Rows) == 0 {
			t.Fatalf("cycle %d: backfilled view is empty", cycle)
		}
		if _, err := ddl.Exec(`DROP MATERIALIZED VIEW brand_totals_wire;`); err != nil {
			t.Fatalf("cycle %d: drop over wire: %v", cycle, err)
		}
		if _, err := ddl.Query("brand_totals_wire"); err == nil {
			t.Fatalf("cycle %d: dropped view still answers queries", cycle)
		} else if !strings.Contains(err.Error(), "brand_totals_wire") {
			t.Fatalf("cycle %d: drop error does not name the view: %v", cycle, err)
		}
	}

	close(stop)
	wg.Wait()
	if bgErr != nil {
		t.Fatalf("background session: %v", bgErr)
	}
	if err := w.Verify(); err != nil {
		t.Fatalf("verify after online DDL under wire load: %v", err)
	}
}
