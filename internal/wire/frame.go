// Package wire is the warehouse's framed binary wire protocol: the codec
// shared by the server (this package) and the Go client
// (internal/wireclient).
//
// A connection starts with an 8-byte magic preamble from the client,
// followed by framed messages in both directions. Frames reuse the
// write-ahead log's conventions (internal/wal): length-prefixed,
// CRC-32C-checksummed payloads whose bodies are self-delimiting binary
// with minimal uvarints and exact-kind value tags.
//
// On-the-wire format:
//
//	conn    = magic frame*                     (magic client→server only)
//	magic   = "MDWIRE" 0x01 '\n'               (8 bytes)
//	frame   = len:uint32le crc:uint32le payload[len]   (crc = CRC-32C of payload)
//	payload = kind:byte id:uvarint body
//
// id is the request identifier: the client picks it, the response echoes
// it, so a session may pipeline requests and match answers out of order.
// A frame whose length exceeds the negotiated maximum, whose checksum
// mismatches, or whose payload is torn is a protocol error — the peer
// drops the connection rather than resynchronize.
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"mindetail/internal/wal"
)

// Magic is the connection preamble the client writes before its first
// frame.
var Magic = []byte{'M', 'D', 'W', 'I', 'R', 'E', 0x01, '\n'}

const frameHeader = 8 // uint32 length + uint32 CRC-32C

// DefaultMaxFrame bounds a single frame (16 MiB) so a garbage or hostile
// length prefix cannot force a huge allocation; both ends enforce it.
const DefaultMaxFrame = 16 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Kind identifies a frame's role. Requests and responses share one space;
// responses start at 64.
type Kind byte

const (
	// KindHello opens a session: protocol version and the shared secret.
	KindHello Kind = 1
	// KindPing is a liveness probe; the server answers KindOK.
	KindPing Kind = 2
	// KindExec executes a SQL script (DDL, DML, or queries).
	KindExec Kind = 3
	// KindQuery reads a materialized view through the lock-free snapshot
	// path.
	KindQuery Kind = 4
	// KindApply applies one externally produced delta through the server's
	// group-commit pipeline.
	KindApply Kind = 5
	// KindApplyBatch applies a batch of deltas under one lock acquisition
	// and one group commit.
	KindApplyBatch Kind = 6
	// KindMetrics fetches the warehouse observability snapshot as JSON.
	KindMetrics Kind = 7

	// KindOK is the bodiless success response.
	KindOK Kind = 64
	// KindError carries an error message; the request failed.
	KindError Kind = 65
	// KindResult carries an optional result set (Exec, Query).
	KindResult Kind = 66
	// KindBatchResult carries one outcome per batch member.
	KindBatchResult Kind = 67
	// KindMetricsResult carries the metrics snapshot JSON.
	KindMetricsResult Kind = 68
)

// String returns the symbolic name of the kind.
func (k Kind) String() string {
	switch k {
	case KindHello:
		return "hello"
	case KindPing:
		return "ping"
	case KindExec:
		return "exec"
	case KindQuery:
		return "query"
	case KindApply:
		return "apply"
	case KindApplyBatch:
		return "apply-batch"
	case KindMetrics:
		return "metrics"
	case KindOK:
		return "ok"
	case KindError:
		return "error"
	case KindResult:
		return "result"
	case KindBatchResult:
		return "batch-result"
	case KindMetricsResult:
		return "metrics-result"
	}
	return fmt.Sprintf("Kind(%d)", byte(k))
}

func validKind(k Kind) bool {
	switch k {
	case KindHello, KindPing, KindExec, KindQuery, KindApply, KindApplyBatch,
		KindMetrics, KindOK, KindError, KindResult, KindBatchResult, KindMetricsResult:
		return true
	}
	return false
}

// Frame is one decoded protocol frame: the kind, the request id it belongs
// to, and the kind-specific body (see messages.go for the body codecs).
type Frame struct {
	Kind Kind
	ID   uint64
	Body []byte
}

// AppendFrame appends the full wire encoding of f (header + payload).
func AppendFrame(dst []byte, f Frame) []byte {
	// Payload = kind + id + body; build it in place after the header so a
	// single buffer serves header and payload.
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // header placeholder
	dst = append(dst, byte(f.Kind))
	dst = binary.AppendUvarint(dst, f.ID)
	dst = append(dst, f.Body...)
	payload := dst[start+frameHeader:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(payload, castagnoli))
	return dst
}

// DecodeFrame parses one frame from the head of b, returning the remaining
// bytes. Torn headers, oversized lengths, checksum mismatches, unknown
// kinds, and non-minimal ids are all rejected with an error, never a
// panic; an accepted frame re-encodes byte-identically (the fuzz test's
// invariant).
func DecodeFrame(b []byte, maxFrame int) (Frame, []byte, error) {
	var f Frame
	if len(b) < frameHeader {
		return f, nil, fmt.Errorf("wire: torn frame header")
	}
	n := binary.LittleEndian.Uint32(b)
	crc := binary.LittleEndian.Uint32(b[4:])
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	if uint64(n) > uint64(maxFrame) {
		return f, nil, fmt.Errorf("wire: frame length %d exceeds limit %d", n, maxFrame)
	}
	if uint64(len(b)-frameHeader) < uint64(n) {
		return f, nil, fmt.Errorf("wire: torn payload")
	}
	payload := b[frameHeader : frameHeader+int(n)]
	if crc32.Checksum(payload, castagnoli) != crc {
		return f, nil, fmt.Errorf("wire: frame checksum mismatch")
	}
	var err error
	if f, err = decodeFramePayload(payload); err != nil {
		return f, nil, err
	}
	return f, b[frameHeader+int(n):], nil
}

// decodeFramePayload parses kind + id + body from a checksum-valid
// payload.
func decodeFramePayload(payload []byte) (Frame, error) {
	var f Frame
	if len(payload) == 0 {
		return f, fmt.Errorf("wire: empty frame payload")
	}
	f.Kind = Kind(payload[0])
	if !validKind(f.Kind) {
		return f, fmt.Errorf("wire: unknown frame kind %d", payload[0])
	}
	id, rest, err := wal.Uvarint(payload[1:])
	if err != nil {
		return f, fmt.Errorf("wire: bad frame id")
	}
	f.ID = id
	f.Body = rest
	return f, nil
}

// WriteFrame encodes f into buf (grown as needed) and writes it to w with
// a single Write call, returning the (possibly regrown) buffer for reuse.
func WriteFrame(w io.Writer, buf []byte, f Frame) ([]byte, error) {
	buf = AppendFrame(buf[:0], f)
	_, err := w.Write(buf)
	return buf, err
}

// ReadFrame reads exactly one frame from r, reusing buf for the payload.
// It returns the frame (whose Body aliases the returned buffer — consume
// it before the next ReadFrame) and the buffer for reuse.
func ReadFrame(r io.Reader, buf []byte, maxFrame int) (Frame, []byte, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, buf, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	crc := binary.LittleEndian.Uint32(hdr[4:])
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	if uint64(n) > uint64(maxFrame) {
		return Frame{}, buf, fmt.Errorf("wire: frame length %d exceeds limit %d", n, maxFrame)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	payload := buf[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return Frame{}, buf, err
	}
	if crc32.Checksum(payload, castagnoli) != crc {
		return Frame{}, buf, fmt.Errorf("wire: frame checksum mismatch")
	}
	f, err := decodeFramePayload(payload)
	return f, buf, err
}
