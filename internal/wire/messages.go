package wire

import (
	"encoding/binary"
	"fmt"

	"mindetail/internal/maintain"
	"mindetail/internal/ra"
	"mindetail/internal/tuple"
	"mindetail/internal/wal"
)

// ProtocolVersion is negotiated in the Hello exchange; a mismatch is a
// handshake error.
const ProtocolVersion = 1

// Body codecs. Every decoder consumes its input exactly: trailing bytes
// are a protocol error, so a valid body has one unique encoding (the same
// re-encode-identity discipline as the WAL payload codec, whose value and
// delta helpers these reuse).

// trailing rejects leftover bytes after a complete decode.
func trailing(rest []byte) error {
	if len(rest) != 0 {
		return fmt.Errorf("wire: %d trailing bytes in body", len(rest))
	}
	return nil
}

// AppendHello encodes a Hello body: protocol version + shared secret.
func AppendHello(dst []byte, secret string) []byte {
	dst = binary.AppendUvarint(dst, ProtocolVersion)
	return wal.AppendString(dst, secret)
}

// DecodeHello decodes a Hello body.
func DecodeHello(b []byte) (version uint64, secret string, err error) {
	version, b, err = wal.Uvarint(b)
	if err != nil {
		return 0, "", fmt.Errorf("wire: bad hello version")
	}
	secret, b, err = wal.DecodeString(b)
	if err != nil {
		return 0, "", err
	}
	return version, secret, trailing(b)
}

// AppendStringBody encodes the single-string bodies (Exec SQL, Query view
// name, Error message).
func AppendStringBody(dst []byte, s string) []byte { return wal.AppendString(dst, s) }

// DecodeStringBody decodes a single-string body.
func DecodeStringBody(b []byte) (string, error) {
	s, rest, err := wal.DecodeString(b)
	if err != nil {
		return "", err
	}
	return s, trailing(rest)
}

// AppendDeltaBody encodes a KindApply body.
func AppendDeltaBody(dst []byte, d maintain.Delta) []byte { return wal.AppendDelta(dst, d) }

// DecodeDeltaBody decodes a KindApply body.
func DecodeDeltaBody(b []byte) (maintain.Delta, error) {
	d, rest, err := wal.DecodeDelta(b)
	if err != nil {
		return d, err
	}
	return d, trailing(rest)
}

// AppendDeltaBatchBody encodes a KindApplyBatch body.
func AppendDeltaBatchBody(dst []byte, ds []maintain.Delta) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ds)))
	for _, d := range ds {
		dst = wal.AppendDelta(dst, d)
	}
	return dst
}

// DecodeDeltaBatchBody decodes a KindApplyBatch body.
func DecodeDeltaBatchBody(b []byte) ([]maintain.Delta, error) {
	n, b, err := wal.Uvarint(b)
	if err != nil || n > uint64(len(b)) {
		return nil, fmt.Errorf("wire: bad batch count")
	}
	ds := make([]maintain.Delta, n)
	for i := range ds {
		if ds[i], b, err = wal.DecodeDelta(b); err != nil {
			return nil, err
		}
	}
	return ds, trailing(b)
}

// ResultSet is a decoded query result: qualified column names and rows.
// It is the client-side shape of an ra.Relation without the server's
// schema machinery.
type ResultSet struct {
	Cols []string
	Rows []tuple.Tuple
}

// AppendResultBody encodes a KindResult body: a presence flag (Exec
// returns no relation for DDL/DML scripts), then columns and rows.
func AppendResultBody(dst []byte, rel *ra.Relation) []byte {
	if rel == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	dst = binary.AppendUvarint(dst, uint64(len(rel.Cols)))
	for _, c := range rel.Cols {
		dst = wal.AppendString(dst, c.String())
	}
	dst = binary.AppendUvarint(dst, uint64(len(rel.Rows)))
	for _, r := range rel.Rows {
		dst = wal.AppendTuple(dst, r)
	}
	return dst
}

// DecodeResultBody decodes a KindResult body; a nil ResultSet means the
// statement produced no relation.
func DecodeResultBody(b []byte) (*ResultSet, error) {
	if len(b) < 1 || b[0] > 1 {
		return nil, fmt.Errorf("wire: bad result flag")
	}
	if b[0] == 0 {
		return nil, trailing(b[1:])
	}
	b = b[1:]
	ncols, b, err := wal.Uvarint(b)
	if err != nil || ncols > uint64(len(b)) {
		return nil, fmt.Errorf("wire: bad column count")
	}
	rs := &ResultSet{Cols: make([]string, ncols)}
	for i := range rs.Cols {
		if rs.Cols[i], b, err = wal.DecodeString(b); err != nil {
			return nil, err
		}
	}
	nrows, b, err := wal.Uvarint(b)
	if err != nil || nrows > uint64(len(b)) {
		return nil, fmt.Errorf("wire: bad row count")
	}
	if nrows > 0 {
		rs.Rows = make([]tuple.Tuple, nrows)
		for i := range rs.Rows {
			if rs.Rows[i], b, err = wal.DecodeTuple(b); err != nil {
				return nil, err
			}
		}
	}
	return rs, trailing(b)
}

// AppendBatchResultBody encodes a KindBatchResult body: one outcome string
// per batch member, "" meaning success.
func AppendBatchResultBody(dst []byte, errs []error) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(errs)))
	for _, err := range errs {
		if err == nil {
			dst = wal.AppendString(dst, "")
		} else {
			dst = wal.AppendString(dst, err.Error())
		}
	}
	return dst
}

// DecodeBatchResultBody decodes a KindBatchResult body into per-member
// outcome strings ("" = success).
func DecodeBatchResultBody(b []byte) ([]string, error) {
	n, b, err := wal.Uvarint(b)
	if err != nil || n > uint64(len(b)) {
		return nil, fmt.Errorf("wire: bad batch result count")
	}
	out := make([]string, n)
	for i := range out {
		if out[i], b, err = wal.DecodeString(b); err != nil {
			return nil, err
		}
	}
	return out, trailing(b)
}
