package wire_test

import (
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mindetail/internal/maintain"
	"mindetail/internal/tuple"
	"mindetail/internal/types"
	"mindetail/internal/warehouse"
	"mindetail/internal/wire"
	"mindetail/internal/wireclient"
	"mindetail/internal/workload"
)

// newServerWarehouse builds a small retail warehouse carrying the paper
// view, sized so server tests measure protocol behavior rather than
// propagation cost. Rows are hand-rolled instead of workload.Load so every
// price is a multiple of 0.25: aggregation stays exact and Verify's
// recomputation matches incremental maintenance bit-for-bit.
func newServerWarehouse(t *testing.T) *warehouse.Warehouse {
	t.Helper()
	w := warehouse.New()
	if _, err := w.Exec(workload.DDL()); err != nil {
		t.Fatal(err)
	}
	db := w.Source()
	for i := int64(1); i <= 4; i++ {
		year := int64(1997)
		if i == 4 {
			year = 1998
		}
		row := tuple.Tuple{types.Int(i), types.Int(i), types.Int((i-1)/2 + 1), types.Int(year)}
		if err := db.Insert("time", row); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(1); i <= 10; i++ {
		row := tuple.Tuple{types.Int(i), types.Str(fmt.Sprintf("brand%d", i%3)), types.Str("cat")}
		if err := db.Insert("product", row); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Insert("store", tuple.Tuple{
		types.Int(1), types.Str("1 main st"), types.Str("aalborg"), types.Str("dk"), types.Str("mgr"),
	}); err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 24; i++ {
		row := tuple.Tuple{
			types.Int(i), types.Int(i%4 + 1), types.Int(i%10 + 1), types.Int(1),
			types.Float(float64(i%16) * 0.25),
		}
		if err := db.Insert("sale", row); err != nil {
			t.Fatal(err)
		}
	}
	sql := "CREATE MATERIALIZED VIEW product_sales AS " + workload.ProductSalesSQL(1997) + ";"
	if _, err := w.Exec(sql); err != nil {
		t.Fatal(err)
	}
	return w
}

// nextSaleID hands out fact keys far above anything workload.Load placed.
var nextSaleID atomic.Int64

func init() { nextSaleID.Store(5_000_000) }

// saleInsert builds a single-row sale insert referencing existing
// dimension keys. timeid always lands in the view's selected year, so
// every applied insert adds exactly one to the view's summed TotalCount —
// the accounting the tests below rely on. (ApplyDelta models externally
// produced deltas: it maintains the views without touching the minimized
// source tables, so view contents — not source rows — are what to check.)
func saleInsert() maintain.Delta {
	id := nextSaleID.Add(1)
	return maintain.Delta{Table: "sale", Inserts: []tuple.Tuple{{
		types.Int(id), types.Int(id%3 + 1), types.Int(id%10 + 1), types.Int(1),
		types.Float(float64(id%16) * 0.25),
	}}}
}

// viewCount sums TotalCount across the view's months — the number of
// selected-year sale rows the view has absorbed.
func viewCount(t *testing.T, w *warehouse.Warehouse) int64 {
	t.Helper()
	rel, err := w.Query("product_sales")
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, r := range rel.Rows {
		total += r[2].AsInt()
	}
	return total
}

func startServer(t *testing.T, w *warehouse.Warehouse, cfg wire.Config) *wire.Server {
	t.Helper()
	s, err := wire.Listen(w, "127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestServerEndToEnd(t *testing.T) {
	w := newServerWarehouse(t)
	s := startServer(t, w, wire.Config{Secret: "hunter2"})
	addr := s.Addr().String()

	c, err := wireclient.Dial(addr, "hunter2")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}

	// Query the view through the snapshot path and remember a baseline.
	rs, err := c.Query("product_sales")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if len(rs.Cols) != 4 || rs.Cols[0] != "time.month" {
		t.Fatalf("query cols = %v", rs.Cols)
	}
	baseRows := len(rs.Rows)
	if baseRows == 0 {
		t.Fatal("view is empty")
	}

	// Exec an all-SELECT script (shared-lock read path on the server).
	rs, err = c.Exec("SELECT month, TotalPrice, TotalCount FROM product_sales;")
	if err != nil {
		t.Fatalf("exec select: %v", err)
	}
	if len(rs.Rows) != baseRows {
		t.Fatalf("exec select rows = %d, want %d", len(rs.Rows), baseRows)
	}

	// Exec DML: a script ending in INSERT yields no relation.
	rs, err = c.Exec("INSERT INTO store VALUES (77, 'x', 'y', 'z', 'm');")
	if err != nil {
		t.Fatalf("exec insert: %v", err)
	}
	if rs != nil {
		t.Fatalf("insert returned a relation: %v", rs)
	}

	// Apply a delta through the group-commit pipeline; the view absorbs it.
	base := viewCount(t, w)
	if err := c.ApplyDelta(saleInsert()); err != nil {
		t.Fatalf("apply: %v", err)
	}
	if got := viewCount(t, w); got != base+1 {
		t.Fatalf("view count after apply = %d, want %d", got, base+1)
	}

	// Batch apply: failures are per-member, not all-or-nothing.
	errs, err := c.ApplyDeltaBatch([]maintain.Delta{
		saleInsert(),
		{Table: "nosuch", Inserts: []tuple.Tuple{{types.Int(1)}}},
	})
	if err != nil {
		t.Fatalf("apply batch: %v", err)
	}
	if errs[0] != nil {
		t.Fatalf("good batch member failed: %v", errs[0])
	}
	if errs[1] == nil || !strings.Contains(errs[1].Error(), "nosuch") {
		t.Fatalf("bad batch member error = %v", errs[1])
	}
	if got := viewCount(t, w); got != base+2 {
		t.Fatalf("view count after batch = %d, want %d", got, base+2)
	}

	// Server-side errors come back as errors, not dropped connections.
	if _, err := c.Query("nosuch_view"); err == nil {
		t.Fatal("query of unknown view succeeded")
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after error response: %v", err)
	}

	// Metrics reflect the session's traffic.
	data, err := c.Metrics()
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	for _, want := range []string{"wire.requests", "wire.conns.accepted", "wire.request.ns"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("metrics JSON missing %q", want)
		}
	}
}

func TestServerRejectsBadSecret(t *testing.T) {
	w := newServerWarehouse(t)
	s := startServer(t, w, wire.Config{Secret: "hunter2"})

	if _, err := wireclient.Dial(s.Addr().String(), "wrong"); err == nil ||
		!strings.Contains(err.Error(), "authentication failed") {
		t.Fatalf("bad secret: err = %v", err)
	}

	// The session must still be admitted with the right secret afterwards.
	c, err := wireclient.Dial(s.Addr().String(), "hunter2")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	data, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "wire.auth.failures") {
		t.Error("metrics JSON missing wire.auth.failures")
	}
}

func TestServerAdmissionControl(t *testing.T) {
	w := newServerWarehouse(t)
	s := startServer(t, w, wire.Config{Secret: "s", MaxConns: 1})

	c1, err := wireclient.Dial(s.Addr().String(), "s")
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	// Second connection is over capacity: the handshake fails with the
	// server's capacity error rather than a bare EOF.
	if _, err := wireclient.Dial(s.Addr().String(), "s"); err == nil ||
		!strings.Contains(err.Error(), "capacity") {
		t.Fatalf("over-capacity dial: err = %v", err)
	}

	// The admitted session is unaffected, and the slot frees on close.
	if err := c1.Ping(); err != nil {
		t.Fatal(err)
	}
	c1.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c2, err := wireclient.Dial(s.Addr().String(), "s")
		if err == nil {
			c2.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed after close: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerDisconnectNoLeak is the satellite regression: clients that
// vanish mid-request must not leak session goroutines or abandon
// in-flight pipeline acks. It tears connections while requests are in
// flight, closes the server, and requires the goroutine count to return
// to its pre-server baseline.
func TestServerDisconnectNoLeak(t *testing.T) {
	w := newServerWarehouse(t)

	runtime.GC()
	baseline := runtime.NumGoroutine()

	s := startServer(t, w, wire.Config{Secret: "s", MaxInFlight: 4})

	const nClients = 8
	var wg sync.WaitGroup
	clients := make([]*wireclient.Client, nClients)
	for i := range clients {
		c, err := wireclient.Dial(s.Addr().String(), "s")
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
		wg.Add(1)
		go func(i int, c *wireclient.Client) {
			defer wg.Done()
			// Mix group-commit applies and snapshot reads until the
			// connection is torn out from under us.
			for n := 0; ; n++ {
				var err error
				if n%4 == 0 {
					err = c.ApplyDelta(saleInsert())
				} else {
					_, err = c.Query("product_sales")
				}
				if err != nil {
					return
				}
			}
		}(i, c)
	}

	// Let traffic build, then tear every connection abruptly mid-request.
	time.Sleep(20 * time.Millisecond)
	for _, c := range clients {
		c.Close()
	}
	wg.Wait()

	if err := s.Close(); err != nil {
		t.Fatalf("server close: %v", err)
	}

	// Every session, handler, writer, accept-loop, and pipeline goroutine
	// must be gone. Poll: the runtime needs a moment to retire them.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
				baseline, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerCloseDrainsInFlight verifies shutdown while sessions are mid
// request: Close severs connections, waits for handlers, and returns
// without stranding anyone (the 30s watchdog catches a drain deadlock).
func TestServerCloseDrainsInFlight(t *testing.T) {
	w := newServerWarehouse(t)
	base := viewCount(t, w)
	s := startServer(t, w, wire.Config{Secret: "s"})

	const nClients = 6
	var wg sync.WaitGroup
	for i := 0; i < nClients; i++ {
		c, err := wireclient.Dial(s.Addr().String(), "s")
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(c *wireclient.Client) {
			defer wg.Done()
			defer c.Close()
			for {
				if err := c.ApplyDelta(saleInsert()); err != nil {
					return
				}
			}
		}(c)
	}

	time.Sleep(20 * time.Millisecond)
	closed := make(chan struct{})
	go func() {
		defer close(closed)
		if err := s.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	select {
	case <-closed:
	case <-time.After(30 * time.Second):
		t.Fatal("server Close did not drain within 30s")
	}
	wg.Wait()

	// Every delta the pipeline committed made it into the view — acked or
	// not, none were half-applied or dropped mid-drain.
	committed := w.MetricsSnapshot().Counters["warehouse.batch.deltas"]
	if got := viewCount(t, w); got != base+committed {
		t.Fatalf("view count = %d, want base %d + committed %d", got, base, committed)
	}
}

// TestServerConcurrentSessions drives mixed traffic over many sessions and
// cross-checks totals, exercising the per-session in-flight cap and the
// shared pipeline under contention.
func TestServerConcurrentSessions(t *testing.T) {
	w := newServerWarehouse(t)
	base := viewCount(t, w)
	s := startServer(t, w, wire.Config{Secret: "s", MaxInFlight: 2})

	const nClients, nOps = 6, 20
	var applied atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, nClients)
	for i := 0; i < nClients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := wireclient.Dial(s.Addr().String(), "s")
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			for n := 0; n < nOps; n++ {
				if n%2 == 0 {
					if err := c.ApplyDelta(saleInsert()); err != nil {
						errCh <- fmt.Errorf("apply: %w", err)
						return
					}
					applied.Add(1)
				} else if _, err := c.Query("product_sales"); err != nil {
					errCh <- fmt.Errorf("query: %w", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	snap := w.MetricsSnapshot()
	if got := snap.Counters["warehouse.batch.deltas"]; got != applied.Load() {
		t.Fatalf("batch.deltas = %d, want %d", got, applied.Load())
	}
	if got := viewCount(t, w); got != base+applied.Load() {
		t.Fatalf("view count = %d, want base %d + applied %d", got, base, applied.Load())
	}
}

// TestServerClosedListener: Serve on a pre-closed listener must not hang
// Close.
func TestServerClosedListener(t *testing.T) {
	w := newServerWarehouse(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln.Close()
	s := wire.Serve(w, ln, wire.Config{Secret: "s"})
	if err := s.Close(); err == nil {
		t.Log("close after dead listener returned nil (listener error already consumed)")
	}
}
