package wire

import (
	"crypto/subtle"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"mindetail/internal/obs"
	"mindetail/internal/warehouse"
)

// Server defaults; all overridable through Config.
const (
	DefaultMaxConns         = 1024
	DefaultMaxInFlight      = 32
	DefaultHandshakeTimeout = 5 * time.Second
)

// Config tunes a Server.
type Config struct {
	// Secret is the shared secret clients must present in the Hello
	// handshake. Empty means no authentication.
	Secret string
	// MaxConns caps concurrent sessions (admission control); further
	// connections are answered with an error frame and closed. <=0 selects
	// DefaultMaxConns.
	MaxConns int
	// MaxInFlight caps concurrently executing requests per session. When a
	// client pipelines past the cap, the session stops reading its socket —
	// TCP backpressure, not an error. <=0 selects DefaultMaxInFlight.
	MaxInFlight int
	// MaxFrame bounds a single request frame. <=0 selects DefaultMaxFrame.
	MaxFrame int
	// PipelineDepth is the group-commit batch ceiling for single-delta
	// APPLY requests (<=0 selects warehouse.DefaultPipelineDepth).
	PipelineDepth int
	// HandshakeTimeout bounds the magic+Hello exchange. <=0 selects
	// DefaultHandshakeTimeout.
	HandshakeTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxConns <= 0 {
		c.MaxConns = DefaultMaxConns
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = DefaultMaxInFlight
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = DefaultMaxFrame
	}
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = DefaultHandshakeTimeout
	}
	return c
}

// Server is a concurrent TCP front end over one Warehouse. Reads (QUERY,
// all-SELECT EXEC scripts) ride the warehouse's lock-free snapshot /
// shared-lock paths and overlap freely; single-delta APPLY requests from
// all sessions funnel into one group-commit Pipeline so WAL fsyncs
// amortize across connections; batch APPLY uses ApplyDeltaBatch directly.
type Server struct {
	w    *warehouse.Warehouse
	pipe *warehouse.Pipeline
	cfg  Config
	ln   net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	wg sync.WaitGroup // accept loop + sessions

	connsAccepted *obs.Counter
	connsRejected *obs.Counter
	connsActive   *obs.Gauge
	authFailures  *obs.Counter
	requests      *obs.Counter
	requestErrs   *obs.Counter
	requestNs     *obs.Histogram
}

// Listen starts a server on a fresh TCP listener at addr ("host:port";
// ":0" picks a free port, readable via Addr).
func Listen(w *warehouse.Warehouse, addr string, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return Serve(w, ln, cfg), nil
}

// Serve starts a server on an existing listener. The server owns the
// listener and its group-commit pipeline; Close releases both.
func Serve(w *warehouse.Warehouse, ln net.Listener, cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := w.ObsRegistry()
	s := &Server{
		w:     w,
		pipe:  warehouse.NewPipeline(w, cfg.PipelineDepth),
		cfg:   cfg,
		ln:    ln,
		conns: make(map[net.Conn]struct{}),

		connsAccepted: reg.Counter("wire.conns.accepted"),
		connsRejected: reg.Counter("wire.conns.rejected"),
		connsActive:   reg.Gauge("wire.conns.active"),
		authFailures:  reg.Counter("wire.auth.failures"),
		requests:      reg.Counter("wire.requests"),
		requestErrs:   reg.Counter("wire.request.errors"),
		requestNs:     reg.Histogram("wire.request.ns"),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener's address (useful with ":0").
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops accepting, severs every session's connection, waits for all
// session goroutines to drain (in-flight requests run to completion and
// their pipeline acks are consumed — never abandoned), then closes the
// group-commit pipeline. Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	if already {
		err = nil
	}
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	s.pipe.Close()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		if len(s.conns) >= s.cfg.MaxConns {
			s.mu.Unlock()
			s.connsRejected.Inc()
			// Answer with an error frame (best effort, bounded) so the
			// client's handshake fails with a reason instead of an EOF.
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer conn.Close()
				_ = conn.SetDeadline(time.Now().Add(s.cfg.HandshakeTimeout))
				_, _ = WriteFrame(conn, nil, Frame{Kind: KindError, ID: 0,
					Body: AppendStringBody(nil, "wire: server at connection capacity")})
				// Hold the connection open (discarding the client's handshake
				// bytes) until the client closes or the deadline passes —
				// closing immediately can RST the error frame away before the
				// client reads it.
				_, _ = io.Copy(io.Discard, conn)
			}()
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.connsAccepted.Inc()
		s.connsActive.Add(1)
		s.wg.Add(1)
		go s.session(conn)
	}
}

// session owns one authenticated connection: a reader that admits at most
// MaxInFlight concurrent handlers (backpressure = it simply stops reading)
// and a writer that serializes response frames. On disconnect — graceful
// or torn — every in-flight handler still runs to completion and has its
// response consumed, so a dead client can neither leak a goroutine nor
// abandon a group-commit ack.
func (s *Server) session(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.connsActive.Add(-1)
	}()

	if err := s.handshake(conn); err != nil {
		return
	}

	writeCh := make(chan Frame, s.cfg.MaxInFlight)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		var buf []byte
		var err error
		broken := false
		for f := range writeCh {
			if broken {
				continue // keep draining so handlers never block
			}
			if buf, err = WriteFrame(conn, buf, f); err != nil {
				broken = true
			}
		}
	}()

	sem := make(chan struct{}, s.cfg.MaxInFlight)
	var handlers sync.WaitGroup
	var rbuf []byte
	for {
		var req Frame
		var err error
		req, rbuf, err = ReadFrame(conn, rbuf, s.cfg.MaxFrame)
		if err != nil {
			break // disconnect or protocol error: drain and exit
		}
		// The frame body aliases the session read buffer; copy it so the
		// handler survives the next ReadFrame overwriting it.
		req.Body = append([]byte(nil), req.Body...)
		sem <- struct{}{} // in-flight cap: blocks the reader when saturated
		handlers.Add(1)
		go func(req Frame) {
			defer handlers.Done()
			defer func() { <-sem }()
			writeCh <- s.handle(req)
		}(req)
	}
	handlers.Wait()
	close(writeCh)
	<-writerDone
}

// handshake validates the magic preamble and the Hello frame within the
// handshake timeout.
func (s *Server) handshake(conn net.Conn) error {
	if err := conn.SetDeadline(time.Now().Add(s.cfg.HandshakeTimeout)); err != nil {
		return err
	}
	var magic [8]byte
	if _, err := io.ReadFull(conn, magic[:]); err != nil {
		return err
	}
	if string(magic[:]) != string(Magic) {
		return fmt.Errorf("wire: bad magic preamble")
	}
	hello, _, err := ReadFrame(conn, nil, s.cfg.MaxFrame)
	if err != nil {
		return err
	}
	fail := func(msg string) error {
		s.authFailures.Inc()
		_, _ = WriteFrame(conn, nil, Frame{Kind: KindError, ID: hello.ID,
			Body: AppendStringBody(nil, msg)})
		return fmt.Errorf("wire: %s", msg)
	}
	if hello.Kind != KindHello {
		return fail("handshake must start with a hello frame")
	}
	version, secret, err := DecodeHello(hello.Body)
	if err != nil {
		return fail("malformed hello frame")
	}
	if version != ProtocolVersion {
		return fail(fmt.Sprintf("unsupported protocol version %d", version))
	}
	if subtle.ConstantTimeCompare([]byte(secret), []byte(s.cfg.Secret)) != 1 {
		return fail("authentication failed")
	}
	if _, err := WriteFrame(conn, nil, Frame{Kind: KindOK, ID: hello.ID}); err != nil {
		return err
	}
	return conn.SetDeadline(time.Time{})
}

// handle executes one request and builds its response frame.
func (s *Server) handle(req Frame) Frame {
	start := time.Now()
	s.requests.Inc()
	resp := s.dispatch(req)
	if resp.Kind == KindError {
		s.requestErrs.Inc()
	}
	s.requestNs.ObserveSince(start)
	return resp
}

func (s *Server) dispatch(req Frame) Frame {
	fail := func(err error) Frame {
		return Frame{Kind: KindError, ID: req.ID, Body: AppendStringBody(nil, err.Error())}
	}
	switch req.Kind {
	case KindPing:
		return Frame{Kind: KindOK, ID: req.ID}
	case KindExec:
		sql, err := DecodeStringBody(req.Body)
		if err != nil {
			return fail(err)
		}
		rel, err := s.w.Exec(sql)
		if err != nil {
			return fail(err)
		}
		return Frame{Kind: KindResult, ID: req.ID, Body: AppendResultBody(nil, rel)}
	case KindQuery:
		view, err := DecodeStringBody(req.Body)
		if err != nil {
			return fail(err)
		}
		rel, err := s.w.Query(view)
		if err != nil {
			return fail(err)
		}
		return Frame{Kind: KindResult, ID: req.ID, Body: AppendResultBody(nil, rel)}
	case KindApply:
		d, err := DecodeDeltaBody(req.Body)
		if err != nil {
			return fail(err)
		}
		if err := s.pipe.Submit(d); err != nil {
			return fail(err)
		}
		return Frame{Kind: KindOK, ID: req.ID}
	case KindApplyBatch:
		ds, err := DecodeDeltaBatchBody(req.Body)
		if err != nil {
			return fail(err)
		}
		errs := s.w.ApplyDeltaBatch(ds)
		return Frame{Kind: KindBatchResult, ID: req.ID, Body: AppendBatchResultBody(nil, errs)}
	case KindMetrics:
		data, err := s.w.MetricsSnapshot().MarshalJSONIndent()
		if err != nil {
			return fail(err)
		}
		return Frame{Kind: KindMetricsResult, ID: req.ID, Body: data}
	default:
		return fail(fmt.Errorf("wire: unexpected request kind %s", req.Kind))
	}
}
