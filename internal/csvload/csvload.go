// Package csvload imports base-table data from CSV into the storage engine
// and exports relations back to CSV — the bulk path for loading real
// operational extracts into the warehouse.
package csvload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"mindetail/internal/ra"
	"mindetail/internal/schema"
	"mindetail/internal/storage"
	"mindetail/internal/tuple"
	"mindetail/internal/types"
)

// Import reads CSV rows into the named table. With header set, the first
// record must name the table's attributes (any order); otherwise records
// are positional in schema order. Values are parsed according to the
// column types. It returns the number of rows inserted; on error the rows
// inserted so far remain.
func Import(db *storage.DB, table string, r io.Reader, header bool) (int, error) {
	meta := db.Catalog().Table(table)
	if meta == nil {
		return 0, fmt.Errorf("csvload: unknown table %s", table)
	}
	return Read(meta, r, header, func(row tuple.Tuple) error {
		return db.Insert(table, row)
	})
}

// Read parses CSV records into tuples for the given table schema, calling
// fn for each row. It returns the number of rows successfully delivered.
func Read(meta *schema.Table, r io.Reader, header bool, fn func(tuple.Tuple) error) (int, error) {
	table := meta.Name
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true

	// perm[i] is the schema position of CSV column i.
	perm := make([]int, len(meta.Attrs))
	for i := range perm {
		perm[i] = i
	}
	first := true
	n := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, fmt.Errorf("csvload: %s: %w", table, err)
		}
		if first && header {
			first = false
			if len(rec) != len(meta.Attrs) {
				return n, fmt.Errorf("csvload: %s: header has %d columns, table has %d", table, len(rec), len(meta.Attrs))
			}
			for i, name := range rec {
				pos := meta.AttrIndex(strings.ToLower(strings.TrimSpace(name)))
				if pos < 0 {
					return n, fmt.Errorf("csvload: %s: unknown column %q in header", table, name)
				}
				perm[i] = pos
			}
			continue
		}
		first = false
		if len(rec) != len(meta.Attrs) {
			return n, fmt.Errorf("csvload: %s: record has %d fields, want %d", table, len(rec), len(meta.Attrs))
		}
		row := make(tuple.Tuple, len(meta.Attrs))
		for i, field := range rec {
			v, err := parseValue(meta.Attrs[perm[i]], field)
			if err != nil {
				return n, fmt.Errorf("csvload: %s row %d: %w", table, n+1, err)
			}
			row[perm[i]] = v
		}
		if err := fn(row); err != nil {
			return n, err
		}
		n++
	}
}

func parseValue(attr schema.Attribute, field string) (types.Value, error) {
	field = strings.TrimSpace(field)
	switch attr.Type {
	case types.KindInt:
		n, err := strconv.ParseInt(field, 10, 64)
		if err != nil {
			return types.Null, fmt.Errorf("column %s: %q is not an integer", attr.Name, field)
		}
		return types.Int(n), nil
	case types.KindFloat:
		f, err := strconv.ParseFloat(field, 64)
		if err != nil {
			return types.Null, fmt.Errorf("column %s: %q is not a number", attr.Name, field)
		}
		return types.Float(f), nil
	case types.KindBool:
		b, err := strconv.ParseBool(strings.ToLower(field))
		if err != nil {
			return types.Null, fmt.Errorf("column %s: %q is not a boolean", attr.Name, field)
		}
		return types.Bool(b), nil
	default:
		return types.Str(field), nil
	}
}

// Export writes a relation as CSV with a header row of column names.
func Export(rel *ra.Relation, w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(rel.Cols))
	for i, c := range rel.Cols {
		header[i] = c.String()
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, row := range rel.Sorted().Rows {
		rec := make([]string, len(row))
		for i, v := range row {
			rec[i] = v.Display()
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
