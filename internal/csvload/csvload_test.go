package csvload

import (
	"strings"
	"testing"

	"mindetail/internal/ra"
	"mindetail/internal/schema"
	"mindetail/internal/sqlparse"
	"mindetail/internal/storage"
	"mindetail/internal/types"
)

func newDB(t *testing.T) *storage.DB {
	t.Helper()
	stmts, err := sqlparse.ParseAll(`
		CREATE TABLE product (id INTEGER PRIMARY KEY, brand VARCHAR, active BOOLEAN);
		CREATE TABLE sale (id INTEGER PRIMARY KEY, productid INTEGER REFERENCES product, price FLOAT);`)
	if err != nil {
		t.Fatal(err)
	}
	cat := schema.NewCatalog()
	var fks []schema.ForeignKey
	for _, s := range stmts {
		ct := s.(*sqlparse.CreateTable)
		if err := cat.AddTable(ct.Table); err != nil {
			t.Fatal(err)
		}
		fks = append(fks, ct.FKs...)
	}
	for _, fk := range fks {
		if err := cat.AddForeignKey(fk); err != nil {
			t.Fatal(err)
		}
	}
	return storage.NewDB(cat)
}

func TestImportPositional(t *testing.T) {
	db := newDB(t)
	n, err := Import(db, "product", strings.NewReader("1,acme,true\n2,bolt,false\n"), false)
	if err != nil || n != 2 {
		t.Fatalf("Import = %d, %v", n, err)
	}
	row := db.Table("product").Get(types.Int(2))
	if row[1].AsString() != "bolt" || row[2].AsBool() {
		t.Errorf("row = %v", row)
	}
}

func TestImportWithHeaderReordered(t *testing.T) {
	db := newDB(t)
	csv := "brand, active, id\nacme,true,1\nbolt,false,2\n"
	n, err := Import(db, "product", strings.NewReader(csv), true)
	if err != nil || n != 2 {
		t.Fatalf("Import = %d, %v", n, err)
	}
	row := db.Table("product").Get(types.Int(1))
	if row == nil || row[1].AsString() != "acme" {
		t.Errorf("row = %v", row)
	}
}

func TestImportTypesAndErrors(t *testing.T) {
	db := newDB(t)
	if _, err := Import(db, "product", strings.NewReader("1,acme,true\n"), false); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		table, csv string
		header     bool
		errSub     string
	}{
		{"nosuch", "1\n", false, "unknown table"},
		{"sale", "1,1\n", false, "fields"},
		{"sale", "x,1,2.5\n", false, "not an integer"},
		{"sale", "2,1,abc\n", false, "not a number"},
		{"product", "2,acme,maybe\n", false, "not a boolean"},
		{"product", "id,brand\n", true, "header has 2 columns"},
		{"product", "id,brand,nope\n1,acme,true\n", true, "unknown column"},
		{"sale", "5,999,1.0\n", false, "referential integrity"},
		{"sale", "\"unterminated\n", false, "csvload"},
	}
	for _, c := range cases {
		_, err := Import(db, c.table, strings.NewReader(c.csv), c.header)
		if err == nil || !strings.Contains(err.Error(), c.errSub) {
			t.Errorf("%q: got %v, want error containing %q", c.csv, err, c.errSub)
		}
	}
	// Floats accept integers (coercion in storage).
	if _, err := Import(db, "sale", strings.NewReader("7,1,3\n"), false); err != nil {
		t.Errorf("integer into float column: %v", err)
	}
}

func TestExportRoundTrip(t *testing.T) {
	db := newDB(t)
	if _, err := Import(db, "product", strings.NewReader("2,bolt,false\n1,acme,true\n"), false); err != nil {
		t.Fatal(err)
	}
	rel := ra.FromTable(db.Table("product"), "product")
	var b strings.Builder
	if err := Export(rel, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("export:\n%s", out)
	}
	if lines[0] != "product.id,product.brand,product.active" {
		t.Errorf("header = %q", lines[0])
	}
	// Sorted by key: id 1 first.
	if !strings.HasPrefix(lines[1], "1,acme") {
		t.Errorf("row 1 = %q", lines[1])
	}

	// Re-import the exported data (minus the qualified header) elsewhere.
	db2 := newDB(t)
	body := strings.Join(lines[1:], "\n") + "\n"
	n, err := Import(db2, "product", strings.NewReader(body), false)
	if err != nil || n != 2 {
		t.Fatalf("re-import = %d, %v", n, err)
	}
}
