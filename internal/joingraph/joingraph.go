// Package joingraph implements the extended join graph of the paper's
// Definition 2, its g/k annotations, the "depends" relation of Section 2.2,
// and the Need / Need₀ functions of Definitions 3 and 4 that identify the
// minimal set of base tables a delta must join with to locate the affected
// view tuples.
package joingraph

import (
	"fmt"
	"sort"
	"strings"

	"mindetail/internal/gpsj"
)

// Annotation marks a vertex of the extended join graph (Definition 2):
// k when a key of the table is a group-by attribute of the view, g when any
// (non-key) attribute of the table is.
type Annotation int

// The vertex annotations.
const (
	AnnotNone Annotation = iota
	AnnotG
	AnnotK
)

// String renders the annotation as in Figure 2.
func (a Annotation) String() string {
	switch a {
	case AnnotG:
		return "g"
	case AnnotK:
		return "k"
	default:
		return ""
	}
}

// Graph is the extended join graph G(V) of a GPSJ view: a tree whose
// vertices are the base tables and whose edges e(Ri, Rj) correspond to join
// conditions Ri.b = Rj.a with a the key of Rj.
type Graph struct {
	View *gpsj.View

	// Root is the base table at the root of the tree (the fact table in a
	// star schema).
	Root string

	// Parent maps each non-root table to its parent.
	Parent map[string]string

	// Children maps each table to its children, sorted for determinism.
	Children map[string][]string

	// EdgeTo maps each non-root table Rj to the join condition
	// parent(Rj).b = Rj.a that created the edge.
	EdgeTo map[string]gpsj.JoinCond

	// Annot maps each table to its annotation.
	Annot map[string]Annotation

	// depends maps Ri to the set of tables it depends on (Section 2.2):
	// children joined on their key with referential integrity declared and
	// no exposed updates.
	depends map[string][]string
}

// Build constructs and validates the extended join graph of a view. It
// rejects views whose join graph is not a tree (Section 3.3: "we assume
// that the graph is a tree ... and that it has no self-joins").
func Build(v *gpsj.View) (*Graph, error) {
	g := &Graph{
		View:     v,
		Parent:   make(map[string]string),
		Children: make(map[string][]string),
		EdgeTo:   make(map[string]gpsj.JoinCond),
		Annot:    make(map[string]Annotation),
		depends:  make(map[string][]string),
	}
	for _, j := range v.Joins {
		if j.Left == j.Right {
			return nil, fmt.Errorf("joingraph: view %s: self-join on %s", v.Name, j.Left)
		}
		if _, dup := g.Parent[j.Right]; dup {
			return nil, fmt.Errorf("joingraph: view %s: table %s is joined on its key from both %s and %s; the join graph must be a tree",
				v.Name, j.Right, g.Parent[j.Right], j.Left)
		}
		g.Parent[j.Right] = j.Left
		g.Children[j.Left] = append(g.Children[j.Left], j.Right)
		g.EdgeTo[j.Right] = j
	}
	for _, cs := range g.Children {
		sort.Strings(cs)
	}

	// Find the unique root: the table with no incoming edge.
	var roots []string
	for _, t := range v.Tables {
		if _, hasParent := g.Parent[t]; !hasParent {
			roots = append(roots, t)
		}
	}
	sort.Strings(roots)
	switch len(roots) {
	case 1:
		g.Root = roots[0]
	case 0:
		return nil, fmt.Errorf("joingraph: view %s: join graph has a cycle", v.Name)
	default:
		return nil, fmt.Errorf("joingraph: view %s: join graph has multiple roots %v; it must be a tree", v.Name, roots)
	}
	// Cycle check: walking to the root from every vertex must terminate.
	for _, t := range v.Tables {
		seen := map[string]bool{}
		cur := t
		for cur != g.Root {
			if seen[cur] {
				return nil, fmt.Errorf("joingraph: view %s: join graph has a cycle through %s", v.Name, cur)
			}
			seen[cur] = true
			cur = g.Parent[cur]
		}
	}

	// Annotations (Definition 2): k dominates g.
	cat := v.Catalog()
	for _, a := range v.GroupBy() {
		if cat.Table(a.Table).Key == a.Name {
			g.Annot[a.Table] = AnnotK
		} else if g.Annot[a.Table] != AnnotK {
			g.Annot[a.Table] = AnnotG
		}
	}

	// Depends (Section 2.2): Ri depends on Rj if V joins Ri.b = Rj.a with
	// a the key of Rj, referential integrity holds from Ri.b to Rj.a, and
	// Rj has no exposed updates.
	for _, j := range v.Joins {
		if !cat.HasRI(j.Left, j.LeftAttr, j.Right) {
			continue
		}
		if v.HasExposedUpdates(j.Right) {
			continue
		}
		g.depends[j.Left] = append(g.depends[j.Left], j.Right)
	}
	for _, ds := range g.depends {
		sort.Strings(ds)
	}
	return g, nil
}

// Depends returns the tables that table directly depends on.
func (g *Graph) Depends(table string) []string {
	return append([]string(nil), g.depends[table]...)
}

// TransitivelyDependsOnAll reports whether table reaches every other base
// table of the view through the depends relation — the first elimination
// condition of Section 3.3.
func (g *Graph) TransitivelyDependsOnAll(table string) bool {
	reached := map[string]bool{table: true}
	queue := []string{table}
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		for _, d := range g.depends[t] {
			if !reached[d] {
				reached[d] = true
				queue = append(queue, d)
			}
		}
	}
	for _, t := range g.View.Tables {
		if !reached[t] {
			return false
		}
	}
	return true
}

// Subtree returns the tables of the subtree rooted at table (inclusive),
// sorted.
func (g *Graph) Subtree(table string) []string {
	var out []string
	var walk func(string)
	walk = func(t string) {
		out = append(out, t)
		for _, c := range g.Children[t] {
			walk(c)
		}
	}
	walk(table)
	sort.Strings(out)
	return out
}

// subtreeHasGK reports whether the subtree rooted at table contains a
// vertex annotated k or g.
func (g *Graph) subtreeHasGK(table string) bool {
	if g.Annot[table] != AnnotNone {
		return true
	}
	for _, c := range g.Children[table] {
		if g.subtreeHasGK(c) {
			return true
		}
	}
	return false
}

// Need computes Need(Ri, G(V)) per Definition 3:
//
//   - ∅ when Ri is annotated k (its key determines the affected groups);
//   - {Rj} ∪ Need(Rj) when Ri is a non-root vertex with parent Rj —
//     the delta must join up the tree toward the root;
//   - Need₀(R0) when Ri is the (non-k) root.
func (g *Graph) Need(table string) []string {
	set := make(map[string]bool)
	g.need(table, set)
	return sortedKeys(set)
}

func (g *Graph) need(table string, out map[string]bool) {
	if g.Annot[table] == AnnotK {
		return
	}
	if parent, ok := g.Parent[table]; ok {
		if !out[parent] {
			out[parent] = true
			g.need(parent, out)
		}
		return
	}
	g.need0(table, out)
}

// Need0 computes Need₀(Ri, G(V)) per Definition 4: the minimal set of base
// tables below Ri whose group-by attributes form a combined key to V. A
// child subtree is included only when it contains a g- or k-annotated
// vertex, and recursion stops below k-annotated vertices (each tuple of a
// k table joins with exactly one tuple of its subtree, so deeper group-bys
// cannot refine the groups).
func (g *Graph) Need0(table string) []string {
	set := make(map[string]bool)
	g.need0(table, set)
	return sortedKeys(set)
}

func (g *Graph) need0(table string, out map[string]bool) {
	if g.Annot[table] == AnnotK {
		return
	}
	for _, c := range g.Children[table] {
		if !g.subtreeHasGK(c) {
			continue
		}
		out[c] = true
		g.need0(c, out)
	}
}

// NeededBySomeone reports whether table appears in the Need set of any
// other base table — the second elimination condition of Section 3.3.
func (g *Graph) NeededBySomeone(table string) bool {
	for _, t := range g.View.Tables {
		if t == table {
			continue
		}
		for _, n := range g.Need(t) {
			if n == table {
				return true
			}
		}
	}
	return false
}

// PathToRoot returns the tables on the path from table to the root,
// excluding table itself, in order.
func (g *Graph) PathToRoot(table string) []string {
	var out []string
	cur := table
	for cur != g.Root {
		cur = g.Parent[cur]
		out = append(out, cur)
	}
	return out
}

// Text renders the graph as an indented tree with annotations — the
// textual form of the paper's Figure 2.
func (g *Graph) Text() string {
	var b strings.Builder
	var walk func(t string, depth int)
	walk = func(t string, depth int) {
		for i := 0; i < depth; i++ {
			b.WriteString("  ")
		}
		b.WriteString(t)
		if a := g.Annot[t]; a != AnnotNone {
			fmt.Fprintf(&b, " [%s]", a)
		}
		b.WriteByte('\n')
		for _, c := range g.Children[t] {
			walk(c, depth+1)
		}
	}
	walk(g.Root, 0)
	return b.String()
}

// Dot renders the graph in Graphviz DOT syntax (Figure 2 as a picture).
func (g *Graph) Dot() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n", g.View.Name)
	var names []string
	for _, t := range g.View.Tables {
		names = append(names, t)
	}
	sort.Strings(names)
	for _, t := range names {
		label := t
		if a := g.Annot[t]; a != AnnotNone {
			label += " (" + a.String() + ")"
		}
		fmt.Fprintf(&b, "  %q [label=%q];\n", t, label)
	}
	var edges []string
	for child, j := range g.EdgeTo {
		edges = append(edges, fmt.Sprintf("  %q -> %q [label=%q];\n", j.Left, child, j.String()))
	}
	sort.Strings(edges)
	for _, e := range edges {
		b.WriteString(e)
	}
	b.WriteString("}\n")
	return b.String()
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
