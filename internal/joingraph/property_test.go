package joingraph

import (
	"strings"
	"testing"
)

// TestNeedProperties checks structural invariants of Definitions 3 and 4
// over every view shape used in this package's tests.
func TestNeedProperties(t *testing.T) {
	cat := retailCatalog(t)
	views := []string{
		productSalesSQL,
		`SELECT product.id, SUM(price), COUNT(*) FROM sale, product
		 WHERE sale.productid = product.id GROUP BY product.id`,
		`SELECT sale.id, time.month, SUM(price) FROM sale, time
		 WHERE sale.timeid = time.id GROUP BY sale.id, time.month`,
		`SELECT time.month, store.city, COUNT(*) FROM sale, time, store
		 WHERE sale.timeid = time.id AND sale.storeid = store.id
		 GROUP BY time.month, store.city`,
		`SELECT sale.storeid, COUNT(*) FROM sale GROUP BY sale.storeid`,
	}
	for _, sql := range views {
		g := buildGraph(t, cat, sql)
		inView := make(map[string]bool)
		for _, tb := range g.View.Tables {
			inView[tb] = true
		}
		for _, tb := range g.View.Tables {
			need := g.Need(tb)
			// Need sets only contain view tables.
			for _, n := range need {
				if !inView[n] {
					t.Errorf("%s: Need(%s) contains non-view table %s", sql, tb, n)
				}
			}
			// k-annotated vertices need nothing (Definition 3, case 1).
			if g.Annot[tb] == AnnotK && len(need) != 0 {
				t.Errorf("%s: Need(%s) = %v for a k vertex", sql, tb, need)
			}
			// Determinism.
			if got := strings.Join(g.Need(tb), ","); got != strings.Join(need, ",") {
				t.Errorf("%s: Need(%s) not deterministic", sql, tb)
			}
			// A non-root, non-k vertex always needs its parent.
			if parent, ok := g.Parent[tb]; ok && g.Annot[tb] != AnnotK {
				found := false
				for _, n := range need {
					if n == parent {
						found = true
					}
				}
				if !found {
					t.Errorf("%s: Need(%s) = %v misses parent %s", sql, tb, need, parent)
				}
			}
		}
		// Need0 of a k-annotated root is empty.
		if g.Annot[g.Root] == AnnotK && len(g.Need0(g.Root)) != 0 {
			t.Errorf("%s: Need0(k-root) non-empty", sql)
		}
		// The subtree of the root is the whole view.
		if got := len(g.Subtree(g.Root)); got != len(g.View.Tables) {
			t.Errorf("%s: Subtree(root) = %d tables, want %d", sql, got, len(g.View.Tables))
		}
	}
}

// TestDependsIsSubsetOfChildren: the depends relation only follows tree
// edges downward.
func TestDependsIsSubsetOfChildren(t *testing.T) {
	g := buildGraph(t, retailCatalog(t), productSalesSQL)
	for _, tb := range g.View.Tables {
		children := make(map[string]bool)
		for _, c := range g.Children[tb] {
			children[c] = true
		}
		for _, d := range g.Depends(tb) {
			if !children[d] {
				t.Errorf("Depends(%s) contains non-child %s", tb, d)
			}
		}
	}
}
