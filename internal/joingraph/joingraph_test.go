package joingraph

import (
	"strings"
	"testing"

	"mindetail/internal/gpsj"
	"mindetail/internal/schema"
	"mindetail/internal/sqlparse"
)

func catalogFromDDL(t *testing.T, ddl string) *schema.Catalog {
	t.Helper()
	stmts, err := sqlparse.ParseAll(ddl)
	if err != nil {
		t.Fatal(err)
	}
	cat := schema.NewCatalog()
	var fks []schema.ForeignKey
	for _, s := range stmts {
		ct := s.(*sqlparse.CreateTable)
		if err := cat.AddTable(ct.Table); err != nil {
			t.Fatal(err)
		}
		fks = append(fks, ct.FKs...)
	}
	for _, fk := range fks {
		if err := cat.AddForeignKey(fk); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

func retailCatalog(t *testing.T) *schema.Catalog {
	return catalogFromDDL(t, `
	CREATE TABLE time (id INTEGER PRIMARY KEY, day INTEGER, month INTEGER, year INTEGER);
	CREATE TABLE product (id INTEGER PRIMARY KEY, brand VARCHAR MUTABLE, category VARCHAR);
	CREATE TABLE store (id INTEGER PRIMARY KEY, city VARCHAR, manager VARCHAR MUTABLE);
	CREATE TABLE sale (id INTEGER PRIMARY KEY,
		timeid INTEGER REFERENCES time,
		productid INTEGER REFERENCES product,
		storeid INTEGER REFERENCES store,
		price FLOAT);`)
}

func buildView(t *testing.T, cat *schema.Catalog, sql string) *gpsj.View {
	t.Helper()
	s, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	v, err := gpsj.FromSelect(cat, "v", s.(*sqlparse.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func buildGraph(t *testing.T, cat *schema.Catalog, sql string) *Graph {
	t.Helper()
	g, err := Build(buildView(t, cat, sql))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

const productSalesSQL = `
	SELECT time.month, SUM(price) AS TotalPrice, COUNT(*) AS TotalCount,
	       COUNT(DISTINCT brand) AS DifferentBrands
	FROM sale, time, product
	WHERE time.year = 1997 AND sale.timeid = time.id AND sale.productid = product.id
	GROUP BY time.month`

// TestFigure2 reproduces the extended join graph of the paper's Figure 2:
// Sale at the root with edges to Time (annotated g) and Product.
func TestFigure2(t *testing.T) {
	g := buildGraph(t, retailCatalog(t), productSalesSQL)
	if g.Root != "sale" {
		t.Errorf("root = %s", g.Root)
	}
	if got := strings.Join(g.Children["sale"], ","); got != "product,time" {
		t.Errorf("children(sale) = %s", got)
	}
	if g.Annot["time"] != AnnotG {
		t.Errorf("time annotation = %v", g.Annot["time"])
	}
	if g.Annot["sale"] != AnnotNone || g.Annot["product"] != AnnotNone {
		t.Errorf("annotations = %v", g.Annot)
	}
	text := g.Text()
	for _, want := range []string{"sale", "  time [g]", "  product"} {
		if !strings.Contains(text, want) {
			t.Errorf("Text missing %q:\n%s", want, text)
		}
	}
	dot := g.Dot()
	for _, want := range []string{`"sale" -> "time"`, `"sale" -> "product"`, `time (g)`} {
		if !strings.Contains(dot, want) {
			t.Errorf("Dot missing %q:\n%s", want, dot)
		}
	}
}

func TestAnnotationKDominates(t *testing.T) {
	g := buildGraph(t, retailCatalog(t), `
		SELECT product.id, product.brand, COUNT(*) FROM sale, product
		WHERE sale.productid = product.id GROUP BY product.id, product.brand`)
	if g.Annot["product"] != AnnotK {
		t.Errorf("product annotation = %v, want k", g.Annot["product"])
	}
}

func TestNeedProductSales(t *testing.T) {
	g := buildGraph(t, retailCatalog(t), productSalesSQL)
	// Need(sale) = Need0(sale) = {time}: only the time subtree carries a
	// group-by attribute; the product subtree does not (brand is only in a
	// DISTINCT aggregate).
	if got := strings.Join(g.Need("sale"), ","); got != "time" {
		t.Errorf("Need(sale) = %s", got)
	}
	// Need(time) = {sale} ∪ Need(sale).
	if got := strings.Join(g.Need("time"), ","); got != "sale,time" {
		t.Errorf("Need(time) = %s", got)
	}
	if got := strings.Join(g.Need("product"), ","); got != "sale,time" {
		t.Errorf("Need(product) = %s", got)
	}
	if !g.NeededBySomeone("sale") {
		t.Error("sale is in Need(time); elimination must be blocked")
	}
	if g.NeededBySomeone("product") {
		t.Error("product should not be needed by anyone")
	}
}

func TestNeedWithKAnnotatedDimension(t *testing.T) {
	g := buildGraph(t, retailCatalog(t), `
		SELECT product.id, SUM(price), COUNT(*) FROM sale, product
		WHERE sale.productid = product.id GROUP BY product.id`)
	// product annotated k: Need(product) = ∅ (Definition 3, case 1).
	if got := g.Need("product"); len(got) != 0 {
		t.Errorf("Need(product) = %v", got)
	}
	// Need(sale) = Need0(sale) = {product}: the k vertex is included but
	// recursion stops below it (Definition 4).
	if got := strings.Join(g.Need("sale"), ","); got != "product" {
		t.Errorf("Need(sale) = %s", got)
	}
	if g.NeededBySomeone("sale") {
		t.Error("sale must not be needed: the fact table is eliminable here")
	}
}

func TestNeedRootAnnotatedK(t *testing.T) {
	g := buildGraph(t, retailCatalog(t), `
		SELECT sale.id, time.month, SUM(price) FROM sale, time
		WHERE sale.timeid = time.id GROUP BY sale.id, time.month`)
	if g.Annot["sale"] != AnnotK {
		t.Fatalf("root annotation = %v", g.Annot["sale"])
	}
	// Root annotated k: Need(root) = ∅, and Need0 recursion is cut at the
	// root, so nothing below is needed either.
	if got := g.Need("sale"); len(got) != 0 {
		t.Errorf("Need(sale) = %v", got)
	}
	// time is annotated g but still needs to climb to the root.
	if got := strings.Join(g.Need("time"), ","); got != "sale" {
		t.Errorf("Need(time) = %s", got)
	}
}

func TestSnowflakeNeedChain(t *testing.T) {
	cat := catalogFromDDL(t, `
	CREATE TABLE brand (id INTEGER PRIMARY KEY, name VARCHAR);
	CREATE TABLE product (id INTEGER PRIMARY KEY, brandid INTEGER REFERENCES brand, category VARCHAR);
	CREATE TABLE sale (id INTEGER PRIMARY KEY, productid INTEGER REFERENCES product, price FLOAT);`)
	g := buildGraph(t, cat, `
		SELECT brand.name, SUM(price), COUNT(*) FROM sale, product, brand
		WHERE sale.productid = product.id AND product.brandid = brand.id
		GROUP BY brand.name`)
	if g.Root != "sale" {
		t.Fatalf("root = %s", g.Root)
	}
	if g.Parent["brand"] != "product" || g.Parent["product"] != "sale" {
		t.Errorf("parents = %v", g.Parent)
	}
	// Need0(sale) walks through product (no annotation) to brand (g).
	if got := strings.Join(g.Need("sale"), ","); got != "brand,product" {
		t.Errorf("Need(sale) = %s", got)
	}
	// brand's Need climbs to the root and back down its own path.
	if got := strings.Join(g.Need("brand"), ","); got != "brand,product,sale" {
		t.Errorf("Need(brand) = %s", got)
	}
	if got := strings.Join(g.PathToRoot("brand"), ","); got != "product,sale" {
		t.Errorf("PathToRoot(brand) = %s", got)
	}
	if got := strings.Join(g.Subtree("product"), ","); got != "brand,product" {
		t.Errorf("Subtree(product) = %s", got)
	}
}

func TestDepends(t *testing.T) {
	cat := retailCatalog(t)
	g := buildGraph(t, cat, productSalesSQL)
	// sale depends on both joined dimensions: RI declared, no exposed
	// updates (brand is mutable but not a condition attribute).
	if got := strings.Join(g.Depends("sale"), ","); got != "product,time" {
		t.Errorf("Depends(sale) = %s", got)
	}
	if !g.TransitivelyDependsOnAll("sale") {
		t.Error("sale should transitively depend on all")
	}
	if g.TransitivelyDependsOnAll("time") {
		t.Error("time depends on nothing")
	}
}

func TestDependsBlockedByExposedUpdates(t *testing.T) {
	cat := catalogFromDDL(t, `
	CREATE TABLE time (id INTEGER PRIMARY KEY, month INTEGER, year INTEGER MUTABLE);
	CREATE TABLE sale (id INTEGER PRIMARY KEY, timeid INTEGER REFERENCES time, price FLOAT);`)
	g := buildGraph(t, cat, `
		SELECT time.month, COUNT(*) FROM sale, time
		WHERE time.year = 1997 AND sale.timeid = time.id GROUP BY time.month`)
	// year is mutable and in a selection condition: time has exposed
	// updates, so sale must not depend on it (Section 2.2).
	if got := g.Depends("sale"); len(got) != 0 {
		t.Errorf("Depends(sale) = %v, want none (exposed updates)", got)
	}
	if g.TransitivelyDependsOnAll("sale") {
		t.Error("transitive dependence must fail under exposed updates")
	}
}

func TestDependsBlockedByMissingRI(t *testing.T) {
	cat := catalogFromDDL(t, `
	CREATE TABLE time (id INTEGER PRIMARY KEY, month INTEGER);
	CREATE TABLE sale (id INTEGER PRIMARY KEY, timeid INTEGER, price FLOAT);`)
	g := buildGraph(t, cat, `
		SELECT time.month, COUNT(*) FROM sale, time
		WHERE sale.timeid = time.id GROUP BY time.month`)
	if got := g.Depends("sale"); len(got) != 0 {
		t.Errorf("Depends(sale) = %v, want none (no RI)", got)
	}
}

func TestTreeViolations(t *testing.T) {
	// Two tables referencing the same dimension key: two incoming edges.
	cat := catalogFromDDL(t, `
	CREATE TABLE d (id INTEGER PRIMARY KEY, x INTEGER);
	CREATE TABLE a (id INTEGER PRIMARY KEY, did INTEGER REFERENCES d);
	CREATE TABLE b (id INTEGER PRIMARY KEY, did INTEGER REFERENCES d, aid INTEGER REFERENCES a);`)
	v := buildView(t, cat, `
		SELECT d.x, COUNT(*) FROM a, b, d
		WHERE a.did = d.id AND b.did = d.id AND b.aid = a.id GROUP BY d.x`)
	if _, err := Build(v); err == nil || !strings.Contains(err.Error(), "tree") {
		t.Errorf("diamond graph accepted: %v", err)
	}

	// A cycle of key joins.
	cat2 := catalogFromDDL(t, `
	CREATE TABLE p (id INTEGER PRIMARY KEY, qid INTEGER REFERENCES q, x INTEGER);
	CREATE TABLE q (id INTEGER PRIMARY KEY, pid INTEGER REFERENCES p);`)
	v2 := buildView(t, cat2, `
		SELECT p.x, COUNT(*) FROM p, q
		WHERE p.qid = q.id AND q.pid = p.id GROUP BY p.x`)
	if _, err := Build(v2); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cyclic graph accepted: %v", err)
	}
}

func TestSingleTableGraph(t *testing.T) {
	g := buildGraph(t, retailCatalog(t), `
		SELECT sale.productid, SUM(price), COUNT(*) FROM sale GROUP BY sale.productid`)
	if g.Root != "sale" {
		t.Errorf("root = %s", g.Root)
	}
	if g.Annot["sale"] != AnnotG {
		t.Errorf("annot = %v", g.Annot["sale"])
	}
	if got := g.Need("sale"); len(got) != 0 {
		t.Errorf("Need(sale) = %v", got)
	}
	if !g.TransitivelyDependsOnAll("sale") {
		t.Error("single table transitively depends on all (vacuously)")
	}
	if g.NeededBySomeone("sale") {
		t.Error("nobody else exists to need sale")
	}
}
