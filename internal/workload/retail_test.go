package workload

import (
	"testing"

	"mindetail/internal/maintain"
	"mindetail/internal/schema"
	"mindetail/internal/sqlparse"
	"mindetail/internal/storage"
)

func newDB(t *testing.T) *storage.DB {
	t.Helper()
	stmts, err := sqlparse.ParseAll(DDL())
	if err != nil {
		t.Fatal(err)
	}
	cat := schema.NewCatalog()
	var fks []schema.ForeignKey
	for _, s := range stmts {
		ct := s.(*sqlparse.CreateTable)
		if err := cat.AddTable(ct.Table); err != nil {
			t.Fatal(err)
		}
		fks = append(fks, ct.FKs...)
	}
	for _, fk := range fks {
		if err := cat.AddForeignKey(fk); err != nil {
			t.Fatal(err)
		}
	}
	return storage.NewDB(cat)
}

func TestPaperParamsFactTuples(t *testing.T) {
	if got := PaperParams().FactTuples(); got != 13_140_000_000 {
		t.Errorf("FactTuples = %d, paper says 13,140,000,000", got)
	}
}

func TestScaledDownReaches(t *testing.T) {
	p := ScaledDown(5000)
	if p.FactTuples() < 5000 {
		t.Errorf("ScaledDown(5000) = %d tuples", p.FactTuples())
	}
	if p.FactTuples() > 200_000 {
		t.Errorf("ScaledDown(5000) overshoots: %d", p.FactTuples())
	}
}

func TestLoadCounts(t *testing.T) {
	db := newDB(t)
	p := RetailParams{Days: 6, Stores: 2, Products: 8, ProductsSoldPerDay: 3,
		TransactionsPerProduct: 2, Brands: 4, SelectYear: 1997, Seed: 1}
	if err := Load(db, p); err != nil {
		t.Fatal(err)
	}
	if got := db.RowCount("time"); got != 6 {
		t.Errorf("time rows = %d", got)
	}
	if got := db.RowCount("product"); got != 8 {
		t.Errorf("product rows = %d", got)
	}
	if got := db.RowCount("store"); got != 2 {
		t.Errorf("store rows = %d", got)
	}
	if got := int64(db.RowCount("sale")); got != p.FactTuples() {
		t.Errorf("sale rows = %d, want %d", got, p.FactTuples())
	}
}

func TestLoadYearSplit(t *testing.T) {
	db := newDB(t)
	p := RetailParams{Days: 10, Stores: 1, Products: 4, ProductsSoldPerDay: 1,
		TransactionsPerProduct: 1, Brands: 2, SelectYear: 1997, Seed: 1}
	if err := Load(db, p); err != nil {
		t.Fatal(err)
	}
	years := map[int64]int{}
	for _, row := range db.Table("time").All() {
		years[row[3].AsInt()]++
	}
	if years[1997] != 5 || years[1998] != 5 {
		t.Errorf("year split = %v", years)
	}
}

func TestMutatorStreamStaysConsistent(t *testing.T) {
	db := newDB(t)
	p := RetailParams{Days: 6, Stores: 2, Products: 8, ProductsSoldPerDay: 3,
		TransactionsPerProduct: 2, Brands: 4, SelectYear: 1997, Seed: 1}
	if err := Load(db, p); err != nil {
		t.Fatal(err)
	}
	m := NewMutator(db, p)
	seen := map[string]int{}
	for i := 0; i < 200; i++ {
		d, err := m.Next(DefaultMix())
		if err != nil {
			t.Fatal(err)
		}
		seen[d.Table]++
		if d.Table == "" {
			t.Fatal("empty delta")
		}
	}
	if seen["sale"] == 0 || seen["product"] == 0 {
		t.Errorf("mix not exercised: %v", seen)
	}
	// Batch is just repeated Next.
	ds, err := m.Batch(10, InsertOnlyMix())
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 10 {
		t.Errorf("batch = %d", len(ds))
	}
	for _, d := range ds {
		if len(d.Inserts) != 1 || d.Table != "sale" {
			t.Errorf("insert-only mix produced %+v", d)
		}
	}
	if _, err := m.Next(Mix{}); err == nil {
		t.Error("empty mix accepted")
	}
}

func TestMutatorDeltasMatchDB(t *testing.T) {
	// Deltas returned by the mutator must exactly describe the DB change:
	// spot-check via row counts.
	db := newDB(t)
	p := RetailParams{Days: 4, Stores: 1, Products: 4, ProductsSoldPerDay: 2,
		TransactionsPerProduct: 1, Brands: 2, SelectYear: 1997, Seed: 9}
	if err := Load(db, p); err != nil {
		t.Fatal(err)
	}
	m := NewMutator(db, p)
	before := db.RowCount("sale")
	net := 0
	for i := 0; i < 100; i++ {
		d, err := m.Next(DefaultMix())
		if err != nil {
			t.Fatal(err)
		}
		if d.Table == "sale" {
			net += len(d.Inserts) - len(d.Deletes)
		}
		_ = d
	}
	if got := db.RowCount("sale"); got != before+net {
		t.Errorf("sale rows = %d, want %d", got, before+net)
	}
}

var _ = maintain.Delta{}
