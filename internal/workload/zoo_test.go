package workload_test

import (
	"strings"
	"testing"

	"mindetail/internal/warehouse"
	"mindetail/internal/workload"
)

// render flattens an op sequence for byte-identity comparison.
func render(ops []workload.Op) string {
	var b strings.Builder
	for _, op := range ops {
		b.WriteString(op.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestZooDeterministicStreams pins the zoo's contract: setup scripts and
// operation streams are pure functions of (scale, seed) — two generations
// with the same arguments are byte-identical, and a different seed
// actually changes the stream (the generator consumes its seed rather
// than ignoring it).
func TestZooDeterministicStreams(t *testing.T) {
	const scale, n = 400, 300
	for _, sc := range workload.Zoo() {
		t.Run(sc.Name, func(t *testing.T) {
			a := strings.Join(sc.Setup(scale), "\n")
			b := strings.Join(sc.Setup(scale), "\n")
			if a != b {
				t.Fatal("setup script not deterministic in scale")
			}
			s1 := render(sc.Ops(n, scale, 42))
			s2 := render(sc.Ops(n, scale, 42))
			if s1 != s2 {
				t.Fatal("same seed produced different streams")
			}
			if s3 := render(sc.Ops(n, scale, 43)); s3 == s1 {
				t.Fatal("different seed produced an identical stream")
			}
			reads := strings.Count(s1, "QUERY\n")
			if reads == 0 || reads == n {
				t.Fatalf("stream is not mixed: %d reads of %d ops", reads, n)
			}
		})
	}
}

// TestZooReplayScenarios replays every scenario end to end against a live
// warehouse: setup, materialize the scenario view, stream a mixed prefix,
// and let Verify recompute the view from scratch — any drift between
// incremental maintenance and the replayed SQL fails here.
func TestZooReplayScenarios(t *testing.T) {
	const scale, n = 300, 150
	for _, sc := range workload.Zoo() {
		t.Run(sc.Name, func(t *testing.T) {
			w := warehouse.New()
			for _, sql := range sc.Setup(scale) {
				if _, err := w.Exec(sql); err != nil {
					t.Fatalf("setup: %v", err)
				}
			}
			if _, err := w.Exec(sc.View); err != nil {
				t.Fatalf("view: %v", err)
			}
			st := sc.NewStream(scale, 7)
			for i := 0; i < n; i++ {
				op := st.Next()
				if op.Query {
					if _, err := w.Query(sc.ViewName); err != nil {
						t.Fatalf("op %d: %v", i, err)
					}
					continue
				}
				if _, err := w.Exec(op.SQL); err != nil {
					t.Fatalf("op %d %q: %v", i, op.SQL, err)
				}
			}
			rel, err := w.Query(sc.ViewName)
			if err != nil {
				t.Fatal(err)
			}
			if rel.Len() == 0 {
				t.Fatalf("%s is empty after replay", sc.ViewName)
			}
			if err := w.Verify(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
