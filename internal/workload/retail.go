// Package workload generates the paper's running-example retail workload
// (Section 1.1): a star schema of sale facts over time, product, and store
// dimensions, at a configurable scale, plus seeded random delta streams
// for driving maintenance experiments.
package workload

import (
	"fmt"
	"math/rand"

	"mindetail/internal/maintain"
	"mindetail/internal/storage"
	"mindetail/internal/tuple"
	"mindetail/internal/types"
)

// RetailParams sizes the retail workload. The paper's case-study numbers
// (Kimball, via Section 1.1) are exposed as PaperParams; benchmarks run
// scaled-down instances.
type RetailParams struct {
	Days                   int // time dimension size; the first half falls in SelectYear
	Stores                 int
	Products               int
	ProductsSoldPerDay     int // distinct products sold per store per day
	TransactionsPerProduct int
	Brands                 int
	SelectYear             int // the year the product_sales view selects
	// YearFraction is the fraction of days falling in SelectYear (the
	// selectivity of the view's local condition); 0 means 0.5.
	YearFraction float64
	Seed         int64
}

// PaperParams returns the full-scale Section 1.1 parameters: 2 years × 365
// days, 300 stores, 30,000 products of which 3,000 sell per store per day,
// 20 transactions per sold product — 13.14 billion fact tuples.
func PaperParams() RetailParams {
	return RetailParams{
		Days:                   730,
		Stores:                 300,
		Products:               30000,
		ProductsSoldPerDay:     3000,
		TransactionsPerProduct: 20,
		Brands:                 3000,
		SelectYear:             1997,
		Seed:                   1,
	}
}

// FactTuples returns the number of fact-table tuples the parameters
// generate: days × stores × products sold per day × transactions.
func (p RetailParams) FactTuples() int64 {
	return int64(p.Days) * int64(p.Stores) * int64(p.ProductsSoldPerDay) * int64(p.TransactionsPerProduct)
}

// ScaledDown returns parameters shrunk to roughly the given number of fact
// tuples, preserving the dimension proportions where possible.
func ScaledDown(factTuples int) RetailParams {
	p := RetailParams{
		Days:                   30,
		Stores:                 4,
		Products:               50,
		ProductsSoldPerDay:     10,
		TransactionsPerProduct: 2,
		Brands:                 10,
		SelectYear:             1997,
		Seed:                   1,
	}
	for p.FactTuples() < int64(factTuples) && p.Days < 730 {
		p.Days += 10
	}
	for p.FactTuples() < int64(factTuples) {
		p.TransactionsPerProduct++
	}
	return p
}

// DDL returns the CREATE TABLE script of the retail schema, including the
// referential integrity constraints the paper assumes and the mutable
// attributes the experiments update.
func DDL() string {
	return `
CREATE TABLE time (id INTEGER PRIMARY KEY, day INTEGER, month INTEGER, year INTEGER);
CREATE TABLE product (id INTEGER PRIMARY KEY, brand VARCHAR MUTABLE, category VARCHAR);
CREATE TABLE store (id INTEGER PRIMARY KEY, street_address VARCHAR, city VARCHAR, country VARCHAR, manager VARCHAR MUTABLE);
CREATE TABLE sale (id INTEGER PRIMARY KEY,
	timeid INTEGER REFERENCES time,
	productid INTEGER REFERENCES product,
	storeid INTEGER REFERENCES store,
	price FLOAT MUTABLE);
`
}

// ProductSalesSQL returns the paper's product_sales view (Section 1.1).
func ProductSalesSQL(year int) string {
	return fmt.Sprintf(`SELECT time.month, SUM(price) AS TotalPrice, COUNT(*) AS TotalCount,
	COUNT(DISTINCT brand) AS DifferentBrands
FROM sale, time, product
WHERE time.year = %d AND sale.timeid = time.id AND sale.productid = product.id
GROUP BY time.month`, year)
}

// CSMASOnlySQL is the paper view without the DISTINCT aggregate — the
// purely incremental variant used by maintenance throughput benchmarks.
func CSMASOnlySQL(year int) string {
	return fmt.Sprintf(`SELECT time.month, SUM(price) AS TotalPrice, COUNT(*) AS TotalCount
FROM sale, time
WHERE time.year = %d AND sale.timeid = time.id
GROUP BY time.month`, year)
}

// EliminationSQL is a view meeting the Section 3.3 elimination conditions:
// the fact auxiliary view is omitted entirely.
func EliminationSQL() string {
	return `SELECT product.id, SUM(price) AS total, COUNT(*) AS cnt
FROM sale, product
WHERE sale.productid = product.id
GROUP BY product.id`
}

// Load generates the workload into a storage DB whose catalog was created
// from DDL().
func Load(db *storage.DB, p RetailParams) error {
	rng := rand.New(rand.NewSource(p.Seed))
	frac := p.YearFraction
	if frac == 0 {
		frac = 0.5
	}
	selected := int(frac * float64(p.Days))
	for d := 0; d < p.Days; d++ {
		year := p.SelectYear
		if d >= selected {
			year = p.SelectYear + 1
		}
		row := tuple.Tuple{
			types.Int(int64(d + 1)),
			types.Int(int64(d%28 + 1)),
			types.Int(int64((d/28)%12 + 1)),
			types.Int(int64(year)),
		}
		if err := db.Insert("time", row); err != nil {
			return err
		}
	}
	for i := 0; i < p.Products; i++ {
		row := tuple.Tuple{
			types.Int(int64(i + 1)),
			types.Str(fmt.Sprintf("brand%d", i%max(1, p.Brands))),
			types.Str(fmt.Sprintf("cat%d", i%10)),
		}
		if err := db.Insert("product", row); err != nil {
			return err
		}
	}
	for s := 0; s < p.Stores; s++ {
		row := tuple.Tuple{
			types.Int(int64(s + 1)),
			types.Str(fmt.Sprintf("%d main st", s)),
			types.Str(fmt.Sprintf("city%d", s%20)),
			types.Str("dk"),
			types.Str(fmt.Sprintf("mgr%d", s)),
		}
		if err := db.Insert("store", row); err != nil {
			return err
		}
	}
	id := int64(0)
	for d := 0; d < p.Days; d++ {
		for s := 0; s < p.Stores; s++ {
			for i := 0; i < p.ProductsSoldPerDay; i++ {
				pid := (d*31+s*7+i)%p.Products + 1
				for tr := 0; tr < p.TransactionsPerProduct; tr++ {
					id++
					row := tuple.Tuple{
						types.Int(id),
						types.Int(int64(d + 1)),
						types.Int(int64(pid)),
						types.Int(int64(s + 1)),
						types.Float(float64(rng.Intn(5000))/100 + 0.5),
					}
					if err := db.Insert("sale", row); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Mutator produces random, referential-integrity-consistent delta streams
// against a loaded retail DB, applying each change to the DB and returning
// the corresponding maintain.Delta for the engines under test.
type Mutator struct {
	db     *storage.DB
	p      RetailParams
	rng    *rand.Rand
	nextID int64
	live   []int64 // live sale ids available for delete/update
}

// NewMutator creates a mutator over a DB loaded with Load(db, p).
func NewMutator(db *storage.DB, p RetailParams) *Mutator {
	m := &Mutator{db: db, p: p, rng: rand.New(rand.NewSource(p.Seed + 1))}
	m.nextID = p.FactTuples() + 1
	n := p.FactTuples()
	if n > 4096 {
		n = 4096
	}
	for id := int64(1); id <= n; id++ {
		m.live = append(m.live, id)
	}
	return m
}

// Mix weights the operation classes of a delta stream.
type Mix struct {
	InsertSale  int
	DeleteSale  int
	UpdatePrice int
	RenameBrand int
}

// DefaultMix is an insert-heavy OLTP-ish mix.
func DefaultMix() Mix { return Mix{InsertSale: 6, DeleteSale: 1, UpdatePrice: 2, RenameBrand: 1} }

// InsertOnlyMix appends facts only (the data-warehouse load pattern).
func InsertOnlyMix() Mix { return Mix{InsertSale: 1} }

// Next produces one delta according to the mix, already applied to the DB.
func (m *Mutator) Next(mix Mix) (maintain.Delta, error) {
	total := mix.InsertSale + mix.DeleteSale + mix.UpdatePrice + mix.RenameBrand
	if total == 0 {
		return maintain.Delta{}, fmt.Errorf("workload: empty mix")
	}
	r := m.rng.Intn(total)
	switch {
	case r < mix.InsertSale:
		return m.insertSale()
	case r < mix.InsertSale+mix.DeleteSale:
		return m.deleteSale()
	case r < mix.InsertSale+mix.DeleteSale+mix.UpdatePrice:
		return m.updatePrice()
	default:
		return m.renameBrand()
	}
}

// Batch produces n deltas merged per table into at most a handful of
// maintain.Delta values, preserving application order within each call.
func (m *Mutator) Batch(n int, mix Mix) ([]maintain.Delta, error) {
	var out []maintain.Delta
	for i := 0; i < n; i++ {
		d, err := m.Next(mix)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

func (m *Mutator) insertSale() (maintain.Delta, error) {
	m.nextID++
	row := tuple.Tuple{
		types.Int(m.nextID),
		types.Int(int64(m.rng.Intn(m.p.Days) + 1)),
		types.Int(int64(m.rng.Intn(m.p.Products) + 1)),
		types.Int(int64(m.rng.Intn(m.p.Stores) + 1)),
		types.Float(float64(m.rng.Intn(5000))/100 + 0.5),
	}
	if err := m.db.Insert("sale", row); err != nil {
		return maintain.Delta{}, err
	}
	m.live = append(m.live, m.nextID)
	return maintain.Delta{Table: "sale", Inserts: []tuple.Tuple{row}}, nil
}

func (m *Mutator) deleteSale() (maintain.Delta, error) {
	if len(m.live) == 0 {
		return m.insertSale()
	}
	i := m.rng.Intn(len(m.live))
	row, err := m.db.Delete("sale", types.Int(m.live[i]))
	if err != nil {
		return maintain.Delta{}, err
	}
	m.live[i] = m.live[len(m.live)-1]
	m.live = m.live[:len(m.live)-1]
	return maintain.Delta{Table: "sale", Deletes: []tuple.Tuple{row}}, nil
}

func (m *Mutator) updatePrice() (maintain.Delta, error) {
	if len(m.live) == 0 {
		return m.insertSale()
	}
	id := m.live[m.rng.Intn(len(m.live))]
	old, upd, err := m.db.Update("sale", types.Int(id),
		map[string]types.Value{"price": types.Float(float64(m.rng.Intn(5000))/100 + 0.5)})
	if err != nil {
		return maintain.Delta{}, err
	}
	return maintain.Delta{Table: "sale", Updates: []maintain.Update{{Old: old, New: upd}}}, nil
}

func (m *Mutator) renameBrand() (maintain.Delta, error) {
	pid := int64(m.rng.Intn(m.p.Products) + 1)
	old, upd, err := m.db.Update("product", types.Int(pid),
		map[string]types.Value{"brand": types.Str(fmt.Sprintf("brand%d", m.rng.Intn(max(1, m.p.Brands))))})
	if err != nil {
		return maintain.Delta{}, err
	}
	return maintain.Delta{Table: "product", Updates: []maintain.Update{{Old: old, New: upd}}}, nil
}
