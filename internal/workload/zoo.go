package workload

// zoo.go — the workload zoo: named scenarios beyond the paper's retail
// star, each pairing a schema + deterministic bulk load with a seeded,
// infinite stream of mixed read/write operations. The zoo exists to
// exercise the maintenance engine's distinct regimes — snowflake chains
// under update-heavy churn, Zipf-skewed key popularity, append-only
// firehoses, a handful of wide groups versus a sea of tiny ones — as
// replayable SQL, so dwsim can drive a scenario end to end and the bench
// harness can gate each regime's hot path.
//
// Everything is a pure function of (scale, seed): two streams built with
// the same arguments yield byte-identical operation sequences, which is
// what makes recorded replay counts and committed benchmark baselines
// meaningful.

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Op is one replayable zoo operation: either a read of the scenario's
// materialized view or a single DML statement.
type Op struct {
	Query bool   // read the scenario's view
	SQL   string // one DML statement (when Query is false)
}

// String renders the op for byte-identity comparison and trace dumps.
func (o Op) String() string {
	if o.Query {
		return "QUERY"
	}
	return o.SQL
}

// Stream is a deterministic, unbounded operation source. It owns all
// mutable generator state (id allocation, live-row tracking, the RNG), so
// replay and benchmarks can pull ops forever without coordinating.
type Stream struct {
	next func() Op
	buf  []Op // pending multi-statement ops, drained FIFO
}

// Next returns the next operation of the stream.
func (s *Stream) Next() Op {
	if len(s.buf) > 0 {
		op := s.buf[0]
		s.buf = s.buf[1:]
		return op
	}
	return s.next()
}

// push enqueues ops to be returned before the generator runs again.
func (s *Stream) push(ops ...Op) { s.buf = append(s.buf, ops...) }

// Ops returns the first n operations of a fresh stream — the finite
// prefix dwsim replays and the determinism tests compare.
func (sc *Scenario) Ops(n, scale int, seed int64) []Op {
	st := sc.NewStream(scale, seed)
	out := make([]Op, n)
	for i := range out {
		out[i] = st.Next()
	}
	return out
}

// Scenario is one zoo member.
type Scenario struct {
	Name        string
	Description string
	ViewName    string
	// View is the full CREATE MATERIALIZED VIEW statement.
	View string
	// Setup returns the DDL + bulk-load script, deterministic in scale.
	Setup func(scale int) []string
	// NewStream returns the seeded mixed read/write operation stream.
	NewStream func(scale int, seed int64) *Stream
}

// Zoo returns every scenario, in stable order.
func Zoo() []*Scenario {
	return []*Scenario{
		snowflakeUpdateHeavy(),
		appendOnlyFirehose(),
		zipfSkew(),
		tinyGroups(),
		wideGroups(),
	}
}

// ZooNames returns the scenario names, sorted.
func ZooNames() []string {
	var names []string
	for _, sc := range Zoo() {
		names = append(names, sc.Name)
	}
	sort.Strings(names)
	return names
}

// ZooScenario looks a scenario up by name.
func ZooScenario(name string) (*Scenario, error) {
	for _, sc := range Zoo() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown zoo scenario %q (have %s)",
		name, strings.Join(ZooNames(), ", "))
}

// price returns a price that is an exact multiple of 0.25, keeping float
// aggregation order-independent so replays are byte-comparable.
func price(rng *rand.Rand) float64 { return float64(rng.Intn(400)+1) * 0.25 }

// batchInsert renders rows into multi-row INSERT statements of at most
// 100 rows each, appending them to dst.
func batchInsert(dst []string, table string, rows []string) []string {
	const chunk = 100
	for len(rows) > 0 {
		n := chunk
		if n > len(rows) {
			n = len(rows)
		}
		dst = append(dst, fmt.Sprintf("INSERT INTO %s VALUES %s;", table, strings.Join(rows[:n], ", ")))
		rows = rows[n:]
	}
	return dst
}

// liveSet tracks row ids available for update/delete, bounded so the
// tracking cost stays flat at any scale.
type liveSet struct {
	ids []int64
}

func newLiveSet(n int64) *liveSet {
	if n > 4096 {
		n = 4096
	}
	ls := &liveSet{ids: make([]int64, n)}
	for i := range ls.ids {
		ls.ids[i] = int64(i + 1)
	}
	return ls
}

func (ls *liveSet) pick(rng *rand.Rand) (int64, bool) {
	if len(ls.ids) == 0 {
		return 0, false
	}
	return ls.ids[rng.Intn(len(ls.ids))], true
}

func (ls *liveSet) remove(rng *rand.Rand) (int64, bool) {
	if len(ls.ids) == 0 {
		return 0, false
	}
	i := rng.Intn(len(ls.ids))
	id := ls.ids[i]
	ls.ids[i] = ls.ids[len(ls.ids)-1]
	ls.ids = ls.ids[:len(ls.ids)-1]
	return id, true
}

func (ls *liveSet) add(id int64) { ls.ids = append(ls.ids, id) }

// snowflakeUpdateHeavy is a TPC-H-flavoured snowflake: the lineitem fact
// reaches nation through the supplier dimension (a chain join, not a
// star), and the stream is dominated by in-place price updates — the
// regime where delta-scoped maintenance beats recomputation hardest.
func snowflakeUpdateHeavy() *Scenario {
	const (
		regions = 5
		nations = 25
	)
	suppliers := func(scale int) int { return maxInt(10, scale/20) }
	parts := func(scale int) int { return maxInt(20, scale/10) }
	return &Scenario{
		Name: "snowflake-update-heavy",
		Description: "TPC-H-like snowflake (lineitem→supplier→nation→region chain), " +
			"update-heavy stream of in-place price changes",
		ViewName: "nation_revenue",
		View: `CREATE MATERIALIZED VIEW nation_revenue AS
SELECT nation.name, SUM(lineitem.price) AS revenue, COUNT(*) AS cnt
FROM lineitem, supplier, nation
WHERE lineitem.suppid = supplier.id AND supplier.nationid = nation.id
GROUP BY nation.name;`,
		Setup: func(scale int) []string {
			out := []string{`CREATE TABLE region (id INTEGER PRIMARY KEY, name VARCHAR);
CREATE TABLE nation (id INTEGER PRIMARY KEY, regionid INTEGER REFERENCES region, name VARCHAR);
CREATE TABLE supplier (id INTEGER PRIMARY KEY, nationid INTEGER REFERENCES nation, name VARCHAR);
CREATE TABLE part (id INTEGER PRIMARY KEY, brand VARCHAR, type VARCHAR);
CREATE TABLE lineitem (id INTEGER PRIMARY KEY,
	partid INTEGER REFERENCES part,
	suppid INTEGER REFERENCES supplier,
	qty INTEGER,
	price FLOAT MUTABLE);`}
			rng := rand.New(rand.NewSource(11))
			var rows []string
			for i := 1; i <= regions; i++ {
				rows = append(rows, fmt.Sprintf("(%d, 'region%d')", i, i))
			}
			out = batchInsert(out, "region", rows)
			rows = rows[:0]
			for i := 1; i <= nations; i++ {
				rows = append(rows, fmt.Sprintf("(%d, %d, 'nation%d')", i, (i-1)%regions+1, i))
			}
			out = batchInsert(out, "nation", rows)
			rows = rows[:0]
			for i := 1; i <= suppliers(scale); i++ {
				rows = append(rows, fmt.Sprintf("(%d, %d, 'supp%d')", i, (i-1)%nations+1, i))
			}
			out = batchInsert(out, "supplier", rows)
			rows = rows[:0]
			for i := 1; i <= parts(scale); i++ {
				rows = append(rows, fmt.Sprintf("(%d, 'brand%d', 'type%d')", i, i%40, i%7))
			}
			out = batchInsert(out, "part", rows)
			rows = rows[:0]
			for i := 1; i <= scale; i++ {
				rows = append(rows, fmt.Sprintf("(%d, %d, %d, %d, %g)",
					i, rng.Intn(parts(scale))+1, rng.Intn(suppliers(scale))+1, rng.Intn(50)+1, price(rng)))
			}
			return batchInsert(out, "lineitem", rows)
		},
		NewStream: func(scale int, seed int64) *Stream {
			rng := rand.New(rand.NewSource(seed))
			live := newLiveSet(int64(scale))
			nextID := int64(scale)
			s := &Stream{}
			s.next = func() Op {
				r := rng.Intn(100)
				switch {
				case r < 60: // update-heavy: most traffic repricing lines
					if id, ok := live.pick(rng); ok {
						return Op{SQL: fmt.Sprintf("UPDATE lineitem SET price = %g WHERE id = %d;", price(rng), id)}
					}
					fallthrough
				case r < 75:
					nextID++
					live.add(nextID)
					return Op{SQL: fmt.Sprintf("INSERT INTO lineitem VALUES (%d, %d, %d, %d, %g);",
						nextID, rng.Intn(parts(scale))+1, rng.Intn(suppliers(scale))+1, rng.Intn(50)+1, price(rng))}
				case r < 85:
					if id, ok := live.remove(rng); ok {
						return Op{SQL: fmt.Sprintf("DELETE FROM lineitem WHERE id = %d;", id)}
					}
					return Op{Query: true}
				default:
					return Op{Query: true}
				}
			}
			return s
		},
	}
}

// appendOnlyFirehose is the classic warehouse load pattern over the
// paper's retail star: facts only ever arrive, nothing mutates in place.
func appendOnlyFirehose() *Scenario {
	const days = 30
	products := func(scale int) int { return maxInt(50, scale/40) }
	return &Scenario{
		Name:        "append-only",
		Description: "retail star, insert-only fact firehose with occasional view reads",
		ViewName:    "month_totals",
		View: `CREATE MATERIALIZED VIEW month_totals AS
SELECT time.month, SUM(price) AS total, COUNT(*) AS cnt
FROM sale, time
WHERE sale.timeid = time.id
GROUP BY time.month;`,
		Setup: func(scale int) []string {
			out, rng := retailSetup(scale, days, products(scale))
			return append(out, retailSales(scale, days, products(scale), rng, nil)...)
		},
		NewStream: func(scale int, seed int64) *Stream {
			rng := rand.New(rand.NewSource(seed))
			nextID := int64(scale)
			s := &Stream{}
			s.next = func() Op {
				if rng.Intn(100) < 5 {
					return Op{Query: true}
				}
				nextID++
				return Op{SQL: fmt.Sprintf("INSERT INTO sale VALUES (%d, %d, %d, %d, %g);",
					nextID, rng.Intn(days)+1, rng.Intn(products(scale))+1, rng.Intn(4)+1, price(rng))}
			}
			return s
		},
	}
}

// zipfSkew drives the retail star with Zipf-distributed product
// popularity: a few hot products absorb most inserts, concentrating
// maintenance on a handful of groups while the long tail stays cold.
func zipfSkew() *Scenario {
	const days = 30
	products := func(scale int) int { return maxInt(50, scale/40) }
	return &Scenario{
		Name:        "zipf-skew",
		Description: "retail star, inserts with Zipf-skewed product keys (hot groups + cold tail)",
		ViewName:    "brand_totals",
		View: `CREATE MATERIALIZED VIEW brand_totals AS
SELECT brand, SUM(price) AS total, COUNT(*) AS cnt
FROM sale, product
WHERE sale.productid = product.id
GROUP BY brand;`,
		Setup: func(scale int) []string {
			out, rng := retailSetup(scale, days, products(scale))
			z := rand.NewZipf(rng, 1.2, 1, uint64(products(scale)-1))
			return append(out, retailSales(scale, days, products(scale), rng, z)...)
		},
		NewStream: func(scale int, seed int64) *Stream {
			rng := rand.New(rand.NewSource(seed))
			z := rand.NewZipf(rng, 1.2, 1, uint64(products(scale)-1))
			live := newLiveSet(int64(scale))
			nextID := int64(scale)
			s := &Stream{}
			s.next = func() Op {
				r := rng.Intn(100)
				switch {
				case r < 75:
					nextID++
					live.add(nextID)
					return Op{SQL: fmt.Sprintf("INSERT INTO sale VALUES (%d, %d, %d, %d, %g);",
						nextID, rng.Intn(days)+1, int64(z.Uint64())+1, rng.Intn(4)+1, price(rng))}
				case r < 90:
					if id, ok := live.pick(rng); ok {
						return Op{SQL: fmt.Sprintf("UPDATE sale SET price = %g WHERE id = %d;", price(rng), id)}
					}
					fallthrough
				default:
					return Op{Query: true}
				}
			}
			return s
		},
	}
}

// retailSetup emits the retail star DDL plus its time/product/store
// dimensions, returning the statements and the RNG for the fact load.
func retailSetup(scale, days, products int) ([]string, *rand.Rand) {
	out := []string{DDL()}
	rng := rand.New(rand.NewSource(13))
	var rows []string
	for d := 0; d < days; d++ {
		rows = append(rows, fmt.Sprintf("(%d, %d, %d, %d)", d+1, d%28+1, (d/28)%12+1, 1997))
	}
	out = batchInsert(out, "time", rows)
	rows = rows[:0]
	for i := 1; i <= products; i++ {
		rows = append(rows, fmt.Sprintf("(%d, 'brand%d', 'cat%d')", i, i%25, i%10))
	}
	out = batchInsert(out, "product", rows)
	rows = rows[:0]
	for s := 1; s <= 4; s++ {
		rows = append(rows, fmt.Sprintf("(%d, '%d main st', 'city%d', 'dk', 'mgr%d')", s, s, s, s))
	}
	return batchInsert(out, "store", rows), rng
}

// retailSales emits scale fact rows; product keys come from z when
// non-nil (the skewed load), uniform otherwise.
func retailSales(scale, days, products int, rng *rand.Rand, z *rand.Zipf) []string {
	var rows []string
	for i := 1; i <= scale; i++ {
		pid := int64(rng.Intn(products)) + 1
		if z != nil {
			pid = int64(z.Uint64()) + 1
		}
		rows = append(rows, fmt.Sprintf("(%d, %d, %d, %d, %g)",
			i, rng.Intn(days)+1, pid, rng.Intn(4)+1, price(rng)))
	}
	return batchInsert(nil, "sale", rows)
}

// tinyGroups groups by a key whose cardinality tracks the fact count:
// every group holds a row or two, so maintenance cost is dominated by
// group lookup fan-out rather than per-group arithmetic.
func tinyGroups() *Scenario {
	skus := func(scale int) int { return maxInt(10, scale/2) }
	return &Scenario{
		Name:        "tiny-groups",
		Description: "one or two rows per group — group-lookup fan-out at high key cardinality",
		ViewName:    "sku_totals",
		View: `CREATE MATERIALIZED VIEW sku_totals AS
SELECT sku.code, SUM(item.price) AS total, COUNT(*) AS cnt
FROM item, sku
WHERE item.skuid = sku.id
GROUP BY sku.code;`,
		Setup: func(scale int) []string {
			out := []string{`CREATE TABLE sku (id INTEGER PRIMARY KEY, code VARCHAR);
CREATE TABLE item (id INTEGER PRIMARY KEY, skuid INTEGER REFERENCES sku, price FLOAT MUTABLE);`}
			rng := rand.New(rand.NewSource(17))
			var rows []string
			for i := 1; i <= skus(scale); i++ {
				rows = append(rows, fmt.Sprintf("(%d, 'sku%08d')", i, i))
			}
			out = batchInsert(out, "sku", rows)
			rows = rows[:0]
			for i := 1; i <= scale; i++ {
				rows = append(rows, fmt.Sprintf("(%d, %d, %g)", i, rng.Intn(skus(scale))+1, price(rng)))
			}
			return batchInsert(out, "item", rows)
		},
		NewStream: func(scale int, seed int64) *Stream {
			rng := rand.New(rand.NewSource(seed))
			nextItem := int64(scale)
			nextSKU := int64(skus(scale))
			s := &Stream{}
			s.next = func() Op {
				r := rng.Intn(100)
				switch {
				case r < 10: // grow the key space: a brand-new group per insert
					nextSKU++
					nextItem++
					s.push(Op{SQL: fmt.Sprintf("INSERT INTO item VALUES (%d, %d, %g);", nextItem, nextSKU, price(rng))})
					return Op{SQL: fmt.Sprintf("INSERT INTO sku VALUES (%d, 'sku%08d');", nextSKU, nextSKU)}
				case r < 90:
					nextItem++
					return Op{SQL: fmt.Sprintf("INSERT INTO item VALUES (%d, %d, %g);",
						nextItem, rng.Int63n(nextSKU)+1, price(rng))}
				default:
					return Op{Query: true}
				}
			}
			return s
		},
	}
}

// wideGroups is the opposite regime: four groups absorb everything, so
// each group's auxiliary state is wide and contended.
func wideGroups() *Scenario {
	const cats = 4
	return &Scenario{
		Name:        "wide-groups",
		Description: "four wide groups absorb every delta — per-group contention, zero fan-out",
		ViewName:    "cat_totals",
		View: `CREATE MATERIALIZED VIEW cat_totals AS
SELECT cat.name, SUM(item.price) AS total, COUNT(*) AS cnt
FROM item, cat
WHERE item.catid = cat.id
GROUP BY cat.name;`,
		Setup: func(scale int) []string {
			out := []string{`CREATE TABLE cat (id INTEGER PRIMARY KEY, name VARCHAR);
CREATE TABLE item (id INTEGER PRIMARY KEY, catid INTEGER REFERENCES cat, price FLOAT MUTABLE);`}
			rng := rand.New(rand.NewSource(19))
			var rows []string
			for i := 1; i <= cats; i++ {
				rows = append(rows, fmt.Sprintf("(%d, 'cat%d')", i, i))
			}
			out = batchInsert(out, "cat", rows)
			rows = rows[:0]
			for i := 1; i <= scale; i++ {
				rows = append(rows, fmt.Sprintf("(%d, %d, %g)", i, rng.Intn(cats)+1, price(rng)))
			}
			return batchInsert(out, "item", rows)
		},
		NewStream: func(scale int, seed int64) *Stream {
			rng := rand.New(rand.NewSource(seed))
			live := newLiveSet(int64(scale))
			nextID := int64(scale)
			s := &Stream{}
			s.next = func() Op {
				r := rng.Intn(100)
				switch {
				case r < 40:
					nextID++
					live.add(nextID)
					return Op{SQL: fmt.Sprintf("INSERT INTO item VALUES (%d, %d, %g);", nextID, rng.Intn(cats)+1, price(rng))}
				case r < 70:
					if id, ok := live.pick(rng); ok {
						return Op{SQL: fmt.Sprintf("UPDATE item SET price = %g WHERE id = %d;", price(rng), id)}
					}
					fallthrough
				case r < 85:
					if id, ok := live.remove(rng); ok {
						return Op{SQL: fmt.Sprintf("DELETE FROM item WHERE id = %d;", id)}
					}
					return Op{Query: true}
				default:
					return Op{Query: true}
				}
			}
			return s
		},
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
