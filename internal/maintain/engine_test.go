package maintain

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"mindetail/internal/core"
	"mindetail/internal/gpsj"
	"mindetail/internal/ra"
	"mindetail/internal/schema"
	"mindetail/internal/sqlparse"
	"mindetail/internal/storage"
	"mindetail/internal/tuple"
	"mindetail/internal/types"
)

func catalogFromDDL(t *testing.T, ddl string) *schema.Catalog {
	t.Helper()
	stmts, err := sqlparse.ParseAll(ddl)
	if err != nil {
		t.Fatal(err)
	}
	cat := schema.NewCatalog()
	var fks []schema.ForeignKey
	for _, s := range stmts {
		ct := s.(*sqlparse.CreateTable)
		if err := cat.AddTable(ct.Table); err != nil {
			t.Fatal(err)
		}
		fks = append(fks, ct.FKs...)
	}
	for _, fk := range fks {
		if err := cat.AddForeignKey(fk); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

const retailDDL = `
	CREATE TABLE time (id INTEGER PRIMARY KEY, day INTEGER, month INTEGER, year INTEGER);
	CREATE TABLE product (id INTEGER PRIMARY KEY, brand VARCHAR MUTABLE, category VARCHAR);
	CREATE TABLE store (id INTEGER PRIMARY KEY, city VARCHAR, manager VARCHAR MUTABLE);
	CREATE TABLE sale (id INTEGER PRIMARY KEY,
		timeid INTEGER REFERENCES time,
		productid INTEGER REFERENCES product,
		storeid INTEGER REFERENCES store,
		price FLOAT MUTABLE);`

// fixture couples a maintenance engine with an oracle database: every delta
// is applied to both and the engine's snapshot is compared against a
// brute-force recomputation from the oracle.
type fixture struct {
	t      *testing.T
	cat    *schema.Catalog
	db     *storage.DB
	view   *gpsj.View
	engine *Engine
	saleID int64
}

func newFixture(t *testing.T, ddl, viewSQL string, needSets bool) *fixture {
	t.Helper()
	cat := catalogFromDDL(t, ddl)
	s, err := sqlparse.Parse(viewSQL)
	if err != nil {
		t.Fatal(err)
	}
	v, err := gpsj.FromSelect(cat, "v", s.(*sqlparse.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.Derive(v)
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{t: t, cat: cat, db: storage.NewDB(cat), view: v, saleID: 1000}
	f.engine = mustEngine(t, p)
	f.engine.UseNeedSets = needSets
	return f
}

func (f *fixture) seedRetail() {
	f.t.Helper()
	ins := func(table string, vals ...types.Value) {
		f.t.Helper()
		if err := f.db.Insert(table, tuple.Tuple(vals)); err != nil {
			f.t.Fatal(err)
		}
	}
	for id := 1; id <= 6; id++ {
		year := 1997
		if id > 4 {
			year = 1998
		}
		ins("time", types.Int(int64(id)), types.Int(int64(id)), types.Int(int64((id-1)%3+1)), types.Int(int64(year)))
	}
	ins("product", types.Int(100), types.Str("acme"), types.Str("tools"))
	ins("product", types.Int(101), types.Str("bolt"), types.Str("tools"))
	ins("product", types.Int(102), types.Str("cask"), types.Str("food"))
	ins("store", types.Int(7), types.Str("aalborg"), types.Str("kim"))
	ins("store", types.Int(8), types.Str("odense"), types.Str("ida"))
	sale := func(id, tid, pid, sid int64, price float64) {
		ins("sale", types.Int(id), types.Int(tid), types.Int(pid), types.Int(sid), types.Float(price))
	}
	sale(1, 1, 100, 7, 10)
	sale(2, 1, 100, 7, 10)
	sale(3, 1, 101, 7, 5)
	sale(4, 2, 101, 8, 7)
	sale(5, 3, 102, 8, 12)
	sale(6, 5, 100, 7, 99) // 1998
}

func (f *fixture) initEngine() {
	f.t.Helper()
	if err := f.engine.Init(func(tb string) *ra.Relation {
		return ra.FromTable(f.db.Table(tb), tb)
	}); err != nil {
		f.t.Fatal(err)
	}
	f.check("after init")
}

// insertSale inserts a fresh sale row into both oracle and engine.
func (f *fixture) insertSale(tid, pid, sid int64, price float64) {
	f.t.Helper()
	f.saleID++
	row := tuple.Tuple{types.Int(f.saleID), types.Int(tid), types.Int(pid), types.Int(sid), types.Float(price)}
	if err := f.db.Insert("sale", row); err != nil {
		f.t.Fatal(err)
	}
	f.apply(Delta{Table: "sale", Inserts: []tuple.Tuple{row}})
}

func (f *fixture) deleteRow(table string, key int64) {
	f.t.Helper()
	row, err := f.db.Delete(table, types.Int(key))
	if err != nil {
		f.t.Fatal(err)
	}
	f.apply(Delta{Table: table, Deletes: []tuple.Tuple{row}})
}

func (f *fixture) updateRow(table string, key int64, set map[string]types.Value) {
	f.t.Helper()
	old, upd, err := f.db.Update(table, types.Int(key), set)
	if err != nil {
		f.t.Fatal(err)
	}
	f.apply(Delta{Table: table, Updates: []Update{{Old: old, New: upd}}})
}

func (f *fixture) insertRow(table string, vals ...types.Value) {
	f.t.Helper()
	row := tuple.Tuple(vals)
	if err := f.db.Insert(table, row); err != nil {
		f.t.Fatal(err)
	}
	f.apply(Delta{Table: table, Inserts: []tuple.Tuple{row}})
}

func (f *fixture) apply(d Delta) {
	f.t.Helper()
	if err := f.engine.Apply(d); err != nil {
		f.t.Fatalf("Apply(%s): %v", d.Table, err)
	}
	f.check(fmt.Sprintf("after delta on %s", d.Table))
}

// check compares the maintained view against brute-force recomputation.
func (f *fixture) check(when string) {
	f.t.Helper()
	want, err := f.view.Evaluate(f.db)
	if err != nil {
		f.t.Fatal(err)
	}
	got := f.engine.Snapshot()
	if !ra.EqualBag(got, want) {
		f.t.Fatalf("%s: maintained view diverged\nmaintained:\n%s\nrecomputed:\n%s",
			when, got.Format(), want.Format())
	}
	// The auxiliary views must also match a fresh materialization.
	mats, err := f.engine.Plan().Materialize(func(tb string) *ra.Relation {
		return ra.FromTable(f.db.Table(tb), tb)
	})
	if err != nil {
		f.t.Fatal(err)
	}
	for tb, fresh := range mats {
		cur := f.engine.Aux(tb).Relation()
		if !ra.EqualBag(cur, fresh) {
			f.t.Fatalf("%s: auxiliary view %s diverged\nmaintained:\n%s\nfresh:\n%s",
				when, tb, cur.Format(), fresh.Format())
		}
	}
}

const productSalesSQL = `
	SELECT time.month, SUM(price) AS TotalPrice, COUNT(*) AS TotalCount,
	       COUNT(DISTINCT brand) AS DifferentBrands
	FROM sale, time, product
	WHERE time.year = 1997 AND sale.timeid = time.id AND sale.productid = product.id
	GROUP BY time.month`

func TestMaintainProductSalesScripted(t *testing.T) {
	f := newFixture(t, retailDDL, productSalesSQL, true)
	f.seedRetail()
	f.initEngine()

	// Fact inserts: duplicate group, new group, filtered-out (1998).
	f.insertSale(1, 100, 7, 20)
	f.insertSale(2, 102, 7, 3)
	f.insertSale(5, 100, 7, 50) // 1998: must not change the view
	// Fact deletes, including one that empties a group.
	f.deleteRow("sale", 5) // (month 3) group dies
	f.deleteRow("sale", 4)
	// Price update on the fact table.
	f.updateRow("sale", 1, map[string]types.Value{"price": types.Float(11)})
	// Brand update on the dimension: affects COUNT(DISTINCT brand).
	f.updateRow("product", 101, map[string]types.Value{"brand": types.Str("acme")})
	f.updateRow("product", 101, map[string]types.Value{"brand": types.Str("zeta")})
	// Dimension inserts: no view impact (nothing references them yet).
	f.insertRow("time", types.Int(7), types.Int(7), types.Int(1), types.Int(1997))
	f.insertRow("product", types.Int(103), types.Str("dune"), types.Str("food"))
	// Then a sale referencing the new dimension rows.
	f.insertSale(7, 103, 7, 8)
	// Dimension delete of an unreferenced row.
	f.deleteRow("sale", f.saleID)
	f.deleteRow("product", 103)
}

func TestMaintainCSMASOnly(t *testing.T) {
	f := newFixture(t, retailDDL, `
		SELECT time.month, store.city, SUM(price) AS total, AVG(price) AS avgp, COUNT(*) AS cnt
		FROM sale, time, store
		WHERE sale.timeid = time.id AND sale.storeid = store.id AND time.year = 1997
		GROUP BY time.month, store.city`, true)
	f.seedRetail()
	f.initEngine()
	f.insertSale(1, 100, 8, 30)
	f.insertSale(2, 101, 8, 2.5)
	f.deleteRow("sale", 1)
	f.deleteRow("sale", 2)
	f.deleteRow("sale", 3) // group (1, aalborg) shrinks/dies
	f.updateRow("sale", 4, map[string]types.Value{"price": types.Float(70)})
}

func TestMaintainMinMax(t *testing.T) {
	f := newFixture(t, retailDDL, `
		SELECT sale.productid, MAX(sale.price) AS MaxPrice, MIN(sale.price) AS MinPrice,
		       SUM(sale.price) AS TotalPrice, COUNT(*) AS TotalCount
		FROM sale GROUP BY sale.productid`, true)
	f.seedRetail()
	f.initEngine()
	f.insertSale(1, 100, 7, 500) // raises MAX(100)
	f.insertSale(2, 100, 7, 0.5) // lowers MIN(100)
	stats := f.engine.Stats()
	if stats.GroupRecomputes != 0 {
		t.Errorf("insert-only MIN/MAX batches must use the SMA fast path, got %d recomputes", stats.GroupRecomputes)
	}
	// Deleting the extremum forces recomputation from the auxiliary view.
	f.deleteRow("sale", f.saleID-1) // the 500 row
	if f.engine.Stats().GroupRecomputes == 0 {
		t.Error("deleting the extremum must trigger partial recomputation")
	}
	f.deleteRow("sale", f.saleID)
	f.updateRow("sale", 1, map[string]types.Value{"price": types.Float(0.01)})
}

func TestMaintainEliminatedRoot(t *testing.T) {
	f := newFixture(t, retailDDL, `
		SELECT product.id, SUM(price) AS total, COUNT(*) AS cnt
		FROM sale, product WHERE sale.productid = product.id
		GROUP BY product.id`, true)
	f.seedRetail()
	if f.engine.Aux("sale") != nil {
		t.Fatal("sale aux should be omitted")
	}
	f.initEngine()
	f.insertSale(1, 100, 7, 42)
	f.insertSale(2, 102, 8, 1)
	f.deleteRow("sale", 1)
	f.deleteRow("sale", 2)
	f.updateRow("sale", 3, map[string]types.Value{"price": types.Float(9)})
	// Product inserts/deletes with no referencing sales: no view impact.
	f.insertRow("product", types.Int(110), types.Str("new"), types.Str("misc"))
	f.deleteRow("product", 110)
}

func TestMaintainRekeyWithOmittedRoot(t *testing.T) {
	f := newFixture(t, retailDDL, `
		SELECT product.id, product.brand, SUM(price) AS total, COUNT(*) AS cnt
		FROM sale, product WHERE sale.productid = product.id
		GROUP BY product.id, product.brand`, true)
	f.seedRetail()
	if f.engine.Aux("sale") != nil {
		t.Fatal("sale aux should be omitted (product is k-annotated)")
	}
	f.initEngine()
	// Renaming a brand re-keys the group without any join.
	f.updateRow("product", 100, map[string]types.Value{"brand": types.Str("renamed")})
	f.insertSale(1, 100, 7, 5)
	f.updateRow("product", 100, map[string]types.Value{"brand": types.Str("again")})
	f.deleteRow("sale", f.saleID)
}

func TestMaintainExposedUpdates(t *testing.T) {
	// year is mutable and used in a local condition: time has exposed
	// updates, join reduction on sale is disabled, and year updates move
	// whole time rows (and their sales) in and out of the view.
	ddl := strings.Replace(retailDDL, "year INTEGER)", "year INTEGER MUTABLE)", 1)
	f := newFixture(t, ddl, productSalesSQL, true)
	if len(f.engine.Plan().Aux["sale"].SemiJoins) != 1 {
		t.Fatalf("sale must semijoin only with product: %v", f.engine.Plan().Aux["sale"].SemiJoins)
	}
	f.seedRetail()
	f.initEngine()
	// Move a 1998 day into 1997: its sale (id 6) enters the view.
	f.updateRow("time", 5, map[string]types.Value{"year": types.Int(1997)})
	// And back out again.
	f.updateRow("time", 5, map[string]types.Value{"year": types.Int(1998)})
	// Move a 1997 day out: sales 1,2,3 leave the view.
	f.updateRow("time", 1, map[string]types.Value{"year": types.Int(1996)})
	f.insertSale(1, 100, 7, 77) // references the now-1996 day: no impact
	f.updateRow("time", 1, map[string]types.Value{"year": types.Int(1997)})
}

func TestMaintainGlobalAggregate(t *testing.T) {
	f := newFixture(t, retailDDL, `
		SELECT SUM(price) AS total, COUNT(*) AS cnt, MAX(price) AS hi
		FROM sale, time WHERE sale.timeid = time.id AND time.year = 1997`, true)
	f.seedRetail()
	f.initEngine()
	f.insertSale(1, 100, 7, 123)
	f.deleteRow("sale", f.saleID)
	// Empty the view entirely: the global group must survive with
	// COUNT = 0 and NULL SUM/MAX.
	for _, id := range []int64{1, 2, 3, 4, 5} {
		f.deleteRow("sale", id)
	}
	if got := f.engine.Snapshot(); got.Len() != 1 {
		t.Fatalf("global view must keep one row:\n%s", got.Format())
	}
	f.insertSale(2, 101, 8, 6)
}

func TestMaintainSnowflake(t *testing.T) {
	ddl := `
	CREATE TABLE brand (id INTEGER PRIMARY KEY, name VARCHAR MUTABLE, country VARCHAR);
	CREATE TABLE product (id INTEGER PRIMARY KEY, brandid INTEGER REFERENCES brand, category VARCHAR);
	CREATE TABLE sale (id INTEGER PRIMARY KEY, productid INTEGER REFERENCES product, price FLOAT MUTABLE);`
	f := newFixture(t, ddl, `
		SELECT brand.name, SUM(price) AS total, COUNT(*) AS cnt
		FROM sale, product, brand
		WHERE sale.productid = product.id AND product.brandid = brand.id
		GROUP BY brand.name`, true)
	f.insertNoCheck("brand", types.Int(1), types.Str("acme"), types.Str("dk"))
	f.insertNoCheck("brand", types.Int(2), types.Str("bolt"), types.Str("se"))
	f.insertNoCheck("product", types.Int(10), types.Int(1), types.Str("tools"))
	f.insertNoCheck("product", types.Int(11), types.Int(2), types.Str("tools"))
	f.insertNoCheck("sale", types.Int(1), types.Int(10), types.Float(5))
	f.insertNoCheck("sale", types.Int(2), types.Int(10), types.Float(5))
	f.insertNoCheck("sale", types.Int(3), types.Int(11), types.Float(9))
	f.initEngine()
	f.insertRow("sale", types.Int(4), types.Int(11), types.Float(2))
	f.deleteRow("sale", 1)
	// Renaming a brand moves an entire subtree of sales between groups.
	f.updateRow("brand", 1, map[string]types.Value{"name": types.Str("bolt")})
	f.updateRow("brand", 1, map[string]types.Value{"name": types.Str("acme2")})
	f.updateRow("sale", 2, map[string]types.Value{"price": types.Float(50)})
}

// insertNoCheck seeds the oracle before engine initialization.
func (f *fixture) insertNoCheck(table string, vals ...types.Value) {
	f.t.Helper()
	if err := f.db.Insert(table, tuple.Tuple(vals)); err != nil {
		f.t.Fatal(err)
	}
}

func TestMaintainIgnoresUnreferencedTable(t *testing.T) {
	f := newFixture(t, retailDDL, productSalesSQL, true)
	f.seedRetail()
	f.initEngine()
	// store is not referenced by the view; its deltas are no-ops.
	f.updateRow("store", 7, map[string]types.Value{"manager": types.Str("bo")})
	if f.engine.Stats().DeltasApplied != 0 {
		t.Error("delta on unreferenced table must not count as applied")
	}
}

func TestMaintainDetachedSources(t *testing.T) {
	// The defining property of the paper: after Init, maintenance works
	// with the sources physically unreachable.
	f := newFixture(t, retailDDL, productSalesSQL, true)
	f.seedRetail()
	if err := f.engine.Init(func(tb string) *ra.Relation {
		return ra.FromTable(f.db.Table(tb), tb)
	}); err != nil {
		t.Fatal(err)
	}
	before, err := f.view.Evaluate(f.db)
	if err != nil {
		t.Fatal(err)
	}
	// Prepare the delta rows first (a change log would deliver them), then
	// detach the source.
	ins := tuple.Tuple{types.Int(2000), types.Int(1), types.Int(100), types.Int(7), types.Float(40)}
	if err := f.db.Insert("sale", ins); err != nil {
		t.Fatal(err)
	}
	after, err := f.view.Evaluate(f.db)
	if err != nil {
		t.Fatal(err)
	}
	f.db.Detach()
	if err := f.engine.Apply(Delta{Table: "sale", Inserts: []tuple.Tuple{ins}}); err != nil {
		t.Fatal(err)
	}
	got := f.engine.Snapshot()
	if ra.EqualBag(got, before) {
		t.Error("view did not change")
	}
	if !ra.EqualBag(got, after) {
		t.Errorf("detached maintenance diverged:\n%s\nwant:\n%s", got.Format(), after.Format())
	}
}

func TestMaintainErrorPaths(t *testing.T) {
	f := newFixture(t, retailDDL, productSalesSQL, true)
	f.seedRetail()
	f.initEngine()
	// Wrong arity.
	if err := f.engine.Apply(Delta{Table: "sale", Inserts: []tuple.Tuple{{types.Int(1)}}}); err == nil {
		t.Error("arity error not detected")
	}
	// Deleting a row that was never inserted drives a group negative.
	bogus := tuple.Tuple{types.Int(9999), types.Int(1), types.Int(100), types.Int(7), types.Float(1)}
	err := f.engine.Apply(Delta{Table: "sale", Deletes: []tuple.Tuple{bogus, bogus, bogus, bogus}})
	if err == nil {
		t.Error("inconsistent delete stream not detected")
	}
}

// TestMaintainRandomStreams drives several view shapes with seeded random
// delta streams, checking equivalence with recomputation after every delta.
func TestMaintainRandomStreams(t *testing.T) {
	views := []struct {
		name string
		sql  string
	}{
		{"paper", productSalesSQL},
		{"csmas", `SELECT time.month, SUM(price) AS total, AVG(price) AS a, COUNT(*) AS cnt
			FROM sale, time WHERE sale.timeid = time.id AND time.year = 1997 GROUP BY time.month`},
		{"minmax", `SELECT sale.productid, MIN(price) AS lo, MAX(price) AS hi, COUNT(*) AS cnt
			FROM sale GROUP BY sale.productid`},
		{"eliminated", `SELECT product.id, SUM(price) AS total, COUNT(*) AS cnt
			FROM sale, product WHERE sale.productid = product.id GROUP BY product.id`},
		{"distinct", `SELECT store.city, COUNT(DISTINCT brand) AS brands, SUM(price) AS total
			FROM sale, product, store
			WHERE sale.productid = product.id AND sale.storeid = store.id
			GROUP BY store.city`},
	}
	for _, vc := range views {
		for _, needSets := range []bool{true, false} {
			t.Run(fmt.Sprintf("%s/need=%v", vc.name, needSets), func(t *testing.T) {
				runRandomStream(t, vc.sql, needSets, 42)
			})
		}
	}
}

func runRandomStream(t *testing.T, viewSQL string, needSets bool, seed int64) {
	t.Helper()
	f := newFixture(t, retailDDL, viewSQL, needSets)
	f.seedRetail()
	f.initEngine()
	rng := rand.New(rand.NewSource(seed))
	liveSales := []int64{1, 2, 3, 4, 5, 6}
	for step := 0; step < 60; step++ {
		switch rng.Intn(5) {
		case 0, 1: // insert a sale
			tid := int64(rng.Intn(6) + 1)
			pid := int64(rng.Intn(3) + 100)
			sid := int64(rng.Intn(2) + 7)
			f.insertSale(tid, pid, sid, float64(rng.Intn(50))+0.5)
			liveSales = append(liveSales, f.saleID)
		case 2: // delete a sale
			if len(liveSales) == 0 {
				continue
			}
			i := rng.Intn(len(liveSales))
			f.deleteRow("sale", liveSales[i])
			liveSales = append(liveSales[:i], liveSales[i+1:]...)
		case 3: // update a sale price
			if len(liveSales) == 0 {
				continue
			}
			id := liveSales[rng.Intn(len(liveSales))]
			f.updateRow("sale", id, map[string]types.Value{"price": types.Float(float64(rng.Intn(80)))})
		case 4: // rename a brand
			pid := int64(rng.Intn(3) + 100)
			f.updateRow("product", pid, map[string]types.Value{"brand": types.Str(fmt.Sprintf("b%d", rng.Intn(4)))})
		}
	}
}

// TestMinimalityDropAttribute spot-checks Theorem 1's minimality: removing
// the COUNT(*) column from the compressed auxiliary view makes some delta
// stream unmaintainable (here: a deletion that must detect group death).
func TestMinimalityDropAttribute(t *testing.T) {
	f := newFixture(t, retailDDL, productSalesSQL, true)
	f.seedRetail()
	f.initEngine()
	// Sabotage: forget the count column's contents (simulate its absence
	// by zeroing, which is what "not storing it" would give maintenance).
	sale := f.engine.Aux("sale")
	_ = sale.store.Scan(func(_ string, row tuple.Tuple) error {
		row[sale.cntPos] = types.Int(1)
		return nil
	})
	// A delete of one of the duplicated rows now drives the auxiliary
	// group to a wrong state; the divergence must be observable.
	row, err := f.db.Delete("sale", types.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.engine.Apply(Delta{Table: "sale", Deletes: []tuple.Tuple{row}}); err != nil {
		return // detected as inconsistent: acceptable
	}
	row2, err := f.db.Delete("sale", types.Int(2))
	if err != nil {
		t.Fatal(err)
	}
	errApply := f.engine.Apply(Delta{Table: "sale", Deletes: []tuple.Tuple{row2}})
	want, err := f.view.Evaluate(f.db)
	if err != nil {
		t.Fatal(err)
	}
	if errApply == nil && ra.EqualBag(f.engine.Snapshot(), want) {
		t.Error("dropping COUNT(*) from the auxiliary view should break maintenance (Theorem 1 minimality)")
	}
}

// TestMaintainBatchedDelta: one Delta carrying several inserts, deletes,
// and updates at once; deletes apply first, then update pairs, then
// inserts (documented engine semantics).
func TestMaintainBatchedDelta(t *testing.T) {
	f := newFixture(t, retailDDL, productSalesSQL, true)
	f.seedRetail()
	f.initEngine()
	del1, err := f.db.Delete("sale", types.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	old, upd, err := f.db.Update("sale", types.Int(2), map[string]types.Value{"price": types.Float(77)})
	if err != nil {
		t.Fatal(err)
	}
	var inserts []tuple.Tuple
	for i := 0; i < 3; i++ {
		f.saleID++
		row := tuple.Tuple{types.Int(f.saleID), types.Int(1), types.Int(100), types.Int(7), types.Float(float64(i))}
		if err := f.db.Insert("sale", row); err != nil {
			t.Fatal(err)
		}
		inserts = append(inserts, row)
	}
	f.apply(Delta{
		Table:   "sale",
		Deletes: []tuple.Tuple{del1},
		Updates: []Update{{Old: old, New: upd}},
		Inserts: inserts,
	})
}

// TestMaintainMultiAttributeUpdate: one update changing the dimension
// reference AND the measure at once.
func TestMaintainMultiAttributeUpdate(t *testing.T) {
	f := newFixture(t, `
	CREATE TABLE product (id INTEGER PRIMARY KEY, brand VARCHAR);
	CREATE TABLE sale (id INTEGER PRIMARY KEY,
		productid INTEGER REFERENCES product MUTABLE, price FLOAT MUTABLE);`, `
		SELECT product.brand, SUM(price) AS total, COUNT(*) AS cnt
		FROM sale, product WHERE sale.productid = product.id
		GROUP BY product.brand`, true)
	f.insertNoCheck("product", types.Int(1), types.Str("acme"))
	f.insertNoCheck("product", types.Int(2), types.Str("bolt"))
	f.insertNoCheck("sale", types.Int(1), types.Int(1), types.Float(5))
	f.initEngine()
	f.updateRow("sale", 1, map[string]types.Value{
		"productid": types.Int(2),
		"price":     types.Float(42),
	})
}

// TestMaintainNoOpUpdateSkipped: an update that changes nothing the view
// observes must not touch the engine state.
func TestMaintainNoOpUpdateSkipped(t *testing.T) {
	f := newFixture(t, retailDDL, `
		SELECT time.month, SUM(price) AS total, COUNT(*) AS cnt
		FROM sale, time WHERE sale.timeid = time.id GROUP BY time.month`, true)
	f.seedRetail()
	f.initEngine()
	f.engine.ResetStats()
	// brand is irrelevant to this view.
	f.updateRow("product", 100, map[string]types.Value{"brand": types.Str("whatever")})
	if f.engine.Stats().DetailRows != 0 {
		t.Errorf("irrelevant update produced %d detail rows", f.engine.Stats().DetailRows)
	}
}
