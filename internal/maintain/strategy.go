package maintain

import "fmt"

// Strategy selects the maintenance path for one staged delta. The engine's
// historical knobs (ForceFullRecompute, the scoped path's shape check, the
// static ShardMinRows threshold) remain as engine-level defaults; a
// Strategy overrides them for a single apply, which is how a cost model
// drives the engine per delta without mutating engine configuration.
//
// Correctness note: every strategy computes the same view contents, but
// scoped and full recomputation can visit detail rows in different orders,
// so float aggregates may differ in the last ulp between paths. Engines
// that must stay bit-identical replicas of each other (one warehouse, one
// SharedEngines class) therefore need the SAME strategy per delta — the
// decision is made once by the coordinator and handed to every engine,
// never taken per engine (see SharedEngines.Apply and the memo-key
// discussion in buildMemoKey).
type Strategy int

const (
	// StrategyAuto keeps the engine's own defaults: the delta-scoped
	// recomputation path with its shape-check fallback, and sharding gated
	// on the static ShardMinRows threshold.
	StrategyAuto Strategy = iota

	// StrategyScoped prefers the delta-scoped recomputation path. The shape
	// check still applies — a plan the scoped path cannot seed falls back
	// to the full join deterministically (the check depends only on the
	// plan, never on per-engine state).
	StrategyScoped

	// StrategyFull recomputes affected groups from the full auxiliary join
	// (the verification-oracle path), regardless of ForceFullRecompute.
	StrategyFull

	// StrategySharded engages the sharded apply pipeline regardless of the
	// ShardMinRows threshold (fan-out still resolves via shardCount).
	StrategySharded

	// StrategyDefer asks the CALLER to buffer the delta and apply it later
	// as part of a coalesced batch (warehouse.AdaptiveSession routes it
	// into the group-commit batch path). An engine handed StrategyDefer
	// treats it as StrategyAuto: deferral is a routing decision above the
	// engine, not a maintenance path inside it.
	StrategyDefer

	// NumStrategies bounds the Strategy enum for table-sized consumers.
	NumStrategies = iota
)

// String names the strategy for memo keys, metrics, and reports.
func (s Strategy) String() string {
	switch s {
	case StrategyAuto:
		return "auto"
	case StrategyScoped:
		return "scoped"
	case StrategyFull:
		return "full"
	case StrategySharded:
		return "sharded"
	case StrategyDefer:
		return "defer"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// DeltaClass is the operation mix of a delta — the coarse axis of a delta
// shape (insert-only deltas can coalesce and never shrink groups; deletes
// and updates force group recomputation under non-CSMAS aggregates).
type DeltaClass int

const (
	ClassEmpty DeltaClass = iota
	ClassInsertOnly
	ClassDeleteOnly
	ClassUpdateOnly
	ClassMixed
)

// String names the class for reports and estimate keys.
func (c DeltaClass) String() string {
	switch c {
	case ClassEmpty:
		return "empty"
	case ClassInsertOnly:
		return "insert"
	case ClassDeleteOnly:
		return "delete"
	case ClassUpdateOnly:
		return "update"
	default:
		return "mixed"
	}
}

// DeltaShape is the cost-model key for one delta: which table it mutates,
// its operation mix, and its size bucketed to a power of two (so one-row
// updates and thousand-row loads learn separate estimates while nearby
// sizes share one).
type DeltaShape struct {
	Table      string
	Class      DeltaClass
	SizeBucket int // floor(log2(Rows)), 0 for empty deltas
	Rows       int // signed-row count before filtering (updates count twice)
}

// ShapeOf classifies a delta. It is pure arithmetic over the delta's slice
// lengths — cheap enough for every apply, and deterministic, so every
// coordinator that classifies the same delta gets the same shape.
func ShapeOf(d Delta) DeltaShape {
	sh := DeltaShape{Table: d.Table, Rows: len(d.Inserts) + len(d.Deletes) + 2*len(d.Updates)}
	switch {
	case sh.Rows == 0:
		sh.Class = ClassEmpty
	case len(d.Deletes) == 0 && len(d.Updates) == 0:
		sh.Class = ClassInsertOnly
	case len(d.Inserts) == 0 && len(d.Updates) == 0:
		sh.Class = ClassDeleteOnly
	case len(d.Inserts) == 0 && len(d.Deletes) == 0:
		sh.Class = ClassUpdateOnly
	default:
		sh.Class = ClassMixed
	}
	for n := sh.Rows; n > 1; n >>= 1 {
		sh.SizeBucket++
	}
	return sh
}

// Key renders the shape as a stable string for per-shape estimate maps.
func (sh DeltaShape) Key() string {
	return fmt.Sprintf("%s|%s|%d", sh.Table, sh.Class, sh.SizeBucket)
}

// StrategyChooser picks a maintenance strategy per (view scope, delta
// shape) and learns from observed apply latencies. internal/costmodel
// provides the production implementation; coordinators treat a nil chooser
// as StrategyAuto everywhere.
//
// Determinism contract: coordinators call Choose exactly ONCE per delta
// per replica domain and hand the result to every engine in it. Choose may
// therefore be stateful across deltas (calibration cycling), but a single
// decision must never be re-derived per engine.
type StrategyChooser interface {
	// Choose picks the strategy for one delta. allowDefer reports whether
	// the caller can buffer the delta for batched application; when false
	// the chooser must return a directly applicable strategy.
	Choose(view string, shape DeltaShape, allowDefer bool) Strategy

	// Observe feeds back the measured cost of applying a delta of the
	// given shape under the given strategy (amortized per delta for
	// batched applications).
	Observe(view string, shape DeltaShape, s Strategy, ns int64)
}

// NormalizeStrategy maps out-of-range and non-engine strategies to the
// engine default.
func NormalizeStrategy(s Strategy) Strategy {
	if s < StrategyAuto || s >= NumStrategies || s == StrategyDefer {
		return StrategyAuto
	}
	return s
}

// ApplyWithStrategy is Apply under an explicit per-delta strategy: stage,
// then commit. Callers that coordinate several replica engines must pass
// the same strategy to each (see Strategy).
func (e *Engine) ApplyWithStrategy(d Delta, s Strategy) error {
	if err := e.StageWithPlan(d, nil, s); err != nil {
		return err
	}
	e.Commit()
	return nil
}
