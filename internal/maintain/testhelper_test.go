package maintain

import (
	"testing"

	"mindetail/internal/core"
)

// mustEngine is NewEngine for tests whose plans are valid by construction.
func mustEngine(t testing.TB, p *core.Plan) *Engine {
	t.Helper()
	e, err := NewEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// mustShared is NewSharedEngines for tests whose shared plans are valid by
// construction.
func mustShared(t testing.TB, sp *core.SharedPlan) *SharedEngines {
	t.Helper()
	se, err := NewSharedEngines(sp)
	if err != nil {
		t.Fatal(err)
	}
	return se
}
