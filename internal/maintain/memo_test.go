package maintain

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"mindetail/internal/core"
	"mindetail/internal/gpsj"
	"mindetail/internal/ra"
	"mindetail/internal/sqlparse"
	"mindetail/internal/tuple"
	"mindetail/internal/types"
)

// relBytes renders a relation as its sorted encoded rows — a byte-for-byte
// canonical form (relations are bags, so physical row order is irrelevant).
func relBytes(r *ra.Relation) []string {
	keys := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		keys[i] = row.Key()
	}
	sort.Strings(keys)
	return keys
}

// requireIdenticalState asserts two engines hold byte-identical materialized
// views and auxiliary tables.
func requireIdenticalState(t *testing.T, a, b *Engine, tables []string, when string) {
	t.Helper()
	ka, kb := relBytes(a.Snapshot()), relBytes(b.Snapshot())
	if len(ka) != len(kb) {
		t.Fatalf("%s: snapshots differ in size: %d vs %d", when, len(ka), len(kb))
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("%s: snapshots diverge at sorted row %d", when, i)
		}
	}
	for _, tb := range tables {
		ta, tbl := a.Aux(tb), b.Aux(tb)
		if (ta == nil) != (tbl == nil) {
			t.Fatalf("%s: aux %s present in one engine only", when, tb)
		}
		if ta == nil {
			continue
		}
		ra, rb := relBytes(ta.Relation()), relBytes(tbl.Relation())
		if len(ra) != len(rb) {
			t.Fatalf("%s: aux %s differs in size: %d vs %d", when, tb, len(ra), len(rb))
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("%s: aux %s diverges at sorted row %d", when, tb, i)
			}
		}
	}
}

// deriveEngine builds one standalone engine over the fixture's source DB,
// initialized from the current source state — engines built this way from
// the same SQL at the same moment are bit-identical replicas.
func deriveEngine(t *testing.T, f *fixture, sql string) *Engine {
	t.Helper()
	s, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	v, err := gpsj.FromSelect(f.cat, "v", s.(*sqlparse.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.Derive(v)
	if err != nil {
		t.Fatal(err)
	}
	e := mustEngine(t, p)
	if err := e.Init(func(tb string) *ra.Relation {
		return ra.FromTable(f.db.Table(tb), tb)
	}); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestDeltaMemoSharesAcrossReplicas: engines with equal plan fingerprints
// staging one delta through one memo must produce exactly the state a
// memo-less serial apply produces, while actually sharing work (hits > 0).
func TestDeltaMemoSharesAcrossReplicas(t *testing.T) {
	const sql = `SELECT store.city, COUNT(DISTINCT brand) AS brands, SUM(price) AS total
		FROM sale, product, store
		WHERE sale.productid = product.id AND sale.storeid = store.id
		GROUP BY store.city`
	f := newFixture(t, retailDDL, sql, true)
	f.seedRetail()

	engines := make([]*Engine, 4)
	for i := range engines {
		engines[i] = deriveEngine(t, f, sql)
	}
	shadow := deriveEngine(t, f, sql) // never sees the memo

	deltas := []Delta{
		{Table: "sale", Inserts: []tuple.Tuple{
			{types.Int(2001), types.Int(2), types.Int(100), types.Int(8), types.Float(21)},
		}},
		{Table: "sale", Updates: []Update{{
			Old: tuple.Tuple{types.Int(3), types.Int(1), types.Int(101), types.Int(7), types.Float(5)},
			New: tuple.Tuple{types.Int(3), types.Int(1), types.Int(101), types.Int(7), types.Float(50)},
		}}},
		{Table: "product", Updates: []Update{{
			Old: tuple.Tuple{types.Int(101), types.Str("bolt"), types.Str("tools")},
			New: tuple.Tuple{types.Int(101), types.Str("zeta"), types.Str("tools")},
		}}},
		{Table: "sale", Deletes: []tuple.Tuple{
			{types.Int(5), types.Int(3), types.Int(102), types.Int(8), types.Float(12)},
		}},
	}
	var totalHits int64
	for di, d := range deltas {
		memo := NewDeltaMemo()
		for _, e := range engines {
			if err := e.StageWithMemo(d, memo); err != nil {
				t.Fatalf("delta %d: %v", di, err)
			}
		}
		for _, e := range engines {
			e.Commit()
		}
		if err := shadow.Apply(d); err != nil {
			t.Fatalf("delta %d shadow: %v", di, err)
		}
		hits, misses, _ := memo.Stats()
		if misses == 0 {
			t.Fatalf("delta %d: memo recorded no computations", di)
		}
		totalHits += hits
		for ei, e := range engines {
			requireIdenticalState(t, e, shadow, f.view.Tables,
				fmt.Sprintf("delta %d, engine %d", di, ei))
		}
	}
	if totalHits == 0 {
		t.Fatal("replica engines never shared memoized work")
	}
}

// TestDeltaMemoDistinguishesPlans: engines with DIFFERENT definitions must
// not consume each other's results even through a shared memo — every
// engine's state must match its own memo-less shadow byte for byte.
func TestDeltaMemoDistinguishesPlans(t *testing.T) {
	sqls := []string{
		`SELECT product.id, SUM(price) AS total FROM sale, product
		 WHERE sale.productid = product.id GROUP BY product.id`,
		`SELECT product.id, SUM(price) AS total FROM sale, product
		 WHERE sale.productid = product.id AND price > 6 GROUP BY product.id`,
		`SELECT sale.storeid, MAX(price) AS hi, COUNT(*) AS cnt
		 FROM sale GROUP BY sale.storeid`,
		`SELECT product.id, SUM(price) AS total FROM sale, product
		 WHERE sale.productid = product.id GROUP BY product.id`, // replica of [0]
	}
	f := newFixture(t, retailDDL, sqls[0], true)
	f.seedRetail()

	engines := make([]*Engine, len(sqls))
	shadows := make([]*Engine, len(sqls))
	for i, sql := range sqls {
		engines[i] = deriveEngine(t, f, sql)
		shadows[i] = deriveEngine(t, f, sql)
	}

	rng := rand.New(rand.NewSource(7))
	id := int64(3000)
	for step := 0; step < 25; step++ {
		id++
		var d Delta
		switch step % 3 {
		case 0, 1:
			d = Delta{Table: "sale", Inserts: []tuple.Tuple{
				{types.Int(id), types.Int(int64(rng.Intn(4) + 1)), types.Int(int64(rng.Intn(3) + 100)),
					types.Int(int64(rng.Intn(2) + 7)), types.Float(float64(rng.Intn(20)))},
			}}
		default:
			old := tuple.Tuple{types.Int(1), types.Int(1), types.Int(100), types.Int(7), types.Float(10)}
			d = Delta{Table: "sale", Updates: []Update{{
				Old: old,
				New: tuple.Tuple{types.Int(1), types.Int(1), types.Int(100), types.Int(7), types.Float(float64(rng.Intn(30)) + 1)},
			}}}
			// Keep the update idempotent for the next iteration by applying
			// inserts only afterwards; simplest is to skip chaining: apply
			// the reverse immediately below.
		}
		memo := NewDeltaMemo()
		for i, e := range engines {
			if err := e.StageWithMemo(d, memo); err != nil {
				t.Fatalf("step %d engine %d: %v", step, i, err)
			}
		}
		for _, e := range engines {
			e.Commit()
		}
		for i, sh := range shadows {
			if err := sh.Apply(d); err != nil {
				t.Fatalf("step %d shadow %d: %v", step, i, err)
			}
			requireIdenticalState(t, engines[i], sh, shadows[i].plan.View.Tables,
				fmt.Sprintf("step %d, view %d", step, i))
		}
		if step%3 == 2 {
			// Undo the update so Old stays accurate next time.
			u := d.Updates[0]
			rev := Delta{Table: "sale", Updates: []Update{{Old: u.New, New: u.Old}}}
			memo := NewDeltaMemo()
			for i, e := range engines {
				if err := e.StageWithMemo(rev, memo); err != nil {
					t.Fatalf("step %d reverse engine %d: %v", step, i, err)
				}
			}
			for _, e := range engines {
				e.Commit()
			}
			for i, sh := range shadows {
				if err := sh.Apply(rev); err != nil {
					t.Fatalf("step %d reverse shadow %d: %v", step, i, err)
				}
			}
		}
	}
	// Replicas [0] and [3] shared at least the detail join.
	if engines[0].plan.Fingerprint() != engines[3].plan.Fingerprint() {
		t.Fatal("replica plans have different fingerprints")
	}
}

// TestSharedEnginesParallelMatchesSerial: a shared class staging in
// parallel with the memo must end byte-identical to a serial, memo-less
// class driven by the same stream.
func TestSharedEnginesParallelMatchesSerial(t *testing.T) {
	sqls := []string{
		`SELECT time.month, SUM(price) AS total, COUNT(*) AS cnt
		 FROM sale, time WHERE time.year = 1997 AND sale.timeid = time.id
		 GROUP BY time.month`,
		`SELECT sale.storeid, MAX(price) AS hi, COUNT(*) AS cnt
		 FROM sale GROUP BY sale.storeid`,
		`SELECT store.city, COUNT(DISTINCT brand) AS brands, SUM(price) AS total
		 FROM sale, product, store
		 WHERE sale.productid = product.id AND sale.storeid = store.id
		 GROUP BY store.city`,
	}
	par := newSharedFixture(t, sqls...)
	ser := newSharedFixture(t, sqls...)
	par.se.Workers = 4
	ser.se.Workers = 1
	ser.se.DisableMemo = true
	par.seedRetail()
	ser.seedRetail()
	par.init()
	ser.init()

	rng := rand.New(rand.NewSource(23))
	live := []int64{1, 2, 3, 4, 5, 6}
	for step := 0; step < 50; step++ {
		var d Delta
		switch rng.Intn(4) {
		case 0, 1:
			par.saleID++
			row := tuple.Tuple{types.Int(par.saleID), types.Int(int64(rng.Intn(6) + 1)),
				types.Int(int64(rng.Intn(3) + 100)), types.Int(int64(rng.Intn(2) + 7)),
				types.Float(float64(rng.Intn(60)) + 0.5)}
			if err := par.db.Insert("sale", row); err != nil {
				t.Fatal(err)
			}
			live = append(live, par.saleID)
			d = Delta{Table: "sale", Inserts: []tuple.Tuple{row}}
		case 2:
			if len(live) == 0 {
				continue
			}
			i := rng.Intn(len(live))
			row, err := par.db.Delete("sale", types.Int(live[i]))
			if err != nil {
				t.Fatal(err)
			}
			live = append(live[:i], live[i+1:]...)
			d = Delta{Table: "sale", Deletes: []tuple.Tuple{row}}
		default:
			if len(live) == 0 {
				continue
			}
			i := rng.Intn(len(live))
			old, upd, err := par.db.Update("sale", types.Int(live[i]),
				map[string]types.Value{"price": types.Float(float64(rng.Intn(80)) + 0.25)})
			if err != nil {
				t.Fatal(err)
			}
			d = Delta{Table: "sale", Updates: []Update{{Old: old, New: upd}}}
		}
		par.apply(d)
		if err := ser.se.Apply(d); err != nil {
			t.Fatalf("serial step %d: %v", step, err)
		}
		for i := range sqls {
			requireIdenticalState(t, par.se.Engine(i), ser.se.Engine(i),
				par.views[i].Tables, fmt.Sprintf("step %d, view %d", step, i))
		}
	}
}

// TestStatsConcurrentWithApply reads and resets the engine's work counters
// while deltas are being applied — meaningful under -race (the repository's
// race target runs this package).
func TestStatsConcurrentWithApply(t *testing.T) {
	f := newFixture(t, retailDDL, productSalesSQL, true)
	f.seedRetail()
	f.initEngine()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := f.engine.Stats()
			if s.DeltasApplied < 0 || s.AuxLookups < 0 {
				t.Error("negative counter")
				return
			}
			f.engine.ResetStats()
		}
	}()
	for i := 0; i < 200; i++ {
		f.insertSale(int64(i%4+1), int64(i%3+100), int64(i%2+7), float64(i%37))
	}
	close(stop)
	wg.Wait()
	f.check("after concurrent stats reads")
}
