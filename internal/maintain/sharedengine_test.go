package maintain

import (
	"fmt"
	"math/rand"
	"testing"

	"mindetail/internal/core"
	"mindetail/internal/gpsj"
	"mindetail/internal/ra"
	"mindetail/internal/sqlparse"
	"mindetail/internal/storage"
	"mindetail/internal/tuple"
	"mindetail/internal/types"
)

// sharedFixture couples a SharedEngines coordinator with an oracle DB.
type sharedFixture struct {
	t      *testing.T
	db     *storage.DB
	views  []*gpsj.View
	se     *SharedEngines
	saleID int64
}

func newSharedFixture(t *testing.T, viewSQLs ...string) *sharedFixture {
	t.Helper()
	cat := catalogFromDDL(t, retailDDL)
	var views []*gpsj.View
	for i, sql := range viewSQLs {
		s, err := sqlparse.Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		v, err := gpsj.FromSelect(cat, fmt.Sprintf("v%d", i), s.(*sqlparse.SelectStmt))
		if err != nil {
			t.Fatal(err)
		}
		views = append(views, v)
	}
	sp, err := core.DeriveShared(views)
	if err != nil {
		t.Fatal(err)
	}
	return &sharedFixture{
		t:      t,
		db:     storage.NewDB(cat),
		views:  views,
		se:     mustShared(t, sp),
		saleID: 1000,
	}
}

func (f *sharedFixture) seedRetail() {
	f.t.Helper()
	ff := &fixture{t: f.t, db: f.db}
	ff.seedRetail()
}

func (f *sharedFixture) init() {
	f.t.Helper()
	if err := f.se.Init(func(tb string) *ra.Relation {
		return ra.FromTable(f.db.Table(tb), tb)
	}); err != nil {
		f.t.Fatal(err)
	}
	f.check("init")
}

func (f *sharedFixture) apply(d Delta) {
	f.t.Helper()
	if err := f.se.Apply(d); err != nil {
		f.t.Fatalf("Apply(%s): %v", d.Table, err)
	}
	f.check(fmt.Sprintf("after delta on %s", d.Table))
}

func (f *sharedFixture) check(when string) {
	f.t.Helper()
	for i, v := range f.views {
		want, err := v.Evaluate(f.db)
		if err != nil {
			f.t.Fatal(err)
		}
		got, err := f.se.Snapshot(i)
		if err != nil {
			f.t.Fatal(err)
		}
		if !ra.EqualBag(got, want) {
			f.t.Fatalf("%s: view %d (%s) diverged\nmaintained:\n%s\nrecomputed:\n%s",
				when, i, v.SQL(), got.Format(), want.Format())
		}
	}
}

// TestSharedEnginesResidualConditions: two views with conflicting year
// conditions maintained over one shared auxiliary set, with residual
// filters doing the per-view selection.
func TestSharedEnginesResidualConditions(t *testing.T) {
	f := newSharedFixture(t,
		`SELECT time.month, SUM(price) AS total, COUNT(*) AS cnt
		 FROM sale, time WHERE time.year = 1997 AND sale.timeid = time.id
		 GROUP BY time.month`,
		`SELECT time.month, SUM(price) AS total, COUNT(*) AS cnt
		 FROM sale, time WHERE time.year = 1998 AND sale.timeid = time.id
		 GROUP BY time.month`,
	)
	f.seedRetail()
	f.init()

	ins := func(tid, pid, sid int64, price float64) {
		f.t.Helper()
		f.saleID++
		row := tuple.Tuple{types.Int(f.saleID), types.Int(tid), types.Int(pid), types.Int(sid), types.Float(price)}
		if err := f.db.Insert("sale", row); err != nil {
			f.t.Fatal(err)
		}
		f.apply(Delta{Table: "sale", Inserts: []tuple.Tuple{row}})
	}
	ins(1, 100, 7, 10) // 1997: only V1 moves
	ins(5, 101, 8, 20) // 1998: only V2 moves
	// Delete from each year.
	for _, id := range []int64{1, 6} {
		row, err := f.db.Delete("sale", types.Int(id))
		if err != nil {
			f.t.Fatal(err)
		}
		f.apply(Delta{Table: "sale", Deletes: []tuple.Tuple{row}})
	}
	// A price update.
	old, upd, err := f.db.Update("sale", types.Int(3), map[string]types.Value{"price": types.Float(99)})
	if err != nil {
		t.Fatal(err)
	}
	f.apply(Delta{Table: "sale", Updates: []Update{{Old: old, New: upd}}})
}

// TestSharedEnginesMixedClass: a CSMAS view, a MAX view, and a DISTINCT
// view over one shared set, driven by a random stream.
func TestSharedEnginesMixedClass(t *testing.T) {
	f := newSharedFixture(t,
		`SELECT time.month, SUM(price) AS total, COUNT(*) AS cnt
		 FROM sale, time WHERE time.year = 1997 AND sale.timeid = time.id
		 GROUP BY time.month`,
		`SELECT sale.storeid, MAX(price) AS hi, COUNT(*) AS cnt
		 FROM sale GROUP BY sale.storeid`,
		`SELECT store.city, COUNT(DISTINCT brand) AS brands, SUM(price) AS total
		 FROM sale, product, store
		 WHERE sale.productid = product.id AND sale.storeid = store.id
		 GROUP BY store.city`,
	)
	f.seedRetail()
	f.init()

	rng := rand.New(rand.NewSource(11))
	live := []int64{1, 2, 3, 4, 5, 6}
	for step := 0; step < 40; step++ {
		switch rng.Intn(4) {
		case 0, 1:
			f.saleID++
			row := tuple.Tuple{types.Int(f.saleID), types.Int(int64(rng.Intn(6) + 1)),
				types.Int(int64(rng.Intn(3) + 100)), types.Int(int64(rng.Intn(2) + 7)),
				types.Float(float64(rng.Intn(60)) + 0.5)}
			if err := f.db.Insert("sale", row); err != nil {
				t.Fatal(err)
			}
			live = append(live, f.saleID)
			f.apply(Delta{Table: "sale", Inserts: []tuple.Tuple{row}})
		case 2:
			if len(live) == 0 {
				continue
			}
			i := rng.Intn(len(live))
			row, err := f.db.Delete("sale", types.Int(live[i]))
			if err != nil {
				t.Fatal(err)
			}
			live = append(live[:i], live[i+1:]...)
			f.apply(Delta{Table: "sale", Deletes: []tuple.Tuple{row}})
		case 3:
			pid := int64(rng.Intn(3) + 100)
			old, upd, err := f.db.Update("product", types.Int(pid),
				map[string]types.Value{"brand": types.Str(fmt.Sprintf("b%d", rng.Intn(3)))})
			if err != nil {
				t.Fatal(err)
			}
			f.apply(Delta{Table: "product", Updates: []Update{{Old: old, New: upd}}})
		}
	}
}

// TestSharedEnginesStorageCountedOnce: the shared tables are one copy
// regardless of how many views they serve.
func TestSharedEnginesStorageCountedOnce(t *testing.T) {
	f := newSharedFixture(t,
		`SELECT time.month, SUM(price) AS total, COUNT(*) AS cnt
		 FROM sale, time WHERE sale.timeid = time.id GROUP BY time.month`,
		`SELECT time.month, AVG(price) AS ap, COUNT(*) AS cnt
		 FROM sale, time WHERE sale.timeid = time.id GROUP BY time.month`,
	)
	f.seedRetail()
	f.init()
	if f.se.Views() != 2 {
		t.Fatalf("views = %d", f.se.Views())
	}
	shared := f.se.AuxBytes()
	// Identical views maintained separately would double the bytes.
	single := f.se.Engine(0).AuxBytes()
	if shared != single {
		t.Errorf("shared bytes %d != one engine's view %d (same tables)", shared, single)
	}
	// Both engines literally share the AuxTable instances.
	if f.se.Engine(0).Aux("sale") != f.se.Engine(1).Aux("sale") {
		t.Error("engines must share the same auxiliary table instance")
	}
}

// TestSharedEnginesWithHaving: the HAVING filter applies per view on top
// of the shared maintenance.
func TestSharedEnginesWithHaving(t *testing.T) {
	f := newSharedFixture(t,
		`SELECT time.month, COUNT(*) AS cnt
		 FROM sale, time WHERE sale.timeid = time.id GROUP BY time.month
		 HAVING cnt >= 3`,
		`SELECT time.month, SUM(price) AS total, COUNT(*) AS cnt
		 FROM sale, time WHERE sale.timeid = time.id GROUP BY time.month`,
	)
	f.seedRetail()
	f.init()
	f.saleID++
	row := tuple.Tuple{types.Int(f.saleID), types.Int(4), types.Int(100), types.Int(7), types.Float(2)}
	if err := f.db.Insert("sale", row); err != nil {
		t.Fatal(err)
	}
	f.apply(Delta{Table: "sale", Inserts: []tuple.Tuple{row}})
}
