package maintain

import (
	"strings"
	"testing"

	"mindetail/internal/tuple"
	"mindetail/internal/types"
)

// brandCondSQL filters on product.brand, which the schema declares MUTABLE:
// product has exposed updates, the sale → product dependency is cut
// (Section 2.2), and derivation must keep sale's auxiliary view so brand
// updates can move whole groups in and out of the view.
const brandCondSQL = `
	SELECT product.id, SUM(price) AS total, COUNT(*) AS cnt
	FROM sale, product
	WHERE sale.productid = product.id AND product.brand = 'acme'
	GROUP BY product.id`

// categoryCondSQL filters on product.category, which is NOT declared
// mutable: product has no exposed updates, sale transitively depends on
// product, and with product k-annotated the sale auxiliary view is
// omitted. An update that changes category anyway (schema mutability is a
// declaration about the sources, not a guarantee about externally supplied
// change-logs) is then unmaintainable.
const categoryCondSQL = `
	SELECT product.id, SUM(price) AS total, COUNT(*) AS cnt
	FROM sale, product
	WHERE sale.productid = product.id AND product.category = 'tools'
	GROUP BY product.id`

// TestMaintainDimensionUpdateAcrossLocalCondition: brand updates move
// groups across the view's local condition in both directions and must
// maintain exactly, which requires the retained sale detail.
func TestMaintainDimensionUpdateAcrossLocalCondition(t *testing.T) {
	f := newFixture(t, retailDDL, brandCondSQL, true)
	if f.engine.Aux("sale") == nil {
		t.Fatal("sale auxiliary view must NOT be omitted: product.brand is mutable and filtered on")
	}
	f.seedRetail()
	f.initEngine()

	// Product 100 ('acme') has sales 1, 2, 6: renaming it moves its group
	// OUT of the view.
	f.updateRow("product", 100, map[string]types.Value{"brand": types.Str("junk")})
	// Product 101 ('bolt') has sales 3, 4: renaming it to 'acme' moves its
	// group INTO the view — impossible to synthesize without detail data.
	f.updateRow("product", 101, map[string]types.Value{"brand": types.Str("acme")})
	// And back again.
	f.updateRow("product", 100, map[string]types.Value{"brand": types.Str("acme")})
	f.updateRow("product", 101, map[string]types.Value{"brand": types.Str("bolt")})
	// Fact changes keep working against the retained auxiliary view.
	f.insertSale(1, 100, 7, 8)
	f.deleteRow("sale", 1)
}

// TestRekeyRejectsCrossConditionUpdateWithOmittedRoot is the regression
// test for the silent rekey divergence: with the root auxiliary view
// omitted, Engine.rekey used to silently skip a dimension update whose new
// image failed the view's local conditions while the old image passed,
// leaving dead groups in the materialized view forever. The engine must
// instead reject the update as unmaintainable, with zero state change.
// (Before the fix this test failed: Apply succeeded and the view silently
// diverged from recomputation.)
func TestRekeyRejectsCrossConditionUpdateWithOmittedRoot(t *testing.T) {
	f := newFixture(t, retailDDL, categoryCondSQL, true)
	if f.engine.Aux("sale") != nil {
		t.Fatal("sale auxiliary view should be omitted (product is k-annotated, category immutable)")
	}
	f.seedRetail()
	f.initEngine()

	// An externally produced change-log entry moves product 100 out of the
	// 'tools' category. The engine has no detail to subtract sales 1, 2, 6
	// from the view, so it must refuse rather than silently keep the group.
	old := tuple.Tuple{types.Int(100), types.Str("acme"), types.Str("tools")}
	upd := tuple.Tuple{types.Int(100), types.Str("acme"), types.Str("misc")}
	before := captureEngine(f.engine, f.view.Tables)
	err := f.engine.Apply(Delta{Table: "product", Updates: []Update{{Old: old, New: upd}}})
	if err == nil {
		t.Fatal("cross-condition update with omitted root must be rejected, not silently skipped")
	}
	if !strings.Contains(err.Error(), "cannot maintain") {
		t.Fatalf("err = %v", err)
	}
	before.requireUnchanged(t, f.engine, f.view.Tables, "rejected cross-condition update")
	// The untouched engine still matches recomputation from the sources.
	f.check("after rejected update")

	// The inbound direction (old image outside the view, new inside) is
	// just as unmaintainable: the view cannot conjure the missed detail.
	old = tuple.Tuple{types.Int(102), types.Str("cask"), types.Str("food")}
	upd = tuple.Tuple{types.Int(102), types.Str("cask"), types.Str("tools")}
	before = captureEngine(f.engine, f.view.Tables)
	err = f.engine.Apply(Delta{Table: "product", Updates: []Update{{Old: old, New: upd}}})
	if err == nil {
		t.Fatal("inbound cross-condition update must be rejected")
	}
	before.requireUnchanged(t, f.engine, f.view.Tables, "rejected inbound update")

	// Updates that do not cross the condition remain fine: a rename within
	// the same category rekeys nothing (id is the group key) and both
	// images fail or pass together.
	old = tuple.Tuple{types.Int(102), types.Str("cask"), types.Str("food")}
	upd = tuple.Tuple{types.Int(102), types.Str("keg"), types.Str("food")}
	if err := f.engine.Apply(Delta{Table: "product", Updates: []Update{{Old: old, New: upd}}}); err != nil {
		t.Fatalf("in-place update outside the view rejected: %v", err)
	}
	f.check("after harmless update")
}

// TestRekeyGroupByStillWorksWithOmittedRoot: pure group-by rekeys (no
// local condition involved) remain supported with an omitted root — the
// legality guard must not over-reject.
func TestRekeyGroupByStillWorksWithOmittedRoot(t *testing.T) {
	f := newFixture(t, retailDDL, `
		SELECT product.id, product.brand, SUM(price) AS total, COUNT(*) AS cnt
		FROM sale, product WHERE sale.productid = product.id
		GROUP BY product.id, product.brand`, true)
	if f.engine.Aux("sale") != nil {
		t.Fatal("sale aux should be omitted (product is k-annotated)")
	}
	f.seedRetail()
	f.initEngine()
	f.updateRow("product", 100, map[string]types.Value{"brand": types.Str("renamed")})
	f.updateRow("product", 100, map[string]types.Value{"brand": types.Str("acme")})
}
