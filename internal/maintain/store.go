package maintain

import "mindetail/internal/tuple"

// AuxStore is the row-storage layer behind an AuxTable: a mutable mapping
// from encoded group keys to group images. Extracting it from the table
// makes the backend swappable per view — the default memStore keeps rows in
// a Go map exactly as before, while internal/pager provides a paged,
// out-of-core backend with a fixed-budget buffer pool (the Section 1.1
// sizing argument made operational: minimized auxiliary data still exceeds
// RAM at warehouse scale).
//
// Contract:
//   - Get/GetString return the stored image. An InPlace store returns the
//     live row (callers may mutate it in place and must Clone before
//     retaining); a paged store returns a private decoded copy.
//   - Put/PutString replace the image under the key. The store may retain
//     the tuple (memStore does); callers hand over ownership.
//   - Byte-keyed variants exist so the hot path can probe with its scratch
//     key buffer: a map-backed store compiles s.rows[string(key)] without
//     allocating, and a paged store hashes the bytes directly.
//   - Scan visits every row; the callback must not call back into the
//     store (implementations may hold their lock across the scan).
//   - I/O errors are sticky: after any failed operation, Err returns the
//     first failure and every later operation fails fast. The engine
//     checks Err in its validate-first pass, so a wedged store rejects
//     deltas before the undo journal records anything.
type AuxStore interface {
	Get(key []byte) (tuple.Tuple, bool, error)
	GetString(key string) (tuple.Tuple, bool, error)
	Put(key []byte, row tuple.Tuple) error
	PutString(key string, row tuple.Tuple) error
	DeleteString(key string) error
	Len() int
	Bytes() int
	Scan(fn func(key string, row tuple.Tuple) error) error
	Clear(sizeHint int) error
	InPlace() bool
	Err() error
	Close() error
}

// memStore is the in-memory AuxStore: a Go map, the engine's historical
// row storage. Get returns live rows (InPlace), operations never fail.
type memStore struct {
	rows map[string]tuple.Tuple
}

func newMemStore() *memStore {
	return &memStore{rows: make(map[string]tuple.Tuple)}
}

func (s *memStore) Get(key []byte) (tuple.Tuple, bool, error) {
	r, ok := s.rows[string(key)]
	return r, ok, nil
}

func (s *memStore) GetString(key string) (tuple.Tuple, bool, error) {
	r, ok := s.rows[key]
	return r, ok, nil
}

func (s *memStore) Put(key []byte, row tuple.Tuple) error {
	s.rows[string(key)] = row
	return nil
}

func (s *memStore) PutString(key string, row tuple.Tuple) error {
	s.rows[key] = row
	return nil
}

func (s *memStore) DeleteString(key string) error {
	delete(s.rows, key)
	return nil
}

func (s *memStore) Len() int { return len(s.rows) }

func (s *memStore) Bytes() int {
	n := 0
	for _, r := range s.rows {
		n += r.EncodedSize()
	}
	return n
}

func (s *memStore) Scan(fn func(key string, row tuple.Tuple) error) error {
	for k, r := range s.rows {
		if err := fn(k, r); err != nil {
			return err
		}
	}
	return nil
}

func (s *memStore) Clear(sizeHint int) error {
	s.rows = make(map[string]tuple.Tuple, sizeHint)
	return nil
}

func (s *memStore) InPlace() bool { return true }
func (s *memStore) Err() error    { return nil }
func (s *memStore) Close() error  { return nil }
