package maintain

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"mindetail/internal/faultinject"
	"mindetail/internal/ra"
	"mindetail/internal/tuple"
	"mindetail/internal/types"
)

// Sharded apply pipeline.
//
// With Engine.Shards > 1, a large delta's per-group work is hash-
// partitioned by group key across shard workers. The row maps and hash
// indexes stay unsharded and single-owner; parallelism comes from an
// overlay protocol with three properties that together make a sharded
// apply equivalent to the serial one:
//
//  1. Compute phase (parallel): every worker reads the shared table state
//     (the tables are quiescent during the phase, so concurrent reads are
//     safe) and accumulates its partition's group adjustments on private
//     cloned row images in a per-worker overlay. Partitioning by group key
//     means each group's contributions are applied by exactly one worker,
//     in the delta's original row order — so per-group arithmetic
//     (including float accumulation order) is bit-identical to the serial
//     path.
//  2. Deterministic merge: after a barrier, the overlays are merged and
//     sorted by each group's first-touch row ordinal — the order in which
//     the serial path would have first touched the group.
//  3. Serial install: the coordinator alone journals the prior images and
//     writes the final images back (map writes, index edits), in merge
//     order. A compute-phase error discards the overlays with nothing
//     mutated; an install-phase fault rolls back through the normal undo
//     journal. Atomicity and the replica invariant are untouched because
//     every mutation still happens on the coordinator, between the same
//     journal begin/commit brackets as a serial apply.
//
// The one observable difference from the serial path: a group that dies
// and is re-created (or is created and dies) within a single apply nets
// out in the overlay, so index bucket *order* can differ from the serial
// path's remove-then-append churn. Canonical (sorted) snapshots are
// byte-identical either way; only map/bucket iteration order — never
// content — can diverge.

// defaultShardMinRows is the row count below which a sharded engine stays
// serial. Partitioning pays one key encode per row per worker plus
// goroutine startup; below a few hundred rows the serial loop wins.
const defaultShardMinRows = 256

// maxShards caps the shard fan-out (mirrors the recompute pool cap).
const maxShards = 16

// shardable reports whether a stage over n rows should take the sharded
// path. A per-apply strategy overrides the static ShardMinRows threshold:
// StrategySharded engages the pipeline for any delta with enough rows to
// partition, and an explicit serial strategy (scoped/full) pins the stage
// serial even on a sharded engine — that is how a cost model decides shard
// engagement per delta instead of per configuration. The decision affects
// only scheduling, never results: the overlay protocol installs
// bit-identical state at any fan-out.
func (e *Engine) shardable(n int) bool {
	switch e.strategy {
	case StrategySharded:
		return n >= 2
	case StrategyScoped, StrategyFull:
		return false
	}
	if e.Shards <= 1 {
		return false
	}
	min := e.ShardMinRows
	if min <= 0 {
		min = defaultShardMinRows
	}
	return n >= min
}

// shardCount resolves the worker fan-out for a sharded stage. Engines not
// configured with an explicit fan-out (reachable only under
// StrategySharded) default to the machine's parallelism.
func (e *Engine) shardCount() int {
	s := e.Shards
	if s <= 1 {
		s = runtime.GOMAXPROCS(0)
	}
	if s > maxShards {
		return maxShards
	}
	if s < 1 {
		return 1
	}
	return s
}

// shardPending is one group's overlay entry: the working row image (nil =
// absent), whether the group existed before the apply, and the ordinal of
// the first delta row that touched it (the deterministic install order).
type shardPending struct {
	key      string
	row      tuple.Tuple
	existed  bool
	firstOrd int
}

// shardOverlay is one worker's private result: touched groups in
// first-touch order, with a map for repeat-touch lookup.
type shardOverlay struct {
	order []*shardPending
	ents  map[string]*shardPending
	err   error
}

// touch returns the overlay entry for the encoded key, creating it on
// first touch from the (quiescent, shared) base state. get must return a
// mutation-safe private image of the current group (callers wrap the base
// map or AuxStore accordingly); concurrent get calls against quiescent
// state must be safe, which both the map read and the mutex-guarded paged
// store provide.
func (ov *shardOverlay) touch(keyBuf []byte, get func([]byte) (tuple.Tuple, bool, error), ord int) (*shardPending, error) {
	p, ok := ov.ents[string(keyBuf)]
	if !ok {
		key := string(keyBuf)
		img, exists, err := get(keyBuf)
		if err != nil {
			return nil, err
		}
		p = &shardPending{key: key, row: img, existed: exists, firstOrd: ord}
		ov.ents[key] = p
		ov.order = append(ov.order, p)
	}
	return p, nil
}

// mergeOverlays flattens per-worker overlays into one install list sorted
// by first-touch ordinal. The first error (by shard index) aborts the
// merge.
func mergeOverlays(ovs []shardOverlay) ([]*shardPending, error) {
	n := 0
	for s := range ovs {
		if ovs[s].err != nil {
			return nil, ovs[s].err
		}
		n += len(ovs[s].order)
	}
	merged := make([]*shardPending, 0, n)
	for s := range ovs {
		merged = append(merged, ovs[s].order...)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].firstOrd < merged[j].firstOrd })
	return merged, nil
}

// auxApplySharded is auxApply with the per-group work fanned across shard
// workers (see the package comment above for the protocol).
func (e *Engine) auxApplySharded(at *AuxTable, rows []signedRow) error {
	plan := e.auxPlanFor(at) // warm the cache before workers share it
	shards := e.shardCount()
	e.observeShard(len(rows), shards)
	// getBase yields a mutation-safe image of the current group: the store
	// is quiescent during the compute phase, an in-place store's live rows
	// are cloned, and a paged store's decoded copies are already private.
	getBase := func(key []byte) (tuple.Tuple, bool, error) {
		row, ok, err := at.store.Get(key)
		if err != nil || !ok {
			return nil, ok, err
		}
		if at.store.InPlace() {
			row = row.Clone()
		}
		return row, true, nil
	}
	ovs := make([]shardOverlay, shards)
	var lookups int64
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			ov := &ovs[s]
			ov.ents = make(map[string]*shardPending)
			plainVals := make(tuple.Tuple, len(plan.plainPos))
			sumDeltas := make(map[string]types.Value, len(plan.sumPos))
			var extremaM map[string]types.Value
			if len(plan.minPos) > 0 || len(plan.maxPos) > 0 {
				extremaM = make(map[string]types.Value)
			}
			var keyBuf, lkKey []byte
			var probes int64
			defer func() { atomic.AddInt64(&lookups, probes) }()
			for ord, sr := range rows {
				for i, p := range plan.plainPos {
					plainVals[i] = sr.row[p]
				}
				keyBuf = plainVals.AppendKey(keyBuf[:0])
				if int(fnv32(keyBuf))%shards != s {
					continue
				}
				pass := true
				for i, sj := range at.def.SemiJoins {
					child := e.aux[sj.Right]
					probes++
					var ok bool
					ok, lkKey = child.containsWith(sj.RightAttr, sr.row[plan.sjPos[i]], lkKey[:0])
					if !ok {
						pass = false
						break
					}
				}
				if !pass {
					continue
				}
				if err := at.fi.Fire(faultinject.AuxAdjustStart); err != nil {
					ov.err = err
					return
				}
				clear(sumDeltas)
				for i, a := range at.def.SumAttrs {
					d, err := types.Mul(types.Int(sr.s), sr.row[plan.sumPos[i]])
					if err != nil {
						ov.err = err
						return
					}
					sumDeltas[a] = d
				}
				var extrema map[string]types.Value
				if extremaM != nil {
					clear(extremaM)
					extrema = extremaM
					for i, a := range at.def.MinAttrs {
						extrema[a] = sr.row[plan.minPos[i]]
					}
					for i, a := range at.def.MaxAttrs {
						extrema[a] = sr.row[plan.maxPos[i]]
					}
				}
				p, err := ov.touch(keyBuf, getBase, ord)
				if err != nil {
					ov.err = err
					return
				}
				out, err := at.adjustCore(p.row, plainVals, sumDeltas, extrema, sr.s)
				if err != nil {
					ov.err = err
					return
				}
				p.row = out
			}
		}(s)
	}
	wg.Wait()
	e.stats.auxLookups.Add(lookups)
	installs, err := mergeOverlays(ovs)
	if err != nil {
		return err
	}
	if err := e.fi.Fire(faultinject.ShardAuxInstall); err != nil {
		return err
	}
	for _, p := range installs {
		if !p.existed && p.row == nil {
			continue // created and died within the apply: no net change
		}
		if err := at.jnl.noteAuxKey(at, p.key); err != nil {
			return err
		}
		switch {
		case p.existed && p.row == nil:
			cur, ok, err := at.store.GetString(p.key)
			if err != nil {
				return err
			}
			if ok {
				at.indexRemove(cur, p.key)
			}
			if err := at.store.DeleteString(p.key); err != nil {
				return err
			}
		case !p.existed:
			if err := at.store.PutString(p.key, p.row); err != nil {
				return err
			}
			at.indexAdd(p.row, p.key)
		default:
			// Replacing the tuple object needs no index maintenance: the
			// indexes bucket row keys by plain attributes, which two images
			// of one group agree on by construction.
			if err := at.store.PutString(p.key, p.row); err != nil {
				return err
			}
		}
	}
	return nil
}

// adjustFromDetailSharded is adjustFromDetail with the per-group work
// fanned across shard workers. The group-by closures are stateless and the
// detail rows are read-only, so workers share the coordinator's bindings.
func (e *Engine) adjustFromDetailSharded(ctx detailCtx, weights []int64, raise bool) error {
	fns, err := e.gbFns(ctx.rel.Cols)
	if err != nil {
		return err
	}
	sums, err := e.bindSumArgs(ctx)
	if err != nil {
		return err
	}
	type storedBind struct {
		comp int
		pos  int
	}
	var stored []storedBind
	if raise {
		for ci, c := range e.mv.comps {
			if c.kind != compStored {
				continue
			}
			p, err := storedArgPos(ctx, c)
			if err != nil {
				return err
			}
			stored = append(stored, storedBind{comp: ci, pos: p})
		}
	}
	rows := ctx.rel.Rows
	shards := e.shardCount()
	e.observeShard(len(rows), shards)
	// The materialized view stays map-backed; its getter clones live rows.
	getMV := func(key []byte) (tuple.Tuple, bool, error) {
		row, ok := e.mv.rows[string(key)]
		if !ok {
			return nil, false, nil
		}
		return row.Clone(), true, nil
	}
	ovs := make([]shardOverlay, shards)
	var adjusts int64
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			ov := &ovs[s]
			ov.ents = make(map[string]*shardPending)
			gbVals := make([]types.Value, len(fns))
			sumDeltas := make(map[int]types.Value, len(sums))
			var buf []byte
			var mine int64
			defer func() { atomic.AddInt64(&adjusts, mine) }()
			for ord, row := range rows {
				buf = buf[:0]
				for gi, f := range fns {
					v, err := f(row)
					if err != nil {
						ov.err = err
						return
					}
					gbVals[gi] = v
					buf = types.Encode(buf, v)
				}
				if int(fnv32(buf))%shards != s {
					continue
				}
				w := weights[ord]
				clear(sumDeltas)
				for ci, sa := range sums {
					var d types.Value
					var err error
					if sa.compressed {
						sign := int64(1)
						if w < 0 {
							sign = -1
						}
						d, err = types.Mul(types.Int(sign), row[sa.pos])
					} else {
						d, err = types.Mul(types.Int(w), row[sa.pos])
					}
					if err != nil {
						ov.err = err
						return
					}
					sumDeltas[ci] = d
				}
				if err := e.fi.Fire(faultinject.MVAdjustRow); err != nil {
					ov.err = err
					return
				}
				p, err := ov.touch(buf, getMV, ord)
				if err != nil {
					ov.err = err
					return
				}
				out, err := e.mv.adjustRowCore(p.row, gbVals, w, sumDeltas)
				if err != nil {
					ov.err = err
					return
				}
				p.row = out
				mine++
				if p.row != nil {
					for _, sb := range stored {
						e.mv.raiseRow(p.row, sb.comp, row[sb.pos])
					}
				}
			}
		}(s)
	}
	wg.Wait()
	e.stats.groupAdjusts.Add(adjusts)
	installs, err := mergeOverlays(ovs)
	if err != nil {
		return err
	}
	if err := e.fi.Fire(faultinject.ShardMVInstall); err != nil {
		return err
	}
	for _, p := range installs {
		if !p.existed && p.row == nil {
			continue
		}
		e.jnl.noteMVKey(e.mv, p.key)
		if p.existed && p.row == nil {
			delete(e.mv.rows, p.key)
		} else {
			e.mv.rows[p.key] = p.row
		}
	}
	return nil
}

// deltaDetailChunked is deltaDetail with the outward join fanned across
// chunk workers: the signed rows split into contiguous chunks, each worker
// joins its chunk with private probe scratch (the auxiliary tables are
// quiescent and read-only during the phase), and the results concatenate
// in chunk order. Because joinOutward folds edges in sorted order and
// preserves row order within a chunk, the concatenation is identical —
// rows, weights, order, and column layout — to the serial join.
func (e *Engine) deltaDetailChunked(t string, signed []signedRow) (detailCtx, []int64, error) {
	cols := e.baseCols(t) // warm the per-table caches before workers share them
	needed := e.tablesFor(t)
	shards := e.shardCount()
	if shards > len(signed) {
		shards = len(signed)
	}
	chunk := (len(signed) + shards - 1) / shards
	var sts []*joinState
	for lo := 0; lo < len(signed); lo += chunk {
		hi := lo + chunk
		if hi > len(signed) {
			hi = len(signed)
		}
		st := &joinState{
			cols:     cols,
			rows:     make([]tuple.Tuple, hi-lo),
			weights:  make([]int64, hi-lo),
			included: map[string]bool{t: true},
			ctx:      newDetailCtx(),
			lk:       &probeScratch{},
		}
		for i, sr := range signed[lo:hi] {
			st.rows[i] = sr.row
			st.weights[i] = sr.s
		}
		sts = append(sts, st)
	}
	errs := make([]error, len(sts))
	var wg sync.WaitGroup
	for i, st := range sts {
		wg.Add(1)
		go func(i int, st *joinState) {
			defer wg.Done()
			errs[i] = e.joinOutward(st, needed)
		}(i, st)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return sts[0].ctx, nil, fmt.Errorf("maintain: delta on %s: %w", t, err)
		}
	}
	out := sts[0]
	for _, st := range sts[1:] {
		out.rows = append(out.rows, st.rows...)
		out.weights = append(out.weights, st.weights...)
	}
	out.ctx.rel = &ra.Relation{Cols: out.ctx.rel.Cols, Rows: out.rows}
	return out.ctx, out.weights, nil
}

// observeShard publishes the sharded-stage metrics (no-op without a sink).
func (e *Engine) observeShard(rows, workers int) {
	if e.met == nil {
		return
	}
	e.met.shardedStages.Inc()
	e.met.shardRows.Observe(int64(rows))
	e.met.shardWorkers.Set(int64(workers))
}
