package maintain

import (
	"fmt"
	"testing"

	"mindetail/internal/ra"
	"mindetail/internal/tuple"
	"mindetail/internal/types"
)

// Tests of the sharded apply pipeline (shard.go): equivalence with the
// serial path, fault-injection rollback, and overlay netting of group
// death/recreation within one delta. Prices are exact binary fractions
// (multiples of 0.25), so float accumulation admits no rounding slack and
// any ordering divergence from the serial path would surface as a bag
// mismatch.

const shardCSMASSQL = `
	SELECT time.month, store.city, SUM(price) AS total, AVG(price) AS avgp, COUNT(*) AS cnt
	FROM sale, time, store
	WHERE sale.timeid = time.id AND sale.storeid = store.id AND time.year = 1997
	GROUP BY time.month, store.city`

// bulkInsertSales inserts n fresh sale rows into the oracle database and
// returns them as one delta. The rows spread across times, products, and
// stores so several groups are touched, including 1998 rows the view
// filters out.
func bulkInsertSales(f *fixture, n int) Delta {
	f.t.Helper()
	ins := make([]tuple.Tuple, 0, n)
	for i := 0; i < n; i++ {
		f.saleID++
		tid := int64(i%5 + 1) // time 5 is 1998: filtered out of the view
		pid := int64(100 + i%3)
		sid := int64(7 + i%2)
		price := float64(i%16) * 0.25
		row := tuple.Tuple{types.Int(f.saleID), types.Int(tid), types.Int(pid), types.Int(sid), types.Float(price)}
		if err := f.db.Insert("sale", row); err != nil {
			f.t.Fatal(err)
		}
		ins = append(ins, row)
	}
	return Delta{Table: "sale", Inserts: ins}
}

// bulkDeleteSales deletes the sale rows with the given keys from the
// oracle and returns them as one delta.
func bulkDeleteSales(f *fixture, keys []int64) Delta {
	f.t.Helper()
	dels := make([]tuple.Tuple, 0, len(keys))
	for _, k := range keys {
		row, err := f.db.Delete("sale", types.Int(k))
		if err != nil {
			f.t.Fatal(err)
		}
		dels = append(dels, row)
	}
	return Delta{Table: "sale", Deletes: dels}
}

// bulkUpdateSales updates the price of the sale rows with the given keys
// and returns the update pairs as one delta (expanded by the engine into
// interleaved delete/insert rows — negative weights through the sharded
// path).
func bulkUpdateSales(f *fixture, keys []int64) Delta {
	f.t.Helper()
	ups := make([]Update, 0, len(keys))
	for i, k := range keys {
		old, upd, err := f.db.Update("sale", types.Int(k),
			map[string]types.Value{"price": types.Float(float64(i%8)*0.25 + 100)})
		if err != nil {
			f.t.Fatal(err)
		}
		ups = append(ups, Update{Old: old, New: upd})
	}
	return Delta{Table: "sale", Updates: ups}
}

// shardWorkload drives one fixture through bulk inserts, updates, deletes
// (emptying some groups), and a mixed delete+reinsert delta that nets
// group death and recreation inside a single apply. Every apply is checked
// against brute-force recomputation by fixture.check.
func shardWorkload(f *fixture) {
	f.t.Helper()
	firstID := f.saleID + 1
	f.apply(bulkInsertSales(f, 400))
	lastID := f.saleID

	// Update a slice of the rows: expanded to interleaved ±1 rows.
	var upd []int64
	for k := firstID; k <= firstID+120; k += 2 {
		upd = append(upd, k)
	}
	f.apply(bulkUpdateSales(f, upd))

	// Delete enough rows that some (month, city) groups die.
	var dels []int64
	for k := firstID; k <= lastID; k++ {
		if (k-firstID)%3 != 0 {
			dels = append(dels, k)
		}
	}
	f.apply(bulkDeleteSales(f, dels))

	// Death + recreation in one delta: delete the remaining bulk rows and
	// reinsert fresh ones touching the same groups.
	var rest []int64
	for k := firstID; k <= lastID; k++ {
		if (k-firstID)%3 == 0 {
			rest = append(rest, k)
		}
	}
	dd := bulkDeleteSales(f, rest)
	di := bulkInsertSales(f, 300)
	f.apply(Delta{Table: "sale", Deletes: dd.Deletes, Inserts: di.Inserts})
}

// TestShardedApplyMatchesSerial runs the same workload through a serial
// and a sharded engine and requires identical view and auxiliary contents.
// ShardMinRows is 1, so every delta of the workload takes the sharded path
// in the sharded engine.
func TestShardedApplyMatchesSerial(t *testing.T) {
	for _, tc := range []struct {
		name string
		sql  string
	}{
		{"csmas", shardCSMASSQL},
		{"distinct_recompute", productSalesSQL},
	} {
		t.Run(tc.name, func(t *testing.T) {
			serial := newFixture(t, retailDDL, tc.sql, true)
			serial.seedRetail()
			serial.initEngine()

			sharded := newFixture(t, retailDDL, tc.sql, true)
			sharded.engine.Shards = 8
			sharded.engine.ShardMinRows = 1
			sharded.seedRetail()
			sharded.initEngine()

			shardWorkload(serial)
			shardWorkload(sharded)

			if got, want := sharded.engine.Snapshot(), serial.engine.Snapshot(); !ra.EqualBag(got, want) {
				t.Fatalf("sharded view diverged from serial\nsharded:\n%s\nserial:\n%s",
					got.Format(), want.Format())
			}
			for _, tb := range serial.view.Tables {
				sat, aat := serial.engine.Aux(tb), sharded.engine.Aux(tb)
				if (sat == nil) != (aat == nil) {
					t.Fatalf("aux table presence for %s differs", tb)
				}
				if sat == nil {
					continue
				}
				if !ra.EqualBag(aat.Relation(), sat.Relation()) {
					t.Fatalf("sharded aux table %s diverged from serial\nsharded:\n%s\nserial:\n%s",
						tb, aat.Relation().Format(), sat.Relation().Format())
				}
				if err := aat.CheckIndexes(); err != nil {
					t.Fatalf("sharded aux table %s: %v", tb, err)
				}
			}
		})
	}
}

// TestShardedMinRowsThreshold verifies small deltas stay serial (no shard
// metrics observed) and deltas at the threshold go sharded.
func TestShardedMinRowsThreshold(t *testing.T) {
	f := newFixture(t, retailDDL, shardCSMASSQL, true)
	f.engine.Shards = 4
	f.engine.ShardMinRows = 32
	f.seedRetail()
	f.initEngine()

	if f.engine.shardable(31) {
		t.Fatal("31 rows shardable below the 32-row threshold")
	}
	if !f.engine.shardable(32) {
		t.Fatal("32 rows not shardable at the 32-row threshold")
	}
	f.engine.ShardMinRows = 0
	if f.engine.shardable(defaultShardMinRows - 1) {
		t.Fatal("default threshold not applied")
	}
	if !f.engine.shardable(defaultShardMinRows) {
		t.Fatal("default threshold rejects a full batch")
	}
	f.engine.ShardMinRows = 32

	// Below threshold: serial path, still correct.
	f.apply(bulkInsertSales(f, 8))
	// Above threshold: sharded path.
	f.apply(bulkInsertSales(f, 200))
}

// TestFaultInjectionShardedApply sweeps an injected failure through every
// reachable injection point of sharded applies — including the new
// ShardAuxInstall and ShardMVInstall points and the worker-fired per-row
// points — and requires bit-identical rollback every time. Covers both the
// incremental CSMAS path and the recompute (DISTINCT) path.
func TestFaultInjectionShardedApply(t *testing.T) {
	for _, tc := range []struct {
		name string
		sql  string
	}{
		{"csmas", shardCSMASSQL},
		{"distinct_recompute", productSalesSQL},
	} {
		t.Run(tc.name, func(t *testing.T) {
			f := newFixture(t, retailDDL, tc.sql, true)
			f.engine.Shards = 4
			f.engine.ShardMinRows = 1
			f.seedRetail()
			f.initEngine()

			// A committed bulk insert to give later deltas state to mutate.
			f.apply(bulkInsertSales(f, 64))
			firstID := f.saleID - 63

			// Sweep a bulk insert.
			sweepApply(t, f, bulkInsertSales(f, 48))

			// Sweep a mixed update (negative weights, group shrink).
			var keys []int64
			for k := firstID; k < firstID+24; k++ {
				keys = append(keys, k)
			}
			sweepApply(t, f, bulkUpdateSales(f, keys))

			// Sweep a bulk delete that empties groups.
			var dels []int64
			for k := firstID + 24; k < firstID+56; k++ {
				dels = append(dels, k)
			}
			sweepApply(t, f, bulkDeleteSales(f, dels))
		})
	}
}

// TestShardedStatsMatchSerial verifies the work counters the sharded path
// publishes (lookups, group adjustments) equal the serial path's for the
// same workload.
func TestShardedStatsMatchSerial(t *testing.T) {
	mk := func(shards int) *fixture {
		f := newFixture(t, retailDDL, shardCSMASSQL, true)
		if shards > 1 {
			f.engine.Shards = shards
			f.engine.ShardMinRows = 1
		}
		f.seedRetail()
		f.initEngine()
		f.engine.ResetStats()
		return f
	}
	serial := mk(1)
	sharded := mk(8)
	d1 := bulkInsertSales(serial, 128)
	d2 := bulkInsertSales(sharded, 128)
	serial.apply(d1)
	sharded.apply(d2)
	ss, hs := serial.engine.Stats(), sharded.engine.Stats()
	if fmt.Sprint(ss) != fmt.Sprint(hs) {
		t.Fatalf("sharded stats diverged from serial\nserial:  %+v\nsharded: %+v", ss, hs)
	}
}
