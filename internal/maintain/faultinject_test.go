package maintain

import (
	"errors"
	"fmt"
	"testing"

	"mindetail/internal/faultinject"
	"mindetail/internal/ra"
	"mindetail/internal/tuple"
	"mindetail/internal/types"
)

// deepClone copies a relation including its tuples, so a capture survives
// in-place mutation of the live rows it was taken from.
func deepClone(r *ra.Relation) *ra.Relation {
	out := &ra.Relation{Cols: append(ra.Schema(nil), r.Cols...)}
	out.Rows = make([]tuple.Tuple, len(r.Rows))
	for i, row := range r.Rows {
		out.Rows[i] = row.Clone()
	}
	return out
}

// engineCapture is a deep snapshot of an engine's user-visible state: the
// materialized view and every auxiliary table.
type engineCapture struct {
	snap *ra.Relation
	aux  map[string]*ra.Relation
}

func captureEngine(e *Engine, tables []string) engineCapture {
	c := engineCapture{snap: deepClone(e.Snapshot()), aux: make(map[string]*ra.Relation)}
	for _, tb := range tables {
		if at := e.Aux(tb); at != nil {
			c.aux[tb] = deepClone(at.Relation())
		}
	}
	return c
}

// requireUnchanged asserts the engine's state is bit-identical to the
// capture and that every auxiliary index is consistent with its rows.
func (c engineCapture) requireUnchanged(t *testing.T, e *Engine, tables []string, when string) {
	t.Helper()
	if got := e.Snapshot(); !ra.EqualBag(got, c.snap) {
		t.Fatalf("%s: materialized view changed after failed apply\nbefore:\n%s\nafter:\n%s",
			when, c.snap.Format(), got.Format())
	}
	for _, tb := range tables {
		at := e.Aux(tb)
		if at == nil {
			if _, had := c.aux[tb]; had {
				t.Fatalf("%s: auxiliary table %s disappeared", when, tb)
			}
			continue
		}
		if got := at.Relation(); !ra.EqualBag(got, c.aux[tb]) {
			t.Fatalf("%s: auxiliary table %s changed after failed apply\nbefore:\n%s\nafter:\n%s",
				when, tb, c.aux[tb].Format(), got.Format())
		}
		if err := at.CheckIndexes(); err != nil {
			t.Fatalf("%s: auxiliary table %s index inconsistent after rollback: %v", when, tb, err)
		}
	}
}

// sweepApply applies delta d to the engine with a fault injected at the
// N-th injection point, for N = 1, 2, ... until the apply commits without
// firing. After every injected failure the engine's state must be
// bit-identical to the pre-delta capture. The final, clean apply leaves the
// delta committed exactly once.
func sweepApply(t *testing.T, f *fixture, d Delta) {
	t.Helper()
	tables := f.view.Tables
	const limit = 100000
	for failAt := int64(1); failAt <= limit; failAt++ {
		before := captureEngine(f.engine, tables)
		h := faultinject.NewHook(failAt)
		f.engine.SetFaultHook(h)
		err := f.engine.Apply(d)
		f.engine.SetFaultHook(nil)
		if err == nil {
			if p, fired := h.Fired(); fired {
				t.Fatalf("hook fired at %s but Apply succeeded", p)
			}
			f.check(fmt.Sprintf("after swept delta on %s (visits=%d)", d.Table, h.Visits()))
			return
		}
		if !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("failAt=%d: apply failed with a genuine error: %v", failAt, err)
		}
		p, _ := h.Fired()
		before.requireUnchanged(t, f.engine, tables,
			fmt.Sprintf("failAt=%d (%s)", failAt, p))
	}
	t.Fatalf("sweep did not terminate within %d injection points", limit)
}

// TestFaultInjectionEngine drives a corpus of deltas — inserts, deletes,
// updates, dimension changes, and batches — through the retail view,
// injecting a failure at every reachable injection point of every delta and
// asserting the engine rolls back to its exact pre-delta state each time.
func TestFaultInjectionEngine(t *testing.T) {
	f := newFixture(t, retailDDL, productSalesSQL, true)
	f.seedRetail()
	f.initEngine()

	mustInsert := func(table string, vals ...types.Value) tuple.Tuple {
		t.Helper()
		row := tuple.Tuple(vals)
		if err := f.db.Insert(table, row); err != nil {
			t.Fatal(err)
		}
		return row
	}

	// Fact insert (SMA fast path + DISTINCT recompute).
	row := mustInsert("sale", types.Int(2001), types.Int(2), types.Int(102), types.Int(8), types.Float(21))
	sweepApply(t, f, Delta{Table: "sale", Inserts: []tuple.Tuple{row}})

	// Batched fact inserts, one creating a fresh group.
	r2 := mustInsert("sale", types.Int(2002), types.Int(4), types.Int(100), types.Int(7), types.Float(3))
	r3 := mustInsert("sale", types.Int(2003), types.Int(4), types.Int(101), types.Int(8), types.Float(4))
	sweepApply(t, f, Delta{Table: "sale", Inserts: []tuple.Tuple{r2, r3}})

	// Fact update (delete+insert pair through the journal).
	old, upd, err := f.db.Update("sale", types.Int(4), map[string]types.Value{"price": types.Float(70)})
	if err != nil {
		t.Fatal(err)
	}
	sweepApply(t, f, Delta{Table: "sale", Updates: []Update{{Old: old, New: upd}}})

	// Dimension update on a condition-free mutable attribute (brand feeds
	// COUNT(DISTINCT brand): exercises the recompute path).
	old, upd, err = f.db.Update("product", types.Int(100), map[string]types.Value{"brand": types.Str("apex")})
	if err != nil {
		t.Fatal(err)
	}
	sweepApply(t, f, Delta{Table: "product", Updates: []Update{{Old: old, New: upd}}})

	// Fact delete that shrinks a group.
	del, err := f.db.Delete("sale", types.Int(3))
	if err != nil {
		t.Fatal(err)
	}
	sweepApply(t, f, Delta{Table: "sale", Deletes: []tuple.Tuple{del}})

	// Dimension insert + delete (unreferenced time row).
	trow := mustInsert("time", types.Int(40), types.Int(9), types.Int(3), types.Int(1997))
	sweepApply(t, f, Delta{Table: "time", Inserts: []tuple.Tuple{trow}})
	del, err = f.db.Delete("time", types.Int(40))
	if err != nil {
		t.Fatal(err)
	}
	sweepApply(t, f, Delta{Table: "time", Deletes: []tuple.Tuple{del}})
}

// TestFaultInjectionMinMax sweeps the MIN/MAX recomputation path: deleting
// a group's extremum forces recomputeGroups, whose delete-then-install
// window is a prime partial-apply hazard.
func TestFaultInjectionMinMax(t *testing.T) {
	f := newFixture(t, retailDDL, `
		SELECT sale.productid, MAX(sale.price) AS hi, MIN(sale.price) AS lo,
		       SUM(sale.price) AS total, COUNT(*) AS cnt
		FROM sale GROUP BY sale.productid`, true)
	f.seedRetail()
	f.initEngine()

	row := tuple.Tuple{types.Int(2001), types.Int(1), types.Int(100), types.Int(7), types.Float(500)}
	if err := f.db.Insert("sale", row); err != nil {
		t.Fatal(err)
	}
	sweepApply(t, f, Delta{Table: "sale", Inserts: []tuple.Tuple{row}})

	// Deleting the new maximum forces partial recomputation of its group.
	del, err := f.db.Delete("sale", types.Int(2001))
	if err != nil {
		t.Fatal(err)
	}
	sweepApply(t, f, Delta{Table: "sale", Deletes: []tuple.Tuple{del}})
	if f.engine.Stats().GroupRecomputes == 0 {
		t.Fatal("sweep never exercised the recompute path")
	}
}

// TestFaultInjectionAppendOnly sweeps an append-only engine, where MIN/MAX
// compress into the auxiliary view and Adjust raises extrema in place.
func TestFaultInjectionAppendOnly(t *testing.T) {
	f := appendOnlyFixture(t, minMaxSQL)
	f.seedRetail()
	f.initEngine()

	for i, price := range []float64{500, 0.5, 42} {
		row := tuple.Tuple{types.Int(int64(3001 + i)), types.Int(2), types.Int(101), types.Int(8), types.Float(price)}
		if err := f.db.Insert("sale", row); err != nil {
			t.Fatal(err)
		}
		sweepApply(t, f, Delta{Table: "sale", Inserts: []tuple.Tuple{row}})
	}
}

// sweepShared is sweepApply for a SharedEngines coordinator: after every
// injected failure, every view's snapshot and the shared auxiliary tables
// must be bit-identical to their pre-delta state.
func sweepShared(t *testing.T, f *sharedFixture, d Delta) {
	t.Helper()
	var tables [][]string
	for i := range f.views {
		tables = append(tables, f.views[i].Tables)
	}
	const limit = 100000
	for failAt := int64(1); failAt <= limit; failAt++ {
		var before []engineCapture
		for i := range f.views {
			before = append(before, captureEngine(f.se.Engine(i), tables[i]))
		}
		h := faultinject.NewHook(failAt)
		f.se.SetFaultHook(h)
		err := f.se.Apply(d)
		f.se.SetFaultHook(nil)
		if err == nil {
			if p, fired := h.Fired(); fired {
				t.Fatalf("hook fired at %s but Apply succeeded", p)
			}
			f.check(fmt.Sprintf("after swept delta on %s", d.Table))
			return
		}
		if !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("failAt=%d: apply failed with a genuine error: %v", failAt, err)
		}
		p, _ := h.Fired()
		for i := range f.views {
			before[i].requireUnchanged(t, f.se.Engine(i), tables[i],
				fmt.Sprintf("view %d, failAt=%d (%s)", i, failAt, p))
		}
	}
	t.Fatalf("sweep did not terminate within %d injection points", limit)
}

// TestFaultInjectionSharedEngines asserts class-wide atomicity: a failure
// in any view of a shared class rolls back the shared auxiliary tables and
// every already-applied sibling view.
func TestFaultInjectionSharedEngines(t *testing.T) {
	f := newSharedFixture(t,
		`SELECT time.month, SUM(price) AS total, COUNT(*) AS cnt
		 FROM sale, time WHERE time.year = 1997 AND sale.timeid = time.id
		 GROUP BY time.month`,
		`SELECT sale.storeid, MAX(price) AS hi, COUNT(*) AS cnt
		 FROM sale GROUP BY sale.storeid`,
	)
	f.seedRetail()
	f.init()

	row := tuple.Tuple{types.Int(2001), types.Int(1), types.Int(100), types.Int(8), types.Float(77)}
	if err := f.db.Insert("sale", row); err != nil {
		t.Fatal(err)
	}
	sweepShared(t, f, Delta{Table: "sale", Inserts: []tuple.Tuple{row}})

	del, err := f.db.Delete("sale", types.Int(2001))
	if err != nil {
		t.Fatal(err)
	}
	sweepShared(t, f, Delta{Table: "sale", Deletes: []tuple.Tuple{del}})

	old, upd, err := f.db.Update("sale", types.Int(2), map[string]types.Value{"price": types.Float(1000)})
	if err != nil {
		t.Fatal(err)
	}
	sweepShared(t, f, Delta{Table: "sale", Updates: []Update{{Old: old, New: upd}}})
}

// TestFaultInjectionSharedEnginesParallel re-runs the class-wide sweep with
// parallel staging and the per-delta memo enabled: an injected failure in
// any staging goroutine must still roll the shared tables and every sibling
// view back to a bit-identical pre-delta state. Which engine the N-th visit
// lands in depends on scheduling, but the atomicity invariant is
// schedule-independent — and the sweep still terminates because the total
// number of injection-point visits per apply is bounded.
func TestFaultInjectionSharedEnginesParallel(t *testing.T) {
	f := newSharedFixture(t,
		`SELECT time.month, SUM(price) AS total, COUNT(*) AS cnt
		 FROM sale, time WHERE time.year = 1997 AND sale.timeid = time.id
		 GROUP BY time.month`,
		`SELECT sale.storeid, MAX(price) AS hi, COUNT(*) AS cnt
		 FROM sale GROUP BY sale.storeid`,
		`SELECT store.city, COUNT(DISTINCT brand) AS brands, SUM(price) AS total
		 FROM sale, product, store
		 WHERE sale.productid = product.id AND sale.storeid = store.id
		 GROUP BY store.city`,
	)
	f.se.Workers = 4
	f.seedRetail()
	f.init()

	row := tuple.Tuple{types.Int(2001), types.Int(1), types.Int(100), types.Int(8), types.Float(77)}
	if err := f.db.Insert("sale", row); err != nil {
		t.Fatal(err)
	}
	sweepShared(t, f, Delta{Table: "sale", Inserts: []tuple.Tuple{row}})

	old, upd, err := f.db.Update("sale", types.Int(2), map[string]types.Value{"price": types.Float(1000)})
	if err != nil {
		t.Fatal(err)
	}
	sweepShared(t, f, Delta{Table: "sale", Updates: []Update{{Old: old, New: upd}}})

	del, err := f.db.Delete("sale", types.Int(2001))
	if err != nil {
		t.Fatal(err)
	}
	sweepShared(t, f, Delta{Table: "sale", Deletes: []tuple.Tuple{del}})
}

// TestMalformedDeltasLeaveStateUntouched feeds structurally invalid deltas
// to a live engine and asserts every one is rejected by the validate-first
// pass with zero state change — the "garbage in, nothing out" contract.
func TestMalformedDeltasLeaveStateUntouched(t *testing.T) {
	f := newFixture(t, retailDDL, productSalesSQL, true)
	f.seedRetail()
	f.initEngine()

	short := tuple.Tuple{types.Int(9000), types.Int(1)} // arity 2, want 5
	long := tuple.Tuple{types.Int(9001), types.Int(1), types.Int(100), types.Int(7), types.Float(1), types.Float(2)}
	good := tuple.Tuple{types.Int(9002), types.Int(1), types.Int(100), types.Int(7), types.Float(5)}

	cases := []struct {
		name string
		d    Delta
	}{
		{"insert short row", Delta{Table: "sale", Inserts: []tuple.Tuple{short}}},
		{"insert long row", Delta{Table: "sale", Inserts: []tuple.Tuple{long}}},
		{"delete short row", Delta{Table: "sale", Deletes: []tuple.Tuple{short}}},
		{"update with short old image", Delta{Table: "sale", Updates: []Update{{Old: short, New: good}}}},
		{"update with short new image", Delta{Table: "sale", Updates: []Update{{Old: good, New: short}}}},
		{"valid rows after a bad one", Delta{Table: "sale", Inserts: []tuple.Tuple{good, short}}},
	}
	tables := f.view.Tables
	for _, tc := range cases {
		before := captureEngine(f.engine, tables)
		if err := f.engine.Apply(tc.d); err == nil {
			t.Errorf("%s: apply succeeded, want error", tc.name)
			continue
		}
		before.requireUnchanged(t, f.engine, tables, tc.name)
	}

	// Append-only engines must reject deletes and updates outright.
	ao := appendOnlyFixture(t, minMaxSQL)
	ao.seedRetail()
	ao.initEngine()
	aoCases := []struct {
		name string
		d    Delta
	}{
		{"append-only delete", Delta{Table: "sale", Deletes: []tuple.Tuple{good}}},
		{"append-only update", Delta{Table: "sale", Updates: []Update{{Old: good, New: good}}}},
	}
	for _, tc := range aoCases {
		before := captureEngine(ao.engine, ao.view.Tables)
		if err := ao.engine.Apply(tc.d); err == nil {
			t.Errorf("%s: apply succeeded, want error", tc.name)
			continue
		}
		before.requireUnchanged(t, ao.engine, ao.view.Tables, tc.name)
	}
}
