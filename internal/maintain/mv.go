// Package maintain implements self-maintenance of a materialized GPSJ view
// from its minimal auxiliary views, without any access to the base tables
// (paper Sections 2.2 and 3.2).
//
// The materialized view is kept in a *component form* that follows the
// Table 2 replacement rules: every CSMAS aggregate is stored as its
// distributive components (SUM and/or COUNT), every non-CSMAS aggregate
// (MIN/MAX, DISTINCT) as a stored value that is repaired by partial
// recomputation from the auxiliary views, plus a hidden per-group COUNT(*)
// that detects group death. The user-facing contents are produced by
// Snapshot, which combines components (AVG = SUM/COUNT).
package maintain

import (
	"fmt"
	"sort"

	"mindetail/internal/aggregates"
	"mindetail/internal/gpsj"
	"mindetail/internal/ra"
	"mindetail/internal/tuple"
	"mindetail/internal/types"
)

// compKind enumerates the component kinds of the maintenance form.
type compKind int

const (
	compGroupBy compKind = iota // a group-by column
	compCount                   // COUNT(*) or COUNT(a): a row count
	compSum                     // a running SUM(a)
	compStored                  // a non-CSMAS value repaired by recomputation
)

// component describes one column of the maintenance form.
type component struct {
	kind compKind
	item ra.ProjItem // the view item this component belongs to
	arg  ra.ColRef   // aggregate argument (compSum, compStored with arg)
}

// MaterializedView is the maintained state of V in component form.
type MaterializedView struct {
	view *gpsj.View

	// comps lists the maintenance-form columns: group-by columns first (in
	// item order interleaved as in the view), then per-aggregate
	// components. itemComps[i] gives the component indexes of view item i.
	comps     []component
	itemComps [][]int
	gbIdx     []int // component indexes that are group-by columns

	// hasNonCSMAS reports whether any stored (non-CSMAS) component exists;
	// minMaxOnly additionally reports that all of them are plain MIN/MAX.
	hasNonCSMAS bool
	minMaxOnly  bool

	// rows maps the encoded group-by key to the component tuple, with one
	// extra trailing value: the hidden group COUNT(*).
	rows map[string]tuple.Tuple
}

// NewMaterializedView builds an empty maintenance form for the view.
func NewMaterializedView(v *gpsj.View) *MaterializedView {
	mv := &MaterializedView{view: v, rows: make(map[string]tuple.Tuple)}
	mv.minMaxOnly = true
	for _, it := range v.Items {
		var idxs []int
		add := func(c component) {
			idxs = append(idxs, len(mv.comps))
			mv.comps = append(mv.comps, c)
		}
		if !it.IsAggregate() {
			add(component{kind: compGroupBy, item: it})
			mv.gbIdx = append(mv.gbIdx, idxs[0])
		} else {
			agg := it.Agg
			switch {
			case !aggregates.IsCSMAS(agg):
				c := component{kind: compStored, item: it}
				if agg.Arg != nil {
					c.arg = agg.Arg.(ra.ColRef)
				}
				add(c)
				mv.hasNonCSMAS = true
				if agg.Distinct || (agg.Func != ra.FuncMin && agg.Func != ra.FuncMax) {
					mv.minMaxOnly = false
				}
			case agg.Func == ra.FuncCount:
				add(component{kind: compCount, item: it})
			case agg.Func == ra.FuncSum:
				add(component{kind: compSum, item: it, arg: agg.Arg.(ra.ColRef)})
			case agg.Func == ra.FuncAvg:
				add(component{kind: compSum, item: it, arg: agg.Arg.(ra.ColRef)})
				add(component{kind: compCount, item: it})
			default:
				panic(fmt.Sprintf("maintain: unexpected aggregate %s", agg))
			}
		}
		mv.itemComps = append(mv.itemComps, idxs)
	}
	return mv
}

// View returns the view definition.
func (mv *MaterializedView) View() *gpsj.View { return mv.view }

// Groups returns the number of materialized groups.
func (mv *MaterializedView) Groups() int { return len(mv.rows) }

// hiddenIdx is the position of the hidden group count inside a stored row.
func (mv *MaterializedView) hiddenIdx() int { return len(mv.comps) }

// keyOf extracts the encoded group key from a component tuple.
func (mv *MaterializedView) keyOf(row tuple.Tuple) string {
	return row.KeyAt(mv.gbIdx)
}

// global reports whether the view has no group-by attributes (a single
// global aggregation group, which exists even over an empty input).
func (mv *MaterializedView) global() bool { return len(mv.gbIdx) == 0 }

// blank returns a fresh component tuple for a new group with the given
// group-by values at the group-by positions.
func (mv *MaterializedView) blank(gbVals []types.Value) tuple.Tuple {
	row := make(tuple.Tuple, len(mv.comps)+1)
	for i := range row {
		row[i] = types.Null
	}
	for i, gi := range mv.gbIdx {
		row[gi] = gbVals[i]
	}
	for ci, c := range mv.comps {
		if c.kind == compCount {
			row[ci] = types.Int(0)
		}
	}
	row[mv.hiddenIdx()] = types.Int(0)
	return row
}

// adjust applies a signed weighted contribution to a group's CSMAS
// components and the hidden count: dCnt row-count units, and per-sum-
// component value deltas. It creates the group when absent and removes it
// when the hidden count returns to zero (unless the view is global).
func (mv *MaterializedView) adjust(gbVals []types.Value, dCnt int64, sumDeltas map[int]types.Value) error {
	return mv.adjustBuf(tuple.Tuple(gbVals).AppendKey(nil), gbVals, dCnt, sumDeltas)
}

// adjustBuf is adjust with the group key pre-encoded into a caller-owned
// scratch buffer: lookups and deletes use string(key) conversions the
// runtime elides, so the hot adjustment loop allocates a key string only
// when a new group is created.
func (mv *MaterializedView) adjustBuf(key []byte, gbVals []types.Value, dCnt int64, sumDeltas map[int]types.Value) error {
	row := mv.rows[string(key)]
	existed := row != nil
	out, err := mv.adjustRowCore(row, gbVals, dCnt, sumDeltas)
	if err != nil {
		return err
	}
	switch {
	case out == nil && existed:
		delete(mv.rows, string(key))
	case out != nil && !existed:
		mv.rows[string(key)] = out
	}
	// existed && out != nil: out is row, adjusted in place.
	return nil
}

// adjustRowCore applies one weighted contribution to a component row image
// without touching the view's row map: row is the current image (nil =
// absent; a blank group is created) and the result is the image afterwards
// (nil = group death, never produced for a global view). Existing rows are
// mutated in place. The caller reconciles the map — adjustBuf for the
// serial path, the sharded overlay pipeline for parallel applies — so both
// accumulate each group's components in bit-identical order.
func (mv *MaterializedView) adjustRowCore(row tuple.Tuple, gbVals []types.Value, dCnt int64, sumDeltas map[int]types.Value) (tuple.Tuple, error) {
	if row == nil {
		row = mv.blank(gbVals)
	}
	for ci, c := range mv.comps {
		switch c.kind {
		case compCount:
			row[ci] = types.Int(row[ci].AsInt() + dCnt)
		case compSum:
			d, ok := sumDeltas[ci]
			if !ok {
				continue
			}
			if row[ci].IsNull() {
				row[ci] = d
			} else {
				s, err := types.Add(row[ci], d)
				if err != nil {
					return row, err
				}
				row[ci] = s
			}
		}
	}
	h := mv.hiddenIdx()
	row[h] = types.Int(row[h].AsInt() + dCnt)
	if row[h].AsInt() == 0 && !mv.global() {
		return nil, nil
	} else if row[h].AsInt() < 0 {
		return row, fmt.Errorf("maintain: group %v count went negative (inconsistent delta stream)", gbVals)
	}
	return row, nil
}

// raiseExtrema updates stored MIN/MAX components with a candidate value —
// the insertion-only SMA fast path of Table 1.
func (mv *MaterializedView) raiseExtrema(gbVals []types.Value, ci int, v types.Value) {
	mv.raiseExtremaBuf(tuple.Tuple(gbVals).AppendKey(nil), ci, v)
}

// raiseExtremaBuf is raiseExtrema with a pre-encoded group key (no
// allocation on lookup).
func (mv *MaterializedView) raiseExtremaBuf(key []byte, ci int, v types.Value) {
	row, ok := mv.rows[string(key)]
	if !ok {
		// adjust creates groups; raiseExtrema is called after it.
		return
	}
	mv.raiseRow(row, ci, v)
}

// raiseRow is the row-image form of raiseExtremaBuf, shared with the
// sharded overlay pipeline (which raises extrema on overlay copies before
// they are installed).
func (mv *MaterializedView) raiseRow(row tuple.Tuple, ci int, v types.Value) {
	c := mv.comps[ci]
	cur := row[ci]
	switch {
	case cur.IsNull():
		row[ci] = v
	case c.item.Agg.Func == ra.FuncMin && types.Compare(v, cur) < 0:
		row[ci] = v
	case c.item.Agg.Func == ra.FuncMax && types.Compare(v, cur) > 0:
		row[ci] = v
	}
}

// deleteGroups removes the groups with the given encoded keys.
func (mv *MaterializedView) deleteGroups(keys groupSet) {
	for k := range keys {
		if mv.global() {
			// A global group is never removed; it is overwritten by the
			// recomputation that follows.
			continue
		}
		delete(mv.rows, k)
	}
}

// setRow installs a complete component row (from recomputation).
func (mv *MaterializedView) setRow(row tuple.Tuple) {
	mv.rows[mv.keyOf(row)] = row
}

// Snapshot renders the user-facing contents of the view: one output column
// per view item, combining components (COUNT from its counter, SUM from its
// running sum, AVG = SUM/COUNT, stored values directly). An empty SUM/AVG
// group (possible only for global views) yields NULL, matching SQL.
func (mv *MaterializedView) Snapshot() *ra.Relation {
	cols := make(ra.Schema, len(mv.view.Items))
	for i, it := range mv.view.Items {
		cols[i] = ra.Col{Name: it.Name}
	}
	out := ra.NewRelation(cols)
	keys := make([]string, 0, len(mv.rows))
	for k := range mv.rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		row := mv.rows[k]
		orow := make(tuple.Tuple, len(mv.view.Items))
		for i, it := range mv.view.Items {
			idxs := mv.itemComps[i]
			switch {
			case !it.IsAggregate():
				orow[i] = row[idxs[0]]
			case it.Agg.Func == ra.FuncAvg && aggregates.IsCSMAS(it.Agg):
				sum, cnt := row[idxs[0]], row[idxs[1]]
				if sum.IsNull() || cnt.AsInt() == 0 {
					orow[i] = types.Null
				} else {
					orow[i] = types.Float(sum.AsFloat() / float64(cnt.AsInt()))
				}
			case it.Agg.Func != ra.FuncCount && row[mv.hiddenIdx()].AsInt() == 0:
				// An empty (global) group: SUM/AVG/MIN/MAX are NULL.
				orow[i] = types.Null
			default:
				orow[i] = row[idxs[0]]
			}
		}
		out.Rows = append(out.Rows, orow)
	}
	return out
}

// Bytes returns the byte-accounting size of the maintenance form.
func (mv *MaterializedView) Bytes() int {
	n := 0
	for _, row := range mv.rows {
		n += row.EncodedSize()
	}
	return n
}
