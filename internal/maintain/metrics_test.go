package maintain

import (
	"errors"
	"testing"

	"mindetail/internal/faultinject"
	"mindetail/internal/obs"
	"mindetail/internal/types"
)

// metricsFixture builds the retail fixture with a fresh metrics sink
// attached to the engine, returning both.
func metricsFixture(t *testing.T) (*fixture, *obs.Registry) {
	t.Helper()
	f := newFixture(t, retailDDL, productSalesSQL, true)
	f.seedRetail()
	f.initEngine()
	reg := obs.NewRegistry()
	f.engine.SetMetrics(NewMetrics(reg))
	return f, reg
}

// TestMetricsStageAccounting: every committed apply contributes exactly one
// observation to the apply latency and journal-depth histograms, one trace
// event, and per-stage timings on the stages it actually executed.
func TestMetricsStageAccounting(t *testing.T) {
	f, reg := metricsFixture(t)

	f.insertSale(1, 100, 7, 3.5)                                            // detail insert
	f.updateRow("sale", 1, map[string]types.Value{"price": types.Float(4)}) // measure update
	f.deleteRow("sale", 2)                                                  // detail delete
	// Dimension change on a DISTINCT-counted column forces a scoped group
	// recomputation, so the recompute stage must appear.
	f.updateRow("product", 100, map[string]types.Value{"brand": types.Str("zeta")})

	const applies = 4
	s := reg.Snapshot()
	if got := s.Counters["maintain.applies"]; got != applies {
		t.Errorf("maintain.applies = %d, want %d", got, applies)
	}
	if got := s.Counters["maintain.rollbacks"]; got != 0 {
		t.Errorf("maintain.rollbacks = %d, want 0", got)
	}
	if got := s.Histograms["maintain.apply_ns"].Count; got != applies {
		t.Errorf("apply_ns count = %d, want %d", got, applies)
	}
	if got := s.Histograms["maintain.journal.depth"].Count; got != applies {
		t.Errorf("journal.depth count = %d, want %d", got, applies)
	}
	// Expansion and filtering run once per apply; the commit stage is timed
	// once per committed journal.
	for _, stage := range []string{"expand", "filter", "commit"} {
		name := "maintain.stage." + stage + "_ns"
		if got := s.Histograms[name].Count; got != applies {
			t.Errorf("%s count = %d, want %d", name, got, applies)
		}
	}
	if s.Histograms["maintain.stage.delta_detail_join_ns"].Count == 0 {
		t.Error("delta_detail_join stage never observed")
	}
	if s.Histograms["maintain.stage.scoped_recompute_ns"].Count == 0 {
		t.Error("scoped_recompute stage never observed despite brand change")
	}
	if got := s.Histograms["maintain.stage.rollback_ns"].Count; got != 0 {
		t.Errorf("rollback stage observed %d times on clean applies", got)
	}

	events := s.Traces["maintain.applies"]
	if len(events) != applies {
		t.Fatalf("trace events = %d, want %d", len(events), applies)
	}
	for _, ev := range events {
		if ev.Name != "v" || ev.Outcome != "staged" {
			t.Errorf("trace event = %+v", ev)
		}
		if len(ev.Stages) == 0 {
			t.Errorf("trace event %d carries no stage timings", ev.Seq)
		}
		if ev.TotalNs <= 0 {
			t.Errorf("trace event %d TotalNs = %d", ev.Seq, ev.TotalNs)
		}
	}
}

// TestMetricsRollbackAccounting sweeps a batch delta through every
// reachable injection point and checks the rollback counters against the
// journal lifecycle: a failure before the journal begins (EngineValidated)
// must not count as a rollback, every later failure counts as both a
// rollback and an injected rollback, and the rollback-stage histogram
// tracks the rollback counter exactly.
func TestMetricsRollbackAccounting(t *testing.T) {
	f, reg := metricsFixture(t)

	old := f.db.Table("sale").Get(types.Int(1))
	if old == nil {
		t.Fatal("sale 1 missing")
	}
	alt := old.Clone()
	alt[4] = types.Float(old[4].AsFloat() + 23)
	d := Delta{Table: "sale", Updates: []Update{{Old: old, New: alt}}}

	sawPreJournal, sawPostJournal := false, false
	const limit = 100000
	for failAt := int64(1); failAt <= limit; failAt++ {
		before := reg.Snapshot()
		h := faultinject.NewHook(failAt)
		f.engine.SetFaultHook(h)
		err := f.engine.Apply(d)
		f.engine.SetFaultHook(nil)
		after := reg.Snapshot()
		if got := after.Counters["maintain.applies"] - before.Counters["maintain.applies"]; got != 1 {
			t.Fatalf("failAt=%d: applies grew by %d, want 1", failAt, got)
		}
		if err == nil {
			if p, fired := h.Fired(); fired {
				t.Fatalf("hook fired at %s but Apply succeeded", p)
			}
			if !sawPreJournal || !sawPostJournal {
				t.Errorf("sweep coverage: preJournal=%v postJournal=%v", sawPreJournal, sawPostJournal)
			}
			rollbacks := after.Counters["maintain.rollbacks"]
			if inj := after.Counters["maintain.rollbacks_injected"]; inj != rollbacks {
				t.Errorf("rollbacks_injected = %d, rollbacks = %d; all failures were injected", inj, rollbacks)
			}
			if got := after.Histograms["maintain.stage.rollback_ns"].Count; got != rollbacks {
				t.Errorf("rollback_ns count = %d, rollbacks = %d", got, rollbacks)
			}
			return
		}
		if !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("failAt=%d: genuine error: %v", failAt, err)
		}
		p, _ := h.Fired()
		dr := after.Counters["maintain.rollbacks"] - before.Counters["maintain.rollbacks"]
		di := after.Counters["maintain.rollbacks_injected"] - before.Counters["maintain.rollbacks_injected"]
		if p == faultinject.EngineValidated {
			sawPreJournal = true
			if dr != 0 || di != 0 {
				t.Fatalf("failAt=%d (%s): pre-journal failure counted a rollback (dr=%d di=%d)", failAt, p, dr, di)
			}
		} else {
			sawPostJournal = true
			if dr != 1 || di != 1 {
				t.Fatalf("failAt=%d (%s): rollback counters moved by dr=%d di=%d, want 1/1", failAt, p, dr, di)
			}
		}
		// The failed apply still records its latency and a trace event
		// with an error outcome.
		if got := after.Histograms["maintain.apply_ns"].Count - before.Histograms["maintain.apply_ns"].Count; got != 1 {
			t.Fatalf("failAt=%d: apply_ns grew by %d", failAt, got)
		}
		events := after.Traces["maintain.applies"]
		last := events[len(events)-1]
		if last.Outcome == "staged" {
			t.Fatalf("failAt=%d: failed apply traced as %q", failAt, last.Outcome)
		}
	}
	t.Fatalf("sweep did not terminate within %d points", limit)
}

// TestMetricsNilSink: with no sink attached (the default), applies must
// work and a later-attached registry starts from zero — instrumentation is
// strictly pay-for-use.
func TestMetricsNilSink(t *testing.T) {
	f := newFixture(t, retailDDL, productSalesSQL, true)
	f.seedRetail()
	f.initEngine()
	if f.engine.Metrics() != nil {
		t.Fatal("engine born with a metrics sink")
	}
	f.insertSale(1, 100, 7, 2)

	reg := obs.NewRegistry()
	f.engine.SetMetrics(NewMetrics(reg))
	f.insertSale(2, 101, 7, 3)
	if got := reg.Snapshot().Counters["maintain.applies"]; got != 1 {
		t.Errorf("applies after late attach = %d, want 1 (pre-attach applies must not be counted)", got)
	}
	f.engine.SetMetrics(nil)
	f.insertSale(3, 102, 8, 4)
	if got := reg.Snapshot().Counters["maintain.applies"]; got != 1 {
		t.Errorf("applies after detach = %d, want 1", got)
	}
}

// TestMetricsIgnoresForeignTables: deltas on tables the view does not
// reference are cheap no-ops and must not pollute the apply metrics.
func TestMetricsIgnoresForeignTables(t *testing.T) {
	f, reg := metricsFixture(t)
	if err := f.engine.Apply(Delta{Table: "store", Inserts: nil}); err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if s.Counters["maintain.applies"] != 0 || s.Histograms["maintain.apply_ns"].Count != 0 {
		t.Errorf("foreign-table delta was counted: %+v", s.Counters)
	}
}
