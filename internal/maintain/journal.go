package maintain

import "mindetail/internal/tuple"

// undoEntry records the pre-mutation image of one group — either a row of
// an auxiliary table or a component row of the materialized view. old is a
// clone of the row before the mutation; nil means the group did not exist.
type undoEntry struct {
	aux *AuxTable
	mv  *MaterializedView
	key string
	old tuple.Tuple
}

// journal is a per-apply undo log. Every mutation of engine state first
// records the affected group's prior image; rollback replays the entries in
// reverse order, restoring state bit-identical to the pre-apply snapshot.
//
// The journal is recording only between begin and commit/rollback, so the
// note helpers are cheap no-ops outside an apply. The entries slice is
// reused across applies; commit zeroes retained tuple references without
// shrinking capacity, keeping the hot path allocation-lean.
type journal struct {
	ents      []undoEntry
	recording bool
}

// begin starts a fresh recording window.
func (j *journal) begin() {
	j.discard()
	j.recording = true
}

// discard drops all entries (releasing tuple references) and stops
// recording.
func (j *journal) discard() {
	for i := range j.ents {
		j.ents[i] = undoEntry{}
	}
	j.ents = j.ents[:0]
	j.recording = false
}

// noteAux records the current image of the auxiliary-table group under the
// encoded key (a scratch buffer; the journal copies it). A store read
// failure surfaces as an error BEFORE anything was journaled or mutated —
// the caller must abort the adjustment.
func (j *journal) noteAux(at *AuxTable, key []byte) error {
	if j == nil || !j.recording {
		return nil
	}
	row, ok, err := at.store.Get(key)
	if err != nil {
		return err
	}
	var old tuple.Tuple
	if ok {
		if at.store.InPlace() {
			old = row.Clone() // live row: snapshot it before the mutation
		} else {
			old = row // already a private decoded copy
		}
	}
	j.ents = append(j.ents, undoEntry{aux: at, key: string(key), old: old})
	return nil
}

// noteAuxKey is noteAux for a key already materialized as a string (no
// copy).
func (j *journal) noteAuxKey(at *AuxTable, key string) error {
	if j == nil || !j.recording {
		return nil
	}
	row, ok, err := at.store.GetString(key)
	if err != nil {
		return err
	}
	var old tuple.Tuple
	if ok {
		if at.store.InPlace() {
			old = row.Clone()
		} else {
			old = row
		}
	}
	j.ents = append(j.ents, undoEntry{aux: at, key: key, old: old})
	return nil
}

// noteMV records the current image of the materialized-view group under the
// encoded key (a scratch buffer; the journal copies it).
func (j *journal) noteMV(mv *MaterializedView, key []byte) {
	if j == nil || !j.recording {
		return
	}
	var old tuple.Tuple
	if row, ok := mv.rows[string(key)]; ok {
		old = row.Clone()
	}
	j.ents = append(j.ents, undoEntry{mv: mv, key: string(key), old: old})
}

// noteMVKey is noteMV for a key already materialized as a string (no
// copy).
func (j *journal) noteMVKey(mv *MaterializedView, key string) {
	if j == nil || !j.recording {
		return
	}
	var old tuple.Tuple
	if row, ok := mv.rows[key]; ok {
		old = row.Clone()
	}
	j.ents = append(j.ents, undoEntry{mv: mv, key: key, old: old})
}

// rollback restores every journaled group to its recorded image, newest
// first, then discards the journal. Replaying in reverse order makes the
// log correct even when one apply touches the same group several times:
// the oldest (first-recorded) image wins.
func (j *journal) rollback() {
	for i := len(j.ents) - 1; i >= 0; i-- {
		e := &j.ents[i]
		if e.aux != nil {
			e.aux.restoreGroup(e.key, e.old)
		} else {
			e.mv.restoreGroup(e.key, e.old)
		}
	}
	j.discard()
}

// restoreGroup forces the group under key back to the given image (nil =
// absent), maintaining the hash indexes. In-place restores need no index
// maintenance: the engine only indexes plain attributes, and two rows under
// the same group key agree on every plain attribute by construction.
//
// rollback cannot surface errors, so a paged-store failure here leaves the
// store's sticky error set (AuxStore.Err) and the engine's validate-first
// pass rejects every later delta — the table is wedged, never silently
// inconsistent.
func (t *AuxTable) restoreGroup(key string, old tuple.Tuple) {
	cur, exists, err := t.store.GetString(key)
	if err != nil {
		return // sticky store failure; the table is wedged
	}
	switch {
	case old == nil && exists:
		t.indexRemove(cur, key)
		_ = t.store.DeleteString(key)
	case old != nil && !exists:
		_ = t.store.PutString(key, old)
		t.indexAdd(old, key)
	case old != nil && exists:
		if t.store.InPlace() {
			copy(cur, old)
		} else {
			_ = t.store.PutString(key, old)
		}
	}
}

// restoreGroup forces the materialized-view group under key back to the
// given component image (nil = absent).
func (mv *MaterializedView) restoreGroup(key string, old tuple.Tuple) {
	cur, exists := mv.rows[key]
	switch {
	case old == nil && exists:
		delete(mv.rows, key)
	case old != nil && !exists:
		mv.rows[key] = old
	case old != nil && exists:
		copy(cur, old)
	}
}
