package maintain

import (
	"fmt"
	"sort"
	"sync"

	"mindetail/internal/core"
	"mindetail/internal/faultinject"
	"mindetail/internal/ra"
	"mindetail/internal/tuple"
	"mindetail/internal/types"
)

// AuxTable is the mutable, warehouse-resident materialization of one
// auxiliary view. Rows are keyed by the plain (grouping) attributes; for a
// compressed view the SUM and COUNT columns are adjusted in place and a
// group is dropped when its count returns to zero — the auxiliary views are
// themselves self-maintainable GPSJ views with CSMAS-only aggregates.
type AuxTable struct {
	def  *core.AuxView
	cols ra.Schema

	plainPos []int          // column positions of the plain attributes
	sumPos   map[string]int // base attribute -> SUM column position
	minPos   map[string]int // base attribute -> MIN column position (append-only)
	maxPos   map[string]int // base attribute -> MAX column position (append-only)
	cntPos   int            // COUNT(*) column position, -1 when absent

	// store holds the group rows keyed by encoded plain attributes. The
	// default is the in-memory map backend; SetStore swaps in an
	// out-of-core backend (internal/pager) per view.
	store AuxStore
	idx   map[string]map[string][]string // attr -> value key -> row keys

	// idxPos caches the column position of each indexed attribute, so
	// per-row index maintenance needs no schema scan.
	idxPos map[string]int

	// probeBuf and lookupBuf are scratch buffers for index probes: value
	// keys are encoded into probeBuf (no-allocation map lookups) and
	// Lookup results are assembled in lookupBuf, which is reused by the
	// next call. AuxTable is not safe for concurrent use.
	probeBuf  []byte
	lookupBuf []tuple.Tuple

	// jnl, when non-nil, receives the prior image of every group Adjust
	// mutates (set by the owning engine or shared coordinator); fi is the
	// fault-injection hook (nil in production).
	jnl *journal
	fi  *faultinject.Hook

	// readErr records the first store read failure seen by Lookup and its
	// buffer-reuse variants, which have no error return of their own. A
	// failed read during staging would otherwise silently drop rows from a
	// scoped recomputation; the engine drains this after applying a delta
	// and rolls back if a read failed. Guarded by a mutex because the
	// sharded apply path probes child tables from concurrent workers.
	readErrMu sync.Mutex
	readErr   error
}

// noteReadErr records err as the table's pending read failure (first one
// wins). Safe for concurrent use.
func (t *AuxTable) noteReadErr(err error) {
	if err == nil {
		return
	}
	t.readErrMu.Lock()
	if t.readErr == nil {
		t.readErr = err
	}
	t.readErrMu.Unlock()
}

// takeReadErr returns and clears the pending read failure, if any.
func (t *AuxTable) takeReadErr() error {
	t.readErrMu.Lock()
	err := t.readErr
	t.readErr = nil
	t.readErrMu.Unlock()
	return err
}

// NewAuxTable creates an empty table for the auxiliary view definition. A
// definition whose aggregate columns are missing from its own schema (which
// can only mean a corrupted or hand-built definition) surfaces as a
// returned error, never a panic.
func NewAuxTable(def *core.AuxView) (*AuxTable, error) {
	t := &AuxTable{
		def:    def,
		cols:   def.Schema(),
		sumPos: make(map[string]int),
		minPos: make(map[string]int),
		maxPos: make(map[string]int),
		cntPos: -1,
		store:  newMemStore(),
		idx:    make(map[string]map[string][]string),
		idxPos: make(map[string]int),
	}
	for i := range def.PlainAttrs {
		t.plainPos = append(t.plainPos, i)
	}
	for _, a := range def.SumAttrs {
		i, err := t.cols.Index(def.Base, def.SumName[a])
		if err != nil {
			return nil, fmt.Errorf("maintain: aux view for %s: SUM(%s) column: %w", def.Base, a, err)
		}
		t.sumPos[a] = i
	}
	for _, a := range def.MinAttrs {
		i, err := t.cols.Index(def.Base, def.MinName[a])
		if err != nil {
			return nil, fmt.Errorf("maintain: aux view for %s: MIN(%s) column: %w", def.Base, a, err)
		}
		t.minPos[a] = i
	}
	for _, a := range def.MaxAttrs {
		i, err := t.cols.Index(def.Base, def.MaxName[a])
		if err != nil {
			return nil, fmt.Errorf("maintain: aux view for %s: MAX(%s) column: %w", def.Base, a, err)
		}
		t.maxPos[a] = i
	}
	if def.HasCount {
		i, err := t.cols.Index(def.Base, def.CountName)
		if err != nil {
			return nil, fmt.Errorf("maintain: aux view for %s: COUNT column: %w", def.Base, err)
		}
		t.cntPos = i
	}
	return t, nil
}

// Def returns the auxiliary view definition.
func (t *AuxTable) Def() *core.AuxView { return t.def }

// Cols returns the table's schema (columns qualified with the base table).
func (t *AuxTable) Cols() ra.Schema { return t.cols }

// Len returns the number of rows (groups).
func (t *AuxTable) Len() int { return t.store.Len() }

// Bytes returns the byte-accounting size of the rows.
func (t *AuxTable) Bytes() int { return t.store.Bytes() }

// Store returns the table's row store.
func (t *AuxTable) Store() AuxStore { return t.store }

// SetStore migrates the table's rows into a replacement store and adopts
// it. The previous store is closed. Typically called right after engine
// construction (empty table, nothing to migrate), but a populated table
// moves too.
func (t *AuxTable) SetStore(s AuxStore) error {
	if err := s.Clear(t.store.Len()); err != nil {
		return err
	}
	// Migrate in sorted key order: a group's rows share their encoded
	// plain-attribute prefix, so sorting lands each group on adjacent heap
	// pages. The scoped maintenance path reads whole groups; on a paged
	// store that locality turns one group read into a few page fetches
	// instead of one per row.
	type kv struct {
		k string
		r tuple.Tuple
	}
	rows := make([]kv, 0, t.store.Len())
	err := t.store.Scan(func(k string, r tuple.Tuple) error {
		rows = append(rows, kv{k, r})
		return nil
	})
	if err != nil {
		return err
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].k < rows[j].k })
	for _, e := range rows {
		if err := s.PutString(e.k, e.r); err != nil {
			return err
		}
	}
	old := t.store
	t.store = s
	return old.Close()
}

// EnsureIndex builds a hash index on the named plain attribute.
func (t *AuxTable) EnsureIndex(attr string) error {
	if _, ok := t.idx[attr]; ok {
		return nil
	}
	pos, err := t.cols.Index(t.def.Base, attr)
	if err != nil {
		return fmt.Errorf("maintain: %s: cannot index %s: %w", t.def.Name, attr, err)
	}
	m := make(map[string][]string)
	var buf []byte
	err = t.store.Scan(func(k string, r tuple.Tuple) error {
		buf = types.Encode(buf[:0], r[pos])
		m[string(buf)] = append(m[string(buf)], k)
		return nil
	})
	if err != nil {
		return err
	}
	t.idx[attr] = m
	t.idxPos[attr] = pos
	return nil
}

func (t *AuxTable) indexAdd(row tuple.Tuple, key string) {
	for attr, m := range t.idx {
		t.probeBuf = types.Encode(t.probeBuf[:0], row[t.idxPos[attr]])
		m[string(t.probeBuf)] = append(m[string(t.probeBuf)], key)
	}
}

func (t *AuxTable) indexRemove(row tuple.Tuple, key string) {
	for attr, m := range t.idx {
		t.probeBuf = types.Encode(t.probeBuf[:0], row[t.idxPos[attr]])
		list := m[string(t.probeBuf)]
		for i, k := range list {
			if k == key {
				list[i] = list[len(list)-1]
				list = list[:len(list)-1]
				break
			}
		}
		if len(list) == 0 {
			delete(m, string(t.probeBuf))
		} else {
			m[string(t.probeBuf)] = list
		}
	}
}

// Load replaces the contents with a materialized relation (from
// core.Plan.Materialize). Existing indexes are rebuilt.
func (t *AuxTable) Load(rel *ra.Relation) error {
	if err := t.store.Clear(rel.Len()); err != nil {
		return err
	}
	for _, row := range rel.Rows {
		key := row.KeyAt(t.plainPos)
		if _, dup, err := t.store.GetString(key); err != nil {
			return err
		} else if dup {
			return fmt.Errorf("maintain: %s: duplicate group %v", t.def.Name, row)
		}
		r := row
		if t.store.InPlace() {
			r = row.Clone()
		}
		if err := t.store.PutString(key, r); err != nil {
			return err
		}
	}
	attrs := make([]string, 0, len(t.idx))
	for a := range t.idx {
		attrs = append(attrs, a)
	}
	t.idx = make(map[string]map[string][]string)
	for _, a := range attrs {
		if err := t.EnsureIndex(a); err != nil {
			return err
		}
	}
	return nil
}

// Lookup returns the rows whose plain attribute equals v, using an index
// when available. The returned slice is a scratch buffer owned by the
// table and is only valid until the next Lookup call; the tuples in it
// must not be mutated.
func (t *AuxTable) Lookup(attr string, v types.Value) []tuple.Tuple {
	if m, ok := t.idx[attr]; ok {
		t.probeBuf = types.Encode(t.probeBuf[:0], v)
		keys := m[string(t.probeBuf)]
		out := t.lookupBuf[:0]
		for _, k := range keys {
			r, ok, err := t.store.GetString(k)
			if err != nil {
				t.noteReadErr(err)
			} else if ok {
				out = append(out, r)
			}
		}
		t.lookupBuf = out
		return out
	}
	pos, err := t.cols.Index(t.def.Base, attr)
	if err != nil {
		return nil
	}
	var out []tuple.Tuple
	t.noteReadErr(t.store.Scan(func(_ string, r tuple.Tuple) error {
		if types.Identical(r[pos], v) {
			out = append(out, r)
		}
		return nil
	}))
	return out
}

// lookupInto is Lookup with caller-owned scratch: the probe key is encoded
// into keyBuf and the matching rows are appended to out; both are returned
// for reuse. Unlike Lookup it performs no writes to table state, so
// concurrent calls with distinct buffers against a quiescent table are safe
// — the property the parallel staged-apply scheduler relies on when several
// engines of one shared class read the same tables. The returned tuples are
// the stored rows and must not be mutated.
func (t *AuxTable) lookupInto(attr string, v types.Value, out []tuple.Tuple, keyBuf []byte) ([]tuple.Tuple, []byte) {
	if m, ok := t.idx[attr]; ok {
		keyBuf = types.Encode(keyBuf, v)
		for _, k := range m[string(keyBuf)] {
			r, ok, err := t.store.GetString(k)
			if err != nil {
				t.noteReadErr(err)
			} else if ok {
				out = append(out, r)
			}
		}
		return out, keyBuf
	}
	pos, err := t.cols.Index(t.def.Base, attr)
	if err != nil {
		return out, keyBuf
	}
	t.noteReadErr(t.store.Scan(func(_ string, r tuple.Tuple) error {
		if types.Identical(r[pos], v) {
			out = append(out, r)
		}
		return nil
	}))
	return out, keyBuf
}

// containsWith is Contains with a caller-owned key buffer (read-only on
// table state, like lookupInto).
func (t *AuxTable) containsWith(attr string, v types.Value, keyBuf []byte) (bool, []byte) {
	if m, ok := t.idx[attr]; ok {
		keyBuf = types.Encode(keyBuf, v)
		return len(m[string(keyBuf)]) > 0, keyBuf
	}
	var rows []tuple.Tuple
	rows, keyBuf = t.lookupInto(attr, v, nil, keyBuf)
	return len(rows) > 0, keyBuf
}

// Contains reports whether some row has the given value in attr — the
// semijoin membership test. With an index it is a single map probe.
func (t *AuxTable) Contains(attr string, v types.Value) bool {
	if m, ok := t.idx[attr]; ok {
		t.probeBuf = types.Encode(t.probeBuf[:0], v)
		return len(m[string(t.probeBuf)]) > 0
	}
	return len(t.Lookup(attr, v)) > 0
}

// Adjust applies one signed base-row contribution to the table: plainVals
// are the values of the plain attributes, sumDeltas the per-attribute
// value contributions (already signed), extrema the raw values feeding
// append-only MIN/MAX columns (nil outside the append-only relaxation),
// and dCnt is ±1. For a PSJ view this inserts or deletes the row; for a
// compressed view it adjusts the group's aggregates, creating and dropping
// groups as counts move through zero.
func (t *AuxTable) Adjust(plainVals tuple.Tuple, sumDeltas map[string]types.Value, extrema map[string]types.Value, dCnt int64) error {
	// The group key is encoded into the probe scratch buffer; a key string
	// is materialized only when a row is inserted or removed. indexAdd and
	// indexRemove clobber probeBuf, so every branch that calls them first
	// captures the key — the in-place adjust path allocates nothing beyond
	// the undo-journal entry.
	t.probeBuf = plainVals.AppendKey(t.probeBuf[:0])
	if err := t.fi.Fire(faultinject.AuxAdjustStart); err != nil {
		return err
	}
	if err := t.jnl.noteAux(t, t.probeBuf); err != nil {
		return err
	}
	row, ok, err := t.store.Get(t.probeBuf)
	if err != nil {
		return err
	}
	if !ok {
		row = nil
	}
	out, err := t.adjustCore(row, plainVals, sumDeltas, extrema, dCnt)
	if err != nil {
		return err
	}
	switch {
	case row == nil && out != nil:
		key := string(t.probeBuf)
		if err := t.store.PutString(key, out); err != nil {
			return err
		}
		t.indexAdd(out, key)
	case row != nil && out == nil:
		key := string(t.probeBuf)
		t.indexRemove(row, key)
		if err := t.store.DeleteString(key); err != nil {
			return err
		}
	case row != nil && out != nil && !t.store.InPlace():
		// A copy-out store does not see the in-place mutation of the
		// decoded image; write the adjusted row back under the same key.
		if err := t.store.Put(t.probeBuf, out); err != nil {
			return err
		}
	}
	// For an in-place store, row != nil && out != nil needs nothing: out
	// IS the stored row, adjusted in place.
	return nil
}

// adjustCore applies one signed contribution to a group image without
// touching the table's row map or indexes: row is the current image (nil =
// absent group) and the result is the image afterwards (nil = PSJ removal
// or group death). Existing compressed rows are mutated in place; fresh
// groups allocate. The caller reconciles storage — map, indexes, undo
// journal. Shared by the serial Adjust path and the sharded overlay
// pipeline, so both apply bit-identical arithmetic.
func (t *AuxTable) adjustCore(row tuple.Tuple, plainVals tuple.Tuple, sumDeltas map[string]types.Value, extrema map[string]types.Value, dCnt int64) (tuple.Tuple, error) {
	if t.def.IsPSJ {
		switch {
		case dCnt == 1 && row == nil:
			return plainVals.Clone(), nil
		case dCnt == -1 && row != nil:
			return nil, nil
		default:
			return nil, fmt.Errorf("maintain: %s: inconsistent PSJ adjustment (dCnt=%d, exists=%v) for %v",
				t.def.Name, dCnt, row != nil, plainVals)
		}
	}

	if (len(t.minPos) > 0 || len(t.maxPos) > 0) && dCnt < 0 {
		return nil, fmt.Errorf("maintain: %s: deletion reached an append-only auxiliary view", t.def.Name)
	}
	if row == nil {
		if dCnt <= 0 {
			return nil, fmt.Errorf("maintain: %s: negative adjustment to missing group %v", t.def.Name, plainVals)
		}
		row = make(tuple.Tuple, len(t.cols))
		for i, p := range t.plainPos {
			row[p] = plainVals[i]
		}
		for _, p := range t.sumPos {
			row[p] = types.Null
		}
		for _, p := range t.minPos {
			row[p] = types.Null
		}
		for _, p := range t.maxPos {
			row[p] = types.Null
		}
		row[t.cntPos] = types.Int(0)
	}
	for attr, d := range sumDeltas {
		p, ok := t.sumPos[attr]
		if !ok {
			return row, fmt.Errorf("maintain: %s: no SUM column for %s", t.def.Name, attr)
		}
		if row[p].IsNull() {
			row[p] = d
		} else {
			s, err := types.Add(row[p], d)
			if err != nil {
				return row, err
			}
			row[p] = s
		}
	}
	for a, v := range extrema {
		if p, ok := t.minPos[a]; ok {
			if row[p].IsNull() || types.Compare(v, row[p]) < 0 {
				row[p] = v
			}
		}
		if p, ok := t.maxPos[a]; ok {
			if row[p].IsNull() || types.Compare(v, row[p]) > 0 {
				row[p] = v
			}
		}
	}
	if err := t.fi.Fire(faultinject.AuxAdjustMid); err != nil {
		// Mid-operation failure: sums/extrema are already applied but the
		// count is not — exactly the torn state the undo journal repairs.
		return row, err
	}
	cnt := row[t.cntPos].AsInt() + dCnt
	if cnt < 0 {
		return row, fmt.Errorf("maintain: %s: group %v count went negative", t.def.Name, plainVals)
	}
	row[t.cntPos] = types.Int(cnt)
	if cnt == 0 {
		return nil, nil
	}
	return row, nil
}

// CheckIndexes verifies every hash index against a from-scratch rebuild:
// each stored row must appear exactly once under its value bucket, and no
// stale or duplicate entries may remain. It is the index-integrity oracle
// of the fault-injection harness (rollback must leave indexes coherent).
func (t *AuxTable) CheckIndexes() error {
	for attr, m := range t.idx {
		pos := t.idxPos[attr]
		want := make(map[string]map[string]bool, len(m))
		err := t.store.Scan(func(k string, r tuple.Tuple) error {
			vk := string(types.Encode(nil, r[pos]))
			if want[vk] == nil {
				want[vk] = make(map[string]bool)
			}
			want[vk][k] = true
			return nil
		})
		if err != nil {
			return err
		}
		for vk, list := range m {
			if len(list) == 0 {
				return fmt.Errorf("maintain: %s: index %s has an empty bucket", t.def.Name, attr)
			}
			seen := make(map[string]bool, len(list))
			for _, k := range list {
				if seen[k] {
					return fmt.Errorf("maintain: %s: index %s lists row %q twice", t.def.Name, attr, k)
				}
				seen[k] = true
				if !want[vk][k] {
					return fmt.Errorf("maintain: %s: index %s has a stale entry for row %q", t.def.Name, attr, k)
				}
			}
			if len(seen) != len(want[vk]) {
				return fmt.Errorf("maintain: %s: index %s bucket is missing %d row(s)", t.def.Name, attr, len(want[vk])-len(seen))
			}
		}
		for vk, rows := range want {
			if len(rows) > 0 && len(m[vk]) == 0 {
				return fmt.Errorf("maintain: %s: index %s is missing a bucket for %d row(s)", t.def.Name, attr, len(rows))
			}
		}
	}
	return nil
}

// Relation returns a snapshot of the current contents.
func (t *AuxTable) Relation() *ra.Relation {
	out := ra.NewRelation(t.cols)
	t.noteReadErr(t.store.Scan(func(_ string, r tuple.Tuple) error {
		out.Rows = append(out.Rows, r)
		return nil
	}))
	return out
}
