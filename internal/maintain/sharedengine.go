package maintain

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mindetail/internal/core"
	"mindetail/internal/faultinject"
	"mindetail/internal/ra"
	"mindetail/internal/types"
)

// SharedEngines maintains a class of views over ONE shared set of
// auxiliary tables (core.DeriveShared, the Section 4 "classes of summary
// data" generalization). The coordinator maintains each shared table once
// per delta; every view's engine then propagates the delta to its own
// materialized groups, re-applying its residual local conditions when it
// joins the (wider) shared tables.
type SharedEngines struct {
	sp      *core.SharedPlan
	tables  map[string]*AuxTable
	engines []*Engine
	scope   string

	// Workers bounds the number of view engines staging one delta
	// concurrently; 0 means GOMAXPROCS, 1 forces the serial path. Staging
	// is read-only on the shared tables (the coordinator maintains them
	// first, serially), so engines of the class can stage in parallel.
	Workers int

	// DisableMemo turns off cross-engine work sharing through the per-delta
	// DeltaMemo — the verification/baseline configuration.
	DisableMemo bool

	// Chooser, when set, picks the per-delta maintenance strategy for the
	// WHOLE class: Apply consults it exactly once per delta and stages
	// every engine under that one decision. Engines of a class are state
	// replicas (equal fingerprints imply bit-identical auxiliary state and
	// shared memo results), and scoped versus full recomputation can
	// differ in float accumulation order — a per-engine decision could
	// therefore split the replicas onto diverging paths. Never consult a
	// chooser from inside an engine.
	Chooser StrategyChooser

	// jnl is the coordinator's undo log for the shared auxiliary tables;
	// each view engine keeps its own log for its materialized groups, so
	// a failed Apply rolls back the tables and every already-applied view.
	jnl journal

	// met is the class's observability sink (nil = off): every view engine
	// reports into it, and Apply folds each delta's memo counters in.
	met *Metrics
}

// classSeq tags each shared class with a process-unique memo scope: engines
// of different classes must never share memoized results (their auxiliary
// tables are class-specific), even when their view fingerprints collide.
var classSeq atomic.Int64

// NewSharedEngines builds the coordinator. Call Init before Apply. A bad
// shared plan (inconsistent auxiliary definitions, unindexable attributes)
// surfaces as a returned error, not a process crash.
func NewSharedEngines(sp *core.SharedPlan) (*SharedEngines, error) {
	se := &SharedEngines{sp: sp, tables: make(map[string]*AuxTable)}
	scope := fmt.Sprintf("class%d", classSeq.Add(1))
	se.scope = scope
	for t, def := range sp.Aux {
		if def.Omitted {
			continue
		}
		at, err := NewAuxTable(def)
		if err != nil {
			return nil, fmt.Errorf("maintain: shared auxiliary table for %s: %w", t, err)
		}
		at.jnl = &se.jnl
		se.tables[t] = at
	}
	for i := range sp.Views {
		plan := sp.PlanFor(i)
		// The view's engine sees only the shared tables of its own
		// referenced tables; the coordinator maintains contents.
		viewTables := make(map[string]*AuxTable)
		for t, def := range plan.Aux {
			if def.Omitted {
				continue
			}
			viewTables[t] = se.tables[t]
		}
		eng, err := newEngine(plan, viewTables, sp.Residual[i], true)
		if err != nil {
			return nil, fmt.Errorf("maintain: shared view %s: %w", sp.Views[i].Name, err)
		}
		eng.memoScope = scope
		// Pre-build every index the lazy recomputation paths would create
		// mid-apply: parallel staging must never mutate the shared tables.
		if err := eng.prepareSharedIndexes(); err != nil {
			return nil, fmt.Errorf("maintain: shared view %s: %w", sp.Views[i].Name, err)
		}
		se.engines = append(se.engines, eng)
	}
	return se, nil
}

// Engine returns view i's engine (for snapshots and stats).
func (se *SharedEngines) Engine(i int) *Engine { return se.engines[i] }

// SetMetrics attaches (nil detaches) an observability sink to the class:
// every view engine reports stage timings and apply traces into it, and
// Apply folds each delta's DeltaMemo counters in. Not safe concurrently
// with Apply.
func (se *SharedEngines) SetMetrics(m *Metrics) {
	se.met = m
	for _, eng := range se.engines {
		eng.SetMetrics(m)
	}
}

// Views returns the number of maintained views.
func (se *SharedEngines) Views() int { return len(se.engines) }

// AuxBytes returns the byte-accounting size of the shared tables — counted
// once, however many views they serve.
func (se *SharedEngines) AuxBytes() int {
	n := 0
	for _, at := range se.tables {
		n += at.Bytes()
	}
	return n
}

// Init materializes the shared auxiliary views and every view's component
// form from base relations; afterwards the sources can be detached.
func (se *SharedEngines) Init(src func(table string) *ra.Relation) error {
	mats, err := se.sp.Materialize(src)
	if err != nil {
		return err
	}
	for t, rel := range mats {
		if err := se.tables[t].Load(rel); err != nil {
			return err
		}
	}
	for _, eng := range se.engines {
		if err := eng.initMV(src); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot returns the user-facing contents of view i (HAVING applied).
func (se *SharedEngines) Snapshot(i int) (*ra.Relation, error) {
	return se.sp.Views[i].ApplyHaving(se.engines[i].Snapshot())
}

// Apply propagates one base-table delta: the shared tables are maintained
// once, then every view's groups. Every view sees the delta against the
// same pre-delta auxiliary state, so the shared tables are updated only
// after all views have computed their impact when the delta's table is a
// non-root (dimension) table, and before when it is a root — matching the
// single-engine ordering (a view's own delta rows are used directly; only
// OTHER tables' auxiliary contents matter during the impact join).
func (se *SharedEngines) Apply(d Delta) error {
	// Determine, per view, whether the delta's table is that view's root;
	// engines never read their own delta table's auxiliary view during
	// vImpact, so a single global ordering works: update the shared table
	// for d.Table first (it is only read by engines for which d.Table is a
	// JOINED table — and for those the paper's semantics require the
	// post-local-condition membership state, which auxApply establishes
	// exactly as the single-engine path does).
	//
	// Apply is failure-atomic across the whole class: when any view's
	// engine fails, the already-applied engines and the shared tables are
	// rolled back, so no delta is ever visible in some views but not
	// others.
	//
	// The maintenance strategy is decided HERE, once for the whole class,
	// and handed unchanged to every engine. Deciding per engine (the old
	// shape of the code let each engine resolve its own fallback) would let
	// replicas of one class recompute along different paths — and scoped
	// versus full recomputation can differ in float accumulation order,
	// silently breaking the bit-identical replica invariant the memo
	// depends on.
	strat := StrategyAuto
	var shape DeltaShape
	var start time.Time
	if se.Chooser != nil {
		shape = ShapeOf(d)
		strat = NormalizeStrategy(se.Chooser.Choose(se.scope, shape, false))
		start = time.Now()
	}
	se.jnl.begin()
	at := se.tables[d.Table]
	if at != nil {
		// Reuse the first engine referencing the table for the shared
		// auxApply: the shared definition's local conditions and semijoins
		// live on the AuxTable's own definition, so any engine's expand is
		// NOT suitable — the shared table must apply the SHARED conditions.
		if err := se.auxApply(at, d); err != nil {
			se.jnl.rollback()
			return err
		}
	}
	var memo *DeltaMemo
	if !se.DisableMemo {
		memo = NewDeltaMemo()
	}
	staged := make([]bool, len(se.engines))
	errs := make([]error, len(se.engines))
	if workers := poolSize(se.Workers, len(se.engines)); workers <= 1 {
		for i, eng := range se.engines {
			if aerr := eng.StageWithPlan(d, memo, strat); aerr != nil {
				errs[i] = aerr
				break
			}
			staged[i] = true
		}
	} else {
		// Every engine stages concurrently: the shared tables are quiescent
		// (auxApply above already ran), engines read them only through their
		// private probe scratch, and each engine journals only its own
		// materialized groups.
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for i, eng := range se.engines {
			sem <- struct{}{}
			wg.Add(1)
			go func(i int, eng *Engine) {
				defer wg.Done()
				defer func() { <-sem }()
				if aerr := eng.StageWithPlan(d, memo, strat); aerr != nil {
					errs[i] = aerr
					return
				}
				staged[i] = true
			}(i, eng)
		}
		wg.Wait()
	}
	if memo != nil && se.met != nil {
		se.met.AddMemoStats(memo.Stats())
	}
	var err error
	for i, aerr := range errs {
		if aerr != nil {
			err = fmt.Errorf("maintain: shared view %s: %w", se.sp.Views[i].Name, aerr)
			break
		}
	}
	if err == nil {
		for _, eng := range se.engines {
			eng.Commit()
		}
		se.jnl.discard()
		if se.Chooser != nil {
			se.Chooser.Observe(se.scope, shape, strat, time.Since(start).Nanoseconds())
		}
		return nil
	}
	// Failing engines rolled themselves back inside StageWithMemo; undo the
	// successfully staged engines newest-first, then the shared tables, so
	// the class is bit-identical to its pre-delta state.
	for i := len(se.engines) - 1; i >= 0; i-- {
		if staged[i] {
			se.engines[i].Rollback()
		}
	}
	se.jnl.rollback()
	return err
}

// poolSize resolves a worker-pool request against the number of tasks:
// 0 means GOMAXPROCS, and the pool never exceeds the task count.
func poolSize(requested, tasks int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > tasks {
		w = tasks
	}
	if w < 1 {
		w = 1
	}
	return w
}

// SetFaultHook installs (nil removes) a fault-injection hook on every view
// engine and the shared auxiliary tables. Tests only.
func (se *SharedEngines) SetFaultHook(h *faultinject.Hook) {
	for _, eng := range se.engines {
		eng.SetFaultHook(h)
	}
	for _, at := range se.tables {
		at.fi = h
	}
}

// auxApply maintains one shared auxiliary table under a delta, applying
// the SHARED local conditions (not any single view's) and the shared
// semijoins.
func (se *SharedEngines) auxApply(at *AuxTable, d Delta) error {
	def := at.Def()
	cat := se.sp.Views[0].Catalog()
	meta := cat.Table(d.Table)
	if meta == nil {
		return fmt.Errorf("maintain: unknown table %s", d.Table)
	}

	var signed []signedRow
	for _, r := range d.Deletes {
		signed = append(signed, signedRow{row: r, s: -1})
	}
	for _, u := range d.Updates {
		signed = append(signed, signedRow{row: u.Old, s: -1}, signedRow{row: u.New, s: 1})
	}
	for _, r := range d.Inserts {
		signed = append(signed, signedRow{row: r, s: 1})
	}
	for _, sr := range signed {
		if len(sr.row) != len(meta.Attrs) {
			return fmt.Errorf("maintain: delta row for %s has %d values, want %d",
				d.Table, len(sr.row), len(meta.Attrs))
		}
	}

	// Shared local conditions.
	if len(def.Local) > 0 {
		cols := make(ra.Schema, len(meta.Attrs))
		for i, a := range meta.Attrs {
			cols[i] = ra.Col{Table: d.Table, Name: a.Name}
		}
		pred, err := ra.BindAll(def.Local, cols)
		if err != nil {
			return err
		}
		kept := signed[:0]
		for _, sr := range signed {
			ok, err := pred(sr.row)
			if err != nil {
				return err
			}
			if ok {
				kept = append(kept, sr)
			}
		}
		signed = kept
	}

	pos := func(attr string) int { return meta.AttrIndex(attr) }
	var plainPos []int
	for _, a := range def.PlainAttrs {
		plainPos = append(plainPos, pos(a))
	}
	for _, sr := range signed {
		pass := true
		for _, sj := range def.SemiJoins {
			child := se.tables[sj.Right]
			if child == nil || !child.Contains(sj.RightAttr, sr.row[pos(sj.LeftAttr)]) {
				pass = false
				break
			}
		}
		if !pass {
			continue
		}
		plainVals := sr.row.Project(plainPos)
		sumDeltas := make(map[string]types.Value, len(def.SumAttrs))
		for _, a := range def.SumAttrs {
			dv, err := types.Mul(types.Int(sr.s), sr.row[pos(a)])
			if err != nil {
				return err
			}
			sumDeltas[a] = dv
		}
		if err := at.Adjust(plainVals, sumDeltas, nil, sr.s); err != nil {
			return err
		}
	}
	return nil
}
