package maintain

import (
	"strings"
	"testing"

	"mindetail/internal/core"
	"mindetail/internal/gpsj"
	"mindetail/internal/ra"
	"mindetail/internal/sqlparse"
	"mindetail/internal/storage"
	"mindetail/internal/tuple"
	"mindetail/internal/types"
)

// appendOnlyFixture builds an engine over a DeriveAppendOnly plan.
func appendOnlyFixture(t *testing.T, viewSQL string) *fixture {
	t.Helper()
	cat := catalogFromDDL(t, retailDDL)
	s, err := sqlparse.Parse(viewSQL)
	if err != nil {
		t.Fatal(err)
	}
	v, err := gpsj.FromSelect(cat, "v", s.(*sqlparse.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.DeriveAppendOnly(v)
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{t: t, cat: cat, db: storage.NewDB(cat), view: v, saleID: 1000}
	f.engine = mustEngine(t, p)
	f.engine.UseNeedSets = true
	return f
}

// minMaxSQL groups on a dimension attribute so the root auxiliary view is
// needed (time is g-annotated, putting sale in Need(time)).
const minMaxSQL = `
	SELECT time.month, MIN(sale.price) AS lo, MAX(sale.price) AS hi,
	       SUM(sale.price) AS total, COUNT(*) AS cnt
	FROM sale, time WHERE sale.timeid = time.id AND time.year = 1997
	GROUP BY time.month`

// TestAppendOnlyDerivationCompressesMinMax: under the Section 4 relaxation
// MIN/MAX compress into min_/max_ columns and price is NOT stored plain, so
// the auxiliary view has one row per productid instead of one per distinct
// (productid, price).
func TestAppendOnlyDerivationCompressesMinMax(t *testing.T) {
	f := appendOnlyFixture(t, minMaxSQL)
	x := f.engine.Plan().Aux["sale"]
	if !f.engine.Plan().AppendOnly {
		t.Fatal("plan not marked append-only")
	}
	if got := strings.Join(x.PlainAttrs, ","); got != "timeid" {
		t.Errorf("plain = %s (price must compress away)", got)
	}
	if len(x.MinAttrs) != 1 || len(x.MaxAttrs) != 1 || len(x.SumAttrs) != 1 {
		t.Errorf("compression columns = min:%v max:%v sum:%v", x.MinAttrs, x.MaxAttrs, x.SumAttrs)
	}
	sql := x.SQL()
	for _, want := range []string{"MIN(price) AS min_price", "MAX(price) AS max_price", "SUM(price) AS sum_price"} {
		if !strings.Contains(sql, want) {
			t.Errorf("SQL missing %q:\n%s", want, sql)
		}
	}
}

func TestAppendOnlyMaintenanceStream(t *testing.T) {
	f := appendOnlyFixture(t, minMaxSQL)
	f.seedRetail()
	f.initEngine()
	f.insertSale(1, 100, 7, 500)
	f.insertSale(1, 100, 7, 0.25)
	f.insertSale(2, 102, 7, 1)
	f.insertSale(3, 101, 8, 77)
	// The auxiliary view must stay one row per 1997 timeid with sales.
	if got := f.engine.Aux("sale").Len(); got != 3 {
		t.Errorf("aux rows = %d, want 3 (one per timeid)", got)
	}
	// No recomputation should ever have been needed.
	if f.engine.Stats().GroupRecomputes != 0 {
		t.Errorf("append-only MIN/MAX must maintain incrementally, got %d recomputes",
			f.engine.Stats().GroupRecomputes)
	}
}

func TestAppendOnlyRejectsDeletesAndUpdates(t *testing.T) {
	f := appendOnlyFixture(t, minMaxSQL)
	f.seedRetail()
	if err := f.engine.Init(func(tb string) *ra.Relation {
		return ra.FromTable(f.db.Table(tb), tb)
	}); err != nil {
		t.Fatal(err)
	}
	row := f.db.Table("sale").Get(types.Int(1))
	err := f.engine.Apply(Delta{Table: "sale", Deletes: []tuple.Tuple{row.Clone()}})
	if err == nil || !strings.Contains(err.Error(), "append-only") {
		t.Errorf("delete accepted on append-only plan: %v", err)
	}
	err = f.engine.Apply(Delta{Table: "sale", Updates: []Update{{Old: row.Clone(), New: row.Clone()}}})
	if err == nil || !strings.Contains(err.Error(), "append-only") {
		t.Errorf("update accepted on append-only plan: %v", err)
	}
}

// TestAppendOnlyEliminationRelaxed: MIN/MAX no longer block elimination
// under the append-only relaxation, so a key-grouped view with MAX can omit
// the fact auxiliary view entirely.
func TestAppendOnlyEliminationRelaxed(t *testing.T) {
	viewSQL := `SELECT product.id, MAX(price) AS hi, COUNT(*) AS cnt
		FROM sale, product WHERE sale.productid = product.id
		GROUP BY product.id`
	cat := catalogFromDDL(t, retailDDL)
	s, err := sqlparse.Parse(viewSQL)
	if err != nil {
		t.Fatal(err)
	}
	v, err := gpsj.FromSelect(cat, "v", s.(*sqlparse.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	// Standard derivation keeps the fact auxiliary view.
	std, err := core.Derive(v)
	if err != nil {
		t.Fatal(err)
	}
	if std.Aux["sale"].Omitted {
		t.Fatal("standard derivation must keep sale (MAX blocks elimination)")
	}
	// Append-only derivation omits it.
	ao, err := core.DeriveAppendOnly(v)
	if err != nil {
		t.Fatal(err)
	}
	if !ao.Aux["sale"].Omitted {
		t.Fatal("append-only derivation must omit sale")
	}
	if !strings.Contains(ao.Aux["sale"].OmitReason, "append-only") {
		t.Errorf("omit reason = %q", ao.Aux["sale"].OmitReason)
	}

	// And maintenance works: the MAX is raised from insert deltas alone.
	f := &fixture{t: t, cat: cat, db: storage.NewDB(cat), view: v, saleID: 1000}
	f.engine = mustEngine(t, ao)
	f.seedRetail()
	f.initEngine()
	f.insertSale(1, 100, 7, 500)
	f.insertSale(2, 101, 8, 0.5)
}

// TestAppendOnlyDistinctStillBlocks: DISTINCT aggregates are not insert-
// maintainable from the aggregate value alone, so they still force plain
// storage and still block elimination.
func TestAppendOnlyDistinctStillBlocks(t *testing.T) {
	viewSQL := `SELECT product.id, COUNT(DISTINCT sale.storeid) AS stores, COUNT(*) AS cnt
		FROM sale, product WHERE sale.productid = product.id
		GROUP BY product.id`
	cat := catalogFromDDL(t, retailDDL)
	s, err := sqlparse.Parse(viewSQL)
	if err != nil {
		t.Fatal(err)
	}
	v, err := gpsj.FromSelect(cat, "v", s.(*sqlparse.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.DeriveAppendOnly(v)
	if err != nil {
		t.Fatal(err)
	}
	if p.Aux["sale"].Omitted {
		t.Error("DISTINCT must still block elimination under append-only")
	}
	if !contains(p.Aux["sale"].PlainAttrs, "storeid") {
		t.Errorf("DISTINCT argument must stay plain: %v", p.Aux["sale"].PlainAttrs)
	}

	// Maintenance with inserts stays exact (recompute path over the aux).
	f := &fixture{t: t, cat: cat, db: storage.NewDB(cat), view: v, saleID: 1000}
	f.engine = mustEngine(t, p)
	f.seedRetail()
	f.initEngine()
	f.insertSale(1, 100, 8, 3)
	f.insertSale(1, 100, 8, 4)
	f.insertSale(2, 102, 7, 5)
}

// TestAppendOnlyReconstruction: the reconstruction query re-aggregates the
// compressed MIN/MAX columns (they are distributive).
func TestAppendOnlyReconstruction(t *testing.T) {
	f := appendOnlyFixture(t, minMaxSQL)
	f.seedRetail()
	f.initEngine()
	f.insertSale(1, 100, 7, 500)
	p := f.engine.Plan()
	rec, err := p.Reconstruction()
	if err != nil {
		t.Fatal(err)
	}
	rels := make(map[string]*ra.Relation)
	for _, tb := range p.View.Tables {
		if at := f.engine.Aux(tb); at != nil {
			rels[tb] = at.Relation()
		}
	}
	got, err := rec.Eval(rels)
	if err != nil {
		t.Fatal(err)
	}
	want, err := f.view.Evaluate(f.db)
	if err != nil {
		t.Fatal(err)
	}
	if !ra.EqualBag(got, want) {
		t.Errorf("reconstruction diverged:\n%s\nwant:\n%s", got.Format(), want.Format())
	}
}

// TestAppendOnlySingleTableFullyEliminated: a single-table MIN/MAX view
// needs NO auxiliary data at all under the append-only relaxation — the
// ultimate minimization.
func TestAppendOnlySingleTableFullyEliminated(t *testing.T) {
	viewSQL := `SELECT sale.productid, MIN(sale.price) AS lo, MAX(sale.price) AS hi,
		SUM(sale.price) AS total, COUNT(*) AS cnt
		FROM sale GROUP BY sale.productid`
	f := appendOnlyFixture(t, viewSQL)
	if f.engine.Aux("sale") != nil {
		t.Fatal("append-only single-table MIN/MAX view must need no auxiliary data")
	}
	f.seedRetail()
	f.initEngine()
	f.insertSale(1, 100, 7, 500)
	f.insertSale(1, 100, 7, 0.25)
	f.insertSale(2, 102, 7, 1)
	if f.engine.AuxBytes() != 0 {
		t.Errorf("aux bytes = %d, want 0", f.engine.AuxBytes())
	}
}
