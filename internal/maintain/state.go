package maintain

import (
	"fmt"
	"sort"

	"mindetail/internal/ra"
	"mindetail/internal/tuple"
)

// State is the serializable runtime state of an engine: the auxiliary
// table contents and the materialized view's component rows (including the
// hidden group count). Together with the view definition it is everything
// needed to resume maintenance after a restart — the sources are not part
// of it, by construction.
type State struct {
	// Aux maps base tables to their auxiliary relation contents.
	Aux map[string]*ra.Relation
	// MV holds the component-form rows of the maintained view; its columns
	// are positional (the component layout is determined by the view
	// definition) with the hidden count last.
	MV *ra.Relation
}

// MVArity returns the expected component-row width for the engine's view
// (components plus the hidden count).
func (e *Engine) MVArity() int { return len(e.mv.comps) + 1 }

// ExportState captures the engine's current state.
func (e *Engine) ExportState() *State {
	st := &State{Aux: make(map[string]*ra.Relation, len(e.aux))}
	for t, at := range e.aux {
		st.Aux[t] = at.Relation().Clone()
	}
	cols := make(ra.Schema, e.MVArity())
	for i := range cols {
		cols[i] = ra.Col{Name: fmt.Sprintf("c%d", i)}
	}
	mv := ra.NewRelation(cols)
	keys := make([]string, 0, len(e.mv.rows))
	for k := range e.mv.rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		mv.Rows = append(mv.Rows, e.mv.rows[k].Clone())
	}
	st.MV = mv
	return st
}

// ImportState replaces the engine's state with a previously exported one.
// The state must come from an engine over the same view definition; row
// widths are validated.
func (e *Engine) ImportState(st *State) error {
	for t, at := range e.aux {
		rel, ok := st.Aux[t]
		if !ok {
			return fmt.Errorf("maintain: state missing auxiliary view for %s", t)
		}
		if rel.Len() > 0 && len(rel.Rows[0]) != len(at.Cols()) {
			return fmt.Errorf("maintain: auxiliary state for %s has %d columns, want %d",
				t, len(rel.Rows[0]), len(at.Cols()))
		}
		cp := rel.Clone()
		cp.Cols = at.Cols()
		if err := at.Load(cp); err != nil {
			return err
		}
	}
	for t := range st.Aux {
		if e.aux[t] == nil {
			return fmt.Errorf("maintain: state has auxiliary view for %s which this plan omits", t)
		}
	}
	rows := make(map[string]tuple.Tuple, st.MV.Len())
	for _, row := range st.MV.Rows {
		if len(row) != e.MVArity() {
			return fmt.Errorf("maintain: view state row has %d components, want %d", len(row), e.MVArity())
		}
		r := row.Clone()
		rows[e.mv.keyOf(r)] = r
	}
	e.mv.rows = rows
	if e.mv.global() && len(rows) == 0 {
		e.mv.setRow(e.mv.blank(nil))
	}
	return nil
}
