package maintain

import (
	"fmt"
	"sync/atomic"
	"time"

	"mindetail/internal/core"
	"mindetail/internal/faultinject"
	"mindetail/internal/gpsj"
	"mindetail/internal/joingraph"
	"mindetail/internal/ra"
	"mindetail/internal/tuple"
	"mindetail/internal/types"
)

// Delta is a change to one base table, expressed as full tuples (the usual
// form change logs and triggers deliver). Updates carry both images; the
// engine propagates them as a deletion followed by an insertion
// (Section 2.1).
type Delta struct {
	Table   string
	Inserts []tuple.Tuple
	Deletes []tuple.Tuple
	Updates []Update
}

// Update is one in-place row update with both images.
type Update struct {
	Old, New tuple.Tuple
}

// Stats counts the work the engine performs, for the benchmark harness.
// When maintenance work is shared through a DeltaMemo, probe and detail
// counters attribute the shared computation to the engine that performed
// it; consumers of a memoized result count only their residual work.
type Stats struct {
	DeltasApplied   int
	DetailRows      int // delta detail rows produced by joining
	AuxLookups      int // index probes into auxiliary tables
	GroupAdjusts    int // incremental CSMAS group adjustments
	GroupRecomputes int // groups repaired by partial recomputation
}

// engineStats is the engine-internal counter set. The counters are atomic
// so Stats() can be read while the parallel group-recompute pool or the
// warehouse propagation scheduler is driving the engine; hot loops
// accumulate locally and publish once per batch, so the atomics cost
// nothing per row.
type engineStats struct {
	deltasApplied   atomic.Int64
	detailRows      atomic.Int64
	auxLookups      atomic.Int64
	groupAdjusts    atomic.Int64
	groupRecomputes atomic.Int64
}

func (s *engineStats) snapshot() Stats {
	return Stats{
		DeltasApplied:   int(s.deltasApplied.Load()),
		DetailRows:      int(s.detailRows.Load()),
		AuxLookups:      int(s.auxLookups.Load()),
		GroupAdjusts:    int(s.groupAdjusts.Load()),
		GroupRecomputes: int(s.groupRecomputes.Load()),
	}
}

func (s *engineStats) reset() {
	s.deltasApplied.Store(0)
	s.detailRows.Store(0)
	s.auxLookups.Store(0)
	s.groupAdjusts.Store(0)
	s.groupRecomputes.Store(0)
}

// Engine maintains a materialized GPSJ view and its auxiliary views under
// base-table deltas, never touching the sources after Init.
type Engine struct {
	plan  *core.Plan
	view  *gpsj.View
	graph *joingraph.Graph

	aux map[string]*AuxTable
	mv  *MaterializedView

	// UseNeedSets restricts delta joins to the minimal set of auxiliary
	// views required (the Need-set optimization, Definition 3/4); when
	// false every referenced table is joined.
	UseNeedSets bool

	// ForceFullRecompute disables the delta-scoped group recomputation
	// path: affected groups are repaired from the full auxiliary join (the
	// pre-optimization behavior, kept as a verification oracle and as the
	// fallback for shapes the scoped path cannot seed).
	ForceFullRecompute bool

	// Workers bounds the group-recomputation worker pool; 0 means
	// GOMAXPROCS. Parallelism engages only above a row threshold, so small
	// deltas never pay goroutine overhead.
	Workers int

	// Shards, when > 1, fans the per-group apply work — auxiliary-table
	// adjustment, the delta-detail join, and the materialized-view
	// adjustment loop — across that many shard workers partitioned by group
	// key (see shard.go). Results are merged and installed serially in
	// first-touch order, so a sharded apply is equivalent to the serial one.
	// Engages only for deltas of at least ShardMinRows signed rows.
	Shards int

	// ShardMinRows is the row count below which a sharded engine stays
	// serial; 0 selects defaultShardMinRows. Small deltas must not pay
	// partitioning and goroutine overhead.
	ShardMinRows int

	// filtering marks non-root tables whose auxiliary view can exclude
	// detail rows (local conditions, or a join edge without referential
	// integrity, anywhere in the subtree); these must always participate
	// in delta joins to decide view membership.
	filtering map[string]bool

	// residual maps tables to local conditions of this view that its
	// (shared) auxiliary views do not enforce; delta joins and partial
	// recomputation re-apply them (shared-plan mode, Section 4 classes).
	residual map[string][]ra.Comparison

	// skipAux suppresses auxiliary-table maintenance in Apply: a shared
	// coordinator maintains the tables once for all views.
	skipAux bool

	// tableSet is view.Tables as a set: Apply-path membership tests are
	// O(1) instead of a per-delta slice scan.
	tableSet map[string]bool

	// Per-table caches for the Apply hot path: qualified base schemas,
	// view-relevant attribute positions (expand's no-op detection), bound
	// local-condition predicates, and auxApply projection plans. All are
	// derived from immutable plan metadata, so caching is safe.
	baseColsC  map[string]ra.Schema
	relPosC    map[string][]int
	localPredC map[string]func(tuple.Tuple) (bool, error)
	auxPlanC   map[string]*auxApplyPlan

	// Scratch buffers reused across Apply calls (the engine is not safe
	// for concurrent Apply, so a single set suffices). lkKeyBuf and
	// lkRowBuf are the engine's private auxiliary-probe scratch: engines of
	// a shared class probe the same tables concurrently during parallel
	// staging, so probes must never touch the tables' own buffers.
	keyBuf    []byte
	plainBuf  tuple.Tuple
	sumDeltaC map[string]types.Value
	extremaC  map[string]types.Value
	lkKeyBuf  []byte
	lkRowBuf  []tuple.Tuple

	// memo and memoKey are set for the duration of one StageWithMemo call;
	// memoScope names the propagation domain whose same-fingerprint engines
	// are state replicas ("solo" for a warehouse's standalone engines, a
	// per-class tag for shared classes).
	memo      *DeltaMemo
	memoKey   string
	memoScope string

	// strategy is the per-apply maintenance strategy override, set for the
	// duration of one StageWithPlan call (StrategyAuto between applies). It
	// participates in the memo key: two engines may share memoized results
	// only when they recompute along the same path.
	strategy Strategy

	// jnl is the per-apply undo log: every mutation of the auxiliary
	// tables or the materialized view records the affected group's prior
	// image, and any error during apply rolls the log back so the engine
	// is bit-identical to its pre-delta state (failure atomicity).
	jnl journal

	// fi is the fault-injection hook (nil in production).
	fi *faultinject.Hook

	stats engineStats

	// met is the observability sink (nil = instrumentation off, not even
	// clock reads); stageNs accumulates per-stage nanoseconds across one
	// apply for the trace event. The engine is driven by one goroutine, so
	// the accumulator needs no synchronization even when staging runs under
	// the warehouse's parallel propagation pool.
	met     *Metrics
	stageNs [numStages]int64
}

// auxApplyPlan caches the base-row positions auxApply projects from, so the
// per-delta work is pure array indexing.
type auxApplyPlan struct {
	plainPos []int // base positions of the aux view's plain attributes
	sumPos   []int // base positions of def.SumAttrs, in order
	sjPos    []int // base position of each semijoin's left attribute
	minPos   []int // base positions of def.MinAttrs, in order
	maxPos   []int // base positions of def.MaxAttrs, in order
}

// NewEngine creates an engine for a derived plan. Call Init before Apply.
// A plan whose auxiliary definitions are inconsistent with the catalog (a
// stored attribute missing from its schema, an unindexable key) surfaces as
// a returned error, never a panic.
func NewEngine(plan *core.Plan) (*Engine, error) {
	tables := make(map[string]*AuxTable)
	for t, def := range plan.Aux {
		if def.Omitted {
			continue
		}
		at, err := NewAuxTable(def)
		if err != nil {
			return nil, fmt.Errorf("maintain: auxiliary table for %s: %w", t, err)
		}
		tables[t] = at
	}
	return newEngine(plan, tables, nil, false)
}

// newEngine wires an engine over the given auxiliary tables. With shared
// tables, residual carries the view's unenforced local conditions and
// skipAux leaves table maintenance to the coordinator.
func newEngine(plan *core.Plan, tables map[string]*AuxTable, residual map[string][]ra.Comparison, skipAux bool) (*Engine, error) {
	e := &Engine{
		plan:        plan,
		view:        plan.View,
		graph:       plan.Graph,
		aux:         tables,
		mv:          NewMaterializedView(plan.View),
		UseNeedSets: true,
		filtering:   make(map[string]bool),
		residual:    residual,
		skipAux:     skipAux,
		tableSet:    make(map[string]bool, len(plan.View.Tables)),
		baseColsC:   make(map[string]ra.Schema),
		relPosC:     make(map[string][]int),
		localPredC:  make(map[string]func(tuple.Tuple) (bool, error)),
		auxPlanC:    make(map[string]*auxApplyPlan),
		sumDeltaC:   make(map[string]types.Value),
		extremaC:    make(map[string]types.Value),
		memoScope:   "solo",
	}
	for _, t := range plan.View.Tables {
		e.tableSet[t] = true
	}
	if !skipAux {
		// Exclusive tables journal into this engine's undo log; shared
		// tables are journaled by their coordinator (SharedEngines).
		for _, at := range e.aux {
			at.jnl = &e.jnl
		}
	}
	// Indexes: each table's key (semijoin membership and downward joins),
	// and each referencing attribute (upward joins).
	for t, at := range e.aux {
		key := e.view.Catalog().Table(t).Key
		if contains(at.def.PlainAttrs, key) {
			if err := at.EnsureIndex(key); err != nil {
				return nil, fmt.Errorf("maintain: index on %s.%s: %w", t, key, err)
			}
		}
		for child, j := range e.graph.EdgeTo {
			_ = child
			if j.Left == t && contains(at.def.PlainAttrs, j.LeftAttr) {
				if err := at.EnsureIndex(j.LeftAttr); err != nil {
					return nil, fmt.Errorf("maintain: index on %s.%s: %w", t, j.LeftAttr, err)
				}
			}
		}
	}
	// Filtering analysis, bottom-up.
	var filt func(t string) bool
	filt = func(t string) bool {
		f := len(e.view.Local[t]) > 0 || len(e.residual[t]) > 0
		if j, ok := e.graph.EdgeTo[t]; ok {
			if !e.view.Catalog().HasRI(j.Left, j.LeftAttr, j.Right) {
				f = true
			}
		}
		for _, c := range e.graph.Children[t] {
			if filt(c) {
				f = true
			}
		}
		e.filtering[t] = f
		return f
	}
	filt(e.graph.Root)
	delete(e.filtering, e.graph.Root) // root membership is its own local conds, applied to deltas directly
	return e, nil
}

// Plan returns the derivation plan the engine maintains.
func (e *Engine) Plan() *core.Plan { return e.plan }

// Aux returns the auxiliary table for a base table, or nil when omitted.
func (e *Engine) Aux(table string) *AuxTable { return e.aux[table] }

// Stats returns a copy of the work counters. Safe to call while the engine
// is applying a delta (the counters are atomic); the copy is a consistent
// point-in-time reading of each counter, not of the set as a whole.
func (e *Engine) Stats() Stats { return e.stats.snapshot() }

// ResetStats zeroes the work counters.
func (e *Engine) ResetStats() { e.stats.reset() }

// References reports whether the engine's view reads the given base table —
// the warehouse scheduler uses it to invalidate only the snapshots of views
// a delta can actually change.
func (e *Engine) References(table string) bool { return e.tableSet[table] }

// SetMemoScope names the engine's propagation domain for cross-engine work
// sharing: two engines consume each other's memoized results only when their
// scopes AND plan fingerprints match. The scope must guarantee the replica
// invariant — equal-fingerprint engines in one scope hold bit-identical
// auxiliary state (the warehouse tags engines with their creation epoch, so
// views initialized from different source states never share). Must not be
// changed while a staged apply is outstanding.
func (e *Engine) SetMemoScope(scope string) { e.memoScope = scope }

// Snapshot returns the user-facing contents of the maintained view.
func (e *Engine) Snapshot() *ra.Relation { return e.mv.Snapshot() }

// Groups returns the number of maintained view groups.
func (e *Engine) Groups() int { return e.mv.Groups() }

// AuxBytes returns the total byte-accounting size of all auxiliary tables.
func (e *Engine) AuxBytes() int {
	n := 0
	for _, at := range e.aux {
		n += at.Bytes()
	}
	return n
}

// ViewBytes returns the byte-accounting size of the maintained view.
func (e *Engine) ViewBytes() int { return e.mv.Bytes() }

// Init materializes the auxiliary views and the view's component form from
// base-table relations. This is the only moment the engine reads base data;
// afterwards the sources can be detached.
func (e *Engine) Init(src func(table string) *ra.Relation) error {
	mats, err := e.plan.Materialize(src)
	if err != nil {
		return err
	}
	for t, rel := range mats {
		if err := e.aux[t].Load(rel); err != nil {
			return err
		}
	}
	return e.initMV(src)
}

// initMV computes the view's component form from base relations.
func (e *Engine) initMV(src func(table string) *ra.Relation) error {
	detailNode, err := e.view.DetailPlan(src)
	if err != nil {
		return err
	}
	detail, err := detailNode.Eval()
	if err != nil {
		return err
	}
	ctx := detailCtx{rel: detail, mPos: -1}
	groups, err := e.computeGroups(ctx, nil)
	if err != nil {
		return err
	}
	e.mv.rows = groups
	if e.mv.global() && len(groups) == 0 {
		e.mv.setRow(e.mv.blank(nil))
	}
	return nil
}

type signedRow struct {
	row tuple.Tuple
	s   int64
}

// Apply propagates one base-table delta to the auxiliary views and the
// materialized view. Deltas must reflect legal source transitions
// (referential integrity preserved, updates only to mutable attributes).
//
// Apply is failure-atomic: on any error the engine's auxiliary tables and
// materialized view are bit-identical to their pre-delta state (the work
// counters in Stats are diagnostic and are not rolled back).
func (e *Engine) Apply(d Delta) error {
	if err := e.ApplyStaged(d); err != nil {
		return err
	}
	e.Commit()
	return nil
}

// ApplyStaged applies the delta like Apply but retains the undo journal on
// success so a coordinator (the warehouse, or a shared-plan driver) can
// still Rollback this engine if a *later* engine in the same logical
// transaction fails. On error the engine has already rolled itself back.
// Exactly one staged apply may be outstanding; finish it with Commit or
// Rollback before the next ApplyStaged.
func (e *Engine) ApplyStaged(d Delta) error { return e.StageWithMemo(d, nil) }

// StageWithMemo is ApplyStaged with cross-engine work sharing: when m is
// non-nil, delta expansion, local filtering, the delta-detail join, and
// group recomputation are computed once per distinct plan signature across
// every engine staging the same delta through the same memo, and the shared
// results are consumed read-only (see DeltaMemo for the soundness
// argument). Each engine may be driven by at most one goroutine, but
// different engines of one propagation may stage concurrently.
//
// With a Metrics sink attached (SetMetrics), each apply records its
// end-to-end latency, journal depth, and a trace event carrying the
// per-stage timings; deltas for unreferenced tables bypass even the clock
// reads.
func (e *Engine) StageWithMemo(d Delta, m *DeltaMemo) error {
	return e.StageWithPlan(d, m, StrategyAuto)
}

// StageWithPlan is StageWithMemo under an explicit per-delta strategy (see
// Strategy). The strategy holds for this one staged apply only; the
// engine-level knobs (ForceFullRecompute, ShardMinRows) are untouched.
// Coordinators of replica engines must pass the same strategy to each.
func (e *Engine) StageWithPlan(d Delta, m *DeltaMemo, s Strategy) error {
	e.strategy = NormalizeStrategy(s)
	defer func() { e.strategy = StrategyAuto }()
	if e.met == nil || !e.tableSet[d.Table] {
		return e.stageWithMemo(d, m)
	}
	start := time.Now()
	for i := range e.stageNs {
		e.stageNs[i] = 0
	}
	err := e.stageWithMemo(d, m)
	e.recordApply(d, time.Since(start).Nanoseconds(), err)
	return err
}

// stageWithMemo is the staging body behind StageWithMemo.
func (e *Engine) stageWithMemo(d Delta, m *DeltaMemo) error {
	t := d.Table
	if !e.tableSet[t] {
		return nil // table not referenced by the view
	}
	// Validate-first pass: every check that needs no engine state mutation
	// runs here, so the common failure modes (row arity, append-only
	// violations, predicate bind errors, rekey legality) reject the delta
	// before the undo journal has anything to record.
	if e.plan.AppendOnly && (len(d.Deletes) > 0 || len(d.Updates) > 0) {
		return fmt.Errorf("maintain: plan for view %s was derived append-only (Section 4); deletions and updates are not maintainable", e.view.Name)
	}
	for bt, at := range e.aux {
		if serr := at.store.Err(); serr != nil {
			// A wedged out-of-core store (sticky I/O failure, possibly from
			// an earlier rollback) must reject deltas before the journal
			// records anything.
			return fmt.Errorf("maintain: auxiliary store for %s is wedged: %w", bt, serr)
		}
	}
	e.memo = m
	if m != nil {
		if e.plan.Fingerprint() == "" {
			// A plan without signatures cannot be told apart from other
			// unsignatured plans; never share work for it.
			e.memo = nil
		} else {
			e.memoKey = e.buildMemoKey()
		}
	}
	defer func() { e.memo, e.memoKey = nil, "" }()
	signed, err := e.expandFiltered(d) // validates row arity, surfaces predicate bind errors
	if err != nil {
		return err
	}
	if e.aux[e.graph.Root] == nil && t != e.graph.Root && e.graph.Annot[t] != joingraph.AnnotK {
		// The elimination conditions (Section 3.3) guarantee every
		// dimension is k-annotated when the root is omitted; reject
		// before mutating anything if the invariant is broken.
		return fmt.Errorf("maintain: root auxiliary view omitted but %s is not key-grouped; cannot maintain", t)
	}
	if err := e.fi.Fire(faultinject.EngineValidated); err != nil {
		return err
	}
	e.stats.deltasApplied.Add(1)
	e.jnl.begin()
	if err := e.applyMutations(t, d, signed); err != nil {
		e.rollbackJournal(err)
		e.auxReadErr() // the apply is already failing; drop the notes
		return err
	}
	if err := e.auxReadErr(); err != nil {
		// Lookup and its buffer-reuse variants have no error return; a
		// store read that failed mid-apply silently dropped rows from the
		// scoped recomputation, so the staged result cannot be trusted.
		// For shared tables the note may belong to a concurrently staging
		// engine of the same class — failing here is still sound, because
		// one failed engine aborts (and rolls back) the whole propagation.
		e.rollbackJournal(err)
		return err
	}
	return nil
}

// auxReadErr drains the pending read failure of every auxiliary table,
// returning the first one found.
func (e *Engine) auxReadErr() error {
	var first error
	for bt, at := range e.aux {
		if err := at.takeReadErr(); err != nil && first == nil {
			first = fmt.Errorf("maintain: reading auxiliary store for %s: %w", bt, err)
		}
	}
	return first
}

// Commit discards the undo journal of a successful staged apply.
func (e *Engine) Commit() {
	if e.met == nil || !e.jnl.recording {
		// No sink, or nothing staged (the delta's table was unreferenced):
		// commit is a free no-op — don't pollute the commit histogram.
		e.jnl.discard()
		return
	}
	start := time.Now()
	e.jnl.discard()
	e.met.stages[StageCommit].Observe(time.Since(start).Nanoseconds())
}

// Rollback undoes a successful staged apply, restoring the engine to its
// state before the corresponding ApplyStaged call.
func (e *Engine) Rollback() {
	if !e.jnl.recording {
		e.jnl.rollback() // nothing staged; free no-op
		return
	}
	e.rollbackJournal(nil)
}

// SetAuxStores swaps every auxiliary table's row storage through a factory
// keyed by base table (see AuxStore; internal/pager provides the paged
// backend). Existing rows migrate, so it may be called before or after
// Init. Engines of a shared class do not own their tables and reject the
// call — swap through the coordinator instead.
func (e *Engine) SetAuxStores(factory func(table string) (AuxStore, error)) error {
	if e.skipAux {
		return fmt.Errorf("maintain: engine %s shares its auxiliary tables; set stores on the coordinator", e.view.Name)
	}
	for t, at := range e.aux {
		s, err := factory(t)
		if err != nil {
			return fmt.Errorf("maintain: auxiliary store for %s: %w", t, err)
		}
		if err := at.SetStore(s); err != nil {
			return fmt.Errorf("maintain: auxiliary store for %s: %w", t, err)
		}
	}
	return nil
}

// Close releases the auxiliary tables' row stores (a no-op for the
// in-memory backend; the paged backend flushes and closes its page file).
// The engine must not be used afterwards.
func (e *Engine) Close() error {
	var first error
	if e.skipAux {
		return nil // shared tables are closed by their coordinator
	}
	for _, at := range e.aux {
		if err := at.store.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// SetFaultHook installs (nil removes) a fault-injection hook on the engine
// and its exclusively-owned auxiliary tables. Shared tables are hooked by
// their coordinator. Not safe concurrently with Apply; tests only.
func (e *Engine) SetFaultHook(h *faultinject.Hook) {
	e.fi = h
	if e.skipAux {
		return
	}
	for _, at := range e.aux {
		at.fi = h
		// Out-of-core stores carry their own injection points (eviction,
		// page flush); forward the hook so one sweep covers them too.
		if fh, ok := at.store.(interface{ SetFaultHook(*faultinject.Hook) }); ok {
			fh.SetFaultHook(h)
		}
	}
}

// applyMutations is the mutation region of one apply: everything it
// touches is journaled, and the caller rolls the journal back on error.
func (e *Engine) applyMutations(t string, d Delta, signed []signedRow) error {
	if at := e.aux[t]; at != nil && !e.skipAux {
		if err := e.auxApply(at, signed); err != nil {
			return err
		}
	}
	if err := e.fi.Fire(faultinject.EngineAuxApplied); err != nil {
		return err
	}
	return e.vImpact(t, d, signed)
}

// expand normalizes a delta into signed full rows: updates become a
// deletion of the old image and an insertion of the new one. Update pairs
// whose images agree on every attribute relevant to the view (preserved or
// condition attributes) are dropped as no-ops.
func (e *Engine) expand(d Delta) ([]signedRow, error) {
	meta := e.view.Catalog().Table(d.Table)
	check := func(row tuple.Tuple) error {
		if len(row) != len(meta.Attrs) {
			return fmt.Errorf("maintain: delta row for %s has %d values, want %d", d.Table, len(row), len(meta.Attrs))
		}
		return nil
	}
	relevantPos := e.relevantPosFor(d.Table)

	out := make([]signedRow, 0, len(d.Deletes)+2*len(d.Updates)+len(d.Inserts))
	for _, r := range d.Deletes {
		if err := check(r); err != nil {
			return nil, err
		}
		out = append(out, signedRow{row: r, s: -1})
	}
	for _, u := range d.Updates {
		if err := check(u.Old); err != nil {
			return nil, err
		}
		if err := check(u.New); err != nil {
			return nil, err
		}
		same := true
		for _, p := range relevantPos {
			if !types.Identical(u.Old[p], u.New[p]) {
				same = false
				break
			}
		}
		if same {
			continue // no attribute the view can observe changed
		}
		out = append(out, signedRow{row: u.Old, s: -1}, signedRow{row: u.New, s: 1})
	}
	for _, r := range d.Inserts {
		if err := check(r); err != nil {
			return nil, err
		}
		out = append(out, signedRow{row: r, s: 1})
	}
	return out, nil
}

// relevantPosFor returns (and caches) the base positions of the attributes
// of t the view can observe: preserved or condition attributes.
func (e *Engine) relevantPosFor(t string) []int {
	if pos, ok := e.relPosC[t]; ok {
		return pos
	}
	meta := e.view.Catalog().Table(t)
	relevant := map[string]bool{}
	for _, a := range e.view.PreservedAttrs(t) {
		relevant[a] = true
	}
	for _, a := range e.view.CondAttrs(t) {
		relevant[a] = true
	}
	pos := []int{}
	for i, a := range meta.Attrs {
		if relevant[a.Name] {
			pos = append(pos, i)
		}
	}
	e.relPosC[t] = pos
	return pos
}

// baseCols returns the base-table schema qualified with the table name,
// cached per table. Callers must not mutate the returned schema.
func (e *Engine) baseCols(t string) ra.Schema {
	if cols, ok := e.baseColsC[t]; ok {
		return cols
	}
	meta := e.view.Catalog().Table(t)
	cols := make(ra.Schema, len(meta.Attrs))
	for i, a := range meta.Attrs {
		cols[i] = ra.Col{Table: t, Name: a.Name}
	}
	e.baseColsC[t] = cols
	return cols
}

// localPred returns (and caches) the bound predicate of t's local
// conditions, or nil when t has none.
func (e *Engine) localPred(t string) (func(tuple.Tuple) (bool, error), error) {
	if pred, ok := e.localPredC[t]; ok {
		return pred, nil
	}
	conds := e.view.Local[t]
	if len(conds) == 0 {
		e.localPredC[t] = nil
		return nil, nil
	}
	pred, err := ra.BindAll(conds, e.baseCols(t))
	if err != nil {
		return nil, err
	}
	e.localPredC[t] = pred
	return pred, nil
}

// localFilter drops signed rows that fail the table's local conditions.
func (e *Engine) localFilter(t string, rows []signedRow) ([]signedRow, error) {
	pred, err := e.localPred(t)
	if err != nil {
		return nil, err
	}
	if pred == nil {
		return rows, nil
	}
	out := rows[:0]
	for _, sr := range rows {
		ok, err := pred(sr.row)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, sr)
		}
	}
	return out, nil
}

// auxPlanFor returns (and caches) the base-row projection plan for X_t.
func (e *Engine) auxPlanFor(at *AuxTable) *auxApplyPlan {
	if p, ok := e.auxPlanC[at.def.Base]; ok {
		return p
	}
	meta := e.view.Catalog().Table(at.def.Base)
	p := &auxApplyPlan{}
	for _, a := range at.def.PlainAttrs {
		p.plainPos = append(p.plainPos, meta.AttrIndex(a))
	}
	for _, a := range at.def.SumAttrs {
		p.sumPos = append(p.sumPos, meta.AttrIndex(a))
	}
	for _, sj := range at.def.SemiJoins {
		p.sjPos = append(p.sjPos, meta.AttrIndex(sj.LeftAttr))
	}
	for _, a := range at.def.MinAttrs {
		p.minPos = append(p.minPos, meta.AttrIndex(a))
	}
	for _, a := range at.def.MaxAttrs {
		p.maxPos = append(p.maxPos, meta.AttrIndex(a))
	}
	e.auxPlanC[at.def.Base] = p
	return p
}

// auxApply maintains X_t under the signed rows: project to the stored
// attributes, check the join-reduction semijoins against the child
// auxiliary tables, and adjust the group (or insert/delete the PSJ row).
// Scratch buffers (plainBuf, sumDeltaC, extremaC) are reused across rows;
// Adjust copies what it retains.
func (e *Engine) auxApply(at *AuxTable, rows []signedRow) error {
	if e.shardable(len(rows)) {
		return e.auxApplySharded(at, rows)
	}
	plan := e.auxPlanFor(at)
	if cap(e.plainBuf) < len(plan.plainPos) {
		e.plainBuf = make(tuple.Tuple, len(plan.plainPos))
	}
	plainVals := e.plainBuf[:len(plan.plainPos)]
	var lookups int64
	defer func() { e.stats.auxLookups.Add(lookups) }()
	for _, sr := range rows {
		pass := true
		for i, sj := range at.def.SemiJoins {
			child := e.aux[sj.Right]
			lookups++
			var ok bool
			ok, e.lkKeyBuf = child.containsWith(sj.RightAttr, sr.row[plan.sjPos[i]], e.lkKeyBuf[:0])
			if !ok {
				pass = false
				break
			}
		}
		if !pass {
			continue
		}
		for i, p := range plan.plainPos {
			plainVals[i] = sr.row[p]
		}
		clear(e.sumDeltaC)
		for i, a := range at.def.SumAttrs {
			d, err := types.Mul(types.Int(sr.s), sr.row[plan.sumPos[i]])
			if err != nil {
				return err
			}
			e.sumDeltaC[a] = d
		}
		var extrema map[string]types.Value
		if len(plan.minPos) > 0 || len(plan.maxPos) > 0 {
			clear(e.extremaC)
			extrema = e.extremaC
			for i, a := range at.def.MinAttrs {
				extrema[a] = sr.row[plan.minPos[i]]
			}
			for i, a := range at.def.MaxAttrs {
				extrema[a] = sr.row[plan.maxPos[i]]
			}
		}
		if err := at.Adjust(plainVals, e.sumDeltaC, extrema, sr.s); err != nil {
			return err
		}
	}
	return nil
}

// vImpact propagates the delta to the materialized view.
func (e *Engine) vImpact(t string, d Delta, signed []signedRow) error {
	if len(signed) == 0 {
		return nil
	}
	rootOmitted := e.aux[e.graph.Root] == nil
	if t != e.graph.Root && rootOmitted {
		// The elimination conditions (Section 3.3) guarantee that every
		// dimension is k-annotated here: inserts and deletes of dimension
		// rows cannot affect V (referential integrity), and updates only
		// re-key groups identified directly by the dimension key.
		if e.graph.Annot[t] != joingraph.AnnotK {
			return fmt.Errorf("maintain: root auxiliary view omitted but %s is not key-grouped; cannot maintain", t)
		}
		return e.rekey(t, d.Updates)
	}

	ctx, weights, err := e.deltaDetailShared(t, signed)
	if err != nil {
		return err
	}
	if len(ctx.rel.Rows) == 0 {
		return nil
	}
	e.stats.detailRows.Add(int64(len(ctx.rel.Rows)))

	if !e.mv.hasNonCSMAS {
		return e.adjustFromDetail(ctx, weights, false)
	}
	allPositive := true
	for _, w := range weights {
		if w < 0 {
			allPositive = false
			break
		}
	}
	if e.mv.minMaxOnly && allPositive {
		// MIN/MAX are SMAs for insertions (Table 1): adjust incrementally
		// and raise the extrema.
		return e.adjustFromDetail(ctx, weights, true)
	}
	groups, err := e.affectedGroups(ctx)
	if err != nil {
		return err
	}
	return e.recomputeGroups(groups)
}

// rekey handles dimension updates when the root auxiliary view is omitted:
// the updated dimension is k-grouped, so the affected view rows are those
// whose key column matches, and only the dimension's own group-by values
// can have changed.
func (e *Engine) rekey(t string, updates []Update) error {
	meta := e.view.Catalog().Table(t)
	keyPos := meta.KeyIndex()

	// The view's group-by components owned by t, with their base positions.
	type gbCol struct {
		comp    int
		basePos int
		isKey   bool
	}
	var gcols []gbCol
	for _, ci := range e.mv.gbIdx {
		cr := e.mv.comps[ci].item.Expr.(ra.ColRef)
		if cr.Table != t {
			continue
		}
		gcols = append(gcols, gbCol{comp: ci, basePos: meta.AttrIndex(cr.Name), isKey: cr.Name == meta.Key})
	}
	var keyComp = -1
	for _, gc := range gcols {
		if gc.isKey {
			keyComp = gc.comp
		}
	}
	if keyComp < 0 {
		return fmt.Errorf("maintain: %s is k-annotated but its key is not a view column", t)
	}

	pred, err := ra.BindAll(e.view.Local[t], e.baseCols(t))
	if err != nil {
		return err
	}
	for _, u := range updates {
		okNew, err := pred(u.New)
		if err != nil {
			return err
		}
		okOld, err := pred(u.Old)
		if err != nil {
			return err
		}
		if okOld != okNew {
			// The update moves the dimension row across the view's local
			// conditions. With the root auxiliary view omitted there is no
			// detail to re-derive the affected groups from, so this delta
			// is not maintainable — the derivation refuses to omit the
			// root when a condition attribute is mutable (see
			// core.deriveAux), making this unreachable for derived plans.
			// Guard anyway: an explicit error beats silent divergence.
			return fmt.Errorf("maintain: update to %s moves a row across the view's local conditions but the root auxiliary view is omitted; cannot maintain", t)
		}
		if !okNew {
			continue // row outside the view's local conditions; old was too
		}
		key := u.New[keyPos]
		// Collect affected groups, then re-key them.
		var hit []string
		for k, row := range e.mv.rows {
			if types.Identical(row[keyComp], key) {
				hit = append(hit, k)
			}
		}
		for _, k := range hit {
			row := e.mv.rows[k]
			e.jnl.noteMVKey(e.mv, k)
			delete(e.mv.rows, k)
			if err := e.fi.Fire(faultinject.RekeyGroup); err != nil {
				return err
			}
			for _, gc := range gcols {
				row[gc.comp] = u.New[gc.basePos]
			}
			nk := e.mv.keyOf(row)
			e.jnl.noteMVKey(e.mv, nk)
			e.mv.rows[nk] = row
			e.stats.groupAdjusts.Add(1)
		}
	}
	return nil
}

// auxLookup probes an auxiliary table's index through the engine's private
// scratch buffers, so several engines of a shared class can probe the same
// tables concurrently (the tables' own reusable buffers are not touched).
// The returned slice is valid until the next auxLookup call on this engine.
func (e *Engine) auxLookup(at *AuxTable, attr string, v types.Value) []tuple.Tuple {
	e.lkRowBuf, e.lkKeyBuf = at.lookupInto(attr, v, e.lkRowBuf[:0], e.lkKeyBuf[:0])
	return e.lkRowBuf
}

// prepareSharedIndexes eagerly builds every auxiliary index the maintenance
// paths would otherwise create lazily (fullAuxDetail's join-edge indexes and
// scopedAuxDetail's seed index). Engines of a shared class stage in parallel
// over the same auxiliary tables, and EnsureIndex mutates the table, so the
// coordinator calls this once per engine before any concurrent staging;
// afterwards every probe is a read.
func (e *Engine) prepareSharedIndexes() error {
	for t, at := range e.aux {
		if j, ok := e.graph.EdgeTo[t]; ok && contains(at.def.PlainAttrs, j.RightAttr) {
			if err := at.EnsureIndex(j.RightAttr); err != nil {
				return err
			}
		}
	}
	for _, ci := range e.mv.gbIdx {
		cr, ok := e.mv.comps[ci].item.Expr.(ra.ColRef)
		if !ok {
			continue
		}
		at := e.aux[cr.Table]
		if at == nil || !contains(at.def.PlainAttrs, cr.Name) {
			continue
		}
		if err := at.EnsureIndex(cr.Name); err != nil {
			return err
		}
	}
	return nil
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}
