package maintain

import (
	"testing"

	"mindetail/internal/types"
)

// TestMaintainSnowflakeRepointing exercises an exposed update on a join
// attribute in the middle of a snowflake: product.brandid is mutable and a
// join condition, so product has exposed updates — sale must not join-
// reduce on product (Section 2.2) — and re-pointing a product to another
// brand moves all of its sales between view groups.
func TestMaintainSnowflakeRepointing(t *testing.T) {
	ddl := `
	CREATE TABLE brand (id INTEGER PRIMARY KEY, name VARCHAR);
	CREATE TABLE product (id INTEGER PRIMARY KEY, brandid INTEGER REFERENCES brand MUTABLE, category VARCHAR);
	CREATE TABLE sale (id INTEGER PRIMARY KEY, productid INTEGER REFERENCES product, price FLOAT MUTABLE);`
	f := newFixture(t, ddl, `
		SELECT brand.name, SUM(price) AS total, COUNT(*) AS cnt
		FROM sale, product, brand
		WHERE sale.productid = product.id AND product.brandid = brand.id
		GROUP BY brand.name`, true)

	// product has exposed updates (brandid mutable + join attribute):
	// sale must not semijoin with product_dtl.
	if got := f.engine.Plan().Aux["sale"].SemiJoins; len(got) != 0 {
		t.Fatalf("sale must not join-reduce on an exposed product: %v", got)
	}
	// product itself still join-reduces on brand (brand is not exposed).
	if got := f.engine.Plan().Aux["product"].SemiJoins; len(got) != 1 {
		t.Fatalf("product should join-reduce on brand: %v", got)
	}

	f.insertNoCheck("brand", types.Int(1), types.Str("acme"))
	f.insertNoCheck("brand", types.Int(2), types.Str("bolt"))
	f.insertNoCheck("product", types.Int(10), types.Int(1), types.Str("tools"))
	f.insertNoCheck("product", types.Int(11), types.Int(1), types.Str("food"))
	f.insertNoCheck("sale", types.Int(1), types.Int(10), types.Float(5))
	f.insertNoCheck("sale", types.Int(2), types.Int(10), types.Float(7))
	f.insertNoCheck("sale", types.Int(3), types.Int(11), types.Float(2))
	f.initEngine()

	// Re-point product 10 from acme to bolt: sales 1 and 2 move groups.
	f.updateRow("product", 10, map[string]types.Value{"brandid": types.Int(2)})
	// And back.
	f.updateRow("product", 10, map[string]types.Value{"brandid": types.Int(1)})
	// Re-point while also inserting into the destination group.
	f.insertRow("sale", types.Int(4), types.Int(11), types.Float(9))
	f.updateRow("product", 11, map[string]types.Value{"brandid": types.Int(2)})
	// Emptying a group via re-pointing: move product 10 too; acme dies.
	f.updateRow("product", 10, map[string]types.Value{"brandid": types.Int(2)})
	got, _ := f.engine.Snapshot(), 0
	_ = got
	if f.engine.Groups() != 1 {
		t.Fatalf("expected a single group after re-pointing everything:\n%s",
			f.engine.Snapshot().Format())
	}
}

// TestMaintainUpdateFactJoinAttr: the fact table's own foreign-key
// attribute is mutable, so fact updates can move a sale between dimensions.
func TestMaintainUpdateFactJoinAttr(t *testing.T) {
	ddl := `
	CREATE TABLE product (id INTEGER PRIMARY KEY, brand VARCHAR);
	CREATE TABLE sale (id INTEGER PRIMARY KEY, productid INTEGER REFERENCES product MUTABLE, price FLOAT);`
	f := newFixture(t, ddl, `
		SELECT product.brand, SUM(price) AS total, COUNT(*) AS cnt
		FROM sale, product WHERE sale.productid = product.id
		GROUP BY product.brand`, true)
	f.insertNoCheck("product", types.Int(1), types.Str("acme"))
	f.insertNoCheck("product", types.Int(2), types.Str("bolt"))
	f.insertNoCheck("sale", types.Int(1), types.Int(1), types.Float(5))
	f.insertNoCheck("sale", types.Int(2), types.Int(1), types.Float(7))
	f.initEngine()

	f.updateRow("sale", 1, map[string]types.Value{"productid": types.Int(2)})
	f.updateRow("sale", 2, map[string]types.Value{"productid": types.Int(2)}) // acme group dies
	f.updateRow("sale", 1, map[string]types.Value{"productid": types.Int(1)}) // reborn
}
