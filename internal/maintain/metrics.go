package maintain

import (
	"errors"
	"fmt"
	"time"

	"mindetail/internal/faultinject"
	"mindetail/internal/obs"
)

// Stage indices for per-apply stage timing. Every stage the maintenance
// engine executes on behalf of one delta is attributed to exactly one of
// these; when work is shared through a DeltaMemo, the stage is timed inside
// the memo's compute closure and therefore attributed to the engine that
// actually performed it (mirroring how Stats attributes shared counters).
const (
	StageExpand    = iota // delta expansion + no-op update elimination
	StageFilter           // local-condition filtering of expanded rows
	StageDeltaJoin        // the delta-detail join (aux-table probes)
	StageRecompute        // scoped/full group recomputation
	StageCommit           // journal discard on commit
	StageRollback         // journal replay on rollback
	numStages
)

// stageNames are the registry/trace names of the stages, index-aligned with
// the Stage constants.
var stageNames = [numStages]string{
	"expand", "filter", "delta_detail_join", "scoped_recompute", "commit", "rollback",
}

// StageName returns the registry name of a stage index.
func StageName(i int) string { return stageNames[i] }

// NumStages is the number of timed maintenance stages.
const NumStages = numStages

// Metrics is the maintenance engine's observability sink: per-stage latency
// histograms, apply counters and end-to-end latency, undo-journal depth,
// rollback accounting (total and fault-injected), DeltaMemo hit/miss/wait
// counters, and a ring of recent apply traces.
//
// A nil *Metrics disables instrumentation entirely — the engine skips even
// the clock reads, so the un-instrumented hot path is identical to the
// pre-observability code. All metric names live under "maintain.".
type Metrics struct {
	reg *obs.Registry

	stages       [numStages]*obs.Histogram // maintain.stage.<name>_ns
	applyNs      *obs.Histogram            // maintain.apply_ns (end-to-end staging)
	journalDepth *obs.Histogram            // maintain.journal.depth (entries/apply)

	applies           *obs.Counter // maintain.applies
	rollbacks         *obs.Counter // maintain.rollbacks
	injectedRollbacks *obs.Counter // maintain.rollbacks_injected

	memoHits   *obs.Counter // maintain.memo.hits
	memoMisses *obs.Counter // maintain.memo.misses
	memoWaits  *obs.Counter // maintain.memo.waits

	shardedStages *obs.Counter   // maintain.shard.stages (sharded stage executions)
	shardRows     *obs.Histogram // maintain.shard.rows (rows per sharded stage)
	shardWorkers  *obs.Gauge     // maintain.shard.workers (fan-out of the last stage)

	trace *obs.TraceRing // maintain.applies: one event per staged apply
}

// NewMetrics registers the maintenance metric set on reg and returns the
// sink. Metrics registered under the same names on the same registry are
// shared (Registry is get-or-create), so several engines attached to one
// registry aggregate into one set.
func NewMetrics(reg *obs.Registry) *Metrics {
	m := &Metrics{reg: reg}
	for i := range m.stages {
		m.stages[i] = reg.Histogram("maintain.stage." + stageNames[i] + "_ns")
	}
	m.applyNs = reg.Histogram("maintain.apply_ns")
	m.journalDepth = reg.Histogram("maintain.journal.depth")
	m.applies = reg.Counter("maintain.applies")
	m.rollbacks = reg.Counter("maintain.rollbacks")
	m.injectedRollbacks = reg.Counter("maintain.rollbacks_injected")
	m.memoHits = reg.Counter("maintain.memo.hits")
	m.memoMisses = reg.Counter("maintain.memo.misses")
	m.memoWaits = reg.Counter("maintain.memo.waits")
	m.shardedStages = reg.Counter("maintain.shard.stages")
	m.shardRows = reg.Histogram("maintain.shard.rows")
	m.shardWorkers = reg.Gauge("maintain.shard.workers")
	m.trace = reg.Trace("maintain.applies")
	return m
}

// Registry returns the registry the metrics live on (nil-safe).
func (m *Metrics) Registry() *obs.Registry {
	if m == nil {
		return nil
	}
	return m.reg
}

// AddMemoStats folds one propagation's DeltaMemo counters into the sink
// (nil-safe). The warehouse scheduler and the shared-class coordinator call
// this once per propagate, after every engine has staged.
func (m *Metrics) AddMemoStats(hits, misses, waits int64) {
	if m == nil {
		return
	}
	m.memoHits.Add(hits)
	m.memoMisses.Add(misses)
	m.memoWaits.Add(waits)
}

// SetMetrics attaches (nil detaches) an observability sink to the engine.
// Not safe concurrently with Apply. With a nil sink the engine performs no
// clock reads — instrumentation is strictly pay-for-use.
func (e *Engine) SetMetrics(m *Metrics) { e.met = m }

// Metrics returns the engine's observability sink (nil when detached).
func (e *Engine) Metrics() *Metrics { return e.met }

// stageStart returns the stage clock's start time, or the zero time when
// instrumentation is off (the only cost then is a nil check).
func (e *Engine) stageStart() time.Time {
	if e.met == nil {
		return time.Time{}
	}
	return time.Now()
}

// stageEnd records the elapsed stage time into the per-apply accumulator
// (for the trace event) and the stage histogram.
func (e *Engine) stageEnd(stage int, start time.Time) {
	if e.met == nil {
		return
	}
	ns := time.Since(start).Nanoseconds()
	e.stageNs[stage] += ns
	e.met.stages[stage].Observe(ns)
}

// rollbackJournal rolls the undo journal back, timing the replay and
// counting the rollback; cause distinguishes fault-injected failures.
func (e *Engine) rollbackJournal(cause error) {
	if e.met == nil {
		e.jnl.rollback()
		return
	}
	start := time.Now()
	e.jnl.rollback()
	ns := time.Since(start).Nanoseconds()
	e.stageNs[StageRollback] += ns
	e.met.stages[StageRollback].Observe(ns)
	e.met.rollbacks.Inc()
	if cause != nil && errors.Is(cause, faultinject.ErrInjected) {
		e.met.injectedRollbacks.Inc()
	}
}

// recordApply publishes one apply's end-to-end latency, journal depth, and
// trace event (with the non-zero stage timings accumulated in stageNs).
func (e *Engine) recordApply(d Delta, total int64, err error) {
	m := e.met
	m.applyNs.Observe(total)
	m.applies.Inc()
	m.journalDepth.Observe(int64(len(e.jnl.ents)))
	outcome := "staged"
	if err != nil {
		outcome = "error: " + err.Error()
	}
	var stages []obs.Stage
	for i, ns := range e.stageNs {
		if ns > 0 {
			stages = append(stages, obs.Stage{Name: stageNames[i], Ns: ns})
		}
	}
	m.trace.Record(obs.TraceEvent{
		At:      time.Now(),
		Name:    e.view.Name,
		Detail:  fmt.Sprintf("table=%s ins=%d del=%d upd=%d", d.Table, len(d.Inserts), len(d.Deletes), len(d.Updates)),
		Outcome: outcome,
		TotalNs: total,
		Stages:  stages,
	})
}
