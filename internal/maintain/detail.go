package maintain

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"mindetail/internal/faultinject"
	"mindetail/internal/ra"
	"mindetail/internal/tuple"
	"mindetail/internal/types"
)

// detailCtx is a relation of (possibly partial) view detail rows together
// with the positions that let component evaluation account for compressed
// duplicates: mPos is the column holding the root auxiliary view's COUNT(*)
// (-1 when rows are uncompressed base rows), and sumPos maps a compressed
// root attribute "table.attr" to the column holding its SUM.
type detailCtx struct {
	rel    *ra.Relation
	mPos   int
	sumPos map[string]int
	// minPos and maxPos map an append-only-compressed root attribute
	// "table.attr" to its MIN/MAX column.
	minPos map[string]int
	maxPos map[string]int
}

// newDetailCtx returns an empty context with initialized position maps.
func newDetailCtx() detailCtx {
	return detailCtx{
		mPos:   -1,
		sumPos: make(map[string]int),
		minPos: make(map[string]int),
		maxPos: make(map[string]int),
	}
}

// multiplicity returns the number of underlying base detail rows one
// context row stands for.
func (c detailCtx) multiplicity(row tuple.Tuple) int64 {
	if c.mPos < 0 {
		return 1
	}
	return row[c.mPos].AsInt()
}

// groupSet maps encoded group keys to their decoded group-by values. The
// values let the delta-scoped recomputation path probe auxiliary indexes
// with the groups' own key attributes instead of re-joining everything.
type groupSet map[string][]types.Value

// tablesFor computes the set of tables a delta on t must join with:
// owners of group-by attributes and aggregate arguments (to adjust or
// locate groups), every filtering table (to decide view membership), the
// root (for duplicate multiplicities), all closed under tree paths from t.
// With UseNeedSets disabled, every referenced table joins.
func (e *Engine) tablesFor(t string) map[string]bool {
	needed := map[string]bool{t: true}
	if !e.UseNeedSets {
		for _, u := range e.view.Tables {
			needed[u] = true
		}
		return needed
	}
	for _, a := range e.view.GroupBy() {
		needed[a.Table] = true
	}
	for _, agg := range e.view.Aggregates() {
		if agg.Arg != nil {
			needed[agg.Arg.(ra.ColRef).Table] = true
		}
	}
	for u, f := range e.filtering {
		if f {
			needed[u] = true
		}
	}
	if t != e.graph.Root {
		needed[e.graph.Root] = true
	}
	// Close under tree paths from t: joining u requires every table on the
	// t–u path.
	anc := func(x string) []string {
		path := []string{x}
		for x != e.graph.Root {
			x = e.graph.Parent[x]
			path = append(path, x)
		}
		return path
	}
	tPath := anc(t)
	onTPath := make(map[string]int)
	for i, x := range tPath {
		onTPath[x] = i
	}
	closed := map[string]bool{}
	for u := range needed {
		uPath := anc(u) // u ... root
		// Find the first vertex of uPath that lies on tPath: the LCA.
		lca := -1
		for i, x := range uPath {
			if _, ok := onTPath[x]; ok {
				lca = i
				break
			}
		}
		for i := 0; i <= lca; i++ {
			closed[uPath[i]] = true
		}
		for i := 0; i <= onTPath[uPath[lca]]; i++ {
			closed[tPath[i]] = true
		}
	}
	return closed
}

// joinState is the working state of an outward join over the extended join
// graph: the accumulated schema, the weighted row set, and the tables
// already folded in. Both the delta-detail path and the delta-scoped
// recomputation path seed one of these and call joinOutward.
type joinState struct {
	cols     ra.Schema
	rows     []tuple.Tuple
	weights  []int64
	included map[string]bool
	ctx      detailCtx

	// lk, when non-nil, is the private probe scratch of a parallel join
	// worker; the serial path leaves it nil and reuses the engine's
	// buffers (see Engine.auxLookup).
	lk *probeScratch
}

// probeScratch is a worker-owned auxiliary-probe buffer pair: lookups
// through it never touch the engine's (or the tables') reusable buffers,
// so several chunk workers can probe the same quiescent tables at once.
type probeScratch struct {
	rows []tuple.Tuple
	key  []byte
}

// lookup probes an auxiliary table through the state's private scratch
// when present, the engine's otherwise.
func (st *joinState) lookup(e *Engine, at *AuxTable, attr string, v types.Value) []tuple.Tuple {
	if st.lk == nil {
		return e.auxLookup(at, attr, v)
	}
	st.lk.rows, st.lk.key = at.lookupInto(attr, v, st.lk.rows[:0], st.lk.key[:0])
	return st.lk.rows
}

// joinOutward folds every needed table into the state by probing the
// auxiliary tables' hash indexes: join-down edges (a folded parent
// references the child's key) match at most one row and act as a membership
// filter; join-up edges (a folded child is referenced by the parent) fan
// out, and a compressed parent contributes its COUNT(*) to the weight.
// Residual local conditions are re-applied per table as it joins in.
func (e *Engine) joinOutward(st *joinState, needed map[string]bool) error {
	var probes int64
	defer func() { e.stats.auxLookups.Add(probes) }()
	// Fold edges in sorted child order: the join (and so column) order is
	// deterministic, which the sharded delta-detail path relies on to merge
	// chunk results computed by independent workers.
	children := make([]string, 0, len(e.graph.EdgeTo))
	for c := range e.graph.EdgeTo {
		children = append(children, c)
	}
	sort.Strings(children)
	for {
		progress := false
		for _, child := range children {
			j := e.graph.EdgeTo[child]
			parent := j.Left
			switch {
			case st.included[parent] && !st.included[child] && needed[child]:
				// Join down: parent references the child's key; at most
				// one match, no match drops the row (membership filter).
				refPos, err := st.cols.Index(parent, j.LeftAttr)
				if err != nil {
					return err
				}
				at := e.aux[child]
				if at == nil {
					return fmt.Errorf("maintain: join needs the omitted auxiliary view of %s", child)
				}
				newRows := st.rows[:0]
				newW := st.weights[:0]
				for i, row := range st.rows {
					probes++
					matches := st.lookup(e, at, j.RightAttr, row[refPos])
					if len(matches) == 0 {
						continue
					}
					newRows = append(newRows, tuple.Concat(row, matches[0]))
					newW = append(newW, st.weights[i])
				}
				st.rows, st.weights = newRows, newW
				st.cols = append(append(ra.Schema{}, st.cols...), at.Cols()...)
				st.rows, st.weights, err = e.applyResidual(child, st.cols, st.rows, st.weights)
				if err != nil {
					return err
				}
				st.included[child] = true
				progress = true

			case st.included[child] && !st.included[parent] && needed[parent]:
				// Join up: find the parent rows referencing this key; the
				// fan-out multiplies, and a compressed parent contributes
				// its COUNT(*) to the weight.
				keyPos, err := st.cols.Index(child, j.RightAttr)
				if err != nil {
					return err
				}
				at := e.aux[parent]
				if at == nil {
					return fmt.Errorf("maintain: join needs the omitted auxiliary view of %s", parent)
				}
				cntPos := at.cntPos
				var outRows []tuple.Tuple
				var outW []int64
				for i, row := range st.rows {
					probes++
					for _, m := range st.lookup(e, at, j.LeftAttr, row[keyPos]) {
						w := st.weights[i]
						if cntPos >= 0 {
							w *= m[cntPos].AsInt()
						}
						outRows = append(outRows, tuple.Concat(row, m))
						outW = append(outW, w)
					}
				}
				base := len(st.cols)
				st.rows, st.weights = outRows, outW
				st.cols = append(append(ra.Schema{}, st.cols...), at.Cols()...)
				st.rows, st.weights, err = e.applyResidual(parent, st.cols, st.rows, st.weights)
				if err != nil {
					return err
				}
				if cntPos >= 0 {
					st.ctx.mPos = base + cntPos
				}
				for a, p := range at.sumPos {
					st.ctx.sumPos[parent+"."+a] = base + p
				}
				for a, p := range at.minPos {
					st.ctx.minPos[parent+"."+a] = base + p
				}
				for a, p := range at.maxPos {
					st.ctx.maxPos[parent+"."+a] = base + p
				}
				st.included[parent] = true
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	for u := range needed {
		if !st.included[u] {
			return fmt.Errorf("maintain: join could not reach needed table %s", u)
		}
	}
	st.ctx.rel = &ra.Relation{Cols: st.cols, Rows: st.rows}
	return nil
}

// deltaDetail joins the signed delta rows of table t with the auxiliary
// tables of every needed table, producing weighted detail rows: each output
// row's weight is the signed number of underlying base detail rows it
// stands for (the root COUNT(*) multiplies in when climbing through a
// compressed root view).
func (e *Engine) deltaDetail(t string, signed []signedRow) (detailCtx, []int64, error) {
	if e.shardable(len(signed)) {
		return e.deltaDetailChunked(t, signed)
	}
	st := &joinState{
		cols:     e.baseCols(t),
		rows:     make([]tuple.Tuple, len(signed)),
		weights:  make([]int64, len(signed)),
		included: map[string]bool{t: true},
		ctx:      newDetailCtx(),
	}
	for i, sr := range signed {
		st.rows[i] = sr.row
		st.weights[i] = sr.s
	}
	if err := e.joinOutward(st, e.tablesFor(t)); err != nil {
		return st.ctx, nil, fmt.Errorf("maintain: delta on %s: %w", t, err)
	}
	return st.ctx, st.weights, nil
}

// applyResidual filters joined detail rows by the view's residual local
// conditions on the just-joined table (shared-plan mode; no-op otherwise).
func (e *Engine) applyResidual(table string, cols ra.Schema, rows []tuple.Tuple, weights []int64) ([]tuple.Tuple, []int64, error) {
	conds := e.residual[table]
	if len(conds) == 0 {
		return rows, weights, nil
	}
	pred, err := ra.BindAll(conds, cols)
	if err != nil {
		return nil, nil, err
	}
	outRows := rows[:0]
	outW := weights[:0]
	for i, row := range rows {
		ok, err := pred(row)
		if err != nil {
			return nil, nil, err
		}
		if ok {
			outRows = append(outRows, row)
			outW = append(outW, weights[i])
		}
	}
	return outRows, outW, nil
}

// fullAuxDetail joins all auxiliary views into the full view detail — the
// input to partial recomputation. It requires the root auxiliary view and
// re-applies every residual condition. The tree is joined breadth-first
// with index-lookup joins probing each auxiliary table's maintained hash
// index, so no per-evaluation hash tables are built.
func (e *Engine) fullAuxDetail() (detailCtx, error) {
	root := e.aux[e.graph.Root]
	if root == nil {
		return detailCtx{}, fmt.Errorf("maintain: root auxiliary view of %s omitted; cannot recompute", e.graph.Root)
	}
	var node ra.Node = ra.Scan(root.def.Name, root.Relation())
	var joins []*ra.IndexedJoinNode
	queue := append([]string(nil), e.graph.Children[e.graph.Root]...)
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		at := e.aux[t]
		if at == nil {
			return detailCtx{}, fmt.Errorf("maintain: missing auxiliary view for %s", t)
		}
		j := e.graph.EdgeTo[t]
		if err := at.EnsureIndex(j.RightAttr); err != nil {
			return detailCtx{}, err
		}
		// The probeView adapter gives IndexedJoin private probe scratch, so
		// several engines can evaluate recomputation joins over the same
		// shared tables concurrently.
		ij := ra.IndexedJoin(node, ra.Col{Table: j.Left, Name: j.LeftAttr}, &probeView{at: at}, j.RightAttr, at.def.Name)
		joins = append(joins, ij)
		node = ij
		queue = append(queue, e.graph.Children[t]...)
	}
	var allResidual []ra.Comparison
	for _, conds := range e.residual {
		allResidual = append(allResidual, conds...)
	}
	if len(allResidual) > 0 {
		node = ra.Select(node, allResidual...)
	}
	rel, err := node.Eval()
	if err != nil {
		return detailCtx{}, err
	}
	for _, ij := range joins {
		e.stats.auxLookups.Add(int64(ij.Probes))
		ij.Probes = 0
	}
	ctx := newDetailCtx()
	ctx.rel = rel
	if root.cntPos >= 0 {
		i, err := rel.Cols.Index(root.def.Base, root.def.CountName)
		if err != nil {
			return detailCtx{}, err
		}
		ctx.mPos = i
	}
	for a := range root.sumPos {
		i, err := rel.Cols.Index(root.def.Base, root.def.SumName[a])
		if err != nil {
			return detailCtx{}, err
		}
		ctx.sumPos[root.def.Base+"."+a] = i
	}
	for a := range root.minPos {
		i, err := rel.Cols.Index(root.def.Base, root.def.MinName[a])
		if err != nil {
			return detailCtx{}, err
		}
		ctx.minPos[root.def.Base+"."+a] = i
	}
	for a := range root.maxPos {
		i, err := rel.Cols.Index(root.def.Base, root.def.MaxName[a])
		if err != nil {
			return detailCtx{}, err
		}
		ctx.maxPos[root.def.Base+"."+a] = i
	}
	return ctx, nil
}

// scopedAuxDetail builds the view detail restricted to the affected groups
// without joining the full auxiliary tree: it seeds from the auxiliary view
// owning one of the group-by attributes, probes that view's hash index with
// the affected groups' own key values, keeps only rows whose group-by
// projection matches an affected group, and joins outward along the
// Need-set edges exactly as the delta-detail path does. The result is a
// superset of the affected groups' detail rows (aggregation filters by the
// exact group key), so maintenance cost is proportional to the touched
// groups rather than the warehouse.
//
// The second result reports whether the scoped path could be used; when
// false the caller must fall back to fullAuxDetail. The path declines when
// the view is global, a group-by item is not a plain column reference, or
// no group-by attribute is stored plain in a seedable auxiliary view.
func (e *Engine) scopedAuxDetail(keys groupSet) (detailCtx, bool, error) {
	ctx := newDetailCtx()
	if len(e.mv.gbIdx) == 0 {
		return ctx, false, nil
	}
	refs := make([]ra.ColRef, len(e.mv.gbIdx))
	for i, ci := range e.mv.gbIdx {
		cr, ok := e.mv.comps[ci].item.Expr.(ra.ColRef)
		if !ok {
			return ctx, false, nil
		}
		refs[i] = cr
	}
	// Pick a seed: a group-by attribute stored plain in its owner's
	// auxiliary view. A compressed non-root view cannot seed (its rows are
	// groups, not detail); in the minimal plans only the root compresses,
	// so this guard is defensive.
	seed := -1
	var seedAux *AuxTable
	for i, cr := range refs {
		at := e.aux[cr.Table]
		if at == nil {
			continue
		}
		if !contains(at.def.PlainAttrs, cr.Name) {
			continue
		}
		if cr.Table != e.graph.Root && at.cntPos >= 0 {
			continue
		}
		seed, seedAux = i, at
		break
	}
	if seed < 0 {
		return ctx, false, nil
	}
	seedTable, seedAttr := refs[seed].Table, refs[seed].Name
	if err := seedAux.EnsureIndex(seedAttr); err != nil {
		return ctx, false, err
	}

	// The seed view may own several group-by columns; restricting probe
	// results to the affected groups' projection onto all of them tightens
	// the row superset before any joining happens.
	var ownPos []int // positions in the seed aux schema
	var ownGb []int  // positions in the group-by value lists
	for i, cr := range refs {
		if cr.Table != seedTable {
			continue
		}
		p, err := seedAux.cols.Index(cr.Table, cr.Name)
		if err != nil {
			return ctx, false, nil
		}
		ownPos = append(ownPos, p)
		ownGb = append(ownGb, i)
	}

	allowed := make(map[string]bool, len(keys))
	probes := make(map[string]types.Value, len(keys))
	buf := e.keyBuf[:0]
	for _, vals := range keys {
		buf = buf[:0]
		for _, gi := range ownGb {
			buf = types.Encode(buf, vals[gi])
		}
		allowed[string(buf)] = true
		buf = types.Encode(buf[:0], vals[seed])
		if _, ok := probes[string(buf)]; !ok {
			probes[string(buf)] = vals[seed]
		}
	}

	var rows []tuple.Tuple
	var nProbes int64
	for _, v := range probes {
		nProbes++
		for _, r := range e.auxLookup(seedAux, seedAttr, v) {
			buf = buf[:0]
			for _, p := range ownPos {
				buf = types.Encode(buf, r[p])
			}
			if allowed[string(buf)] {
				rows = append(rows, r)
			}
		}
	}
	e.keyBuf = buf[:0]
	e.stats.auxLookups.Add(nProbes)

	st := &joinState{
		cols:     seedAux.Cols(),
		rows:     rows,
		weights:  make([]int64, len(rows)),
		included: map[string]bool{seedTable: true},
		ctx:      ctx,
	}
	for i := range st.weights {
		st.weights[i] = 1
	}
	// A compressed seed (the root) carries its own multiplicity columns.
	if seedTable == e.graph.Root {
		if seedAux.cntPos >= 0 {
			st.ctx.mPos = seedAux.cntPos
		}
		for a, p := range seedAux.sumPos {
			st.ctx.sumPos[seedTable+"."+a] = p
		}
		for a, p := range seedAux.minPos {
			st.ctx.minPos[seedTable+"."+a] = p
		}
		for a, p := range seedAux.maxPos {
			st.ctx.maxPos[seedTable+"."+a] = p
		}
	}
	var err error
	st.rows, st.weights, err = e.applyResidual(seedTable, st.cols, st.rows, st.weights)
	if err != nil {
		return st.ctx, false, err
	}
	if err := e.joinOutward(st, e.tablesFor(seedTable)); err != nil {
		return st.ctx, false, err
	}
	return st.ctx, true, nil
}

// gbFns binds the view's group-by expressions against a detail schema. The
// returned closures are stateless and safe for concurrent use.
func (e *Engine) gbFns(cols ra.Schema) ([]func(tuple.Tuple) (types.Value, error), error) {
	fns := make([]func(tuple.Tuple) (types.Value, error), 0, len(e.mv.gbIdx))
	for _, ci := range e.mv.gbIdx {
		f, err := e.mv.comps[ci].item.Expr.Bind(cols)
		if err != nil {
			return nil, err
		}
		fns = append(fns, f)
	}
	return fns, nil
}

// sumArg resolves where a SUM component's argument lives in a detail
// schema: either the compressed SUM column (value contributes directly,
// scaled by sign only) or the raw attribute (scaled by the signed weight).
type sumArg struct {
	compressed bool
	pos        int
}

func (e *Engine) bindSumArgs(ctx detailCtx) (map[int]sumArg, error) {
	out := make(map[int]sumArg)
	for ci, c := range e.mv.comps {
		if c.kind != compSum {
			continue
		}
		if p, ok := ctx.sumPos[c.arg.Table+"."+c.arg.Name]; ok {
			out[ci] = sumArg{compressed: true, pos: p}
			continue
		}
		p, err := ctx.rel.Cols.Index(c.arg.Table, c.arg.Name)
		if err != nil {
			return nil, err
		}
		out[ci] = sumArg{pos: p}
	}
	return out, nil
}

// storedArgPos resolves where a stored (non-CSMAS) component's argument
// lives in a detail schema: the raw attribute when present, otherwise the
// append-only-compressed MIN/MAX column of the same attribute.
func storedArgPos(ctx detailCtx, c component) (int, error) {
	if p, err := ctx.rel.Cols.Index(c.arg.Table, c.arg.Name); err == nil {
		return p, nil
	}
	key := c.arg.Table + "." + c.arg.Name
	if c.item.Agg.Func == ra.FuncMin && !c.item.Agg.Distinct {
		if p, ok := ctx.minPos[key]; ok {
			return p, nil
		}
	}
	if c.item.Agg.Func == ra.FuncMax && !c.item.Agg.Distinct {
		if p, ok := ctx.maxPos[key]; ok {
			return p, nil
		}
	}
	_, err := ctx.rel.Cols.Index(c.arg.Table, c.arg.Name)
	return -1, err
}

// adjustFromDetail applies incremental CSMAS adjustments for each weighted
// detail row; with raise set, stored MIN/MAX components absorb the
// insertion batch (the SMA insertion fast path). Group keys are encoded
// into a reused scratch buffer, and the per-row sum-delta map is cleared
// and reused, so the steady-state loop allocates only on group creation.
func (e *Engine) adjustFromDetail(ctx detailCtx, weights []int64, raise bool) error {
	if e.shardable(len(ctx.rel.Rows)) && !e.mv.global() {
		return e.adjustFromDetailSharded(ctx, weights, raise)
	}
	fns, err := e.gbFns(ctx.rel.Cols)
	if err != nil {
		return err
	}
	sums, err := e.bindSumArgs(ctx)
	if err != nil {
		return err
	}
	type storedBind struct {
		comp int
		pos  int
	}
	var stored []storedBind
	if raise {
		for ci, c := range e.mv.comps {
			if c.kind != compStored {
				continue
			}
			p, err := storedArgPos(ctx, c)
			if err != nil {
				return err
			}
			stored = append(stored, storedBind{comp: ci, pos: p})
		}
	}
	gbVals := make([]types.Value, len(fns))
	sumDeltas := make(map[int]types.Value, len(sums))
	var adjusts int64
	defer func() { e.stats.groupAdjusts.Add(adjusts) }()
	buf := e.keyBuf[:0]
	for i, row := range ctx.rel.Rows {
		w := weights[i]
		buf = buf[:0]
		for gi, f := range fns {
			v, err := f(row)
			if err != nil {
				return err
			}
			gbVals[gi] = v
			buf = types.Encode(buf, v)
		}
		clear(sumDeltas)
		for ci, sa := range sums {
			var d types.Value
			if sa.compressed {
				v := row[sa.pos]
				sign := int64(1)
				if w < 0 {
					sign = -1
				}
				d, err = types.Mul(types.Int(sign), v)
			} else {
				d, err = types.Mul(types.Int(w), row[sa.pos])
			}
			if err != nil {
				return err
			}
			sumDeltas[ci] = d
		}
		if err := e.fi.Fire(faultinject.MVAdjustRow); err != nil {
			return err
		}
		e.jnl.noteMV(e.mv, buf)
		if err := e.mv.adjustBuf(buf, gbVals, w, sumDeltas); err != nil {
			return err
		}
		adjusts++
		for _, sb := range stored {
			e.mv.raiseExtremaBuf(buf, sb.comp, row[sb.pos])
		}
	}
	e.keyBuf = buf[:0]
	return nil
}

// affectedGroups returns the groups the detail rows touch: encoded key and
// decoded group-by values (the seed values of the scoped recomputation).
func (e *Engine) affectedGroups(ctx detailCtx) (groupSet, error) {
	fns, err := e.gbFns(ctx.rel.Cols)
	if err != nil {
		return nil, err
	}
	keys := make(groupSet)
	vals := make([]types.Value, len(fns))
	buf := e.keyBuf[:0]
	for _, row := range ctx.rel.Rows {
		buf = buf[:0]
		for i, f := range fns {
			v, err := f(row)
			if err != nil {
				return nil, err
			}
			vals[i] = v
			buf = types.Encode(buf, v)
		}
		if _, ok := keys[string(buf)]; !ok {
			keys[string(buf)] = append([]types.Value(nil), vals...)
		}
	}
	e.keyBuf = buf[:0]
	return keys, nil
}

// recomputeGroups repairs the given groups from the auxiliary views alone
// (Section 3.2's recomputation of non-CSMAS aggregates): the affected
// detail rows are gathered — by the delta-scoped index propagation when the
// view's shape admits it, from the full auxiliary join otherwise — and
// re-aggregated, replacing the stored groups.
func (e *Engine) recomputeGroups(keys groupSet) error {
	if len(keys) == 0 {
		return nil
	}
	groups, shared, err := e.recomputedGroups(keys)
	if err != nil {
		return err
	}
	// Journal every affected group before the delete+reinstall below: the
	// replacements computeGroups produced are a subset of keys (it filters
	// by exact group key), so capturing the keys covers all mutations.
	for k := range keys {
		e.jnl.noteMVKey(e.mv, k)
	}
	e.mv.deleteGroups(keys)
	if err := e.fi.Fire(faultinject.RecomputeInstall); err != nil {
		return err
	}
	for _, row := range groups {
		if shared {
			// Memoized rows are consumed by several engines and mutated in
			// place once installed (adjustments, rollback restore); install a
			// private copy and leave the memo's pristine.
			row = row.Clone()
		}
		e.mv.setRow(row)
	}
	e.stats.groupRecomputes.Add(int64(len(groups)))
	if e.mv.global() && len(groups) == 0 {
		e.mv.setRow(e.mv.blank(nil))
	}
	return nil
}

// parallelRecomputeThreshold is the detail-row count below which group
// recomputation stays serial: small deltas must not pay goroutine and
// sharding overhead.
const parallelRecomputeThreshold = 4096

// workerCount resolves the recomputation worker-pool size.
func (e *Engine) workerCount() int {
	w := e.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > 16 {
		w = 16
	}
	return w
}

// storedDef binds one stored (non-CSMAS) component to its detail position.
type storedDef struct {
	comp int
	pos  int
	agg  *ra.Aggregate
}

// computeGroups aggregates detail rows into maintenance-form component
// rows. With keys non-nil, only groups in the set are produced. Large
// inputs are sharded by group-key hash across a bounded worker pool: every
// row of a group lands in the same shard with its original relative order
// preserved, so parallel aggregation accumulates each group exactly as the
// serial path would.
func (e *Engine) computeGroups(ctx detailCtx, keys groupSet) (map[string]tuple.Tuple, error) {
	fns, err := e.gbFns(ctx.rel.Cols)
	if err != nil {
		return nil, err
	}
	sums, err := e.bindSumArgs(ctx)
	if err != nil {
		return nil, err
	}
	var storeds []storedDef
	for ci, c := range e.mv.comps {
		if c.kind != compStored {
			continue
		}
		p, err := storedArgPos(ctx, c)
		if err != nil {
			return nil, err
		}
		storeds = append(storeds, storedDef{comp: ci, pos: p, agg: c.item.Agg})
	}

	rows := ctx.rel.Rows
	workers := e.workerCount()
	if workers <= 1 || len(rows) < parallelRecomputeThreshold {
		return e.aggregateGroups(ctx, rows, fns, sums, storeds, keys)
	}

	// Shard by group-key hash; the keys filter applies here so workers
	// only see relevant rows.
	shards := make([][]tuple.Tuple, workers)
	var buf []byte
	for _, row := range rows {
		buf = buf[:0]
		for _, f := range fns {
			v, err := f(row)
			if err != nil {
				return nil, err
			}
			buf = types.Encode(buf, v)
		}
		if keys != nil {
			if _, ok := keys[string(buf)]; !ok {
				continue
			}
		}
		w := int(fnv32(buf) % uint32(workers))
		shards[w] = append(shards[w], row)
	}
	outs := make([]map[string]tuple.Tuple, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		if len(shards[w]) == 0 {
			continue
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			outs[w], errs[w] = e.aggregateGroups(ctx, shards[w], fns, sums, storeds, nil)
		}(w)
	}
	wg.Wait()
	merged := make(map[string]tuple.Tuple)
	for w := range outs {
		if errs[w] != nil {
			return nil, errs[w]
		}
		for k, row := range outs[w] {
			merged[k] = row
		}
	}
	return merged, nil
}

// aggregateGroups performs the aggregation loop over one row set. It uses
// only local state plus read-only engine metadata, so multiple invocations
// may run concurrently (the parallel recomputation workers).
func (e *Engine) aggregateGroups(ctx detailCtx, rows []tuple.Tuple, fns []func(tuple.Tuple) (types.Value, error), sums map[int]sumArg, storeds []storedDef, keys groupSet) (map[string]tuple.Tuple, error) {
	type storedAcc struct {
		extremum map[string]types.Value            // group key -> MIN/MAX value
		distinct map[string]map[string]types.Value // group key -> set
	}
	accs := make([]storedAcc, len(storeds))
	for i := range accs {
		accs[i] = storedAcc{
			extremum: make(map[string]types.Value),
			distinct: make(map[string]map[string]types.Value),
		}
	}

	out := make(map[string]tuple.Tuple)
	gbVals := make([]types.Value, len(fns))
	var buf, vbuf []byte
	for _, row := range rows {
		buf = buf[:0]
		for i, f := range fns {
			v, err := f(row)
			if err != nil {
				return nil, err
			}
			gbVals[i] = v
			buf = types.Encode(buf, v)
		}
		if keys != nil {
			if _, ok := keys[string(buf)]; !ok {
				continue
			}
		}
		m := ctx.multiplicity(row)
		orow, ok := out[string(buf)]
		if !ok {
			orow = e.mv.blank(gbVals)
			out[string(buf)] = orow
		}
		for ci, c := range e.mv.comps {
			switch c.kind {
			case compCount:
				orow[ci] = types.Int(orow[ci].AsInt() + m)
			case compSum:
				sa := sums[ci]
				var d types.Value
				if sa.compressed {
					d = row[sa.pos]
				} else {
					var err error
					d, err = types.Mul(types.Int(m), row[sa.pos])
					if err != nil {
						return nil, err
					}
				}
				if orow[ci].IsNull() {
					orow[ci] = d
				} else {
					s, err := types.Add(orow[ci], d)
					if err != nil {
						return nil, err
					}
					orow[ci] = s
				}
			}
		}
		h := e.mv.hiddenIdx()
		orow[h] = types.Int(orow[h].AsInt() + m)

		for i := range storeds {
			sd := &storeds[i]
			ac := &accs[i]
			v := row[sd.pos]
			if sd.agg.Distinct {
				set, ok := ac.distinct[string(buf)]
				if !ok {
					set = make(map[string]types.Value)
					ac.distinct[string(buf)] = set
				}
				vbuf = types.Encode(vbuf[:0], v)
				if _, ok := set[string(vbuf)]; !ok {
					set[string(vbuf)] = v
				}
				continue
			}
			cur, ok := ac.extremum[string(buf)]
			switch {
			case !ok:
				ac.extremum[string(buf)] = v
			case sd.agg.Func == ra.FuncMin && types.Compare(v, cur) < 0:
				ac.extremum[string(buf)] = v
			case sd.agg.Func == ra.FuncMax && types.Compare(v, cur) > 0:
				ac.extremum[string(buf)] = v
			}
		}
	}

	// Finalize stored components.
	for i := range storeds {
		sd := &storeds[i]
		ac := &accs[i]
		for key, orow := range out {
			if sd.agg.Distinct {
				v, err := finalizeDistinct(sd.agg, ac.distinct[key])
				if err != nil {
					return nil, err
				}
				orow[sd.comp] = v
			} else if v, ok := ac.extremum[key]; ok {
				orow[sd.comp] = v
			}
		}
	}
	return out, nil
}

// fnv32 is the FNV-1a hash of b, used to shard rows by group key.
func fnv32(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// finalizeDistinct computes a DISTINCT aggregate over a value set.
func finalizeDistinct(agg *ra.Aggregate, set map[string]types.Value) (types.Value, error) {
	switch agg.Func {
	case ra.FuncCount:
		return types.Int(int64(len(set))), nil
	case ra.FuncSum, ra.FuncAvg:
		if len(set) == 0 {
			return types.Null, nil
		}
		sum := types.Value(types.Int(0))
		for _, v := range set {
			s, err := types.Add(sum, v)
			if err != nil {
				return types.Null, err
			}
			sum = s
		}
		if agg.Func == ra.FuncSum {
			return sum, nil
		}
		return types.Float(sum.AsFloat() / float64(len(set))), nil
	case ra.FuncMin, ra.FuncMax:
		// MIN/MAX(DISTINCT a) ≡ MIN/MAX(a); handled via extremum normally,
		// but DISTINCT forces the set path.
		var best types.Value = types.Null
		for _, v := range set {
			if best.IsNull() ||
				(agg.Func == ra.FuncMin && types.Compare(v, best) < 0) ||
				(agg.Func == ra.FuncMax && types.Compare(v, best) > 0) {
				best = v
			}
		}
		return best, nil
	default:
		return types.Null, fmt.Errorf("maintain: unsupported DISTINCT aggregate %s", agg)
	}
}
