package maintain

import (
	"fmt"

	"mindetail/internal/ra"
	"mindetail/internal/tuple"
	"mindetail/internal/types"
)

// detailCtx is a relation of (possibly partial) view detail rows together
// with the positions that let component evaluation account for compressed
// duplicates: mPos is the column holding the root auxiliary view's COUNT(*)
// (-1 when rows are uncompressed base rows), and sumPos maps a compressed
// root attribute "table.attr" to the column holding its SUM.
type detailCtx struct {
	rel    *ra.Relation
	mPos   int
	sumPos map[string]int
	// minPos and maxPos map an append-only-compressed root attribute
	// "table.attr" to its MIN/MAX column.
	minPos map[string]int
	maxPos map[string]int
}

// multiplicity returns the number of underlying base detail rows one
// context row stands for.
func (c detailCtx) multiplicity(row tuple.Tuple) int64 {
	if c.mPos < 0 {
		return 1
	}
	return row[c.mPos].AsInt()
}

// tablesFor computes the set of tables a delta on t must join with:
// owners of group-by attributes and aggregate arguments (to adjust or
// locate groups), every filtering table (to decide view membership), the
// root (for duplicate multiplicities), all closed under tree paths from t.
// With UseNeedSets disabled, every referenced table joins.
func (e *Engine) tablesFor(t string) map[string]bool {
	needed := map[string]bool{t: true}
	if !e.UseNeedSets {
		for _, u := range e.view.Tables {
			needed[u] = true
		}
		return needed
	}
	for _, a := range e.view.GroupBy() {
		needed[a.Table] = true
	}
	for _, agg := range e.view.Aggregates() {
		if agg.Arg != nil {
			needed[agg.Arg.(ra.ColRef).Table] = true
		}
	}
	for u, f := range e.filtering {
		if f {
			needed[u] = true
		}
	}
	if t != e.graph.Root {
		needed[e.graph.Root] = true
	}
	// Close under tree paths from t: joining u requires every table on the
	// t–u path.
	anc := func(x string) []string {
		path := []string{x}
		for x != e.graph.Root {
			x = e.graph.Parent[x]
			path = append(path, x)
		}
		return path
	}
	tPath := anc(t)
	onTPath := make(map[string]int)
	for i, x := range tPath {
		onTPath[x] = i
	}
	closed := map[string]bool{}
	for u := range needed {
		uPath := anc(u) // u ... root
		// Find the first vertex of uPath that lies on tPath: the LCA.
		lca := -1
		for i, x := range uPath {
			if _, ok := onTPath[x]; ok {
				lca = i
				break
			}
		}
		for i := 0; i <= lca; i++ {
			closed[uPath[i]] = true
		}
		for i := 0; i <= onTPath[uPath[lca]]; i++ {
			closed[tPath[i]] = true
		}
	}
	return closed
}

// deltaDetail joins the signed delta rows of table t with the auxiliary
// tables of every needed table, producing weighted detail rows: each output
// row's weight is the signed number of underlying base detail rows it
// stands for (the root COUNT(*) multiplies in when climbing through a
// compressed root view).
func (e *Engine) deltaDetail(t string, signed []signedRow) (detailCtx, []int64, error) {
	needed := e.tablesFor(t)

	cols := e.baseCols(t)
	rows := make([]tuple.Tuple, len(signed))
	weights := make([]int64, len(signed))
	for i, sr := range signed {
		rows[i] = sr.row
		weights[i] = sr.s
	}
	ctx := detailCtx{mPos: -1, sumPos: make(map[string]int), minPos: make(map[string]int), maxPos: make(map[string]int)}
	included := map[string]bool{t: true}

	for {
		progress := false
		for child, j := range e.graph.EdgeTo {
			parent := j.Left
			switch {
			case included[parent] && !included[child] && needed[child]:
				// Join down: parent references the child's key; at most
				// one match, no match drops the row (membership filter).
				refPos, err := cols.Index(parent, j.LeftAttr)
				if err != nil {
					return ctx, nil, err
				}
				at := e.aux[child]
				newRows := rows[:0]
				newW := weights[:0]
				for i, row := range rows {
					e.stats.AuxLookups++
					matches := at.Lookup(j.RightAttr, row[refPos])
					if len(matches) == 0 {
						continue
					}
					newRows = append(newRows, tuple.Concat(row, matches[0]))
					newW = append(newW, weights[i])
				}
				rows, weights = newRows, newW
				cols = append(append(ra.Schema{}, cols...), at.Cols()...)
				rows, weights, err = e.applyResidual(child, cols, rows, weights)
				if err != nil {
					return ctx, nil, err
				}
				included[child] = true
				progress = true

			case included[child] && !included[parent] && needed[parent]:
				// Join up: find the parent rows referencing this key; the
				// fan-out multiplies, and a compressed parent contributes
				// its COUNT(*) to the weight.
				keyPos, err := cols.Index(child, j.RightAttr)
				if err != nil {
					return ctx, nil, err
				}
				at := e.aux[parent]
				if at == nil {
					return ctx, nil, fmt.Errorf("maintain: delta on %s needs the omitted auxiliary view of %s", t, parent)
				}
				cntPos := at.cntPos
				var outRows []tuple.Tuple
				var outW []int64
				for i, row := range rows {
					e.stats.AuxLookups++
					for _, m := range at.Lookup(j.LeftAttr, row[keyPos]) {
						w := weights[i]
						if cntPos >= 0 {
							w *= m[cntPos].AsInt()
						}
						outRows = append(outRows, tuple.Concat(row, m))
						outW = append(outW, w)
					}
				}
				base := len(cols)
				rows, weights = outRows, outW
				cols = append(append(ra.Schema{}, cols...), at.Cols()...)
				rows, weights, err = e.applyResidual(parent, cols, rows, weights)
				if err != nil {
					return ctx, nil, err
				}
				if cntPos >= 0 {
					ctx.mPos = base + cntPos
				}
				for a, p := range at.sumPos {
					ctx.sumPos[parent+"."+a] = base + p
				}
				for a, p := range at.minPos {
					ctx.minPos[parent+"."+a] = base + p
				}
				for a, p := range at.maxPos {
					ctx.maxPos[parent+"."+a] = base + p
				}
				included[parent] = true
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	for u := range needed {
		if !included[u] {
			return ctx, nil, fmt.Errorf("maintain: delta on %s could not reach needed table %s", t, u)
		}
	}
	ctx.rel = &ra.Relation{Cols: cols, Rows: rows}
	return ctx, weights, nil
}

// applyResidual filters joined detail rows by the view's residual local
// conditions on the just-joined table (shared-plan mode; no-op otherwise).
func (e *Engine) applyResidual(table string, cols ra.Schema, rows []tuple.Tuple, weights []int64) ([]tuple.Tuple, []int64, error) {
	conds := e.residual[table]
	if len(conds) == 0 {
		return rows, weights, nil
	}
	pred, err := ra.BindAll(conds, cols)
	if err != nil {
		return nil, nil, err
	}
	outRows := rows[:0]
	outW := weights[:0]
	for i, row := range rows {
		ok, err := pred(row)
		if err != nil {
			return nil, nil, err
		}
		if ok {
			outRows = append(outRows, row)
			outW = append(outW, weights[i])
		}
	}
	return outRows, outW, nil
}

// fullAuxDetail joins all auxiliary views into the full view detail — the
// input to partial recomputation. It requires the root auxiliary view and
// re-applies every residual condition.
func (e *Engine) fullAuxDetail() (detailCtx, error) {
	rels := make(map[string]*ra.Relation, len(e.aux))
	for t, at := range e.aux {
		rels[t] = at.Relation()
	}
	node, err := e.plan.JoinAux(rels)
	if err != nil {
		return detailCtx{}, err
	}
	var allResidual []ra.Comparison
	for _, conds := range e.residual {
		allResidual = append(allResidual, conds...)
	}
	if len(allResidual) > 0 {
		node = ra.Select(node, allResidual...)
	}
	rel, err := node.Eval()
	if err != nil {
		return detailCtx{}, err
	}
	ctx := detailCtx{rel: rel, mPos: -1, sumPos: make(map[string]int), minPos: make(map[string]int), maxPos: make(map[string]int)}
	root := e.aux[e.graph.Root]
	if root.cntPos >= 0 {
		i, err := rel.Cols.Index(root.def.Base, root.def.CountName)
		if err != nil {
			return detailCtx{}, err
		}
		ctx.mPos = i
	}
	for a := range root.sumPos {
		i, err := rel.Cols.Index(root.def.Base, root.def.SumName[a])
		if err != nil {
			return detailCtx{}, err
		}
		ctx.sumPos[root.def.Base+"."+a] = i
	}
	for a := range root.minPos {
		i, err := rel.Cols.Index(root.def.Base, root.def.MinName[a])
		if err != nil {
			return detailCtx{}, err
		}
		ctx.minPos[root.def.Base+"."+a] = i
	}
	for a := range root.maxPos {
		i, err := rel.Cols.Index(root.def.Base, root.def.MaxName[a])
		if err != nil {
			return detailCtx{}, err
		}
		ctx.maxPos[root.def.Base+"."+a] = i
	}
	return ctx, nil
}

// gbBinder binds the view's group-by columns against a detail schema and
// returns a function extracting the group values of a row.
func (e *Engine) gbBinder(cols ra.Schema) (func(tuple.Tuple) ([]types.Value, error), error) {
	var fns []func(tuple.Tuple) (types.Value, error)
	for _, ci := range e.mv.gbIdx {
		f, err := e.mv.comps[ci].item.Expr.Bind(cols)
		if err != nil {
			return nil, err
		}
		fns = append(fns, f)
	}
	return func(row tuple.Tuple) ([]types.Value, error) {
		vals := make([]types.Value, len(fns))
		for i, f := range fns {
			v, err := f(row)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		return vals, nil
	}, nil
}

// sumArg resolves where a SUM component's argument lives in a detail
// schema: either the compressed SUM column (value contributes directly,
// scaled by sign only) or the raw attribute (scaled by the signed weight).
type sumArg struct {
	compressed bool
	pos        int
}

func (e *Engine) bindSumArgs(ctx detailCtx) (map[int]sumArg, error) {
	out := make(map[int]sumArg)
	for ci, c := range e.mv.comps {
		if c.kind != compSum {
			continue
		}
		if p, ok := ctx.sumPos[c.arg.Table+"."+c.arg.Name]; ok {
			out[ci] = sumArg{compressed: true, pos: p}
			continue
		}
		p, err := ctx.rel.Cols.Index(c.arg.Table, c.arg.Name)
		if err != nil {
			return nil, err
		}
		out[ci] = sumArg{pos: p}
	}
	return out, nil
}

// storedArgPos resolves where a stored (non-CSMAS) component's argument
// lives in a detail schema: the raw attribute when present, otherwise the
// append-only-compressed MIN/MAX column of the same attribute.
func storedArgPos(ctx detailCtx, c component) (int, error) {
	if p, err := ctx.rel.Cols.Index(c.arg.Table, c.arg.Name); err == nil {
		return p, nil
	}
	key := c.arg.Table + "." + c.arg.Name
	if c.item.Agg.Func == ra.FuncMin && !c.item.Agg.Distinct {
		if p, ok := ctx.minPos[key]; ok {
			return p, nil
		}
	}
	if c.item.Agg.Func == ra.FuncMax && !c.item.Agg.Distinct {
		if p, ok := ctx.maxPos[key]; ok {
			return p, nil
		}
	}
	_, err := ctx.rel.Cols.Index(c.arg.Table, c.arg.Name)
	return -1, err
}

// adjustFromDetail applies incremental CSMAS adjustments for each weighted
// detail row; with raise set, stored MIN/MAX components absorb the
// insertion batch (the SMA insertion fast path).
func (e *Engine) adjustFromDetail(ctx detailCtx, weights []int64, raise bool) error {
	gb, err := e.gbBinder(ctx.rel.Cols)
	if err != nil {
		return err
	}
	sums, err := e.bindSumArgs(ctx)
	if err != nil {
		return err
	}
	type storedBind struct {
		comp int
		pos  int
	}
	var stored []storedBind
	if raise {
		for ci, c := range e.mv.comps {
			if c.kind != compStored {
				continue
			}
			p, err := storedArgPos(ctx, c)
			if err != nil {
				return err
			}
			stored = append(stored, storedBind{comp: ci, pos: p})
		}
	}
	for i, row := range ctx.rel.Rows {
		w := weights[i]
		gbVals, err := gb(row)
		if err != nil {
			return err
		}
		sumDeltas := make(map[int]types.Value, len(sums))
		for ci, sa := range sums {
			var d types.Value
			if sa.compressed {
				v := row[sa.pos]
				sign := int64(1)
				if w < 0 {
					sign = -1
				}
				d, err = types.Mul(types.Int(sign), v)
			} else {
				d, err = types.Mul(types.Int(w), row[sa.pos])
			}
			if err != nil {
				return err
			}
			sumDeltas[ci] = d
		}
		if err := e.mv.adjust(gbVals, w, sumDeltas); err != nil {
			return err
		}
		e.stats.GroupAdjusts++
		for _, sb := range stored {
			e.mv.raiseExtrema(gbVals, sb.comp, row[sb.pos])
		}
	}
	return nil
}

// affectedKeys returns the encoded group keys the detail rows touch.
func (e *Engine) affectedKeys(ctx detailCtx) (map[string]bool, error) {
	gb, err := e.gbBinder(ctx.rel.Cols)
	if err != nil {
		return nil, err
	}
	keys := make(map[string]bool)
	for _, row := range ctx.rel.Rows {
		vals, err := gb(row)
		if err != nil {
			return nil, err
		}
		keys[tuple.Tuple(vals).Key()] = true
	}
	return keys, nil
}

// recomputeGroups repairs the given groups from the auxiliary views alone:
// the full auxiliary detail is joined, restricted to the affected groups,
// and re-aggregated (Section 3.2's recomputation of non-CSMAS aggregates
// from the auxiliary views).
func (e *Engine) recomputeGroups(keys map[string]bool) error {
	if len(keys) == 0 {
		return nil
	}
	full, err := e.fullAuxDetail()
	if err != nil {
		return err
	}
	gb, err := e.gbBinder(full.rel.Cols)
	if err != nil {
		return err
	}
	sub := detailCtx{mPos: full.mPos, sumPos: full.sumPos}
	sub.rel = ra.NewRelation(full.rel.Cols)
	for _, row := range full.rel.Rows {
		vals, err := gb(row)
		if err != nil {
			return err
		}
		if keys[tuple.Tuple(vals).Key()] {
			sub.rel.Rows = append(sub.rel.Rows, row)
		}
	}
	groups, err := e.computeGroups(sub, keys)
	if err != nil {
		return err
	}
	e.mv.deleteGroups(keys)
	for _, row := range groups {
		e.mv.setRow(row)
		e.stats.GroupRecomputes++
	}
	if e.mv.global() && len(groups) == 0 {
		e.mv.setRow(e.mv.blank(nil))
	}
	return nil
}

// computeGroups aggregates detail rows into maintenance-form component
// rows. With keys non-nil, only groups in the set are produced (defensive;
// callers pre-filter the rows).
func (e *Engine) computeGroups(ctx detailCtx, keys map[string]bool) (map[string]tuple.Tuple, error) {
	gb, err := e.gbBinder(ctx.rel.Cols)
	if err != nil {
		return nil, err
	}
	sums, err := e.bindSumArgs(ctx)
	if err != nil {
		return nil, err
	}
	type storedAcc struct {
		comp     int
		pos      int
		agg      *ra.Aggregate
		extremum map[string]types.Value            // group key -> MIN/MAX value
		distinct map[string]map[string]types.Value // group key -> set
	}
	var storeds []*storedAcc
	for ci, c := range e.mv.comps {
		if c.kind != compStored {
			continue
		}
		p, err := storedArgPos(ctx, c)
		if err != nil {
			return nil, err
		}
		storeds = append(storeds, &storedAcc{
			comp: ci, pos: p, agg: c.item.Agg,
			extremum: make(map[string]types.Value),
			distinct: make(map[string]map[string]types.Value),
		})
	}

	rows := make(map[string]tuple.Tuple)
	for _, row := range ctx.rel.Rows {
		gbVals, err := gb(row)
		if err != nil {
			return nil, err
		}
		key := tuple.Tuple(gbVals).Key()
		if keys != nil && !keys[key] {
			continue
		}
		m := ctx.multiplicity(row)
		out, ok := rows[key]
		if !ok {
			out = e.mv.blank(gbVals)
			rows[key] = out
		}
		for ci, c := range e.mv.comps {
			switch c.kind {
			case compCount:
				out[ci] = types.Int(out[ci].AsInt() + m)
			case compSum:
				sa := sums[ci]
				var d types.Value
				if sa.compressed {
					d = row[sa.pos]
				} else {
					var err error
					d, err = types.Mul(types.Int(m), row[sa.pos])
					if err != nil {
						return nil, err
					}
				}
				if out[ci].IsNull() {
					out[ci] = d
				} else {
					s, err := types.Add(out[ci], d)
					if err != nil {
						return nil, err
					}
					out[ci] = s
				}
			}
		}
		h := e.mv.hiddenIdx()
		out[h] = types.Int(out[h].AsInt() + m)

		for _, sa := range storeds {
			v := row[sa.pos]
			if sa.agg.Distinct {
				set := sa.distinct[key]
				if set == nil {
					set = make(map[string]types.Value)
					sa.distinct[key] = set
				}
				set[string(types.Encode(nil, v))] = v
				continue
			}
			cur, ok := sa.extremum[key]
			switch {
			case !ok:
				sa.extremum[key] = v
			case sa.agg.Func == ra.FuncMin && types.Compare(v, cur) < 0:
				sa.extremum[key] = v
			case sa.agg.Func == ra.FuncMax && types.Compare(v, cur) > 0:
				sa.extremum[key] = v
			}
		}
	}

	// Finalize stored components.
	for _, sa := range storeds {
		for key, out := range rows {
			if sa.agg.Distinct {
				set := sa.distinct[key]
				v, err := finalizeDistinct(sa.agg, set)
				if err != nil {
					return nil, err
				}
				out[sa.comp] = v
			} else if v, ok := sa.extremum[key]; ok {
				out[sa.comp] = v
			}
		}
	}
	return rows, nil
}

// finalizeDistinct computes a DISTINCT aggregate over a value set.
func finalizeDistinct(agg *ra.Aggregate, set map[string]types.Value) (types.Value, error) {
	switch agg.Func {
	case ra.FuncCount:
		return types.Int(int64(len(set))), nil
	case ra.FuncSum, ra.FuncAvg:
		if len(set) == 0 {
			return types.Null, nil
		}
		sum := types.Value(types.Int(0))
		for _, v := range set {
			s, err := types.Add(sum, v)
			if err != nil {
				return types.Null, err
			}
			sum = s
		}
		if agg.Func == ra.FuncSum {
			return sum, nil
		}
		return types.Float(sum.AsFloat() / float64(len(set))), nil
	case ra.FuncMin, ra.FuncMax:
		// MIN/MAX(DISTINCT a) ≡ MIN/MAX(a); handled via extremum normally,
		// but DISTINCT forces the set path.
		var best types.Value = types.Null
		for _, v := range set {
			if best.IsNull() ||
				(agg.Func == ra.FuncMin && types.Compare(v, best) < 0) ||
				(agg.Func == ra.FuncMax && types.Compare(v, best) > 0) {
				best = v
			}
		}
		return best, nil
	default:
		return types.Null, fmt.Errorf("maintain: unsupported DISTINCT aggregate %s", agg)
	}
}
