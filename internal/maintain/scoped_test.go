package maintain

import (
	"fmt"
	"testing"

	"mindetail/internal/ra"
	"mindetail/internal/tuple"
	"mindetail/internal/types"
)

// checkAuxIndexes verifies the structural invariants of every hash index on
// an auxiliary table: each row appears exactly once per index, under the
// entry matching its current attribute value, and no entry is stale.
func checkAuxIndexes(t *testing.T, at *AuxTable) {
	t.Helper()
	for attr, m := range at.idx {
		pos, ok := at.idxPos[attr]
		if !ok {
			t.Fatalf("%s: index on %s has no cached position", at.def.Name, attr)
		}
		total := 0
		for vk, keys := range m {
			for _, k := range keys {
				total++
				row, ok, err := at.store.GetString(k)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					t.Fatalf("%s: index on %s references missing row %q", at.def.Name, attr, k)
				}
				if got := string(types.Encode(nil, row[pos])); got != vk {
					t.Fatalf("%s: index on %s lists row %q under stale value (have %q, row encodes %q)",
						at.def.Name, attr, k, vk, got)
				}
			}
		}
		if total != at.Len() {
			t.Fatalf("%s: index on %s holds %d entries for %d rows", at.def.Name, attr, total, at.Len())
		}
	}
}

// lookupVals returns the encoded keys of the rows an index probe yields.
func lookupVals(at *AuxTable, attr string, v types.Value) []string {
	var out []string
	for _, r := range at.Lookup(attr, v) {
		out = append(out, r.Key())
	}
	return out
}

// TestAuxTableIndexConsistency drives update (re-key) and group-death
// traffic through an engine and asserts that every auxiliary index follows
// the key changes: entries move with the rows, probes of old values miss,
// and no stale entries accumulate.
func TestAuxTableIndexConsistency(t *testing.T) {
	f := newFixture(t, retailDDL,
		`SELECT brand, SUM(price) AS total, COUNT(*) AS cnt
		 FROM sale, product WHERE sale.productid = product.id GROUP BY brand`, true)
	f.seedRetail()
	f.initEngine()

	prod := f.engine.Aux("product") // PSJ: id (join key), brand (group-by)
	if prod == nil {
		t.Fatal("product auxiliary view missing")
	}
	if err := prod.EnsureIndex("brand"); err != nil {
		t.Fatal(err)
	}
	sale := f.engine.Aux("sale") // compressed root: productid plain + SUM/COUNT
	if sale == nil {
		t.Fatal("sale auxiliary view missing")
	}
	checkAuxIndexes(t, prod)
	checkAuxIndexes(t, sale)

	// Re-key: a brand rename must move the product row's index entries.
	if got := lookupVals(prod, "brand", types.Str("acme")); len(got) != 1 {
		t.Fatalf("brand=acme: got %d rows, want 1", len(got))
	}
	f.updateRow("product", 100, map[string]types.Value{"brand": types.Str("apex")})
	checkAuxIndexes(t, prod)
	checkAuxIndexes(t, sale)
	if got := lookupVals(prod, "brand", types.Str("acme")); len(got) != 0 {
		t.Fatalf("brand=acme after rename: got %d rows, want 0", len(got))
	}
	if got := lookupVals(prod, "brand", types.Str("apex")); len(got) != 1 {
		t.Fatalf("brand=apex after rename: got %d rows, want 1", len(got))
	}

	// Group death: deleting every sale of product 102 must remove the
	// compressed group and its index entries.
	if got := lookupVals(sale, "productid", types.Int(102)); len(got) != 1 {
		t.Fatalf("productid=102: got %d groups, want 1", len(got))
	}
	f.deleteRow("sale", 5)
	checkAuxIndexes(t, prod)
	checkAuxIndexes(t, sale)
	if got := lookupVals(sale, "productid", types.Int(102)); len(got) != 0 {
		t.Fatalf("productid=102 after delete: got %d groups, want 0", len(got))
	}

	// Growth after death: re-inserting re-creates the group and entry.
	f.insertSale(3, 102, 8, 4.25)
	checkAuxIndexes(t, prod)
	checkAuxIndexes(t, sale)
	if got := lookupVals(sale, "productid", types.Int(102)); len(got) != 1 {
		t.Fatalf("productid=102 after re-insert: got %d groups, want 1", len(got))
	}
}

// mvGroupSet rebuilds a groupSet for every currently materialized group —
// the shape recomputeGroups receives.
func mvGroupSet(e *Engine) groupSet {
	keys := make(groupSet, len(e.mv.rows))
	for k, row := range e.mv.rows {
		vals := make([]types.Value, len(e.mv.gbIdx))
		for i, gi := range e.mv.gbIdx {
			vals[i] = row[gi]
		}
		keys[k] = vals
	}
	return keys
}

// TestScopedAuxDetailMatchesFull asserts the heart of the delta-scoped
// pipeline: for any affected-group set, the scoped detail aggregates to
// exactly the same component rows as the full auxiliary re-join, while
// touching only rows reachable from the groups' own key values.
func TestScopedAuxDetailMatchesFull(t *testing.T) {
	f := newFixture(t, retailDDL,
		`SELECT month, SUM(price) AS total, COUNT(*) AS cnt, COUNT(DISTINCT brand) AS brands
		 FROM sale, time, product
		 WHERE sale.timeid = time.id AND sale.productid = product.id AND time.year = 1997
		 GROUP BY month`, true)
	f.seedRetail()
	f.initEngine()
	e := f.engine

	all := mvGroupSet(e)
	if len(all) == 0 {
		t.Fatal("no materialized groups")
	}
	full, err := e.fullAuxDetail()
	if err != nil {
		t.Fatal(err)
	}
	wantAll, err := e.aggregateGroupsForTest(full, all)
	if err != nil {
		t.Fatal(err)
	}

	// Every single-group subset must recompute identically through the
	// scoped path, from strictly fewer detail rows.
	for k, vals := range all {
		sub := groupSet{k: vals}
		ctx, ok, err := e.scopedAuxDetail(sub)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("scoped path declined for group %v", vals)
		}
		if len(ctx.rel.Rows) >= len(full.rel.Rows) && len(all) > 1 {
			t.Fatalf("scoped detail for %v has %d rows, full has %d — no reduction",
				vals, len(ctx.rel.Rows), len(full.rel.Rows))
		}
		got, err := e.aggregateGroupsForTest(ctx, sub)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 {
			t.Fatalf("group %v: scoped recompute produced %d groups, want 1", vals, len(got))
		}
		if !tuple.Identical(got[k], wantAll[k]) {
			t.Fatalf("group %v: scoped %v != full %v", vals, got[k], wantAll[k])
		}
	}
}

// aggregateGroupsForTest runs computeGroups over a detail context (test
// shim keeping the production signature private to this package's callers).
func (e *Engine) aggregateGroupsForTest(ctx detailCtx, keys groupSet) (map[string]tuple.Tuple, error) {
	return e.computeGroups(ctx, keys)
}

// TestParallelRecomputeMatchesSerial aggregates an above-threshold detail
// relation with one worker and with many, asserting identical component
// rows. Under -race this also proves the worker pool clean.
func TestParallelRecomputeMatchesSerial(t *testing.T) {
	f := newFixture(t, retailDDL,
		`SELECT day, SUM(price) AS total, COUNT(*) AS cnt, COUNT(DISTINCT brand) AS brands
		 FROM sale, time, product
		 WHERE sale.timeid = time.id AND sale.productid = product.id
		 GROUP BY day`, true)
	// A seed set large enough to clear parallelRecomputeThreshold, with
	// distinct prices so the root view barely compresses.
	ins := func(table string, vals ...types.Value) {
		if err := f.db.Insert(table, tuple.Tuple(vals)); err != nil {
			t.Fatal(err)
		}
	}
	days := 500
	for id := 1; id <= days; id++ {
		ins("time", types.Int(int64(id)), types.Int(int64(id%28+1)), types.Int(int64(id/28+1)), types.Int(1997))
	}
	// 19 is coprime with the day count, so (timeid, productid) pairs — the
	// root view's grouping — stay distinct and the detail stays large.
	for id := 1; id <= 19; id++ {
		ins("product", types.Int(int64(id)), types.Str(fmt.Sprintf("b%d", id%7)), types.Str("c"))
	}
	ins("store", types.Int(1), types.Str("aalborg"), types.Str("kim"))
	n := parallelRecomputeThreshold + 1000
	for id := 1; id <= n; id++ {
		ins("sale", types.Int(int64(id)), types.Int(int64(id%days+1)), types.Int(int64(id%19+1)),
			types.Int(1), types.Float(float64(id%997)+0.25))
	}
	f.initEngine()
	e := f.engine

	full, err := e.fullAuxDetail()
	if err != nil {
		t.Fatal(err)
	}
	if len(full.rel.Rows) < parallelRecomputeThreshold {
		t.Fatalf("detail has %d rows, below parallel threshold %d", len(full.rel.Rows), parallelRecomputeThreshold)
	}
	e.Workers = 1
	serial, err := e.computeGroups(full, nil)
	if err != nil {
		t.Fatal(err)
	}
	e.Workers = 8
	parallel, err := e.computeGroups(full, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("serial produced %d groups, parallel %d", len(serial), len(parallel))
	}
	for k, want := range serial {
		got, ok := parallel[k]
		if !ok {
			t.Fatalf("parallel result missing group %q", k)
		}
		if !tuple.Identical(got, want) {
			t.Fatalf("group %q: parallel %v != serial %v", k, got, want)
		}
	}

	// End to end: a deletion-driven recomputation (DISTINCT forces the
	// recompute path) must leave the view identical under both pool sizes.
	shadow := mustEngine(t, e.plan)
	shadow.Workers = 1
	shadow.ForceFullRecompute = true
	if err := shadow.Init(func(tb string) *ra.Relation {
		return ra.FromTable(f.db.Table(tb), tb)
	}); err != nil {
		t.Fatal(err)
	}
	row, err := f.db.Delete("sale", types.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	d := Delta{Table: "sale", Deletes: []tuple.Tuple{row}}
	if err := e.Apply(d); err != nil {
		t.Fatal(err)
	}
	if err := shadow.Apply(d); err != nil {
		t.Fatal(err)
	}
	if g, s := e.Snapshot().Format(), shadow.Snapshot().Format(); g != s {
		t.Fatalf("scoped+parallel snapshot diverged from full+serial:\n%s\n---\n%s", g, s)
	}
}

// TestScopedPathFallsBackForGlobalViews exercises the fallback: a view with
// no group-by attributes cannot seed the scoped path and must still repair
// correctly through the full re-join.
func TestScopedPathFallsBackForGlobalViews(t *testing.T) {
	f := newFixture(t, retailDDL,
		`SELECT SUM(price) AS total, COUNT(DISTINCT brand) AS brands
		 FROM sale, product WHERE sale.productid = product.id`, true)
	f.seedRetail()
	f.initEngine()

	_, ok, err := f.engine.scopedAuxDetail(mvGroupSet(f.engine))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("scoped path unexpectedly seeded a global view")
	}
	f.deleteRow("sale", 1) // forces recomputation through the fallback
	f.deleteRow("sale", 2)
}
