package maintain

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"mindetail/internal/ra"
	"mindetail/internal/tuple"
	"mindetail/internal/types"
)

// DeltaMemo shares per-delta maintenance work across the engines of one
// warehouse (or one shared class) during a single propagation. The paper's
// Section 4 observes that many views maintained over the same sources
// should share work; Mistry et al. (cs/0003006) show that once per-view
// maintenance is incremental, the dominant remaining cost is every view
// independently re-deriving the *same* intermediate results. The memo
// eliminates that: delta expansion, per-table local filtering, the
// delta-detail join, and the scoped group recomputation are each computed
// once per distinct plan signature and handed to every engine whose
// signature matches.
//
// A memo is valid for exactly ONE delta: the warehouse scheduler creates a
// fresh memo per propagate call and drops it afterwards. Keys therefore
// never encode the delta's contents — only the plan signature of the work.
//
// Sharing is sound because engines with equal signatures inside one
// propagation domain are replicas: propagation is all-or-nothing across
// views (PR 2), so two engines whose plans agree have bit-identical
// auxiliary state, and produce bit-identical intermediate results for the
// same delta. Memoized values are treated as immutable by every consumer;
// results that engines would later mutate in place (recomputed group rows)
// are cloned before installation.
//
// Concurrency: the first engine to request a key computes it; concurrent
// requesters block on the entry's done channel. The computing goroutine is
// always active (it never waits on another memo entry except the strictly
// lower expansion level), so there is no cycle and no deadlock.
type DeltaMemo struct {
	mu      sync.Mutex
	entries map[string]*memoEntry

	hits   atomic.Int64
	misses atomic.Int64
	waits  atomic.Int64 // hits that blocked on an in-flight computation
}

type memoEntry struct {
	done chan struct{}
	val  any
	err  error
}

// NewDeltaMemo returns an empty memo for one delta propagation.
func NewDeltaMemo() *DeltaMemo {
	return &DeltaMemo{entries: make(map[string]*memoEntry)}
}

// Stats reports how many lookups were served from the memo versus computed,
// and how many of the served lookups had to block on an in-flight
// computation (waits <= hits; a high wait share means consumers arrive
// before producers finish, i.e. the sharing is on the critical path).
func (m *DeltaMemo) Stats() (hits, misses, waits int64) {
	return m.hits.Load(), m.misses.Load(), m.waits.Load()
}

// do returns the memoized value for key, invoking compute at most once per
// memo lifetime. Errors are memoized too: every engine that shares a failed
// computation observes the same error and rolls back.
func (m *DeltaMemo) do(key string, compute func() (any, error)) (any, error) {
	m.mu.Lock()
	if ent, ok := m.entries[key]; ok {
		m.mu.Unlock()
		select {
		case <-ent.done:
		default:
			m.waits.Add(1)
			<-ent.done
		}
		m.hits.Add(1)
		return ent.val, ent.err
	}
	ent := &memoEntry{done: make(chan struct{})}
	m.entries[key] = ent
	m.mu.Unlock()
	m.misses.Add(1)
	ent.val, ent.err = compute()
	close(ent.done)
	return ent.val, ent.err
}

// detailResult is the memoized outcome of the delta-detail join: the
// weighted detail rows every matching engine adjusts or recomputes from.
// Consumers treat both fields as read-only.
type detailResult struct {
	ctx     detailCtx
	weights []int64
}

// buildMemoKey renders the engine's join-level memo key: every maintenance
// decision that shapes the delta-detail join and the recomputation — the
// plan fingerprint (computed at derive time in internal/core), the engine
// options, the shared-mode residual conditions, and the propagation scope
// (standalone engines of one warehouse share one scope; each shared class
// is its own scope, since its auxiliary tables are class-specific).
func (e *Engine) buildMemoKey() string {
	var b strings.Builder
	b.WriteString(e.memoScope)
	b.WriteByte('|')
	b.WriteString(e.plan.Fingerprint())
	fmt.Fprintf(&b, "|ns=%t|ffr=%t|skip=%t|strat=%s", e.UseNeedSets, e.ForceFullRecompute, e.skipAux, e.strategy)
	if len(e.residual) > 0 {
		tabs := make([]string, 0, len(e.residual))
		for t := range e.residual {
			tabs = append(tabs, t)
		}
		sort.Strings(tabs)
		for _, t := range tabs {
			for _, c := range e.residual[t] {
				fmt.Fprintf(&b, "|res:%s:%s", t, c.String())
			}
		}
	}
	return b.String()
}

// recomputeMemoKey extends the join key with the canonical form of the
// affected-group set: sorted encoded group keys, length-prefixed so
// concatenation is unambiguous.
func recomputeMemoKey(joinKey string, keys groupSet) string {
	ks := make([]string, 0, len(keys))
	for k := range keys {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	var b strings.Builder
	b.WriteString("recomp|")
	b.WriteString(joinKey)
	for _, k := range ks {
		fmt.Fprintf(&b, "|%d:", len(k))
		b.WriteString(k)
	}
	return b.String()
}

// expandFiltered produces the signed, locally-filtered delta rows for
// staging. Without a memo this is the classic expand + in-place filter.
// With one, the expansion is shared across every plan whose TableSig.Expand
// for the delta's table matches (same observable attributes imply identical
// no-op-update elimination), and the filtered rows across every plan whose
// TableSig.Filter matches (same local conditions on top). Memoized slices
// are shared between engines, so the filter copies instead of compacting in
// place, and downstream consumers treat the rows as read-only.
func (e *Engine) expandFiltered(d Delta) ([]signedRow, error) {
	if e.memo == nil {
		st := e.stageStart()
		signed, err := e.expand(d)
		e.stageEnd(StageExpand, st)
		if err != nil {
			return nil, err
		}
		st = e.stageStart()
		out, err := e.localFilter(d.Table, signed)
		e.stageEnd(StageFilter, st)
		return out, err
	}
	sig := e.plan.TableSig(d.Table)
	v, err := e.memo.do("filter|"+sig.Filter, func() (any, error) {
		// Stage timings run inside the compute closures, so shared work is
		// recorded exactly once, by the engine that performed it (matching
		// the Stats attribution policy).
		ev, err := e.memo.do("expand|"+sig.Expand, func() (any, error) {
			st := e.stageStart()
			defer func() { e.stageEnd(StageExpand, st) }()
			return e.expand(d)
		})
		if err != nil {
			return nil, err
		}
		st := e.stageStart()
		defer func() { e.stageEnd(StageFilter, st) }()
		expanded := ev.([]signedRow)
		pred, err := e.localPred(d.Table)
		if err != nil {
			return nil, err
		}
		if pred == nil {
			return expanded, nil
		}
		out := make([]signedRow, 0, len(expanded))
		for _, sr := range expanded {
			ok, err := pred(sr.row)
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, sr)
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return v.([]signedRow), nil
}

// deltaDetailShared is deltaDetail with cross-engine sharing: engines whose
// join-level memo keys match consume one join result. The computing engine
// reads its own auxiliary tables; consumers' tables are bit-identical
// replicas (see DeltaMemo), so the result is valid for all of them.
func (e *Engine) deltaDetailShared(t string, signed []signedRow) (detailCtx, []int64, error) {
	if e.memo == nil {
		st := e.stageStart()
		ctx, weights, err := e.deltaDetail(t, signed)
		e.stageEnd(StageDeltaJoin, st)
		return ctx, weights, err
	}
	v, err := e.memo.do("detail|"+t+"|"+e.memoKey, func() (any, error) {
		st := e.stageStart()
		defer func() { e.stageEnd(StageDeltaJoin, st) }()
		ctx, weights, err := e.deltaDetail(t, signed)
		if err != nil {
			return nil, err
		}
		return &detailResult{ctx: ctx, weights: weights}, nil
	})
	if err != nil {
		return detailCtx{}, nil, err
	}
	r := v.(*detailResult)
	return r.ctx, r.weights, nil
}

// recomputedGroups derives the replacement rows for the affected groups —
// scoped auxiliary detail (falling back to the full join) plus
// re-aggregation. With a memo the whole pipeline is computed once per
// (join key, affected-group set); the returned map is shared, and the
// second result tells the caller to clone rows before installing them
// (installed rows are mutated in place by later adjustments and by
// rollback, and the memo's copy must stay pristine for other consumers).
func (e *Engine) recomputedGroups(keys groupSet) (map[string]tuple.Tuple, bool, error) {
	compute := func() (map[string]tuple.Tuple, error) {
		var ctx detailCtx
		scoped := false
		// The scoped-vs-full decision: an explicit per-apply StrategyFull
		// (or the engine-level ForceFullRecompute oracle knob) takes the
		// full join; otherwise the scoped path is attempted and its shape
		// check — a pure function of the plan, identical across replica
		// engines — decides the fallback. With a memo the whole closure
		// runs once per (join key, group set), and the strategy is part of
		// the join key, so replicas never mix results from different paths.
		if !e.ForceFullRecompute && e.strategy != StrategyFull {
			var err error
			ctx, scoped, err = e.scopedAuxDetail(keys)
			if err != nil {
				return nil, err
			}
		}
		if !scoped {
			full, err := e.fullAuxDetail()
			if err != nil {
				return nil, err
			}
			ctx = full
		}
		return e.computeGroups(ctx, keys)
	}
	if e.memo == nil {
		st := e.stageStart()
		groups, err := compute()
		e.stageEnd(StageRecompute, st)
		return groups, false, err
	}
	v, err := e.memo.do(recomputeMemoKey(e.memoKey, keys), func() (any, error) {
		st := e.stageStart()
		defer func() { e.stageEnd(StageRecompute, st) }()
		return compute()
	})
	if err != nil {
		return nil, false, err
	}
	return v.(map[string]tuple.Tuple), true, nil
}

// probeView adapts an auxiliary table to ra.Indexed with private probe
// scratch: index-join evaluation through it never touches the table's own
// reusable buffers, so several engines of a shared class can evaluate
// index joins over the same tables concurrently.
type probeView struct {
	at  *AuxTable
	buf []byte
	out []tuple.Tuple
}

func (p *probeView) Cols() ra.Schema { return p.at.cols }

func (p *probeView) Lookup(attr string, v types.Value) []tuple.Tuple {
	p.out, p.buf = p.at.lookupInto(attr, v, p.out[:0], p.buf[:0])
	return p.out
}
