// Rollback and index-integrity coverage for engines whose auxiliary views
// live on pager-backed stores. This file is an external test package because
// internal/pager (via internal/wal) imports maintain — the production
// dependency points the other way, through the AuxStore seam.
package maintain_test

import (
	"errors"
	"fmt"
	"testing"

	"mindetail/internal/experiments"
	"mindetail/internal/faultinject"
	"mindetail/internal/maintain"
	"mindetail/internal/pager"
	"mindetail/internal/ra"
	"mindetail/internal/tuple"
	"mindetail/internal/types"
	"mindetail/internal/workload"
)

// pagedParams is deliberately tiny relative to the 4-frame pool below: the
// sale detail spans dozens of pages, so every apply crosses the eviction
// boundary — rows journaled for undo get evicted and re-fetched mid-apply.
var pagedParams = workload.RetailParams{
	Days: 120, Stores: 1, Products: 20, ProductsSoldPerDay: 5,
	TransactionsPerProduct: 1, Brands: 5, SelectYear: 1997, Seed: 7,
}

const pagedViewSQL = `SELECT time.month, time.day, SUM(price) AS TotalPrice,
	COUNT(*) AS TotalCount, COUNT(DISTINCT brand) AS DifferentBrands
FROM sale, time, product
WHERE time.year = 1997 AND sale.timeid = time.id AND sale.productid = product.id
GROUP BY time.month, time.day`

var pagedTables = []string{"sale", "time", "product", "store"}

// newPagedEngine builds the retail engine and moves its auxiliary views onto
// a pager factory with the smallest page size and pool the pager supports.
func newPagedEngine(t *testing.T) (*experiments.Env, *maintain.Engine) {
	t.Helper()
	env, err := experiments.NewEnv(pagedParams)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := env.MinimalEngine(pagedViewSQL)
	if err != nil {
		t.Fatal(err)
	}
	fac, err := pager.NewFactory(t.TempDir(), pager.Options{PageSize: 256, PoolPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fac.Close() })
	if err := eng.SetAuxStores(func(table string) (maintain.AuxStore, error) {
		return fac.Open("v", table)
	}); err != nil {
		t.Fatal(err)
	}
	for _, st := range fac.Stats() {
		if st.Table == "sale" && st.FilePages < 10*st.Budget {
			t.Fatalf("sale detail spans only %d pages against a %d-frame pool; the test needs heavy eviction",
				st.FilePages, st.Budget)
		}
	}
	return env, eng
}

// capture deep-copies the engine's user-visible state.
func capture(e *maintain.Engine) (*ra.Relation, map[string]*ra.Relation) {
	clone := func(r *ra.Relation) *ra.Relation {
		out := &ra.Relation{Cols: append(ra.Schema(nil), r.Cols...)}
		out.Rows = make([]tuple.Tuple, len(r.Rows))
		for i, row := range r.Rows {
			out.Rows[i] = row.Clone()
		}
		return out
	}
	aux := make(map[string]*ra.Relation)
	for _, tb := range pagedTables {
		if at := e.Aux(tb); at != nil {
			aux[tb] = clone(at.Relation())
		}
	}
	return clone(e.Snapshot()), aux
}

// checkAux asserts every auxiliary index is coherent with its paged rows.
func checkAux(t *testing.T, e *maintain.Engine, when string) {
	t.Helper()
	for _, tb := range pagedTables {
		if at := e.Aux(tb); at != nil {
			if err := at.CheckIndexes(); err != nil {
				t.Fatalf("%s: %s: %v", when, tb, err)
			}
		}
	}
}

// TestPagedCheckIndexes drives a mixed delta stream through a paged engine
// under constant eviction and asserts the hash indexes stay coherent with
// the on-disk rows, and that the view matches an in-memory twin fed the
// same stream.
func TestPagedCheckIndexes(t *testing.T) {
	env, paged := newPagedEngine(t)
	mem, err := env.MinimalEngine(pagedViewSQL)
	if err != nil {
		t.Fatal(err)
	}

	mut := workload.NewMutator(env.DB, env.Params)
	mix := workload.DefaultMix()
	for i := 0; i < 40; i++ {
		d, err := mut.Next(mix)
		if err != nil {
			t.Fatal(err)
		}
		if err := paged.Apply(d); err != nil {
			t.Fatalf("delta %d on paged engine: %v", i, err)
		}
		if err := mem.Apply(d); err != nil {
			t.Fatalf("delta %d on in-memory engine: %v", i, err)
		}
		checkAux(t, paged, fmt.Sprintf("after delta %d", i))
	}
	requireViewsMatch(t, paged.Snapshot(), mem.Snapshot())
}

// requireViewsMatch compares two view snapshots group by group. SUM columns
// may differ in the last ulp between the backends: a recompute accumulates
// floats in scan order, and the paged store scans key-sorted pages while the
// in-memory store iterates a Go map. Everything else must match exactly.
func requireViewsMatch(t *testing.T, got, want *ra.Relation) {
	t.Helper()
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("paged view has %d groups, in-memory twin has %d", len(got.Rows), len(want.Rows))
	}
	gpos := []int{0, 1}
	index := make(map[string]tuple.Tuple, len(want.Rows))
	for _, r := range want.Rows {
		index[r.KeyAt(gpos)] = r
	}
	for _, g := range got.Rows {
		w, ok := index[g.KeyAt(gpos)]
		if !ok {
			t.Fatalf("paged view has extra group %v", g[:2])
		}
		for i := range g {
			a, b := g[i].AsFloat(), w[i].AsFloat()
			if diff := a - b; diff > 1e-9*(1+b) || -diff > 1e-9*(1+b) {
				t.Fatalf("group %v column %d: paged %v, in-memory %v", g[:2], i, g[i], w[i])
			}
		}
	}
}

// TestPagedRollbackAcrossEviction sweeps an injected failure across every
// reachable injection point of an update apply — including PageEvict and
// PageFlush inside the buffer pool — on a 4-frame pool where the journaled
// rows are guaranteed to cross the eviction boundary mid-apply. After every
// injected failure the view, the auxiliary rows, and the hash indexes must
// be bit-identical to the pre-delta state.
func TestPagedRollbackAcrossEviction(t *testing.T) {
	env, eng := newPagedEngine(t)

	sale := env.Src("sale")
	if len(sale.Rows) == 0 {
		t.Fatal("no sale rows")
	}
	old := sale.Rows[0]
	alt := old.Clone()
	alt[4] = types.Float(old[4].AsFloat() + 1)
	d := maintain.Delta{Table: "sale", Updates: []maintain.Update{{Old: old, New: alt}}}

	const limit = 100000
	pagePoints := map[faultinject.Point]bool{}
	for failAt := int64(1); failAt <= limit; failAt++ {
		snapBefore, auxBefore := capture(eng)
		h := faultinject.NewHook(failAt)
		eng.SetFaultHook(h)
		err := eng.Apply(d)
		eng.SetFaultHook(nil)
		if err == nil {
			if p, fired := h.Fired(); fired {
				t.Fatalf("hook fired at %s but Apply succeeded", p)
			}
			if !pagePoints[faultinject.PageEvict] {
				t.Fatalf("sweep of %d points never crossed the eviction boundary; shrink the pool", failAt-1)
			}
			t.Logf("sweep committed after %d injected failures (page points hit: %v)", failAt-1, pagePoints)
			return
		}
		if !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("failAt=%d: apply failed with a genuine error: %v", failAt, err)
		}
		p, _ := h.Fired()
		if p == faultinject.PageEvict || p == faultinject.PageFlush {
			pagePoints[p] = true
		}
		when := fmt.Sprintf("failAt=%d (%s)", failAt, p)
		if got := eng.Snapshot(); !ra.EqualBag(got, snapBefore) {
			t.Fatalf("%s: materialized view changed after failed apply", when)
		}
		for tb, want := range auxBefore {
			if got := eng.Aux(tb).Relation(); !ra.EqualBag(got, want) {
				t.Fatalf("%s: auxiliary table %s changed after failed apply", when, tb)
			}
		}
		checkAux(t, eng, when)
	}
	t.Fatalf("sweep did not terminate within %d injection points", limit)
}
