package maintain

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"mindetail/internal/core"
	"mindetail/internal/faultinject"
	"mindetail/internal/gpsj"
	"mindetail/internal/ra"
	"mindetail/internal/sqlparse"
	"mindetail/internal/storage"
	"mindetail/internal/tuple"
	"mindetail/internal/types"
)

// TestMaintainFuzz generates random view shapes over a snowflake schema and
// drives each with a random, RI-consistent delta stream, comparing the
// maintained view against brute-force recomputation after every delta.
// This is the broadest correctness net in the suite: group-by choices,
// aggregate mixes, local conditions, missing referential integrity,
// mutable attributes, and Need-set modes are all randomized.
func TestMaintainFuzz(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 6
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runFuzz(t, int64(seed))
		})
	}
}

// fuzzDDL is a snowflake: fact -> dim1 -> subdim, fact -> dim2. The d2id
// edge deliberately has NO referential integrity declared on odd seeds
// (handled below by generating one of two schemas), dim1.b and fact.price
// and fact.qty are mutable.
func fuzzDDL(withRI2 bool) string {
	ri2 := ""
	if withRI2 {
		ri2 = " REFERENCES dim2"
	}
	return fmt.Sprintf(`
	CREATE TABLE subdim (id INTEGER PRIMARY KEY, s INTEGER, t VARCHAR);
	CREATE TABLE dim1 (id INTEGER PRIMARY KEY, sdid INTEGER REFERENCES subdim, a INTEGER, b VARCHAR MUTABLE);
	CREATE TABLE dim2 (id INTEGER PRIMARY KEY, x INTEGER, y VARCHAR);
	CREATE TABLE fact (id INTEGER PRIMARY KEY,
		d1id INTEGER REFERENCES dim1,
		d2id INTEGER%s,
		qty INTEGER MUTABLE,
		price FLOAT MUTABLE,
		tag VARCHAR);`, ri2)
}

// fuzzView assembles a random GPSJ view; it returns the SQL and whether it
// references dim2 and subdim.
func fuzzView(rng *rand.Rand) string {
	// Choose the table set (always includes fact, always connected).
	shapes := []string{
		"fact",
		"fact,dim1",
		"fact,dim2",
		"fact,dim1,dim2",
		"fact,dim1,subdim",
		"fact,dim1,dim2,subdim",
	}
	tables := strings.Split(shapes[rng.Intn(len(shapes))], ",")
	has := func(t string) bool {
		for _, x := range tables {
			if x == t {
				return true
			}
		}
		return false
	}

	// Group-by candidates per table set.
	var gbCands []string
	if has("dim1") {
		gbCands = append(gbCands, "dim1.a", "dim1.b", "dim1.id")
	}
	if has("dim2") {
		gbCands = append(gbCands, "dim2.x", "dim2.id")
	}
	if has("subdim") {
		gbCands = append(gbCands, "subdim.s")
	}
	gbCands = append(gbCands, "fact.tag", "fact.qty")
	rng.Shuffle(len(gbCands), func(i, j int) { gbCands[i], gbCands[j] = gbCands[j], gbCands[i] })
	ngb := rng.Intn(3) // 0..2 group-by attributes
	gb := gbCands[:ngb]

	// Aggregates: always COUNT(*), plus a random mix.
	aggCands := []string{
		"SUM(price) AS sp", "AVG(price) AS ap", "MIN(price) AS mnp",
		"MAX(price) AS mxp", "SUM(qty) AS sq", "COUNT(DISTINCT tag) AS dt",
		"MAX(qty) AS mxq",
	}
	rng.Shuffle(len(aggCands), func(i, j int) { aggCands[i], aggCands[j] = aggCands[j], aggCands[i] })
	naggs := 1 + rng.Intn(3)
	items := append([]string{}, gb...)
	items = append(items, "COUNT(*) AS cnt")
	items = append(items, aggCands[:naggs]...)

	// Conditions: the joins, plus random local conditions.
	var conds []string
	if has("dim1") {
		conds = append(conds, "fact.d1id = dim1.id")
	}
	if has("dim2") {
		conds = append(conds, "fact.d2id = dim2.id")
	}
	if has("subdim") {
		conds = append(conds, "dim1.sdid = subdim.id")
	}
	if rng.Intn(2) == 0 {
		conds = append(conds, fmt.Sprintf("fact.qty <= %d", 3+rng.Intn(6)))
	}
	if has("dim1") && rng.Intn(2) == 0 {
		conds = append(conds, fmt.Sprintf("dim1.a < %d", 2+rng.Intn(4)))
	}
	if has("subdim") && rng.Intn(2) == 0 {
		conds = append(conds, fmt.Sprintf("subdim.s <> %d", rng.Intn(3)))
	}

	sql := "SELECT " + strings.Join(items, ", ") + " FROM " + strings.Join(tables, ", ")
	if len(conds) > 0 {
		sql += " WHERE " + strings.Join(conds, " AND ")
	}
	if len(gb) > 0 {
		sql += " GROUP BY " + strings.Join(gb, ", ")
	}
	return sql
}

type fuzzState struct {
	t      *testing.T
	rng    *rand.Rand
	db     *storage.DB
	view   *gpsj.View
	engine *Engine

	// shadow maintains the same view with the delta-scoped recomputation
	// path disabled; its snapshot must stay byte-identical to the primary
	// engine's, proving the scoped path equivalent to full re-join.
	shadow *Engine

	// victim maintains the same view but suffers an injected failure at a
	// random injection point of every delta before applying it for real:
	// each failed apply must leave its state byte-identical to the
	// pre-delta state, and after the clean replay it must agree with the
	// primary engine — rollback leaves no residue that later deltas expose.
	victim *Engine

	factID  int64
	facts   []int64
	dim1IDs []int64
	dim2IDs []int64
	sdIDs   []int64
}

func runFuzz(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	cat := catalogFromDDL(t, fuzzDDL(seed%2 == 0))

	// Generate a derivable view (some random combinations hit the
	// superfluous-aggregate rejection; retry with fresh randomness).
	var v *gpsj.View
	var sql string
	var plan *core.Plan
	for try := 0; try < 50; try++ {
		sql = fuzzView(rng)
		s, err := sqlparse.Parse(sql)
		if err != nil {
			t.Fatalf("generated unparsable SQL %q: %v", sql, err)
		}
		v, err = gpsj.FromSelect(cat, "fz", s.(*sqlparse.SelectStmt))
		if err != nil {
			t.Fatalf("generated invalid view %q: %v", sql, err)
		}
		plan, err = core.Derive(v)
		if err != nil {
			if strings.Contains(err.Error(), "superfluous") {
				continue
			}
			t.Fatalf("derive %q: %v", sql, err)
		}
		break
	}
	if plan == nil {
		t.Fatal("could not generate a derivable view in 50 tries")
	}
	t.Logf("view: %s", sql)

	f := &fuzzState{t: t, rng: rng, db: storage.NewDB(cat), view: v}
	f.engine = mustEngine(t, plan)
	f.engine.UseNeedSets = seed%3 != 0 // exercise both join modes
	f.shadow = mustEngine(t, plan)
	f.shadow.ForceFullRecompute = true
	f.shadow.UseNeedSets = f.engine.UseNeedSets
	f.victim = mustEngine(t, plan)
	f.victim.UseNeedSets = f.engine.UseNeedSets

	f.seed()
	src := func(tb string) *ra.Relation {
		return ra.FromTable(f.db.Table(tb), tb)
	}
	if err := f.engine.Init(src); err != nil {
		t.Fatal(err)
	}
	if err := f.shadow.Init(src); err != nil {
		t.Fatal(err)
	}
	if err := f.victim.Init(src); err != nil {
		t.Fatal(err)
	}
	f.check("init")

	for step := 0; step < 50; step++ {
		f.step()
		f.check(fmt.Sprintf("step %d", step))
	}
}

func (f *fuzzState) mustInsert(table string, vals ...types.Value) {
	f.t.Helper()
	if err := f.db.Insert(table, tuple.Tuple(vals)); err != nil {
		f.t.Fatal(err)
	}
}

func (f *fuzzState) seed() {
	for i := int64(1); i <= 3; i++ {
		f.mustInsert("subdim", types.Int(i), types.Int(i%3), types.Str(fmt.Sprintf("t%d", i)))
		f.sdIDs = append(f.sdIDs, i)
	}
	for i := int64(1); i <= 4; i++ {
		f.mustInsert("dim1", types.Int(i), types.Int(i%3+1), types.Int(i%4), types.Str(fmt.Sprintf("b%d", i%2)))
		f.dim1IDs = append(f.dim1IDs, i)
	}
	for i := int64(1); i <= 3; i++ {
		f.mustInsert("dim2", types.Int(i), types.Int(i%2), types.Str(fmt.Sprintf("y%d", i)))
		f.dim2IDs = append(f.dim2IDs, i)
	}
	for i := 0; i < 12; i++ {
		f.insertFact()
	}
}

func (f *fuzzState) insertFact() {
	f.factID++
	f.mustInsert("fact",
		types.Int(f.factID),
		types.Int(f.dim1IDs[f.rng.Intn(len(f.dim1IDs))]),
		types.Int(f.dim2IDs[f.rng.Intn(len(f.dim2IDs))]),
		types.Int(int64(f.rng.Intn(8))),
		types.Float(float64(f.rng.Intn(40))/4),
		types.Str(fmt.Sprintf("g%d", f.rng.Intn(4))),
	)
	f.facts = append(f.facts, f.factID)
	row := f.db.Table("fact").Get(types.Int(f.factID))
	f.apply(Delta{Table: "fact", Inserts: []tuple.Tuple{row}})
}

func (f *fuzzState) apply(d Delta) {
	f.t.Helper()
	// Count the primary engine's injection-point visits for this delta so
	// the victim can fail at a uniformly random one of them.
	cnt := faultinject.Counter()
	f.engine.SetFaultHook(cnt)
	err := f.engine.Apply(d)
	f.engine.SetFaultHook(nil)
	if err != nil {
		f.t.Fatalf("Apply(%s): %v", d.Table, err)
	}
	if err := f.shadow.Apply(d); err != nil {
		f.t.Fatalf("shadow Apply(%s): %v", d.Table, err)
	}
	if visits := cnt.Visits(); visits > 0 {
		failAt := 1 + f.rng.Int63n(visits)
		before := f.victimState()
		h := faultinject.NewHook(failAt)
		f.victim.SetFaultHook(h)
		verr := f.victim.Apply(d)
		f.victim.SetFaultHook(nil)
		if verr == nil {
			if p, fired := h.Fired(); fired {
				f.t.Fatalf("victim: hook fired at %s but Apply succeeded", p)
			}
			// Visit counts can differ between engine instances only if
			// apply became nondeterministic — flag that loudly.
			f.t.Fatalf("victim: failAt=%d never reached (primary visited %d points)", failAt, visits)
		}
		if !errors.Is(verr, faultinject.ErrInjected) {
			f.t.Fatalf("victim Apply(%s) failAt=%d: genuine error: %v", d.Table, failAt, verr)
		}
		if after := f.victimState(); after != before {
			f.t.Fatalf("victim state changed after injected failure at visit %d\nbefore:\n%s\nafter:\n%s",
				failAt, before, after)
		}
	}
	if err := f.victim.Apply(d); err != nil {
		f.t.Fatalf("victim Apply(%s): %v", d.Table, err)
	}
}

// victimState renders the victim's entire state — snapshot and auxiliary
// views — to one string for byte-identical comparison.
func (f *fuzzState) victimState() string {
	var b strings.Builder
	b.WriteString(f.victim.Snapshot().Format())
	for _, tb := range f.view.Tables {
		if at := f.victim.Aux(tb); at != nil {
			fmt.Fprintf(&b, "-- aux %s --\n%s", tb, at.Relation().Format())
		}
	}
	return b.String()
}

func (f *fuzzState) step() {
	f.t.Helper()
	switch f.rng.Intn(10) {
	case 0, 1, 2, 3: // insert fact
		f.insertFact()
	case 4, 5: // delete fact
		if len(f.facts) == 0 {
			f.insertFact()
			return
		}
		i := f.rng.Intn(len(f.facts))
		row, err := f.db.Delete("fact", types.Int(f.facts[i]))
		if err != nil {
			f.t.Fatal(err)
		}
		f.facts = append(f.facts[:i], f.facts[i+1:]...)
		f.apply(Delta{Table: "fact", Deletes: []tuple.Tuple{row}})
	case 6: // update fact price
		if len(f.facts) == 0 {
			return
		}
		id := f.facts[f.rng.Intn(len(f.facts))]
		old, upd, err := f.db.Update("fact", types.Int(id),
			map[string]types.Value{"price": types.Float(float64(f.rng.Intn(40)) / 4)})
		if err != nil {
			f.t.Fatal(err)
		}
		f.apply(Delta{Table: "fact", Updates: []Update{{Old: old, New: upd}}})
	case 7: // update fact qty — a condition attribute on some views, making
		// fact itself exposed; the engine handles it as delete+insert.
		if len(f.facts) == 0 {
			return
		}
		id := f.facts[f.rng.Intn(len(f.facts))]
		old, upd, err := f.db.Update("fact", types.Int(id),
			map[string]types.Value{"qty": types.Int(int64(f.rng.Intn(8)))})
		if err != nil {
			f.t.Fatal(err)
		}
		f.apply(Delta{Table: "fact", Updates: []Update{{Old: old, New: upd}}})
	case 8: // rename dim1.b
		id := f.dim1IDs[f.rng.Intn(len(f.dim1IDs))]
		old, upd, err := f.db.Update("dim1", types.Int(id),
			map[string]types.Value{"b": types.Str(fmt.Sprintf("b%d", f.rng.Intn(3)))})
		if err != nil {
			f.t.Fatal(err)
		}
		f.apply(Delta{Table: "dim1", Updates: []Update{{Old: old, New: upd}}})
	case 9: // insert a new dimension row (no view impact until referenced)
		switch f.rng.Intn(3) {
		case 0:
			id := int64(len(f.dim1IDs) + 1)
			f.mustInsert("dim1", types.Int(id), types.Int(f.sdIDs[f.rng.Intn(len(f.sdIDs))]),
				types.Int(int64(f.rng.Intn(4))), types.Str("bnew"))
			f.dim1IDs = append(f.dim1IDs, id)
			row := f.db.Table("dim1").Get(types.Int(id))
			f.apply(Delta{Table: "dim1", Inserts: []tuple.Tuple{row}})
		case 1:
			id := int64(len(f.dim2IDs) + 1)
			f.mustInsert("dim2", types.Int(id), types.Int(int64(f.rng.Intn(2))), types.Str("ynew"))
			f.dim2IDs = append(f.dim2IDs, id)
			row := f.db.Table("dim2").Get(types.Int(id))
			f.apply(Delta{Table: "dim2", Inserts: []tuple.Tuple{row}})
		case 2:
			id := int64(len(f.sdIDs) + 1)
			f.mustInsert("subdim", types.Int(id), types.Int(int64(f.rng.Intn(3))), types.Str("tnew"))
			f.sdIDs = append(f.sdIDs, id)
			row := f.db.Table("subdim").Get(types.Int(id))
			f.apply(Delta{Table: "subdim", Inserts: []tuple.Tuple{row}})
		}
	}
}

func (f *fuzzState) check(when string) {
	f.t.Helper()
	want, err := f.view.Evaluate(f.db)
	if err != nil {
		f.t.Fatal(err)
	}
	got := f.engine.Snapshot()
	if !ra.EqualBag(got, want) {
		f.t.Fatalf("%s: diverged\nview: %s\nmaintained:\n%s\nrecomputed:\n%s",
			when, f.view.SQL(), got.Format(), want.Format())
	}
	// The delta-scoped recomputation path must be indistinguishable from
	// the full auxiliary re-join, down to the byte-rendered snapshot.
	if gf, sf := got.Format(), f.shadow.Snapshot().Format(); gf != sf {
		f.t.Fatalf("%s: scoped path diverged from full recompute\nview: %s\nscoped:\n%s\nfull:\n%s",
			when, f.view.SQL(), gf, sf)
	}
	// The victim — which failed and rolled back once per delta — must be
	// indistinguishable from the engine that never failed at all.
	if gf, vf := got.Format(), f.victim.Snapshot().Format(); gf != vf {
		f.t.Fatalf("%s: victim diverged after rollback+replay\nview: %s\nprimary:\n%s\nvictim:\n%s",
			when, f.view.SQL(), gf, vf)
	}
}
