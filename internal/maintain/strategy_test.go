package maintain

import (
	"sort"
	"strings"
	"testing"

	"mindetail/internal/tuple"
	"mindetail/internal/types"
)

func TestShapeOf(t *testing.T) {
	row := tuple.Tuple{types.Int(1)}
	cases := []struct {
		d     Delta
		class DeltaClass
		rows  int
		size  int
	}{
		{Delta{Table: "sale"}, ClassEmpty, 0, 0},
		{Delta{Table: "sale", Inserts: []tuple.Tuple{row}}, ClassInsertOnly, 1, 0},
		{Delta{Table: "sale", Deletes: []tuple.Tuple{row, row}}, ClassDeleteOnly, 2, 1},
		{Delta{Table: "sale", Updates: []Update{{Old: row, New: row}}}, ClassUpdateOnly, 2, 1},
		{Delta{Table: "sale", Inserts: []tuple.Tuple{row}, Deletes: []tuple.Tuple{row}}, ClassMixed, 2, 1},
		{Delta{Table: "sale", Inserts: make([]tuple.Tuple, 1000)}, ClassInsertOnly, 1000, 9},
	}
	for i, c := range cases {
		sh := ShapeOf(c.d)
		if sh.Table != c.d.Table || sh.Class != c.class || sh.Rows != c.rows || sh.SizeBucket != c.size {
			t.Errorf("case %d: ShapeOf = %+v, want class=%s rows=%d size=%d", i, sh, c.class, c.rows, c.size)
		}
	}
	if ShapeOf(Delta{Table: "a"}).Key() == ShapeOf(Delta{Table: "b"}).Key() {
		t.Error("shapes of different tables must key differently")
	}
}

// TestStrategyEquivalence: every per-delta strategy maintains the same view
// contents as the engine's default path, over a stream that exercises the
// recompute path (COUNT DISTINCT), CSMAS adjustments, and dimension
// updates. StrategySharded is forced onto deltas far below ShardMinRows —
// the overlay protocol must hold at any size.
func TestStrategyEquivalence(t *testing.T) {
	for _, strat := range []Strategy{StrategyAuto, StrategyScoped, StrategyFull, StrategySharded, StrategyDefer} {
		t.Run(strat.String(), func(t *testing.T) {
			f := newFixture(t, retailDDL, `SELECT time.month, SUM(price) AS total,
				COUNT(*) AS cnt, COUNT(DISTINCT brand) AS brands
				FROM sale, time, product
				WHERE time.year = 1997 AND sale.timeid = time.id AND sale.productid = product.id
				GROUP BY time.month`, true)
			f.seedRetail()
			f.initEngine()
			applyStrat := func(d Delta) {
				t.Helper()
				if err := f.engine.ApplyWithStrategy(d, strat); err != nil {
					t.Fatalf("ApplyWithStrategy(%s, %s): %v", d.Table, strat, err)
				}
				f.check("after " + d.Table + " under " + strat.String())
			}
			f.saleID++
			row := tuple.Tuple{types.Int(f.saleID), types.Int(2), types.Int(102), types.Int(7), types.Float(3)}
			if err := f.db.Insert("sale", row); err != nil {
				t.Fatal(err)
			}
			applyStrat(Delta{Table: "sale", Inserts: []tuple.Tuple{row}})
			del, err := f.db.Delete("sale", types.Int(2))
			if err != nil {
				t.Fatal(err)
			}
			applyStrat(Delta{Table: "sale", Deletes: []tuple.Tuple{del}})
			old, upd, err := f.db.Update("sale", types.Int(3), map[string]types.Value{"price": types.Float(42)})
			if err != nil {
				t.Fatal(err)
			}
			applyStrat(Delta{Table: "sale", Updates: []Update{{Old: old, New: upd}}})
			old, upd, err = f.db.Update("product", types.Int(100), map[string]types.Value{"brand": types.Str("zenc")})
			if err != nil {
				t.Fatal(err)
			}
			applyStrat(Delta{Table: "product", Updates: []Update{{Old: old, New: upd}}})
		})
	}
}

// recordingChooser cycles through a strategy list, counting Choose calls —
// if a coordinator consulted it per engine instead of per delta, replica
// engines of one class would receive different strategies.
type recordingChooser struct {
	strategies []Strategy
	calls      int
	observed   int
}

func (c *recordingChooser) Choose(view string, sh DeltaShape, allowDefer bool) Strategy {
	s := c.strategies[c.calls%len(c.strategies)]
	c.calls++
	return s
}

func (c *recordingChooser) Observe(view string, sh DeltaShape, s Strategy, ns int64) {
	c.observed++
}

// canonicalSnapshot renders an engine's view rows in a deterministic order,
// so two replicas can be compared for bit-identical contents.
func canonicalSnapshot(e *Engine) string {
	rel := e.Snapshot()
	lines := make([]string, 0, len(rel.Rows))
	for _, r := range rel.Rows {
		lines = append(lines, r.String())
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestSharedEnginesStrategyDecidedOncePerDelta is the regression test for
// the per-engine fallback decision: the strategy for a SharedEngines class
// must be chosen exactly once per delta and shared by every replica engine.
// A chooser that alternates scoped/full would otherwise hand different
// paths to different replicas of one class — scoped and full recomputation
// can differ in float accumulation order, breaking the bit-identical
// replica invariant.
func TestSharedEnginesStrategyDecidedOncePerDelta(t *testing.T) {
	for _, disableMemo := range []bool{false, true} {
		name := "memo"
		if disableMemo {
			name = "no-memo"
		}
		t.Run(name, func(t *testing.T) {
			distinct := `SELECT time.month, COUNT(DISTINCT brand) AS brands, SUM(price) AS total
				FROM sale, time, product
				WHERE sale.timeid = time.id AND sale.productid = product.id
				GROUP BY time.month`
			// Two identical views: replicas of one class.
			f := newSharedFixture(t, distinct, distinct)
			f.se.DisableMemo = disableMemo
			ch := &recordingChooser{strategies: []Strategy{StrategyScoped, StrategyFull, StrategySharded}}
			f.se.Chooser = ch
			f.seedRetail()
			f.init()

			deltas := 0
			step := func(d Delta) {
				t.Helper()
				f.apply(d)
				deltas++
				if ch.calls != deltas {
					t.Fatalf("after %d deltas the chooser saw %d Choose calls; "+
						"the class decision must be made exactly once per delta, not per engine",
						deltas, ch.calls)
				}
				if a, b := canonicalSnapshot(f.se.Engine(0)), canonicalSnapshot(f.se.Engine(1)); a != b {
					t.Fatalf("replica views diverged under a class-wide strategy\nengine0:\n%s\nengine1:\n%s", a, b)
				}
			}

			f.saleID++
			row := tuple.Tuple{types.Int(f.saleID), types.Int(3), types.Int(101), types.Int(8), types.Float(21)}
			if err := f.db.Insert("sale", row); err != nil {
				t.Fatal(err)
			}
			step(Delta{Table: "sale", Inserts: []tuple.Tuple{row}})
			del, err := f.db.Delete("sale", types.Int(4))
			if err != nil {
				t.Fatal(err)
			}
			step(Delta{Table: "sale", Deletes: []tuple.Tuple{del}})
			old, upd, err := f.db.Update("sale", types.Int(5), map[string]types.Value{"price": types.Float(7)})
			if err != nil {
				t.Fatal(err)
			}
			step(Delta{Table: "sale", Updates: []Update{{Old: old, New: upd}}})
			if ch.observed != deltas {
				t.Fatalf("chooser observed %d applies, want %d", ch.observed, deltas)
			}
		})
	}
}

// TestStrategyInMemoKey: engines recomputing along different paths must not
// share memoized results, so the per-apply strategy is part of the memo key.
func TestStrategyInMemoKey(t *testing.T) {
	f := newFixture(t, retailDDL, productSalesSQL, true)
	keys := map[string]bool{}
	for _, s := range []Strategy{StrategyAuto, StrategyScoped, StrategyFull, StrategySharded} {
		f.engine.strategy = s
		keys[f.engine.buildMemoKey()] = true
	}
	f.engine.strategy = StrategyAuto
	if len(keys) != 4 {
		t.Fatalf("memo keys must distinguish all 4 strategies, got %d distinct keys", len(keys))
	}
}
