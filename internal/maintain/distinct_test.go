package maintain

import (
	"testing"

	"mindetail/internal/types"
)

// TestMaintainAllDistinctVariants drives views using every DISTINCT
// aggregate form — all non-CSMAS (Table 2), all repaired by partial
// recomputation from the auxiliary views.
func TestMaintainAllDistinctVariants(t *testing.T) {
	views := []string{
		`SELECT sale.productid, SUM(DISTINCT price) AS sd, COUNT(*) AS cnt
		 FROM sale GROUP BY sale.productid`,
		`SELECT sale.productid, AVG(DISTINCT price) AS ad, COUNT(*) AS cnt
		 FROM sale GROUP BY sale.productid`,
		`SELECT sale.productid, MIN(DISTINCT price) AS md, COUNT(*) AS cnt
		 FROM sale GROUP BY sale.productid`,
		`SELECT sale.productid, MAX(DISTINCT price) AS xd, COUNT(*) AS cnt
		 FROM sale GROUP BY sale.productid`,
		`SELECT sale.productid, COUNT(DISTINCT sale.storeid) AS cd, SUM(price) AS total
		 FROM sale GROUP BY sale.productid`,
	}
	for _, sql := range views {
		t.Run(sql[:40], func(t *testing.T) {
			f := newFixture(t, retailDDL, sql, true)
			f.seedRetail()
			f.initEngine()
			// Duplicates of the same price: DISTINCT collapses them.
			f.insertSale(1, 100, 7, 10) // duplicate of existing price 10
			f.insertSale(1, 100, 7, 33)
			f.deleteRow("sale", 1) // one copy of the duplicated price leaves
			f.deleteRow("sale", 2) // the second copy leaves: distinct set shrinks
			f.updateRow("sale", 3, map[string]types.Value{"price": types.Float(10)})
		})
	}
}

// TestMaintainDistinctOnDimension: DISTINCT over a dimension attribute with
// renames, the paper's DifferentBrands column in isolation.
func TestMaintainDistinctOnDimension(t *testing.T) {
	f := newFixture(t, retailDDL, `
		SELECT time.month, COUNT(DISTINCT brand) AS brands
		FROM sale, time, product
		WHERE sale.timeid = time.id AND sale.productid = product.id
		GROUP BY time.month`, true)
	f.seedRetail()
	f.initEngine()
	// Collapse two brands into one.
	f.updateRow("product", 101, map[string]types.Value{"brand": types.Str("acme")})
	// Split them again.
	f.updateRow("product", 101, map[string]types.Value{"brand": types.Str("unique")})
	// A sale of an existing brand in a new month.
	f.insertSale(2, 100, 7, 1)
}
