package faultinject_test

// The crash-point harness: the WAL's end-to-end correctness argument.
//
// For every statement in a fixed workload and every injection point the
// statement visits, this file simulates a crash at that point — the
// on-disk bytes at that instant are all a restart gets to see — recovers,
// and asserts the recovered warehouse is byte-identical to the state
// before the failed statement (the mutation was never acknowledged, so it
// must not survive). A second sweep truncates the log at every byte
// offset inside the final mutation's intent and commit records and
// asserts recovery lands exactly on the pre-mutation oracle, flipping to
// the post-mutation oracle only once the commit record is whole.

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"mindetail/internal/faultinject"
	"mindetail/internal/maintain"
	"mindetail/internal/pager"
	"mindetail/internal/persist"
	"mindetail/internal/tuple"
	"mindetail/internal/types"
	"mindetail/internal/wal"
	"mindetail/internal/warehouse"
)

const crashDDL = `
CREATE TABLE product (id INTEGER PRIMARY KEY, brand STRING MUTABLE, category STRING);
CREATE TABLE sale (id INTEGER PRIMARY KEY, productid INTEGER REFERENCES product, qty INTEGER, price FLOAT MUTABLE);
CREATE MATERIALIZED VIEW by_brand AS
  SELECT brand, SUM(price) AS total, COUNT(*) AS cnt
  FROM sale, product WHERE sale.productid = product.id GROUP BY brand;
CREATE MATERIALIZED VIEW by_category AS
  SELECT category, SUM(qty) AS q, COUNT(*) AS cnt
  FROM sale, product WHERE sale.productid = product.id GROUP BY category;
`

// Prices are multiples of 0.25 so float aggregation is exact and the
// byte-identity assertions are independent of accumulation order.
var crashSteps = []string{
	`INSERT INTO product VALUES (1, 'acme', 'tools');`,
	`INSERT INTO product VALUES (2, 'zenith', 'toys');`,
	`INSERT INTO sale VALUES (10, 1, 3, 9.75);`,
	`INSERT INTO sale VALUES (11, 2, 1, 4.25), (12, 1, 2, 8.5);`,
	`UPDATE sale SET price = 5.25 WHERE id = 11;`,
	`UPDATE product SET brand = 'nadir' WHERE id = 2;`,
	`DELETE FROM sale WHERE id = 10;`,
	`INSERT INTO sale VALUES (13, 2, 4, 2.75);`,
}

// snap serializes a warehouse to its canonical persisted form — sorted
// rows, tagged values, the committed LSN — the byte-identity oracle.
func snap(t *testing.T, w *warehouse.Warehouse) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := persist.Save(w, &buf, !w.Detached()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// crashImage copies the durable directory byte for byte, simulating
// kill -9 at this instant.
func crashImage(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// recoverBytes opens the durable directory, snapshots the recovered
// warehouse, and closes it again.
func recoverBytes(t *testing.T, dir string) []byte {
	t.Helper()
	r, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatalf("recovery from %s: %v", dir, err)
	}
	defer r.Close()
	return snap(t, r.Warehouse())
}

// TestFaultInjectionCrashRecovery drives every workload statement through
// a WAL-attached warehouse, failing at the N-th injection point for
// N = 1, 2, ... until the statement commits cleanly. After every injected
// failure it checks both halves of the contract:
//
//  1. rollback — the live warehouse is byte-identical to its pre-statement
//     state, and
//  2. crash — recovering from a copy of the on-disk bytes taken at the
//     instant of the failure also lands byte-identically on the
//     pre-statement state: the aborted (or outcome-less) intent in the
//     log must not leak into recovery.
func TestFaultInjectionCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	d, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	w := d.Warehouse()
	if _, err := w.Exec(crashDDL); err != nil {
		t.Fatal(err)
	}

	const limit = 100000
	for k, sql := range crashSteps {
		committed := false
		for failAt := int64(1); failAt <= limit; failAt++ {
			before := snap(t, w)
			h := faultinject.NewHook(failAt)
			w.SetFaultHook(h)
			_, err := w.Exec(sql)
			w.SetFaultHook(nil)
			if err == nil {
				if p, fired := h.Fired(); fired {
					t.Fatalf("step %d %q: hook fired at %s but Exec succeeded", k, sql, p)
				}
				committed = true
				break
			}
			if !errors.Is(err, faultinject.ErrInjected) {
				t.Fatalf("step %d %q failAt=%d: genuine error: %v", k, sql, failAt, err)
			}
			p, _ := h.Fired()
			when := fmt.Sprintf("step %d %q failAt=%d (%s)", k, sql, failAt, p)
			if got := snap(t, w); !bytes.Equal(got, before) {
				t.Fatalf("%s: live state changed after rollback", when)
			}
			if got := recoverBytes(t, crashImage(t, dir)); !bytes.Equal(got, before) {
				t.Fatalf("%s: crash-image recovery diverged from pre-statement state:\n got:\n%s\nwant:\n%s",
					when, got, before)
			}
		}
		if !committed {
			t.Fatalf("step %d %q: sweep did not terminate within %d injection points", k, sql, limit)
		}
	}

	// The clean final state itself recovers byte-identically.
	want := snap(t, w)
	if got := recoverBytes(t, crashImage(t, dir)); !bytes.Equal(got, want) {
		t.Fatal("final state does not survive recovery")
	}
}

// TestFaultInjectionTornWriteSweep cuts the log at every byte offset
// inside the final mutation's intent and commit records — every possible
// torn write of the tail — and asserts recovery is all-or-nothing: any
// cut strictly before the end of the commit record recovers the
// pre-mutation oracle; the whole file recovers the post-mutation oracle.
func TestFaultInjectionTornWriteSweep(t *testing.T) {
	// Oracle runs: k-1 steps and k steps in their own durable dirs, so the
	// logged LSN sequences match the torn run exactly.
	oracle := func(steps int) []byte {
		dir := t.TempDir()
		d, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		if _, err := d.Warehouse().Exec(crashDDL); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < steps; i++ {
			if _, err := d.Warehouse().Exec(crashSteps[i]); err != nil {
				t.Fatal(err)
			}
		}
		return snap(t, d.Warehouse())
	}
	wantPrev := oracle(len(crashSteps) - 1)
	wantFull := oracle(len(crashSteps))

	// The run whose log we tear.
	dir := t.TempDir()
	d, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Warehouse().Exec(crashDDL); err != nil {
		t.Fatal(err)
	}
	for _, sql := range crashSteps {
		if _, err := d.Warehouse().Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	whole, err := os.ReadFile(filepath.Join(dir, wal.LogFile))
	if err != nil {
		t.Fatal(err)
	}
	recs, ends, derr := wal.Decode(whole)
	if derr != nil {
		t.Fatalf("baseline log not clean: %v", derr)
	}
	// The final mutation is the last intent+commit pair; its intent starts
	// where the antepenultimate record ends.
	n := len(recs)
	if n < 3 || recs[n-1].Kind != wal.KindCommit || recs[n-2].Kind != wal.KindDelta {
		t.Fatalf("unexpected log tail: %v %v", recs[n-2].Kind, recs[n-1].Kind)
	}
	intentStart := ends[n-3]

	for cut := intentStart + 1; cut <= int64(len(whole)); cut++ {
		img := t.TempDir()
		if err := os.WriteFile(filepath.Join(img, wal.LogFile), whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got := recoverBytes(t, img)
		want, label := wantPrev, "pre-mutation"
		if cut == int64(len(whole)) {
			want, label = wantFull, "post-mutation"
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("cut %d (of %d): recovered state differs from %s oracle:\n got:\n%s\nwant:\n%s",
				cut, len(whole), label, got, want)
		}
	}
}

// TestFaultInjectionCheckpointCrash simulates a crash between the
// checkpoint's snapshot rename and the log trim: the stale log suffix
// must replay idempotently against the newer snapshot.
func TestFaultInjectionCheckpointCrash(t *testing.T) {
	dir := t.TempDir()
	d, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	w := d.Warehouse()
	if _, err := w.Exec(crashDDL); err != nil {
		t.Fatal(err)
	}
	for _, sql := range crashSteps {
		if _, err := w.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	want := snap(t, w)

	// Keep the pre-checkpoint log (full history), then checkpoint, then
	// construct the crash image: new snapshot + old, untrimmed log.
	staleLog, err := os.ReadFile(filepath.Join(dir, wal.LogFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	img := crashImage(t, dir)
	if err := os.WriteFile(filepath.Join(img, wal.LogFile), staleLog, 0o644); err != nil {
		t.Fatal(err)
	}
	if got := recoverBytes(t, img); !bytes.Equal(got, want) {
		t.Fatal("stale log suffix after checkpoint rename was not replayed idempotently")
	}
}

// pageWarehouse moves w's auxiliary views onto out-of-core pager stores
// with a deliberately tiny buffer pool (4 frames of the smallest pages),
// so the workload continuously spills and refetches, and wires the pool's
// dirty-page writes to the WAL's flushed-LSN rule.
func pageWarehouse(t *testing.T, w *warehouse.Warehouse, log *wal.Log) *pager.Factory {
	t.Helper()
	fac, err := pager.NewFactory(filepath.Join(t.TempDir(), "pages"), pager.Options{
		PageSize:  pager.MinPageSize,
		PoolPages: 4,
		WAL:       log,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fac.Close() })
	if err := w.SetAuxStoreFactory(func(view, table string) (maintain.AuxStore, error) {
		return fac.Open(view, table)
	}); err != nil {
		t.Fatal(err)
	}
	return fac
}

// pagedSeed bulk-loads products and sales (prices again multiples of
// 0.25) in a handful of multi-row statements, enough rows that every
// auxiliary store spans far more pages than the 4-frame pool.
func pagedSeed() []string {
	var stmts []string
	for base := 0; base < 60; base += 15 {
		prod := "INSERT INTO product VALUES "
		sale := "INSERT INTO sale VALUES "
		for i := 0; i < 15; i++ {
			id := 100 + base + i
			if i > 0 {
				prod += ", "
				sale += ", "
			}
			prod += fmt.Sprintf("(%d, 'brand%d', 'cat%d')", id, id%5, id%3)
			sale += fmt.Sprintf("(%d, %d, %d, %g)", 1000+base+i, id, id%7, float64(id%13)*0.25)
		}
		stmts = append(stmts, prod+";", sale+";")
	}
	return stmts
}

// recoverBytesPaged recovers from the on-disk image and re-snapshots the
// warehouse twice: once in memory and once after migrating the recovered
// auxiliary views onto fresh paged stores. Both must agree — the page
// files are ephemeral spill storage, so recovery never reads them; it
// rebuilds from the snapshot and committed log suffix alone.
func recoverBytesPaged(t *testing.T, dir string) []byte {
	t.Helper()
	r, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatalf("recovery from %s: %v", dir, err)
	}
	defer r.Close()
	mem := snap(t, r.Warehouse())
	pageWarehouse(t, r.Warehouse(), r.Log())
	if paged := snap(t, r.Warehouse()); !bytes.Equal(paged, mem) {
		t.Fatalf("recovered state changed when migrated onto paged stores:\n mem:\n%s\npaged:\n%s", mem, paged)
	}
	return mem
}

// TestFaultInjectionCrashRecoveryPaged is the crash sweep of
// TestFaultInjectionCrashRecovery with the auxiliary views out of core:
// every statement, every injection point it visits — now including the
// pager's PageEvict and PageFlush points, since the tiny pool spills
// mid-apply — with both the rollback and the crash-recovery halves of the
// contract checked bit-identically against the in-memory oracle, and
// recovery additionally re-verified on a paged backend.
func TestFaultInjectionCrashRecoveryPaged(t *testing.T) {
	dir := t.TempDir()
	d, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	w := d.Warehouse()
	if _, err := w.Exec(crashDDL); err != nil {
		t.Fatal(err)
	}
	pageWarehouse(t, w, d.Log())
	// Bulk rows so every auxiliary store far exceeds the 4-frame pool:
	// each statement of the sweep then evicts and refetches mid-apply.
	for _, sql := range pagedSeed() {
		if _, err := w.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}

	const limit = 100000
	sawPager := false
	for k, sql := range crashSteps {
		committed := false
		for failAt := int64(1); failAt <= limit; failAt++ {
			before := snap(t, w)
			h := faultinject.NewHook(failAt)
			w.SetFaultHook(h)
			_, err := w.Exec(sql)
			w.SetFaultHook(nil)
			if err == nil {
				if p, fired := h.Fired(); fired {
					t.Fatalf("step %d %q: hook fired at %s but Exec succeeded", k, sql, p)
				}
				committed = true
				break
			}
			if !errors.Is(err, faultinject.ErrInjected) {
				t.Fatalf("step %d %q failAt=%d: genuine error: %v", k, sql, failAt, err)
			}
			p, _ := h.Fired()
			if p == faultinject.PageEvict || p == faultinject.PageFlush {
				sawPager = true
			}
			when := fmt.Sprintf("step %d %q failAt=%d (%s)", k, sql, failAt, p)
			if got := snap(t, w); !bytes.Equal(got, before) {
				t.Fatalf("%s: live state changed after rollback", when)
			}
			if got := recoverBytesPaged(t, crashImage(t, dir)); !bytes.Equal(got, before) {
				t.Fatalf("%s: crash-image recovery diverged from pre-statement state:\n got:\n%s\nwant:\n%s",
					when, got, before)
			}
		}
		if !committed {
			t.Fatalf("step %d %q: sweep did not terminate within %d injection points", k, sql, limit)
		}
	}
	if !sawPager {
		t.Fatal("sweep never reached a pager injection point — pool not small enough?")
	}

	want := snap(t, w)
	if got := recoverBytesPaged(t, crashImage(t, dir)); !bytes.Equal(got, want) {
		t.Fatal("final state does not survive recovery")
	}
}

// TestFaultInjectionTornWriteSweepPaged re-runs the torn-write sweep with
// the writing warehouse out of core: the log bytes a paged run produces
// must recover — at every cut offset — to the same in-memory oracles,
// since the WAL records logical deltas that are backend-independent and
// the page files never participate in recovery.
func TestFaultInjectionTornWriteSweepPaged(t *testing.T) {
	oracle := func(steps int) []byte {
		dir := t.TempDir()
		d, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		if _, err := d.Warehouse().Exec(crashDDL); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < steps; i++ {
			if _, err := d.Warehouse().Exec(crashSteps[i]); err != nil {
				t.Fatal(err)
			}
		}
		return snap(t, d.Warehouse())
	}
	wantPrev := oracle(len(crashSteps) - 1)
	wantFull := oracle(len(crashSteps))

	dir := t.TempDir()
	d, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Warehouse().Exec(crashDDL); err != nil {
		t.Fatal(err)
	}
	pageWarehouse(t, d.Warehouse(), d.Log())
	for _, sql := range crashSteps {
		if _, err := d.Warehouse().Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	if got := snap(t, d.Warehouse()); !bytes.Equal(got, wantFull) {
		t.Fatal("paged warehouse diverged from the in-memory oracle before any crash")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	whole, err := os.ReadFile(filepath.Join(dir, wal.LogFile))
	if err != nil {
		t.Fatal(err)
	}
	recs, ends, derr := wal.Decode(whole)
	if derr != nil {
		t.Fatalf("baseline log not clean: %v", derr)
	}
	n := len(recs)
	if n < 3 || recs[n-1].Kind != wal.KindCommit || recs[n-2].Kind != wal.KindDelta {
		t.Fatalf("unexpected log tail: %v %v", recs[n-2].Kind, recs[n-1].Kind)
	}
	intentStart := ends[n-3]

	for cut := intentStart + 1; cut <= int64(len(whole)); cut++ {
		img := t.TempDir()
		if err := os.WriteFile(filepath.Join(img, wal.LogFile), whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got := recoverBytesPaged(t, img)
		want, label := wantPrev, "pre-mutation"
		if cut == int64(len(whole)) {
			want, label = wantFull, "post-mutation"
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("cut %d (of %d): recovered state differs from %s oracle", cut, len(whole), label)
		}
	}
}

// batchDeltas builds the externally produced batch the group-commit crash
// tests drive through ApplyDeltaBatch: adjacent insert-only sale deltas
// (which coalesce) against the products the seed steps created. Prices are
// multiples of 0.25 as above.
func batchDeltas() []maintain.Delta {
	ds := make([]maintain.Delta, 4)
	for k := range ds {
		ds[k].Table = "sale"
		for i := 0; i < 2; i++ {
			id := int64(100 + k*2 + i)
			ds[k].Inserts = append(ds[k].Inserts, tuple.Tuple{
				types.Int(id), types.Int(id%2 + 1), types.Int(id % 5), types.Float(float64(id%7) * 0.25),
			})
		}
	}
	return ds
}

// TestFaultInjectionGroupCommitBatch sweeps an injected failure through
// every point a group-committed batch visits — per-member WAL logging,
// every engine-level point of the (coalesced) propagation, and the
// BatchCommit point in front of the group commit — and checks the
// recovery contract at each:
//
//   - a failure at BatchCommit leaves the whole batch applied in memory
//     but without a single durable outcome, so crash recovery lands
//     byte-identically on the PRE-batch state: the batch is all-or-nothing
//     against a crash before its group commit;
//   - a failure anywhere else rolls back (only) the failed member, the
//     survivors group-commit durably, and crash recovery lands
//     byte-identically on the LIVE post-batch state.
//
// Each probe runs in a fresh durable directory because a BatchCommit
// failure intentionally leaves live memory ahead of the log.
func TestFaultInjectionGroupCommitBatch(t *testing.T) {
	setup := func() (string, *wal.Durable, *warehouse.Warehouse) {
		t.Helper()
		dir := t.TempDir()
		d, err := wal.Open(dir, wal.Options{Sync: wal.SyncCommit})
		if err != nil {
			t.Fatal(err)
		}
		w := d.Warehouse()
		for _, sql := range append([]string{crashDDL}, crashSteps[0], crashSteps[1]) {
			if _, err := w.Exec(sql); err != nil {
				t.Fatal(err)
			}
		}
		return dir, d, w
	}

	const limit = 100000
	sawBatchCommit := false
	committed := false
	for failAt := int64(1); !committed && failAt <= limit; failAt++ {
		dir, d, w := setup()
		before := snap(t, w)
		h := faultinject.NewHook(failAt)
		w.SetFaultHook(h)
		errs := w.ApplyDeltaBatch(batchDeltas())
		w.SetFaultHook(nil)
		p, fired := h.Fired()
		when := fmt.Sprintf("failAt=%d (%s)", failAt, p)
		if !fired {
			for i, err := range errs {
				if err != nil {
					t.Fatalf("clean batch: delta %d failed: %v", i, err)
				}
			}
			committed = true
		}
		for i, err := range errs {
			if err != nil && !errors.Is(err, faultinject.ErrInjected) {
				t.Fatalf("%s: delta %d genuine error: %v", when, i, err)
			}
		}
		got := recoverBytes(t, crashImage(t, dir))
		if fired && p == faultinject.BatchCommit {
			sawBatchCommit = true
			if !bytes.Equal(got, before) {
				t.Fatalf("%s: batch without group commit leaked into recovery", when)
			}
			failures := 0
			for _, err := range errs {
				if err != nil {
					failures++
				}
			}
			if failures != len(errs) {
				t.Fatalf("%s: %d of %d members reported success without a durable commit", when, len(errs)-failures, len(errs))
			}
		} else if want := snap(t, w); !bytes.Equal(got, want) {
			t.Fatalf("%s: crash-image recovery diverged from live post-batch state", when)
		}
		d.Close()
	}
	if !committed {
		t.Fatalf("sweep did not terminate within %d injection points", limit)
	}
	if !sawBatchCommit {
		t.Fatal("sweep never reached the BatchCommit injection point")
	}
}

// TestFaultInjectionTornBatchCommitSweep group-commits a batch, then cuts
// the log at every byte offset inside the batch's intent and commit
// region — every possible torn write of the group-commit tail — and
// asserts recovery equals the oracle holding exactly the members whose
// commit records survived whole: torn intents and outcome-less members
// vanish, each whole commit record flips exactly its member to durable.
func TestFaultInjectionTornBatchCommitSweep(t *testing.T) {
	batch := batchDeltas()

	// oracle(j): the first j members applied individually. The WAL record
	// shapes differ (interleaved intent/commit vs batched), but the LSN
	// numbering and the recovered warehouse state are identical.
	oracle := func(j int) []byte {
		dir := t.TempDir()
		d, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		w := d.Warehouse()
		for _, sql := range append([]string{crashDDL}, crashSteps[0], crashSteps[1]) {
			if _, err := w.Exec(sql); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < j; i++ {
			if err := w.ApplyDelta(batch[i]); err != nil {
				t.Fatal(err)
			}
		}
		return snap(t, w)
	}
	oracles := make([][]byte, len(batch)+1)
	for j := range oracles {
		oracles[j] = oracle(j)
	}

	// The run whose log we tear: one ApplyDeltaBatch, so the tail is
	// len(batch) intents followed by len(batch) commit records.
	dir := t.TempDir()
	d, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	w := d.Warehouse()
	for _, sql := range append([]string{crashDDL}, crashSteps[0], crashSteps[1]) {
		if _, err := w.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	for i, err := range w.ApplyDeltaBatch(batch) {
		if err != nil {
			t.Fatalf("batch delta %d: %v", i, err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	whole, err := os.ReadFile(filepath.Join(dir, wal.LogFile))
	if err != nil {
		t.Fatal(err)
	}
	recs, ends, derr := wal.Decode(whole)
	if derr != nil {
		t.Fatalf("baseline log not clean: %v", derr)
	}
	n, b := len(recs), len(batch)
	for i := 0; i < b; i++ {
		if recs[n-2*b+i].Kind != wal.KindDelta || recs[n-b+i].Kind != wal.KindCommit {
			t.Fatalf("log tail is not %d intents + %d commits", b, b)
		}
	}
	regionStart := ends[n-2*b-1]

	for cut := regionStart + 1; cut <= int64(len(whole)); cut++ {
		// j = whole commit records of the batch at or before the cut.
		j := 0
		for i := n - b; i < n; i++ {
			if ends[i] <= cut {
				j++
			}
		}
		img := t.TempDir()
		if err := os.WriteFile(filepath.Join(img, wal.LogFile), whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if got := recoverBytes(t, img); !bytes.Equal(got, oracles[j]) {
			t.Fatalf("cut %d (of %d, %d commits whole): recovered state differs from oracle(%d)",
				cut, len(whole), j, j)
		}
	}
}
