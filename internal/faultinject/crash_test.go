package faultinject_test

// The crash-point harness: the WAL's end-to-end correctness argument.
//
// For every statement in a fixed workload and every injection point the
// statement visits, this file simulates a crash at that point — the
// on-disk bytes at that instant are all a restart gets to see — recovers,
// and asserts the recovered warehouse is byte-identical to the state
// before the failed statement (the mutation was never acknowledged, so it
// must not survive). A second sweep truncates the log at every byte
// offset inside the final mutation's intent and commit records and
// asserts recovery lands exactly on the pre-mutation oracle, flipping to
// the post-mutation oracle only once the commit record is whole.

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"mindetail/internal/faultinject"
	"mindetail/internal/persist"
	"mindetail/internal/wal"
	"mindetail/internal/warehouse"
)

const crashDDL = `
CREATE TABLE product (id INTEGER PRIMARY KEY, brand STRING MUTABLE, category STRING);
CREATE TABLE sale (id INTEGER PRIMARY KEY, productid INTEGER REFERENCES product, qty INTEGER, price FLOAT MUTABLE);
CREATE MATERIALIZED VIEW by_brand AS
  SELECT brand, SUM(price) AS total, COUNT(*) AS cnt
  FROM sale, product WHERE sale.productid = product.id GROUP BY brand;
CREATE MATERIALIZED VIEW by_category AS
  SELECT category, SUM(qty) AS q, COUNT(*) AS cnt
  FROM sale, product WHERE sale.productid = product.id GROUP BY category;
`

// Prices are multiples of 0.25 so float aggregation is exact and the
// byte-identity assertions are independent of accumulation order.
var crashSteps = []string{
	`INSERT INTO product VALUES (1, 'acme', 'tools');`,
	`INSERT INTO product VALUES (2, 'zenith', 'toys');`,
	`INSERT INTO sale VALUES (10, 1, 3, 9.75);`,
	`INSERT INTO sale VALUES (11, 2, 1, 4.25), (12, 1, 2, 8.5);`,
	`UPDATE sale SET price = 5.25 WHERE id = 11;`,
	`UPDATE product SET brand = 'nadir' WHERE id = 2;`,
	`DELETE FROM sale WHERE id = 10;`,
	`INSERT INTO sale VALUES (13, 2, 4, 2.75);`,
}

// snap serializes a warehouse to its canonical persisted form — sorted
// rows, tagged values, the committed LSN — the byte-identity oracle.
func snap(t *testing.T, w *warehouse.Warehouse) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := persist.Save(w, &buf, !w.Detached()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// crashImage copies the durable directory byte for byte, simulating
// kill -9 at this instant.
func crashImage(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// recoverBytes opens the durable directory, snapshots the recovered
// warehouse, and closes it again.
func recoverBytes(t *testing.T, dir string) []byte {
	t.Helper()
	r, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatalf("recovery from %s: %v", dir, err)
	}
	defer r.Close()
	return snap(t, r.Warehouse())
}

// TestFaultInjectionCrashRecovery drives every workload statement through
// a WAL-attached warehouse, failing at the N-th injection point for
// N = 1, 2, ... until the statement commits cleanly. After every injected
// failure it checks both halves of the contract:
//
//  1. rollback — the live warehouse is byte-identical to its pre-statement
//     state, and
//  2. crash — recovering from a copy of the on-disk bytes taken at the
//     instant of the failure also lands byte-identically on the
//     pre-statement state: the aborted (or outcome-less) intent in the
//     log must not leak into recovery.
func TestFaultInjectionCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	d, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	w := d.Warehouse()
	if _, err := w.Exec(crashDDL); err != nil {
		t.Fatal(err)
	}

	const limit = 100000
	for k, sql := range crashSteps {
		committed := false
		for failAt := int64(1); failAt <= limit; failAt++ {
			before := snap(t, w)
			h := faultinject.NewHook(failAt)
			w.SetFaultHook(h)
			_, err := w.Exec(sql)
			w.SetFaultHook(nil)
			if err == nil {
				if p, fired := h.Fired(); fired {
					t.Fatalf("step %d %q: hook fired at %s but Exec succeeded", k, sql, p)
				}
				committed = true
				break
			}
			if !errors.Is(err, faultinject.ErrInjected) {
				t.Fatalf("step %d %q failAt=%d: genuine error: %v", k, sql, failAt, err)
			}
			p, _ := h.Fired()
			when := fmt.Sprintf("step %d %q failAt=%d (%s)", k, sql, failAt, p)
			if got := snap(t, w); !bytes.Equal(got, before) {
				t.Fatalf("%s: live state changed after rollback", when)
			}
			if got := recoverBytes(t, crashImage(t, dir)); !bytes.Equal(got, before) {
				t.Fatalf("%s: crash-image recovery diverged from pre-statement state:\n got:\n%s\nwant:\n%s",
					when, got, before)
			}
		}
		if !committed {
			t.Fatalf("step %d %q: sweep did not terminate within %d injection points", k, sql, limit)
		}
	}

	// The clean final state itself recovers byte-identically.
	want := snap(t, w)
	if got := recoverBytes(t, crashImage(t, dir)); !bytes.Equal(got, want) {
		t.Fatal("final state does not survive recovery")
	}
}

// TestFaultInjectionTornWriteSweep cuts the log at every byte offset
// inside the final mutation's intent and commit records — every possible
// torn write of the tail — and asserts recovery is all-or-nothing: any
// cut strictly before the end of the commit record recovers the
// pre-mutation oracle; the whole file recovers the post-mutation oracle.
func TestFaultInjectionTornWriteSweep(t *testing.T) {
	// Oracle runs: k-1 steps and k steps in their own durable dirs, so the
	// logged LSN sequences match the torn run exactly.
	oracle := func(steps int) []byte {
		dir := t.TempDir()
		d, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		if _, err := d.Warehouse().Exec(crashDDL); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < steps; i++ {
			if _, err := d.Warehouse().Exec(crashSteps[i]); err != nil {
				t.Fatal(err)
			}
		}
		return snap(t, d.Warehouse())
	}
	wantPrev := oracle(len(crashSteps) - 1)
	wantFull := oracle(len(crashSteps))

	// The run whose log we tear.
	dir := t.TempDir()
	d, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Warehouse().Exec(crashDDL); err != nil {
		t.Fatal(err)
	}
	for _, sql := range crashSteps {
		if _, err := d.Warehouse().Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	whole, err := os.ReadFile(filepath.Join(dir, wal.LogFile))
	if err != nil {
		t.Fatal(err)
	}
	recs, ends, derr := wal.Decode(whole)
	if derr != nil {
		t.Fatalf("baseline log not clean: %v", derr)
	}
	// The final mutation is the last intent+commit pair; its intent starts
	// where the antepenultimate record ends.
	n := len(recs)
	if n < 3 || recs[n-1].Kind != wal.KindCommit || recs[n-2].Kind != wal.KindDelta {
		t.Fatalf("unexpected log tail: %v %v", recs[n-2].Kind, recs[n-1].Kind)
	}
	intentStart := ends[n-3]

	for cut := intentStart + 1; cut <= int64(len(whole)); cut++ {
		img := t.TempDir()
		if err := os.WriteFile(filepath.Join(img, wal.LogFile), whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got := recoverBytes(t, img)
		want, label := wantPrev, "pre-mutation"
		if cut == int64(len(whole)) {
			want, label = wantFull, "post-mutation"
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("cut %d (of %d): recovered state differs from %s oracle:\n got:\n%s\nwant:\n%s",
				cut, len(whole), label, got, want)
		}
	}
}

// TestFaultInjectionCheckpointCrash simulates a crash between the
// checkpoint's snapshot rename and the log trim: the stale log suffix
// must replay idempotently against the newer snapshot.
func TestFaultInjectionCheckpointCrash(t *testing.T) {
	dir := t.TempDir()
	d, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	w := d.Warehouse()
	if _, err := w.Exec(crashDDL); err != nil {
		t.Fatal(err)
	}
	for _, sql := range crashSteps {
		if _, err := w.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	want := snap(t, w)

	// Keep the pre-checkpoint log (full history), then checkpoint, then
	// construct the crash image: new snapshot + old, untrimmed log.
	staleLog, err := os.ReadFile(filepath.Join(dir, wal.LogFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	img := crashImage(t, dir)
	if err := os.WriteFile(filepath.Join(img, wal.LogFile), staleLog, 0o644); err != nil {
		t.Fatal(err)
	}
	if got := recoverBytes(t, img); !bytes.Equal(got, want) {
		t.Fatal("stale log suffix after checkpoint rename was not replayed idempotently")
	}
}
