// Package faultinject provides numbered error-injection points for the
// maintenance engine and the warehouse write paths.
//
// Production code carries a nil *Hook: Fire on a nil receiver returns nil
// after a single pointer comparison, so the hooks cost (almost) nothing
// when no test is injecting failures. Tests install a Hook that fails at
// the N-th visited injection point; by sweeping N from 1 until a run
// completes without firing, a driver provably exercises a failure at every
// point the operation visits, in order.
//
// The injected error wraps ErrInjected so callers can distinguish injected
// failures from genuine ones with errors.Is.
package faultinject

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Point identifies one numbered injection site. The set below is threaded
// through AuxTable.Adjust, Engine.Apply, and the Warehouse write paths —
// one point before, inside, and after each mutation region, so a failure
// can land between any two primitive state changes.
type Point int32

const (
	// EngineValidated fires in Engine.ApplyStaged after the validate-first
	// pass, before the first mutation.
	EngineValidated Point = iota
	// AuxAdjustStart fires in AuxTable.Adjust after the group key is
	// encoded, before any mutation of the table.
	AuxAdjustStart
	// AuxAdjustMid fires in AuxTable.Adjust after the group row has been
	// created/adjusted but before the group count is updated — in the
	// middle of a logically atomic operation.
	AuxAdjustMid
	// EngineAuxApplied fires in Engine.ApplyStaged after the auxiliary
	// table was maintained, before the materialized view is touched (the
	// historical partial-apply gap between X and V).
	EngineAuxApplied
	// MVAdjustRow fires in the incremental adjustment loop before each
	// group adjustment of the materialized view.
	MVAdjustRow
	// RecomputeInstall fires in recomputeGroups after the affected groups
	// were deleted, before the recomputed replacements are installed.
	RecomputeInstall
	// RekeyGroup fires in Engine.rekey between removing a group under its
	// old key and re-inserting it under the new one.
	RekeyGroup
	// PropagateView fires in Warehouse.propagate before each view's engine
	// receives the delta.
	PropagateView
	// SourceApplied fires in the Warehouse DML paths after the source
	// tables were mutated, before propagation to the views begins.
	SourceApplied
	// WALLogged fires in the Warehouse write-ahead path after the intent
	// record was appended (and synced) to the log, before the transactional
	// apply begins — a crash here leaves a durable intent with no outcome,
	// which recovery must discard.
	WALLogged
	// ShardAuxInstall fires in the sharded apply pipeline after the shard
	// workers computed their auxiliary-table overlays, before the serial
	// install phase writes the first overlay entry back into the table.
	ShardAuxInstall
	// ShardMVInstall fires in the sharded apply pipeline after the shard
	// workers computed their materialized-view overlays, before the serial
	// install phase writes the first group back into the view.
	ShardMVInstall
	// BatchCommit fires in Warehouse.ApplyDeltaBatch after every delta of
	// the batch was logged and applied, before the group commit record(s)
	// are appended and fsynced — a crash here leaves a tail of durable
	// intents with no outcomes, which recovery must discard whole.
	BatchCommit
	// PageEvict fires in the pager's buffer pool after a CLOCK victim has
	// been chosen, before its frame is flushed or dropped — mid-apply this
	// lands between two group mutations of one delta, with part of the
	// delta's state already spilled to disk.
	PageEvict
	// PageFlush fires in the pager inside a dirty-page write-back, after
	// the WAL flushed-LSN rule was enforced but before the page bytes reach
	// the file — the moment a torn page write would happen on a crash.
	PageFlush
	// DeferFlush fires in Warehouse.AdaptiveSession.Flush after deferred
	// deltas were collected for batching, before the batch apply begins —
	// a failure here must leave every buffered delta still pending, with
	// no view or WAL effect.
	DeferFlush
	// BackfillSnapshot fires in the online CREATE MATERIALIZED VIEW path
	// after the DDL intent was logged and the source snapshot cloned under
	// the warehouse lock, before the background scan starts — a crash here
	// leaves a durable intent with no outcome, which recovery must discard.
	BackfillSnapshot
	// BackfillScan fires in the online backfill worker after the initial
	// GPSJ + auxiliary state was computed from the snapshot, before the
	// catch-up drain of deltas that committed during the scan.
	BackfillScan
	// BackfillCatchUp fires in the online backfill worker between two
	// catch-up deltas being replayed into the unpublished engine.
	BackfillCatchUp
	// BackfillInstall fires under the warehouse lock after the final
	// catch-up drain, before the view is added to the catalog and the WAL
	// outcome committed — the last instant the DDL can still abort whole.
	BackfillInstall
	// DropViewTeardown fires in DROP MATERIALIZED VIEW after the DDL intent
	// was logged, before the view is removed from the catalog and its
	// engine (and any pager stores) released.
	DropViewTeardown

	// NumPoints is the number of distinct injection points.
	NumPoints
)

var pointNames = [NumPoints]string{
	"EngineValidated",
	"AuxAdjustStart",
	"AuxAdjustMid",
	"EngineAuxApplied",
	"MVAdjustRow",
	"RecomputeInstall",
	"RekeyGroup",
	"PropagateView",
	"SourceApplied",
	"WALLogged",
	"ShardAuxInstall",
	"ShardMVInstall",
	"BatchCommit",
	"PageEvict",
	"PageFlush",
	"DeferFlush",
	"BackfillSnapshot",
	"BackfillScan",
	"BackfillCatchUp",
	"BackfillInstall",
	"DropViewTeardown",
}

// String returns the symbolic name of the point.
func (p Point) String() string {
	if p >= 0 && p < NumPoints {
		return pointNames[p]
	}
	return fmt.Sprintf("Point(%d)", int32(p))
}

// ErrInjected is wrapped by every injected failure.
var ErrInjected = errors.New("faultinject: injected failure")

// Hook counts visits to injection points and fails exactly one of them.
// The zero value never fails (a pure visit counter). Hooks are safe for
// concurrent use; a nil *Hook is the production no-op.
type Hook struct {
	failAt int64 // 1-based visit ordinal that fails; <= 0 disables failing
	visits atomic.Int64
	fired  atomic.Int32 // the Point that failed, offset by 1 (0 = none)
}

// NewHook returns a hook that fails the failAt-th visited injection point
// (1-based). failAt <= 0 yields a pure counter.
func NewHook(failAt int64) *Hook {
	return &Hook{failAt: failAt}
}

// Counter returns a hook that never fails but counts visits.
func Counter() *Hook { return &Hook{} }

// Fire records a visit to point p and returns an injected error when this
// visit is the hook's chosen ordinal. It is safe on a nil receiver.
func (h *Hook) Fire(p Point) error {
	if h == nil {
		return nil
	}
	n := h.visits.Add(1)
	if n == h.failAt {
		h.fired.Store(int32(p) + 1)
		return fmt.Errorf("%w at visit %d (%s)", ErrInjected, n, p)
	}
	return nil
}

// Visits returns the number of injection points visited so far.
func (h *Hook) Visits() int64 {
	if h == nil {
		return 0
	}
	return h.visits.Load()
}

// Fired returns the point that failed and true, or false when the hook has
// not (yet) injected a failure.
func (h *Hook) Fired() (Point, bool) {
	if h == nil {
		return 0, false
	}
	v := h.fired.Load()
	if v == 0 {
		return 0, false
	}
	return Point(v - 1), true
}
