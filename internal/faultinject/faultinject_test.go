package faultinject

import (
	"errors"
	"strings"
	"testing"
)

func TestNilHookIsNoOp(t *testing.T) {
	var h *Hook
	for p := Point(0); p < NumPoints; p++ {
		if err := h.Fire(p); err != nil {
			t.Fatalf("nil hook fired at %s: %v", p, err)
		}
	}
	if h.Visits() != 0 {
		t.Errorf("nil hook visits = %d", h.Visits())
	}
	if _, fired := h.Fired(); fired {
		t.Error("nil hook reports fired")
	}
}

func TestHookFiresExactlyOnce(t *testing.T) {
	h := NewHook(3)
	var failures int
	for i := 0; i < 10; i++ {
		if err := h.Fire(MVAdjustRow); err != nil {
			failures++
			if !errors.Is(err, ErrInjected) {
				t.Errorf("injected error does not wrap ErrInjected: %v", err)
			}
			if !strings.Contains(err.Error(), "MVAdjustRow") {
				t.Errorf("error does not name the point: %v", err)
			}
			if i != 2 {
				t.Errorf("fired at visit %d, want 3", i+1)
			}
		}
	}
	if failures != 1 {
		t.Errorf("fired %d times, want exactly once", failures)
	}
	if h.Visits() != 10 {
		t.Errorf("visits = %d, want 10", h.Visits())
	}
	p, fired := h.Fired()
	if !fired || p != MVAdjustRow {
		t.Errorf("Fired() = %v, %v", p, fired)
	}
}

func TestCounterNeverFires(t *testing.T) {
	h := Counter()
	for i := 0; i < 100; i++ {
		if err := h.Fire(AuxAdjustStart); err != nil {
			t.Fatalf("counter fired: %v", err)
		}
	}
	if h.Visits() != 100 {
		t.Errorf("visits = %d", h.Visits())
	}
}

func TestPointNames(t *testing.T) {
	seen := make(map[string]bool)
	for p := Point(0); p < NumPoints; p++ {
		name := p.String()
		if name == "" || strings.HasPrefix(name, "Point(") {
			t.Errorf("point %d has no symbolic name", p)
		}
		if seen[name] {
			t.Errorf("duplicate point name %s", name)
		}
		seen[name] = true
	}
	if got := Point(99).String(); got != "Point(99)" {
		t.Errorf("out-of-range name = %q", got)
	}
}
