package faultinject_test

// Crash sweeps for the online view lifecycle: CREATE MATERIALIZED VIEW
// with its phased backfill (snapshot → scan → catch-up → install) and
// DROP MATERIALIZED VIEW. Every injected failure and every torn-write cut
// must recover to a state byte-identical to either the no-view oracle or
// the installed-view oracle — a mid-backfill crash never leaks a
// half-built view.

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mindetail/internal/faultinject"
	"mindetail/internal/maintain"
	"mindetail/internal/pager"
	"mindetail/internal/wal"
	"mindetail/internal/warehouse"
)

const onlineViewSQL = `CREATE MATERIALIZED VIEW online_totals AS
  SELECT category, SUM(price) AS total, COUNT(*) AS cnt
  FROM sale, product WHERE sale.productid = product.id GROUP BY category;`

const dropOnlineSQL = `DROP MATERIALIZED VIEW online_totals;`

// TestFaultInjectionOnlineDDLSweep drives CREATE MATERIALIZED VIEW (the
// online backfill path) and then DROP MATERIALIZED VIEW through the
// injection sweep: failing at the N-th visited point for N = 1, 2, ...
// until the statement commits. Every abort must leave the live warehouse
// byte-identical to its pre-statement state AND recover from the on-disk
// bytes to that same state — the logged intent without an outcome is
// discarded whole.
func TestFaultInjectionOnlineDDLSweep(t *testing.T) {
	dir := t.TempDir()
	d, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	w := d.Warehouse()
	for _, sql := range append([]string{crashDDL}, crashSteps...) {
		if _, err := w.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}

	const limit = 100000
	seen := map[faultinject.Point]bool{}
	for _, sql := range []string{onlineViewSQL, dropOnlineSQL} {
		committed := false
		for failAt := int64(1); failAt <= limit; failAt++ {
			before := snap(t, w)
			h := faultinject.NewHook(failAt)
			w.SetFaultHook(h)
			_, err := w.Exec(sql)
			w.SetFaultHook(nil)
			if err == nil {
				if p, fired := h.Fired(); fired {
					t.Fatalf("%q: hook fired at %s but Exec succeeded", sql, p)
				}
				committed = true
				break
			}
			if !errors.Is(err, faultinject.ErrInjected) {
				t.Fatalf("%q failAt=%d: genuine error: %v", sql, failAt, err)
			}
			p, _ := h.Fired()
			seen[p] = true
			when := fmt.Sprintf("%q failAt=%d (%s)", sql, failAt, p)
			if got := snap(t, w); !bytes.Equal(got, before) {
				t.Fatalf("%s: live state changed after abort", when)
			}
			if got := recoverBytes(t, crashImage(t, dir)); !bytes.Equal(got, before) {
				t.Fatalf("%s: crash-image recovery diverged from pre-statement state:\n got:\n%s\nwant:\n%s",
					when, got, before)
			}
		}
		if !committed {
			t.Fatalf("%q: sweep did not terminate within %d injection points", sql, limit)
		}
		// The committed statement itself recovers byte-identically: the
		// CREATE replays the view into existence, the DROP replays it away.
		want := snap(t, w)
		if got := recoverBytes(t, crashImage(t, dir)); !bytes.Equal(got, want) {
			t.Fatalf("%q: committed state does not survive recovery", sql)
		}
	}
	for _, p := range []faultinject.Point{
		faultinject.BackfillSnapshot, faultinject.BackfillScan,
		faultinject.BackfillInstall, faultinject.DropViewTeardown,
	} {
		if !seen[p] {
			t.Errorf("sweep never reached injection point %s", p)
		}
	}
}

// TestFaultInjectionBackfillCatchUpRecovery sweeps the backfill while DML
// commits mid-scan: a hook on the catch-up stage executes an INSERT
// (unique key per attempt), so the sweep also lands on the
// BackfillCatchUp point with a non-empty buffer. The invariant checked
// after EVERY attempt — aborted or committed — is that crash-image
// recovery is byte-identical to the live outcome: committed concurrent
// deltas survive an aborted CREATE, and an aborted CREATE leaves no view.
func TestFaultInjectionBackfillCatchUpRecovery(t *testing.T) {
	dir := t.TempDir()
	d, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	w := d.Warehouse()
	for _, sql := range append([]string{crashDDL}, crashSteps...) {
		if _, err := w.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	attempt := 0
	w.SetBackfillHook(func(view, stage string) {
		if stage != "catch-up" {
			return
		}
		// Prices are multiples of 0.25; the id is unique per attempt so a
		// committed insert from an aborted attempt never collides.
		sql := fmt.Sprintf("INSERT INTO sale VALUES (%d, 1, %d, %g);", 6000+attempt, attempt%2+1, float64(attempt%5)*0.25)
		if _, err := w.Exec(sql); err != nil && !errors.Is(err, faultinject.ErrInjected) {
			t.Errorf("concurrent insert: genuine error: %v", err)
		}
	})
	defer w.SetBackfillHook(nil)

	const limit = 100000
	sawCatchUp := false
	done := false
	for failAt := int64(1); !done && failAt <= limit; failAt++ {
		attempt++
		h := faultinject.NewHook(failAt)
		w.SetFaultHook(h)
		_, err := w.Exec(onlineViewSQL)
		w.SetFaultHook(nil)
		p, fired := h.Fired()
		if err != nil && !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("failAt=%d: genuine error: %v", failAt, err)
		}
		if fired && p == faultinject.BackfillCatchUp {
			sawCatchUp = true
		}
		if err != nil {
			if names := w.ViewNames(); len(names) != 2 {
				t.Fatalf("failAt=%d (%s): aborted create left views %v", failAt, p, names)
			}
		}
		// The recovery invariant, regardless of outcome: the on-disk bytes
		// at this instant recover to exactly the live state.
		want := snap(t, w)
		if got := recoverBytes(t, crashImage(t, dir)); !bytes.Equal(got, want) {
			t.Fatalf("failAt=%d (%s, fired=%v): crash-image recovery diverged from live state:\n got:\n%s\nwant:\n%s",
				failAt, p, fired, got, want)
		}
		if err == nil {
			if !fired {
				done = true
				break
			}
			// The fault landed inside the concurrent INSERT instead of the
			// backfill; the view installed cleanly. Drop it and keep
			// sweeping for the later points.
			if _, derr := w.Exec(dropOnlineSQL); derr != nil {
				t.Fatal(derr)
			}
		}
	}
	if !done {
		t.Fatalf("sweep did not terminate within %d injection points", limit)
	}
	if !sawCatchUp {
		t.Fatal("sweep never reached the BackfillCatchUp injection point")
	}
}

// TestFaultInjectionTornBackfillSweep tears the log inside an online
// CREATE MATERIALIZED VIEW whose backfill raced two committed inserts:
// the tail is [DDL intent][ins1][commit1][ins2][commit2][DDL commit].
// Every cut must recover all-or-nothing per record: the view exists only
// once the DDL commit is whole, while each insert survives exactly when
// its own commit record does — byte-identical to LSN-aligned oracles
// (which consume the DDL intent's LSN via BeginDDL+Abort so the
// watermarks match).
func TestFaultInjectionTornBackfillSweep(t *testing.T) {
	inserts := []string{
		`INSERT INTO sale VALUES (7001, 1, 2, 3.25);`,
		`INSERT INTO sale VALUES (7002, 2, 1, 0.75);`,
	}
	seed := append([]string{crashDDL}, crashSteps...)

	// oracle(j): the seed, the DDL intent's LSN consumed by an aborted
	// intent, then the first j inserts — the no-view recovery states.
	oracle := func(j int) []byte {
		dir := t.TempDir()
		d, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		for _, sql := range seed {
			if _, err := d.Warehouse().Exec(sql); err != nil {
				t.Fatal(err)
			}
		}
		lsn, err := d.Log().BeginDDL(onlineViewSQL)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Log().Abort(lsn); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < j; i++ {
			if _, err := d.Warehouse().Exec(inserts[i]); err != nil {
				t.Fatal(err)
			}
		}
		return snap(t, d.Warehouse())
	}
	oracles := make([][]byte, len(inserts)+1)
	for j := range oracles {
		oracles[j] = oracle(j)
	}

	// The run whose log we tear: the inserts execute from the backfill's
	// catch-up hook, so their intents land between the DDL intent and the
	// DDL commit.
	dir := t.TempDir()
	d, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	w := d.Warehouse()
	for _, sql := range seed {
		if _, err := w.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	injected := false
	w.SetBackfillHook(func(view, stage string) {
		if stage != "catch-up" || injected {
			return
		}
		injected = true
		for _, sql := range inserts {
			if _, err := w.Exec(sql); err != nil {
				t.Errorf("concurrent insert: %v", err)
			}
		}
	})
	if _, err := w.Exec(onlineViewSQL); err != nil {
		t.Fatal(err)
	}
	w.SetBackfillHook(nil)
	if !injected {
		t.Fatal("backfill hook never fired")
	}
	wantFull := snap(t, w)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	whole, err := os.ReadFile(filepath.Join(dir, wal.LogFile))
	if err != nil {
		t.Fatal(err)
	}
	recs, ends, derr := wal.Decode(whole)
	if derr != nil {
		t.Fatalf("baseline log not clean: %v", derr)
	}
	// Locate the DDL intent; the region of interest runs from there to EOF.
	ddlIdx := -1
	for i, r := range recs {
		if r.Kind == wal.KindDDL && strings.Contains(r.SQL, "online_totals") {
			ddlIdx = i
		}
	}
	if ddlIdx < 0 || ddlIdx != len(recs)-6 {
		t.Fatalf("unexpected log shape: DDL intent at %d of %d records", ddlIdx, len(recs))
	}
	tail := recs[ddlIdx:]
	if tail[1].Kind != wal.KindDelta || tail[2].Kind != wal.KindCommit ||
		tail[3].Kind != wal.KindDelta || tail[4].Kind != wal.KindCommit ||
		tail[5].Kind != wal.KindCommit {
		t.Fatalf("unexpected tail kinds: %v %v %v %v %v", tail[1].Kind, tail[2].Kind, tail[3].Kind, tail[4].Kind, tail[5].Kind)
	}
	regionStart := int64(0)
	if ddlIdx > 0 {
		regionStart = ends[ddlIdx-1]
	}

	for cut := regionStart + 1; cut <= int64(len(whole)); cut++ {
		img := t.TempDir()
		if err := os.WriteFile(filepath.Join(img, wal.LogFile), whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got := recoverBytes(t, img)
		var want []byte
		var label string
		if cut == int64(len(whole)) {
			want, label = wantFull, "installed-view"
		} else {
			// j = insert-commit records whole at this cut.
			j := 0
			for _, i := range []int{ddlIdx + 2, ddlIdx + 4} {
				if ends[i] <= cut {
					j++
				}
			}
			want, label = oracles[j], fmt.Sprintf("no-view oracle(%d)", j)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("cut %d (of %d): recovered state differs from %s:\n got:\n%s\nwant:\n%s",
				cut, len(whole), label, got, want)
		}
	}
}

// TestFaultInjectionTornDropSweep tears the log inside a committed DROP
// MATERIALIZED VIEW: any cut strictly before the end of its commit record
// recovers the view intact (the live pre-drop state), the whole file
// recovers without it.
func TestFaultInjectionTornDropSweep(t *testing.T) {
	dir := t.TempDir()
	d, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	w := d.Warehouse()
	for _, sql := range append([]string{crashDDL}, crashSteps...) {
		if _, err := w.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Exec(onlineViewSQL); err != nil {
		t.Fatal(err)
	}
	wantPrev := snap(t, w)
	if _, err := w.Exec(dropOnlineSQL); err != nil {
		t.Fatal(err)
	}
	wantFull := snap(t, w)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	whole, err := os.ReadFile(filepath.Join(dir, wal.LogFile))
	if err != nil {
		t.Fatal(err)
	}
	recs, ends, derr := wal.Decode(whole)
	if derr != nil {
		t.Fatalf("baseline log not clean: %v", derr)
	}
	n := len(recs)
	if n < 3 || recs[n-2].Kind != wal.KindDDL || recs[n-1].Kind != wal.KindCommit {
		t.Fatalf("unexpected log tail: %v %v", recs[n-2].Kind, recs[n-1].Kind)
	}
	intentStart := ends[n-3]

	for cut := intentStart + 1; cut <= int64(len(whole)); cut++ {
		img := t.TempDir()
		if err := os.WriteFile(filepath.Join(img, wal.LogFile), whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got := recoverBytes(t, img)
		want, label := wantPrev, "pre-drop"
		if cut == int64(len(whole)) {
			want, label = wantFull, "post-drop"
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("cut %d (of %d): recovered state differs from %s oracle", cut, len(whole), label)
		}
	}
}

// TestPagedDropViewStoreRelease runs the create/drop/re-create cycle with
// the auxiliary views out of core: dropping must release the view's pager
// stores (Engine.Close through the drop teardown) so the re-created view
// opens fresh ones and still verifies against the sources.
func TestPagedDropViewStoreRelease(t *testing.T) {
	w := warehouse.New()
	if _, err := w.Exec(crashDDL); err != nil {
		t.Fatal(err)
	}
	fac, err := pager.NewFactory(filepath.Join(t.TempDir(), "pages"), pager.Options{
		PageSize:  pager.MinPageSize,
		PoolPages: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fac.Close()
	if err := w.SetAuxStoreFactory(func(view, table string) (maintain.AuxStore, error) {
		return fac.Open(view, table)
	}); err != nil {
		t.Fatal(err)
	}
	for _, sql := range pagedSeed() {
		if _, err := w.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	perCycle := -1
	for cycle := 0; cycle < 3; cycle++ {
		if _, err := w.Exec(onlineViewSQL); err != nil {
			t.Fatalf("cycle %d create: %v", cycle, err)
		}
		if err := w.Verify(); err != nil {
			t.Fatalf("cycle %d verify: %v", cycle, err)
		}
		n := 0
		for _, st := range fac.Stats() {
			if st.View == "online_totals" {
				n++
			}
		}
		if perCycle < 0 {
			perCycle = n
		} else if n != perCycle {
			// Each re-create must replace the dropped view's stores, not
			// accumulate new ones beside leaked old ones.
			t.Fatalf("cycle %d: %d stores for online_totals, want %d", cycle, n, perCycle)
		}
		if _, err := w.Exec(dropOnlineSQL); err != nil {
			t.Fatalf("cycle %d drop: %v", cycle, err)
		}
	}
	if perCycle == 0 {
		t.Fatal("online_totals never opened a pager store; test is vacuous")
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
}
