package warehouse

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentReadersAndWriter exercises the warehouse's locking: one
// writer streams inserts while many readers query the materialized view.
// Run with -race (the repository's test setup does).
func TestConcurrentReadersAndWriter(t *testing.T) {
	w := newRetail(t)

	const readers = 4
	const writes = 60
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rel, err := w.Query("product_sales")
				if err != nil {
					t.Error(err)
					return
				}
				if rel.Len() > 10 {
					t.Errorf("implausible view size %d", rel.Len())
					return
				}
				_ = w.ViewNames()
				_ = w.Detached()
				_ = w.Report()
			}
		}()
	}

	for i := 0; i < writes; i++ {
		sql := fmt.Sprintf(`INSERT INTO sale VALUES (%d, %d, %d, 7, %d)`,
			100+i, i%3+1, 100+i%2, i%40+1)
		if _, err := w.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
}
