package warehouse

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestConcurrentReadersAndWriter exercises the warehouse's locking: one
// writer streams inserts while many readers query the materialized view.
// Run with -race (the repository's test setup does).
func TestConcurrentReadersAndWriter(t *testing.T) {
	w := newRetail(t)

	const readers = 4
	const writes = 60
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rel, err := w.Query("product_sales")
				if err != nil {
					t.Error(err)
					return
				}
				if rel.Len() > 10 {
					t.Errorf("implausible view size %d", rel.Len())
					return
				}
				_ = w.ViewNames()
				_ = w.Detached()
				_ = w.Report()
			}
		}()
	}

	for i := 0; i < writes; i++ {
		sql := fmt.Sprintf(`INSERT INTO sale VALUES (%d, %d, %d, 7, %d)`,
			100+i, i%3+1, 100+i%2, i%40+1)
		if _, err := w.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestExecSelectOverlaps is the regression test for the serve-path read
// bug: Exec used to take the exclusive write lock even for SELECT-only
// scripts, serializing every remote query behind every other. The test
// proves all-SELECT Exec calls run under the shared lock — and therefore
// overlap in time — deterministically: the test itself holds w.mu.RLock
// for the whole duration, so several concurrent Exec(SELECT) calls can
// only complete if they too take the lock shared (all of them in flight
// together inside the same read-locked window). Under the old exclusive-
// lock code every one of them would block until the timeout.
func TestExecSelectOverlaps(t *testing.T) {
	w := newRetail(t)
	w.mu.RLock()
	defer w.mu.RUnlock()

	const readers = 4
	done := make(chan error, readers)
	for r := 0; r < readers; r++ {
		go func() {
			for i := 0; i < 25; i++ {
				// Mix view reads and source-evaluated ad hoc aggregates;
				// both are read-only and must classify as such.
				if _, err := w.Exec(`SELECT time.month, SUM(price) AS p, COUNT(*) AS c
					FROM sale, time WHERE sale.timeid = time.id GROUP BY time.month;
					SELECT month, TotalPrice, TotalCount, DifferentBrands FROM product_sales`); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for r := 0; r < readers; r++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("Exec(SELECT) blocked while the read lock was held: the read-only script took the write lock")
		}
	}
}

// TestExecMixedScriptStillExclusive pins the classification boundary: a
// script with any DML keeps the exclusive lock (it must not sneak through
// the read path), and still applies atomically per statement.
func TestExecMixedScriptStillExclusive(t *testing.T) {
	w := newRetail(t)
	if _, err := w.Exec(`SELECT month FROM product_sales;
		INSERT INTO sale VALUES (900, 1, 100, 7, 2);
		SELECT month, TotalCount FROM product_sales`); err != nil {
		t.Fatal(err)
	}
	rel, err := w.Query("product_sales")
	if err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for _, row := range rel.Rows {
		total += row[2].AsInt()
	}
	if total != 5 { // 4 seed 1997 sales + the inserted one
		t.Fatalf("TotalCount sum = %d, want 5", total)
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
}
