package warehouse

import (
	"strings"
	"testing"

	"mindetail/internal/maintain"
	"mindetail/internal/tuple"
	"mindetail/internal/types"
)

const setupSQL = `
CREATE TABLE time (id INTEGER PRIMARY KEY, day INTEGER, month INTEGER, year INTEGER);
CREATE TABLE product (id INTEGER PRIMARY KEY, brand VARCHAR MUTABLE, category VARCHAR);
CREATE TABLE store (id INTEGER PRIMARY KEY, city VARCHAR, manager VARCHAR MUTABLE);
CREATE TABLE sale (id INTEGER PRIMARY KEY,
	timeid INTEGER REFERENCES time,
	productid INTEGER REFERENCES product,
	storeid INTEGER REFERENCES store,
	price FLOAT MUTABLE);

INSERT INTO time VALUES (1, 5, 1, 1997), (2, 6, 1, 1997), (3, 7, 2, 1997), (4, 8, 1, 1998);
INSERT INTO product VALUES (100, 'acme', 'tools'), (101, 'bolt', 'tools');
INSERT INTO store VALUES (7, 'aalborg', 'kim');
INSERT INTO sale VALUES
	(1, 1, 100, 7, 10), (2, 1, 100, 7, 10), (3, 2, 101, 7, 5),
	(4, 3, 101, 7, 7), (5, 4, 100, 7, 99);
`

const viewSQL = `
CREATE MATERIALIZED VIEW product_sales AS
SELECT time.month, SUM(price) AS TotalPrice, COUNT(*) AS TotalCount,
       COUNT(DISTINCT brand) AS DifferentBrands
FROM sale, time, product
WHERE time.year = 1997 AND sale.timeid = time.id AND sale.productid = product.id
GROUP BY time.month;
`

func newRetail(t *testing.T) *Warehouse {
	t.Helper()
	w := New()
	if _, err := w.Exec(setupSQL); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Exec(viewSQL); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestEndToEndPaperExample(t *testing.T) {
	w := newRetail(t)
	rel, err := w.Query("product_sales")
	if err != nil {
		t.Fatal(err)
	}
	s := rel.Sorted()
	if s.Len() != 2 {
		t.Fatalf("view:\n%s", s.Format())
	}
	// month 1: sales 1,2,3 -> 25, 3 rows, 2 brands; month 2: sale 4.
	if s.Rows[0][1].AsFloat() != 25 || s.Rows[0][2].AsInt() != 3 || s.Rows[0][3].AsInt() != 2 {
		t.Errorf("month 1 = %v", s.Rows[0])
	}
	if s.Rows[1][1].AsFloat() != 7 || s.Rows[1][2].AsInt() != 1 || s.Rows[1][3].AsInt() != 1 {
		t.Errorf("month 2 = %v", s.Rows[1])
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestDMLPropagation(t *testing.T) {
	w := newRetail(t)
	steps := []string{
		`INSERT INTO sale VALUES (6, 2, 100, 7, 30)`,
		`DELETE FROM sale WHERE id = 1`,
		`UPDATE sale SET price = 12 WHERE id = 2`,
		`UPDATE product SET brand = 'zeta' WHERE id = 101`,
		`INSERT INTO time VALUES (5, 9, 3, 1997)`,
		`INSERT INTO sale VALUES (7, 5, 101, 7, 2.5)`,
		`DELETE FROM sale WHERE price > 90`,
	}
	for _, sql := range steps {
		if _, err := w.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		if err := w.Verify(); err != nil {
			t.Fatalf("after %q: %v", sql, err)
		}
	}
}

func TestAdHocSelect(t *testing.T) {
	w := newRetail(t)
	rel, err := w.Exec(`SELECT sale.productid, COUNT(*) AS cnt FROM sale GROUP BY sale.productid`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Errorf("ad hoc select:\n%s", rel.Format())
	}
	// SELECT over the materialized view reads the snapshot.
	rel, err = w.Exec(`SELECT month, TotalPrice, TotalCount, DifferentBrands FROM product_sales`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Errorf("view select:\n%s", rel.Format())
	}
}

func TestDetachedMaintenance(t *testing.T) {
	w := newRetail(t)
	w.DetachSources()
	if !w.Detached() {
		t.Fatal("not detached")
	}
	// SQL DML must fail.
	for _, sql := range []string{
		`INSERT INTO sale VALUES (9, 1, 100, 7, 1)`,
		`DELETE FROM sale WHERE id = 1`,
		`UPDATE sale SET price = 2 WHERE id = 1`,
		`CREATE TABLE t2 (id INTEGER PRIMARY KEY)`,
		`SELECT sale.id, COUNT(*) FROM sale GROUP BY sale.id`,
	} {
		if _, err := w.Exec(sql); err == nil {
			t.Errorf("%q should fail when detached", sql)
		}
	}
	// Deltas still propagate.
	row := tuple.Tuple{types.Int(9), types.Int(1), types.Int(100), types.Int(7), types.Float(40)}
	if err := w.ApplyDelta(maintain.Delta{Table: "sale", Inserts: []tuple.Tuple{row}}); err != nil {
		t.Fatal(err)
	}
	rel, err := w.Query("product_sales")
	if err != nil {
		t.Fatal(err)
	}
	s := rel.Sorted()
	if s.Rows[0][1].AsFloat() != 65 || s.Rows[0][2].AsInt() != 4 {
		t.Errorf("detached maintenance wrong: %v", s.Rows[0])
	}
	if err := w.Verify(); err == nil {
		t.Error("Verify must fail when detached")
	}
}

func TestMultipleViews(t *testing.T) {
	w := newRetail(t)
	if _, err := w.Exec(`
		CREATE MATERIALIZED VIEW by_product AS
		SELECT product.id, SUM(price) AS total, COUNT(*) AS cnt
		FROM sale, product WHERE sale.productid = product.id
		GROUP BY product.id`); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Exec(`INSERT INTO sale VALUES (6, 1, 101, 7, 3)`); err != nil {
		t.Fatal(err)
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
	if got := w.ViewNames(); len(got) != 2 {
		t.Errorf("views = %v", got)
	}
}

func TestStorageReport(t *testing.T) {
	w := newRetail(t)
	if _, err := w.Exec(`
		CREATE MATERIALIZED VIEW by_product AS
		SELECT product.id, SUM(price) AS total, COUNT(*) AS cnt
		FROM sale, product WHERE sale.productid = product.id
		GROUP BY product.id`); err != nil {
		t.Fatal(err)
	}
	reports := w.Report()
	if len(reports) != 2 {
		t.Fatalf("reports = %d", len(reports))
	}
	ps := reports[0]
	if ps.View != "product_sales" || ps.BaseRows == 0 || ps.AuxRows == 0 {
		t.Errorf("report = %+v", ps)
	}
	if ps.AuxBytes >= ps.BaseBytes {
		t.Errorf("auxiliary views should be smaller: %+v", ps)
	}
	bp := reports[1]
	if len(bp.OmittedTables) != 1 || bp.OmittedTables[0] != "sale" {
		t.Errorf("by_product omitted = %v", bp.OmittedTables)
	}
	out := FormatReport(reports)
	if !strings.Contains(out, "product_sales") || !strings.Contains(out, "omitted auxiliary views: sale") {
		t.Errorf("FormatReport:\n%s", out)
	}
}

func TestExecErrors(t *testing.T) {
	w := newRetail(t)
	cases := []string{
		`CREATE TABLE sale (id INTEGER PRIMARY KEY)`, // duplicate
		viewSQL,                           // duplicate view
		`INSERT INTO nosuch VALUES (1)`,   // unknown table
		`DELETE FROM nosuch WHERE id = 1`, // unknown table
		`SELECT nothere, COUNT(*) FROM sale GROUP BY nothere`,
		`CREATE MATERIALIZED VIEW bad AS SELECT sale.id, SUM(price) FROM sale GROUP BY sale.id`, // superfluous
		`UPDATE sale SET id = 9 WHERE id = 1`,                                                   // key update
		`SELECT month FROM product_sales WHERE month = 1`,                                       // filtered view read
	}
	for _, sql := range cases {
		if _, err := w.Exec(sql); err == nil {
			t.Errorf("%q should fail", sql)
		}
	}
}

func TestMustExecPanics(t *testing.T) {
	w := New()
	defer func() {
		if recover() == nil {
			t.Error("MustExec should panic on error")
		}
	}()
	w.MustExec(`INSERT INTO nosuch VALUES (1)`)
}

// TestExecStatementErrorContext: a mid-script failure names the 1-based
// statement and an abbreviated SQL fragment, earlier statements keep their
// effects (per-statement atomicity), and later ones never run.
func TestExecStatementErrorContext(t *testing.T) {
	w := newRetail(t)
	_, err := w.Exec(`
		INSERT INTO sale VALUES (6, 1, 100, 7, 1);
		INSERT INTO sale VALUES (6, 1, 100, 7, 2);
		INSERT INTO sale VALUES (7, 1, 100, 7, 3);
	`)
	if err == nil {
		t.Fatal("duplicate key accepted")
	}
	for _, want := range []string{"statement 2", "INSERT INTO sale VALUES (6, 1, 100, 7, 2)"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not contain %q", err, want)
		}
	}
	// Statement 1 persisted; statements 2 and 3 left no trace anywhere.
	if got := w.Source().Table("sale").Len(); got != 6 {
		t.Errorf("sale rows = %d, want 6 (5 seed + statement 1)", got)
	}
	if err := w.Verify(); err != nil {
		t.Fatalf("views inconsistent after failed script: %v", err)
	}
	// Single-statement errors are not wrapped with script context.
	_, err = w.Exec(`INSERT INTO sale VALUES (6, 1, 100, 7, 9)`)
	if err == nil {
		t.Fatal("duplicate key accepted")
	}
	if strings.Contains(err.Error(), "statement 1") {
		t.Errorf("single statement error carries script context: %v", err)
	}
	// Long statements are abbreviated in the error.
	_, err = w.Exec(`
		SELECT month FROM product_sales;
		INSERT INTO sale VALUES (6, 1, 100, 7, 1), (60, 1, 100, 7, 1), (61, 1, 100, 7, 1), (62, 1, 100, 7, 1);
	`)
	if err == nil {
		t.Fatal("duplicate key accepted")
	}
	if !strings.Contains(err.Error(), "...") {
		t.Errorf("long statement not abbreviated: %v", err)
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
}
