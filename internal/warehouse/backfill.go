package warehouse

import (
	"fmt"

	"mindetail/internal/core"
	"mindetail/internal/faultinject"
	"mindetail/internal/gpsj"
	"mindetail/internal/maintain"
	"mindetail/internal/ra"
	"mindetail/internal/sqlparse"
)

// backfillState is one CREATE MATERIALIZED VIEW backfill in flight. The
// warehouse registers it under w.mu in the same critical section that
// clones the source snapshot, so every committed delta lands in exactly
// one place: deltas before registration are part of the snapshot, deltas
// after are appended to buf by propagate (which always runs under w.mu)
// and replayed into the unpublished engine during catch-up.
type backfillState struct {
	buf []pendingDelta // committed deltas awaiting catch-up (guarded by w.mu)
}

// pendingDelta is one buffered catch-up entry: the committed delta plus
// the maintenance strategy propagate applied it with. Replaying with the
// same strategy keeps the backfilled engine's float-accumulation history
// bit-identical to a same-epoch sibling's, which is what lets it share
// the sibling's memo scope after install.
type pendingDelta struct {
	d     maintain.Delta
	strat maintain.Strategy
}

// SetBackfillHook installs (nil removes) a test hook fired — while NOT
// holding the warehouse lock — at each stage transition of an online
// backfill: "scan", "catch-up", and "install" (the last immediately
// before the lock is taken for the atomic install). Blocking inside the
// hook keeps the backfill in that stage while Query and ApplyDelta
// traffic proceeds, which is exactly what the concurrency tests do.
func (w *Warehouse) SetBackfillHook(f func(view, stage string)) {
	if f == nil {
		w.backfillHook.Store(nil)
		return
	}
	w.backfillHook.Store(&f)
}

func (w *Warehouse) backfillStage(view, stage string) {
	if f := w.backfillHook.Load(); f != nil {
		(*f)(view, stage)
	}
}

// createViewOnline executes CREATE MATERIALIZED VIEW against a live
// warehouse without holding the write lock for the duration of the
// initial scan. The statement is synchronous for its caller but
// non-blocking for everyone else:
//
//  1. Under w.mu: validate, derive the plan, build the (unpublished)
//     engine, WAL-log the DDL intent, clone the referenced source
//     relations, and register a pending delta buffer. Cloning is a
//     shallow row-slice copy per table (tuples are immutable), so the
//     critical section stays short.
//  2. Off-lock: initialize the engine — the full GPSJ + auxiliary-view
//     scan — from the cloned snapshot. Query and ApplyDelta proceed;
//     committed deltas accumulate in the pending buffer.
//  3. Off-lock: catch up, draining the buffer in chunks through the same
//     staging path propagate uses. The engine is unpublished, so no lock
//     is needed while replaying a chunk.
//  4. Under w.mu: drain the final remainder, install the view atomically
//     (catalog, order, copy-on-write index), and WAL-commit the DDL.
//
// A failure at any point aborts whole: the WAL intent is aborted, the
// pending buffer discarded, and the engine closed (releasing any pager
// stores) — the warehouse is as if the statement never ran. Recovery
// mirrors this: an intent without an outcome is discarded, a committed
// intent re-creates the view at its log position and replays the
// later-LSN deltas — the same order live catch-up applied them.
func (w *Warehouse) createViewOnline(st *sqlparse.CreateView, logSQL string) error {
	w.mu.Lock()
	if w.detached {
		w.mu.Unlock()
		return fmt.Errorf("warehouse: sources are detached; views must be created before detaching")
	}
	if _, dup := w.views[st.Name]; dup {
		w.mu.Unlock()
		return fmt.Errorf("warehouse: view %s already exists", st.Name)
	}
	if _, busy := w.pending[st.Name]; busy {
		w.mu.Unlock()
		return fmt.Errorf("warehouse: view %s backfill already in progress", st.Name)
	}
	v, err := gpsj.FromSelect(w.cat, st.Name, st.Query)
	if err != nil {
		w.mu.Unlock()
		return err
	}
	var plan *core.Plan
	if w.AppendOnly {
		plan, err = core.DeriveAppendOnly(v)
	} else {
		plan, err = core.Derive(v)
	}
	if err != nil {
		w.mu.Unlock()
		return err
	}
	eng, err := maintain.NewEngine(plan)
	if err != nil {
		w.mu.Unlock()
		return err
	}
	eng.UseNeedSets = w.UseNeedSets
	eng.Shards = w.engineShards
	if !w.obsTimingOff {
		eng.SetMetrics(w.met.engineMet)
	}
	// The engine initializes from the source state of the current epoch
	// and catches up on every later delta with the strategy propagate
	// used, so its history — and therefore its bits — match a view
	// created synchronously at this epoch: it may share that epoch's
	// memoized per-delta work.
	eng.SetMemoScope(fmt.Sprintf("epoch%d", w.epoch))
	if w.auxFactory != nil {
		if err := eng.SetAuxStores(w.adaptFactory(st.Name)); err != nil {
			w.mu.Unlock()
			return err
		}
	}
	lsn, logged, err := w.beginDDL(logSQL)
	if err != nil {
		w.mu.Unlock()
		_ = eng.Close()
		return err
	}
	abortLocked := func(cause error) error {
		delete(w.pending, st.Name)
		w.met.backfillActive.Add(-1)
		w.met.backfillsAborted.Inc()
		w.mu.Unlock()
		_ = eng.Close()
		if logged {
			_ = w.wal.Abort(lsn)
		}
		return cause
	}
	bf := &backfillState{}
	w.pending[st.Name] = bf
	w.met.backfillsStarted.Inc()
	w.met.backfillActive.Add(1)
	if ferr := w.fi.Fire(faultinject.BackfillSnapshot); ferr != nil {
		return abortLocked(ferr)
	}
	// Snapshot the referenced sources inside the same critical section
	// that registered the buffer: no committed delta can fall between.
	snap := make(map[string]*ra.Relation, len(v.Tables))
	for _, t := range v.Tables {
		snap[t] = w.srcRel(t)
	}
	w.mu.Unlock()

	abort := func(cause error) error {
		w.mu.Lock()
		return abortLocked(cause)
	}

	// Phase 2: the initial scan, off-lock over the immutable snapshot.
	w.backfillStage(st.Name, "scan")
	if err := eng.Init(func(table string) *ra.Relation { return snap[table] }); err != nil {
		return abort(err)
	}
	if ferr := w.fi.Fire(faultinject.BackfillScan); ferr != nil {
		return abort(ferr)
	}

	// Phase 3: catch up on deltas that committed during the scan. Each
	// chunk is detached under the lock and replayed off-lock; the loop
	// converges because draining is faster than the write path refills.
	w.backfillStage(st.Name, "catch-up")
	for {
		w.mu.Lock()
		chunk := bf.buf
		bf.buf = nil
		w.mu.Unlock()
		if len(chunk) == 0 {
			break
		}
		for _, pd := range chunk {
			if ferr := w.fi.Fire(faultinject.BackfillCatchUp); ferr != nil {
				return abort(ferr)
			}
			if err := backfillApply(eng, pd); err != nil {
				return abort(err)
			}
			w.met.backfillCatchUp.Inc()
		}
	}

	// Phase 4: the atomic install. Holding w.mu freezes the buffer, so
	// the final drain leaves the engine exactly at the warehouse's
	// current state before the view becomes visible.
	w.backfillStage(st.Name, "install")
	w.mu.Lock()
	for _, pd := range bf.buf {
		if err := backfillApply(eng, pd); err != nil {
			return abortLocked(err)
		}
		w.met.backfillCatchUp.Inc()
	}
	bf.buf = nil
	if ferr := w.fi.Fire(faultinject.BackfillInstall); ferr != nil {
		return abortLocked(ferr)
	}
	delete(w.pending, st.Name)
	w.views[st.Name] = &View{Def: v, Plan: plan, Engine: eng}
	w.order = append(w.order, st.Name)
	w.publishViewIndex()
	w.met.backfillActive.Add(-1)
	w.met.backfillsInstalled.Inc()
	err = nil
	if logged {
		if cerr := w.wal.Commit(lsn); cerr != nil {
			err = fmt.Errorf("warehouse: view %s installed in memory but WAL commit failed (not durable): %w", st.Name, cerr)
		} else if lsn > w.lsn.Load() {
			// Monotonic advance only: deltas that committed during the
			// backfill carry LSNs above the DDL intent's, and moving the
			// watermark backward would let a restart replay them twice.
			w.lsn.Store(lsn)
		}
	}
	w.mu.Unlock()
	return err
}

// backfillApply replays one committed delta into an unpublished backfill
// engine through the same staging path — and with the same strategy —
// propagate used, so the installed view is bit-identical to one that had
// existed all along (and to what WAL recovery reproduces).
func backfillApply(eng *maintain.Engine, pd pendingDelta) error {
	if err := eng.StageWithPlan(pd.d, nil, pd.strat); err != nil {
		return err
	}
	eng.Commit()
	return nil
}

// feedBackfills appends a committed delta and its propagation strategy to
// every pending backfill's catch-up buffer. Callers hold w.mu
// (propagate's commit section).
func (w *Warehouse) feedBackfills(d maintain.Delta, strat maintain.Strategy) {
	for _, bf := range w.pending {
		bf.buf = append(bf.buf, pendingDelta{d: d, strat: strat})
	}
}

// dropView executes DROP MATERIALIZED VIEW: WAL-log the intent, remove
// the view from the catalog and the copy-on-write index under w.mu,
// WAL-commit, then close the engine off-lock — evicting its snapshot
// cache with it and releasing any out-of-core pager stores.
func (w *Warehouse) dropView(st *sqlparse.DropView, logSQL string) error {
	w.mu.Lock()
	if _, busy := w.pending[st.Name]; busy {
		w.mu.Unlock()
		return fmt.Errorf("warehouse: view %s backfill in progress; cannot drop", st.Name)
	}
	mv := w.views[st.Name]
	if mv == nil {
		w.mu.Unlock()
		if st.IfExists {
			return nil
		}
		return fmt.Errorf("warehouse: unknown view %s", st.Name)
	}
	lsn, logged, err := w.beginDDL(logSQL)
	if err != nil {
		w.mu.Unlock()
		return err
	}
	if ferr := w.fi.Fire(faultinject.DropViewTeardown); ferr != nil {
		w.mu.Unlock()
		if logged {
			_ = w.wal.Abort(lsn)
		}
		return ferr
	}
	w.removeView(st.Name)
	w.met.viewsDropped.Inc()
	err = nil
	if logged {
		if cerr := w.wal.Commit(lsn); cerr != nil {
			err = fmt.Errorf("warehouse: view %s dropped in memory but WAL commit failed (not durable): %w", st.Name, cerr)
		} else if lsn > w.lsn.Load() {
			w.lsn.Store(lsn)
		}
	}
	w.mu.Unlock()
	if cerr := mv.Engine.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("warehouse: view %s dropped but store release failed: %w", st.Name, cerr)
	}
	return err
}

// applyDropView is the replay-path teardown: remove the view and close
// its engine, no logging. Callers hold w.mu. Idempotence comes from the
// caller's LSN check plus IfExists semantics for re-dropped names.
func (w *Warehouse) applyDropView(st *sqlparse.DropView) error {
	mv := w.views[st.Name]
	if mv == nil {
		if st.IfExists {
			return nil
		}
		return fmt.Errorf("warehouse: unknown view %s", st.Name)
	}
	w.removeView(st.Name)
	return mv.Engine.Close()
}

// removeView unregisters a view from the catalog, creation order, and
// the published index. Callers hold w.mu.
func (w *Warehouse) removeView(name string) {
	delete(w.views, name)
	for i, n := range w.order {
		if n == name {
			w.order = append(w.order[:i], w.order[i+1:]...)
			break
		}
	}
	w.publishViewIndex()
}
