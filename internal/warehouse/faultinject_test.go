package warehouse

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"mindetail/internal/faultinject"
	"mindetail/internal/maintain"
	"mindetail/internal/ra"
	"mindetail/internal/tuple"
	"mindetail/internal/types"
)

var retailTables = []string{"time", "product", "store", "sale"}

// deepClone copies a relation including its tuples, so the capture is
// unaffected by later in-place mutation of shared rows.
func deepClone(r *ra.Relation) *ra.Relation {
	out := &ra.Relation{Cols: append(ra.Schema(nil), r.Cols...)}
	out.Rows = make([]tuple.Tuple, len(r.Rows))
	for i, row := range r.Rows {
		out.Rows[i] = row.Clone()
	}
	return out
}

// warehouseCapture is a deep snapshot of everything a statement may touch:
// every source table and every materialized view.
type warehouseCapture struct {
	sources map[string]*ra.Relation
	views   map[string]*ra.Relation
}

func captureWarehouse(t *testing.T, w *Warehouse) warehouseCapture {
	t.Helper()
	c := warehouseCapture{sources: map[string]*ra.Relation{}, views: map[string]*ra.Relation{}}
	if !w.Detached() {
		for _, tb := range retailTables {
			c.sources[tb] = deepClone(ra.FromTable(w.Source().Table(tb), tb))
		}
	}
	for _, name := range w.ViewNames() {
		rel, err := w.Query(name)
		if err != nil {
			t.Fatal(err)
		}
		c.views[name] = deepClone(rel)
	}
	return c
}

func (c warehouseCapture) requireUnchanged(t *testing.T, w *Warehouse, when string) {
	t.Helper()
	for tb, before := range c.sources {
		after := ra.FromTable(w.Source().Table(tb), tb)
		if !ra.EqualBag(after, before) {
			t.Fatalf("%s: source table %s changed after failed statement\nbefore:\n%s\nafter:\n%s",
				when, tb, before.Format(), after.Format())
		}
	}
	for name, before := range c.views {
		after, err := w.Query(name)
		if err != nil {
			t.Fatal(err)
		}
		if !ra.EqualBag(after, before) {
			t.Fatalf("%s: view %s changed after failed statement\nbefore:\n%s\nafter:\n%s",
				when, name, before.Format(), after.Format())
		}
	}
}

// sweepStmt executes one SQL statement with a fault injected at the N-th
// injection point for N = 1, 2, ... until it commits cleanly. After every
// injected failure the sources AND every view must be unchanged and
// mutually consistent (Verify), so a failure can never leave the delta
// visible in some views, or in the sources, but not everywhere.
func sweepStmt(t *testing.T, w *Warehouse, sql string) {
	t.Helper()
	const limit = 100000
	for failAt := int64(1); failAt <= limit; failAt++ {
		before := captureWarehouse(t, w)
		h := faultinject.NewHook(failAt)
		w.SetFaultHook(h)
		_, err := w.Exec(sql)
		w.SetFaultHook(nil)
		if err == nil {
			if p, fired := h.Fired(); fired {
				t.Fatalf("%q: hook fired at %s but Exec succeeded", sql, p)
			}
			if verr := w.Verify(); verr != nil {
				t.Fatalf("%q: after clean commit: %v", sql, verr)
			}
			return
		}
		if !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("%q failAt=%d: genuine error: %v", sql, failAt, err)
		}
		p, _ := h.Fired()
		when := fmt.Sprintf("%q failAt=%d (%s)", sql, failAt, p)
		before.requireUnchanged(t, w, when)
		if verr := w.Verify(); verr != nil {
			t.Fatalf("%s: sources and views inconsistent after rollback: %v", when, verr)
		}
	}
	t.Fatalf("%q: sweep did not terminate within %d injection points", sql, limit)
}

// TestFaultInjectionWarehouseDML drives DML statements through a warehouse
// with two views (one of which omits its root auxiliary view), failing at
// every reachable injection point of every statement.
func TestFaultInjectionWarehouseDML(t *testing.T) {
	w := newRetail(t)
	if _, err := w.Exec(`
		CREATE MATERIALIZED VIEW by_product AS
		SELECT product.id, SUM(price) AS total, COUNT(*) AS cnt
		FROM sale, product WHERE sale.productid = product.id
		GROUP BY product.id`); err != nil {
		t.Fatal(err)
	}
	steps := []string{
		`INSERT INTO sale VALUES (6, 2, 100, 7, 30)`,
		`INSERT INTO sale VALUES (7, 1, 101, 7, 4), (8, 3, 100, 7, 6)`,
		`UPDATE sale SET price = 12 WHERE id = 2`,
		`UPDATE product SET brand = 'zeta' WHERE id = 101`,
		`DELETE FROM sale WHERE id = 1`,
		`INSERT INTO time VALUES (9, 9, 3, 1997)`,
		`DELETE FROM sale WHERE price > 90`,
	}
	for _, sql := range steps {
		sweepStmt(t, w, sql)
	}
}

// TestFaultInjectionApplyDelta sweeps the detached change-log path: after
// DetachSources, a failed ApplyDelta must leave every view untouched.
func TestFaultInjectionApplyDelta(t *testing.T) {
	w := newRetail(t)
	if _, err := w.Exec(`
		CREATE MATERIALIZED VIEW by_product AS
		SELECT product.id, SUM(price) AS total, COUNT(*) AS cnt
		FROM sale, product WHERE sale.productid = product.id
		GROUP BY product.id`); err != nil {
		t.Fatal(err)
	}
	w.DetachSources()
	d := maintain.Delta{Table: "sale", Inserts: []tuple.Tuple{
		{types.Int(20), types.Int(1), types.Int(100), types.Int(7), types.Float(8)},
	}}
	const limit = 100000
	for failAt := int64(1); failAt <= limit; failAt++ {
		before := captureWarehouse(t, w)
		h := faultinject.NewHook(failAt)
		w.SetFaultHook(h)
		err := w.ApplyDelta(d)
		w.SetFaultHook(nil)
		if err == nil {
			if p, fired := h.Fired(); fired {
				t.Fatalf("hook fired at %s but ApplyDelta succeeded", p)
			}
			// The delta must now be visible.
			after, qerr := w.Query("by_product")
			if qerr != nil {
				t.Fatal(qerr)
			}
			if ra.EqualBag(after, before.views["by_product"]) {
				t.Fatal("committed delta is not visible in by_product")
			}
			return
		}
		if !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("failAt=%d: genuine error: %v", failAt, err)
		}
		p, _ := h.Fired()
		before.requireUnchanged(t, w, fmt.Sprintf("failAt=%d (%s)", failAt, p))
	}
	t.Fatalf("sweep did not terminate within %d injection points", limit)
}

// TestFaultInjectionImportCSV sweeps a single-batch CSV load: a failure at
// any point must leave sources and views as if the load never happened.
func TestFaultInjectionImportCSV(t *testing.T) {
	w := newRetail(t)
	csv := "30,1,100,7,20\n31,2,101,7,5.5\n32,3,100,7,7\n"
	const limit = 100000
	for failAt := int64(1); failAt <= limit; failAt++ {
		before := captureWarehouse(t, w)
		h := faultinject.NewHook(failAt)
		w.SetFaultHook(h)
		n, err := w.ImportCSV("sale", strings.NewReader(csv), false)
		w.SetFaultHook(nil)
		if err == nil {
			if n != 3 {
				t.Fatalf("clean load = %d rows, want 3", n)
			}
			if verr := w.Verify(); verr != nil {
				t.Fatalf("after clean load: %v", verr)
			}
			return
		}
		if !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("failAt=%d: genuine error: %v", failAt, err)
		}
		p, _ := h.Fired()
		when := fmt.Sprintf("failAt=%d (%s)", failAt, p)
		if n != 0 {
			t.Fatalf("%s: failed single-batch load reported %d rows", when, n)
		}
		before.requireUnchanged(t, w, when)
		if verr := w.Verify(); verr != nil {
			t.Fatalf("%s: inconsistent after rollback: %v", when, verr)
		}
	}
	t.Fatalf("sweep did not terminate within %d injection points", limit)
}

// TestApplyDeltaUnknownTable: deltas for tables the catalog has never seen
// are rejected up front instead of silently ignored by every engine.
func TestApplyDeltaUnknownTable(t *testing.T) {
	w := newRetail(t)
	err := w.ApplyDelta(maintain.Delta{Table: "nosuch", Inserts: []tuple.Tuple{{types.Int(1)}}})
	if err == nil || !strings.Contains(err.Error(), "unknown table") {
		t.Fatalf("err = %v", err)
	}
	if verr := w.Verify(); verr != nil {
		t.Fatal(verr)
	}
}
