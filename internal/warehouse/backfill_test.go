package warehouse

import (
	"strings"
	"testing"

	"mindetail/internal/maintain"
	"mindetail/internal/tuple"
	"mindetail/internal/types"
)

const brandViewSQL = `
CREATE MATERIALIZED VIEW brand_sales AS
SELECT brand, SUM(price) AS total, COUNT(*) AS cnt
FROM sale, product WHERE sale.productid = product.id GROUP BY brand;
`

// TestBackfillConcurrentQueryAndApplyDelta is the acceptance test for the
// online CREATE MATERIALIZED VIEW path: while a backfill is parked
// mid-scan (holding no lock), concurrent Query and ApplyDelta calls must
// COMPLETE — not merely queue behind the DDL — and the deltas that commit
// during the scan must surface in the installed view via catch-up. Run
// with -race (the repository's race gate covers this package).
func TestBackfillConcurrentQueryAndApplyDelta(t *testing.T) {
	w := newRetail(t)
	entered := make(chan struct{})
	release := make(chan struct{})
	w.SetBackfillHook(func(view, stage string) {
		if view == "brand_sales" && stage == "scan" {
			close(entered)
			<-release
		}
	})
	done := make(chan error, 1)
	go func() {
		_, err := w.Exec(brandViewSQL)
		done <- err
	}()
	<-entered

	// The backfill is in flight and parked. Reads and writes proceed.
	const writes = 5
	for i := 0; i < writes; i++ {
		if _, err := w.Query("product_sales"); err != nil {
			t.Fatal(err)
		}
		d := maintain.Delta{Table: "sale", Inserts: []tuple.Tuple{
			{types.Int(int64(500 + i)), types.Int(1), types.Int(101), types.Int(7), types.Float(4)},
		}}
		if err := w.ApplyDelta(d); err != nil {
			t.Fatal(err)
		}
	}
	// A second create of the same name, and a drop of it, are rejected
	// while its backfill is pending.
	if _, err := w.Exec(brandViewSQL); err == nil || !strings.Contains(err.Error(), "in progress") {
		t.Fatalf("duplicate create during backfill: err = %v", err)
	}
	if _, err := w.Exec(`DROP MATERIALIZED VIEW brand_sales`); err == nil || !strings.Contains(err.Error(), "in progress") {
		t.Fatalf("drop during backfill: err = %v", err)
	}
	// Everything above completed while the backfill never advanced: the
	// DDL must still be in flight, proving the traffic did not wait on it.
	select {
	case err := <-done:
		t.Fatalf("backfill finished while parked: err = %v", err)
	default:
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	w.SetBackfillHook(nil)

	// The installed view reflects snapshot + catch-up: the 5 seed sales
	// (acme: 10+10+99, bolt: 5+7) plus 5 concurrent bolt sales at 4 each.
	rel, err := w.Query("brand_sales")
	if err != nil {
		t.Fatal(err)
	}
	s := rel.Sorted()
	if s.Len() != 2 {
		t.Fatalf("brand_sales:\n%s", s.Format())
	}
	if s.Rows[0][0].AsString() != "acme" || s.Rows[0][1].AsFloat() != 119 || s.Rows[0][2].AsInt() != 3 {
		t.Errorf("acme = %v", s.Rows[0])
	}
	if s.Rows[1][0].AsString() != "bolt" || s.Rows[1][1].AsFloat() != 32 || s.Rows[1][2].AsInt() != 7 {
		t.Errorf("bolt = %v", s.Rows[1])
	}
	// The pre-existing view received the concurrent deltas as usual:
	// month 1 gains 5 sales of 4 (timeid 1 is year 1997, month 1).
	ps, err := w.Query("product_sales")
	if err != nil {
		t.Fatal(err)
	}
	ps = ps.Sorted()
	if ps.Rows[0][1].AsFloat() != 45 || ps.Rows[0][2].AsInt() != 8 {
		t.Errorf("product_sales month 1 = %v", ps.Rows[0])
	}
}

// TestBackfillCatchUpMatchesPreexistingView pins the catch-up invariant:
// a view created while DML commits mid-backfill ends identical to the
// same view had it existed before the DML — the snapshot/catch-up split
// must be invisible. Prices are multiples of 0.25 so the comparison is
// exact.
func TestBackfillCatchUpMatchesPreexistingView(t *testing.T) {
	steps := []string{
		`INSERT INTO sale VALUES (20, 1, 100, 7, 2.25)`,
		`INSERT INTO sale VALUES (21, 2, 101, 7, 8.5), (22, 3, 101, 7, 1.75)`,
		`UPDATE sale SET price = 6.25 WHERE id = 3`,
		`UPDATE product SET brand = 'nadir' WHERE id = 101`,
		`DELETE FROM sale WHERE id = 1`,
	}

	oracle := newRetail(t)
	oracle.MustExec(brandViewSQL)
	for _, sql := range steps {
		oracle.MustExec(sql)
	}

	w := newRetail(t)
	injected := false
	w.SetBackfillHook(func(view, stage string) {
		if stage != "catch-up" || injected {
			return
		}
		injected = true
		for _, sql := range steps {
			w.MustExec(sql)
		}
	})
	w.MustExec(brandViewSQL)
	w.SetBackfillHook(nil)
	if !injected {
		t.Fatal("backfill hook never fired")
	}

	for _, view := range []string{"brand_sales", "product_sales"} {
		got, err := w.Query(view)
		if err != nil {
			t.Fatal(err)
		}
		want, err := oracle.Query(view)
		if err != nil {
			t.Fatal(err)
		}
		if g, o := got.Sorted().Format(), want.Sorted().Format(); g != o {
			t.Errorf("%s diverged from the pre-existing-view oracle:\n got:\n%s\nwant:\n%s", view, g, o)
		}
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := oracle.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestDropViewLifecycle exercises DROP MATERIALIZED VIEW: unknown names
// error (unless IF EXISTS), a dropped view disappears from the catalog
// and the lock-free query index, DML keeps working with no views, and
// the name is immediately reusable.
func TestDropViewLifecycle(t *testing.T) {
	w := newRetail(t)
	if _, err := w.Exec(`DROP MATERIALIZED VIEW nosuch`); err == nil {
		t.Fatal("dropping an unknown view succeeded")
	}
	if _, err := w.Exec(`DROP MATERIALIZED VIEW IF EXISTS nosuch`); err != nil {
		t.Fatal(err)
	}
	w.MustExec(`DROP MATERIALIZED VIEW product_sales`)
	if _, err := w.Query("product_sales"); err == nil {
		t.Fatal("query answered by a dropped view")
	}
	if names := w.ViewNames(); len(names) != 0 {
		t.Fatalf("views after drop: %v", names)
	}
	w.MustExec(`INSERT INTO sale VALUES (90, 1, 100, 7, 3)`)
	w.MustExec(viewSQL)
	rel, err := w.Query("product_sales")
	if err != nil {
		t.Fatal(err)
	}
	s := rel.Sorted()
	// Month 1 originally summed 25 over 3 sales; the insert adds one at 3.
	if s.Rows[0][1].AsFloat() != 28 || s.Rows[0][2].AsInt() != 4 {
		t.Errorf("month 1 after drop/recreate = %v", s.Rows[0])
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
}
