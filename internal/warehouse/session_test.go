package warehouse

import (
	"strings"
	"testing"

	"mindetail/internal/maintain"
	"mindetail/internal/ra"
	"mindetail/internal/tuple"
	"mindetail/internal/types"
)

// stubChooser defers insert-only deltas when asked and records every call.
type stubChooser struct {
	deferInserts bool
	chooseCalls  int
	observed     []maintain.Strategy
}

func (c *stubChooser) Choose(view string, sh maintain.DeltaShape, allowDefer bool) maintain.Strategy {
	c.chooseCalls++
	if c.deferInserts && allowDefer && sh.Class == maintain.ClassInsertOnly {
		return maintain.StrategyDefer
	}
	return maintain.StrategyScoped
}

func (c *stubChooser) Observe(view string, sh maintain.DeltaShape, s maintain.Strategy, ns int64) {
	c.observed = append(c.observed, s)
}

func saleRow(id int64, price float64) tuple.Tuple {
	return tuple.Tuple{types.Int(id), types.Int(1), types.Int(100), types.Int(7), types.Float(price)}
}

// An adaptive session must buffer deferred inserts, flush them before any
// non-deferred delta (preserving source order), and end bit-identical to a
// warehouse that applied the same stream directly.
func TestAdaptiveSessionDeferAndFlushOrdering(t *testing.T) {
	w := newRetail(t)
	w.DetachSources()
	twin := newRetail(t)
	twin.DetachSources()

	ch := &stubChooser{deferInserts: true}
	s := w.NewAdaptiveSession(ch, 100)

	stream := []maintain.Delta{
		{Table: "sale", Inserts: []tuple.Tuple{saleRow(70, 1)}},
		{Table: "sale", Inserts: []tuple.Tuple{saleRow(71, 2)}},
		// An update forces a flush-first so the inserts land before it.
		{Table: "sale", Updates: []maintain.Update{{Old: saleRow(70, 1), New: saleRow(70, 9)}}},
		{Table: "sale", Inserts: []tuple.Tuple{saleRow(72, 3)}},
	}
	for i, d := range stream {
		if err := s.Apply(d); err != nil {
			t.Fatalf("delta %d: %v", i, err)
		}
		if err := twin.ApplyDelta(d); err != nil {
			t.Fatalf("twin delta %d: %v", i, err)
		}
	}
	if s.Pending() != 1 {
		t.Fatalf("trailing insert should be buffered, pending=%d", s.Pending())
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if s.Pending() != 0 {
		t.Fatalf("flush left %d pending", s.Pending())
	}

	got, err := w.Query("product_sales")
	if err != nil {
		t.Fatal(err)
	}
	want, err := twin.Query("product_sales")
	if err != nil {
		t.Fatal(err)
	}
	if !ra.EqualBag(got, want) {
		t.Fatalf("session end state diverged from direct applies\ngot:\n%s\nwant:\n%s",
			got.Sorted().Format(), want.Sorted().Format())
	}

	deferred := 0
	for _, st := range ch.observed {
		if st == maintain.StrategyDefer {
			deferred++
		}
	}
	if deferred != 3 {
		t.Fatalf("3 deferred deltas should be observed under defer, got %d (%v)", deferred, ch.observed)
	}
}

// Propagate must consult the chooser exactly once per delta, regardless of
// how many views the warehouse maintains.
func TestPropagateConsultsChooserOncePerDelta(t *testing.T) {
	w := newRetail(t)
	if _, err := w.Exec(`CREATE MATERIALIZED VIEW by_brand AS
		SELECT product.brand, SUM(price) AS total, COUNT(*) AS cnt
		FROM sale, product WHERE sale.productid = product.id
		GROUP BY product.brand`); err != nil {
		t.Fatal(err)
	}
	ch := &stubChooser{}
	w.SetStrategyChooser(ch)
	if _, err := w.Exec("INSERT INTO sale VALUES (80, 1, 100, 7, 4)"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Exec("UPDATE sale SET price = 5 WHERE id = 80"); err != nil {
		t.Fatal(err)
	}
	if ch.chooseCalls != 2 {
		t.Fatalf("2 deltas across 2 views should yield 2 Choose calls, got %d", ch.chooseCalls)
	}
	if len(ch.observed) != 2 {
		t.Fatalf("each committed delta should be observed once, got %d", len(ch.observed))
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
}

// The op log must record view-answered queries, ad-hoc queries with their
// clustering signature, and committed deltas.
func TestOpLogRecordsQueriesAndDeltas(t *testing.T) {
	w := newRetail(t)
	var events []OpEvent
	w.SetOpLog(func(ev OpEvent) { events = append(events, ev) })

	if _, err := w.Exec("SELECT month, TotalPrice FROM product_sales"); err != nil {
		t.Fatal(err)
	}
	adhoc := "SELECT time.year, SUM(price) AS total FROM sale, time WHERE sale.timeid = time.id GROUP BY time.year"
	if _, err := w.Exec(adhoc); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Exec("INSERT INTO sale VALUES (81, 1, 100, 7, 4)"); err != nil {
		t.Fatal(err)
	}
	// A failing query must not be logged.
	if _, err := w.Exec("SELECT month FROM nosuch"); err == nil {
		t.Fatal("query over unknown table should fail")
	}

	if len(events) != 3 {
		t.Fatalf("want 3 events, got %d: %+v", len(events), events)
	}
	if ev := events[0]; ev.Kind != "query-view" || ev.View != "product_sales" {
		t.Fatalf("view query event wrong: %+v", ev)
	}
	if ev := events[1]; ev.Kind != "query-adhoc" ||
		!strings.Contains(ev.SQL, "GROUP BY time.year") ||
		len(ev.Tables) != 2 || len(ev.GroupBy) != 1 {
		t.Fatalf("ad-hoc query event wrong: %+v", ev)
	}
	if ev := events[2]; ev.Kind != "delta" || ev.Table != "sale" || ev.Rows != 1 {
		t.Fatalf("delta event wrong: %+v", ev)
	}
	for _, ev := range events {
		if ev.Ns <= 0 {
			t.Fatalf("event missing latency: %+v", ev)
		}
	}
}
