package warehouse

import (
	"strings"
	"sync"
	"testing"

	"mindetail/internal/maintain"
	"mindetail/internal/tuple"
	"mindetail/internal/types"
)

// saleDelta builds an insert-only sale delta of n rows starting at key
// base. Prices are multiples of 0.25, so aggregation is exact and the
// final state is independent of the order concurrent submitters win.
func saleDelta(base, n int) maintain.Delta {
	d := maintain.Delta{Table: "sale"}
	for i := 0; i < n; i++ {
		id := base + i
		d.Inserts = append(d.Inserts, tuple.Tuple{
			types.Int(int64(id)), types.Int(int64(id%3 + 1)), types.Int(int64(100 + id%2)),
			types.Int(7), types.Float(float64(id%16) * 0.25),
		})
	}
	return d
}

// viewTotals reads (SUM, COUNT) per month from the materialized view.
func viewTotals(t *testing.T, w *Warehouse) string {
	t.Helper()
	rel, err := w.Query("product_sales")
	if err != nil {
		t.Fatal(err)
	}
	return rel.Sorted().Format()
}

// TestApplyDeltaBatchMatchesSerial applies the same delta sequence through
// ApplyDeltaBatch (coalescing active) and through one-by-one ApplyDelta and
// requires identical view contents. The batch mixes insert-only runs (which
// coalesce), a delete-carrying delta (which must not), and interleaved
// tables (which break runs).
func TestApplyDeltaBatchMatchesSerial(t *testing.T) {
	mkBatch := func() []maintain.Delta {
		return []maintain.Delta{
			saleDelta(1000, 4),
			saleDelta(1004, 4), // coalesces with the previous delta
			{Table: "time", Inserts: []tuple.Tuple{
				{types.Int(50), types.Int(1), types.Int(3), types.Int(1997)},
			}}, // different table: breaks the run
			saleDelta(1008, 4),
			{Table: "sale", Deletes: []tuple.Tuple{saleDelta(1000, 1).Inserts[0]}}, // mixed: never coalesces
			saleDelta(1012, 4),
		}
	}

	serial := newRetail(t)
	for i, d := range mkBatch() {
		if err := serial.ApplyDelta(d); err != nil {
			t.Fatalf("serial delta %d: %v", i, err)
		}
	}

	batched := newRetail(t)
	for i, err := range batched.ApplyDeltaBatch(mkBatch()) {
		if err != nil {
			t.Fatalf("batched delta %d: %v", i, err)
		}
	}

	if got, want := viewTotals(t, batched), viewTotals(t, serial); got != want {
		t.Fatalf("batched view diverged from serial\nbatched:\n%s\nserial:\n%s", got, want)
	}
	// The three adjacent insert-only sale deltas at the head coalesced.
	if n := batched.MetricsSnapshot().Counters["warehouse.batch.coalesced"]; n != 2 {
		t.Fatalf("coalesced deltas = %d, want 2", n)
	}
}

// TestApplyDeltaBatchErrorIsolation puts a bad delta in the middle of a
// batch: it alone fails, its neighbors commit, and the error slice is
// index-aligned.
func TestApplyDeltaBatchErrorIsolation(t *testing.T) {
	w := newRetail(t)
	errs := w.ApplyDeltaBatch([]maintain.Delta{
		saleDelta(2000, 2),
		{Table: "nosuch", Inserts: saleDelta(0, 1).Inserts},
		saleDelta(2002, 2),
	})
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("good deltas failed: %v / %v", errs[0], errs[2])
	}
	if errs[1] == nil || !strings.Contains(errs[1].Error(), "unknown table") {
		t.Fatalf("bad delta error = %v", errs[1])
	}
	// Exactly the good deltas landed.
	oracle := newRetail(t)
	for _, d := range []maintain.Delta{saleDelta(2000, 2), saleDelta(2002, 2)} {
		if err := oracle.ApplyDelta(d); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := viewTotals(t, w), viewTotals(t, oracle); got != want {
		t.Fatalf("batch with failure diverged from oracle\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestApplyDeltaBatchEmpty covers the trivial cases.
func TestApplyDeltaBatchEmpty(t *testing.T) {
	w := newRetail(t)
	if errs := w.ApplyDeltaBatch(nil); len(errs) != 0 {
		t.Fatalf("empty batch returned %d errors", len(errs))
	}
}

// TestPipelineConcurrentSubmit hammers a pipeline with concurrent
// submitters and checks the warehouse lands on the brute-force recomputed
// state — every delta applied exactly once, none lost or doubled — and
// that coalescing actually engaged.
func TestPipelineConcurrentSubmit(t *testing.T) {
	w := newRetail(t)
	p := NewPipeline(w, 8)

	const submitters = 8
	const perSubmitter = 10
	var wg sync.WaitGroup
	errCh := make(chan error, submitters*perSubmitter)
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				errCh <- p.Submit(saleDelta(3000+s*100+i*3, 3))
			}
		}(s)
	}
	wg.Wait()
	p.Close()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Submission order across goroutines is nondeterministic, but every
	// delta inserts distinct keys with exact quarter prices, so the final
	// aggregate is order-independent: a serial oracle applying the same
	// deltas in any order must land on the same view.
	oracle := newRetail(t)
	for s := 0; s < submitters; s++ {
		for i := 0; i < perSubmitter; i++ {
			if err := oracle.ApplyDelta(saleDelta(3000+s*100+i*3, 3)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got, want := viewTotals(t, w), viewTotals(t, oracle); got != want {
		t.Fatalf("pipelined view diverged from serial oracle\ngot:\n%s\nwant:\n%s", got, want)
	}

	snap := w.MetricsSnapshot()
	if snap.Counters["warehouse.batch.deltas"] != submitters*perSubmitter {
		t.Fatalf("batch.deltas = %d, want %d", snap.Counters["warehouse.batch.deltas"], submitters*perSubmitter)
	}
	if err := p.Submit(saleDelta(0, 1)); err != ErrPipelineClosed {
		t.Fatalf("Submit after Close = %v, want ErrPipelineClosed", err)
	}
	p.Close() // idempotent
}

// TestPipelineErrorPropagation verifies each submitter gets its own
// delta's outcome even when batched with failures.
func TestPipelineErrorPropagation(t *testing.T) {
	w := newRetail(t)
	p := NewPipeline(w, 4)
	defer p.Close()
	if err := p.Submit(maintain.Delta{Table: "nosuch"}); err == nil {
		t.Fatal("unknown-table Submit succeeded")
	}
	if err := p.Submit(saleDelta(4000, 2)); err != nil {
		t.Fatal(err)
	}
}

// TestSetEngineShards checks the shard fan-out reaches existing and
// future view engines and that a sharded warehouse still verifies.
func TestSetEngineShards(t *testing.T) {
	w := newRetail(t)
	w.SetEngineShards(4)
	if got := w.View("product_sales").Engine.Shards; got != 4 {
		t.Fatalf("existing engine shards = %d, want 4", got)
	}
	if _, err := w.Exec(`CREATE MATERIALIZED VIEW by_store AS
		SELECT store.city, COUNT(*) AS cnt FROM sale, store
		WHERE sale.storeid = store.id GROUP BY store.city`); err != nil {
		t.Fatal(err)
	}
	if got := w.View("by_store").Engine.Shards; got != 4 {
		t.Fatalf("new engine shards = %d, want 4", got)
	}
	w.View("product_sales").Engine.ShardMinRows = 1
	w.View("by_store").Engine.ShardMinRows = 1
	for i, err := range w.ApplyDeltaBatch([]maintain.Delta{saleDelta(5000, 64), saleDelta(5064, 64)}) {
		if err != nil {
			t.Fatalf("sharded batch delta %d: %v", i, err)
		}
	}
	// The sharded warehouse must match an unsharded one fed the same rows.
	oracle := newRetail(t)
	if err := oracle.ApplyDelta(saleDelta(5000, 128)); err != nil {
		t.Fatal(err)
	}
	if got, want := viewTotals(t, w), viewTotals(t, oracle); got != want {
		t.Fatalf("sharded batch diverged from unsharded oracle\ngot:\n%s\nwant:\n%s", got, want)
	}
}
