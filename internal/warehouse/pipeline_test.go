package warehouse

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPipelineSubmitCloseFullChannel reproduces the serve-path stall: a
// depth-1 pipeline whose reqs channel is permanently full while many
// submitters pound it. Submit used to hold the pipeline mutex across the
// channel send, so blocked submitters serialized on the lock and Close
// queued behind all of them. Now the send happens outside the critical
// section: Close must return promptly (after answering every admitted
// Submit), every Submit must resolve to nil or ErrPipelineClosed, and
// every nil-acked delta must actually have reached ApplyDeltaBatch.
func TestPipelineSubmitCloseFullChannel(t *testing.T) {
	w := newRetail(t)
	p := NewPipeline(w, 1) // capacity-1 channel: full under any concurrency

	const submitters = 16
	const perSubmitter = 8
	var accepted atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			<-start
			for i := 0; i < perSubmitter; i++ {
				err := p.Submit(saleDelta(20000+(s*perSubmitter+i)*2, 2))
				switch err {
				case nil:
					accepted.Add(1)
				case ErrPipelineClosed:
				default:
					t.Errorf("Submit: %v", err)
				}
			}
		}(s)
	}
	close(start)
	time.Sleep(2 * time.Millisecond) // let the channel fill and submitters block

	closed := make(chan struct{})
	go func() {
		p.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(30 * time.Second):
		t.Fatal("Close stalled behind blocked submitters")
	}
	wg.Wait()

	// Post-close Submits are rejected, and the accounting closes: exactly
	// the nil-acked deltas were handed to ApplyDeltaBatch (none lost while
	// parked in the channel, none applied without an ack).
	if err := p.Submit(saleDelta(0, 1)); err != ErrPipelineClosed {
		t.Fatalf("Submit after Close = %v, want ErrPipelineClosed", err)
	}
	snap := w.MetricsSnapshot()
	if got, want := snap.Counters["warehouse.batch.deltas"], accepted.Load(); got != want {
		t.Fatalf("batch.deltas = %d, want %d (accepted submits)", got, want)
	}
	p.Close() // idempotent
}

// TestPipelineSubmitsDoNotSerializeOnMutex checks that a submitter blocked
// on a full channel does not hold the pipeline lock: with one Submit
// parked, another goroutine must still get an ErrPipelineClosed answer
// after Close — under the old send-under-mutex code this scenario could
// wedge Close behind the channel send.
func TestPipelineSubmitsDoNotSerializeOnMutex(t *testing.T) {
	w := newRetail(t)
	p := NewPipeline(w, 1)

	// Park several submitters: the drainer consumes one request at a time,
	// so with a capacity-1 channel some senders stay blocked in the send.
	const parked = 8
	errs := make(chan error, parked)
	for i := 0; i < parked; i++ {
		go func(i int) {
			errs <- p.Submit(saleDelta(40000+i*2, 2))
		}(i)
	}
	time.Sleep(2 * time.Millisecond)

	done := make(chan struct{})
	go func() {
		p.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Close wedged behind a parked Submit")
	}
	for i := 0; i < parked; i++ {
		if err := <-errs; err != nil && err != ErrPipelineClosed {
			t.Fatal(err)
		}
	}
}
