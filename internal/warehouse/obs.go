package warehouse

import (
	"mindetail/internal/maintain"
	"mindetail/internal/obs"
)

// wmetrics is the warehouse-level observability surface. Every warehouse
// owns a registry from birth; the counters and gauges below are always-on
// (an observation is one atomic add — cheap enough for the lock-free Query
// fast path), while the time-based instrumentation (propagate latency, the
// engines' per-stage histograms and traces) is toggled by SetObs: with
// observability off the engines carry a nil Metrics sink and the warehouse
// skips its clock reads, restoring the pre-instrumentation hot path.
type wmetrics struct {
	reg *obs.Registry

	// engineMet is the maintenance sink shared by every view engine of this
	// warehouse (set to each engine at creation, detached by SetObs(false)).
	engineMet *maintain.Metrics

	propagateNs *obs.Histogram // warehouse.propagate.ns: end-to-end latency
	poolOcc     *obs.Gauge     // warehouse.propagate.pool_occupancy

	propagates    *obs.Counter // warehouse.propagates (committed)
	propagateErrs *obs.Counter // warehouse.propagate.errors (rolled back)

	viewsStaged     *obs.Counter // warehouse.views.staged
	viewsCommitted  *obs.Counter // warehouse.views.committed
	viewsRolledBack *obs.Counter // warehouse.views.rolled_back

	snapInvalidated *obs.Counter // warehouse.snapshots.invalidated
	snapPublished   *obs.Counter // warehouse.snapshots.published

	queryHits     *obs.Counter // warehouse.query.snapshot_hits (lock-free)
	queryRebuilds *obs.Counter // warehouse.query.snapshot_rebuilds
	queryLocked   *obs.Counter // warehouse.query.locked (slow path / DisableSnapshots)

	batchSize      *obs.Histogram // warehouse.batch.size (deltas per ApplyDeltaBatch)
	batchDeltas    *obs.Counter   // warehouse.batch.deltas (deltas through the batch path)
	batchCoalesced *obs.Counter   // warehouse.batch.coalesced (deltas propagated via a coalesced group)

	backfillsStarted   *obs.Counter // warehouse.backfills.started
	backfillsInstalled *obs.Counter // warehouse.backfills.installed
	backfillsAborted   *obs.Counter // warehouse.backfills.aborted
	backfillCatchUp    *obs.Counter // warehouse.backfills.catchup_deltas
	backfillActive     *obs.Gauge   // warehouse.backfills.active
	viewsDropped       *obs.Counter // warehouse.views.dropped
}

func newWMetrics() *wmetrics {
	reg := obs.NewRegistry()
	return &wmetrics{
		reg:             reg,
		engineMet:       maintain.NewMetrics(reg),
		propagateNs:     reg.Histogram("warehouse.propagate.ns"),
		poolOcc:         reg.Gauge("warehouse.propagate.pool_occupancy"),
		propagates:      reg.Counter("warehouse.propagates"),
		propagateErrs:   reg.Counter("warehouse.propagate.errors"),
		viewsStaged:     reg.Counter("warehouse.views.staged"),
		viewsCommitted:  reg.Counter("warehouse.views.committed"),
		viewsRolledBack: reg.Counter("warehouse.views.rolled_back"),
		snapInvalidated: reg.Counter("warehouse.snapshots.invalidated"),
		snapPublished:   reg.Counter("warehouse.snapshots.published"),
		queryHits:       reg.Counter("warehouse.query.snapshot_hits"),
		queryRebuilds:   reg.Counter("warehouse.query.snapshot_rebuilds"),
		queryLocked:     reg.Counter("warehouse.query.locked"),
		batchSize:       reg.Histogram("warehouse.batch.size"),
		batchDeltas:     reg.Counter("warehouse.batch.deltas"),
		batchCoalesced:  reg.Counter("warehouse.batch.coalesced"),

		backfillsStarted:   reg.Counter("warehouse.backfills.started"),
		backfillsInstalled: reg.Counter("warehouse.backfills.installed"),
		backfillsAborted:   reg.Counter("warehouse.backfills.aborted"),
		backfillCatchUp:    reg.Counter("warehouse.backfills.catchup_deltas"),
		backfillActive:     reg.Gauge("warehouse.backfills.active"),
		viewsDropped:       reg.Counter("warehouse.views.dropped"),
	}
}

// ObsRegistry returns the warehouse's metric registry. It is live: metrics
// keep updating as the warehouse works, and snapshotting it at any moment
// is race-clean.
func (w *Warehouse) ObsRegistry() *obs.Registry { return w.met.reg }

// MetricsSnapshot captures every warehouse and maintenance metric at one
// moment (each metric internally consistent; the set not a single cut).
func (w *Warehouse) MetricsSnapshot() obs.Snapshot { return w.met.reg.Snapshot() }

// SetObs enables or disables time-based instrumentation: per-stage
// histograms, apply traces, journal-depth and latency histograms on every
// view engine, plus the warehouse's propagate-latency clock. Counters and
// gauges stay on either way (they are single atomic adds). Observability is
// ON by default; benchmarks disable it to measure the instrumentation-free
// baseline.
func (w *Warehouse) SetObs(enabled bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.obsTimingOff = !enabled
	sink := w.met.engineMet
	if !enabled {
		sink = nil
	}
	for _, name := range w.order {
		w.views[name].Engine.SetMetrics(sink)
	}
}
