// Package warehouse is the facade tying the system together, mirroring the
// paper's Figure 1: operational data sources feed a warehouse that holds
// summarized data (materialized GPSJ views) over minimal current detail
// data (the derived auxiliary views). The SQL front-end drives everything:
// CREATE TABLE defines sources, CREATE MATERIALIZED VIEW derives and
// initializes a self-maintainable view, and INSERT/DELETE/UPDATE apply
// source changes that propagate to every view.
//
// After DetachSources, the sources are physically unreachable (any access
// panics) and changes arrive as explicit deltas — the self-maintainability
// scenario that motivates the paper.
package warehouse

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
	"unicode/utf8"

	"mindetail/internal/answer"
	"mindetail/internal/csvload"

	"mindetail/internal/core"
	"mindetail/internal/faultinject"
	"mindetail/internal/gpsj"
	"mindetail/internal/maintain"
	"mindetail/internal/ra"
	"mindetail/internal/schema"
	"mindetail/internal/sqlparse"
	"mindetail/internal/storage"
	"mindetail/internal/tuple"
	"mindetail/internal/types"
)

// View is one materialized GPSJ view with its maintenance engine.
type View struct {
	Def    *gpsj.View
	Plan   *core.Plan
	Engine *maintain.Engine

	// ver counts committed deltas that touched this view; snap caches the
	// last user-facing relation together with the version it was built at.
	// Together they give Query a lock-free fast path: a cached snapshot
	// whose version still matches is immutable published state — readers
	// see the pre-delta relation while a propagation is in flight and the
	// post-delta one after it commits, never a torn intermediate.
	ver  atomic.Uint64
	snap atomic.Pointer[viewSnap]
}

// viewSnap is one immutable published snapshot of a view's contents.
type viewSnap struct {
	ver uint64
	rel *ra.Relation
}

// ChangeLog is the warehouse's write-ahead log surface (implemented by
// internal/wal.Log). Intents are appended — and made durable — before the
// transactional apply; outcomes are recorded after. The interface lives
// here so the warehouse stays free of any dependency on the log's on-disk
// format.
type ChangeLog interface {
	// BeginDelta durably records the intent to apply d (srcApplied marks
	// deltas that also mutate the source tables) and returns its LSN.
	BeginDelta(d maintain.Delta, srcApplied bool) (uint64, error)
	// BeginDDL durably records the intent to execute a DDL statement.
	BeginDDL(sql string) (uint64, error)
	// Commit records that the intent with the given LSN applied; this is
	// the mutation's durability point.
	Commit(lsn uint64) error
	// Abort records that the intent with the given LSN rolled back.
	Abort(lsn uint64) error
}

// Warehouse owns the catalog, the (detachable) sources, and the
// materialized views. All methods are safe for concurrent use: reads
// (Query, Report, ViewNames) proceed concurrently while writes (Exec DML,
// ApplyDelta, ImportCSV) serialize.
type Warehouse struct {
	mu       sync.RWMutex
	cat      *schema.Catalog
	src      *storage.DB
	views    map[string]*View
	order    []string
	detached bool
	fi       *faultinject.Hook

	// pending holds the online CREATE MATERIALIZED VIEW backfills in
	// flight, keyed by view name; propagate appends every committed delta
	// to their catch-up buffers (see backfill.go). Guarded by mu.
	pending map[string]*backfillState

	// backfillHook, when set, observes backfill stage transitions off-lock
	// (tests only; see SetBackfillHook).
	backfillHook atomic.Pointer[func(view, stage string)]

	// auxFactory, when set, supplies out-of-core auxiliary stores per
	// (view, table) — see SetAuxStoreFactory.
	auxFactory func(view, table string) (maintain.AuxStore, error)

	// wal, when set, receives every mutation before it is applied; lsn is
	// the LSN of the last committed mutation (restored from snapshots,
	// advanced on every commit), readable lock-free via LSN().
	wal ChangeLog
	lsn atomic.Uint64

	// viewIdx is a copy-on-write index of views, republished (under mu)
	// whenever a view is added, so Query can locate a view without taking
	// any lock.
	viewIdx atomic.Pointer[map[string]*View]

	// epoch counts committed propagations. Engines record the epoch they
	// were created at in their memo scope: only views initialized from the
	// same source state may share memoized per-delta work (equal SQL after
	// different histories could differ in float accumulation order).
	epoch uint64

	// UseNeedSets configures engines created by subsequent CREATE VIEW
	// statements (Need-set-restricted delta joins, on by default).
	UseNeedSets bool

	// AppendOnly derives subsequent views under the Section 4 relaxation:
	// the sources only ever receive insertions, MIN/MAX compress into the
	// auxiliary views, and deletions/updates are rejected.
	AppendOnly bool

	// PropagateWorkers bounds the number of view engines staging one delta
	// concurrently; 0 means GOMAXPROCS, 1 forces the serial path. Commit
	// and rollback remain serial in view order either way.
	PropagateWorkers int

	// DisableMemo turns off cross-view work sharing through the per-delta
	// DeltaMemo — the verification/baseline configuration.
	DisableMemo bool

	// engineShards is the shard fan-out applied to every view engine (see
	// maintain.Engine.Shards); set through SetEngineShards, read under mu.
	engineShards int

	// DisableSnapshots makes Query bypass the copy-on-write snapshot cache
	// and rebuild the result under the read lock on every call (the
	// pre-snapshot behavior, kept as a baseline and for callers that want
	// a private mutable relation).
	DisableSnapshots bool

	// met is the observability surface (never nil); obsTimingOff suppresses
	// the time-based instrumentation (see SetObs). The flag is read only
	// under mu (propagate runs under the write lock).
	met          *wmetrics
	obsTimingOff bool

	// chooser, when set, picks the maintenance strategy for each propagated
	// delta (see maintain.StrategyChooser). One decision per delta covers
	// every view engine — replica engines must never be split across
	// recomputation paths with different float accumulation orders.
	chooser maintain.StrategyChooser

	// opLog, when set, receives one OpEvent per answered query and per
	// committed delta — the workload log the view-selection advisor mines.
	// The hook must be safe for concurrent calls (queries run under the
	// read lock). Set under mu; read under either lock mode.
	opLog func(OpEvent)
}

// OpEvent is one entry of the warehouse's operation log: a query (answered
// by a materialized view or evaluated ad hoc) or a committed delta. The
// advisor clusters these to rank candidate views; the fields are plain so
// other tools can consume them too.
type OpEvent struct {
	Kind    string   // "query-view", "query-adhoc", or "delta"
	View    string   // view that answered a query (query-view only)
	SQL     string   // statement text (queries only)
	Tables  []string // FROM tables (queries only)
	GroupBy []string // grouping columns (query-adhoc only)
	Table   string   // base table (delta only)
	Rows    int      // delta row weight (delta only)
	Ns      int64    // observed latency
}

// SetOpLog installs (nil removes) the operation-log hook.
func (w *Warehouse) SetOpLog(f func(OpEvent)) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.opLog = f
}

// SetStrategyChooser installs (nil removes) a cost-based strategy chooser
// consulted once per propagated delta.
func (w *Warehouse) SetStrategyChooser(c maintain.StrategyChooser) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.chooser = c
}

// New creates an empty warehouse. Observability is on by default; see
// SetObs and ObsRegistry.
func New() *Warehouse {
	cat := schema.NewCatalog()
	return &Warehouse{
		cat:         cat,
		src:         storage.NewDB(cat),
		views:       make(map[string]*View),
		pending:     make(map[string]*backfillState),
		UseNeedSets: true,
		met:         newWMetrics(),
	}
}

// Catalog returns the warehouse catalog.
func (w *Warehouse) Catalog() *schema.Catalog { return w.cat }

// Source returns the operational source database. It panics after
// DetachSources.
func (w *Warehouse) Source() *storage.DB { return w.src }

// View returns a materialized view by name, or nil.
func (w *Warehouse) View(name string) *View {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.views[name]
}

// ViewNames lists the materialized views in creation order.
func (w *Warehouse) ViewNames() []string {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return append([]string(nil), w.order...)
}

// DetachSources severs the operational sources: any later access to them
// panics, INSERT/DELETE/UPDATE statements fail, and changes must arrive via
// ApplyDelta — proving the views are self-maintainable.
func (w *Warehouse) DetachSources() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.detached = true
	w.src.Detach()
}

// Detached reports whether the sources are severed.
func (w *Warehouse) Detached() bool {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.detached
}

// SetWAL installs (nil removes) a write-ahead log: every subsequent
// mutation is logged as a durable intent before it is applied, and its
// outcome recorded after.
func (w *Warehouse) SetWAL(l ChangeLog) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.wal = l
}

// SetAuxStoreFactory installs (nil removes) an out-of-core backend for the
// auxiliary views: every view engine's auxiliary tables move onto stores
// produced by the factory (keyed by view and base-table name), existing
// rows migrating in place. Subsequently created or restored views get
// their stores at creation, before initialization. The in-memory
// materialized views themselves are untouched — only the auxiliary detail,
// which the paper sizes as the dominant cost (Section 1.1), is paged.
func (w *Warehouse) SetAuxStoreFactory(f func(view, table string) (maintain.AuxStore, error)) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.auxFactory = f
	if f == nil {
		return nil
	}
	for _, name := range w.order {
		if err := w.views[name].Engine.SetAuxStores(w.adaptFactory(name)); err != nil {
			return err
		}
	}
	return nil
}

// adaptFactory curries the warehouse factory down to the per-engine shape.
// Callers hold w.mu.
func (w *Warehouse) adaptFactory(view string) func(string) (maintain.AuxStore, error) {
	f := w.auxFactory
	return func(table string) (maintain.AuxStore, error) { return f(view, table) }
}

// Close releases per-view resources — the out-of-core auxiliary stores,
// when a factory is installed. The warehouse itself stays queryable; a
// closed store rejects further maintenance.
func (w *Warehouse) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	var first error
	for _, name := range w.order {
		if err := w.views[name].Engine.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// LSN returns the log sequence number of the last committed mutation
// (0 when nothing was ever logged). It is lock-free.
func (w *Warehouse) LSN() uint64 { return w.lsn.Load() }

// SetLSN seeds the committed LSN — the snapshot-restore path
// (internal/persist); replay then skips every logged mutation at or below
// it.
func (w *Warehouse) SetLSN(n uint64) { w.lsn.Store(n) }

// SetFaultHook installs (nil removes) a fault-injection hook on the
// warehouse and every view engine. Tests only.
func (w *Warehouse) SetFaultHook(h *faultinject.Hook) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.fi = h
	for _, name := range w.order {
		w.views[name].Engine.SetFaultHook(h)
	}
}

// Exec parses and executes a script of semicolon-separated SQL statements,
// returning the relation produced by the final statement when it is a
// SELECT (nil otherwise).
//
// Atomicity is per statement, not per script: every individual statement
// either applies fully (sources and all views) or leaves the warehouse
// unchanged, but a script that fails at statement k keeps the effects of
// statements 1..k-1. Locking is per statement too: an all-SELECT script
// holds the shared lock throughout (overlapping with other readers), while
// a script containing DDL or DML locks statement by statement — which is
// what lets CREATE MATERIALIZED VIEW run its backfill scan off-lock (see
// backfill.go) without stalling concurrent Query or ApplyDelta traffic.
// Errors identify the failing statement by its 1-based position and an
// abbreviated SQL fragment.
func (w *Warehouse) Exec(sql string) (*ra.Relation, error) {
	stmts, err := sqlparse.ParseScript(sql)
	if err != nil {
		return nil, err
	}
	// Classify the script before locking: an all-SELECT script only reads,
	// so it runs under the shared lock and overlaps with other readers —
	// taking the exclusive lock here used to serialize every remote query
	// behind every other, defeating the copy-on-write snapshot path the
	// reads were built on.
	if allSelect(stmts) {
		w.mu.RLock()
		defer w.mu.RUnlock()
		var last *ra.Relation
		for _, s := range stmts {
			last, err = w.query(s.Stmt.(*sqlparse.SelectStmt), s.SQL)
			if err != nil {
				return nil, execStmtErr(len(stmts), s, err)
			}
		}
		return last, nil
	}
	var last *ra.Relation
	for _, s := range stmts {
		last = nil
		switch st := s.Stmt.(type) {
		case *sqlparse.CreateTable:
			w.mu.Lock()
			err = w.createTable(st, s.SQL)
			w.mu.Unlock()
		case *sqlparse.CreateView:
			// The online path manages its own locking: short critical
			// sections around snapshot and install, the scan off-lock.
			err = w.createViewOnline(st, s.SQL)
		case *sqlparse.DropView:
			err = w.dropView(st, s.SQL)
		case *sqlparse.SelectStmt:
			w.mu.RLock()
			last, err = w.query(st, s.SQL)
			w.mu.RUnlock()
		case *sqlparse.Insert:
			w.mu.Lock()
			err = w.insert(st)
			w.mu.Unlock()
		case *sqlparse.Delete:
			w.mu.Lock()
			err = w.delete(st)
			w.mu.Unlock()
		case *sqlparse.Update:
			w.mu.Lock()
			err = w.update(st)
			w.mu.Unlock()
		default:
			err = fmt.Errorf("warehouse: unsupported statement %T", s.Stmt)
		}
		if err != nil {
			return nil, execStmtErr(len(stmts), s, err)
		}
	}
	return last, nil
}

// execStmtErr attributes a mid-script failure to its statement; a
// single-statement script surfaces the error undecorated.
func execStmtErr(n int, s sqlparse.ScriptStatement, err error) error {
	if n > 1 {
		return fmt.Errorf("warehouse: statement %d (%s): %w", s.Index+1, abbrevSQL(s.SQL), err)
	}
	return err
}

// allSelect reports whether every statement of a parsed script is a
// SELECT — the read-only classification Exec uses to pick the shared lock.
func allSelect(stmts []sqlparse.ScriptStatement) bool {
	for _, s := range stmts {
		if _, ok := s.Stmt.(*sqlparse.SelectStmt); !ok {
			return false
		}
	}
	return true
}

// abbrevSQL shortens a SQL fragment for error messages. The cut is backed
// off to a rune boundary so multi-byte characters (string literals in any
// language, quoted identifiers) are never split into invalid UTF-8.
func abbrevSQL(sql string) string {
	sql = strings.Join(strings.Fields(sql), " ")
	const max = 60
	if len(sql) <= max {
		return sql
	}
	cut := max - 3
	for cut > 0 && !utf8.RuneStart(sql[cut]) {
		cut--
	}
	return sql[:cut] + "..."
}

// MustExec is Exec for statements that must succeed (setup scripts).
func (w *Warehouse) MustExec(sql string) *ra.Relation {
	rel, err := w.Exec(sql)
	if err != nil {
		panic(err)
	}
	return rel
}

// beginDDL write-ahead-logs a DDL intent. logSQL == "" (the replay path)
// or a warehouse without a WAL log nothing; logged reports whether an
// outcome must be recorded.
func (w *Warehouse) beginDDL(logSQL string) (lsn uint64, logged bool, err error) {
	if w.wal == nil || logSQL == "" {
		return 0, false, nil
	}
	lsn, err = w.wal.BeginDDL(logSQL)
	if err != nil {
		return 0, false, fmt.Errorf("warehouse: wal append: %w", err)
	}
	return lsn, true, nil
}

// finishDDL records the outcome of a logged DDL intent and advances the
// committed LSN. A commit-record write failure is surfaced: the statement
// applied in memory but is not durable.
func (w *Warehouse) finishDDL(lsn uint64, logged bool, applyErr error) error {
	if !logged {
		return applyErr
	}
	if applyErr != nil {
		_ = w.wal.Abort(lsn)
		return applyErr
	}
	if err := w.wal.Commit(lsn); err != nil {
		return fmt.Errorf("warehouse: DDL applied in memory but WAL commit failed (not durable): %w", err)
	}
	w.lsn.Store(lsn)
	return nil
}

func (w *Warehouse) createTable(st *sqlparse.CreateTable, logSQL string) error {
	if w.detached {
		return fmt.Errorf("warehouse: sources are detached")
	}
	lsn, logged, err := w.beginDDL(logSQL)
	if err != nil {
		return err
	}
	return w.finishDDL(lsn, logged, w.applyCreateTable(st))
}

func (w *Warehouse) applyCreateTable(st *sqlparse.CreateTable) error {
	if err := w.cat.AddTable(st.Table); err != nil {
		return err
	}
	for _, fk := range st.FKs {
		if err := w.cat.AddForeignKey(fk); err != nil {
			return err
		}
	}
	w.src.Sync()
	return nil
}

func (w *Warehouse) createView(st *sqlparse.CreateView, logSQL string) error {
	if w.detached {
		return fmt.Errorf("warehouse: sources are detached; views must be created before detaching")
	}
	lsn, logged, err := w.beginDDL(logSQL)
	if err != nil {
		return err
	}
	return w.finishDDL(lsn, logged, w.applyCreateView(st))
}

func (w *Warehouse) applyCreateView(st *sqlparse.CreateView) error {
	if _, dup := w.views[st.Name]; dup {
		return fmt.Errorf("warehouse: view %s already exists", st.Name)
	}
	if _, busy := w.pending[st.Name]; busy {
		return fmt.Errorf("warehouse: view %s backfill already in progress", st.Name)
	}
	v, err := gpsj.FromSelect(w.cat, st.Name, st.Query)
	if err != nil {
		return err
	}
	var plan *core.Plan
	if w.AppendOnly {
		plan, err = core.DeriveAppendOnly(v)
	} else {
		plan, err = core.Derive(v)
	}
	if err != nil {
		return err
	}
	eng, err := maintain.NewEngine(plan)
	if err != nil {
		return err
	}
	eng.UseNeedSets = w.UseNeedSets
	eng.Shards = w.engineShards
	if !w.obsTimingOff {
		eng.SetMetrics(w.met.engineMet)
	}
	// Views created at the same epoch are initialized from the same source
	// state, so equal-fingerprint engines are bit-identical replicas and may
	// share per-delta memoized work; later-created views get a later epoch.
	eng.SetMemoScope(fmt.Sprintf("epoch%d", w.epoch))
	if w.auxFactory != nil {
		if err := eng.SetAuxStores(w.adaptFactory(st.Name)); err != nil {
			return err
		}
	}
	if err := eng.Init(w.srcRel); err != nil {
		return err
	}
	w.views[st.Name] = &View{Def: v, Plan: plan, Engine: eng}
	w.order = append(w.order, st.Name)
	w.publishViewIndex()
	return nil
}

// publishViewIndex republishes the copy-on-write view index. Callers hold
// w.mu.
func (w *Warehouse) publishViewIndex() {
	idx := make(map[string]*View, len(w.views))
	for n, v := range w.views {
		idx[n] = v
	}
	w.viewIdx.Store(&idx)
}

func (w *Warehouse) srcRel(table string) *ra.Relation {
	return ra.FromTable(w.src.Table(table), table)
}

// RestoreView re-creates a materialized view from a persisted state
// snapshot instead of initializing it from the sources — the restart path
// (see internal/persist). The view definition is re-derived (append-only
// when the snapshot says so) and the engine's auxiliary tables and
// component rows are loaded directly.
func (w *Warehouse) RestoreView(name, selectSQL string, appendOnly bool, st *maintain.State) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, dup := w.views[name]; dup {
		return fmt.Errorf("warehouse: view %s already exists", name)
	}
	s, err := sqlparse.Parse(selectSQL)
	if err != nil {
		return err
	}
	sel, ok := s.(*sqlparse.SelectStmt)
	if !ok {
		return fmt.Errorf("warehouse: view %s definition is not a SELECT", name)
	}
	v, err := gpsj.FromSelect(w.cat, name, sel)
	if err != nil {
		return err
	}
	var plan *core.Plan
	if appendOnly {
		plan, err = core.DeriveAppendOnly(v)
	} else {
		plan, err = core.Derive(v)
	}
	if err != nil {
		return err
	}
	eng, err := maintain.NewEngine(plan)
	if err != nil {
		return err
	}
	eng.UseNeedSets = w.UseNeedSets
	eng.Shards = w.engineShards
	if !w.obsTimingOff {
		eng.SetMetrics(w.met.engineMet)
	}
	// A restored engine's state comes from a snapshot with an unknown
	// history, so it must never share memoized work: give it a scope of its
	// own (view names are unique within a warehouse).
	eng.SetMemoScope("restored:" + name)
	if w.auxFactory != nil {
		if err := eng.SetAuxStores(w.adaptFactory(name)); err != nil {
			return err
		}
	}
	if err := eng.ImportState(st); err != nil {
		return err
	}
	w.views[name] = &View{Def: v, Plan: plan, Engine: eng}
	w.order = append(w.order, name)
	w.publishViewIndex()
	return nil
}

// query answers an ad hoc SELECT: against a materialized view when the
// FROM clause names one, otherwise by direct evaluation over the sources.
// sql is the statement text, recorded in the op log for the advisor.
func (w *Warehouse) query(st *sqlparse.SelectStmt, sql string) (rel *ra.Relation, err error) {
	var start time.Time
	if w.opLog != nil {
		start = time.Now()
	}
	if len(st.From) == 1 {
		if mv := w.views[st.From[0]]; mv != nil {
			// Only full-view reads are supported against materialized
			// views; richer queries would re-aggregate.
			if len(st.Where) > 0 || len(st.GroupBy) > 0 {
				return nil, fmt.Errorf("warehouse: only plain SELECT over a materialized view is supported")
			}
			rel, err := mv.Def.ApplyHaving(mv.Engine.Snapshot())
			if err == nil && w.opLog != nil {
				w.opLog(OpEvent{Kind: "query-view", View: st.From[0], SQL: sql,
					Tables: append([]string(nil), st.From...),
					Ns:     time.Since(start).Nanoseconds()})
			}
			return rel, err
		}
	}
	v, err := gpsj.FromSelect(w.cat, "adhoc", st)
	if err != nil {
		return nil, err
	}
	defer func() {
		if err == nil && w.opLog != nil {
			groupBy := make([]string, 0, len(st.GroupBy))
			for _, g := range st.GroupBy {
				groupBy = append(groupBy, g.String())
			}
			w.opLog(OpEvent{Kind: "query-adhoc", SQL: sql,
				Tables:  append([]string(nil), st.From...),
				GroupBy: groupBy,
				Ns:      time.Since(start).Nanoseconds()})
		}
	}()
	if w.detached {
		// The sources are gone, but an aggregate navigator can still
		// answer the query from a materialized view's auxiliary detail
		// when one covers it (internal/answer).
		var reasons []string
		for _, name := range w.order {
			mv := w.views[name]
			if ok, why := answer.Answerable(mv.Plan, v); !ok {
				reasons = append(reasons, fmt.Sprintf("%s: %s", name, why))
				continue
			}
			aux := make(map[string]*ra.Relation)
			for _, t := range mv.Def.Tables {
				if at := mv.Engine.Aux(t); at != nil {
					aux[t] = at.Relation()
				}
			}
			return answer.Answer(mv.Plan, v, aux)
		}
		return nil, fmt.Errorf("warehouse: sources are detached and no materialized view's detail covers this query (%s)",
			strings.Join(reasons, "; "))
	}
	return v.Evaluate(w.src)
}

func (w *Warehouse) insert(st *sqlparse.Insert) error {
	if w.detached {
		return fmt.Errorf("warehouse: sources are detached; use ApplyDelta")
	}
	meta := w.cat.Table(st.Table)
	if meta == nil {
		return fmt.Errorf("warehouse: unknown table %s", st.Table)
	}
	d := maintain.Delta{Table: st.Table}
	undo := func(upTo int) {
		for i := upTo - 1; i >= 0; i-- {
			_ = w.src.UndoInsert(st.Table, d.Inserts[i][meta.KeyIndex()])
		}
	}
	for _, vals := range st.Rows {
		row := tuple.Tuple(vals)
		if err := w.src.Insert(st.Table, row); err != nil {
			undo(len(d.Inserts))
			return err
		}
		d.Inserts = append(d.Inserts, row)
	}
	if err := w.sourceApplied(d); err != nil {
		undo(len(d.Inserts))
		return err
	}
	return nil
}

// sourceApplied fires the post-source-mutation injection point and then
// propagates; callers undo their source mutations when it fails, making
// DML statements atomic across the sources and every view.
func (w *Warehouse) sourceApplied(d maintain.Delta) error {
	if err := w.fi.Fire(faultinject.SourceApplied); err != nil {
		return err
	}
	return w.logAndPropagate(d, true)
}

// logAndPropagate wraps propagate with write-ahead logging: the intent is
// appended (and per policy fsynced) before any view stages the delta, the
// outcome after. On rollback the abort record is best-effort — a missing
// outcome reads as not-committed at recovery, which is exactly right.
func (w *Warehouse) logAndPropagate(d maintain.Delta, srcApplied bool) error {
	if w.wal == nil {
		return w.propagate(d)
	}
	lsn, err := w.wal.BeginDelta(d, srcApplied)
	if err != nil {
		return fmt.Errorf("warehouse: wal append: %w", err)
	}
	if err := w.fi.Fire(faultinject.WALLogged); err != nil {
		_ = w.wal.Abort(lsn)
		return err
	}
	if err := w.propagate(d); err != nil {
		_ = w.wal.Abort(lsn)
		return err
	}
	if err := w.wal.Commit(lsn); err != nil {
		// The views applied the delta in memory but its commit record is
		// not durable: surface the failure so the caller knows a crash now
		// would lose this (un-acknowledged) mutation at recovery.
		return fmt.Errorf("warehouse: delta applied in memory but WAL commit failed (not durable): %w", err)
	}
	w.lsn.Store(lsn)
	return nil
}

// ReplayDelta re-applies a logged, committed delta during recovery: the
// source tables first (when the delta originally mutated them and the
// warehouse is attached), then the existing propagate path, so views and
// auxiliary views end bit-identical to a never-crashed run. Replay is
// idempotent — deltas at or below the committed LSN (already captured by
// the snapshot) are skipped — and never write-ahead-logged again.
func (w *Warehouse) ReplayDelta(lsn uint64, d maintain.Delta, srcApplied bool) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if lsn <= w.lsn.Load() {
		return nil
	}
	if w.cat.Table(d.Table) == nil {
		return fmt.Errorf("warehouse: replay lsn %d: unknown table %s", lsn, d.Table)
	}
	var undo func()
	if srcApplied && !w.detached {
		var err error
		if undo, err = w.replaySource(d); err != nil {
			return fmt.Errorf("warehouse: replay lsn %d: %w", lsn, err)
		}
	}
	if err := w.propagate(d); err != nil {
		if undo != nil {
			undo()
		}
		return fmt.Errorf("warehouse: replay lsn %d: %w", lsn, err)
	}
	w.lsn.Store(lsn)
	return nil
}

// replaySource re-applies a delta's source-table mutations, returning an
// undo that reverts them in reverse order (used when the subsequent
// propagation fails).
func (w *Warehouse) replaySource(d maintain.Delta) (func(), error) {
	meta := w.cat.Table(d.Table)
	var undos []func()
	undoAll := func() {
		for i := len(undos) - 1; i >= 0; i-- {
			undos[i]()
		}
	}
	for _, r := range d.Inserts {
		if err := w.src.Insert(d.Table, r); err != nil {
			undoAll()
			return nil, err
		}
		key := r[meta.KeyIndex()]
		undos = append(undos, func() { _ = w.src.UndoInsert(d.Table, key) })
	}
	for _, r := range d.Deletes {
		del, err := w.src.Delete(d.Table, r[meta.KeyIndex()])
		if err != nil {
			undoAll()
			return nil, err
		}
		undos = append(undos, func() { _ = w.src.UndoDelete(d.Table, del) })
	}
	for _, u := range d.Updates {
		// Forward-apply the update by swapping in the new image under the
		// (unchanged) key; the update was validated when first applied.
		key := u.Old[meta.KeyIndex()]
		newImg := u.New
		if err := w.src.UndoUpdate(d.Table, key, newImg); err != nil {
			undoAll()
			return nil, err
		}
		oldImg := u.Old
		undos = append(undos, func() { _ = w.src.UndoUpdate(d.Table, key, oldImg) })
	}
	return undoAll, nil
}

// ReplayDDL re-executes a logged, committed DDL statement during recovery
// without logging it again. Like ReplayDelta it is idempotent by LSN.
func (w *Warehouse) ReplayDDL(lsn uint64, sql string) error {
	stmts, err := sqlparse.ParseScript(sql)
	if err != nil {
		return fmt.Errorf("warehouse: replay lsn %d: %w", lsn, err)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if lsn <= w.lsn.Load() {
		return nil
	}
	for _, s := range stmts {
		switch st := s.Stmt.(type) {
		case *sqlparse.CreateTable:
			err = w.createTable(st, "")
		case *sqlparse.CreateView:
			err = w.createView(st, "")
		case *sqlparse.DropView:
			err = w.applyDropView(st)
		default:
			err = fmt.Errorf("unsupported logged DDL %T", s.Stmt)
		}
		if err != nil {
			return fmt.Errorf("warehouse: replay lsn %d: %w", lsn, err)
		}
	}
	w.lsn.Store(lsn)
	return nil
}

// matchRows returns the source rows of a table matching a conjunctive
// condition.
func (w *Warehouse) matchRows(table string, conds []ra.Comparison) ([]tuple.Tuple, error) {
	meta := w.cat.Table(table)
	if meta == nil {
		return nil, fmt.Errorf("warehouse: unknown table %s", table)
	}
	cols := make(ra.Schema, len(meta.Attrs))
	for i, a := range meta.Attrs {
		cols[i] = ra.Col{Table: table, Name: a.Name}
	}
	resolved := make([]ra.Comparison, len(conds))
	for i, c := range conds {
		resolved[i] = c
	}
	pred, err := ra.BindAll(resolved, cols)
	if err != nil {
		return nil, err
	}
	var out []tuple.Tuple
	var perr error
	w.src.Table(table).Scan(func(r tuple.Tuple) {
		ok, err := pred(r)
		if err != nil {
			perr = err
			return
		}
		if ok {
			out = append(out, r)
		}
	})
	return out, perr
}

func (w *Warehouse) delete(st *sqlparse.Delete) error {
	if w.detached {
		return fmt.Errorf("warehouse: sources are detached; use ApplyDelta")
	}
	rows, err := w.matchRows(st.Table, st.Where)
	if err != nil {
		return err
	}
	meta := w.cat.Table(st.Table)
	d := maintain.Delta{Table: st.Table}
	undo := func(upTo int) {
		for i := upTo - 1; i >= 0; i-- {
			_ = w.src.UndoDelete(st.Table, d.Deletes[i])
		}
	}
	for _, r := range rows {
		del, err := w.src.Delete(st.Table, r[meta.KeyIndex()])
		if err != nil {
			undo(len(d.Deletes))
			return err
		}
		d.Deletes = append(d.Deletes, del)
	}
	if err := w.sourceApplied(d); err != nil {
		undo(len(d.Deletes))
		return err
	}
	return nil
}

func (w *Warehouse) update(st *sqlparse.Update) error {
	if w.detached {
		return fmt.Errorf("warehouse: sources are detached; use ApplyDelta")
	}
	rows, err := w.matchRows(st.Table, st.Where)
	if err != nil {
		return err
	}
	meta := w.cat.Table(st.Table)
	set := make(map[string]types.Value, len(st.Set))
	for _, a := range st.Set {
		set[a.Column] = a.Value
	}
	d := maintain.Delta{Table: st.Table}
	undo := func(upTo int) {
		for i := upTo - 1; i >= 0; i-- {
			u := d.Updates[i]
			_ = w.src.UndoUpdate(st.Table, u.New[meta.KeyIndex()], u.Old)
		}
	}
	for _, r := range rows {
		old, upd, err := w.src.Update(st.Table, r[meta.KeyIndex()], set)
		if err != nil {
			undo(len(d.Updates))
			return err
		}
		d.Updates = append(d.Updates, maintain.Update{Old: old, New: upd})
	}
	if err := w.sourceApplied(d); err != nil {
		undo(len(d.Updates))
		return err
	}
	return nil
}

// propagate applies a delta to every materialized view's engine,
// atomically across views: each engine stages the delta (its own undo log
// retained); when every engine succeeds they all commit, and when any view
// fails, the staged views are rolled back in reverse order so no view ever
// reflects a delta that others rejected.
//
// Independent views stage concurrently on a bounded worker pool, sharing
// per-delta work (expansion, filtering, delta-detail joins, group
// recomputation) through a DeltaMemo; commit and rollback stay serial in
// view order, and snapshot versions are bumped only after every engine has
// committed, so readers on the lock-free Query path never observe a
// half-propagated delta.
func (w *Warehouse) propagate(d maintain.Delta) error {
	n := len(w.order)
	if n == 0 {
		w.epoch++
		w.feedBackfills(d, maintain.StrategyAuto)
		return nil
	}
	var start time.Time
	if !w.obsTimingOff {
		start = time.Now()
	}
	// One strategy decision covers every view engine of this propagation:
	// consulting the chooser per engine would split replica engines across
	// recomputation paths whose float accumulation orders differ.
	strat := maintain.StrategyAuto
	var shape maintain.DeltaShape
	var opStart time.Time
	if w.chooser != nil || w.opLog != nil {
		shape = maintain.ShapeOf(d)
		opStart = time.Now()
	}
	if w.chooser != nil {
		strat = maintain.NormalizeStrategy(w.chooser.Choose("warehouse", shape, false))
	}
	var memo *maintain.DeltaMemo
	if !w.DisableMemo {
		memo = maintain.NewDeltaMemo()
	}
	staged := make([]bool, n)
	errs := make([]error, n)
	if workers := w.propagatePool(n); workers <= 1 {
		for i, name := range w.order {
			if ferr := w.fi.Fire(faultinject.PropagateView); ferr != nil {
				errs[i] = ferr
				break
			}
			if aerr := w.views[name].Engine.StageWithPlan(d, memo, strat); aerr != nil {
				errs[i] = aerr
				break
			}
			staged[i] = true
		}
	} else {
		// The injection point fires on the coordinating goroutine in view
		// order, so fault sweeps visit it deterministically; the staging
		// itself fans out. Each engine journals only its own state, so
		// staging goroutines share nothing but the read-only memo.
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for i, name := range w.order {
			if ferr := w.fi.Fire(faultinject.PropagateView); ferr != nil {
				errs[i] = ferr
				break
			}
			sem <- struct{}{}
			wg.Add(1)
			w.met.poolOcc.Add(1)
			go func(i int, eng *maintain.Engine) {
				defer wg.Done()
				defer func() { <-sem; w.met.poolOcc.Add(-1) }()
				if aerr := eng.StageWithPlan(d, memo, strat); aerr != nil {
					errs[i] = aerr
					return
				}
				staged[i] = true
			}(i, w.views[name].Engine)
		}
		wg.Wait()
	}
	if memo != nil {
		// Attribute this delta's cross-view work sharing to the maintenance
		// sink (nil-safe; a no-op when observability is off).
		w.met.engineMet.AddMemoStats(memo.Stats())
	}
	stagedN := int64(0)
	for _, s := range staged {
		if s {
			stagedN++
		}
	}
	w.met.viewsStaged.Add(stagedN)
	var err error
	for i, aerr := range errs {
		if aerr != nil {
			err = fmt.Errorf("warehouse: view %s: %w", w.order[i], aerr)
			break
		}
	}
	if err == nil {
		for _, name := range w.order {
			w.views[name].Engine.Commit()
		}
		// Invalidate cached snapshots, but only of views the delta can
		// actually change: the rest keep serving their snapshot untouched.
		invalidated := int64(0)
		for _, name := range w.order {
			if mv := w.views[name]; mv.Engine.References(d.Table) {
				mv.ver.Add(1)
				invalidated++
			}
		}
		w.epoch++
		w.feedBackfills(d, strat)
		w.met.viewsCommitted.Add(int64(n))
		w.met.snapInvalidated.Add(invalidated)
		w.met.propagates.Inc()
		if !w.obsTimingOff {
			w.met.propagateNs.ObserveSince(start)
		}
		if w.chooser != nil || w.opLog != nil {
			ns := time.Since(opStart).Nanoseconds()
			if w.chooser != nil {
				w.chooser.Observe("warehouse", shape, strat, ns)
			}
			if w.opLog != nil {
				w.opLog(OpEvent{Kind: "delta", Table: d.Table, Rows: shape.Rows, Ns: ns})
			}
		}
		return nil
	}
	// Failing engines rolled themselves back inside StageWithMemo; undo the
	// successfully staged engines, newest first. Versions were never bumped,
	// so cached snapshots stay valid — readers never saw the delta.
	for i := n - 1; i >= 0; i-- {
		if staged[i] {
			w.views[w.order[i]].Engine.Rollback()
		}
	}
	w.met.viewsRolledBack.Add(stagedN)
	w.met.propagateErrs.Inc()
	if !w.obsTimingOff {
		w.met.propagateNs.ObserveSince(start)
	}
	return err
}

// propagatePool resolves the staging worker-pool size for n views.
func (w *Warehouse) propagatePool(n int) int {
	p := w.PropagateWorkers
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n {
		p = n
	}
	return p
}

// ApplyDelta propagates an externally produced delta (a change-log entry)
// to every view. This is the only change path once sources are detached.
// It is all-or-nothing across views: on error no view reflects the delta.
func (w *Warehouse) ApplyDelta(d maintain.Delta) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.cat.Table(d.Table) == nil {
		return fmt.Errorf("warehouse: unknown table %s", d.Table)
	}
	return w.logAndPropagate(d, false)
}

// ImportCSV bulk-loads CSV rows into a source table and propagates them to
// every materialized view in batches. With header set the first record
// names the columns.
//
// Partial-failure contract: the returned count is the number of rows that
// are DURABLY committed — present in the source table AND reflected in
// every materialized view. Import is atomic per batch, not per file: when
// a batch fails (malformed row, rejected delta, injected fault), earlier
// batches stay committed, the failing batch is removed from the source
// again (each view engine's undo journal has already rolled the views
// back), and source and views agree on exactly the returned prefix.
func (w *Warehouse) ImportCSV(table string, r io.Reader, header bool) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.detached {
		return 0, fmt.Errorf("warehouse: sources are detached")
	}
	meta := w.cat.Table(table)
	if meta == nil {
		return 0, fmt.Errorf("warehouse: unknown table %s", table)
	}
	const batch = 1024
	var pending []tuple.Tuple
	flushed := 0
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		// Hand propagate an owned slice: engines may retain delta rows
		// (Need-set joins, aux contents reference them), so the batch
		// buffer must never be reused for later rows.
		d := maintain.Delta{Table: table, Inserts: pending}
		if err := w.sourceApplied(d); err != nil {
			// The views rejected (or a fault aborted) this batch; remove
			// its rows from the source again so sources and views agree.
			// Clearing pending is essential: the error-path flush() retry
			// below would otherwise re-propagate rows that were just undone
			// from the source, silently diverging views from sources.
			for i := len(pending) - 1; i >= 0; i-- {
				_ = w.src.UndoInsert(table, pending[i][meta.KeyIndex()])
			}
			pending = nil
			return err
		}
		flushed += len(pending)
		pending = nil
		return nil
	}
	n, err := csvload.Read(meta, r, header, func(row tuple.Tuple) error {
		if err := w.src.Insert(table, row); err != nil {
			return err
		}
		pending = append(pending, row)
		if len(pending) >= batch {
			return flush()
		}
		return nil
	})
	if err != nil {
		// Batches already propagated stay; flush the remainder so the
		// views match the source even on partial loads. A failed final
		// flush undoes its own batch, so `flushed` rows remain either way.
		if ferr := flush(); ferr != nil {
			return flushed, ferr
		}
		return flushed, err
	}
	if ferr := flush(); ferr != nil {
		return flushed, ferr
	}
	return n, nil
}

// Query returns the current contents of a materialized view.
//
// The returned relation is an immutable published snapshot shared between
// callers: treat it as read-only (set DisableSnapshots for a private
// mutable copy). The fast path is lock-free — while a delta is being
// applied, readers are served the pre-delta snapshot without blocking, and
// the post-delta state becomes visible only after every view committed, so
// a reader never observes a torn or half-propagated view.
func (w *Warehouse) Query(view string) (*ra.Relation, error) {
	if !w.DisableSnapshots {
		if idx := w.viewIdx.Load(); idx != nil {
			if mv := (*idx)[view]; mv != nil {
				if s := mv.snap.Load(); s != nil && s.ver == mv.ver.Load() {
					// One atomic add keeps the fast path lock-free.
					w.met.queryHits.Inc()
					return s.rel, nil
				}
				return w.rebuildSnap(mv)
			}
		}
	}
	w.mu.RLock()
	defer w.mu.RUnlock()
	mv := w.views[view]
	if mv == nil {
		return nil, fmt.Errorf("warehouse: unknown view %s", view)
	}
	w.met.queryLocked.Inc()
	return mv.Def.ApplyHaving(mv.Engine.Snapshot())
}

// rebuildSnap materializes and publishes a fresh snapshot of mv. The read
// lock excludes writers (propagation runs under the write lock), so the
// engine state is stable and corresponds exactly to the version read here;
// concurrent rebuilds of the same version store interchangeable snapshots.
func (w *Warehouse) rebuildSnap(mv *View) (*ra.Relation, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	w.met.queryRebuilds.Inc()
	ver := mv.ver.Load()
	rel, err := mv.Def.ApplyHaving(mv.Engine.Snapshot())
	if err != nil {
		return nil, err
	}
	mv.snap.Store(&viewSnap{ver: ver, rel: rel})
	w.met.snapPublished.Inc()
	return rel, nil
}

// Verify recomputes every view from the sources and compares. It fails
// when sources are detached (there is nothing to verify against).
func (w *Warehouse) Verify() error {
	w.mu.RLock()
	defer w.mu.RUnlock()
	if w.detached {
		return fmt.Errorf("warehouse: cannot verify against detached sources")
	}
	for _, name := range w.order {
		mv := w.views[name]
		want, err := mv.Def.Evaluate(w.src)
		if err != nil {
			return err
		}
		got, err := mv.Def.ApplyHaving(mv.Engine.Snapshot())
		if err != nil {
			return err
		}
		if !ra.EqualBag(got, want) {
			return fmt.Errorf("warehouse: view %s diverged from recomputation", name)
		}
	}
	return nil
}

// StorageReport summarizes, per view, the paper's storage comparison: the
// size of the referenced base tables versus the auxiliary views actually
// stored in the warehouse.
type StorageReport struct {
	View          string
	BaseRows      int
	BaseBytes     int
	AuxRows       int
	AuxBytes      int
	ViewRows      int
	ViewBytes     int
	OmittedTables []string
}

// Report computes storage reports for all views. Base sizes require
// attached sources; when detached only auxiliary sizes are filled.
func (w *Warehouse) Report() []StorageReport {
	w.mu.RLock()
	defer w.mu.RUnlock()
	var out []StorageReport
	for _, name := range w.order {
		mv := w.views[name]
		r := StorageReport{View: name}
		for _, t := range mv.Def.Tables {
			if !w.detached {
				tab := w.src.Table(t)
				r.BaseRows += tab.Len()
				r.BaseBytes += tab.Bytes()
			}
			if aux := mv.Engine.Aux(t); aux != nil {
				r.AuxRows += aux.Len()
				r.AuxBytes += aux.Bytes()
			} else {
				r.OmittedTables = append(r.OmittedTables, t)
			}
		}
		sort.Strings(r.OmittedTables)
		snap := mv.Engine.Snapshot()
		r.ViewRows = snap.Len()
		r.ViewBytes = mv.Engine.ViewBytes()
		out = append(out, r)
	}
	return out
}

// FormatReport renders storage reports as a table.
func FormatReport(reports []StorageReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %12s %12s %12s %12s %10s\n",
		"view", "base rows", "base bytes", "aux rows", "aux bytes", "reduction")
	for _, r := range reports {
		red := "n/a"
		if r.AuxBytes > 0 && r.BaseBytes > 0 {
			red = fmt.Sprintf("%.1fx", float64(r.BaseBytes)/float64(r.AuxBytes))
		}
		fmt.Fprintf(&b, "%-20s %12d %12d %12d %12d %10s\n",
			r.View, r.BaseRows, r.BaseBytes, r.AuxRows, r.AuxBytes, red)
		if len(r.OmittedTables) > 0 {
			fmt.Fprintf(&b, "%-20s   omitted auxiliary views: %s\n", "", strings.Join(r.OmittedTables, ", "))
		}
	}
	return b.String()
}
