package warehouse

import (
	"strings"
	"testing"
)

// TestImportCSVPropagates: bulk CSV loads must update already-materialized
// views, exactly like INSERT statements.
func TestImportCSVPropagates(t *testing.T) {
	w := newRetail(t)
	before, err := w.Query("product_sales")
	if err != nil {
		t.Fatal(err)
	}
	// Two 1997 sales in month 1 (timeids 1 and 2) and one 1998 sale
	// (timeid 4) that the view filters out.
	csv := "10,1,100,7,20\n11,2,101,7,5.5\n12,4,100,7,7\n"
	n, err := w.ImportCSV("sale", strings.NewReader(csv), false)
	if err != nil || n != 3 {
		t.Fatalf("ImportCSV = %d, %v", n, err)
	}
	after, err := w.Query("product_sales")
	if err != nil {
		t.Fatal(err)
	}
	if before.Sorted().Rows[0][2].AsInt()+2 != after.Sorted().Rows[0][2].AsInt() {
		t.Errorf("month 1 count did not grow by 2:\nbefore:\n%s\nafter:\n%s",
			before.Format(), after.Format())
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestImportCSVErrors(t *testing.T) {
	w := newRetail(t)
	if _, err := w.ImportCSV("nosuch", strings.NewReader("1\n"), false); err == nil {
		t.Error("unknown table accepted")
	}
	// A bad row mid-stream: earlier rows stay loaded and propagated, the
	// error surfaces, and the views still match the source.
	csv := "20,1,100,7,1\nbroken,row,x,y,z\n"
	n, err := w.ImportCSV("sale", strings.NewReader(csv), false)
	if err == nil {
		t.Fatal("bad row accepted")
	}
	if n != 1 {
		t.Errorf("rows before error = %d", n)
	}
	if err := w.Verify(); err != nil {
		t.Fatalf("views diverged after partial import: %v", err)
	}
	w.DetachSources()
	if _, err := w.ImportCSV("sale", strings.NewReader("30,1,100,7,1\n"), false); err == nil {
		t.Error("import accepted while detached")
	}
}

func TestImportCSVWithHeader(t *testing.T) {
	w := newRetail(t)
	csv := "price,id,timeid,productid,storeid\n2.5,40,1,100,7\n"
	n, err := w.ImportCSV("sale", strings.NewReader(csv), true)
	if err != nil || n != 1 {
		t.Fatalf("ImportCSV = %d, %v", n, err)
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
}
