package warehouse

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"mindetail/internal/faultinject"
)

// TestImportCSVPropagates: bulk CSV loads must update already-materialized
// views, exactly like INSERT statements.
func TestImportCSVPropagates(t *testing.T) {
	w := newRetail(t)
	before, err := w.Query("product_sales")
	if err != nil {
		t.Fatal(err)
	}
	// Two 1997 sales in month 1 (timeids 1 and 2) and one 1998 sale
	// (timeid 4) that the view filters out.
	csv := "10,1,100,7,20\n11,2,101,7,5.5\n12,4,100,7,7\n"
	n, err := w.ImportCSV("sale", strings.NewReader(csv), false)
	if err != nil || n != 3 {
		t.Fatalf("ImportCSV = %d, %v", n, err)
	}
	after, err := w.Query("product_sales")
	if err != nil {
		t.Fatal(err)
	}
	if before.Sorted().Rows[0][2].AsInt()+2 != after.Sorted().Rows[0][2].AsInt() {
		t.Errorf("month 1 count did not grow by 2:\nbefore:\n%s\nafter:\n%s",
			before.Format(), after.Format())
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestImportCSVErrors(t *testing.T) {
	w := newRetail(t)
	if _, err := w.ImportCSV("nosuch", strings.NewReader("1\n"), false); err == nil {
		t.Error("unknown table accepted")
	}
	// A bad row mid-stream: earlier rows stay loaded and propagated, the
	// error surfaces, and the views still match the source.
	csv := "20,1,100,7,1\nbroken,row,x,y,z\n"
	n, err := w.ImportCSV("sale", strings.NewReader(csv), false)
	if err == nil {
		t.Fatal("bad row accepted")
	}
	if n != 1 {
		t.Errorf("rows before error = %d", n)
	}
	if err := w.Verify(); err != nil {
		t.Fatalf("views diverged after partial import: %v", err)
	}
	w.DetachSources()
	if _, err := w.ImportCSV("sale", strings.NewReader("30,1,100,7,1\n"), false); err == nil {
		t.Error("import accepted while detached")
	}
}

func TestImportCSVWithHeader(t *testing.T) {
	w := newRetail(t)
	csv := "price,id,timeid,productid,storeid\n2.5,40,1,100,7\n"
	n, err := w.ImportCSV("sale", strings.NewReader(csv), true)
	if err != nil || n != 1 {
		t.Fatalf("ImportCSV = %d, %v", n, err)
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestImportCSVMultiBatch loads enough rows to cross several internal
// flush batches (1024 rows each). Regression test for the flush loop
// reusing one delta slice's backing array across batches: each batch must
// hand the engines an owned slice, since engines and auxiliary views may
// retain delta rows after propagation. Follow-up DML exercises the
// retained detail.
func TestImportCSVMultiBatch(t *testing.T) {
	const rows = 2600 // three flushes: 1024 + 1024 + 552
	var b strings.Builder
	for i := 0; i < rows; i++ {
		id := 5000 + i
		timeid := i%4 + 1      // timeids 1-3 are 1997, 4 is 1998
		productid := 100 + i%2 // alternating acme/bolt
		fmt.Fprintf(&b, "%d,%d,%d,7,1.5\n", id, timeid, productid)
	}
	w := newRetail(t)
	before, err := w.Query("product_sales")
	if err != nil {
		t.Fatal(err)
	}
	n, err := w.ImportCSV("sale", strings.NewReader(b.String()), false)
	if err != nil || n != rows {
		t.Fatalf("ImportCSV = %d, %v", n, err)
	}
	if err := w.Verify(); err != nil {
		t.Fatalf("views diverged after multi-batch load: %v", err)
	}
	after, err := w.Query("product_sales")
	if err != nil {
		t.Fatal(err)
	}
	var cntBefore, cntAfter int64
	for _, r := range before.Rows {
		cntBefore += r[2].AsInt()
	}
	for _, r := range after.Rows {
		cntAfter += r[2].AsInt()
	}
	// 3 of every 4 imported rows land in 1997 and thus in the view.
	if want := cntBefore + rows*3/4; cntAfter != want {
		t.Fatalf("view count = %d, want %d", cntAfter, want)
	}
	// The retained auxiliary detail must support later deltas over the
	// imported rows (a stale/aliased batch slice would corrupt this).
	if _, err := w.Exec(`DELETE FROM sale WHERE id = 5001`); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Exec(`UPDATE sale SET price = 9 WHERE id = 5004`); err != nil {
		t.Fatal(err)
	}
	if err := w.Verify(); err != nil {
		t.Fatalf("views diverged after post-import DML: %v", err)
	}
}

// importCSVRows builds n valid sale rows starting at the given id.
func importCSVRows(startID, n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%d,%d,%d,7,1.5\n", startID+i, i%4+1, 100+i%2)
	}
	return b.String()
}

// TestImportCSVPartialFailureContract pins the documented partial-failure
// semantics down to the row: when the second 1024-row batch of a load dies
// mid-propagation, ImportCSV must report exactly the 1024 durably committed
// rows of the first batch, the source table must contain exactly those rows
// (the failing batch's source inserts undone), and sources and views must
// still verify. Regression test for the error-path flush re-propagating the
// undone batch (`pending` not cleared), which silently diverged views from
// sources.
func TestImportCSVPartialFailureContract(t *testing.T) {
	const batch = 1024
	// Calibrate: count the injection points one clean 1024-row batch
	// visits, so the fault can be aimed at the first point of batch two.
	calib := newRetail(t)
	counter := faultinject.Counter()
	calib.SetFaultHook(counter)
	if n, err := calib.ImportCSV("sale", strings.NewReader(importCSVRows(5000, batch)), false); err != nil || n != batch {
		t.Fatalf("calibration load = %d, %v", n, err)
	}
	calib.SetFaultHook(nil)
	v1 := counter.Visits()
	if v1 == 0 {
		t.Fatal("clean batch visited no injection points")
	}

	w := newRetail(t)
	saleRows := func() int { return w.Source().Table("sale").Len() }
	beforeRows := saleRows()
	h := faultinject.NewHook(v1 + 1)
	w.SetFaultHook(h)
	n, err := w.ImportCSV("sale", strings.NewReader(importCSVRows(5000, 2*batch)), false)
	w.SetFaultHook(nil)
	if err == nil {
		t.Fatal("second batch committed despite injected fault")
	}
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("genuine error: %v", err)
	}
	if n != batch {
		t.Fatalf("ImportCSV reported %d durable rows, want %d (first batch only)", n, batch)
	}
	if got := saleRows(); got != beforeRows+batch {
		t.Fatalf("source sale table grew by %d rows, want %d", got-beforeRows, batch)
	}
	if err := w.Verify(); err != nil {
		t.Fatalf("sources and views diverged after partial load: %v", err)
	}
	// The warehouse keeps working: the failed batch can be re-imported.
	if n, err := w.ImportCSV("sale", strings.NewReader(importCSVRows(5000+batch, batch)), false); err != nil || n != batch {
		t.Fatalf("re-import = %d, %v", n, err)
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
}
