package warehouse

import (
	"strings"
	"testing"
)

// TestHavingRestriction exercises the Section 4 generalization: HAVING
// restrictions on groups. The engine maintains the unrestricted groups;
// the restriction is applied on reads, so groups flow in and out of the
// result as their aggregates move across the threshold.
func TestHavingRestriction(t *testing.T) {
	w := newRetail(t)
	if _, err := w.Exec(`
		CREATE MATERIALIZED VIEW busy_months AS
		SELECT time.month, COUNT(*) AS cnt, SUM(price) AS total
		FROM sale, time
		WHERE sale.timeid = time.id AND time.year = 1997
		GROUP BY time.month
		HAVING cnt >= 3`); err != nil {
		t.Fatal(err)
	}
	rel, err := w.Query("busy_months")
	if err != nil {
		t.Fatal(err)
	}
	// Only month 1 has >= 3 sales initially.
	if rel.Len() != 1 || rel.Rows[0][0].AsInt() != 1 {
		t.Fatalf("busy_months:\n%s", rel.Format())
	}

	// Push month 2 over the threshold.
	w.MustExec(`INSERT INTO sale VALUES (6, 3, 100, 7, 1), (7, 3, 101, 7, 2)`)
	rel, err = w.Query("busy_months")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Fatalf("after inserts:\n%s", rel.Format())
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}

	// Shrink month 1 below the threshold: the group leaves the result but
	// stays maintained.
	w.MustExec(`DELETE FROM sale WHERE id = 1`)
	rel, err = w.Query("busy_months")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 || rel.Rows[0][0].AsInt() != 2 {
		t.Fatalf("after delete:\n%s", rel.Format())
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
	// And back in.
	w.MustExec(`INSERT INTO sale VALUES (8, 1, 100, 7, 4)`)
	rel, _ = w.Query("busy_months")
	if rel.Len() != 2 {
		t.Fatalf("after reinsert:\n%s", rel.Format())
	}
}

func TestHavingValidation(t *testing.T) {
	w := newRetail(t)
	cases := []struct {
		sql, errSub string
	}{
		{`CREATE MATERIALIZED VIEW h1 AS
			SELECT time.month, COUNT(*) AS cnt FROM sale, time
			WHERE sale.timeid = time.id GROUP BY time.month
			HAVING nosuch > 1`, "not found"},
		{`CREATE MATERIALIZED VIEW h2 AS
			SELECT time.month, COUNT(*) AS cnt FROM sale, time
			WHERE sale.timeid = time.id GROUP BY time.month
			HAVING sale.price > 1`, "output columns"},
	}
	for _, c := range cases {
		_, err := w.Exec(c.sql)
		if err == nil || !strings.Contains(err.Error(), c.errSub) {
			t.Errorf("%q: got %v, want error containing %q", c.sql, err, c.errSub)
		}
	}
}

func TestHavingInSQLRoundTrip(t *testing.T) {
	w := newRetail(t)
	if _, err := w.Exec(`
		CREATE MATERIALIZED VIEW h AS
		SELECT time.month, COUNT(*) AS cnt FROM sale, time
		WHERE sale.timeid = time.id GROUP BY time.month
		HAVING cnt > 1 AND cnt < 100`); err != nil {
		t.Fatal(err)
	}
	sql := w.View("h").Def.SQL()
	if !strings.Contains(sql, "HAVING cnt > 1 AND cnt < 100") {
		t.Errorf("SQL() = %q", sql)
	}
}
