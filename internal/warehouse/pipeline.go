package warehouse

import (
	"errors"
	"sync"

	"mindetail/internal/maintain"
)

// DefaultPipelineDepth is the batch ceiling used when NewPipeline is given
// a non-positive depth.
const DefaultPipelineDepth = 64

// ErrPipelineClosed is returned by Submit after Close.
var ErrPipelineClosed = errors.New("warehouse: pipeline closed")

// Pipeline is the group-commit front end of a warehouse: concurrent
// producers Submit deltas, a single drainer goroutine batches whatever has
// accumulated while the previous batch was being applied and hands it to
// ApplyDeltaBatch — so WAL fsyncs amortize across the batch and adjacent
// insert-only deltas coalesce into single propagations. Batching is
// self-clocking: under light load every delta is its own batch (no added
// latency); under heavy load batches grow toward maxBatch.
//
// Submit returns only after its delta's outcome is known, so the
// single-delta durability contract is preserved per submitter: a nil error
// means the delta is committed in memory and, when the warehouse has a
// durable log, its commit record is on disk per the log's sync policy.
type Pipeline struct {
	w        *Warehouse
	maxBatch int

	// mu guards closed. Submit takes it shared and only long enough to
	// check the flag and register with subs — never across the channel
	// send — so submitters blocked on a full reqs channel do not serialize
	// each other (or stall Close) on the mutex. subs counts Submits
	// admitted before Close flipped the flag; the reqs channel is closed
	// only after they have all been answered, which is what makes the
	// send-outside-the-lock safe: a send on a closed channel would panic,
	// but close happens strictly after every admitted sender is done.
	mu     sync.RWMutex
	closed bool
	subs   sync.WaitGroup

	reqs chan pipeReq
	done chan struct{}
}

type pipeReq struct {
	d   maintain.Delta
	ack chan error
}

// NewPipeline starts a pipeline over w with the given batch ceiling
// (<= 0 selects DefaultPipelineDepth).
func NewPipeline(w *Warehouse, maxBatch int) *Pipeline {
	if maxBatch <= 0 {
		maxBatch = DefaultPipelineDepth
	}
	p := &Pipeline{
		w:        w,
		maxBatch: maxBatch,
		reqs:     make(chan pipeReq, maxBatch),
		done:     make(chan struct{}),
	}
	go p.run()
	return p
}

// Submit applies one delta through the pipeline and blocks until it has
// been applied and committed (or failed). Safe for concurrent use. After
// Close it returns ErrPipelineClosed.
func (p *Pipeline) Submit(d maintain.Delta) error {
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return ErrPipelineClosed
	}
	p.subs.Add(1)
	p.mu.RUnlock()
	defer p.subs.Done()
	req := pipeReq{d: d, ack: make(chan error, 1)}
	p.reqs <- req
	return <-req.ack
}

// Close drains in-flight submissions and stops the pipeline. It blocks
// until every accepted Submit has been answered. Idempotent.
func (p *Pipeline) Close() {
	p.mu.Lock()
	already := p.closed
	p.closed = true
	p.mu.Unlock()
	if !already {
		// The reqs channel may only be closed once no admitted Submit can
		// still be blocked sending on it. The drainer keeps consuming until
		// the channel closes, so every admitted sender completes, subs
		// drains, and the close releases the drainer.
		go func() {
			p.subs.Wait()
			close(p.reqs)
		}()
	}
	<-p.done
}

// run is the drainer: block for the first request, then sweep whatever
// else is already queued (up to maxBatch) into the same ApplyDeltaBatch
// call and answer each submitter with its own slot of the error slice.
func (p *Pipeline) run() {
	defer close(p.done)
	for {
		first, ok := <-p.reqs
		if !ok {
			return
		}
		batch := []pipeReq{first}
	fill:
		for len(batch) < p.maxBatch {
			select {
			case req, ok := <-p.reqs:
				if !ok {
					break fill
				}
				batch = append(batch, req)
			default:
				break fill
			}
		}
		ds := make([]maintain.Delta, len(batch))
		for i, req := range batch {
			ds[i] = req.d
		}
		errs := p.w.ApplyDeltaBatch(ds)
		for i, req := range batch {
			req.ack <- errs[i]
		}
	}
}
