package warehouse

import (
	"fmt"
	"time"

	"mindetail/internal/faultinject"
	"mindetail/internal/maintain"
)

// AdaptiveSession routes a delta stream through a cost-based strategy
// chooser with defer-and-batch: insert-only deltas the chooser marks
// StrategyDefer are buffered and later applied as one coalesced batch
// through the group-commit pipeline (ApplyDeltaBatch), amortizing view
// recomputation and WAL fsyncs; every other delta flushes the buffer first
// — source order is preserved — and applies immediately through the
// ordinary propagate path, where the same chooser picks among the
// engine-side strategies.
//
// The chooser is consulted twice per non-deferred delta: once here (with
// deferral allowed) and once inside propagate (without). StrategyChooser's
// purity contract — no state advances in Choose — makes the two calls
// agree, so the probe never skews the decision.
//
// Not safe for concurrent use; a session belongs to one ingest loop.
type AdaptiveSession struct {
	w       *Warehouse
	chooser maintain.StrategyChooser
	depth   int
	buf     []maintain.Delta
}

// NewAdaptiveSession creates a session routing deltas through chooser.
// depth bounds the defer buffer; <=0 means 32. The chooser is also
// installed on the warehouse so immediate applies run under it.
func (w *Warehouse) NewAdaptiveSession(chooser maintain.StrategyChooser, depth int) *AdaptiveSession {
	if depth <= 0 {
		depth = 32
	}
	w.SetStrategyChooser(chooser)
	return &AdaptiveSession{w: w, chooser: chooser, depth: depth}
}

// Pending reports how many deltas are buffered awaiting a flush.
func (s *AdaptiveSession) Pending() int { return len(s.buf) }

// Apply routes one delta: buffered when the chooser defers it, applied
// immediately (after flushing the buffer, to preserve order) otherwise.
func (s *AdaptiveSession) Apply(d maintain.Delta) error {
	if s.chooser != nil {
		sh := maintain.ShapeOf(d)
		if sh.Class == maintain.ClassInsertOnly &&
			s.chooser.Choose("warehouse", sh, true) == maintain.StrategyDefer {
			s.buf = append(s.buf, d)
			if len(s.buf) >= s.depth {
				return s.Flush()
			}
			return nil
		}
	}
	if err := s.Flush(); err != nil {
		return err
	}
	return s.w.ApplyDelta(d)
}

// Flush applies every buffered delta as one batch. On a pre-batch fault the
// buffer is retained — nothing was applied, and a later Flush retries. Once
// the batch runs, per-delta outcomes follow ApplyDeltaBatch's contract
// (each delta commits or rolls back individually); the first error is
// returned.
func (s *AdaptiveSession) Flush() error {
	if len(s.buf) == 0 {
		return nil
	}
	if err := s.w.fi.Fire(faultinject.DeferFlush); err != nil {
		return err
	}
	buf := s.buf
	s.buf = nil
	start := time.Now()
	errs := s.w.ApplyDeltaBatch(buf)
	var first error
	failed := 0
	for i, err := range errs {
		if err != nil {
			failed++
			if first == nil {
				first = fmt.Errorf("warehouse: deferred delta %d (%s): %w", i, buf[i].Table, err)
			}
		}
	}
	if s.chooser != nil && failed < len(buf) {
		// Report the amortized per-delta cost of the batch under the defer
		// strategy, so deferral competes on measured cost like every other.
		ns := time.Since(start).Nanoseconds() / int64(len(buf))
		for i, d := range buf {
			if errs[i] == nil {
				s.chooser.Observe("warehouse", maintain.ShapeOf(d), maintain.StrategyDefer, ns)
			}
		}
	}
	return first
}
