package warehouse

import (
	"fmt"
	"testing"

	"mindetail/internal/ra"
)

// extraViews adds a mix of views on top of newRetail's product_sales:
// an exact replica (so the per-delta memo is exercised end to end), a
// time-free rollup (so snapshot invalidation can be observed per table),
// and a MAX view whose group recomputation path is the most fragile one.
func addFanoutViews(t *testing.T, w *Warehouse) {
	t.Helper()
	stmts := []string{
		`CREATE MATERIALIZED VIEW product_sales_replica AS
		 SELECT time.month, SUM(price) AS TotalPrice, COUNT(*) AS TotalCount,
		        COUNT(DISTINCT brand) AS DifferentBrands
		 FROM sale, time, product
		 WHERE time.year = 1997 AND sale.timeid = time.id AND sale.productid = product.id
		 GROUP BY time.month`,
		`CREATE MATERIALIZED VIEW by_product AS
		 SELECT product.id, SUM(price) AS total, COUNT(*) AS cnt
		 FROM sale, product WHERE sale.productid = product.id
		 GROUP BY product.id`,
		`CREATE MATERIALIZED VIEW city_max AS
		 SELECT store.city, MAX(price) AS top, COUNT(*) AS cnt
		 FROM sale, store WHERE sale.storeid = store.id
		 GROUP BY store.city`,
	}
	for _, sql := range stmts {
		if _, err := w.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
}

// TestFaultInjectionParallelPropagate sweeps DML through a warehouse whose
// views stage concurrently (4 workers) and share work through the delta
// memo. Every injected failure must leave sources and all four views
// exactly as before the statement — the parallel scheduler may not weaken
// the all-or-nothing guarantee the serial path gives.
func TestFaultInjectionParallelPropagate(t *testing.T) {
	w := newRetail(t)
	addFanoutViews(t, w)
	w.PropagateWorkers = 4
	steps := []string{
		`INSERT INTO sale VALUES (6, 2, 100, 7, 30)`,
		`UPDATE sale SET price = 12 WHERE id = 2`,
		`UPDATE product SET brand = 'zeta' WHERE id = 101`,
		`DELETE FROM sale WHERE id = 5`,
	}
	for _, sql := range steps {
		sweepStmt(t, w, sql)
	}
}

// TestQuerySnapshotCaching pins the copy-on-write read path semantics:
// repeated reads between writes return the same published relation, a
// write invalidates snapshots only of views that reference the written
// table, and committed deltas are visible on the very next read.
func TestQuerySnapshotCaching(t *testing.T) {
	w := newRetail(t)
	addFanoutViews(t, w)

	q := func(view string) *ra.Relation {
		t.Helper()
		rel, err := w.Query(view)
		if err != nil {
			t.Fatal(err)
		}
		return rel
	}

	// Stable between writes: the same snapshot pointer is served.
	ps1, bp1 := q("product_sales"), q("by_product")
	if q("product_sales") != ps1 || q("by_product") != bp1 {
		t.Fatal("repeated Query without writes rebuilt the snapshot")
	}

	// A write to a table only product_sales references: by_product keeps
	// serving its cached snapshot, product_sales is rebuilt.
	if _, err := w.Exec(`INSERT INTO time VALUES (6, 10, 3, 1997)`); err != nil {
		t.Fatal(err)
	}
	if q("by_product") != bp1 {
		t.Fatal("insert into time invalidated by_product, which does not reference time")
	}
	ps2 := q("product_sales")
	if ps2 == ps1 {
		t.Fatal("insert into time did not invalidate product_sales")
	}

	// A write to sale invalidates both, and the new contents are visible
	// immediately on the next read.
	if _, err := w.Exec(`INSERT INTO sale VALUES (6, 2, 100, 7, 30)`); err != nil {
		t.Fatal(err)
	}
	bp2 := q("by_product")
	if bp2 == bp1 {
		t.Fatal("insert into sale did not invalidate by_product")
	}
	if ra.EqualBag(bp2, bp1) {
		t.Fatalf("committed sale is not visible in by_product:\n%s", bp2.Format())
	}
	if q("product_sales") == ps2 {
		t.Fatal("insert into sale did not invalidate product_sales")
	}

	// The published snapshots agree with a from-scratch recomputation.
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestWarehouseMemoShadow runs the same delta stream through a default
// warehouse (parallel staging, memoized, snapshot cache on) and a shadow
// configured to the old serial behavior (one worker, no memo, no snapshot
// cache). After every statement, every view must match byte for byte: the
// memo and the scheduler are pure performance features with no observable
// effect on view contents.
func TestWarehouseMemoShadow(t *testing.T) {
	build := func() *Warehouse {
		w := New()
		if _, err := w.Exec(setupSQL); err != nil {
			t.Fatal(err)
		}
		if _, err := w.Exec(viewSQL); err != nil {
			t.Fatal(err)
		}
		addFanoutViews(t, w)
		return w
	}
	fast := build()
	fast.PropagateWorkers = 4
	slow := build()
	slow.PropagateWorkers = 1
	slow.DisableMemo = true
	slow.DisableSnapshots = true

	steps := []string{
		`INSERT INTO sale VALUES (6, 2, 100, 7, 30)`,
		`INSERT INTO sale VALUES (7, 1, 101, 7, 4), (8, 3, 100, 7, 6)`,
		`UPDATE sale SET price = 12 WHERE id = 2`,
		`UPDATE product SET brand = 'zeta' WHERE id = 101`,
		`DELETE FROM sale WHERE id = 1`,
		`INSERT INTO time VALUES (9, 9, 3, 1997)`,
		`UPDATE sale SET price = 3.5 WHERE id = 7`,
		`DELETE FROM sale WHERE price > 90`,
		`INSERT INTO sale VALUES (9, 9, 100, 7, 11)`,
	}
	for _, sql := range steps {
		if _, err := fast.Exec(sql); err != nil {
			t.Fatalf("fast %q: %v", sql, err)
		}
		if _, err := slow.Exec(sql); err != nil {
			t.Fatalf("slow %q: %v", sql, err)
		}
		for _, name := range fast.ViewNames() {
			fr, err := fast.Query(name)
			if err != nil {
				t.Fatal(err)
			}
			sr, err := slow.Query(name)
			if err != nil {
				t.Fatal(err)
			}
			got, want := fr.Sorted().Format(), sr.Sorted().Format()
			if got != want {
				t.Fatalf("after %q: view %s diverged from serial shadow\nmemoized:\n%s\nserial:\n%s",
					sql, name, got, want)
			}
		}
	}
	if err := fast.Verify(); err != nil {
		t.Fatal(fmt.Errorf("fast: %w", err))
	}
	if err := slow.Verify(); err != nil {
		t.Fatal(fmt.Errorf("slow: %w", err))
	}
}
