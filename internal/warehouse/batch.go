package warehouse

import (
	"fmt"

	"mindetail/internal/faultinject"
	"mindetail/internal/maintain"
	"mindetail/internal/tuple"
)

// Group commit and delta batching.
//
// ApplyDeltaBatch applies several externally produced deltas under one
// write-lock acquisition and — when the warehouse's ChangeLog supports it —
// one group commit: every delta's intent is appended (and made durable per
// the log's policy) before its apply, as in the single-delta path, but the
// commit records of the whole batch are appended together and flushed with
// a single fsync. Per-delta atomicity across views is unchanged: each delta
// either commits on every view or on none. The batch as a whole is NOT
// all-or-nothing in memory — delta k failing does not undo deltas 1..k-1 —
// but it IS all-or-nothing against a crash before the group commit: none of
// the batch's intents have outcomes yet, so recovery discards them whole.
//
// Adjacent insert-only deltas to the same table are coalesced into one
// propagation: the view engines expand and join the concatenated rows once
// (in submission order, so per-group arithmetic is bit-identical to
// applying the members one by one), while each member keeps its own WAL
// intent, LSN, and commit record — recovery replays members individually
// and reaches the same state. Mixed deltas never coalesce: merging a
// delete-carrying delta with its neighbors would reorder deletions relative
// to insertions across member boundaries. A failed coalesced propagation
// falls back to applying the members one by one, preserving the per-delta
// error contract.

// BatchCommitter is the optional group-commit surface of a ChangeLog
// (implemented by internal/wal.Log): commit records for several LSNs are
// appended together and made durable with one sync. Logs without it fall
// back to per-delta Commit calls.
type BatchCommitter interface {
	CommitBatch(lsns []uint64) error
}

// SetEngineShards reconfigures the shard fan-out of every existing view
// engine and of engines created afterwards (see maintain.Engine.Shards;
// n <= 1 restores serial applies). Safe to call between mutations.
func (w *Warehouse) SetEngineShards(n int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.engineShards = n
	for _, name := range w.order {
		w.views[name].Engine.Shards = n
	}
}

// coalescible reports whether a delta may join an insert-only coalescing
// group.
func coalescible(d maintain.Delta) bool {
	return len(d.Inserts) > 0 && len(d.Deletes) == 0 && len(d.Updates) == 0
}

// coalesceGroups partitions the batch indexes into propagation groups:
// runs of adjacent insert-only deltas to the same table merge; every other
// delta forms a singleton group. Invalid indexes (nil table, prior error)
// are skipped entirely.
func coalesceGroups(ds []maintain.Delta, valid []bool) [][]int {
	var groups [][]int
	for i := range ds {
		if !valid[i] {
			continue
		}
		n := len(groups)
		if n > 0 && coalescible(ds[i]) {
			last := groups[n-1]
			j := last[len(last)-1]
			if coalescible(ds[j]) && ds[j].Table == ds[i].Table {
				groups[n-1] = append(last, i)
				continue
			}
		}
		groups = append(groups, []int{i})
	}
	return groups
}

// mergeInserts concatenates the insert rows of a coalescing group in
// member order.
func mergeInserts(ds []maintain.Delta, g []int) maintain.Delta {
	n := 0
	for _, i := range g {
		n += len(ds[i].Inserts)
	}
	merged := maintain.Delta{Table: ds[g[0]].Table}
	merged.Inserts = make([]tuple.Tuple, 0, n)
	for _, i := range g {
		merged.Inserts = append(merged.Inserts, ds[i].Inserts...)
	}
	return merged
}

// ApplyDeltaBatch applies a batch of externally produced deltas (see the
// package comment above for the protocol). The returned slice has one
// entry per input delta: nil when that delta committed, its error
// otherwise. Deltas after a failed one are still applied — the batch is a
// queue drain, not a transaction.
func (w *Warehouse) ApplyDeltaBatch(ds []maintain.Delta) []error {
	errs := make([]error, len(ds))
	if len(ds) == 0 {
		return errs
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.met.batchSize.Observe(int64(len(ds)))
	w.met.batchDeltas.Add(int64(len(ds)))

	valid := make([]bool, len(ds))
	for i, d := range ds {
		if w.cat.Table(d.Table) == nil {
			errs[i] = fmt.Errorf("warehouse: unknown table %s", d.Table)
			continue
		}
		valid[i] = true
	}

	// lsns[i] is delta i's intent LSN once logged; pending lists the batch
	// indexes that applied and await their commit record, in LSN order.
	lsns := make([]uint64, len(ds))
	var pending []int

	propagateOne := func(i int) {
		if err := w.propagate(ds[i]); err != nil {
			if w.wal != nil {
				_ = w.wal.Abort(lsns[i])
			}
			errs[i] = err
			return
		}
		pending = append(pending, i)
	}

	for _, g := range coalesceGroups(ds, valid) {
		// Intent-before-apply, per member: a member whose intent cannot be
		// logged is not applied.
		if w.wal != nil {
			applicable := g[:0]
			for _, i := range g {
				lsn, err := w.wal.BeginDelta(ds[i], false)
				if err != nil {
					errs[i] = fmt.Errorf("warehouse: wal append: %w", err)
					continue
				}
				lsns[i] = lsn
				if ferr := w.fi.Fire(faultinject.WALLogged); ferr != nil {
					_ = w.wal.Abort(lsn)
					errs[i] = ferr
					continue
				}
				applicable = append(applicable, i)
			}
			g = applicable
		}
		switch {
		case len(g) == 0:
		case len(g) == 1:
			propagateOne(g[0])
		default:
			// Coalesced propagation: one expand/join/adjust pass over the
			// concatenated rows. On failure the engines rolled the merged
			// delta back, so the members can be retried one by one.
			if err := w.propagate(mergeInserts(ds, g)); err == nil {
				w.met.batchCoalesced.Add(int64(len(g)))
				pending = append(pending, g...)
			} else {
				for _, i := range g {
					propagateOne(i)
				}
			}
		}
	}

	if w.wal == nil || len(pending) == 0 {
		return errs
	}
	if ferr := w.fi.Fire(faultinject.BatchCommit); ferr != nil {
		for _, i := range pending {
			errs[i] = fmt.Errorf("warehouse: delta applied in memory but WAL commit failed (not durable): %w", ferr)
		}
		return errs
	}
	commit := make([]uint64, len(pending))
	for k, i := range pending {
		commit[k] = lsns[i]
	}
	var cerr error
	if bc, ok := w.wal.(BatchCommitter); ok {
		cerr = bc.CommitBatch(commit)
	} else {
		for _, lsn := range commit {
			if cerr = w.wal.Commit(lsn); cerr != nil {
				break
			}
		}
	}
	if cerr != nil {
		for _, i := range pending {
			errs[i] = fmt.Errorf("warehouse: delta applied in memory but WAL commit failed (not durable): %w", cerr)
		}
		return errs
	}
	w.lsn.Store(commit[len(commit)-1])
	return errs
}
