package warehouse

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"unicode/utf8"

	"mindetail/internal/maintain"
	"mindetail/internal/tuple"
	"mindetail/internal/types"
)

func counters(w *Warehouse) map[string]int64 { return w.MetricsSnapshot().Counters }

// TestWarehouseCounters: one DML statement moves the propagate, staging,
// commit and snapshot-invalidation counters by exactly the expected
// amounts, and the query counters distinguish the lock-free hit, the
// rebuild, and the locked slow path.
func TestWarehouseCounters(t *testing.T) {
	w := newRetail(t)
	// Drain the initial rebuild so the query-path deltas below are clean.
	if _, err := w.Query("product_sales"); err != nil {
		t.Fatal(err)
	}

	before := counters(w)
	if _, err := w.Exec(`INSERT INTO sale VALUES (6, 2, 100, 7, 30)`); err != nil {
		t.Fatal(err)
	}
	after := counters(w)
	for name, want := range map[string]int64{
		"warehouse.propagates":            1,
		"warehouse.propagate.errors":      0,
		"warehouse.views.staged":          1,
		"warehouse.views.committed":       1,
		"warehouse.views.rolled_back":     0,
		"warehouse.snapshots.invalidated": 1,
	} {
		if got := after[name] - before[name]; got != want {
			t.Errorf("%s moved by %d, want %d", name, got, want)
		}
	}
	hist := w.MetricsSnapshot().Histograms["warehouse.propagate.ns"]
	if hist.Count == 0 {
		t.Error("propagate latency never observed with observability on")
	}

	// First Query after the invalidation rebuilds and publishes a fresh
	// snapshot; the second is a lock-free hit.
	before = counters(w)
	if _, err := w.Query("product_sales"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Query("product_sales"); err != nil {
		t.Fatal(err)
	}
	after = counters(w)
	if got := after["warehouse.query.snapshot_rebuilds"] - before["warehouse.query.snapshot_rebuilds"]; got != 1 {
		t.Errorf("snapshot_rebuilds moved by %d, want 1", got)
	}
	if got := after["warehouse.snapshots.published"] - before["warehouse.snapshots.published"]; got != 1 {
		t.Errorf("snapshots.published moved by %d, want 1", got)
	}
	if got := after["warehouse.query.snapshot_hits"] - before["warehouse.query.snapshot_hits"]; got != 1 {
		t.Errorf("snapshot_hits moved by %d, want 1", got)
	}

	w.DisableSnapshots = true
	before = counters(w)
	if _, err := w.Query("product_sales"); err != nil {
		t.Fatal(err)
	}
	if got := counters(w)["warehouse.query.locked"] - before["warehouse.query.locked"]; got != 1 {
		t.Errorf("query.locked moved by %d, want 1", got)
	}
	w.DisableSnapshots = false

	// A rejected statement rolls back: staged views are counted as rolled
	// back, the propagate as an error, and nothing commits.
	before = counters(w)
	if _, err := w.Exec(`INSERT INTO sale VALUES (7, 99, 100, 7, 1)`); err == nil {
		t.Fatal("insert with dangling timeid accepted")
	}
	after = counters(w)
	if got := after["warehouse.views.committed"] - before["warehouse.views.committed"]; got != 0 {
		t.Errorf("views.committed moved by %d on failed insert", got)
	}
}

// TestWarehouseSetObsTogglesTimings: SetObs(false) stops the clock-based
// instrumentation (propagate latency, engine stage histograms) while the
// always-on counters keep counting; SetObs(true) resumes both.
func TestWarehouseSetObsTogglesTimings(t *testing.T) {
	w := newRetail(t)
	insert := func(id int) {
		t.Helper()
		if _, err := w.Exec(fmt.Sprintf(`INSERT INTO sale VALUES (%d, 2, 100, 7, 1)`, id)); err != nil {
			t.Fatal(err)
		}
	}

	w.SetObs(false)
	before := w.MetricsSnapshot()
	insert(40)
	mid := w.MetricsSnapshot()
	if got := mid.Histograms["warehouse.propagate.ns"].Count - before.Histograms["warehouse.propagate.ns"].Count; got != 0 {
		t.Errorf("propagate.ns observed %d times with obs off", got)
	}
	if got := mid.Histograms["maintain.apply_ns"].Count - before.Histograms["maintain.apply_ns"].Count; got != 0 {
		t.Errorf("apply_ns observed %d times with obs off", got)
	}
	if got := mid.Counters["warehouse.propagates"] - before.Counters["warehouse.propagates"]; got != 1 {
		t.Errorf("propagates moved by %d with obs off, want 1 (counters stay on)", got)
	}

	w.SetObs(true)
	insert(41)
	after := w.MetricsSnapshot()
	if got := after.Histograms["warehouse.propagate.ns"].Count - mid.Histograms["warehouse.propagate.ns"].Count; got != 1 {
		t.Errorf("propagate.ns observed %d times after re-enable, want 1", got)
	}
	if got := after.Histograms["maintain.apply_ns"].Count - mid.Histograms["maintain.apply_ns"].Count; got != 1 {
		t.Errorf("apply_ns observed %d times after re-enable, want 1", got)
	}
}

// fanWarehouse builds a warehouse with k identical copies of the paper
// view; serial pins propagation to one worker.
func fanWarehouse(t *testing.T, k int, serial bool) *Warehouse {
	t.Helper()
	w := New()
	if _, err := w.Exec(setupSQL); err != nil {
		t.Fatal(err)
	}
	sel := strings.SplitN(viewSQL, " AS\n", 2)[1]
	for i := 0; i < k; i++ {
		if _, err := w.Exec(fmt.Sprintf("CREATE MATERIALIZED VIEW fan%d AS %s", i, sel)); err != nil {
			t.Fatal(err)
		}
	}
	if serial {
		w.PropagateWorkers = 1
	}
	return w
}

// TestWarehouseMemoCountersOracle: the memo hit/miss counters of a
// parallel propagation must agree with a serial shadow run (the memo's
// work-sharing is deterministic even when staging fans out), and with the
// closed form for k identical views: per delta, every unique memo key is
// missed exactly once, every engine probes every key except the expand key
// (it is nested inside the filter computation and only ever probed by the
// engine computing the filter), so with m unique keys the probes are
// k*(m-1)+1 and the hits (k-1)*(m-1). Summed over D deltas:
// hits = (k-1) * (misses - D). Serial runs resolve every hit after the
// entry is complete, so they must never count a wait.
func TestWarehouseMemoCountersOracle(t *testing.T) {
	const k = 4
	deltas := []maintain.Delta{
		{Table: "sale", Inserts: []tuple.Tuple{
			{types.Int(50), types.Int(1), types.Int(100), types.Int(7), types.Float(3)},
		}},
		{Table: "sale", Deletes: []tuple.Tuple{
			{types.Int(3), types.Int(2), types.Int(101), types.Int(7), types.Float(5)},
		}},
		{Table: "product", Updates: []maintain.Update{{
			Old: tuple.Tuple{types.Int(101), types.Str("bolt"), types.Str("tools")},
			New: tuple.Tuple{types.Int(101), types.Str("nut"), types.Str("tools")},
		}}},
	}
	run := func(serial bool) (hits, misses, waits int64) {
		w := fanWarehouse(t, k, serial)
		w.DetachSources()
		for _, d := range deltas {
			if err := w.ApplyDelta(d); err != nil {
				t.Fatal(err)
			}
		}
		c := counters(w)
		return c["maintain.memo.hits"], c["maintain.memo.misses"], c["maintain.memo.waits"]
	}
	ph, pm, _ := run(false)
	sh, sm, sw := run(true)
	if ph != sh || pm != sm {
		t.Errorf("parallel memo counters (hits=%d misses=%d) disagree with serial shadow (hits=%d misses=%d)",
			ph, pm, sh, sm)
	}
	if sw != 0 {
		t.Errorf("serial shadow counted %d memo waits", sw)
	}
	if pm == 0 {
		t.Fatal("no memo misses recorded across deltas")
	}
	if want := (k - 1) * (pm - int64(len(deltas))); ph != want {
		t.Errorf("hits = %d, want (k-1)*(misses-D) = %d (misses=%d, D=%d)", ph, want, pm, len(deltas))
	}
}

// TestWarehouseConcurrentMetricsReaders hammers Query and MetricsSnapshot
// from concurrent readers while deltas propagate — the observability
// surface must be race-clean against the lock-free read path (this test
// earns its keep under -race).
func TestWarehouseConcurrentMetricsReaders(t *testing.T) {
	w := fanWarehouse(t, 4, false)
	w.DetachSources()
	old := tuple.Tuple{types.Int(1), types.Int(1), types.Int(100), types.Int(7), types.Float(10)}
	alt := old.Clone()
	alt[4] = types.Float(11)

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := w.Query("fan0"); err != nil {
					t.Error(err)
					return
				}
				s := w.MetricsSnapshot()
				if s.Counters["warehouse.propagates"] < 0 {
					t.Error("negative counter")
					return
				}
				_ = s.Format()
			}
		}()
	}
	imgs := [2]tuple.Tuple{old, alt}
	for i := 0; i < 50; i++ {
		d := maintain.Delta{Table: "sale", Updates: []maintain.Update{
			{Old: imgs[i%2], New: imgs[(i+1)%2]},
		}}
		if err := w.ApplyDelta(d); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	readers.Wait()

	s := w.MetricsSnapshot()
	if got := s.Counters["warehouse.propagates"]; got != 50 {
		t.Errorf("propagates = %d, want 50", got)
	}
	if s.Gauges["warehouse.propagate.pool_occupancy"] != 0 {
		t.Errorf("pool occupancy = %d after quiescence", s.Gauges["warehouse.propagate.pool_occupancy"])
	}
}

// TestAbbrevSQL: the error-message abbreviator must never split a
// multi-byte rune at the cut point (the historical bug produced invalid
// UTF-8 in error strings for non-ASCII literals).
func TestAbbrevSQL(t *testing.T) {
	if got := abbrevSQL("SELECT 1"); got != "SELECT 1" {
		t.Errorf("short SQL mangled: %q", got)
	}
	if got := abbrevSQL("SELECT   1\n\tFROM  t"); got != "SELECT 1 FROM t" {
		t.Errorf("whitespace not collapsed: %q", got)
	}
	// 60 two-byte runes = 120 bytes; the naive cut at byte 57 lands in the
	// middle of a rune.
	long := "SELECT '" + strings.Repeat("ø", 60) + "'"
	got := abbrevSQL(long)
	if !utf8.ValidString(got) {
		t.Fatalf("abbreviation is invalid UTF-8: %q", got)
	}
	if !strings.HasSuffix(got, "...") {
		t.Errorf("abbreviation not ellipsized: %q", got)
	}
	if len(got) > 60 {
		t.Errorf("abbreviation is %d bytes, want <= 60", len(got))
	}
	// Four-byte runes as well.
	long = strings.Repeat("𝄞", 30)
	if got := abbrevSQL(long); !utf8.ValidString(got) {
		t.Fatalf("4-byte-rune abbreviation is invalid UTF-8: %q", got)
	}
}
