// Package aggregates implements the aggregate classification of the paper's
// Section 3.1: self-maintainable aggregates (SMA), self-maintainable
// aggregate sets (SMAS), and completely self-maintainable aggregate sets
// (CSMAS), together with the replacement rules of Table 2.
//
// An aggregate f(a) is an SMA w.r.t. a change class if its new value can be
// computed from its old value and the change alone; it is part of an SMAS
// if a set of companion aggregates makes that possible. A CSMAS is
// self-maintainable under both insertions and deletions (Definition 1).
// Using DISTINCT makes any aggregate non-distributive and therefore a
// non-CSMAS.
package aggregates

import (
	"fmt"

	"mindetail/internal/ra"
)

// Properties reproduces one row of the paper's Table 1: whether the
// aggregate is an SMA (alone) or an SMAS (with companions) with respect to
// insertions and deletions, and which companion aggregates the SMAS needs.
type Properties struct {
	Func AggDesc

	SMAInsert  bool
	SMADelete  bool
	SMASInsert bool
	SMASDelete bool

	// Companions lists the aggregates that must accompany Func for the
	// SMAS columns to hold (e.g. SUM needs COUNT for deletions).
	Companions []ra.AggFunc
}

// AggDesc names an aggregate for classification: the function and whether
// DISTINCT is applied.
type AggDesc struct {
	Func     ra.AggFunc
	Distinct bool
}

// String renders the descriptor, e.g. "SUM" or "COUNT(DISTINCT)".
func (d AggDesc) String() string {
	if d.Distinct {
		return string(d.Func) + "(DISTINCT)"
	}
	return string(d.Func)
}

// Classify reproduces Table 1 for the five SQL aggregates without DISTINCT.
// DISTINCT aggregates are not SMAs for deletions and not SMASs for
// deletions either (duplicate information is lost), so they classify like
// MIN/MAX but are additionally non-distributive.
func Classify(d AggDesc) Properties {
	p := Properties{Func: d}
	if d.Distinct {
		// A DISTINCT aggregate can absorb insertions only if the set of
		// distinct values is known, which the aggregate value alone does
		// not provide; it is not an SMA/SMAS in either direction.
		return p
	}
	switch d.Func {
	case ra.FuncCount:
		p.SMAInsert, p.SMADelete = true, true
		p.SMASInsert, p.SMASDelete = true, true
	case ra.FuncSum:
		// SUM is an SMA for insertions; for deletions it needs COUNT to
		// detect when the group becomes empty (Table 1).
		p.SMAInsert = true
		p.SMASInsert, p.SMASDelete = true, true
		p.Companions = []ra.AggFunc{ra.FuncCount}
	case ra.FuncAvg:
		// AVG is never an SMA; with SUM and COUNT it is an SMAS for both
		// change classes.
		p.SMASInsert, p.SMASDelete = true, true
		p.Companions = []ra.AggFunc{ra.FuncSum, ra.FuncCount}
	case ra.FuncMin, ra.FuncMax:
		// MIN/MAX absorb insertions but deletions may remove the extremum.
		p.SMAInsert = true
		p.SMASInsert = true
	}
	return p
}

// IsCSMAS reproduces Table 2: COUNT, SUM, and AVG (without DISTINCT) form
// completely self-maintainable aggregate sets after replacement; MIN/MAX
// and every DISTINCT aggregate do not.
func IsCSMAS(a *ra.Aggregate) bool {
	if a.Distinct {
		return false
	}
	switch a.Func {
	case ra.FuncCount, ra.FuncSum, ra.FuncAvg:
		return true
	default:
		return false
	}
}

// Replacement reproduces the "Replaced By" column of Table 2: the set of
// distributive aggregates that maintain a CSMAS. COUNT becomes COUNT(*)
// (valid because base tables contain no nulls, Section 3.1); SUM and AVG
// become {SUM, COUNT(*)}. Non-CSMAS aggregates are not replaced and are
// returned unchanged.
func Replacement(a *ra.Aggregate) []ra.Aggregate {
	if !IsCSMAS(a) {
		return []ra.Aggregate{*a}
	}
	switch a.Func {
	case ra.FuncCount:
		return []ra.Aggregate{{Func: ra.FuncCount}}
	case ra.FuncSum:
		return []ra.Aggregate{
			{Func: ra.FuncSum, Arg: a.Arg},
			{Func: ra.FuncCount},
		}
	case ra.FuncAvg:
		return []ra.Aggregate{
			{Func: ra.FuncSum, Arg: a.Arg},
			{Func: ra.FuncCount},
		}
	default:
		return []ra.Aggregate{*a}
	}
}

// Distributive reports whether the aggregate function (without DISTINCT)
// can be computed by partitioning its input, aggregating each partition,
// and combining — the property smart duplicate compression relies on
// (Section 3.2). All five SQL aggregates except AVG are distributive; AVG
// is not but is replaceable by distributive ones.
func Distributive(d AggDesc) bool {
	if d.Distinct {
		return false
	}
	switch d.Func {
	case ra.FuncCount, ra.FuncSum, ra.FuncMin, ra.FuncMax:
		return true
	default:
		return false
	}
}

// Table1Row is a formatted row of the paper's Table 1, produced by
// FormatTable1 for the benchmark harness.
type Table1Row struct {
	Aggregate string
	SMA       string // "+/+", "+/-", ...
	SMAS      string
	Note      string
}

// FormatTable1 regenerates the contents of the paper's Table 1.
func FormatTable1() []Table1Row {
	mk := func(ins, del bool) string {
		s := ""
		if ins {
			s += "+"
		} else {
			s += "-"
		}
		s += "/"
		if del {
			s += "+"
		} else {
			s += "-"
		}
		return s
	}
	rows := []Table1Row{}
	for _, f := range []ra.AggFunc{ra.FuncCount, ra.FuncSum, ra.FuncAvg, ra.FuncMin} {
		p := Classify(AggDesc{Func: f})
		name := string(f)
		note := ""
		switch f {
		case ra.FuncSum:
			note = "SMAS needs COUNT for deletions"
		case ra.FuncAvg:
			note = "not an SMA; SMAS with COUNT and SUM"
		case ra.FuncMin:
			name = "MAX/MIN"
			note = "deletion may remove the extremum"
		}
		rows = append(rows, Table1Row{
			Aggregate: name,
			SMA:       mk(p.SMAInsert, p.SMADelete),
			SMAS:      mk(p.SMASInsert, p.SMASDelete),
			Note:      note,
		})
	}
	return rows
}

// Table2Row is a formatted row of the paper's Table 2.
type Table2Row struct {
	Aggregate  string
	ReplacedBy string
	Class      string // "CSMAS" or "non-CSMAS"
}

// FormatTable2 regenerates the contents of the paper's Table 2.
func FormatTable2() []Table2Row {
	arg := ra.ColRef{Name: "a"}
	describe := func(a ra.Aggregate) Table2Row {
		row := Table2Row{Aggregate: a.String()}
		if IsCSMAS(&a) {
			row.Class = "CSMAS"
			parts := Replacement(&a)
			for i, p := range parts {
				if i > 0 {
					row.ReplacedBy += ", "
				}
				row.ReplacedBy += p.String()
			}
		} else {
			row.Class = "non-CSMAS"
			row.ReplacedBy = "Not replaced"
		}
		return row
	}
	rows := []Table2Row{
		describe(ra.Aggregate{Func: ra.FuncCount, Arg: arg}),
		describe(ra.Aggregate{Func: ra.FuncSum, Arg: arg}),
		describe(ra.Aggregate{Func: ra.FuncAvg, Arg: arg}),
	}
	minmax := describe(ra.Aggregate{Func: ra.FuncMax, Arg: arg})
	minmax.Aggregate = "MAX/MIN"
	rows = append(rows, minmax)
	return rows
}

// ValidateSupported rejects aggregate functions outside the paper's five.
func ValidateSupported(a *ra.Aggregate) error {
	switch a.Func {
	case ra.FuncCount, ra.FuncSum, ra.FuncAvg, ra.FuncMin, ra.FuncMax:
		return nil
	default:
		return fmt.Errorf("aggregates: unsupported aggregate function %q", a.Func)
	}
}
