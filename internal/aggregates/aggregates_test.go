package aggregates

import (
	"testing"

	"mindetail/internal/ra"
)

func TestClassifyTable1(t *testing.T) {
	// The exact content of the paper's Table 1.
	cases := []struct {
		f                                ra.AggFunc
		smaIns, smaDel, smasIns, smasDel bool
		companions                       int
	}{
		{ra.FuncCount, true, true, true, true, 0},
		{ra.FuncSum, true, false, true, true, 1},
		{ra.FuncAvg, false, false, true, true, 2},
		{ra.FuncMin, true, false, true, false, 0},
		{ra.FuncMax, true, false, true, false, 0},
	}
	for _, c := range cases {
		p := Classify(AggDesc{Func: c.f})
		if p.SMAInsert != c.smaIns || p.SMADelete != c.smaDel ||
			p.SMASInsert != c.smasIns || p.SMASDelete != c.smasDel {
			t.Errorf("%s: got %+v", c.f, p)
		}
		if len(p.Companions) != c.companions {
			t.Errorf("%s: companions = %v", c.f, p.Companions)
		}
	}
}

func TestClassifyDistinct(t *testing.T) {
	for _, f := range []ra.AggFunc{ra.FuncCount, ra.FuncSum, ra.FuncAvg, ra.FuncMin, ra.FuncMax} {
		p := Classify(AggDesc{Func: f, Distinct: true})
		if p.SMAInsert || p.SMADelete || p.SMASInsert || p.SMASDelete {
			t.Errorf("%s DISTINCT should not be self-maintainable: %+v", f, p)
		}
	}
}

func TestIsCSMASTable2(t *testing.T) {
	arg := ra.ColRef{Name: "a"}
	cases := []struct {
		agg  ra.Aggregate
		want bool
	}{
		{ra.Aggregate{Func: ra.FuncCount, Arg: arg}, true},
		{ra.Aggregate{Func: ra.FuncCount}, true}, // COUNT(*)
		{ra.Aggregate{Func: ra.FuncSum, Arg: arg}, true},
		{ra.Aggregate{Func: ra.FuncAvg, Arg: arg}, true},
		{ra.Aggregate{Func: ra.FuncMin, Arg: arg}, false},
		{ra.Aggregate{Func: ra.FuncMax, Arg: arg}, false},
		{ra.Aggregate{Func: ra.FuncCount, Arg: arg, Distinct: true}, false},
		{ra.Aggregate{Func: ra.FuncSum, Arg: arg, Distinct: true}, false},
	}
	for _, c := range cases {
		if got := IsCSMAS(&c.agg); got != c.want {
			t.Errorf("IsCSMAS(%s) = %v, want %v", c.agg.String(), got, c.want)
		}
	}
}

func TestReplacement(t *testing.T) {
	arg := ra.ColRef{Name: "price"}
	// COUNT(a) -> COUNT(*).
	r := Replacement(&ra.Aggregate{Func: ra.FuncCount, Arg: arg})
	if len(r) != 1 || !r[0].IsCountStar() {
		t.Errorf("COUNT replacement = %v", r)
	}
	// SUM(a) -> SUM(a), COUNT(*).
	r = Replacement(&ra.Aggregate{Func: ra.FuncSum, Arg: arg})
	if len(r) != 2 || r[0].Func != ra.FuncSum || !r[1].IsCountStar() {
		t.Errorf("SUM replacement = %v", r)
	}
	// AVG(a) -> SUM(a), COUNT(*).
	r = Replacement(&ra.Aggregate{Func: ra.FuncAvg, Arg: arg})
	if len(r) != 2 || r[0].Func != ra.FuncSum || !r[1].IsCountStar() {
		t.Errorf("AVG replacement = %v", r)
	}
	// MIN not replaced.
	r = Replacement(&ra.Aggregate{Func: ra.FuncMin, Arg: arg})
	if len(r) != 1 || r[0].Func != ra.FuncMin {
		t.Errorf("MIN replacement = %v", r)
	}
	// DISTINCT never replaced (paper Section 3.1).
	r = Replacement(&ra.Aggregate{Func: ra.FuncSum, Arg: arg, Distinct: true})
	if len(r) != 1 || !r[0].Distinct {
		t.Errorf("SUM(DISTINCT) replacement = %v", r)
	}
}

func TestDistributive(t *testing.T) {
	cases := []struct {
		d    AggDesc
		want bool
	}{
		{AggDesc{Func: ra.FuncCount}, true},
		{AggDesc{Func: ra.FuncSum}, true},
		{AggDesc{Func: ra.FuncMin}, true},
		{AggDesc{Func: ra.FuncMax}, true},
		{AggDesc{Func: ra.FuncAvg}, false},
		{AggDesc{Func: ra.FuncCount, Distinct: true}, false},
	}
	for _, c := range cases {
		if got := Distributive(c.d); got != c.want {
			t.Errorf("Distributive(%s) = %v, want %v", c.d, got, c.want)
		}
	}
}

func TestFormatTable1(t *testing.T) {
	rows := FormatTable1()
	if len(rows) != 4 {
		t.Fatalf("Table 1 rows = %d", len(rows))
	}
	want := map[string][2]string{
		"COUNT":   {"+/+", "+/+"},
		"SUM":     {"+/-", "+/+"},
		"AVG":     {"-/-", "+/+"},
		"MAX/MIN": {"+/-", "+/-"},
	}
	for _, r := range rows {
		w, ok := want[r.Aggregate]
		if !ok {
			t.Errorf("unexpected row %q", r.Aggregate)
			continue
		}
		if r.SMA != w[0] || r.SMAS != w[1] {
			t.Errorf("%s: SMA=%s SMAS=%s, want %v", r.Aggregate, r.SMA, r.SMAS, w)
		}
	}
}

func TestFormatTable2(t *testing.T) {
	rows := FormatTable2()
	if len(rows) != 4 {
		t.Fatalf("Table 2 rows = %d", len(rows))
	}
	want := map[string][2]string{
		"COUNT(a)": {"COUNT(*)", "CSMAS"},
		"SUM(a)":   {"SUM(a), COUNT(*)", "CSMAS"},
		"AVG(a)":   {"SUM(a), COUNT(*)", "CSMAS"},
		"MAX/MIN":  {"Not replaced", "non-CSMAS"},
	}
	for _, r := range rows {
		w, ok := want[r.Aggregate]
		if !ok {
			t.Errorf("unexpected row %q", r.Aggregate)
			continue
		}
		if r.ReplacedBy != w[0] || r.Class != w[1] {
			t.Errorf("%s: got (%q, %q), want %v", r.Aggregate, r.ReplacedBy, r.Class, w)
		}
	}
}

func TestValidateSupported(t *testing.T) {
	if err := ValidateSupported(&ra.Aggregate{Func: ra.FuncSum, Arg: ra.ColRef{Name: "a"}}); err != nil {
		t.Errorf("SUM rejected: %v", err)
	}
	if err := ValidateSupported(&ra.Aggregate{Func: "MEDIAN"}); err == nil {
		t.Error("MEDIAN accepted")
	}
}

func TestAggDescString(t *testing.T) {
	if got := (AggDesc{Func: ra.FuncSum}).String(); got != "SUM" {
		t.Errorf("String = %q", got)
	}
	if got := (AggDesc{Func: ra.FuncCount, Distinct: true}).String(); got != "COUNT(DISTINCT)" {
		t.Errorf("String = %q", got)
	}
}
