package sizing

import (
	"math"
	"strings"
	"testing"

	"mindetail/internal/workload"
)

// TestPaperNumbersExact reproduces the Section 1.1 arithmetic to the digit:
//
//	fact tuples: 730 x 300 x 3000 x 20 = 13,140,000,000
//	fact bytes:  x 5 fields x 4 bytes  = 262,800,000,000 (~245 GBytes)
//	aux tuples:  365 x 30,000          = 10,950,000
//	aux bytes:   x 4 fields x 4 bytes  = 175,200,000 (~167 MBytes)
func TestPaperNumbersExact(t *testing.T) {
	fact := PaperFactTable()
	if fact.Tuples != 13_140_000_000 {
		t.Errorf("fact tuples = %d", fact.Tuples)
	}
	if fact.Bytes() != 262_800_000_000 {
		t.Errorf("fact bytes = %d", fact.Bytes())
	}
	if g := fact.GBytes(); math.Abs(g-244.76) > 0.1 {
		t.Errorf("fact GBytes = %.2f, paper says ~245", g)
	}
	aux := PaperAuxView()
	if aux.Tuples != 10_950_000 {
		t.Errorf("aux tuples = %d", aux.Tuples)
	}
	if aux.Bytes() != 175_200_000 {
		t.Errorf("aux bytes = %d", aux.Bytes())
	}
	if m := aux.MBytes(); math.Abs(m-167.08) > 0.2 {
		t.Errorf("aux MBytes = %.2f, paper says ~167", m)
	}
}

func TestReductionFactor(t *testing.T) {
	// 245 GB / 167 MB = exactly 1500x in the 4-byte model.
	r := Reduction(workload.PaperParams())
	if math.Abs(r-1500) > 0.01 {
		t.Errorf("reduction = %.2f, want 1500", r)
	}
}

func TestModelString(t *testing.T) {
	s := PaperFactTable().String()
	if !strings.Contains(s, "13140000000") || !strings.Contains(s, "5 fields") {
		t.Errorf("String = %q", s)
	}
}

func TestExtrapolate(t *testing.T) {
	small := workload.ScaledDown(5000)
	full := workload.PaperParams()
	// A measured count equal to the model must extrapolate to the model.
	got := Extrapolate(FactTable(small).Tuples, small, full, false)
	if got != full.FactTuples() {
		t.Errorf("fact extrapolation = %d, want %d", got, full.FactTuples())
	}
	gotAux := Extrapolate(AuxView(small).Tuples, small, full, true)
	if gotAux != PaperAuxView().Tuples {
		t.Errorf("aux extrapolation = %d, want %d", gotAux, PaperAuxView().Tuples)
	}
	if Extrapolate(10, workload.RetailParams{}, full, false) != 0 {
		t.Error("zero small model must not divide by zero")
	}
}
