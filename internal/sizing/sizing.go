// Package sizing implements the storage arithmetic of the paper's
// Section 1.1: tuple counts times field counts times 4 bytes per field.
// It reproduces the published numbers exactly (13.14 billion fact tuples,
// a 245 GByte fact table, a 10.95 million tuple / 167 MByte auxiliary
// view) and extrapolates measured scaled-down runs back to paper scale.
package sizing

import (
	"fmt"

	"mindetail/internal/workload"
)

// BytesPerField is the paper's per-field cost model.
const BytesPerField = 4

// Model is a tuple-count × field-count × 4-bytes storage estimate.
type Model struct {
	Name   string
	Tuples int64
	Fields int
}

// Bytes returns the modeled size in bytes.
func (m Model) Bytes() int64 { return m.Tuples * int64(m.Fields) * BytesPerField }

// GBytes returns the size in binary gigabytes, the unit the paper uses
// ("245 GBytes" = 13.14e9 × 5 × 4 bytes / 2³⁰).
func (m Model) GBytes() float64 { return float64(m.Bytes()) / (1 << 30) }

// MBytes returns the size in binary megabytes.
func (m Model) MBytes() float64 { return float64(m.Bytes()) / (1 << 20) }

// String renders the model like the paper's running text.
func (m Model) String() string {
	return fmt.Sprintf("%s: %d tuples x %d fields x %d bytes = %d bytes",
		m.Name, m.Tuples, m.Fields, BytesPerField, m.Bytes())
}

// FactTable models the fact table of a retail workload: one tuple per
// transaction, 5 fields (id, timeid, productid, storeid, price).
func FactTable(p workload.RetailParams) Model {
	return Model{Name: "sale fact table", Tuples: p.FactTuples(), Fields: 5}
}

// AuxView models the saleDTL auxiliary view after local reduction, join
// reduction, and smart duplicate compression for the product_sales view:
// grouped by (timeid, productid) with SUM(price) and COUNT(*) — 4 fields.
// In the paper's worst case every product sells every selected day, giving
// selected-days × products tuples; the store dimension and the per-store,
// per-transaction multiplicities compress away entirely.
func AuxView(p workload.RetailParams) Model {
	selectedDays := int64((p.Days + 1) / 2) // the view selects one of the two years
	return Model{Name: "saleDTL auxiliary view", Tuples: selectedDays * int64(p.Products), Fields: 4}
}

// Reduction returns the fact-table-to-auxiliary-view size ratio.
func Reduction(p workload.RetailParams) float64 {
	return float64(FactTable(p).Bytes()) / float64(AuxView(p).Bytes())
}

// PaperFactTable reproduces the paper's published fact-table arithmetic.
func PaperFactTable() Model { return FactTable(workload.PaperParams()) }

// PaperAuxView reproduces the paper's published auxiliary-view arithmetic.
func PaperAuxView() Model { return AuxView(workload.PaperParams()) }

// Extrapolate scales a measured tuple count at scaled-down parameters to
// the paper's parameters, assuming tuple counts follow the analytic model
// (which the measured run validates).
func Extrapolate(measuredTuples int64, small, full workload.RetailParams, aux bool) int64 {
	var smallModel, fullModel Model
	if aux {
		smallModel, fullModel = AuxView(small), AuxView(full)
	} else {
		smallModel, fullModel = FactTable(small), FactTable(full)
	}
	if smallModel.Tuples == 0 {
		return 0
	}
	return measuredTuples * fullModel.Tuples / smallModel.Tuples
}
