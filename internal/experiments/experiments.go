// Package experiments regenerates every table and figure of the paper and
// the design-choice ablations listed in DESIGN.md. Each experiment returns
// a printable report; cmd/benchharness prints them and the repository-root
// benchmarks reuse the same fixtures for timed runs.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"mindetail/internal/aggregates"
	"mindetail/internal/baseline"
	"mindetail/internal/core"
	"mindetail/internal/gpsj"
	"mindetail/internal/maintain"
	"mindetail/internal/ra"
	"mindetail/internal/schema"
	"mindetail/internal/sizing"
	"mindetail/internal/sqlparse"
	"mindetail/internal/storage"
	"mindetail/internal/tuple"
	"mindetail/internal/types"
	"mindetail/internal/workload"
)

// Env is a loaded retail environment shared by the experiments.
type Env struct {
	Params workload.RetailParams
	Cat    *schema.Catalog
	DB     *storage.DB
}

// NewEnv loads the retail workload at the given parameters.
func NewEnv(p workload.RetailParams) (*Env, error) {
	stmts, err := sqlparse.ParseAll(workload.DDL())
	if err != nil {
		return nil, err
	}
	cat := schema.NewCatalog()
	var fks []schema.ForeignKey
	for _, s := range stmts {
		ct := s.(*sqlparse.CreateTable)
		if err := cat.AddTable(ct.Table); err != nil {
			return nil, err
		}
		fks = append(fks, ct.FKs...)
	}
	for _, fk := range fks {
		if err := cat.AddForeignKey(fk); err != nil {
			return nil, err
		}
	}
	db := storage.NewDB(cat)
	if err := workload.Load(db, p); err != nil {
		return nil, err
	}
	return &Env{Params: p, Cat: cat, DB: db}, nil
}

// Src adapts the environment's DB for engine initialization.
func (e *Env) Src(table string) *ra.Relation { return ra.FromTable(e.DB.Table(table), table) }

// View parses and normalizes a view over the environment's catalog.
func (e *Env) View(name, sql string) (*gpsj.View, error) {
	s, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return gpsj.FromSelect(e.Cat, name, s.(*sqlparse.SelectStmt))
}

// MinimalEngine derives and initializes the paper's minimal-detail engine.
func (e *Env) MinimalEngine(viewSQL string) (*maintain.Engine, error) {
	v, err := e.View("v", viewSQL)
	if err != nil {
		return nil, err
	}
	p, err := core.Derive(v)
	if err != nil {
		return nil, err
	}
	eng, err := maintain.NewEngine(p)
	if err != nil {
		return nil, err
	}
	if err := eng.Init(e.Src); err != nil {
		return nil, err
	}
	return eng, nil
}

// PSJEngine derives and initializes the Quass-style PSJ baseline engine.
func (e *Env) PSJEngine(viewSQL string) (*maintain.Engine, error) {
	v, err := e.View("v", viewSQL)
	if err != nil {
		return nil, err
	}
	eng, err := baseline.PSJEngine(v)
	if err != nil {
		return nil, err
	}
	if err := eng.Init(e.Src); err != nil {
		return nil, err
	}
	return eng, nil
}

// Replica initializes the full-replication baseline.
func (e *Env) Replica(viewSQL string, perBatch bool) (*baseline.Replica, error) {
	v, err := e.View("v", viewSQL)
	if err != nil {
		return nil, err
	}
	r := baseline.NewReplica(v, e.Cat)
	r.RecomputePerBatch = perBatch
	if err := r.Init(e.Src); err != nil {
		return nil, err
	}
	return r, nil
}

// ---------------------------------------------------------------------------
// E1 / E2: Tables 1 and 2 — aggregate classification.

// Table1 regenerates the paper's Table 1.
func Table1() string {
	var b strings.Builder
	b.WriteString("Table 1: SMA/SMAS classification (insertion/deletion)\n")
	fmt.Fprintf(&b, "  %-9s %-6s %-6s %s\n", "Aggregate", "SMA", "SMAS", "Note")
	for _, r := range aggregates.FormatTable1() {
		fmt.Fprintf(&b, "  %-9s %-6s %-6s %s\n", r.Aggregate, r.SMA, r.SMAS, r.Note)
	}
	return b.String()
}

// Table2 regenerates the paper's Table 2.
func Table2() string {
	var b strings.Builder
	b.WriteString("Table 2: CSMAS classification and replacement\n")
	fmt.Fprintf(&b, "  %-9s %-18s %s\n", "Aggregate", "Replaced By", "Class")
	for _, r := range aggregates.FormatTable2() {
		fmt.Fprintf(&b, "  %-9s %-18s %s\n", r.Aggregate, r.ReplacedBy, r.Class)
	}
	b.WriteString("  (DISTINCT makes any aggregate non-distributive: always non-CSMAS)\n")
	return b.String()
}

// ---------------------------------------------------------------------------
// E3 / E4: Tables 3 and 4 — the sale auxiliary view before and after smart
// duplicate compression, on a small concrete instance.

// exampleSale builds a small sale instance with duplicate (timeid,
// productid, price) rows, in the spirit of the paper's Section 3.2 example.
func exampleSale() *ra.Relation {
	rel := ra.NewRelation(ra.Schema{
		{Table: "sale", Name: "id"},
		{Table: "sale", Name: "timeid"},
		{Table: "sale", Name: "productid"},
		{Table: "sale", Name: "price"},
	})
	rows := [][4]float64{
		{1, 1, 1, 2.00}, {2, 1, 1, 2.00}, {3, 1, 1, 2.50},
		{4, 1, 2, 1.00}, {5, 2, 1, 2.00}, {6, 2, 1, 2.00},
		{7, 2, 2, 1.00}, {8, 2, 2, 1.00}, {9, 2, 2, 1.00},
	}
	for _, r := range rows {
		rel.Rows = append(rel.Rows, tuple.Tuple{
			types.Int(int64(r[0])), types.Int(int64(r[1])),
			types.Int(int64(r[2])), types.Float(r[3]),
		})
	}
	return rel
}

// Table3 regenerates the shape of the paper's Table 3: the sale auxiliary
// view after local reduction and the addition of COUNT(*) (Algorithm 3.1,
// step 1), with price still stored as a plain attribute.
func Table3() (string, error) {
	out, err := ra.GroupBy(exampleSale(), []ra.ProjItem{
		{Name: "timeid", Expr: ra.ColRef{Name: "timeid"}},
		{Name: "productid", Expr: ra.ColRef{Name: "productid"}},
		{Name: "price", Expr: ra.ColRef{Name: "price"}},
		{Name: "COUNT(*)", Agg: &ra.Aggregate{Func: ra.FuncCount}},
	})
	if err != nil {
		return "", err
	}
	return "Table 3: sale auxiliary view after adding COUNT(*)\n" + out.Format(), nil
}

// Table4 regenerates the shape of the paper's Table 4: the same view after
// step 2 replaces price by SUM(price).
func Table4() (string, error) {
	out, err := ra.GroupBy(exampleSale(), []ra.ProjItem{
		{Name: "timeid", Expr: ra.ColRef{Name: "timeid"}},
		{Name: "productid", Expr: ra.ColRef{Name: "productid"}},
		{Name: "SUM(price)", Agg: &ra.Aggregate{Func: ra.FuncSum, Arg: ra.ColRef{Name: "price"}}},
		{Name: "COUNT(*)", Agg: &ra.Aggregate{Func: ra.FuncCount}},
	})
	if err != nil {
		return "", err
	}
	return "Table 4: sale auxiliary view after smart duplicate compression\n" + out.Format(), nil
}

// ---------------------------------------------------------------------------
// E5: Figure 2 — the extended join graph of product_sales.

// Figure2 regenerates the paper's Figure 2 (text tree and DOT).
func Figure2() (string, error) {
	env, err := NewEnv(workload.RetailParams{
		Days: 2, Stores: 1, Products: 2, ProductsSoldPerDay: 1,
		TransactionsPerProduct: 1, Brands: 1, SelectYear: 1997, Seed: 1,
	})
	if err != nil {
		return "", err
	}
	v, err := env.View("product_sales", workload.ProductSalesSQL(1997))
	if err != nil {
		return "", err
	}
	p, err := core.Derive(v)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Figure 2: extended join graph for product_sales\n")
	b.WriteString(p.Graph.Text())
	b.WriteString("\n")
	b.WriteString(p.Graph.Dot())
	return b.String(), nil
}

// ---------------------------------------------------------------------------
// E6: the Section 1.1 storage comparison.

// SizingResult holds the analytic paper numbers and a measured scaled-down
// validation run.
type SizingResult struct {
	PaperFact    sizing.Model
	PaperAux     sizing.Model
	Reduction    float64
	Small        workload.RetailParams
	MeasuredFact int64 // measured fact tuples at small scale
	MeasuredAux  int64 // measured saleDTL tuples at small scale
	ModelAuxMax  int64 // analytic worst-case aux tuples at small scale
	Extrapolated int64 // measured aux tuples extrapolated to paper scale
}

// Sizing runs E6: reproduce the paper's arithmetic exactly and validate the
// tuple-count model with a real scaled-down materialization.
func Sizing(smallFactTuples int) (*SizingResult, error) {
	r := &SizingResult{
		PaperFact: sizing.PaperFactTable(),
		PaperAux:  sizing.PaperAuxView(),
		Reduction: sizing.Reduction(workload.PaperParams()),
		Small:     workload.ScaledDown(smallFactTuples),
	}
	env, err := NewEnv(r.Small)
	if err != nil {
		return nil, err
	}
	eng, err := env.MinimalEngine(workload.ProductSalesSQL(1997))
	if err != nil {
		return nil, err
	}
	r.MeasuredFact = int64(env.DB.RowCount("sale"))
	r.MeasuredAux = int64(eng.Aux("sale").Len())
	r.ModelAuxMax = sizing.AuxView(r.Small).Tuples
	r.Extrapolated = sizing.Extrapolate(r.MeasuredAux, r.Small, workload.PaperParams(), true)
	return r, nil
}

// Format renders the sizing result as the E6 report.
func (r *SizingResult) Format() string {
	var b strings.Builder
	b.WriteString("Section 1.1 storage comparison (paper arithmetic, reproduced exactly)\n")
	fmt.Fprintf(&b, "  fact table:     %d tuples x 5 fields x 4 bytes = %.0f GBytes (paper: 245 GBytes)\n",
		r.PaperFact.Tuples, r.PaperFact.GBytes())
	fmt.Fprintf(&b, "  saleDTL:        %d tuples x 4 fields x 4 bytes = %.0f MBytes (paper: 167 MBytes)\n",
		r.PaperAux.Tuples, r.PaperAux.MBytes())
	fmt.Fprintf(&b, "  reduction:      %.0fx\n", r.Reduction)
	fmt.Fprintf(&b, "measured validation at 1/%d scale (%d fact tuples):\n",
		r.PaperFact.Tuples/maxI64(1, r.MeasuredFact), r.MeasuredFact)
	fmt.Fprintf(&b, "  saleDTL tuples: measured %d  <=  analytic worst case %d\n", r.MeasuredAux, r.ModelAuxMax)
	fmt.Fprintf(&b, "  extrapolated to paper scale: %d tuples (analytic worst case %d)\n",
		r.Extrapolated, r.PaperAux.Tuples)
	return b.String()
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------------
// Ablations.

// CompressionPoint is one point of the A1 sweep.
type CompressionPoint struct {
	TransactionsPerProduct int
	FactRows               int
	AuxRows                int
	FactBytes              int
	AuxBytes               int
	Ratio                  float64
}

// AblationCompression sweeps the duplication factor (transactions per
// product) and reports the achieved compression of the sale auxiliary view.
func AblationCompression(dups []int) ([]CompressionPoint, error) {
	var out []CompressionPoint
	for _, d := range dups {
		p := workload.RetailParams{
			Days: 20, Stores: 3, Products: 40, ProductsSoldPerDay: 8,
			TransactionsPerProduct: d, Brands: 8, SelectYear: 1997, Seed: 1,
		}
		env, err := NewEnv(p)
		if err != nil {
			return nil, err
		}
		eng, err := env.MinimalEngine(workload.ProductSalesSQL(1997))
		if err != nil {
			return nil, err
		}
		pt := CompressionPoint{
			TransactionsPerProduct: d,
			FactRows:               env.DB.RowCount("sale"),
			AuxRows:                eng.Aux("sale").Len(),
			FactBytes:              env.DB.Table("sale").Bytes(),
			AuxBytes:               eng.Aux("sale").Bytes(),
		}
		pt.Ratio = float64(pt.FactBytes) / float64(maxInt(1, pt.AuxBytes))
		out = append(out, pt)
	}
	return out, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// MaintenanceResult is one strategy's measurement in A2.
type MaintenanceResult struct {
	Strategy   string
	Deltas     int
	Elapsed    time.Duration
	PerDelta   time.Duration
	DetailData int // bytes of warehouse-resident detail data
}

// AblationMaintenance runs A2: the same delta stream against the minimal
// engine, the PSJ baseline, and per-batch recomputation over a replica.
func AblationMaintenance(factTuples, deltas int) ([]MaintenanceResult, error) {
	viewSQL := workload.CSMASOnlySQL(1997)

	var out []MaintenanceResult
	// Each strategy gets its own environment so the delta streams are
	// identical (same seed) and state does not leak between runs. The
	// engine is initialized over the pristine load, and only then is the
	// delta stream generated and applied.
	run := func(name string, build func(*Env) (func(maintain.Delta) error, func() int, error)) error {
		env, err := NewEnv(workload.ScaledDown(factTuples))
		if err != nil {
			return err
		}
		apply, bytes, err := build(env)
		if err != nil {
			return err
		}
		mut := workload.NewMutator(env.DB, env.Params)
		ds, err := mut.Batch(deltas, workload.DefaultMix())
		if err != nil {
			return err
		}
		start := time.Now()
		for _, d := range ds {
			if err := apply(d); err != nil {
				return err
			}
		}
		el := time.Since(start)
		out = append(out, MaintenanceResult{
			Strategy: name, Deltas: len(ds), Elapsed: el,
			PerDelta: el / time.Duration(maxInt(1, len(ds))), DetailData: bytes(),
		})
		return nil
	}

	if err := run("minimal (paper)", func(env *Env) (func(maintain.Delta) error, func() int, error) {
		eng, err := env.MinimalEngine(viewSQL)
		if err != nil {
			return nil, nil, err
		}
		return eng.Apply, eng.AuxBytes, nil
	}); err != nil {
		return nil, err
	}
	if err := run("PSJ [14]", func(env *Env) (func(maintain.Delta) error, func() int, error) {
		eng, err := env.PSJEngine(viewSQL)
		if err != nil {
			return nil, nil, err
		}
		return eng.Apply, eng.AuxBytes, nil
	}); err != nil {
		return nil, err
	}
	if err := run("recompute", func(env *Env) (func(maintain.Delta) error, func() int, error) {
		rep, err := env.Replica(viewSQL, true)
		if err != nil {
			return nil, nil, err
		}
		return rep.Apply, rep.Bytes, nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// FormatMaintenance renders A2 results.
func FormatMaintenance(rs []MaintenanceResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "  %-16s %8s %14s %14s %14s\n", "strategy", "deltas", "total", "per delta", "detail bytes")
	for _, r := range rs {
		fmt.Fprintf(&b, "  %-16s %8d %14s %14s %14d\n",
			r.Strategy, r.Deltas, r.Elapsed.Round(time.Microsecond),
			r.PerDelta.Round(time.Nanosecond), r.DetailData)
	}
	return b.String()
}

// EliminationResult is A3's output.
type EliminationResult struct {
	WithElimination    int // aux bytes, fact aux omitted
	WithoutElimination int // aux bytes, PSJ derivation keeps everything
	OmittedTables      []string
}

// AblationElimination runs A3: the storage effect of omitting the fact
// table's auxiliary view when the Section 3.3 conditions hold.
func AblationElimination(factTuples int) (*EliminationResult, error) {
	env, err := NewEnv(workload.ScaledDown(factTuples))
	if err != nil {
		return nil, err
	}
	minEng, err := env.MinimalEngine(workload.EliminationSQL())
	if err != nil {
		return nil, err
	}
	psjEng, err := env.PSJEngine(workload.EliminationSQL())
	if err != nil {
		return nil, err
	}
	r := &EliminationResult{
		WithElimination:    minEng.AuxBytes(),
		WithoutElimination: psjEng.AuxBytes(),
	}
	for t, x := range minEng.Plan().Aux {
		if x.Omitted {
			r.OmittedTables = append(r.OmittedTables, t)
		}
	}
	return r, nil
}

// NeedSetsResult is A4's output for one mode.
type NeedSetsResult struct {
	UseNeedSets bool
	Elapsed     time.Duration
	AuxLookups  int
}

// AblationNeedSets runs A4: the same stream with and without Need-set-
// restricted delta joins. The view joins product and store without using
// any of their attributes, so the restricted path can skip both auxiliary
// views entirely (they are non-filtering: referential integrity holds and
// they carry no local conditions).
func AblationNeedSets(factTuples, deltas int) ([]NeedSetsResult, error) {
	viewSQL := `SELECT time.month, SUM(price) AS TotalPrice, COUNT(*) AS TotalCount
		FROM sale, time, product, store
		WHERE time.year = 1997 AND sale.timeid = time.id
		  AND sale.productid = product.id AND sale.storeid = store.id
		GROUP BY time.month`
	var out []NeedSetsResult
	for _, use := range []bool{true, false} {
		env, err := NewEnv(workload.ScaledDown(factTuples))
		if err != nil {
			return nil, err
		}
		v, err := env.View("v", viewSQL)
		if err != nil {
			return nil, err
		}
		p, err := core.Derive(v)
		if err != nil {
			return nil, err
		}
		eng, err := maintain.NewEngine(p)
		if err != nil {
			return nil, err
		}
		eng.UseNeedSets = use
		if err := eng.Init(env.Src); err != nil {
			return nil, err
		}
		mut := workload.NewMutator(env.DB, env.Params)
		ds, err := mut.Batch(deltas, workload.DefaultMix())
		if err != nil {
			return nil, err
		}
		eng.ResetStats()
		start := time.Now()
		for _, d := range ds {
			if err := eng.Apply(d); err != nil {
				return nil, err
			}
		}
		out = append(out, NeedSetsResult{
			UseNeedSets: use,
			Elapsed:     time.Since(start),
			AuxLookups:  eng.Stats().AuxLookups,
		})
	}
	return out, nil
}

// AppendOnlyResult is A6's output: the storage effect of the Section 4
// append-only relaxation on a MIN/MAX view, where the standard derivation
// must keep the aggregate argument plain (one auxiliary row per distinct
// (group, value) pair) while the relaxed derivation compresses it into
// MIN/MAX columns (one row per group).
type AppendOnlyResult struct {
	StandardRows  int
	StandardBytes int
	RelaxedRows   int
	RelaxedBytes  int
}

// AblationAppendOnly runs A6 over the retail workload with a MIN/MAX view.
func AblationAppendOnly(factTuples int) (*AppendOnlyResult, error) {
	viewSQL := `SELECT time.month, MIN(price) AS lo, MAX(price) AS hi,
		SUM(price) AS total, COUNT(*) AS cnt
		FROM sale, time WHERE sale.timeid = time.id AND time.year = 1997
		GROUP BY time.month`
	env, err := NewEnv(workload.ScaledDown(factTuples))
	if err != nil {
		return nil, err
	}
	v, err := env.View("v", viewSQL)
	if err != nil {
		return nil, err
	}
	std, err := core.Derive(v)
	if err != nil {
		return nil, err
	}
	stdEng, err := maintain.NewEngine(std)
	if err != nil {
		return nil, err
	}
	if err := stdEng.Init(env.Src); err != nil {
		return nil, err
	}
	relaxed, err := core.DeriveAppendOnly(v)
	if err != nil {
		return nil, err
	}
	relEng, err := maintain.NewEngine(relaxed)
	if err != nil {
		return nil, err
	}
	if err := relEng.Init(env.Src); err != nil {
		return nil, err
	}
	return &AppendOnlyResult{
		StandardRows:  stdEng.Aux("sale").Len(),
		StandardBytes: stdEng.AuxBytes(),
		RelaxedRows:   relEng.Aux("sale").Len(),
		RelaxedBytes:  relEng.AuxBytes(),
	}, nil
}

// SharingResult is A7's output for one view class: one shared
// auxiliary-view set vs separate per-view sets.
type SharingResult struct {
	Class        string
	Views        int
	SharedRows   int
	SharedBytes  int
	PerViewRows  int
	PerViewBytes int
}

// AblationSharing runs A7 on two classes of views. The "nesting" class
// groups on overlapping attribute sets, so the shared grouping is barely
// finer than the largest view's and sharing wins; the "divergent" class
// groups on disjoint attributes, the union grouping destroys compression,
// and separate per-view sets win — the trade-off the Section 4 "classes of
// summary data" generalization has to navigate.
func AblationSharing(factTuples int) ([]SharingResult, error) {
	classes := []struct {
		name string
		sqls []string
	}{
		{"nesting", []string{
			`SELECT time.month, SUM(price) AS total, COUNT(*) AS cnt
			 FROM sale, time WHERE time.year = 1997 AND sale.timeid = time.id
			 GROUP BY time.month`,
			`SELECT time.month, AVG(price) AS ap, COUNT(*) AS cnt
			 FROM sale, time WHERE time.year = 1998 AND sale.timeid = time.id
			 GROUP BY time.month`,
			`SELECT time.month, sale.storeid, SUM(price) AS total, COUNT(*) AS cnt
			 FROM sale, time WHERE sale.timeid = time.id
			 GROUP BY time.month, sale.storeid`,
		}},
		{"divergent", []string{
			workload.CSMASOnlySQL(1997),
			`SELECT sale.storeid, MAX(price) AS hi, COUNT(*) AS cnt FROM sale GROUP BY sale.storeid`,
			`SELECT product.category, SUM(price) AS total, COUNT(*) AS cnt
			 FROM sale, product WHERE sale.productid = product.id GROUP BY product.category`,
		}},
	}
	var out []SharingResult
	for _, cl := range classes {
		env, err := NewEnv(workload.ScaledDown(factTuples))
		if err != nil {
			return nil, err
		}
		var views []*gpsj.View
		for i, sql := range cl.sqls {
			v, err := env.View(fmt.Sprintf("v%d", i), sql)
			if err != nil {
				return nil, err
			}
			views = append(views, v)
		}
		sp, err := core.DeriveShared(views)
		if err != nil {
			return nil, err
		}
		sharedRels, err := sp.Materialize(env.Src)
		if err != nil {
			return nil, err
		}
		r := SharingResult{Class: cl.name, Views: len(views)}
		for _, rel := range sharedRels {
			r.SharedRows += rel.Len()
			r.SharedBytes += rel.Bytes()
		}
		for _, p := range sp.PerView {
			rels, err := p.Materialize(env.Src)
			if err != nil {
				return nil, err
			}
			for _, rel := range rels {
				r.PerViewRows += rel.Len()
				r.PerViewBytes += rel.Bytes()
			}
		}
		out = append(out, r)
	}
	return out, nil
}

// SelectivityPoint is one point of the A5 sweep.
type SelectivityPoint struct {
	YearFraction float64
	FactRows     int
	AuxRows      int
	AuxBytes     int
}

// AblationSelectivity runs A5: local-reduction effectiveness as the
// fraction of days selected by the view's year condition varies.
func AblationSelectivity(fractions []float64) ([]SelectivityPoint, error) {
	var out []SelectivityPoint
	for _, f := range fractions {
		p := workload.RetailParams{
			Days: 40, Stores: 3, Products: 40, ProductsSoldPerDay: 8,
			TransactionsPerProduct: 3, Brands: 8, SelectYear: 1997,
			YearFraction: f, Seed: 1,
		}
		env, err := NewEnv(p)
		if err != nil {
			return nil, err
		}
		eng, err := env.MinimalEngine(workload.ProductSalesSQL(1997))
		if err != nil {
			return nil, err
		}
		out = append(out, SelectivityPoint{
			YearFraction: f,
			FactRows:     env.DB.RowCount("sale"),
			AuxRows:      eng.Aux("sale").Len(),
			AuxBytes:     eng.Aux("sale").Bytes(),
		})
	}
	return out, nil
}
