package experiments

import (
	"strings"
	"testing"

	"mindetail/internal/workload"
)

func TestTable1And2Content(t *testing.T) {
	t1 := Table1()
	for _, want := range []string{"COUNT", "SUM", "AVG", "MAX/MIN", "+/+", "+/-"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table1 missing %q:\n%s", want, t1)
		}
	}
	t2 := Table2()
	for _, want := range []string{"COUNT(*)", "SUM(a), COUNT(*)", "Not replaced", "non-CSMAS"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table2 missing %q:\n%s", want, t2)
		}
	}
}

func TestTable3And4Compression(t *testing.T) {
	t3, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	// Table 3 keeps price plain: 5 distinct (timeid, productid, price)
	// groups from 9 base rows.
	if !strings.Contains(t3, "(5 rows)") {
		t.Errorf("Table 3 should have 5 rows:\n%s", t3)
	}
	t4, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	// Table 4 compresses price away: 4 (timeid, productid) groups.
	if !strings.Contains(t4, "(4 rows)") {
		t.Errorf("Table 4 should have 4 rows:\n%s", t4)
	}
	if !strings.Contains(t4, "SUM(price)") {
		t.Errorf("Table 4 missing SUM column:\n%s", t4)
	}
}

func TestFigure2(t *testing.T) {
	out, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sale", "time [g]", "product", "digraph"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure2 missing %q:\n%s", want, out)
		}
	}
}

func TestSizingReproducesPaper(t *testing.T) {
	r, err := Sizing(3000)
	if err != nil {
		t.Fatal(err)
	}
	if r.PaperFact.Tuples != 13_140_000_000 || r.PaperAux.Tuples != 10_950_000 {
		t.Errorf("paper models wrong: %+v", r)
	}
	if r.Reduction != 1500 {
		t.Errorf("reduction = %v", r.Reduction)
	}
	if r.MeasuredAux <= 0 || r.MeasuredAux > r.ModelAuxMax {
		t.Errorf("measured aux %d outside (0, %d]", r.MeasuredAux, r.ModelAuxMax)
	}
	out := r.Format()
	for _, want := range []string{"245 GBytes", "167 MBytes", "1500x"} {
		if !strings.Contains(out, want) {
			t.Errorf("sizing report missing %q:\n%s", want, out)
		}
	}
}

func TestAblationCompressionMonotone(t *testing.T) {
	pts, err := AblationCompression([]int{1, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Ratio <= pts[i-1].Ratio {
			t.Errorf("compression ratio must grow with duplication: %+v", pts)
		}
	}
	// Aux rows are bounded by distinct (timeid, productid) pairs and do
	// not grow with the duplication factor.
	if pts[2].AuxRows > pts[0].AuxRows {
		t.Errorf("aux rows grew with duplication: %+v", pts)
	}
}

func TestAblationMaintenanceShape(t *testing.T) {
	rs, err := AblationMaintenance(2000, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("results = %d", len(rs))
	}
	byName := map[string]MaintenanceResult{}
	for _, r := range rs {
		byName[r.Strategy] = r
	}
	minimal, psj, rec := byName["minimal (paper)"], byName["PSJ [14]"], byName["recompute"]
	// The headline shapes: incremental maintenance beats per-batch
	// recomputation by a wide margin, and the minimal detail data is
	// smaller than both the PSJ and replicated detail.
	if minimal.PerDelta*5 > rec.PerDelta {
		t.Errorf("incremental should beat recompute clearly: minimal=%v recompute=%v",
			minimal.PerDelta, rec.PerDelta)
	}
	if !(minimal.DetailData < psj.DetailData && psj.DetailData <= rec.DetailData) {
		t.Errorf("detail size ordering violated: minimal=%d psj=%d recompute=%d",
			minimal.DetailData, psj.DetailData, rec.DetailData)
	}
	out := FormatMaintenance(rs)
	if !strings.Contains(out, "minimal (paper)") {
		t.Errorf("format:\n%s", out)
	}
}

func TestAblationElimination(t *testing.T) {
	r, err := AblationElimination(2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.OmittedTables) != 1 || r.OmittedTables[0] != "sale" {
		t.Errorf("omitted = %v", r.OmittedTables)
	}
	if r.WithElimination >= r.WithoutElimination {
		t.Errorf("elimination must shrink detail data: %d vs %d",
			r.WithElimination, r.WithoutElimination)
	}
	// Elimination removes the dominant (fact) auxiliary view: the
	// remaining detail is a small fraction.
	if float64(r.WithElimination) > 0.5*float64(r.WithoutElimination) {
		t.Errorf("elimination should remove the dominant view: %d vs %d",
			r.WithElimination, r.WithoutElimination)
	}
}

func TestAblationNeedSets(t *testing.T) {
	rs, err := AblationNeedSets(2000, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || !rs[0].UseNeedSets || rs[1].UseNeedSets {
		t.Fatalf("results = %+v", rs)
	}
	if rs[0].AuxLookups > rs[1].AuxLookups {
		t.Errorf("need sets must not increase lookups: with=%d without=%d",
			rs[0].AuxLookups, rs[1].AuxLookups)
	}
}

func TestAblationSelectivity(t *testing.T) {
	pts, err := AblationSelectivity([]float64{0.25, 0.5, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].AuxRows <= pts[i-1].AuxRows {
			t.Errorf("aux rows must grow with selectivity: %+v", pts)
		}
	}
	// At full selectivity the local reduction filters nothing, but
	// compression still keeps the aux view far below the fact table.
	last := pts[len(pts)-1]
	if last.AuxRows >= last.FactRows {
		t.Errorf("compression ineffective at full selectivity: %+v", last)
	}
}

func TestEnvHelpers(t *testing.T) {
	env, err := NewEnv(workload.ScaledDown(500))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := env.View("bad", "SELECT nope FROM sale"); err == nil {
		t.Error("bad view accepted")
	}
	if _, err := env.MinimalEngine("SELECT nope FROM sale"); err == nil {
		t.Error("bad view accepted by MinimalEngine")
	}
	if _, err := env.PSJEngine("SELECT nope FROM sale"); err == nil {
		t.Error("bad view accepted by PSJEngine")
	}
	if _, err := env.Replica("SELECT nope FROM sale", false); err == nil {
		t.Error("bad view accepted by Replica")
	}
}

func TestAblationAppendOnly(t *testing.T) {
	r, err := AblationAppendOnly(2000)
	if err != nil {
		t.Fatal(err)
	}
	if r.RelaxedRows >= r.StandardRows {
		t.Errorf("append-only must shrink the auxiliary view: %d vs %d rows",
			r.RelaxedRows, r.StandardRows)
	}
	if r.RelaxedBytes >= r.StandardBytes {
		t.Errorf("append-only must shrink bytes: %d vs %d", r.RelaxedBytes, r.StandardBytes)
	}
}

func TestAblationSharingContrast(t *testing.T) {
	rs, err := AblationSharing(2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("classes = %d", len(rs))
	}
	nesting, divergent := rs[0], rs[1]
	if nesting.Class != "nesting" || divergent.Class != "divergent" {
		t.Fatalf("classes = %+v", rs)
	}
	if nesting.SharedBytes >= nesting.PerViewBytes {
		t.Errorf("nesting class: sharing should win: shared=%d perView=%d",
			nesting.SharedBytes, nesting.PerViewBytes)
	}
	if divergent.SharedBytes <= divergent.PerViewBytes {
		t.Errorf("divergent class: separate sets should win: shared=%d perView=%d",
			divergent.SharedBytes, divergent.PerViewBytes)
	}
}
