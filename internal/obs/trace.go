package obs

import (
	"sync/atomic"
	"time"
)

// DefaultTraceCap is the slot count of rings created through a Registry.
const DefaultTraceCap = 256

// Stage is one named phase of a traced operation with its duration.
type Stage struct {
	Name string `json:"name"`
	Ns   int64  `json:"ns"`
}

// TraceEvent is one completed operation in a TraceRing — for the
// maintenance engine, one staged apply with its per-stage timings.
type TraceEvent struct {
	Seq     uint64    `json:"seq"`
	At      time.Time `json:"at"`
	Name    string    `json:"name"`             // e.g. the view being maintained
	Detail  string    `json:"detail,omitempty"` // e.g. "table=sale ins=1 del=0 upd=0"
	Outcome string    `json:"outcome"`          // "staged", "error: ..."
	TotalNs int64     `json:"total_ns"`
	Stages  []Stage   `json:"stages,omitempty"`
}

// TraceRing is a lock-free ring buffer of recent TraceEvents. Writers
// claim a slot with one atomic increment and publish the event with one
// atomic pointer store; readers load pointers and validate sequence
// numbers, so concurrent Record/Recent never block each other and are
// race-clean. Events may be overwritten while a reader iterates — Recent
// simply skips slots whose sequence no longer matches.
type TraceRing struct {
	mask  uint64
	seq   atomic.Uint64
	slots []atomic.Pointer[TraceEvent]
}

// NewTraceRing returns a ring with at least capacity slots (rounded up to
// a power of two, minimum 2).
func NewTraceRing(capacity int) *TraceRing {
	n := 2
	for n < capacity {
		n <<= 1
	}
	return &TraceRing{mask: uint64(n - 1), slots: make([]atomic.Pointer[TraceEvent], n)}
}

// Record publishes one event, assigning its sequence number.
func (r *TraceRing) Record(ev TraceEvent) {
	seq := r.seq.Add(1)
	ev.Seq = seq
	r.slots[(seq-1)&r.mask].Store(&ev)
}

// Len returns the total number of events ever recorded.
func (r *TraceRing) Len() uint64 { return r.seq.Load() }

// Recent returns up to n of the most recent events, oldest first. Slots
// overwritten or not yet published during the scan are skipped.
func (r *TraceRing) Recent(n int) []TraceEvent {
	cur := r.seq.Load()
	if n <= 0 || cur == 0 {
		return nil
	}
	span := uint64(n)
	if ringCap := r.mask + 1; span > ringCap {
		span = ringCap
	}
	if span > cur {
		span = cur
	}
	out := make([]TraceEvent, 0, span)
	for s := cur - span + 1; s <= cur; s++ {
		p := r.slots[(s-1)&r.mask].Load()
		if p == nil || p.Seq != s {
			continue // torn past the ring edge by a concurrent writer
		}
		out = append(out, *p)
	}
	return out
}
