package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// numBuckets covers int64 nanoseconds with exponential buckets refined by
// four linear sub-buckets per power of two: values 0–3 get exact buckets,
// and every later bucket spans 1/4 of its octave, bounding the relative
// quantile error at ~25% of the value — plenty for p50/p95/p99 latency
// summaries at nanosecond resolution.
const numBuckets = 252

// Histogram is a fixed-size, lock-free latency histogram. Observe is a
// few atomic adds; Snapshot computes count/sum/min/max and interpolated
// p50/p95/p99 from the bucket counts. The zero value is NOT ready;
// create histograms with NewHistogram (or through a Registry).
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64
	max     atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// bucketOf maps a nanosecond value to its bucket index.
func bucketOf(v int64) int {
	if v < 4 {
		if v < 0 {
			v = 0
		}
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // position of the leading bit, >= 2
	sub := (v >> uint(exp-2)) & 3    // next two bits refine the octave
	return (exp-2)*4 + int(sub) + 4
}

// bucketBounds returns the half-open [lo, hi) value range of bucket i.
func bucketBounds(i int) (lo, hi int64) {
	if i < 4 {
		return int64(i), int64(i + 1)
	}
	exp := uint((i-4)/4 + 2)
	sub := int64((i - 4) % 4)
	width := int64(1) << (exp - 2)
	lo = int64(1)<<exp + sub*width
	return lo, lo + width
}

// Observe records one value (nanoseconds for latency histograms, but any
// non-negative int64 quantity works — journal depths, row counts).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// ObserveSince records the elapsed time since start in nanoseconds.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Nanoseconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// HistogramSnapshot summarizes a histogram at one moment: counts, the
// exact min/max/sum, and bucket-interpolated quantiles.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	SumNs int64   `json:"sum_ns"`
	MinNs int64   `json:"min_ns"`
	MaxNs int64   `json:"max_ns"`
	Mean  float64 `json:"mean_ns"`
	P50   int64   `json:"p50_ns"`
	P95   int64   `json:"p95_ns"`
	P99   int64   `json:"p99_ns"`
	Max   int64   `json:"-"` // alias of MaxNs for formatting convenience
}

// Snapshot computes the summary. Quantiles are derived from a consistent
// copy of the bucket counts (each bucket read once), so P50 <= P95 <= P99
// always holds within the copied view.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var counts [numBuckets]int64
	var total int64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s := HistogramSnapshot{Count: total, SumNs: h.sum.Load()}
	if total == 0 {
		return s
	}
	s.MinNs = h.min.Load()
	s.MaxNs = h.max.Load()
	if s.MinNs > s.MaxNs {
		// An Observe racing with this snapshot has counted its bucket but
		// not yet CAS-published min/max (or published only one of them).
		// Clamping quantiles against a MaxInt64 min would destroy the
		// report, so fall back to the bucket bounds of the copied view.
		s.MinNs, s.MaxNs = bucketRange(&counts)
	}
	s.Max = s.MaxNs
	s.Mean = float64(s.SumNs) / float64(total)
	s.P50 = quantile(&counts, total, 0.50)
	s.P95 = quantile(&counts, total, 0.95)
	s.P99 = quantile(&counts, total, 0.99)
	if s.P50 < s.MinNs {
		s.P50 = s.MinNs
	}
	if s.P99 > s.MaxNs {
		s.P99 = s.MaxNs
	}
	if s.P95 > s.P99 {
		s.P95 = s.P99
	}
	if s.P50 > s.P95 {
		s.P50 = s.P95
	}
	return s
}

// Quantile returns the linearly interpolated q-quantile of the current
// bucket counts (q in [0,1]), or 0 for an empty histogram. It is the
// read API cost estimators use when they need a single quantile without
// paying for a full Snapshot.
func (h *Histogram) Quantile(q float64) int64 {
	var counts [numBuckets]int64
	var total int64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	return quantile(&counts, total, q)
}

// bucketRange returns the representable [min, max] of the non-empty
// buckets: the lower bound of the first and the inclusive upper bound of
// the last. Callers guarantee at least one bucket is non-empty.
func bucketRange(counts *[numBuckets]int64) (min, max int64) {
	first, last := -1, -1
	for i := 0; i < numBuckets; i++ {
		if counts[i] == 0 {
			continue
		}
		if first < 0 {
			first = i
		}
		last = i
	}
	lo, _ := bucketBounds(first)
	_, hi := bucketBounds(last)
	return lo, hi - 1
}

// quantile returns the linearly interpolated q-quantile over the bucket
// counts. The result always lies inside the half-open bounds of the
// bucket holding the target rank, so a non-empty histogram never reports
// a quantile of 0 unless the value 0 itself was observed.
func quantile(counts *[numBuckets]int64, total int64, q float64) int64 {
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	if target > total {
		// Guard the float rounding of q*total for huge totals: a target
		// beyond the last rank would fall off the loop and report 0 for a
		// histogram with count > 0.
		target = total
	}
	var cum int64
	for i := 0; i < numBuckets; i++ {
		if counts[i] == 0 {
			continue
		}
		cum += counts[i]
		if cum >= target {
			lo, hi := bucketBounds(i)
			// Position of the target rank within this bucket, kept inside
			// the half-open [lo, hi): into can reach 1.0 when the target is
			// the bucket's last rank, and lo+width would leak into the next
			// bucket (reporting a value the bucket cannot contain).
			into := float64(target-(cum-counts[i])) / float64(counts[i])
			v := lo + int64(into*float64(hi-lo))
			if v >= hi {
				v = hi - 1
			}
			return v
		}
	}
	return 0 // unreachable: target <= total and some bucket is non-empty
}
