package obs

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Fatal("Counter is not get-or-create")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestBucketRoundTrip(t *testing.T) {
	// Every value must land in a bucket whose bounds contain it, and
	// bucket indexes must be monotone in the value.
	prev := -1
	for _, v := range []int64{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 100, 1000, 4095, 4096, 1 << 20, 1<<40 + 12345, 1 << 62} {
		i := bucketOf(v)
		lo, hi := bucketBounds(i)
		if v < lo || v >= hi {
			t.Errorf("value %d in bucket %d with bounds [%d, %d)", v, i, lo, hi)
		}
		if i < prev {
			t.Errorf("bucket index not monotone at value %d: %d < %d", v, i, prev)
		}
		prev = i
		if i >= numBuckets {
			t.Errorf("bucket %d out of range for value %d", i, v)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	// Uniform 1..1000: p50 ~ 500, p95 ~ 950, p99 ~ 990. Bucket
	// resolution is 1/4 octave, so allow ~25% relative error.
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.MinNs != 1 || s.MaxNs != 1000 {
		t.Fatalf("min/max = %d/%d", s.MinNs, s.MaxNs)
	}
	if s.SumNs != 500500 {
		t.Fatalf("sum = %d", s.SumNs)
	}
	check := func(name string, got, want int64) {
		t.Helper()
		lo, hi := want*3/4, want*5/4+1
		if got < lo || got > hi {
			t.Errorf("%s = %d, want within [%d, %d]", name, got, lo, hi)
		}
	}
	check("p50", s.P50, 500)
	check("p95", s.P95, 950)
	check("p99", s.P99, 990)
	if !(s.P50 <= s.P95 && s.P95 <= s.P99) {
		t.Errorf("quantiles not ordered: %d %d %d", s.P50, s.P95, s.P99)
	}
}

func TestHistogramEmptyAndNegative(t *testing.T) {
	h := NewHistogram()
	s := h.Snapshot()
	if s.Count != 0 || s.P99 != 0 || s.MinNs != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
	h.Observe(-5) // clamped to 0
	s = h.Snapshot()
	if s.Count != 1 || s.MinNs != 0 || s.MaxNs != 0 {
		t.Fatalf("negative observation not clamped: %+v", s)
	}
}

func TestHistogramEmptySnapshotAllZero(t *testing.T) {
	h := NewHistogram()
	s := h.Snapshot()
	if s.Count != 0 || s.SumNs != 0 || s.MinNs != 0 || s.MaxNs != 0 ||
		s.P50 != 0 || s.P95 != 0 || s.P99 != 0 || s.Mean != 0 {
		t.Fatalf("empty snapshot must be all-zero, got %+v", s)
	}
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("Quantile on empty histogram = %d, want 0", q)
	}
}

func TestHistogramSingleBucketQuantiles(t *testing.T) {
	// All observations of one value land in one bucket; every quantile
	// must report that value — never 0, never a neighboring bucket bound.
	for _, v := range []int64{1, 7, 100, 4096, 1 << 20} {
		for _, n := range []int{1, 2, 1000} {
			h := NewHistogram()
			for i := 0; i < n; i++ {
				h.Observe(v)
			}
			s := h.Snapshot()
			if s.Count != int64(n) {
				t.Fatalf("v=%d n=%d: count = %d", v, n, s.Count)
			}
			for name, got := range map[string]int64{"p50": s.P50, "p95": s.P95, "p99": s.P99} {
				if got != v {
					t.Errorf("v=%d n=%d: %s = %d, want exactly %d", v, n, name, got, v)
				}
				if got == 0 {
					t.Errorf("v=%d n=%d: %s reported 0 with count > 0", v, n, name)
				}
			}
		}
	}
}

func TestQuantileStaysInsideBucket(t *testing.T) {
	// The interpolated quantile for a bucket's last rank must not leak
	// into the next bucket: raw quantile() output (before Snapshot's
	// min/max clamps) must respect the half-open bucket bounds.
	var counts [numBuckets]int64
	i := bucketOf(1000)
	counts[i] = 10
	lo, hi := bucketBounds(i)
	for _, q := range []float64{0.0, 0.5, 0.99, 1.0} {
		got := quantile(&counts, 10, q)
		if got < lo || got >= hi {
			t.Errorf("q=%.2f: quantile = %d outside bucket [%d, %d)", q, got, lo, hi)
		}
	}
	// Degenerate rounding guard: a target beyond the last rank must clamp,
	// not fall off the loop and report 0.
	if got := quantile(&counts, 10, 1.0000001); got < lo || got >= hi {
		t.Errorf("overshooting q: quantile = %d outside bucket [%d, %d)", got, lo, hi)
	}
}

func TestRegistryFindDoesNotCreate(t *testing.T) {
	r := NewRegistry()
	if r.FindHistogram("nope") != nil || r.FindCounter("nope") != nil {
		t.Fatal("Find* returned a metric that was never registered")
	}
	if len(r.Snapshot().Histograms) != 0 || len(r.Snapshot().Counters) != 0 {
		t.Fatal("Find* grew the registry")
	}
	h := r.Histogram("h")
	c := r.Counter("c")
	if r.FindHistogram("h") != h {
		t.Fatal("FindHistogram did not return the registered histogram")
	}
	if r.FindCounter("c") != c {
		t.Fatal("FindCounter did not return the registered counter")
	}
}

func TestTraceRingWraparound(t *testing.T) {
	r := NewTraceRing(4)
	for i := 0; i < 10; i++ {
		r.Record(TraceEvent{Name: "ev", TotalNs: int64(i)})
	}
	evs := r.Recent(8)
	if len(evs) != 4 {
		t.Fatalf("recent = %d events, want 4 (ring capacity)", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(7 + i); ev.Seq != want {
			t.Errorf("event %d seq = %d, want %d", i, ev.Seq, want)
		}
		if ev.TotalNs != int64(6+i) {
			t.Errorf("event %d total = %d, want %d", i, ev.TotalNs, 6+i)
		}
	}
	if got := r.Recent(2); len(got) != 2 || got[1].Seq != 10 {
		t.Fatalf("Recent(2) = %+v", got)
	}
	if r.Len() != 10 {
		t.Fatalf("Len = %d", r.Len())
	}
}

// TestConcurrentObservation hammers every metric type from writer
// goroutines while readers snapshot — the race detector is the assertion.
func TestConcurrentObservation(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("writes")
	g := reg.Gauge("depth")
	h := reg.Histogram("lat")
	tr := reg.Trace("applies")
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(seed int64) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 5000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(rng.Int63n(1_000_000))
				tr.Record(TraceEvent{Name: "w", At: time.Now(), Outcome: "staged", TotalNs: int64(i)})
				g.Add(-1)
			}
		}(int64(w))
	}
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := reg.Snapshot()
			if s.Histograms["lat"].P50 > s.Histograms["lat"].P99 {
				t.Error("quantiles out of order in concurrent snapshot")
				return
			}
			_ = tr.Recent(32)
			_ = s.Format()
		}
	}()
	writers.Wait()
	close(stop)
	readers.Wait()

	s := reg.Snapshot()
	if s.Counters["writes"] != 20000 {
		t.Fatalf("writes = %d, want 20000", s.Counters["writes"])
	}
	if s.Gauges["depth"] != 0 {
		t.Fatalf("depth = %d, want 0", s.Gauges["depth"])
	}
	if s.Histograms["lat"].Count != 20000 {
		t.Fatalf("lat count = %d, want 20000", s.Histograms["lat"].Count)
	}
}

func TestSnapshotFormatAndJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("warehouse.query.snapshot_hits").Add(3)
	reg.Gauge("warehouse.propagate.pool_occupancy").Set(2)
	reg.Histogram("maintain.stage.expand_ns").Observe(1500)
	reg.Trace("maintain.applies").Record(TraceEvent{
		Name: "product_sales", Outcome: "staged", TotalNs: 2500,
		Stages: []Stage{{Name: "expand", Ns: 1500}},
	})
	text := reg.Snapshot().Format()
	for _, want := range []string{
		"warehouse.query.snapshot_hits", "3",
		"pool_occupancy", "maintain.stage.expand_ns",
		"product_sales", "staged", "expand=",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Format missing %q:\n%s", want, text)
		}
	}
	data, err := reg.Snapshot().MarshalJSONIndent()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if back.Counters["warehouse.query.snapshot_hits"] != 3 {
		t.Fatalf("round-tripped counter = %d", back.Counters["warehouse.query.snapshot_hits"])
	}
	if back.Histograms["maintain.stage.expand_ns"].Count != 1 {
		t.Fatalf("round-tripped histogram: %+v", back.Histograms["maintain.stage.expand_ns"])
	}
}

func TestHTTPHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c").Inc()
	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()
	for path, want := range map[string]string{
		"/metrics.json": `"c": 1`,
		"/metrics":      "counters:",
		"/debug/vars":   "memstats",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body := make([]byte, 1<<20)
		n, _ := resp.Body.Read(body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
		if !strings.Contains(string(body[:n]), want) {
			t.Errorf("%s: body missing %q", path, want)
		}
	}
	// A swapped-out registry serves 503.
	srv2 := httptest.NewServer(HandlerFunc(func() *Registry { return nil }))
	defer srv2.Close()
	resp, err := http.Get(srv2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("nil registry served status %d", resp.StatusCode)
	}
}
