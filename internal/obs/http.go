package obs

import (
	"expvar"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
)

// HandlerFunc builds an HTTP handler over a (possibly changing) registry:
//
//	/metrics.json     the registry snapshot as JSON
//	/metrics          the registry snapshot as text (the \metrics output)
//	/debug/vars       expvar (Go runtime memstats, cmdline)
//	/debug/pprof/...  net/http/pprof profiles
//
// get is called per request, so a caller whose registry can be swapped
// (dwshell replaces its warehouse on \load) always serves the live one.
func HandlerFunc(get func() *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		reg := get()
		if reg == nil {
			http.Error(w, "no registry", http.StatusServiceUnavailable)
			return
		}
		data, err := reg.Snapshot().MarshalJSONIndent()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
		w.Write([]byte("\n"))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		reg := get()
		if reg == nil {
			http.Error(w, "no registry", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, reg.Snapshot().Format())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Handler is HandlerFunc over a fixed registry.
func Handler(reg *Registry) http.Handler {
	return HandlerFunc(func() *Registry { return reg })
}

// Serve starts an HTTP server for the handler on addr (e.g. ":6060" or
// "127.0.0.1:0") in a background goroutine. It returns the bound address
// and a closer that shuts the listener down.
func Serve(addr string, get func() *Registry) (string, io.Closer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: HandlerFunc(get)}
	go srv.Serve(ln)
	return ln.Addr().String(), ln, nil
}
