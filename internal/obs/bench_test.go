package obs

import (
	"testing"
	"time"
)

// The obs package's promise is near-zero hot-path cost: counters and
// histograms are a handful of atomic adds, trace records one atomic
// increment plus one pointer store. These benchmarks are the receipts —
// `make obs-bench` runs them.

func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterAddParallel(b *testing.B) {
	c := NewRegistry().Counter("bench")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i) & 0xFFFFF)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		var i int64
		for pb.Next() {
			h.Observe(i & 0xFFFFF)
			i++
		}
	})
}

func BenchmarkHistogramSnapshot(b *testing.B) {
	h := NewHistogram()
	for i := int64(0); i < 100_000; i++ {
		h.Observe(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = h.Snapshot()
	}
}

func BenchmarkTraceRecord(b *testing.B) {
	r := NewTraceRing(DefaultTraceCap)
	ev := TraceEvent{Name: "bench", At: time.Now(), Outcome: "staged", TotalNs: 1234}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(ev)
	}
}

func BenchmarkTraceRecordParallel(b *testing.B) {
	r := NewTraceRing(DefaultTraceCap)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		ev := TraceEvent{Name: "bench", Outcome: "staged"}
		for pb.Next() {
			r.Record(ev)
		}
	})
}
