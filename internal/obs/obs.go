// Package obs is the warehouse's dependency-free observability layer:
// atomic counters and gauges, nanosecond-resolution latency histograms with
// p50/p95/p99 summaries, and a lock-free ring buffer of recent stage
// traces, all gathered behind a named Registry that renders to text (the
// dwshell \metrics command) or JSON (dwsim -metrics, BENCH_maintain.json).
//
// Everything here is race-clean and near-zero-cost on the hot path: an
// observation is a handful of atomic adds — no locks, no allocation, no
// map lookups. Instrumented code holds direct pointers to its metrics
// (obtained once at construction through the Registry); the Registry's
// mutex guards registration and snapshotting only, never observation. The
// paper's whole argument is quantitative (auxiliary-view sizes, Tables
// 3–4; maintenance work, Section 4), and the related maintenance-cost
// studies (Prakasha & Selvarani; Mistry et al.) hinge on exactly the
// per-stage accounting this package makes observable in a running
// warehouse.
package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n should be non-negative; Counter does not enforce it).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (pool occupancy, queue depth).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (negative to decrement).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Registry names and collects metrics. Counter/Gauge/Histogram/Trace are
// get-or-create: the first call under a name allocates, later calls return
// the same instance, so independent subsystems can share one metric by
// name. The registry mutex is taken only during registration and Snapshot
// — never on the observation path.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	traces   map[string]*TraceRing
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		traces:   make(map[string]*TraceRing),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// FindHistogram returns the named histogram or nil when none was ever
// registered. Unlike Histogram it never creates: readers (cost models,
// report renderers) must not grow the registry with names only they use.
func (r *Registry) FindHistogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hists[name]
}

// FindCounter returns the named counter or nil when none was ever
// registered (the non-creating read twin of Counter).
func (r *Registry) FindCounter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Trace returns the named trace ring, creating it (with DefaultTraceCap
// slots) on first use.
func (r *Registry) Trace(name string) *TraceRing {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.traces[name]
	if !ok {
		t = NewTraceRing(DefaultTraceCap)
		r.traces[name] = t
	}
	return t
}

// Snapshot is a point-in-time reading of every registered metric. Each
// individual metric is internally consistent; the set as a whole is not a
// single atomic cut (concurrent observers may land between reads).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Traces     map[string][]TraceEvent      `json:"traces,omitempty"`
}

// snapshotTraceEvents bounds how many recent trace events a Snapshot
// carries per ring.
const snapshotTraceEvents = 16

// Snapshot captures every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
		Traces:     make(map[string][]TraceEvent, len(r.traces)),
	}
	for n, c := range r.counters {
		s.Counters[n] = c.Load()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Load()
	}
	for n, h := range r.hists {
		s.Histograms[n] = h.Snapshot()
	}
	for n, t := range r.traces {
		s.Traces[n] = t.Recent(snapshotTraceEvents)
	}
	return s
}

// MarshalJSONIndent renders the snapshot as indented JSON.
func (s Snapshot) MarshalJSONIndent() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Format renders the snapshot as aligned, name-sorted text — the dwshell
// \metrics output.
func (s Snapshot) Format() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) > 0 {
		b.WriteString("counters:\n")
		for _, n := range names {
			fmt.Fprintf(&b, "  %-44s %12d\n", n, s.Counters[n])
		}
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) > 0 {
		b.WriteString("gauges:\n")
		for _, n := range names {
			fmt.Fprintf(&b, "  %-44s %12d\n", n, s.Gauges[n])
		}
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) > 0 {
		b.WriteString("histograms:                                         count         p50         p95         p99         max\n")
		for _, n := range names {
			h := s.Histograms[n]
			fmt.Fprintf(&b, "  %-44s %9d %11s %11s %11s %11s\n",
				n, h.Count, fmtNs(h.P50), fmtNs(h.P95), fmtNs(h.P99), fmtNs(h.Max))
		}
	}
	names = names[:0]
	for n := range s.Traces {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		evs := s.Traces[n]
		if len(evs) == 0 {
			continue
		}
		fmt.Fprintf(&b, "trace %s (last %d):\n", n, len(evs))
		for _, ev := range evs {
			fmt.Fprintf(&b, "  #%-6d %-16s %-10s %9s", ev.Seq, ev.Name, ev.Outcome, fmtNs(ev.TotalNs))
			if ev.Detail != "" {
				fmt.Fprintf(&b, "  %s", ev.Detail)
			}
			for _, st := range ev.Stages {
				if st.Ns > 0 {
					fmt.Fprintf(&b, " %s=%s", st.Name, fmtNs(st.Ns))
				}
			}
			b.WriteByte('\n')
		}
	}
	if b.Len() == 0 {
		return "(no metrics registered)\n"
	}
	return b.String()
}

// fmtNs renders a nanosecond quantity with a readable unit. Histograms of
// non-time quantities (e.g. journal depth) pass through as plain numbers
// below 1µs, which is exactly the readable form for small counts.
func fmtNs(ns int64) string {
	switch {
	case ns >= 1_000_000_000:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1_000_000:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 10_000:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%d", ns)
	}
}
