// Package wireclient is the Go client for the warehouse wire protocol
// (internal/wire, served by cmd/dwserver). A Client wraps one TCP
// connection with synchronous request/response round trips; it is safe
// for concurrent use (calls serialize on the connection). For concurrent
// load, open one Client per goroutine — connections are cheap and the
// server's group-commit pipeline batches across them.
package wireclient

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"mindetail/internal/maintain"
	"mindetail/internal/wire"
)

// DefaultDialTimeout bounds Dial's connect + handshake.
const DefaultDialTimeout = 10 * time.Second

// ErrClosed is returned by calls on a closed client.
var ErrClosed = errors.New("wireclient: client closed")

// Client is one authenticated wire-protocol session.
type Client struct {
	mu     sync.Mutex
	conn   net.Conn
	br     *bufio.Reader
	wbuf   []byte
	rbuf   []byte
	nextID uint64
	closed bool
}

// Options tunes Dial.
type Options struct {
	// DialTimeout bounds connect + handshake (<=0 selects
	// DefaultDialTimeout).
	DialTimeout time.Duration
	// MaxFrame bounds a single response frame (<=0 selects
	// wire.DefaultMaxFrame).
	MaxFrame int
}

// Dial connects to a dwserver at addr and authenticates with the shared
// secret.
func Dial(addr, secret string) (*Client, error) {
	return DialOptions(addr, secret, Options{})
}

// DialOptions is Dial with explicit options.
func DialOptions(addr, secret string, o Options) (*Client, error) {
	timeout := o.DialTimeout
	if timeout <= 0 {
		timeout = DefaultDialTimeout
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, br: bufio.NewReader(conn)}
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		conn.Close()
		return nil, err
	}
	if _, err := conn.Write(wire.Magic); err != nil {
		conn.Close()
		return nil, err
	}
	resp, err := c.roundTrip(wire.KindHello, wire.AppendHello(nil, secret))
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("wireclient: handshake: %w", err)
	}
	if resp.Kind != wire.KindOK {
		conn.Close()
		return nil, fmt.Errorf("wireclient: handshake: unexpected %s response", resp.Kind)
	}
	if err := conn.SetDeadline(time.Time{}); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// roundTrip sends one request frame and reads its response, matching the
// request id. A KindError response becomes a Go error.
func (c *Client) roundTrip(kind wire.Kind, body []byte) (wire.Frame, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return wire.Frame{}, ErrClosed
	}
	id := c.nextID
	c.nextID++
	var err error
	if c.wbuf, err = wire.WriteFrame(c.conn, c.wbuf, wire.Frame{Kind: kind, ID: id, Body: body}); err != nil {
		return wire.Frame{}, err
	}
	var resp wire.Frame
	if resp, c.rbuf, err = wire.ReadFrame(c.br, c.rbuf, 0); err != nil {
		return wire.Frame{}, err
	}
	// The body aliases the reusable read buffer; copy it out so callers may
	// decode after the mutex is released (another goroutine could already
	// be reusing the buffer for its own response).
	resp.Body = append([]byte(nil), resp.Body...)
	if resp.ID != id {
		return wire.Frame{}, fmt.Errorf("wireclient: response id %d for request %d", resp.ID, id)
	}
	if resp.Kind == wire.KindError {
		msg, derr := wire.DecodeStringBody(resp.Body)
		if derr != nil {
			return wire.Frame{}, fmt.Errorf("wireclient: malformed error response: %w", derr)
		}
		return wire.Frame{}, errors.New(msg)
	}
	return resp, nil
}

// Ping checks server liveness.
func (c *Client) Ping() error {
	resp, err := c.roundTrip(wire.KindPing, nil)
	if err != nil {
		return err
	}
	if resp.Kind != wire.KindOK {
		return fmt.Errorf("wireclient: unexpected %s response to ping", resp.Kind)
	}
	return nil
}

// Exec runs a SQL script on the server (DDL, DML, or queries) and returns
// the final SELECT's result set (nil for scripts ending in DDL/DML).
// All-SELECT scripts run on the server's shared-lock read path and
// overlap with other readers.
func (c *Client) Exec(sql string) (*wire.ResultSet, error) {
	resp, err := c.roundTrip(wire.KindExec, wire.AppendStringBody(nil, sql))
	if err != nil {
		return nil, err
	}
	if resp.Kind != wire.KindResult {
		return nil, fmt.Errorf("wireclient: unexpected %s response to exec", resp.Kind)
	}
	return wire.DecodeResultBody(resp.Body)
}

// Query reads a materialized view through the server's lock-free snapshot
// path.
func (c *Client) Query(view string) (*wire.ResultSet, error) {
	resp, err := c.roundTrip(wire.KindQuery, wire.AppendStringBody(nil, view))
	if err != nil {
		return nil, err
	}
	if resp.Kind != wire.KindResult {
		return nil, fmt.Errorf("wireclient: unexpected %s response to query", resp.Kind)
	}
	return wire.DecodeResultBody(resp.Body)
}

// ApplyDelta applies one externally produced delta through the server's
// group-commit pipeline; it returns once the delta's outcome is known
// (committed across every view, durable per the server's WAL policy).
func (c *Client) ApplyDelta(d maintain.Delta) error {
	resp, err := c.roundTrip(wire.KindApply, wire.AppendDeltaBody(nil, d))
	if err != nil {
		return err
	}
	if resp.Kind != wire.KindOK {
		return fmt.Errorf("wireclient: unexpected %s response to apply", resp.Kind)
	}
	return nil
}

// ApplyDeltaBatch applies a batch of deltas under one server-side lock
// acquisition and group commit. The returned slice has one entry per
// delta: nil when it committed, its error otherwise (the batch is a queue
// drain, not a transaction — later members still apply after a failure).
func (c *Client) ApplyDeltaBatch(ds []maintain.Delta) ([]error, error) {
	resp, err := c.roundTrip(wire.KindApplyBatch, wire.AppendDeltaBatchBody(nil, ds))
	if err != nil {
		return nil, err
	}
	if resp.Kind != wire.KindBatchResult {
		return nil, fmt.Errorf("wireclient: unexpected %s response to apply-batch", resp.Kind)
	}
	msgs, err := wire.DecodeBatchResultBody(resp.Body)
	if err != nil {
		return nil, err
	}
	if len(msgs) != len(ds) {
		return nil, fmt.Errorf("wireclient: %d outcomes for %d deltas", len(msgs), len(ds))
	}
	errs := make([]error, len(msgs))
	for i, m := range msgs {
		if m != "" {
			errs[i] = errors.New(m)
		}
	}
	return errs, nil
}

// Metrics fetches the server's observability snapshot as JSON.
func (c *Client) Metrics() ([]byte, error) {
	resp, err := c.roundTrip(wire.KindMetrics, nil)
	if err != nil {
		return nil, err
	}
	if resp.Kind != wire.KindMetricsResult {
		return nil, fmt.Errorf("wireclient: unexpected %s response to metrics", resp.Kind)
	}
	return resp.Body, nil
}

// Close tears down the connection. Safe to call twice.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.conn.Close()
}
