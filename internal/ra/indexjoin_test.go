package ra

import (
	"strings"
	"testing"

	"mindetail/internal/tuple"
	"mindetail/internal/types"
)

// memIndexed is a minimal Indexed implementation backed by a prebuilt hash
// index, standing in for the maintenance engine's auxiliary tables.
type memIndexed struct {
	cols    Schema
	attr    string
	byValue map[string][]tuple.Tuple
	probes  int
}

func newMemIndexed(rel *Relation, table, attr string) *memIndexed {
	m := &memIndexed{cols: rel.Cols, attr: attr, byValue: make(map[string][]tuple.Tuple)}
	pos, err := rel.Cols.Index(table, attr)
	if err != nil {
		panic(err)
	}
	for _, r := range rel.Rows {
		k := string(types.Encode(nil, r[pos]))
		m.byValue[k] = append(m.byValue[k], r)
	}
	return m
}

func (m *memIndexed) Cols() Schema { return m.cols }

func (m *memIndexed) Lookup(attr string, v types.Value) []tuple.Tuple {
	if attr != m.attr {
		return nil
	}
	m.probes++
	return m.byValue[string(types.Encode(nil, v))]
}

func indexJoinFixtures() (*Relation, *Relation) {
	left := NewRelation(Schema{{Table: "sale", Name: "id"}, {Table: "sale", Name: "pid"}})
	left.Rows = []tuple.Tuple{
		{types.Int(1), types.Int(100)},
		{types.Int(2), types.Int(100)},
		{types.Int(3), types.Int(101)},
		{types.Int(4), types.Int(999)}, // dangling: no match
		{types.Int(5), types.Null},     // NULL probe value: dropped
	}
	right := NewRelation(Schema{{Table: "product", Name: "id"}, {Table: "product", Name: "brand"}})
	right.Rows = []tuple.Tuple{
		{types.Int(100), types.Str("acme")},
		{types.Int(101), types.Str("bolt")},
		{types.Int(102), types.Str("cask")},
	}
	return left, right
}

// TestIndexedJoinMatchesHashJoin asserts the index-lookup join produces the
// same bag and schema as the ordinary hash join over the same inputs.
func TestIndexedJoinMatchesHashJoin(t *testing.T) {
	left, right := indexJoinFixtures()
	lcol := Col{Table: "sale", Name: "pid"}
	rcol := Col{Table: "product", Name: "id"}

	want, err := Join(Scan("sale", left), Scan("product", right), lcol, rcol).Eval()
	if err != nil {
		t.Fatal(err)
	}
	idx := newMemIndexed(right, "product", "id")
	node := IndexedJoin(Scan("sale", left), lcol, idx, "id", "product")
	got, err := node.Eval()
	if err != nil {
		t.Fatal(err)
	}
	if !EqualBag(got, want) {
		t.Fatalf("indexed join diverged from hash join:\n%s\nwant:\n%s", got.Format(), want.Format())
	}
	if len(got.Cols) != len(left.Cols)+len(right.Cols) {
		t.Fatalf("output schema has %d cols, want %d", len(got.Cols), len(left.Cols)+len(right.Cols))
	}
	// One probe per non-NULL left row, counted on the node.
	if idx.probes != 4 || node.Probes != 4 {
		t.Fatalf("probes = %d (node %d), want 4", idx.probes, node.Probes)
	}
}

// TestIndexedJoinRepeatedEval verifies that re-evaluation reflects index
// mutations without any rebuild — the property the maintenance engine's
// delta-scoped path relies on.
func TestIndexedJoinRepeatedEval(t *testing.T) {
	left, right := indexJoinFixtures()
	idx := newMemIndexed(right, "product", "id")
	node := IndexedJoin(Scan("sale", left), Col{Table: "sale", Name: "pid"}, idx, "id", "product")

	out1, err := node.Eval()
	if err != nil {
		t.Fatal(err)
	}
	// Mutate the "auxiliary table": product 999 appears.
	nrow := tuple.Tuple{types.Int(999), types.Str("zenith")}
	idx.byValue[string(types.Encode(nil, types.Int(999)))] = []tuple.Tuple{nrow}
	out2, err := node.Eval()
	if err != nil {
		t.Fatal(err)
	}
	if out2.Len() != out1.Len()+1 {
		t.Fatalf("after index insert: %d rows, want %d", out2.Len(), out1.Len()+1)
	}
}

func TestIndexedJoinExplain(t *testing.T) {
	left, right := indexJoinFixtures()
	idx := newMemIndexed(right, "product", "id")
	node := IndexedJoin(Scan("sale", left), Col{Table: "sale", Name: "pid"}, idx, "id", "product")
	out := Explain(node)
	if !strings.Contains(out, "IndexLookupJoin") || !strings.Contains(out, "product[id]") {
		t.Fatalf("unexpected explain output:\n%s", out)
	}
}
