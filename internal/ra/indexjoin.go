package ra

import (
	"fmt"
	"strings"

	"mindetail/internal/tuple"
	"mindetail/internal/types"
)

// Indexed is a row source that can be probed by attribute value without
// materializing the relation or building a per-evaluation hash table. The
// maintenance engine's auxiliary tables implement it: their hash indexes
// are maintained incrementally as deltas apply, so an index-lookup join
// amortizes the build cost across every evaluation.
type Indexed interface {
	// Cols returns the source's schema.
	Cols() Schema
	// Lookup returns the rows whose named attribute equals v. The returned
	// slice and tuples are owned by the source and must not be mutated.
	Lookup(attr string, v types.Value) []tuple.Tuple
}

// IndexedJoinNode (an index-lookup join) joins its child against an Indexed
// source: for each child row it probes the source's index on RAttr with the
// value of LCol. Unlike JoinNode it never rebuilds a hash table on Eval, so
// repeated evaluations against a mutable indexed store cost only the probes
// — the key property the delta-scoped maintenance path relies on. The
// output schema is the child schema followed by the source schema, matching
// JoinNode.
type IndexedJoinNode struct {
	Child Node
	LCol  Col
	R     Indexed
	RAttr string
	Label string // display name of the indexed source

	// Probes counts index probes across evaluations, for work accounting.
	Probes int
}

// IndexedJoin builds an index-lookup join node.
func IndexedJoin(child Node, lcol Col, r Indexed, rattr, label string) *IndexedJoinNode {
	return &IndexedJoinNode{Child: child, LCol: lcol, R: r, RAttr: rattr, Label: label}
}

// Eval implements Node.
func (n *IndexedJoinNode) Eval() (*Relation, error) {
	in, err := n.Child.Eval()
	if err != nil {
		return nil, err
	}
	li, err := in.Cols.Index(n.LCol.Table, n.LCol.Name)
	if err != nil {
		return nil, err
	}
	out := NewRelation(append(append(Schema{}, in.Cols...), n.R.Cols()...))
	out.Rows = make([]tuple.Tuple, 0, len(in.Rows))
	for _, lrow := range in.Rows {
		if lrow[li].IsNull() {
			continue
		}
		n.Probes++
		for _, rrow := range n.R.Lookup(n.RAttr, lrow[li]) {
			out.Rows = append(out.Rows, tuple.Concat(lrow, rrow))
		}
	}
	return out, nil
}

func (n *IndexedJoinNode) explain(b *strings.Builder, depth int) {
	indent(b, depth)
	label := n.Label
	if label == "" {
		label = "indexed"
	}
	fmt.Fprintf(b, "IndexLookupJoin %s = %s[%s]\n", n.LCol, label, n.RAttr)
	n.Child.explain(b, depth+1)
}
