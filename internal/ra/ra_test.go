package ra

import (
	"strings"
	"testing"

	"mindetail/internal/tuple"
	"mindetail/internal/types"
)

// saleRel builds a small sale relation resembling the paper's fact table:
// (id, timeid, productid, price).
func saleRel(rows ...[]int) *Relation {
	r := NewRelation(Schema{
		{Table: "sale", Name: "id"},
		{Table: "sale", Name: "timeid"},
		{Table: "sale", Name: "productid"},
		{Table: "sale", Name: "price"},
	})
	for _, row := range rows {
		r.Rows = append(r.Rows, tuple.Tuple{
			types.Int(int64(row[0])), types.Int(int64(row[1])),
			types.Int(int64(row[2])), types.Float(float64(row[3])),
		})
	}
	return r
}

func timeRel(rows ...[]int) *Relation {
	r := NewRelation(Schema{
		{Table: "time", Name: "id"},
		{Table: "time", Name: "month"},
		{Table: "time", Name: "year"},
	})
	for _, row := range rows {
		r.Rows = append(r.Rows, tuple.Tuple{
			types.Int(int64(row[0])), types.Int(int64(row[1])), types.Int(int64(row[2])),
		})
	}
	return r
}

func defaultSale() *Relation {
	return saleRel(
		[]int{1, 1, 100, 10},
		[]int{2, 1, 100, 20},
		[]int{3, 1, 101, 5},
		[]int{4, 2, 100, 7},
		[]int{5, 2, 101, 7},
	)
}

func defaultTime() *Relation {
	return timeRel(
		[]int{1, 1, 1997},
		[]int{2, 2, 1997},
		[]int{3, 1, 1998},
	)
}

func eval(t *testing.T, n Node) *Relation {
	t.Helper()
	rel, err := n.Eval()
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	return rel
}

func TestSchemaIndex(t *testing.T) {
	s := Schema{{Table: "sale", Name: "id"}, {Table: "time", Name: "id"}, {Table: "time", Name: "month"}}
	if i, err := s.Index("time", "id"); err != nil || i != 1 {
		t.Errorf("Index(time,id) = %d, %v", i, err)
	}
	if i, err := s.Index("", "month"); err != nil || i != 2 {
		t.Errorf("Index(,month) = %d, %v", i, err)
	}
	if _, err := s.Index("", "id"); err == nil {
		t.Error("ambiguous id resolved")
	}
	if _, err := s.Index("", "nope"); err == nil {
		t.Error("unknown column resolved")
	}
	if got := s.String(); !strings.Contains(got, "time.month") {
		t.Errorf("Schema.String = %q", got)
	}
}

func TestSelect(t *testing.T) {
	out := eval(t, Select(Scan("sale", defaultSale()),
		Comparison{Op: OpGE, L: ColRef{Table: "sale", Name: "price"}, R: Lit{types.Int(7)}},
		Comparison{Op: OpEQ, L: ColRef{Name: "timeid"}, R: Lit{types.Int(2)}},
	))
	if out.Len() != 2 {
		t.Fatalf("Select = %d rows:\n%s", out.Len(), out.Format())
	}
}

func TestSelectAllComparisonOps(t *testing.T) {
	price := ColRef{Name: "price"}
	cases := []struct {
		op   CmpOp
		want int
	}{
		{OpEQ, 2}, {OpNE, 3}, {OpLT, 1}, {OpLE, 3}, {OpGT, 2}, {OpGE, 4},
	}
	for _, c := range cases {
		out := eval(t, Select(Scan("sale", defaultSale()),
			Comparison{Op: c.op, L: price, R: Lit{types.Int(7)}}))
		if out.Len() != c.want {
			t.Errorf("op %s: %d rows, want %d", c.op, out.Len(), c.want)
		}
	}
}

func TestProjectPreservesDuplicates(t *testing.T) {
	out := eval(t, Project(Scan("sale", defaultSale()),
		OutExpr{Name: "timeid", Expr: ColRef{Name: "timeid"}}))
	if out.Len() != 5 {
		t.Errorf("bag projection must keep duplicates: %d rows", out.Len())
	}
}

func TestProjectArithmetic(t *testing.T) {
	out := eval(t, Project(Scan("sale", defaultSale()),
		OutExpr{Name: "double", Expr: Arith{Op: "*", L: ColRef{Name: "price"}, R: Lit{types.Int(2)}}}))
	if out.Rows[0][0].AsFloat() != 20 {
		t.Errorf("arith projection = %v", out.Rows[0][0])
	}
}

func TestGProjectEliminatesDuplicates(t *testing.T) {
	out := eval(t, GProject(Scan("sale", defaultSale()),
		ProjItem{Name: "timeid", Expr: ColRef{Name: "timeid"}}))
	if out.Len() != 2 {
		t.Errorf("generalized projection must eliminate duplicates: %d rows", out.Len())
	}
}

func TestGProjectAggregates(t *testing.T) {
	out := eval(t, GProject(Scan("sale", defaultSale()),
		ProjItem{Name: "timeid", Expr: ColRef{Name: "timeid"}},
		ProjItem{Name: "total", Agg: &Aggregate{Func: FuncSum, Arg: ColRef{Name: "price"}}},
		ProjItem{Name: "cnt", Agg: &Aggregate{Func: FuncCount}},
		ProjItem{Name: "lo", Agg: &Aggregate{Func: FuncMin, Arg: ColRef{Name: "price"}}},
		ProjItem{Name: "hi", Agg: &Aggregate{Func: FuncMax, Arg: ColRef{Name: "price"}}},
		ProjItem{Name: "avg", Agg: &Aggregate{Func: FuncAvg, Arg: ColRef{Name: "price"}}},
		ProjItem{Name: "nprod", Agg: &Aggregate{Func: FuncCount, Arg: ColRef{Name: "productid"}, Distinct: true}},
	)).Sorted()
	if out.Len() != 2 {
		t.Fatalf("groups = %d", out.Len())
	}
	// Group timeid=1: prices 10,20,5 → sum 35, cnt 3, min 5, max 20, avg 35/3, 2 products.
	g1 := out.Rows[0]
	if g1[0].AsInt() != 1 || g1[1].AsFloat() != 35 || g1[2].AsInt() != 3 ||
		g1[3].AsFloat() != 5 || g1[4].AsFloat() != 20 || g1[6].AsInt() != 2 {
		t.Errorf("group 1 = %v", g1)
	}
	if got := g1[5].AsFloat(); got < 11.66 || got > 11.67 {
		t.Errorf("avg = %v", got)
	}
	// Group timeid=2: prices 7,7 → sum 14, cnt 2, 2 distinct products.
	g2 := out.Rows[1]
	if g2[1].AsFloat() != 14 || g2[2].AsInt() != 2 || g2[6].AsInt() != 2 {
		t.Errorf("group 2 = %v", g2)
	}
}

func TestGProjectSumDistinct(t *testing.T) {
	out := eval(t, GProject(Scan("sale", defaultSale()),
		ProjItem{Name: "timeid", Expr: ColRef{Name: "timeid"}},
		ProjItem{Name: "sd", Agg: &Aggregate{Func: FuncSum, Arg: ColRef{Name: "price"}, Distinct: true}},
	)).Sorted()
	// timeid=2 has prices 7,7 → SUM(DISTINCT) = 7.
	if got := out.Rows[1][1].AsFloat(); got != 7 {
		t.Errorf("SUM(DISTINCT) = %v", got)
	}
}

func TestGProjectGlobalAggregationEmptyInput(t *testing.T) {
	out := eval(t, GProject(Scan("sale", saleRel()),
		ProjItem{Name: "cnt", Agg: &Aggregate{Func: FuncCount}},
		ProjItem{Name: "total", Agg: &Aggregate{Func: FuncSum, Arg: ColRef{Name: "price"}}},
	))
	if out.Len() != 1 {
		t.Fatalf("global aggregation over empty input should yield 1 row, got %d", out.Len())
	}
	if out.Rows[0][0].AsInt() != 0 || !out.Rows[0][1].IsNull() {
		t.Errorf("empty global agg = %v", out.Rows[0])
	}
}

func TestGProjectGroupedEmptyInputYieldsNoRows(t *testing.T) {
	out := eval(t, GProject(Scan("sale", saleRel()),
		ProjItem{Name: "timeid", Expr: ColRef{Name: "timeid"}},
		ProjItem{Name: "cnt", Agg: &Aggregate{Func: FuncCount}},
	))
	if out.Len() != 0 {
		t.Errorf("grouped empty input = %d rows", out.Len())
	}
}

func TestJoin(t *testing.T) {
	out := eval(t, Join(Scan("sale", defaultSale()), Scan("time", defaultTime()),
		Col{Table: "sale", Name: "timeid"}, Col{Table: "time", Name: "id"}))
	if out.Len() != 5 {
		t.Fatalf("join = %d rows", out.Len())
	}
	if len(out.Cols) != 7 {
		t.Errorf("join schema = %v", out.Cols)
	}
	// Every row must satisfy the join condition.
	ti, _ := out.Cols.Index("sale", "timeid")
	tid, _ := out.Cols.Index("time", "id")
	for _, row := range out.Rows {
		if !types.Equal(row[ti], row[tid]) {
			t.Errorf("join condition violated: %v", row)
		}
	}
}

func TestJoinNoMatches(t *testing.T) {
	out := eval(t, Join(Scan("sale", defaultSale()), Scan("time", timeRel([]int{9, 9, 1999})),
		Col{Table: "sale", Name: "timeid"}, Col{Table: "time", Name: "id"}))
	if out.Len() != 0 {
		t.Errorf("join with no matches = %d rows", out.Len())
	}
}

func TestSemiJoinAndAntiJoin(t *testing.T) {
	dim := timeRel([]int{1, 1, 1997}) // only timeid 1
	semi := eval(t, SemiJoin(Scan("sale", defaultSale()), Scan("time", dim),
		Col{Table: "sale", Name: "timeid"}, Col{Table: "time", Name: "id"}))
	if semi.Len() != 3 {
		t.Errorf("semijoin = %d rows", semi.Len())
	}
	if len(semi.Cols) != 4 {
		t.Errorf("semijoin schema must be left schema: %v", semi.Cols)
	}
	anti := eval(t, AntiJoin(Scan("sale", defaultSale()), Scan("time", dim),
		Col{Table: "sale", Name: "timeid"}, Col{Table: "time", Name: "id"}))
	if anti.Len() != 2 {
		t.Errorf("antijoin = %d rows", anti.Len())
	}
	if semi.Len()+anti.Len() != defaultSale().Len() {
		t.Error("semi + anti must partition the input")
	}
}

func TestPaperProductSalesShape(t *testing.T) {
	// A miniature of the paper's product_sales view over sale ⋈ time:
	// SELECT month, SUM(price), COUNT(*) WHERE year=1997 GROUP BY month.
	join := Join(Scan("sale", defaultSale()), Scan("time", defaultTime()),
		Col{Table: "sale", Name: "timeid"}, Col{Table: "time", Name: "id"})
	sel := Select(join, Comparison{Op: OpEQ, L: ColRef{Table: "time", Name: "year"}, R: Lit{types.Int(1997)}})
	view := GProject(sel,
		ProjItem{Name: "month", Expr: ColRef{Table: "time", Name: "month"}},
		ProjItem{Name: "TotalPrice", Agg: &Aggregate{Func: FuncSum, Arg: ColRef{Table: "sale", Name: "price"}}},
		ProjItem{Name: "TotalCount", Agg: &Aggregate{Func: FuncCount}},
	)
	out := eval(t, view).Sorted()
	if out.Len() != 2 {
		t.Fatalf("view = %d rows:\n%s", out.Len(), out.Format())
	}
	// month 1: sales 1,2,3 → 35/3; month 2: sales 4,5 → 14/2.
	if out.Rows[0][1].AsFloat() != 35 || out.Rows[0][2].AsInt() != 3 {
		t.Errorf("month 1 = %v", out.Rows[0])
	}
	if out.Rows[1][1].AsFloat() != 14 || out.Rows[1][2].AsInt() != 2 {
		t.Errorf("month 2 = %v", out.Rows[1])
	}
}

func TestEqualBag(t *testing.T) {
	a := defaultSale()
	b := defaultSale()
	// Shuffle b deterministically.
	b.Rows[0], b.Rows[4] = b.Rows[4], b.Rows[0]
	if !EqualBag(a, b) {
		t.Error("reordered bags must be equal")
	}
	b.Rows = b.Rows[:4]
	if EqualBag(a, b) {
		t.Error("different cardinality bags equal")
	}
	c := defaultSale()
	c.Rows[0] = c.Rows[1] // duplicate a row, drop another
	if EqualBag(a, c) {
		t.Error("different multiplicity bags equal")
	}
}

func TestExplain(t *testing.T) {
	plan := GProject(
		Select(
			Join(Scan("sale", defaultSale()), Scan("time", defaultTime()),
				Col{Table: "sale", Name: "timeid"}, Col{Table: "time", Name: "id"}),
			Comparison{Op: OpEQ, L: ColRef{Table: "time", Name: "year"}, R: Lit{types.Int(1997)}}),
		ProjItem{Name: "month", Expr: ColRef{Table: "time", Name: "month"}},
		ProjItem{Name: "cnt", Agg: &Aggregate{Func: FuncCount}},
	)
	got := Explain(plan)
	for _, want := range []string{"GProject", "Select", "HashJoin", "Scan sale", "Scan time", "COUNT(*)"} {
		if !strings.Contains(got, want) {
			t.Errorf("Explain missing %q:\n%s", want, got)
		}
	}
}

func TestBindErrors(t *testing.T) {
	sale := defaultSale()
	if _, err := Select(Scan("s", sale), Comparison{Op: OpEQ, L: ColRef{Name: "nope"}, R: Lit{types.Int(1)}}).Eval(); err == nil {
		t.Error("unknown column in Select accepted")
	}
	if _, err := Project(Scan("s", sale), OutExpr{Name: "x", Expr: ColRef{Name: "nope"}}).Eval(); err == nil {
		t.Error("unknown column in Project accepted")
	}
	if _, err := GProject(Scan("s", sale), ProjItem{Name: "x", Agg: &Aggregate{Func: FuncSum, Arg: ColRef{Name: "nope"}}}).Eval(); err == nil {
		t.Error("unknown column in aggregate accepted")
	}
	if _, err := Join(Scan("s", sale), Scan("t", defaultTime()), Col{Name: "nope"}, Col{Table: "time", Name: "id"}).Eval(); err == nil {
		t.Error("unknown join column accepted")
	}
	if _, err := (Arith{Op: "%", L: Lit{types.Int(1)}, R: Lit{types.Int(2)}}).Bind(sale.Cols); err == nil {
		t.Error("unknown arithmetic op accepted")
	}
	if _, err := GProject(Scan("s", sale), ProjItem{Name: "x", Agg: &Aggregate{Func: FuncSum, Arg: ColRef{Name: "id"}}},
		ProjItem{Name: "y", Agg: &Aggregate{Func: "MEDIAN", Arg: ColRef{Name: "id"}}}).Eval(); err == nil {
		t.Error("unknown aggregate func accepted")
	}
}

func TestAggregateString(t *testing.T) {
	cases := []struct {
		a    Aggregate
		want string
	}{
		{Aggregate{Func: FuncCount}, "COUNT(*)"},
		{Aggregate{Func: FuncSum, Arg: ColRef{Name: "price"}}, "SUM(price)"},
		{Aggregate{Func: FuncCount, Arg: ColRef{Name: "brand"}, Distinct: true}, "COUNT(DISTINCT brand)"},
	}
	for _, c := range cases {
		if got := c.a.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestRelationFormatAndSorted(t *testing.T) {
	out := defaultSale().Format()
	if !strings.Contains(out, "sale.price") || !strings.Contains(out, "(5 rows)") {
		t.Errorf("Format:\n%s", out)
	}
	s := defaultSale().Sorted()
	for i := 1; i < s.Len(); i++ {
		if s.Rows[i-1][0].AsInt() > s.Rows[i][0].AsInt() {
			t.Error("Sorted not sorted")
		}
	}
}

func TestExplainAllNodeTypes(t *testing.T) {
	sale := defaultSale()
	tm := defaultTime()
	plan := Project(
		AntiJoin(
			SemiJoin(Scan("sale", sale), Scan("time", tm),
				Col{Table: "sale", Name: "timeid"}, Col{Table: "time", Name: "id"}),
			Scan("time2", timeRel([]int{9, 9, 1999})),
			Col{Table: "sale", Name: "timeid"}, Col{Table: "time", Name: "id"}),
		OutExpr{Name: "p", Expr: Arith{Op: "+", L: ColRef{Name: "price"}, R: Lit{types.Int(1)}}},
	)
	got := Explain(plan)
	for _, want := range []string{"Project", "AntiJoin", "SemiJoin", "Scan sale", "price + 1"} {
		if !strings.Contains(got, want) {
			t.Errorf("Explain missing %q:\n%s", want, got)
		}
	}
	if _, err := plan.Eval(); err != nil {
		t.Fatal(err)
	}
}

func TestSemiJoinErrorPaths(t *testing.T) {
	sale := defaultSale()
	tm := defaultTime()
	if _, err := SemiJoin(Scan("s", sale), Scan("t", tm),
		Col{Name: "nope"}, Col{Table: "time", Name: "id"}).Eval(); err == nil {
		t.Error("unknown left column accepted")
	}
	if _, err := SemiJoin(Scan("s", sale), Scan("t", tm),
		Col{Table: "sale", Name: "timeid"}, Col{Name: "nope"}).Eval(); err == nil {
		t.Error("unknown right column accepted")
	}
	if _, err := Join(Scan("s", sale), Scan("t", tm),
		Col{Table: "sale", Name: "timeid"}, Col{Name: "nope"}).Eval(); err == nil {
		t.Error("unknown join right column accepted")
	}
}

func TestRelationBytesAndClone(t *testing.T) {
	r := defaultSale()
	if r.Bytes() <= 0 {
		t.Error("Bytes = 0")
	}
	c := r.Clone()
	c.Rows = c.Rows[:1]
	if r.Len() != 5 {
		t.Error("Clone shares row slice length")
	}
}
