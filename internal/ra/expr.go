// Package ra implements the relational algebra that GPSJ views are defined
// in (paper Section 2.1): selection with conjunctive conditions, key-based
// equi-joins and semijoins, duplicate-preserving projection, and the
// generalized projection operator Π_A of Gupta, Harinarayan, and Quass —
// projection extended with grouping and aggregation, which is
// duplicate-eliminating.
//
// The evaluator is materializing: every plan node produces a *Relation.
// This keeps deltas first-class (maintenance propagates materialized
// relations) and plans inspectable via Explain.
package ra

import (
	"fmt"
	"strings"

	"mindetail/internal/tuple"
	"mindetail/internal/types"
)

// Col identifies a column of a relation. Base-table columns are qualified
// by their table name; columns produced by generalized projection carry an
// empty Table and their output alias as Name.
type Col struct {
	Table string
	Name  string
}

// String renders the column as table.name or name.
func (c Col) String() string {
	if c.Table == "" {
		return c.Name
	}
	return c.Table + "." + c.Name
}

// Schema is the ordered column list of a relation.
type Schema []Col

// Index locates a column. When table is empty, the name alone must be
// unambiguous. It returns -1 with an error when not found or ambiguous.
func (s Schema) Index(table, name string) (int, error) {
	found := -1
	for i, c := range s {
		if c.Name != name {
			continue
		}
		if table != "" && c.Table != table {
			continue
		}
		if found >= 0 {
			return -1, fmt.Errorf("ra: column %s is ambiguous in schema %v", name, s)
		}
		found = i
	}
	if found < 0 {
		col := Col{Table: table, Name: name}
		return -1, fmt.Errorf("ra: column %s not found in schema %v", col, s)
	}
	return found, nil
}

// String renders the schema as a parenthesized column list.
func (s Schema) String() string {
	parts := make([]string, len(s))
	for i, c := range s {
		parts[i] = c.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Expr is a scalar expression over a relation's columns.
type Expr interface {
	// String renders the expression in SQL syntax.
	String() string
	// Cols appends every column referenced by the expression to dst.
	Cols(dst []Col) []Col
	// Bind resolves column references against a schema and returns an
	// evaluator closure.
	Bind(s Schema) (func(tuple.Tuple) (types.Value, error), error)
}

// ColRef references a column.
type ColRef struct {
	Table string
	Name  string
}

// String implements Expr.
func (c ColRef) String() string { return Col{Table: c.Table, Name: c.Name}.String() }

// Cols implements Expr.
func (c ColRef) Cols(dst []Col) []Col { return append(dst, Col{Table: c.Table, Name: c.Name}) }

// Bind implements Expr.
func (c ColRef) Bind(s Schema) (func(tuple.Tuple) (types.Value, error), error) {
	i, err := s.Index(c.Table, c.Name)
	if err != nil {
		return nil, err
	}
	return func(row tuple.Tuple) (types.Value, error) { return row[i], nil }, nil
}

// Lit is a literal value.
type Lit struct {
	V types.Value
}

// String implements Expr.
func (l Lit) String() string { return l.V.String() }

// Cols implements Expr.
func (l Lit) Cols(dst []Col) []Col { return dst }

// Bind implements Expr.
func (l Lit) Bind(Schema) (func(tuple.Tuple) (types.Value, error), error) {
	v := l.V
	return func(tuple.Tuple) (types.Value, error) { return v, nil }, nil
}

// Arith is a binary arithmetic expression (+, -, *, /).
type Arith struct {
	Op   string
	L, R Expr
}

// String implements Expr.
func (a Arith) String() string { return fmt.Sprintf("%s %s %s", a.L, a.Op, a.R) }

// Cols implements Expr.
func (a Arith) Cols(dst []Col) []Col { return a.R.Cols(a.L.Cols(dst)) }

// Bind implements Expr.
func (a Arith) Bind(s Schema) (func(tuple.Tuple) (types.Value, error), error) {
	lf, err := a.L.Bind(s)
	if err != nil {
		return nil, err
	}
	rf, err := a.R.Bind(s)
	if err != nil {
		return nil, err
	}
	var op func(x, y types.Value) (types.Value, error)
	switch a.Op {
	case "+":
		op = types.Add
	case "-":
		op = types.Sub
	case "*":
		op = types.Mul
	case "/":
		op = types.Div
	default:
		return nil, fmt.Errorf("ra: unknown arithmetic operator %q", a.Op)
	}
	return func(row tuple.Tuple) (types.Value, error) {
		x, err := lf(row)
		if err != nil {
			return types.Null, err
		}
		y, err := rf(row)
		if err != nil {
			return types.Null, err
		}
		return op(x, y)
	}, nil
}

// CmpOp is a comparison operator.
type CmpOp string

// The comparison operators of the SQL subset.
const (
	OpEQ CmpOp = "="
	OpNE CmpOp = "<>"
	OpLT CmpOp = "<"
	OpLE CmpOp = "<="
	OpGT CmpOp = ">"
	OpGE CmpOp = ">="
)

// Comparison is an atomic condition L op R. GPSJ selection conditions are
// conjunctions of comparisons (paper Section 2.1); a conjunction is a
// []Comparison.
type Comparison struct {
	Op   CmpOp
	L, R Expr
}

// String renders the comparison in SQL syntax.
func (c Comparison) String() string { return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R) }

// Cols appends every referenced column to dst.
func (c Comparison) Cols(dst []Col) []Col { return c.R.Cols(c.L.Cols(dst)) }

// Bind resolves the comparison against a schema and returns a predicate
// closure. Comparisons involving NULL are false (SQL semantics).
func (c Comparison) Bind(s Schema) (func(tuple.Tuple) (bool, error), error) {
	lf, err := c.L.Bind(s)
	if err != nil {
		return nil, err
	}
	rf, err := c.R.Bind(s)
	if err != nil {
		return nil, err
	}
	op := c.Op
	return func(row tuple.Tuple) (bool, error) {
		x, err := lf(row)
		if err != nil {
			return false, err
		}
		y, err := rf(row)
		if err != nil {
			return false, err
		}
		if x.IsNull() || y.IsNull() {
			return false, nil
		}
		cmp := types.Compare(x, y)
		switch op {
		case OpEQ:
			return types.Equal(x, y), nil
		case OpNE:
			return !types.Equal(x, y), nil
		case OpLT:
			return cmp < 0, nil
		case OpLE:
			return cmp <= 0, nil
		case OpGT:
			return cmp > 0, nil
		case OpGE:
			return cmp >= 0, nil
		default:
			return false, fmt.Errorf("ra: unknown comparison operator %q", op)
		}
	}, nil
}

// BindAll binds a conjunction of comparisons into a single predicate.
func BindAll(conds []Comparison, s Schema) (func(tuple.Tuple) (bool, error), error) {
	preds := make([]func(tuple.Tuple) (bool, error), len(conds))
	for i, c := range conds {
		p, err := c.Bind(s)
		if err != nil {
			return nil, err
		}
		preds[i] = p
	}
	return func(row tuple.Tuple) (bool, error) {
		for _, p := range preds {
			ok, err := p(row)
			if err != nil || !ok {
				return false, err
			}
		}
		return true, nil
	}, nil
}

// ConjString renders a conjunction as "a AND b AND c".
func ConjString(conds []Comparison) string {
	parts := make([]string, len(conds))
	for i, c := range conds {
		parts[i] = c.String()
	}
	return strings.Join(parts, " AND ")
}
