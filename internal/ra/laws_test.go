package ra

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mindetail/internal/tuple"
	"mindetail/internal/types"
)

// randSale generates a random sale relation from a seed, for property tests
// of algebra laws.
func randSale(seed int64, n int) *Relation {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]int, n)
	for i := range rows {
		rows[i] = []int{i + 1, rng.Intn(4) + 1, rng.Intn(5) + 100, rng.Intn(30)}
	}
	return saleRel(rows...)
}

func randTime(seed int64) *Relation {
	rng := rand.New(rand.NewSource(seed))
	var rows [][]int
	for id := 1; id <= 4; id++ {
		rows = append(rows, []int{id, rng.Intn(12) + 1, 1997 + rng.Intn(2)})
	}
	return timeRel(rows...)
}

// Law: selection pushdown through join. σ_p(R ⋈ S) = σ_p(R) ⋈ S when p
// references only R — the basis of local reductions (paper Section 2.2).
func TestPropertySelectionPushdownThroughJoin(t *testing.T) {
	f := func(seed int64, threshold uint8) bool {
		sale := randSale(seed, 40)
		tm := randTime(seed + 1)
		pred := Comparison{Op: OpGE, L: ColRef{Table: "sale", Name: "price"}, R: Lit{types.Int(int64(threshold % 30))}}
		jl, jr := Col{Table: "sale", Name: "timeid"}, Col{Table: "time", Name: "id"}

		after, err1 := Select(Join(Scan("sale", sale), Scan("time", tm), jl, jr), pred).Eval()
		before, err2 := Join(Select(Scan("sale", sale), pred), Scan("time", tm), jl, jr).Eval()
		return err1 == nil && err2 == nil && EqualBag(after, before)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Law: semijoin reduction. When every left row has a right match that
// survives, R ⋉ S = R; and in general (R ⋉ S) ⋈ S = R ⋈ S — the
// correctness basis of join reductions.
func TestPropertySemijoinPreservesJoin(t *testing.T) {
	f := func(seed int64, keepMask uint8) bool {
		sale := randSale(seed, 40)
		tm := randTime(seed + 1)
		// Keep a random subset of the time dimension.
		kept := timeRel()
		kept.Cols = tm.Cols
		for i, row := range tm.Rows {
			if keepMask&(1<<uint(i%8)) != 0 {
				kept.Rows = append(kept.Rows, row)
			}
		}
		jl, jr := Col{Table: "sale", Name: "timeid"}, Col{Table: "time", Name: "id"}
		full, err1 := Join(Scan("sale", sale), Scan("time", kept), jl, jr).Eval()
		reduced, err2 := Join(SemiJoin(Scan("sale", sale), Scan("time", kept), jl, jr), Scan("time", kept), jl, jr).Eval()
		return err1 == nil && err2 == nil && EqualBag(full, reduced)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Law: distributivity of CSMAS aggregates — the correctness basis of smart
// duplicate compression (paper Section 3.2). Two-level aggregation of SUM
// and COUNT over any partitioning equals one-level aggregation.
func TestPropertyDistributiveAggregationTwoLevel(t *testing.T) {
	f := func(seed int64) bool {
		sale := randSale(seed, 60)

		// One level: GROUP BY timeid.
		one, err := GroupBy(sale, []ProjItem{
			{Name: "timeid", Expr: ColRef{Name: "timeid"}},
			{Name: "s", Agg: &Aggregate{Func: FuncSum, Arg: ColRef{Name: "price"}}},
			{Name: "c", Agg: &Aggregate{Func: FuncCount}},
		})
		if err != nil {
			return false
		}
		// Two levels: GROUP BY timeid, productid first (the compressed
		// auxiliary view), then re-aggregate.
		mid, err := GroupBy(sale, []ProjItem{
			{Name: "timeid", Expr: ColRef{Name: "timeid"}},
			{Name: "productid", Expr: ColRef{Name: "productid"}},
			{Name: "s", Agg: &Aggregate{Func: FuncSum, Arg: ColRef{Name: "price"}}},
			{Name: "c", Agg: &Aggregate{Func: FuncCount}},
		})
		if err != nil {
			return false
		}
		two, err := GroupBy(mid, []ProjItem{
			{Name: "timeid", Expr: ColRef{Name: "timeid"}},
			{Name: "s", Agg: &Aggregate{Func: FuncSum, Arg: ColRef{Name: "s"}}},
			{Name: "c", Agg: &Aggregate{Func: FuncSum, Arg: ColRef{Name: "c"}}},
		})
		if err != nil {
			return false
		}
		// Compare as sets; COUNT re-aggregated via SUM yields Int both ways.
		return EqualBag(one, two)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Law: MIN/MAX ignore duplicates — they can be computed from the
// duplicate-compressed auxiliary view directly (paper Section 3.2).
func TestPropertyMinMaxDuplicateInsensitive(t *testing.T) {
	f := func(seed int64) bool {
		sale := randSale(seed, 60)
		direct, err := GroupBy(sale, []ProjItem{
			{Name: "productid", Expr: ColRef{Name: "productid"}},
			{Name: "hi", Agg: &Aggregate{Func: FuncMax, Arg: ColRef{Name: "price"}}},
			{Name: "lo", Agg: &Aggregate{Func: FuncMin, Arg: ColRef{Name: "price"}}},
		})
		if err != nil {
			return false
		}
		// Compress duplicates away first (the aux view keeps price as a
		// plain attribute for non-CSMAS aggregates).
		dedup, err := GroupBy(sale, []ProjItem{
			{Name: "productid", Expr: ColRef{Name: "productid"}},
			{Name: "price", Expr: ColRef{Name: "price"}},
		})
		if err != nil {
			return false
		}
		fromAux, err := GroupBy(dedup, []ProjItem{
			{Name: "productid", Expr: ColRef{Name: "productid"}},
			{Name: "hi", Agg: &Aggregate{Func: FuncMax, Arg: ColRef{Name: "price"}}},
			{Name: "lo", Agg: &Aggregate{Func: FuncMin, Arg: ColRef{Name: "price"}}},
		})
		if err != nil {
			return false
		}
		return EqualBag(direct, fromAux)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Law: COUNT(a) = COUNT(*) in the absence of nulls (paper Section 3.1:
// "because null-values are not considered any COUNT can be replaced by a
// COUNT(*)").
func TestPropertyCountEqualsCountStarWithoutNulls(t *testing.T) {
	f := func(seed int64) bool {
		sale := randSale(seed, 50)
		out, err := GroupBy(sale, []ProjItem{
			{Name: "timeid", Expr: ColRef{Name: "timeid"}},
			{Name: "ca", Agg: &Aggregate{Func: FuncCount, Arg: ColRef{Name: "price"}}},
			{Name: "cs", Agg: &Aggregate{Func: FuncCount}},
		})
		if err != nil {
			return false
		}
		for _, row := range out.Rows {
			if row[1].AsInt() != row[2].AsInt() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Law: AVG = SUM / COUNT — the replacement rule of Table 2.
func TestPropertyAvgReplacement(t *testing.T) {
	f := func(seed int64) bool {
		sale := randSale(seed, 50)
		out, err := GroupBy(sale, []ProjItem{
			{Name: "timeid", Expr: ColRef{Name: "timeid"}},
			{Name: "avg", Agg: &Aggregate{Func: FuncAvg, Arg: ColRef{Name: "price"}}},
			{Name: "sum", Agg: &Aggregate{Func: FuncSum, Arg: ColRef{Name: "price"}}},
			{Name: "cnt", Agg: &Aggregate{Func: FuncCount}},
		})
		if err != nil {
			return false
		}
		for _, row := range out.Rows {
			want := row[2].AsFloat() / float64(row[3].AsInt())
			if diff := row[1].AsFloat() - want; diff > 1e-9 || diff < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// GProject over a bag equals GProject over the same bag in any order.
func TestPropertyGroupByOrderInsensitive(t *testing.T) {
	f := func(seed int64) bool {
		sale := randSale(seed, 40)
		shuffled := sale.Clone()
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		rng.Shuffle(len(shuffled.Rows), func(i, j int) {
			shuffled.Rows[i], shuffled.Rows[j] = shuffled.Rows[j], shuffled.Rows[i]
		})
		items := []ProjItem{
			{Name: "productid", Expr: ColRef{Name: "productid"}},
			{Name: "s", Agg: &Aggregate{Func: FuncSum, Arg: ColRef{Name: "price"}}},
			{Name: "d", Agg: &Aggregate{Func: FuncCount, Arg: ColRef{Name: "timeid"}, Distinct: true}},
		}
		a, err1 := GroupBy(sale, items)
		b, err2 := GroupBy(shuffled, items)
		return err1 == nil && err2 == nil && EqualBag(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

var _ = tuple.Tuple{} // keep import if unused in future edits
