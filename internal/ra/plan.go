package ra

import (
	"fmt"
	"strings"

	"mindetail/internal/tuple"
	"mindetail/internal/types"
)

// Node is a relational algebra plan node. Evaluation materializes the
// node's result.
type Node interface {
	// Eval computes the node's relation.
	Eval() (*Relation, error)
	// explain writes one line per node at the given depth.
	explain(b *strings.Builder, depth int)
}

// Explain renders the plan tree.
func Explain(n Node) string {
	var b strings.Builder
	n.explain(&b, 0)
	return b.String()
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

// ScanNode produces a fixed relation (a base table snapshot, an auxiliary
// view's current contents, or a delta).
type ScanNode struct {
	Label string
	Rel   *Relation
}

// Scan wraps a relation as a leaf node.
func Scan(label string, rel *Relation) *ScanNode { return &ScanNode{Label: label, Rel: rel} }

// Eval implements Node.
func (n *ScanNode) Eval() (*Relation, error) { return n.Rel, nil }

func (n *ScanNode) explain(b *strings.Builder, depth int) {
	indent(b, depth)
	fmt.Fprintf(b, "Scan %s %s [%d rows]\n", n.Label, n.Rel.Cols, n.Rel.Len())
}

// SelectNode filters its child by a conjunction of comparisons.
type SelectNode struct {
	Child Node
	Conds []Comparison
}

// Select builds a selection node.
func Select(child Node, conds ...Comparison) *SelectNode {
	return &SelectNode{Child: child, Conds: conds}
}

// Eval implements Node.
func (n *SelectNode) Eval() (*Relation, error) {
	in, err := n.Child.Eval()
	if err != nil {
		return nil, err
	}
	pred, err := BindAll(n.Conds, in.Cols)
	if err != nil {
		return nil, err
	}
	out := NewRelation(in.Cols)
	for _, row := range in.Rows {
		ok, err := pred(row)
		if err != nil {
			return nil, err
		}
		if ok {
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

func (n *SelectNode) explain(b *strings.Builder, depth int) {
	indent(b, depth)
	fmt.Fprintf(b, "Select %s\n", ConjString(n.Conds))
	n.Child.explain(b, depth+1)
}

// OutExpr names an output expression of a duplicate-preserving projection.
type OutExpr struct {
	Name string
	Expr Expr
}

// ProjectNode computes a duplicate-preserving (bag) projection. The
// duplicate-eliminating generalized projection of the paper is GProjectNode.
type ProjectNode struct {
	Child Node
	Items []OutExpr
}

// Project builds a bag projection node.
func Project(child Node, items ...OutExpr) *ProjectNode {
	return &ProjectNode{Child: child, Items: items}
}

// Eval implements Node.
func (n *ProjectNode) Eval() (*Relation, error) {
	in, err := n.Child.Eval()
	if err != nil {
		return nil, err
	}
	fns := make([]func(tuple.Tuple) (types.Value, error), len(n.Items))
	cols := make(Schema, len(n.Items))
	for i, it := range n.Items {
		f, err := it.Expr.Bind(in.Cols)
		if err != nil {
			return nil, err
		}
		fns[i] = f
		cols[i] = Col{Name: it.Name}
	}
	out := NewRelation(cols)
	for _, row := range in.Rows {
		orow := make(tuple.Tuple, len(fns))
		for i, f := range fns {
			v, err := f(row)
			if err != nil {
				return nil, err
			}
			orow[i] = v
		}
		out.Rows = append(out.Rows, orow)
	}
	return out, nil
}

func (n *ProjectNode) explain(b *strings.Builder, depth int) {
	indent(b, depth)
	parts := make([]string, len(n.Items))
	for i, it := range n.Items {
		parts[i] = it.Expr.String() + " AS " + it.Name
	}
	fmt.Fprintf(b, "Project %s\n", strings.Join(parts, ", "))
	n.Child.explain(b, depth+1)
}

// GProjectNode is the generalized projection Π_A: grouping on the plain
// items, aggregation for the aggregate items, duplicate elimination
// throughout (paper Section 2.1).
type GProjectNode struct {
	Child Node
	Items []ProjItem
}

// GProject builds a generalized projection node.
func GProject(child Node, items ...ProjItem) *GProjectNode {
	return &GProjectNode{Child: child, Items: items}
}

// Eval implements Node.
func (n *GProjectNode) Eval() (*Relation, error) {
	in, err := n.Child.Eval()
	if err != nil {
		return nil, err
	}
	return GroupBy(in, n.Items)
}

func (n *GProjectNode) explain(b *strings.Builder, depth int) {
	indent(b, depth)
	parts := make([]string, len(n.Items))
	for i, it := range n.Items {
		parts[i] = it.String()
	}
	fmt.Fprintf(b, "GProject %s\n", strings.Join(parts, ", "))
	n.Child.explain(b, depth+1)
}

// JoinNode is a hash equi-join on a single column pair, the only join form
// GPSJ views use (joins on keys, paper Section 2.1). Output schema is the
// concatenation of both input schemas.
type JoinNode struct {
	L, R       Node
	LCol, RCol Col
}

// Join builds an equi-join node.
func Join(l, r Node, lcol, rcol Col) *JoinNode {
	return &JoinNode{L: l, R: r, LCol: lcol, RCol: rcol}
}

// Eval implements Node.
func (n *JoinNode) Eval() (*Relation, error) {
	lrel, err := n.L.Eval()
	if err != nil {
		return nil, err
	}
	rrel, err := n.R.Eval()
	if err != nil {
		return nil, err
	}
	li, err := lrel.Cols.Index(n.LCol.Table, n.LCol.Name)
	if err != nil {
		return nil, err
	}
	ri, err := rrel.Cols.Index(n.RCol.Table, n.RCol.Name)
	if err != nil {
		return nil, err
	}
	// Build on the right input (dimension side in star joins).
	build := make(map[string][]tuple.Tuple, len(rrel.Rows))
	for _, row := range rrel.Rows {
		k := string(types.Encode(nil, row[ri]))
		build[k] = append(build[k], row)
	}
	out := NewRelation(append(append(Schema{}, lrel.Cols...), rrel.Cols...))
	for _, lrow := range lrel.Rows {
		if lrow[li].IsNull() {
			continue
		}
		k := string(types.Encode(nil, lrow[li]))
		for _, rrow := range build[k] {
			out.Rows = append(out.Rows, tuple.Concat(lrow, rrow))
		}
	}
	return out, nil
}

func (n *JoinNode) explain(b *strings.Builder, depth int) {
	indent(b, depth)
	fmt.Fprintf(b, "HashJoin %s = %s\n", n.LCol, n.RCol)
	n.L.explain(b, depth+1)
	n.R.explain(b, depth+1)
}

// SemiJoinNode keeps the left rows that have a match on the right — the
// join reduction operator of Section 2.2. With Anti set it keeps the left
// rows withOUT a match instead.
type SemiJoinNode struct {
	L, R       Node
	LCol, RCol Col
	Anti       bool
}

// SemiJoin builds a semijoin node.
func SemiJoin(l, r Node, lcol, rcol Col) *SemiJoinNode {
	return &SemiJoinNode{L: l, R: r, LCol: lcol, RCol: rcol}
}

// AntiJoin builds an anti-semijoin node.
func AntiJoin(l, r Node, lcol, rcol Col) *SemiJoinNode {
	return &SemiJoinNode{L: l, R: r, LCol: lcol, RCol: rcol, Anti: true}
}

// Eval implements Node.
func (n *SemiJoinNode) Eval() (*Relation, error) {
	lrel, err := n.L.Eval()
	if err != nil {
		return nil, err
	}
	rrel, err := n.R.Eval()
	if err != nil {
		return nil, err
	}
	li, err := lrel.Cols.Index(n.LCol.Table, n.LCol.Name)
	if err != nil {
		return nil, err
	}
	ri, err := rrel.Cols.Index(n.RCol.Table, n.RCol.Name)
	if err != nil {
		return nil, err
	}
	exists := make(map[string]bool, len(rrel.Rows))
	for _, row := range rrel.Rows {
		exists[string(types.Encode(nil, row[ri]))] = true
	}
	out := NewRelation(lrel.Cols)
	for _, lrow := range lrel.Rows {
		match := !lrow[li].IsNull() && exists[string(types.Encode(nil, lrow[li]))]
		if match != n.Anti {
			out.Rows = append(out.Rows, lrow)
		}
	}
	return out, nil
}

func (n *SemiJoinNode) explain(b *strings.Builder, depth int) {
	indent(b, depth)
	op := "SemiJoin"
	if n.Anti {
		op = "AntiJoin"
	}
	fmt.Fprintf(b, "%s %s = %s\n", op, n.LCol, n.RCol)
	n.L.explain(b, depth+1)
	n.R.explain(b, depth+1)
}
