package ra

import (
	"fmt"

	"mindetail/internal/tuple"
	"mindetail/internal/types"
)

// AggFunc enumerates the five SQL aggregate functions considered by the
// paper (Section 3.1).
type AggFunc string

// The SQL aggregate functions.
const (
	FuncCount AggFunc = "COUNT"
	FuncSum   AggFunc = "SUM"
	FuncAvg   AggFunc = "AVG"
	FuncMin   AggFunc = "MIN"
	FuncMax   AggFunc = "MAX"
)

// Aggregate is an aggregate application f(arg) or f(DISTINCT arg).
// COUNT(*) is represented by FuncCount with a nil Arg.
type Aggregate struct {
	Func     AggFunc
	Arg      Expr // nil means COUNT(*)
	Distinct bool
}

// IsCountStar reports whether the aggregate is COUNT(*).
func (a Aggregate) IsCountStar() bool { return a.Func == FuncCount && a.Arg == nil }

// String renders the aggregate in SQL syntax.
func (a Aggregate) String() string {
	if a.IsCountStar() {
		return "COUNT(*)"
	}
	if a.Distinct {
		return fmt.Sprintf("%s(DISTINCT %s)", a.Func, a.Arg)
	}
	return fmt.Sprintf("%s(%s)", a.Func, a.Arg)
}

// ProjItem is one entry of a generalized projection list: either a plain
// expression (which becomes a group-by column, paper Section 2.1) or an
// aggregate. Name is the output column alias.
type ProjItem struct {
	Name string
	Expr Expr       // set for plain items
	Agg  *Aggregate // set for aggregate items
}

// IsAggregate reports whether the item is an aggregate.
func (p ProjItem) IsAggregate() bool { return p.Agg != nil }

// String renders the item as "expr AS name".
func (p ProjItem) String() string {
	var body string
	if p.Agg != nil {
		body = p.Agg.String()
	} else {
		body = p.Expr.String()
	}
	if p.Name != "" && p.Name != body {
		return body + " AS " + p.Name
	}
	return body
}

// aggState accumulates one aggregate over one group.
type aggState struct {
	count    int64
	sum      types.Value
	min, max types.Value
	distinct map[string]types.Value
	err      error
}

func newAggState(distinct bool) *aggState {
	st := &aggState{sum: types.Null, min: types.Null, max: types.Null}
	if distinct {
		st.distinct = make(map[string]types.Value)
	}
	return st
}

// add feeds one input value (already evaluated; types.Null for COUNT(*)
// rows is never passed — countStar handled by caller passing a non-null
// marker).
func (st *aggState) add(v types.Value) {
	if st.err != nil {
		return
	}
	if v.IsNull() {
		return // SQL aggregates ignore NULL inputs
	}
	if st.distinct != nil {
		k := string(types.Encode(nil, v))
		if _, seen := st.distinct[k]; seen {
			return
		}
		st.distinct[k] = v
	}
	st.count++
	if st.sum.IsNull() {
		st.sum = v
	} else if v.IsNumeric() && st.sum.IsNumeric() {
		s, err := types.Add(st.sum, v)
		if err != nil {
			st.err = err
			return
		}
		st.sum = s
	}
	if st.min.IsNull() || types.Compare(v, st.min) < 0 {
		st.min = v
	}
	if st.max.IsNull() || types.Compare(v, st.max) > 0 {
		st.max = v
	}
}

// finalize produces the aggregate result.
func (st *aggState) finalize(f AggFunc) (types.Value, error) {
	if st.err != nil {
		return types.Null, st.err
	}
	switch f {
	case FuncCount:
		return types.Int(st.count), nil
	case FuncSum:
		if st.count == 0 {
			return types.Null, nil
		}
		if !st.sum.IsNumeric() {
			return types.Null, fmt.Errorf("ra: SUM over non-numeric values")
		}
		return st.sum, nil
	case FuncAvg:
		if st.count == 0 {
			return types.Null, nil
		}
		if !st.sum.IsNumeric() {
			return types.Null, fmt.Errorf("ra: AVG over non-numeric values")
		}
		return types.Float(st.sum.AsFloat() / float64(st.count)), nil
	case FuncMin:
		return st.min, nil
	case FuncMax:
		return st.max, nil
	default:
		return types.Null, fmt.Errorf("ra: unknown aggregate %q", f)
	}
}

// GroupBy evaluates a generalized projection Π_items over the input
// relation: plain items form the grouping key; aggregate items accumulate
// per group. With no aggregate items it degenerates to duplicate-
// eliminating projection. With no plain items the whole input is one group
// (and an empty input produces one row of empty aggregates, matching SQL's
// global aggregation).
func GroupBy(in *Relation, items []ProjItem) (*Relation, error) {
	type group struct {
		key    tuple.Tuple
		states []*aggState
	}

	var (
		plainIdx []int // positions in items of plain items
		aggIdx   []int
	)
	for i, it := range items {
		if it.IsAggregate() {
			aggIdx = append(aggIdx, i)
		} else {
			plainIdx = append(plainIdx, i)
		}
	}

	plainFns := make([]func(tuple.Tuple) (types.Value, error), len(plainIdx))
	for i, pi := range plainIdx {
		f, err := items[pi].Expr.Bind(in.Cols)
		if err != nil {
			return nil, err
		}
		plainFns[i] = f
	}
	aggFns := make([]func(tuple.Tuple) (types.Value, error), len(aggIdx))
	for i, ai := range aggIdx {
		agg := items[ai].Agg
		if agg.IsCountStar() {
			aggFns[i] = nil // marker: count rows
			continue
		}
		f, err := agg.Arg.Bind(in.Cols)
		if err != nil {
			return nil, err
		}
		aggFns[i] = f
	}

	groups := make(map[string]*group)
	var order []string
	newGroup := func(key tuple.Tuple) *group {
		g := &group{key: key, states: make([]*aggState, len(aggIdx))}
		for i, ai := range aggIdx {
			g.states[i] = newAggState(items[ai].Agg.Distinct)
		}
		return g
	}

	for _, row := range in.Rows {
		key := make(tuple.Tuple, len(plainFns))
		for i, f := range plainFns {
			v, err := f(row)
			if err != nil {
				return nil, err
			}
			key[i] = v
		}
		k := key.Key()
		g, ok := groups[k]
		if !ok {
			g = newGroup(key)
			groups[k] = g
			order = append(order, k)
		}
		for i, f := range aggFns {
			if f == nil { // COUNT(*)
				g.states[i].count++
				continue
			}
			v, err := f(row)
			if err != nil {
				return nil, err
			}
			g.states[i].add(v)
		}
	}

	// Global aggregation over an empty input yields a single row.
	if len(plainIdx) == 0 && len(groups) == 0 {
		g := newGroup(tuple.Tuple{})
		groups[""] = g
		order = append(order, "")
	}

	outCols := make(Schema, len(items))
	for i, it := range items {
		outCols[i] = Col{Name: it.Name}
	}
	out := NewRelation(outCols)
	for _, k := range order {
		g := groups[k]
		row := make(tuple.Tuple, len(items))
		for i, pi := range plainIdx {
			row[pi] = g.key[i]
		}
		for i, ai := range aggIdx {
			v, err := g.states[i].finalize(items[ai].Agg.Func)
			if err != nil {
				return nil, err
			}
			row[ai] = v
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}
