package ra

import (
	"fmt"
	"sort"
	"strings"

	"mindetail/internal/storage"
	"mindetail/internal/tuple"
	"mindetail/internal/types"
)

// Relation is a materialized bag of tuples with a schema.
type Relation struct {
	Cols Schema
	Rows []tuple.Tuple
}

// NewRelation creates an empty relation with the given schema.
func NewRelation(cols Schema) *Relation {
	return &Relation{Cols: cols}
}

// FromTable wraps a storage table as a relation whose columns are qualified
// with the given name (usually the table name). The row slice is copied
// shallowly; tuples are shared and must not be mutated.
func FromTable(t *storage.Table, as string) *Relation {
	meta := t.Meta()
	cols := make(Schema, len(meta.Attrs))
	for i, a := range meta.Attrs {
		cols[i] = Col{Table: as, Name: a.Name}
	}
	rows := make([]tuple.Tuple, 0, t.Len())
	t.Scan(func(r tuple.Tuple) { rows = append(rows, r) })
	return &Relation{Cols: cols, Rows: rows}
}

// Len returns the number of rows.
func (r *Relation) Len() int { return len(r.Rows) }

// Clone returns a deep-enough copy: the row slice is fresh but tuples are
// shared (tuples are immutable by convention).
func (r *Relation) Clone() *Relation {
	rows := make([]tuple.Tuple, len(r.Rows))
	copy(rows, r.Rows)
	cols := make(Schema, len(r.Cols))
	copy(cols, r.Cols)
	return &Relation{Cols: cols, Rows: rows}
}

// Bytes returns the byte-accounting size of the relation's rows.
func (r *Relation) Bytes() int {
	n := 0
	for _, row := range r.Rows {
		n += row.EncodedSize()
	}
	return n
}

// Sorted returns a copy of the relation with rows in deterministic
// lexicographic order (column-wise types.Compare). Useful for comparing
// relations and for stable output.
func (r *Relation) Sorted() *Relation {
	out := r.Clone()
	sort.Slice(out.Rows, func(i, j int) bool {
		a, b := out.Rows[i], out.Rows[j]
		for k := range a {
			if c := types.Compare(a[k], b[k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
	return out
}

// EqualBag reports whether two relations contain the same bag of tuples
// (ignoring order, respecting multiplicity). Schemas must have equal arity.
func EqualBag(a, b *Relation) bool {
	if len(a.Cols) != len(b.Cols) || len(a.Rows) != len(b.Rows) {
		return false
	}
	counts := make(map[string]int, len(a.Rows))
	for _, row := range a.Rows {
		counts[row.Key()]++
	}
	for _, row := range b.Rows {
		k := row.Key()
		counts[k]--
		if counts[k] == 0 {
			delete(counts, k)
		}
	}
	return len(counts) == 0
}

// Format renders the relation as an ASCII table, rows sorted.
func (r *Relation) Format() string {
	s := r.Sorted()
	headers := make([]string, len(s.Cols))
	widths := make([]int, len(s.Cols))
	for i, c := range s.Cols {
		headers[i] = c.String()
		widths[i] = len(headers[i])
	}
	cells := make([][]string, len(s.Rows))
	for i, row := range s.Rows {
		cells[i] = make([]string, len(row))
		for j, v := range row {
			cells[i][j] = v.Display()
			if len(cells[i][j]) > widths[j] {
				widths[j] = len(cells[i][j])
			}
		}
	}
	var b strings.Builder
	line := func(parts []string) {
		for j, p := range parts {
			if j > 0 {
				b.WriteString(" | ")
			}
			if j == len(parts)-1 {
				b.WriteString(p) // no trailing padding
			} else {
				fmt.Fprintf(&b, "%-*s", widths[j], p)
			}
		}
		b.WriteByte('\n')
	}
	line(headers)
	for j, w := range widths {
		if j > 0 {
			b.WriteString("-+-")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range cells {
		line(row)
	}
	fmt.Fprintf(&b, "(%d rows)\n", len(s.Rows))
	return b.String()
}
