package storage

import (
	"strings"
	"testing"
	"testing/quick"

	"mindetail/internal/schema"
	"mindetail/internal/tuple"
	"mindetail/internal/types"
)

func retailCatalog(t *testing.T) *schema.Catalog {
	t.Helper()
	cat := schema.NewCatalog()
	tables := []*schema.Table{
		{
			Name: "time",
			Attrs: []schema.Attribute{
				{Name: "id", Type: types.KindInt},
				{Name: "month", Type: types.KindInt},
				{Name: "year", Type: types.KindInt},
			},
			Key: "id",
		},
		{
			Name: "sale",
			Attrs: []schema.Attribute{
				{Name: "id", Type: types.KindInt},
				{Name: "timeid", Type: types.KindInt},
				{Name: "price", Type: types.KindFloat},
			},
			Key:     "id",
			Mutable: []string{"price", "timeid"},
		},
	}
	for _, tb := range tables {
		if err := cat.AddTable(tb); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.AddForeignKey(schema.ForeignKey{FromTable: "sale", FromAttr: "timeid", ToTable: "time"}); err != nil {
		t.Fatal(err)
	}
	return cat
}

func mustInsert(t *testing.T, db *DB, table string, vals ...types.Value) {
	t.Helper()
	if err := db.Insert(table, tuple.Tuple(vals)); err != nil {
		t.Fatalf("insert %s %v: %v", table, vals, err)
	}
}

func seed(t *testing.T) *DB {
	t.Helper()
	db := NewDB(retailCatalog(t))
	mustInsert(t, db, "time", types.Int(1), types.Int(1), types.Int(1997))
	mustInsert(t, db, "time", types.Int(2), types.Int(2), types.Int(1997))
	mustInsert(t, db, "sale", types.Int(10), types.Int(1), types.Float(5))
	mustInsert(t, db, "sale", types.Int(11), types.Int(1), types.Float(7.5))
	mustInsert(t, db, "sale", types.Int(12), types.Int(2), types.Float(1))
	return db
}

func TestInsertAndGet(t *testing.T) {
	db := seed(t)
	if got := db.RowCount("sale"); got != 3 {
		t.Errorf("RowCount = %d", got)
	}
	row := db.Table("sale").Get(types.Int(11))
	if row == nil || row[2].AsFloat() != 7.5 {
		t.Errorf("Get(11) = %v", row)
	}
	if db.Table("sale").Get(types.Int(99)) != nil {
		t.Error("Get(99) should be nil")
	}
}

func TestInsertIntCoercedToFloat(t *testing.T) {
	db := seed(t)
	mustInsert(t, db, "sale", types.Int(13), types.Int(2), types.Int(3))
	row := db.Table("sale").Get(types.Int(13))
	if row[2].Kind() != types.KindFloat || row[2].AsFloat() != 3 {
		t.Errorf("coercion failed: %v", row[2])
	}
}

func TestInsertErrors(t *testing.T) {
	db := seed(t)
	cases := []struct {
		name   string
		table  string
		row    tuple.Tuple
		errSub string
	}{
		{"unknown table", "nope", tuple.Tuple{types.Int(1)}, "unknown table"},
		{"arity", "sale", tuple.Tuple{types.Int(1)}, "values"},
		{"null", "sale", tuple.Tuple{types.Int(20), types.Null, types.Float(1)}, "null"},
		{"type", "sale", tuple.Tuple{types.Str("x"), types.Int(1), types.Float(1)}, "cannot store"},
		{"dup key", "sale", tuple.Tuple{types.Int(10), types.Int(1), types.Float(1)}, "duplicate key"},
		{"RI", "sale", tuple.Tuple{types.Int(20), types.Int(99), types.Float(1)}, "referential integrity"},
	}
	for _, c := range cases {
		err := db.Insert(c.table, c.row)
		if err == nil || !strings.Contains(err.Error(), c.errSub) {
			t.Errorf("%s: got %v, want error containing %q", c.name, err, c.errSub)
		}
	}
}

func TestDeleteAndRI(t *testing.T) {
	db := seed(t)
	if _, err := db.Delete("time", types.Int(1)); err == nil {
		t.Error("deleting referenced dimension row should fail")
	}
	row, err := db.Delete("sale", types.Int(12))
	if err != nil || row[0].AsInt() != 12 {
		t.Fatalf("Delete(sale,12) = %v, %v", row, err)
	}
	if _, err := db.Delete("sale", types.Int(12)); err == nil {
		t.Error("double delete should fail")
	}
	// time 2 now unreferenced.
	if _, err := db.Delete("time", types.Int(2)); err != nil {
		t.Errorf("deleting unreferenced row: %v", err)
	}
	if _, err := db.Delete("nope", types.Int(1)); err == nil {
		t.Error("unknown table delete should fail")
	}
}

func TestUpdate(t *testing.T) {
	db := seed(t)
	old, upd, err := db.Update("sale", types.Int(10), map[string]types.Value{"price": types.Float(9)})
	if err != nil {
		t.Fatal(err)
	}
	if old[2].AsFloat() != 5 || upd[2].AsFloat() != 9 {
		t.Errorf("old=%v new=%v", old, upd)
	}
	if got := db.Table("sale").Get(types.Int(10))[2].AsFloat(); got != 9 {
		t.Errorf("stored price = %v", got)
	}
	// Update of FK attr with RI check.
	if _, _, err := db.Update("sale", types.Int(10), map[string]types.Value{"timeid": types.Int(99)}); err == nil {
		t.Error("update violating RI accepted")
	}
	if _, _, err := db.Update("sale", types.Int(10), map[string]types.Value{"timeid": types.Int(2)}); err != nil {
		t.Errorf("valid FK update rejected: %v", err)
	}
	if _, _, err := db.Update("sale", types.Int(10), map[string]types.Value{"id": types.Int(77)}); err == nil {
		t.Error("key update accepted")
	}
	if _, _, err := db.Update("time", types.Int(1), map[string]types.Value{"month": types.Int(3)}); err == nil {
		t.Error("update of immutable attribute accepted")
	}
	if _, _, err := db.Update("sale", types.Int(99), map[string]types.Value{"price": types.Float(1)}); err == nil {
		t.Error("update of missing row accepted")
	}
	if _, _, err := db.Update("sale", types.Int(10), map[string]types.Value{"nope": types.Float(1)}); err == nil {
		t.Error("update of unknown attribute accepted")
	}
}

func TestLookupWithAndWithoutIndex(t *testing.T) {
	db := seed(t)
	sale := db.Table("sale")
	if !sale.HasIndex("timeid") {
		t.Fatal("FK attribute should be auto-indexed")
	}
	got := sale.Lookup("timeid", types.Int(1))
	if len(got) != 2 {
		t.Errorf("indexed Lookup = %d rows", len(got))
	}
	// price has no index: scan path.
	got = sale.Lookup("price", types.Float(7.5))
	if len(got) != 1 || got[0][0].AsInt() != 11 {
		t.Errorf("scan Lookup = %v", got)
	}
	if got := sale.Lookup("nope", types.Int(1)); got != nil {
		t.Errorf("Lookup on unknown attr = %v", got)
	}
}

func TestIndexMaintainedAcrossDeleteSwap(t *testing.T) {
	db := seed(t)
	sale := db.Table("sale")
	// Delete a middle row to force the swap path, then check index sanity.
	if _, err := db.Delete("sale", types.Int(10)); err != nil {
		t.Fatal(err)
	}
	got := sale.Lookup("timeid", types.Int(1))
	if len(got) != 1 || got[0][0].AsInt() != 11 {
		t.Errorf("after delete, Lookup(timeid=1) = %v", got)
	}
	mustInsert(t, db, "sale", types.Int(13), types.Int(1), types.Float(2))
	if got := sale.Lookup("timeid", types.Int(1)); len(got) != 2 {
		t.Errorf("after reinsert, Lookup = %d rows", len(got))
	}
}

func TestAllDeterministicOrder(t *testing.T) {
	db := seed(t)
	all := db.Table("sale").All()
	if len(all) != 3 {
		t.Fatalf("All = %d rows", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1][0].AsInt() >= all[i][0].AsInt() {
			t.Errorf("All not in key order: %v", all)
		}
	}
}

func TestScanVisitsEverything(t *testing.T) {
	db := seed(t)
	n := 0
	db.Table("sale").Scan(func(tuple.Tuple) { n++ })
	if n != 3 {
		t.Errorf("Scan visited %d rows", n)
	}
}

func TestBytesAccounting(t *testing.T) {
	db := NewDB(retailCatalog(t))
	if db.TotalBytes() != 0 {
		t.Error("empty DB has bytes")
	}
	mustInsert(t, db, "time", types.Int(1), types.Int(1), types.Int(1997))
	before := db.TotalBytes()
	if before <= 0 {
		t.Error("bytes not accounted")
	}
	if _, err := db.Delete("time", types.Int(1)); err != nil {
		t.Fatal(err)
	}
	if db.TotalBytes() != 0 {
		t.Errorf("bytes after delete = %d", db.TotalBytes())
	}
}

func TestDetachPanics(t *testing.T) {
	db := seed(t)
	db.Detach()
	if !db.Detached() {
		t.Error("Detached() = false")
	}
	defer func() {
		if recover() == nil {
			t.Error("access after Detach should panic")
		}
	}()
	db.RowCount("sale")
}

func TestCreateIndexErrors(t *testing.T) {
	db := seed(t)
	if err := db.Table("sale").CreateIndex("nope"); err == nil {
		t.Error("index on unknown attr accepted")
	}
	if err := db.Table("sale").CreateIndex("price"); err != nil {
		t.Errorf("index on price: %v", err)
	}
	got := db.Table("sale").Lookup("price", types.Float(5))
	if len(got) != 1 {
		t.Errorf("indexed price lookup = %v", got)
	}
}

// Property: a random sequence of inserts and deletes keeps Get, Lookup, and
// Len consistent with a naive map model.
func TestPropertyStorageMatchesModel(t *testing.T) {
	cat := retailCatalog(t)
	f := func(ops []int16) bool {
		db := NewDB(cat)
		mustInsertOK := db.Insert("time", tuple.Tuple{types.Int(1), types.Int(1), types.Int(1997)})
		if mustInsertOK != nil {
			return false
		}
		model := map[int64]float64{}
		for _, op := range ops {
			id := int64(op)%50 + 50 // keys 0..99
			if id < 0 {
				id = -id
			}
			if op%2 == 0 {
				price := float64(op) / 4
				err := db.Insert("sale", tuple.Tuple{types.Int(id), types.Int(1), types.Float(price)})
				_, exists := model[id]
				if exists != (err != nil) {
					return false
				}
				if err == nil {
					model[id] = price
				}
			} else {
				_, err := db.Delete("sale", types.Int(id))
				_, exists := model[id]
				if exists != (err == nil) {
					return false
				}
				delete(model, id)
			}
		}
		if db.RowCount("sale") != len(model) {
			return false
		}
		for id, price := range model {
			row := db.Table("sale").Get(types.Int(id))
			if row == nil || row[2].AsFloat() != price {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
