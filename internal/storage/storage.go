// Package storage implements the in-memory storage engine that plays the
// role of the operational data sources and of the warehouse-resident
// detail tables.
//
// Tables enforce the paper's assumptions on base data (Section 2.1): a
// single-attribute primary key per table, no null values, and referential
// integrity for declared foreign keys. Updates are only permitted on
// attributes declared mutable in the schema, which is what makes the
// exposed-update analysis of the view derivation sound.
//
// A DB can be Detach()ed, after which every access panics; the warehouse
// layer uses this to prove that maintenance of the summary data never
// touches the sources (self-maintainability, Section 2.2).
package storage

import (
	"fmt"
	"sort"

	"mindetail/internal/schema"
	"mindetail/internal/tuple"
	"mindetail/internal/types"
)

// Table is an in-memory base table: a dense row slice with a primary-key
// hash index and secondary hash indexes on demand.
type Table struct {
	meta *schema.Table

	rows []tuple.Tuple
	keys []string       // keys[i] is the encoded primary key of rows[i]
	pos  map[string]int // encoded primary key -> row position

	// idx maps attribute name -> encoded value -> encoded primary keys of
	// the rows holding that value.
	idx map[string]map[string][]string

	bytes int
}

// NewTable creates an empty table for the given schema.
func NewTable(meta *schema.Table) *Table {
	return &Table{
		meta: meta,
		pos:  make(map[string]int),
		idx:  make(map[string]map[string][]string),
	}
}

// Meta returns the table schema.
func (t *Table) Meta() *schema.Table { return t.meta }

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.rows) }

// Bytes returns the byte-accounting size of the stored rows (canonical
// encoding, not counting index overhead).
func (t *Table) Bytes() int { return t.bytes }

// CreateIndex builds (or rebuilds) a secondary hash index on attr.
func (t *Table) CreateIndex(attr string) error {
	ai := t.meta.AttrIndex(attr)
	if ai < 0 {
		return fmt.Errorf("storage: %s: no attribute %s to index", t.meta.Name, attr)
	}
	m := make(map[string][]string)
	for i, r := range t.rows {
		vk := string(types.Encode(nil, r[ai]))
		m[vk] = append(m[vk], t.keys[i])
	}
	t.idx[attr] = m
	return nil
}

// HasIndex reports whether a secondary index exists on attr.
func (t *Table) HasIndex(attr string) bool {
	_, ok := t.idx[attr]
	return ok
}

func (t *Table) indexAdd(row tuple.Tuple, pk string) {
	for attr, m := range t.idx {
		ai := t.meta.AttrIndex(attr)
		vk := string(types.Encode(nil, row[ai]))
		m[vk] = append(m[vk], pk)
	}
}

func (t *Table) indexRemove(row tuple.Tuple, pk string) {
	for attr, m := range t.idx {
		ai := t.meta.AttrIndex(attr)
		vk := string(types.Encode(nil, row[ai]))
		list := m[vk]
		for i, k := range list {
			if k == pk {
				list[i] = list[len(list)-1]
				list = list[:len(list)-1]
				break
			}
		}
		if len(list) == 0 {
			delete(m, vk)
		} else {
			m[vk] = list
		}
	}
}

// normalize validates a row against the schema, coercing integer values
// into float columns, and returns the canonical tuple.
func (t *Table) normalize(row tuple.Tuple) (tuple.Tuple, error) {
	if len(row) != len(t.meta.Attrs) {
		return nil, fmt.Errorf("storage: %s: got %d values, want %d", t.meta.Name, len(row), len(t.meta.Attrs))
	}
	out := row.Clone()
	for i, a := range t.meta.Attrs {
		v := out[i]
		if v.IsNull() {
			return nil, fmt.Errorf("storage: %s.%s: null values are not permitted in base tables", t.meta.Name, a.Name)
		}
		if v.Kind() == a.Type {
			continue
		}
		if a.Type == types.KindFloat && v.Kind() == types.KindInt {
			out[i] = types.Float(float64(v.AsInt()))
			continue
		}
		return nil, fmt.Errorf("storage: %s.%s: cannot store %s in %s column", t.meta.Name, a.Name, v.Kind(), a.Type)
	}
	return out, nil
}

// insert adds a normalized row. The caller has already checked RI.
func (t *Table) insert(row tuple.Tuple) error {
	pk := string(types.Encode(nil, row[t.meta.KeyIndex()]))
	if _, dup := t.pos[pk]; dup {
		return fmt.Errorf("storage: %s: duplicate key %s", t.meta.Name, row[t.meta.KeyIndex()])
	}
	t.pos[pk] = len(t.rows)
	t.rows = append(t.rows, row)
	t.keys = append(t.keys, pk)
	t.bytes += row.EncodedSize()
	t.indexAdd(row, pk)
	return nil
}

// delete removes the row with the given encoded primary key, returning it.
func (t *Table) delete(pk string) (tuple.Tuple, error) {
	i, ok := t.pos[pk]
	if !ok {
		return nil, fmt.Errorf("storage: %s: no row with that key", t.meta.Name)
	}
	row := t.rows[i]
	last := len(t.rows) - 1
	if i != last {
		t.rows[i] = t.rows[last]
		t.keys[i] = t.keys[last]
		t.pos[t.keys[i]] = i
	}
	t.rows = t.rows[:last]
	t.keys = t.keys[:last]
	delete(t.pos, pk)
	t.bytes -= row.EncodedSize()
	t.indexRemove(row, pk)
	return row, nil
}

// Get returns the row with the given primary key value, or nil.
func (t *Table) Get(key types.Value) tuple.Tuple {
	pk := string(types.Encode(nil, key))
	if i, ok := t.pos[pk]; ok {
		return t.rows[i]
	}
	return nil
}

// Lookup returns the rows whose attr equals v. It uses a secondary index
// when present and scans otherwise.
func (t *Table) Lookup(attr string, v types.Value) []tuple.Tuple {
	ai := t.meta.AttrIndex(attr)
	if ai < 0 {
		return nil
	}
	if m, ok := t.idx[attr]; ok {
		vk := string(types.Encode(nil, v))
		pks := m[vk]
		out := make([]tuple.Tuple, 0, len(pks))
		for _, pk := range pks {
			out = append(out, t.rows[t.pos[pk]])
		}
		return out
	}
	var out []tuple.Tuple
	for _, r := range t.rows {
		if types.Identical(r[ai], v) {
			out = append(out, r)
		}
	}
	return out
}

// Scan calls fn for every row. Iteration order is the current physical
// order, which is deterministic for a given operation sequence.
func (t *Table) Scan(fn func(tuple.Tuple)) {
	for _, r := range t.rows {
		fn(r)
	}
}

// All returns a copy of all rows in primary-key order (deterministic
// regardless of operation history).
func (t *Table) All() []tuple.Tuple {
	order := make([]int, len(t.rows))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return t.keys[order[a]] < t.keys[order[b]] })
	out := make([]tuple.Tuple, len(order))
	for i, j := range order {
		out[i] = t.rows[j]
	}
	return out
}

// DB is a set of tables under a common catalog with referential-integrity
// enforcement across them.
type DB struct {
	cat      *schema.Catalog
	tables   map[string]*Table
	detached bool
}

// NewDB creates a DB with one empty table per catalog entry. Foreign-key
// source attributes are indexed automatically so that delete-side RI checks
// are cheap.
func NewDB(cat *schema.Catalog) *DB {
	db := &DB{cat: cat, tables: make(map[string]*Table)}
	for _, name := range cat.TableNames() {
		db.tables[name] = NewTable(cat.Table(name))
	}
	for _, fk := range cat.ForeignKeys() {
		// Error impossible: the catalog validated the attribute.
		_ = db.tables[fk.FromTable].CreateIndex(fk.FromAttr)
	}
	return db
}

// Catalog returns the catalog the DB was created from.
func (db *DB) Catalog() *schema.Catalog { return db.cat }

// Sync creates tables and foreign-key indexes for catalog entries added
// after the DB was constructed (incremental DDL).
func (db *DB) Sync() {
	db.guard()
	for _, name := range db.cat.TableNames() {
		if _, ok := db.tables[name]; !ok {
			db.tables[name] = NewTable(db.cat.Table(name))
		}
	}
	for _, fk := range db.cat.ForeignKeys() {
		t := db.tables[fk.FromTable]
		if t != nil && !t.HasIndex(fk.FromAttr) {
			_ = t.CreateIndex(fk.FromAttr)
		}
	}
}

// Detach severs the DB: every subsequent access panics. Used to prove that
// warehouse maintenance is self-contained.
func (db *DB) Detach() { db.detached = true }

// Detached reports whether the DB has been detached.
func (db *DB) Detached() bool { return db.detached }

func (db *DB) guard() {
	if db.detached {
		panic("storage: access to detached data source (self-maintainability violated)")
	}
}

// Table returns the named table. It panics if the DB is detached.
func (db *DB) Table(name string) *Table {
	db.guard()
	return db.tables[name]
}

// Insert adds a row to the named table, enforcing types, nulls, key
// uniqueness, and referential integrity of outgoing foreign keys.
func (db *DB) Insert(table string, row tuple.Tuple) error {
	db.guard()
	t := db.tables[table]
	if t == nil {
		return fmt.Errorf("storage: unknown table %s", table)
	}
	norm, err := t.normalize(row)
	if err != nil {
		return err
	}
	for _, fk := range db.cat.ForeignKeys() {
		if fk.FromTable != table {
			continue
		}
		ref := norm[t.meta.AttrIndex(fk.FromAttr)]
		if db.tables[fk.ToTable].Get(ref) == nil {
			return fmt.Errorf("storage: %s.%s = %s violates referential integrity to %s",
				table, fk.FromAttr, ref, fk.ToTable)
		}
	}
	return t.insert(norm)
}

// Delete removes the row with the given key value, enforcing that no other
// table still references it. It returns the deleted row.
func (db *DB) Delete(table string, key types.Value) (tuple.Tuple, error) {
	db.guard()
	t := db.tables[table]
	if t == nil {
		return nil, fmt.Errorf("storage: unknown table %s", table)
	}
	for _, fk := range db.cat.ReferencesTo(table) {
		if refs := db.tables[fk.FromTable].Lookup(fk.FromAttr, key); len(refs) > 0 {
			return nil, fmt.Errorf("storage: cannot delete %s key %s: still referenced by %d row(s) of %s",
				table, key, len(refs), fk.FromTable)
		}
	}
	pk := string(types.Encode(nil, key))
	return t.delete(pk)
}

// Update changes the given attributes of the row identified by key, and
// returns the old and new versions of the row. Only attributes declared
// mutable in the schema may change; keys never change.
func (db *DB) Update(table string, key types.Value, set map[string]types.Value) (old, new tuple.Tuple, err error) {
	db.guard()
	t := db.tables[table]
	if t == nil {
		return nil, nil, fmt.Errorf("storage: unknown table %s", table)
	}
	cur := t.Get(key)
	if cur == nil {
		return nil, nil, fmt.Errorf("storage: %s: no row with key %s", table, key)
	}
	upd := cur.Clone()
	for attr, v := range set {
		ai := t.meta.AttrIndex(attr)
		if ai < 0 {
			return nil, nil, fmt.Errorf("storage: %s has no attribute %s", table, attr)
		}
		if attr == t.meta.Key {
			return nil, nil, fmt.Errorf("storage: %s: primary key %s cannot be updated", table, attr)
		}
		if !t.meta.IsMutable(attr) {
			return nil, nil, fmt.Errorf("storage: %s.%s is not declared mutable", table, attr)
		}
		upd[ai] = v
	}
	norm, err := t.normalize(upd)
	if err != nil {
		return nil, nil, err
	}
	// RI for changed foreign-key attributes.
	for _, fk := range db.cat.ForeignKeys() {
		if fk.FromTable != table {
			continue
		}
		ai := t.meta.AttrIndex(fk.FromAttr)
		if types.Identical(cur[ai], norm[ai]) {
			continue
		}
		if db.tables[fk.ToTable].Get(norm[ai]) == nil {
			return nil, nil, fmt.Errorf("storage: %s.%s = %s violates referential integrity to %s",
				table, fk.FromAttr, norm[ai], fk.ToTable)
		}
	}
	pk := string(types.Encode(nil, key))
	if _, err := t.delete(pk); err != nil {
		return nil, nil, err
	}
	if err := t.insert(norm); err != nil {
		// Re-insert the old row; cannot fail since we just removed it.
		_ = t.insert(cur)
		return nil, nil, err
	}
	return cur, norm, nil
}

// UndoInsert removes a row previously inserted by Insert, identified by
// its key, bypassing referential-integrity checks — the inverse operation
// the warehouse transaction layer replays when propagation to the
// materialized views fails after the source was already mutated. The
// caller must guarantee nothing inserted later references the row (true
// when undoing in reverse order of application).
func (db *DB) UndoInsert(table string, key types.Value) error {
	db.guard()
	t := db.tables[table]
	if t == nil {
		return fmt.Errorf("storage: unknown table %s", table)
	}
	_, err := t.delete(string(types.Encode(nil, key)))
	return err
}

// UndoDelete re-inserts a row previously removed by Delete, bypassing
// referential-integrity checks (the row was consistent when it was
// deleted, and undo happens in reverse order of application).
func (db *DB) UndoDelete(table string, row tuple.Tuple) error {
	db.guard()
	t := db.tables[table]
	if t == nil {
		return fmt.Errorf("storage: unknown table %s", table)
	}
	norm, err := t.normalize(row)
	if err != nil {
		return err
	}
	return t.insert(norm)
}

// UndoUpdate restores the old image of a row previously changed by Update.
func (db *DB) UndoUpdate(table string, key types.Value, old tuple.Tuple) error {
	db.guard()
	t := db.tables[table]
	if t == nil {
		return fmt.Errorf("storage: unknown table %s", table)
	}
	if _, err := t.delete(string(types.Encode(nil, key))); err != nil {
		return err
	}
	norm, err := t.normalize(old)
	if err != nil {
		return err
	}
	return t.insert(norm)
}

// RowCount returns the number of rows in the named table.
func (db *DB) RowCount(table string) int {
	db.guard()
	if t := db.tables[table]; t != nil {
		return t.Len()
	}
	return 0
}

// TotalBytes returns the byte-accounting size across all tables.
func (db *DB) TotalBytes() int {
	db.guard()
	n := 0
	for _, t := range db.tables {
		n += t.bytes
	}
	return n
}
