// Package baseline implements the comparison points the paper improves on
// (Section 1.2):
//
//   - PSJ self-maintenance in the style of Quass et al. [14]: local and
//     join reductions, but no smart duplicate compression — every auxiliary
//     view keeps its base table's key and stays a project-select-join view.
//   - Full replication: the warehouse mirrors the referenced base tables
//     verbatim as its current detail data.
//   - Recompute: the view is recomputed from the replicated detail on every
//     change batch instead of being maintained incrementally.
package baseline

import (
	"fmt"

	"mindetail/internal/core"
	"mindetail/internal/gpsj"
	"mindetail/internal/maintain"
	"mindetail/internal/ra"
	"mindetail/internal/schema"
	"mindetail/internal/storage"
	"mindetail/internal/types"
)

// DerivePSJ derives auxiliary views with local and join reductions only,
// in the style of Quass et al. [14]: no duplicate compression, keys always
// stored, no view elimination (with aggregation in V, the PSJ framework
// must keep the detail of every referenced table).
func DerivePSJ(v *gpsj.View) (*core.Plan, error) {
	p, err := core.Derive(v)
	if err != nil {
		return nil, err
	}
	for t, x := range p.Aux {
		key := v.Catalog().Table(t).Key
		if x.Omitted {
			*x = core.AuxView{Base: t, Name: t + "_dtl"}
			// Reconstruct reductions for the un-omitted table.
			x.Local = append([]ra.Comparison(nil), v.Local[t]...)
			for _, dep := range p.Graph.Depends(t) {
				x.SemiJoins = append(x.SemiJoins, p.Graph.EdgeTo[dep])
			}
			attrs := map[string]bool{key: true}
			for _, a := range v.PreservedAttrs(t) {
				attrs[a] = true
			}
			for _, a := range v.JoinAttrs(t) {
				attrs[a] = true
			}
			x.PlainAttrs = sortedKeys(attrs)
			x.IsPSJ = true
			continue
		}
		// Decompress: keys kept, SUM columns and COUNT(*) dropped, every
		// attribute stored plain.
		attrs := map[string]bool{key: true}
		for _, a := range x.PlainAttrs {
			attrs[a] = true
		}
		for _, a := range x.SumAttrs {
			attrs[a] = true
		}
		x.PlainAttrs = sortedKeys(attrs)
		x.SumAttrs = nil
		x.SumName = nil
		x.HasCount = false
		x.CountName = ""
		x.IsPSJ = true
	}
	return p, nil
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	// small sets; insertion sort keeps the package dependency-light
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// PSJEngine builds a maintenance engine over the PSJ derivation — the
// Quass-style self-maintainable warehouse.
func PSJEngine(v *gpsj.View) (*maintain.Engine, error) {
	p, err := DerivePSJ(v)
	if err != nil {
		return nil, err
	}
	return maintain.NewEngine(p)
}

// Replica is the full-replication baseline: the warehouse stores verbatim
// copies of the referenced base tables and recomputes the view on demand.
type Replica struct {
	view *gpsj.View
	db   *storage.DB

	// RecomputePerBatch controls whether Apply recomputes the view after
	// every delta batch (the recompute baseline) or lazily on Snapshot.
	RecomputePerBatch bool

	snapshot *ra.Relation
	dirty    bool
	tables   map[string]bool // FK closure of the view tables, set by Init

	// Recomputes counts view recomputations performed.
	Recomputes int
}

// NewReplica creates a replica for the view's referenced tables.
func NewReplica(v *gpsj.View, cat *schema.Catalog) *Replica {
	// The replica holds only the referenced tables; reusing the full
	// catalog is harmless (unreferenced tables stay empty).
	return &Replica{view: v, db: storage.NewDB(cat), dirty: true}
}

// Init copies the referenced base tables into the replica, loading
// referenced (dimension) tables before referencing (fact) tables so the
// copy never violates referential integrity.
func (r *Replica) Init(src func(table string) *ra.Relation) error {
	cat := r.db.Catalog()
	// The copy must satisfy the catalog's referential integrity, so it
	// includes every table transitively referenced by a foreign key from a
	// view table (a replica of `sale` needs `store` even when the view
	// ignores it).
	needed := make(map[string]bool, len(r.view.Tables))
	var tables []string
	var add func(t string)
	add = func(t string) {
		if needed[t] {
			return
		}
		needed[t] = true
		tables = append(tables, t)
		for _, fk := range cat.ForeignKeys() {
			if fk.FromTable == t {
				add(fk.ToTable)
			}
		}
	}
	for _, t := range r.view.Tables {
		add(t)
	}
	r.tables = needed
	loaded := make(map[string]bool)
	for len(loaded) < len(tables) {
		progress := false
		for _, t := range tables {
			if loaded[t] {
				continue
			}
			ready := true
			for _, fk := range cat.ForeignKeys() {
				if fk.FromTable == t && needed[fk.ToTable] && !loaded[fk.ToTable] {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			for _, row := range src(t).Rows {
				if err := r.db.Insert(t, row); err != nil {
					return err
				}
			}
			loaded[t] = true
			progress = true
		}
		if !progress {
			return fmt.Errorf("baseline: cyclic foreign keys among %v", tables)
		}
	}
	r.dirty = true
	return nil
}

// Apply maintains the replica under a delta and, in per-batch mode,
// recomputes the view.
func (r *Replica) Apply(d maintain.Delta) error {
	meta := r.db.Catalog().Table(d.Table)
	if meta == nil {
		return fmt.Errorf("baseline: unknown table %s", d.Table)
	}
	if !r.tables[d.Table] {
		return nil
	}
	for _, row := range d.Deletes {
		if _, err := r.db.Delete(d.Table, row[meta.KeyIndex()]); err != nil {
			return err
		}
	}
	for _, u := range d.Updates {
		set := make(map[string]types.Value)
		for i, a := range meta.Attrs {
			if !types.Identical(u.Old[i], u.New[i]) {
				set[a.Name] = u.New[i]
			}
		}
		if len(set) == 0 {
			continue
		}
		if _, _, err := r.db.Update(d.Table, u.Old[meta.KeyIndex()], set); err != nil {
			return err
		}
	}
	for _, row := range d.Inserts {
		if err := r.db.Insert(d.Table, row); err != nil {
			return err
		}
	}
	r.dirty = true
	if r.RecomputePerBatch {
		_, err := r.Snapshot()
		return err
	}
	return nil
}

// Snapshot returns the view contents, recomputing when stale.
func (r *Replica) Snapshot() (*ra.Relation, error) {
	if r.dirty {
		rel, err := r.view.Evaluate(r.db)
		if err != nil {
			return nil, err
		}
		r.snapshot = rel
		r.dirty = false
		r.Recomputes++
	}
	return r.snapshot, nil
}

// Bytes returns the byte-accounting size of the replicated detail data.
func (r *Replica) Bytes() int {
	n := 0
	for _, t := range r.view.Tables {
		n += r.db.Table(t).Bytes()
	}
	return n
}

// Rows returns the replicated row count.
func (r *Replica) Rows() int {
	n := 0
	for _, t := range r.view.Tables {
		n += r.db.Table(t).Len()
	}
	return n
}
