package baseline

import (
	"math/rand"
	"strings"
	"testing"

	"mindetail/internal/core"
	"mindetail/internal/gpsj"
	"mindetail/internal/maintain"
	"mindetail/internal/ra"
	"mindetail/internal/schema"
	"mindetail/internal/sqlparse"
	"mindetail/internal/storage"
	"mindetail/internal/tuple"
	"mindetail/internal/types"
)

const retailDDL = `
	CREATE TABLE time (id INTEGER PRIMARY KEY, day INTEGER, month INTEGER, year INTEGER);
	CREATE TABLE product (id INTEGER PRIMARY KEY, brand VARCHAR MUTABLE, category VARCHAR);
	CREATE TABLE sale (id INTEGER PRIMARY KEY,
		timeid INTEGER REFERENCES time,
		productid INTEGER REFERENCES product,
		price FLOAT MUTABLE);`

const productSalesSQL = `
	SELECT time.month, SUM(price) AS TotalPrice, COUNT(*) AS TotalCount
	FROM sale, time, product
	WHERE time.year = 1997 AND sale.timeid = time.id AND sale.productid = product.id
	GROUP BY time.month`

func setup(t *testing.T) (*schema.Catalog, *gpsj.View, *storage.DB) {
	t.Helper()
	stmts, err := sqlparse.ParseAll(retailDDL)
	if err != nil {
		t.Fatal(err)
	}
	cat := schema.NewCatalog()
	var fks []schema.ForeignKey
	for _, s := range stmts {
		ct := s.(*sqlparse.CreateTable)
		if err := cat.AddTable(ct.Table); err != nil {
			t.Fatal(err)
		}
		fks = append(fks, ct.FKs...)
	}
	for _, fk := range fks {
		if err := cat.AddForeignKey(fk); err != nil {
			t.Fatal(err)
		}
	}
	s, err := sqlparse.Parse(productSalesSQL)
	if err != nil {
		t.Fatal(err)
	}
	v, err := gpsj.FromSelect(cat, "product_sales", s.(*sqlparse.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	db := storage.NewDB(cat)
	ins := func(table string, vals ...types.Value) {
		t.Helper()
		if err := db.Insert(table, tuple.Tuple(vals)); err != nil {
			t.Fatal(err)
		}
	}
	for id := 1; id <= 4; id++ {
		ins("time", types.Int(int64(id)), types.Int(int64(id)), types.Int(int64((id-1)%2+1)), types.Int(1997))
	}
	ins("product", types.Int(100), types.Str("acme"), types.Str("tools"))
	ins("product", types.Int(101), types.Str("bolt"), types.Str("tools"))
	for id := 1; id <= 12; id++ {
		ins("sale", types.Int(int64(id)), types.Int(int64((id-1)%4+1)),
			types.Int(int64(100+(id%2))), types.Float(float64(id)))
	}
	return cat, v, db
}

func srcOf(db *storage.DB) func(string) *ra.Relation {
	return func(tb string) *ra.Relation { return ra.FromTable(db.Table(tb), tb) }
}

func TestDerivePSJShape(t *testing.T) {
	_, v, _ := setup(t)
	p, err := DerivePSJ(v)
	if err != nil {
		t.Fatal(err)
	}
	sale := p.Aux["sale"]
	if sale.Omitted || !sale.IsPSJ || sale.HasCount || len(sale.SumAttrs) != 0 {
		t.Errorf("PSJ sale aux = %+v", sale)
	}
	if got := strings.Join(sale.PlainAttrs, ","); got != "id,price,productid,timeid" {
		t.Errorf("PSJ sale plain = %s (the key and raw price must be kept)", got)
	}
	if len(sale.SemiJoins) != 2 {
		t.Errorf("PSJ join reductions missing: %v", sale.SemiJoins)
	}
}

func TestDerivePSJUnomitsRoot(t *testing.T) {
	cat, _, _ := setup(t)
	s, err := sqlparse.Parse(`SELECT product.id, SUM(price) AS total, COUNT(*) AS cnt
		FROM sale, product WHERE sale.productid = product.id GROUP BY product.id`)
	if err != nil {
		t.Fatal(err)
	}
	v, err := gpsj.FromSelect(cat, "v", s.(*sqlparse.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	minimal, err := core.Derive(v)
	if err != nil {
		t.Fatal(err)
	}
	if !minimal.Aux["sale"].Omitted {
		t.Fatal("minimal derivation should omit sale")
	}
	psj, err := DerivePSJ(v)
	if err != nil {
		t.Fatal(err)
	}
	sale := psj.Aux["sale"]
	if sale.Omitted || !contains(sale.PlainAttrs, "id") || !contains(sale.PlainAttrs, "price") {
		t.Errorf("PSJ must keep the fact detail: %+v", sale)
	}
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// TestPSJEngineEquivalence drives the PSJ baseline with a random stream and
// checks it maintains the same view as brute force — it is correct, just
// bigger and slower than the compressed minimal derivation.
func TestPSJEngineEquivalence(t *testing.T) {
	_, v, db := setup(t)
	eng, err := PSJEngine(v)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Init(srcOf(db)); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	nextID := int64(100)
	live := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	for step := 0; step < 40; step++ {
		var d maintain.Delta
		switch rng.Intn(3) {
		case 0:
			nextID++
			row := tuple.Tuple{types.Int(nextID), types.Int(int64(rng.Intn(4) + 1)),
				types.Int(int64(100 + rng.Intn(2))), types.Float(float64(rng.Intn(50)))}
			if err := db.Insert("sale", row); err != nil {
				t.Fatal(err)
			}
			live = append(live, nextID)
			d = maintain.Delta{Table: "sale", Inserts: []tuple.Tuple{row}}
		case 1:
			if len(live) == 0 {
				continue
			}
			i := rng.Intn(len(live))
			row, err := db.Delete("sale", types.Int(live[i]))
			if err != nil {
				t.Fatal(err)
			}
			live = append(live[:i], live[i+1:]...)
			d = maintain.Delta{Table: "sale", Deletes: []tuple.Tuple{row}}
		case 2:
			if len(live) == 0 {
				continue
			}
			id := live[rng.Intn(len(live))]
			old, upd, err := db.Update("sale", types.Int(id),
				map[string]types.Value{"price": types.Float(float64(rng.Intn(90)))})
			if err != nil {
				t.Fatal(err)
			}
			d = maintain.Delta{Table: "sale", Updates: []maintain.Update{{Old: old, New: upd}}}
		}
		if err := eng.Apply(d); err != nil {
			t.Fatal(err)
		}
		want, err := v.Evaluate(db)
		if err != nil {
			t.Fatal(err)
		}
		if !ra.EqualBag(eng.Snapshot(), want) {
			t.Fatalf("PSJ baseline diverged at step %d", step)
		}
	}
}

// TestCompressionBeatsPSJOnStorage checks the headline storage shape: with
// duplicate rows per (timeid, productid) group, the compressed auxiliary
// data is strictly smaller than the PSJ auxiliary data, which is itself no
// larger than full replication.
func TestCompressionBeatsPSJOnStorage(t *testing.T) {
	cat, v, db := setup(t)

	minPlan, err := core.Derive(v)
	if err != nil {
		t.Fatal(err)
	}
	minEng, err := maintain.NewEngine(minPlan)
	if err != nil {
		t.Fatal(err)
	}
	if err := minEng.Init(srcOf(db)); err != nil {
		t.Fatal(err)
	}
	psjEng, err := PSJEngine(v)
	if err != nil {
		t.Fatal(err)
	}
	if err := psjEng.Init(srcOf(db)); err != nil {
		t.Fatal(err)
	}
	rep := NewReplica(v, cat)
	if err := rep.Init(srcOf(db)); err != nil {
		t.Fatal(err)
	}

	minB, psjB, repB := minEng.AuxBytes(), psjEng.AuxBytes(), rep.Bytes()
	if !(minB < psjB && psjB <= repB) {
		t.Errorf("storage ordering violated: minimal=%d psj=%d replica=%d", minB, psjB, repB)
	}
	// 12 sales collapse into 8 (timeid, productid) groups here.
	if minEng.Aux("sale").Len() >= psjEng.Aux("sale").Len() {
		t.Errorf("compression did not reduce rows: %d vs %d",
			minEng.Aux("sale").Len(), psjEng.Aux("sale").Len())
	}
}

func TestReplicaMaintenance(t *testing.T) {
	cat, v, db := setup(t)
	rep := NewReplica(v, cat)
	rep.RecomputePerBatch = true
	if err := rep.Init(srcOf(db)); err != nil {
		t.Fatal(err)
	}
	row := tuple.Tuple{types.Int(99), types.Int(1), types.Int(100), types.Float(5)}
	if err := db.Insert("sale", row); err != nil {
		t.Fatal(err)
	}
	if err := rep.Apply(maintain.Delta{Table: "sale", Inserts: []tuple.Tuple{row}}); err != nil {
		t.Fatal(err)
	}
	old, upd, err := db.Update("product", types.Int(100), map[string]types.Value{"brand": types.Str("z")})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Apply(maintain.Delta{Table: "product", Updates: []maintain.Update{{Old: old, New: upd}}}); err != nil {
		t.Fatal(err)
	}
	del, err := db.Delete("sale", types.Int(99))
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Apply(maintain.Delta{Table: "sale", Deletes: []tuple.Tuple{del}}); err != nil {
		t.Fatal(err)
	}
	got, err := rep.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	want, err := v.Evaluate(db)
	if err != nil {
		t.Fatal(err)
	}
	if !ra.EqualBag(got, want) {
		t.Error("replica snapshot diverged")
	}
	if rep.Recomputes < 3 {
		t.Errorf("per-batch mode should recompute every batch: %d", rep.Recomputes)
	}
	if rep.Rows() == 0 {
		t.Error("replica empty")
	}
	// Delta for a table outside the view is ignored.
	if err := rep.Apply(maintain.Delta{Table: "time", Inserts: nil}); err != nil {
		t.Fatal(err)
	}
	if err := rep.Apply(maintain.Delta{Table: "nosuch"}); err == nil {
		t.Error("unknown table accepted")
	}
}
