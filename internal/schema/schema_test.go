package schema

import (
	"strings"
	"testing"

	"mindetail/internal/types"
)

func saleTable() *Table {
	return &Table{
		Name: "sale",
		Attrs: []Attribute{
			{Name: "id", Type: types.KindInt},
			{Name: "timeid", Type: types.KindInt},
			{Name: "productid", Type: types.KindInt},
			{Name: "storeid", Type: types.KindInt},
			{Name: "price", Type: types.KindFloat},
		},
		Key: "id",
	}
}

func timeTable() *Table {
	return &Table{
		Name: "time",
		Attrs: []Attribute{
			{Name: "id", Type: types.KindInt},
			{Name: "day", Type: types.KindInt},
			{Name: "month", Type: types.KindInt},
			{Name: "year", Type: types.KindInt},
		},
		Key: "id",
	}
}

func TestTableValidate(t *testing.T) {
	good := saleTable()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid table rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Table)
		errSub string
	}{
		{"empty name", func(tb *Table) { tb.Name = "" }, "empty name"},
		{"no attrs", func(tb *Table) { tb.Attrs = nil }, "no attributes"},
		{"dup attr", func(tb *Table) { tb.Attrs = append(tb.Attrs, Attribute{Name: "id", Type: types.KindInt}) }, "duplicate"},
		{"no key", func(tb *Table) { tb.Key = "" }, "no primary key"},
		{"bad key", func(tb *Table) { tb.Key = "nope" }, "not an attribute"},
		{"null type", func(tb *Table) { tb.Attrs[1].Type = types.KindNull }, "NULL type"},
		{"bad mutable", func(tb *Table) { tb.Mutable = []string{"nope"} }, "mutable"},
		{"mutable key", func(tb *Table) { tb.Mutable = []string{"id"} }, "cannot be mutable"},
		{"unnamed attr", func(tb *Table) { tb.Attrs[2].Name = "" }, "unnamed"},
	}
	for _, c := range cases {
		tb := saleTable()
		c.mutate(tb)
		err := tb.Validate()
		if err == nil || !strings.Contains(err.Error(), c.errSub) {
			t.Errorf("%s: got %v, want error containing %q", c.name, err, c.errSub)
		}
	}
}

func TestTableAccessors(t *testing.T) {
	tb := saleTable()
	if got := tb.AttrIndex("price"); got != 4 {
		t.Errorf("AttrIndex(price) = %d", got)
	}
	if got := tb.AttrIndex("nope"); got != -1 {
		t.Errorf("AttrIndex(nope) = %d", got)
	}
	if !tb.HasAttr("timeid") || tb.HasAttr("nope") {
		t.Error("HasAttr wrong")
	}
	if got := tb.KeyIndex(); got != 0 {
		t.Errorf("KeyIndex = %d", got)
	}
	tb.Mutable = []string{"price"}
	if !tb.IsMutable("price") || tb.IsMutable("id") {
		t.Error("IsMutable wrong")
	}
	names := tb.AttrNames()
	if len(names) != 5 || names[0] != "id" || names[4] != "price" {
		t.Errorf("AttrNames = %v", names)
	}
}

func TestTableString(t *testing.T) {
	got := timeTable().String()
	want := "CREATE TABLE time (id INTEGER PRIMARY KEY, day INTEGER, month INTEGER, year INTEGER)"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func newTestCatalog(t *testing.T) *Catalog {
	t.Helper()
	c := NewCatalog()
	for _, tb := range []*Table{saleTable(), timeTable()} {
		if err := c.AddTable(tb); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AddForeignKey(ForeignKey{"sale", "timeid", "time"}); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCatalogBasics(t *testing.T) {
	c := newTestCatalog(t)
	if c.Table("sale") == nil || c.Table("nope") != nil {
		t.Error("Table lookup wrong")
	}
	if got := c.TableNames(); len(got) != 2 || got[0] != "sale" || got[1] != "time" {
		t.Errorf("TableNames = %v", got)
	}
	if !c.HasRI("sale", "timeid", "time") {
		t.Error("HasRI should hold")
	}
	if c.HasRI("sale", "storeid", "time") {
		t.Error("HasRI should not hold")
	}
	refs := c.ReferencesTo("time")
	if len(refs) != 1 || refs[0].FromTable != "sale" {
		t.Errorf("ReferencesTo = %v", refs)
	}
	if got := len(c.ForeignKeys()); got != 1 {
		t.Errorf("ForeignKeys len = %d", got)
	}
}

func TestCatalogErrors(t *testing.T) {
	c := newTestCatalog(t)
	if err := c.AddTable(saleTable()); err == nil {
		t.Error("duplicate table accepted")
	}
	bad := saleTable()
	bad.Name = ""
	if err := c.AddTable(bad); err == nil {
		t.Error("invalid table accepted")
	}
	if err := c.AddForeignKey(ForeignKey{"nope", "x", "time"}); err == nil {
		t.Error("FK from unknown table accepted")
	}
	if err := c.AddForeignKey(ForeignKey{"sale", "nope", "time"}); err == nil {
		t.Error("FK from unknown attr accepted")
	}
	if err := c.AddForeignKey(ForeignKey{"sale", "storeid", "nope"}); err == nil {
		t.Error("FK to unknown table accepted")
	}
	if err := c.AddForeignKey(ForeignKey{"sale", "timeid", "time"}); err == nil {
		t.Error("duplicate FK accepted")
	}
}

func TestMustTable(t *testing.T) {
	c := newTestCatalog(t)
	if c.MustTable("sale").Name != "sale" {
		t.Error("MustTable wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustTable on unknown table: expected panic")
		}
	}()
	c.MustTable("nope")
}

func TestResolveAttr(t *testing.T) {
	c := newTestCatalog(t)
	from := []string{"sale", "time"}

	owner, err := c.ResolveAttr(from, "", "price")
	if err != nil || owner != "sale" {
		t.Errorf("price: %s, %v", owner, err)
	}
	owner, err = c.ResolveAttr(from, "", "month")
	if err != nil || owner != "time" {
		t.Errorf("month: %s, %v", owner, err)
	}
	if _, err = c.ResolveAttr(from, "", "id"); err == nil {
		t.Error("ambiguous id resolved")
	}
	owner, err = c.ResolveAttr(from, "time", "id")
	if err != nil || owner != "time" {
		t.Errorf("time.id: %s, %v", owner, err)
	}
	if _, err = c.ResolveAttr(from, "", "nope"); err == nil {
		t.Error("unknown attr resolved")
	}
	if _, err = c.ResolveAttr(from, "nope", "id"); err == nil {
		t.Error("unknown table resolved")
	}
	if _, err = c.ResolveAttr(from, "time", "price"); err == nil {
		t.Error("wrong table attr resolved")
	}
	if _, err = c.ResolveAttr([]string{"sale"}, "time", "id"); err == nil {
		t.Error("table outside FROM resolved")
	}
}
