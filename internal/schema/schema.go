// Package schema models base-table schemas, keys, and integrity constraints.
//
// Following the paper's assumptions (Section 2.1): every base table has a
// single-attribute key, base tables contain no nulls, and referential
// integrity constraints reference the key of the target table. The catalog
// additionally records which attributes an application may update in place;
// from these, "exposed updates" (updates that can change attributes involved
// in selection or join conditions of a given view) are derived per view.
package schema

import (
	"fmt"
	"sort"
	"strings"

	"mindetail/internal/types"
)

// Attribute is a named, typed column of a table.
type Attribute struct {
	Name string
	Type types.Kind
}

// Table describes a base table: its attributes, single-attribute primary
// key, and the set of attributes an application is allowed to update in
// place. Attributes not listed in Mutable never change after insertion
// (they can still disappear via tuple deletion).
type Table struct {
	Name    string
	Attrs   []Attribute
	Key     string   // single-attribute primary key (paper Section 2.1)
	Mutable []string // attributes updatable in place; nil means none
}

// ForeignKey declares referential integrity from FromTable.FromAttr to the
// key of ToTable (paper Section 2.2): every FromAttr value appears as a key
// in ToTable, and each tuple of FromTable joins with exactly one tuple of
// ToTable.
type ForeignKey struct {
	FromTable string
	FromAttr  string
	ToTable   string
}

// AttrIndex returns the position of the named attribute, or -1.
func (t *Table) AttrIndex(name string) int {
	for i, a := range t.Attrs {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// HasAttr reports whether the table has an attribute with the given name.
func (t *Table) HasAttr(name string) bool { return t.AttrIndex(name) >= 0 }

// KeyIndex returns the position of the key attribute.
func (t *Table) KeyIndex() int { return t.AttrIndex(t.Key) }

// IsMutable reports whether attr may be updated in place.
func (t *Table) IsMutable(attr string) bool {
	for _, m := range t.Mutable {
		if m == attr {
			return true
		}
	}
	return false
}

// AttrNames returns the attribute names in declaration order.
func (t *Table) AttrNames() []string {
	names := make([]string, len(t.Attrs))
	for i, a := range t.Attrs {
		names[i] = a.Name
	}
	return names
}

// Validate checks structural invariants of the table definition.
func (t *Table) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("schema: table with empty name")
	}
	if len(t.Attrs) == 0 {
		return fmt.Errorf("schema: table %s has no attributes", t.Name)
	}
	seen := make(map[string]bool, len(t.Attrs))
	for _, a := range t.Attrs {
		if a.Name == "" {
			return fmt.Errorf("schema: table %s has an unnamed attribute", t.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("schema: table %s: duplicate attribute %s", t.Name, a.Name)
		}
		if a.Type == types.KindNull {
			return fmt.Errorf("schema: table %s: attribute %s has NULL type", t.Name, a.Name)
		}
		seen[a.Name] = true
	}
	if t.Key == "" {
		return fmt.Errorf("schema: table %s has no primary key (paper assumes single-attribute keys)", t.Name)
	}
	if !seen[t.Key] {
		return fmt.Errorf("schema: table %s: key %s is not an attribute", t.Name, t.Key)
	}
	for _, m := range t.Mutable {
		if !seen[m] {
			return fmt.Errorf("schema: table %s: mutable attribute %s is not an attribute", t.Name, m)
		}
		if m == t.Key {
			return fmt.Errorf("schema: table %s: key %s cannot be mutable", t.Name, m)
		}
	}
	return nil
}

// String renders the table as a CREATE TABLE statement.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CREATE TABLE %s (", t.Name)
	for i, a := range t.Attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", a.Name, a.Type)
		if a.Name == t.Key {
			b.WriteString(" PRIMARY KEY")
		}
	}
	b.WriteString(")")
	return b.String()
}

// Catalog is the set of base-table schemas and the referential integrity
// constraints between them. It is the static input to auxiliary-view
// derivation.
type Catalog struct {
	tables map[string]*Table
	fks    []ForeignKey
	order  []string // table registration order, for deterministic iteration
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// AddTable registers a table schema.
func (c *Catalog) AddTable(t *Table) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if _, dup := c.tables[t.Name]; dup {
		return fmt.Errorf("schema: table %s already defined", t.Name)
	}
	c.tables[t.Name] = t
	c.order = append(c.order, t.Name)
	return nil
}

// AddForeignKey registers a referential integrity constraint. The target
// attribute is always the key of the target table (paper Section 2.1).
func (c *Catalog) AddForeignKey(fk ForeignKey) error {
	from, ok := c.tables[fk.FromTable]
	if !ok {
		return fmt.Errorf("schema: foreign key from unknown table %s", fk.FromTable)
	}
	if !from.HasAttr(fk.FromAttr) {
		return fmt.Errorf("schema: foreign key from unknown attribute %s.%s", fk.FromTable, fk.FromAttr)
	}
	if _, ok := c.tables[fk.ToTable]; !ok {
		return fmt.Errorf("schema: foreign key to unknown table %s", fk.ToTable)
	}
	for _, e := range c.fks {
		if e == fk {
			return fmt.Errorf("schema: duplicate foreign key %s.%s -> %s", fk.FromTable, fk.FromAttr, fk.ToTable)
		}
	}
	c.fks = append(c.fks, fk)
	return nil
}

// Table returns the named table schema, or nil.
func (c *Catalog) Table(name string) *Table { return c.tables[name] }

// MustTable returns the named table schema or panics; for use after
// validation has established existence.
func (c *Catalog) MustTable(name string) *Table {
	t := c.tables[name]
	if t == nil {
		panic(fmt.Sprintf("schema: unknown table %s", name))
	}
	return t
}

// TableNames returns all table names in registration order.
func (c *Catalog) TableNames() []string {
	out := make([]string, len(c.order))
	copy(out, c.order)
	return out
}

// ForeignKeys returns all registered referential integrity constraints.
func (c *Catalog) ForeignKeys() []ForeignKey {
	out := make([]ForeignKey, len(c.fks))
	copy(out, c.fks)
	return out
}

// HasRI reports whether referential integrity holds from from.attr to the
// key of to.
func (c *Catalog) HasRI(from, attr, to string) bool {
	for _, fk := range c.fks {
		if fk.FromTable == from && fk.FromAttr == attr && fk.ToTable == to {
			return true
		}
	}
	return false
}

// ReferencesTo returns the foreign keys whose target is the given table,
// sorted for determinism.
func (c *Catalog) ReferencesTo(table string) []ForeignKey {
	var out []ForeignKey
	for _, fk := range c.fks {
		if fk.ToTable == table {
			out = append(out, fk)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].FromTable != out[j].FromTable {
			return out[i].FromTable < out[j].FromTable
		}
		return out[i].FromAttr < out[j].FromAttr
	})
	return out
}

// ResolveAttr resolves a possibly-unqualified attribute name against the
// given tables, returning the owning table. It is an error if the name is
// ambiguous or unknown.
func (c *Catalog) ResolveAttr(tables []string, table, attr string) (string, error) {
	if table != "" {
		t := c.Table(table)
		if t == nil {
			return "", fmt.Errorf("schema: unknown table %s", table)
		}
		if !t.HasAttr(attr) {
			return "", fmt.Errorf("schema: table %s has no attribute %s", table, attr)
		}
		found := false
		for _, name := range tables {
			if name == table {
				found = true
				break
			}
		}
		if !found {
			return "", fmt.Errorf("schema: table %s is not in the FROM list", table)
		}
		return table, nil
	}
	var owner string
	for _, name := range tables {
		t := c.Table(name)
		if t == nil {
			return "", fmt.Errorf("schema: unknown table %s", name)
		}
		if t.HasAttr(attr) {
			if owner != "" {
				return "", fmt.Errorf("schema: attribute %s is ambiguous (in %s and %s)", attr, owner, name)
			}
			owner = name
		}
	}
	if owner == "" {
		return "", fmt.Errorf("schema: attribute %s not found in any FROM table", attr)
	}
	return owner, nil
}
