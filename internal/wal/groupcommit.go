package wal

import (
	"runtime"
	"sync"
)

// DefaultGroupCommitDepth is the batch-size cap a GroupCommitter uses when
// the caller passes depth <= 0. Deep enough to amortize an fsync well past
// the point of diminishing returns, small enough to bound commit latency
// for the writers at the head of a batch.
const DefaultGroupCommitDepth = 64

// GroupCommitter turns concurrent per-mutation Commit calls into batched
// CommitBatch calls on the underlying log: the first writer to arrive
// opens a batch, every writer that arrives while the committer goroutine
// is busy (typically: while the previous batch's fsync is in flight) joins
// it, and one fsync makes the whole batch durable. Commit blocks until the
// caller's record has hit disk, so the per-writer durability contract is
// exactly that of Log.Commit — only the cost is shared.
//
// The batching is self-clocking: under light load every batch has one
// record and behavior degenerates to Log.Commit; under contention batch
// size grows toward maxBatch and the per-commit fsync cost falls
// proportionally.
type GroupCommitter struct {
	log      *Log
	maxBatch int

	reqs chan gcReq
	done chan struct{}
	once sync.Once
}

type gcReq struct {
	lsn uint64
	ack chan error
}

// NewGroupCommitter starts a committer goroutine over l. maxBatch caps how
// many commits one fsync may cover (<= 0 selects DefaultGroupCommitDepth).
// Close must be called once no more Commit calls are in flight.
func NewGroupCommitter(l *Log, maxBatch int) *GroupCommitter {
	if maxBatch <= 0 {
		maxBatch = DefaultGroupCommitDepth
	}
	g := &GroupCommitter{
		log:      l,
		maxBatch: maxBatch,
		reqs:     make(chan gcReq, maxBatch),
		done:     make(chan struct{}),
	}
	go g.run()
	return g
}

// Commit enqueues the commit outcome for lsn and blocks until the batch
// containing it is durable (per the log's sync policy). Safe for
// concurrent use; must not be called after Close.
func (g *GroupCommitter) Commit(lsn uint64) error {
	ack := make(chan error, 1)
	g.reqs <- gcReq{lsn: lsn, ack: ack}
	return <-ack
}

// Close flushes any batch in flight and stops the committer goroutine.
// Idempotent; pending Commit calls complete, new ones must not be made.
func (g *GroupCommitter) Close() {
	g.once.Do(func() {
		close(g.reqs)
		<-g.done
	})
}

// run is the committer loop: block for the first request, drain whatever
// else is queued (up to maxBatch), write and sync the batch with one
// CommitBatch, acknowledge every writer, repeat. When the queue reads
// empty the loop yields once before closing the batch: writers
// acknowledged a moment ago are typically runnable but not yet
// rescheduled, and the yield lets them append their next intent and
// enqueue — without it, batches stabilize at roughly half the writer
// pool because each cohort only re-enqueues after the batch closes.
func (g *GroupCommitter) run() {
	defer close(g.done)
	lsns := make([]uint64, 0, g.maxBatch)
	acks := make([]chan error, 0, g.maxBatch)
	for {
		r, ok := <-g.reqs
		if !ok {
			return
		}
		lsns = append(lsns[:0], r.lsn)
		acks = append(acks[:0], r.ack)
		yielded := false
	drain:
		for len(lsns) < g.maxBatch {
			select {
			case r2, ok2 := <-g.reqs:
				if !ok2 {
					break drain
				}
				lsns = append(lsns, r2.lsn)
				acks = append(acks, r2.ack)
			default:
				if yielded {
					break drain
				}
				yielded = true
				runtime.Gosched()
			}
		}
		err := g.log.CommitBatch(lsns)
		for _, ack := range acks {
			ack <- err
		}
	}
}
