// Package wal is a checksummed, length-prefixed write-ahead log of
// warehouse mutations, and the recovery path built on it.
//
// Every logical mutation — a DML delta, an ImportCSV batch, a CREATE
// TABLE / CREATE MATERIALIZED VIEW statement — is appended as an intent
// record carrying a fresh, monotonic LSN and made durable *before* the
// transactional in-memory apply (PR 2); its outcome (commit or abort) is
// appended after. Recovery is persist.Load of the latest snapshot plus an
// idempotent replay of the committed log suffix past the snapshot's
// recorded LSN, through the exact propagate path a live warehouse uses, so
// a recovered warehouse is bit-identical to one that never crashed
// (whenever float aggregation is exact; a group recompute over
// snapshot-restored detail rows may re-sum floats in a different order).
//
// On-disk format:
//
//	file   = magic record*
//	magic  = "MDWAL" 0x00 version(0x01) '\n'          (8 bytes)
//	record = len:uint32le crc:uint32le payload[len]    (crc = CRC-32C of payload)
//
// A half-written tail record — short frame, short payload, or checksum
// mismatch — is detected on open and the file is truncated back to the
// last whole record; an intent whose outcome never made it to disk was
// never acknowledged and is discarded by replay. The log assumes a single
// appending writer (the warehouse serializes writes under its lock).
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"mindetail/internal/maintain"
	"mindetail/internal/obs"
)

var magic = []byte{'M', 'D', 'W', 'A', 'L', 0x00, 0x01, '\n'}

const frameHeader = 8 // uint32 length + uint32 CRC-32C

// maxRecordLen bounds a single record so a garbage length prefix cannot
// force a huge allocation during recovery.
const maxRecordLen = 1 << 30

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy controls when the log fsyncs.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append — intents and outcomes. The
	// durability point of a mutation is its commit record either way; this
	// policy additionally bounds the torn tail to one record.
	SyncAlways SyncPolicy = iota
	// SyncCommit fsyncs only after commit outcomes: one fsync per durable
	// mutation, the intent riding the same flush.
	SyncCommit
	// SyncNever leaves flushing to the OS (benchmarks and tests; a crash
	// may lose acknowledged mutations).
	SyncNever
)

// Log is an append-only write-ahead log backed by one file. All methods
// are safe for concurrent use, though the warehouse serializes appends
// under its own lock.
type Log struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	policy  SyncPolicy
	size    int64
	nextLSN uint64
	torn    int64 // bytes truncated from the tail on open
	buf     []byte
	flushed atomic.Uint64 // highest LSN known durable (monotonic)

	// Observability (nil until SetObs): append/fsync latency histograms,
	// log size and LSN gauges, and record counters.
	appendNs *obs.Histogram
	fsyncNs  *obs.Histogram
	batchH   *obs.Histogram
	sizeG    *obs.Gauge
	lsnG     *obs.Gauge
	tornG    *obs.Gauge
	appends  *obs.Counter
	commits  *obs.Counter
	aborts   *obs.Counter
	gcSyncs  *obs.Counter
}

// OpenLog opens (creating if absent) the log at path, validates the
// magic, scans the records to find the next LSN, and truncates any
// half-written tail record. TornBytes reports how much was cut.
func OpenLog(path string, policy SyncPolicy) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	l := &Log{f: f, path: path, policy: policy}
	if err := l.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// recover validates the file, computes nextLSN, and truncates a torn tail.
func (l *Log) recover() error {
	data, err := os.ReadFile(l.path)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		if _, err := l.f.Write(magic); err != nil {
			return err
		}
		if err := l.f.Sync(); err != nil {
			return err
		}
		l.size = int64(len(magic))
		l.nextLSN = 1
		return nil
	}
	if len(data) < len(magic) || string(data[:len(magic)]) != string(magic) {
		return fmt.Errorf("wal: %s is not a mindetail WAL (bad magic)", l.path)
	}
	recs, ends, _ := Decode(data)
	end := validEnd(ends)
	l.torn = int64(len(data)) - end
	if l.torn > 0 {
		if err := l.f.Truncate(end); err != nil {
			return err
		}
		if err := l.f.Sync(); err != nil {
			return err
		}
	}
	if _, err := l.f.Seek(end, 0); err != nil {
		return err
	}
	l.size = end
	l.nextLSN = 1
	for _, r := range recs {
		if r.LSN >= l.nextLSN {
			l.nextLSN = r.LSN + 1
		}
	}
	return nil
}

// Decode parses the framed records of a full log image (including the
// magic). It returns the decoded records, the byte offset just past each
// whole, checksum-valid record (ends[i] for record i; so ends[len-1], or
// len(magic) when there are no records, is the end of the valid prefix),
// and the error that terminated the scan (nil when the image ends exactly
// on a record boundary). Everything past the valid prefix is a torn tail:
// with a single appending writer an invalid frame can only be the
// unfinished last write.
func Decode(data []byte) ([]Record, []int64, error) {
	if len(data) < len(magic) || string(data[:len(magic)]) != string(magic) {
		return nil, nil, fmt.Errorf("wal: bad magic")
	}
	var recs []Record
	var ends []int64
	off := int64(len(magic))
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return recs, ends, nil
		}
		if len(rest) < frameHeader {
			return recs, ends, fmt.Errorf("wal: torn frame header at offset %d", off)
		}
		n := binary.LittleEndian.Uint32(rest)
		crc := binary.LittleEndian.Uint32(rest[4:])
		if n > maxRecordLen || uint64(len(rest)-frameHeader) < uint64(n) {
			return recs, ends, fmt.Errorf("wal: torn payload at offset %d", off)
		}
		payload := rest[frameHeader : frameHeader+int(n)]
		if crc32.Checksum(payload, castagnoli) != crc {
			return recs, ends, fmt.Errorf("wal: checksum mismatch at offset %d", off)
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return recs, ends, fmt.Errorf("wal: offset %d: %w", off, err)
		}
		recs = append(recs, rec)
		off += frameHeader + int64(n)
		ends = append(ends, off)
	}
}

// validEnd returns the end offset of the valid record prefix for ends as
// returned by Decode.
func validEnd(ends []int64) int64 {
	if len(ends) == 0 {
		return int64(len(magic))
	}
	return ends[len(ends)-1]
}

// Records re-reads the log file and returns its decoded records (the torn
// tail, had there been one, was already truncated by Open).
func (l *Log) Records() ([]Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	data, err := os.ReadFile(l.path)
	if err != nil {
		return nil, err
	}
	recs, _, _ := Decode(data)
	return recs, nil
}

// SetObs registers the log's metrics — wal.append.ns and wal.fsync.ns
// latency histograms, wal.size_bytes / wal.lsn / wal.torn_bytes_truncated
// gauges, and append/commit/abort counters — in the given registry.
func (l *Log) SetObs(reg *obs.Registry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.appendNs = reg.Histogram("wal.append.ns")
	l.fsyncNs = reg.Histogram("wal.fsync.ns")
	l.batchH = reg.Histogram("wal.groupcommit.batch")
	l.gcSyncs = reg.Counter("wal.groupcommit.syncs")
	l.sizeG = reg.Gauge("wal.size_bytes")
	l.lsnG = reg.Gauge("wal.lsn")
	l.tornG = reg.Gauge("wal.torn_bytes_truncated")
	l.appends = reg.Counter("wal.appends")
	l.commits = reg.Counter("wal.records.commit")
	l.aborts = reg.Counter("wal.records.abort")
	l.sizeG.Set(l.size)
	l.lsnG.Set(int64(l.nextLSN - 1))
	l.tornG.Set(l.torn)
}

// append frames, writes, and (per policy) syncs one record. Callers hold
// l.mu. On a failed or short write the file is truncated back to the
// record boundary so the in-memory view of the log stays consistent.
func (l *Log) append(rec Record, sync bool) error {
	var start time.Time
	if l.appendNs != nil {
		start = time.Now()
	}
	payload := appendPayload(l.buf[:0], rec)
	l.buf = payload
	var frame [frameHeader]byte
	binary.LittleEndian.PutUint32(frame[:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, castagnoli))
	if _, err := l.f.Write(frame[:]); err != nil {
		l.rewind()
		return err
	}
	if _, err := l.f.Write(payload); err != nil {
		l.rewind()
		return err
	}
	l.size += frameHeader + int64(len(payload))
	if l.appendNs != nil {
		l.appendNs.ObserveSince(start)
		l.appends.Inc()
		l.sizeG.Set(l.size)
	}
	if sync {
		return l.sync()
	}
	return nil
}

// rewind truncates the file back to the last known-good size after a
// failed write. Best effort: if truncation fails too, the torn record is
// detected and cut by the next Open.
func (l *Log) rewind() {
	_ = l.f.Truncate(l.size)
	_, _ = l.f.Seek(l.size, 0)
}

func (l *Log) sync() error {
	var start time.Time
	if l.fsyncNs != nil {
		start = time.Now()
	}
	lastLSN := l.nextLSN - 1 // everything appended so far rides this fsync
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.advanceFlushed(lastLSN)
	if l.fsyncNs != nil {
		l.fsyncNs.ObserveSince(start)
	}
	return nil
}

// advanceFlushed raises the durable watermark to lsn (CAS-max: the
// group-commit path publishes outside l.mu, so concurrent syncs may race).
func (l *Log) advanceFlushed(lsn uint64) {
	for {
		cur := l.flushed.Load()
		if lsn <= cur || l.flushed.CompareAndSwap(cur, lsn) {
			return
		}
	}
}

// FlushedLSN returns the highest LSN known durable on disk.
func (l *Log) FlushedLSN() uint64 { return l.flushed.Load() }

// EnsureFlushed blocks until the log is durable through lsn, fsyncing if
// needed. This is the pager's WAL-before-data hook: a dirty page stamped
// with LSN L may overwrite its on-disk prior image only after the log is
// durable through L, so recovery can always re-derive the page's effects
// from the committed log suffix.
// Under SyncNever the rule is vacuous — that policy already trades away
// crash durability — so EnsureFlushed is a no-op instead of forcing the
// fsyncs the policy was chosen to avoid.
func (l *Log) EnsureFlushed(lsn uint64) error {
	if l.flushed.Load() >= lsn {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.policy == SyncNever || l.flushed.Load() >= lsn {
		return nil
	}
	return l.sync()
}

// BeginDelta appends (and per policy syncs) a delta intent record and
// returns its LSN. The warehouse calls this before staging the delta.
func (l *Log) BeginDelta(d maintain.Delta, srcApplied bool) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	lsn := l.nextLSN
	rec := Record{LSN: lsn, Kind: KindDelta, SrcApplied: srcApplied, Delta: d}
	if err := l.append(rec, l.policy == SyncAlways); err != nil {
		return 0, err
	}
	l.nextLSN++
	if l.lsnG != nil {
		l.lsnG.Set(int64(lsn))
	}
	return lsn, nil
}

// BeginDDL appends a DDL intent record and returns its LSN.
func (l *Log) BeginDDL(sql string) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	lsn := l.nextLSN
	if err := l.append(Record{LSN: lsn, Kind: KindDDL, SQL: sql}, l.policy == SyncAlways); err != nil {
		return 0, err
	}
	l.nextLSN++
	if l.lsnG != nil {
		l.lsnG.Set(int64(lsn))
	}
	return lsn, nil
}

// Commit appends the commit outcome for lsn. This is the durability point
// of the mutation: under SyncAlways and SyncCommit the record is fsynced
// before Commit returns.
func (l *Log) Commit(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.append(Record{LSN: lsn, Kind: KindCommit}, l.policy != SyncNever); err != nil {
		return err
	}
	if l.commits != nil {
		l.commits.Inc()
	}
	return nil
}

// CommitBatch appends the commit outcomes for a whole batch of mutations
// and makes them durable with a single fsync (under SyncAlways and
// SyncCommit; SyncNever leaves flushing to the OS as usual). This is the
// group-commit primitive: the commit records are written back to back in
// the given order and the one sync covers every intent and outcome of the
// batch, amortizing the dominant per-mutation cost over len(lsns)
// mutations. A failed append leaves the earlier records of the batch in
// the file; they become durable with the next sync, exactly as if each
// had been committed individually under SyncNever. An empty batch is a
// no-op.
func (l *Log) CommitBatch(lsns []uint64) error {
	if len(lsns) == 0 {
		return nil
	}
	l.mu.Lock()
	for _, lsn := range lsns {
		if err := l.append(Record{LSN: lsn, Kind: KindCommit}, false); err != nil {
			l.mu.Unlock()
			return err
		}
		if l.commits != nil {
			l.commits.Inc()
		}
	}
	if l.batchH != nil {
		l.batchH.Observe(int64(len(lsns)))
		l.gcSyncs.Inc()
	}
	policy := l.policy
	fsyncNs := l.fsyncNs
	lastLSN := l.nextLSN - 1 // appended under the mutex, so covered below
	// Release the mutex before the fsync: the sync covers everything
	// appended so far, so concurrent intent appends during the (long)
	// fsync are safe — they merely ride along early. Holding the lock
	// here would stall every writer's BeginDelta for the fsync duration
	// and cap group-commit batches at whatever had already enqueued.
	l.mu.Unlock()
	if policy == SyncNever {
		return nil
	}
	var start time.Time
	if fsyncNs != nil {
		start = time.Now()
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.advanceFlushed(lastLSN)
	if fsyncNs != nil {
		fsyncNs.ObserveSince(start)
	}
	return nil
}

// Abort appends the abort outcome for lsn. Durability of an abort is not
// required for correctness — a missing outcome is equally not-committed —
// so it syncs only under SyncAlways.
func (l *Log) Abort(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.append(Record{LSN: lsn, Kind: KindAbort}, l.policy == SyncAlways); err != nil {
		return err
	}
	if l.aborts != nil {
		l.aborts.Inc()
	}
	return nil
}

// Reset compacts the log after a checkpoint: the file is truncated to the
// magic and a checkpoint record is written stating that every LSN up to
// and including lsn lives in the snapshot. LSNs remain monotonic across
// compactions.
func (l *Log) Reset(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.f.Truncate(int64(len(magic))); err != nil {
		return err
	}
	if _, err := l.f.Seek(int64(len(magic)), 0); err != nil {
		return err
	}
	l.size = int64(len(magic))
	if lsn+1 > l.nextLSN {
		l.nextLSN = lsn + 1
	}
	if err := l.append(Record{LSN: lsn, Kind: KindCheckpoint}, true); err != nil {
		return err
	}
	if l.sizeG != nil {
		l.sizeG.Set(l.size)
	}
	return nil
}

// Size returns the current log size in bytes.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// LastLSN returns the highest LSN ever assigned by this log (0 when none).
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// TornBytes reports how many half-written tail bytes Open truncated.
func (l *Log) TornBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.torn
}

// Sync forces an fsync regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sync()
}

// Close syncs and closes the log file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }
