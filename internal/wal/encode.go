// Record payload encoding for the write-ahead log.
//
// A payload is self-delimiting binary: a kind byte, the record's LSN as a
// uvarint, and a kind-specific body. Values keep their exact kind — unlike
// the group-key encoding in internal/types, an Int never normalizes to a
// Float bit pattern, so a replayed delta is byte-for-byte the delta that
// was logged.
package wal

import (
	"encoding/binary"
	"fmt"
	"math"

	"mindetail/internal/maintain"
	"mindetail/internal/tuple"
	"mindetail/internal/types"
)

// Kind identifies a record's role in the log.
type Kind byte

const (
	// KindDelta is a mutation intent: one maintain.Delta, plus whether the
	// source tables were mutated alongside it (DML and ImportCSV batches)
	// or not (ApplyDelta on a detached warehouse).
	KindDelta Kind = 1
	// KindDDL is a schema-change intent: the SQL text of a CREATE TABLE or
	// CREATE MATERIALIZED VIEW statement.
	KindDDL Kind = 2
	// KindCommit marks the intent with the same LSN as applied.
	KindCommit Kind = 3
	// KindAbort marks the intent with the same LSN as rolled back.
	KindAbort Kind = 4
	// KindCheckpoint records that every LSN up to and including the
	// record's LSN is captured by the snapshot; written when the log is
	// compacted.
	KindCheckpoint Kind = 5
)

// String returns the symbolic name of the kind.
func (k Kind) String() string {
	switch k {
	case KindDelta:
		return "delta"
	case KindDDL:
		return "ddl"
	case KindCommit:
		return "commit"
	case KindAbort:
		return "abort"
	case KindCheckpoint:
		return "checkpoint"
	}
	return fmt.Sprintf("Kind(%d)", byte(k))
}

// Record is one decoded log record. Intent records (KindDelta, KindDDL)
// carry a fresh LSN; outcome records (KindCommit, KindAbort) reference the
// intent's LSN.
type Record struct {
	LSN  uint64
	Kind Kind

	// SrcApplied reports whether the delta also mutated the source tables
	// when it was first applied (KindDelta only); replay repeats the source
	// mutation exactly when this is set and the warehouse is attached.
	SrcApplied bool
	Delta      maintain.Delta // KindDelta
	SQL        string         // KindDDL
}

// value tags; one byte per value, exact-kind round-trip.
const (
	tagNull  = 0
	tagBool  = 1
	tagInt   = 2
	tagFloat = 3
	tagStr   = 4
)

// readUvarint decodes a uvarint and rejects non-minimal encodings, so
// every valid payload has exactly one byte representation (a property the
// decoder fuzz test asserts by re-encoding).
func readUvarint(b []byte) (uint64, []byte, error) {
	v, sz := binary.Uvarint(b)
	if sz <= 0 || (sz > 1 && b[sz-1] == 0) {
		return 0, nil, fmt.Errorf("wal: bad uvarint")
	}
	return v, b[sz:], nil
}

// readVarint is readUvarint for signed (zigzag) varints.
func readVarint(b []byte) (int64, []byte, error) {
	v, sz := binary.Varint(b)
	if sz <= 0 || (sz > 1 && b[sz-1] == 0) {
		return 0, nil, fmt.Errorf("wal: bad varint")
	}
	return v, b[sz:], nil
}

func appendValue(dst []byte, v types.Value) []byte {
	switch v.Kind() {
	case types.KindNull:
		return append(dst, tagNull)
	case types.KindBool:
		if v.AsBool() {
			return append(dst, tagBool, 1)
		}
		return append(dst, tagBool, 0)
	case types.KindInt:
		dst = append(dst, tagInt)
		return binary.AppendVarint(dst, v.AsInt())
	case types.KindFloat:
		dst = append(dst, tagFloat)
		return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.AsFloat()))
	default:
		dst = append(dst, tagStr)
		s := v.AsString()
		dst = binary.AppendUvarint(dst, uint64(len(s)))
		return append(dst, s...)
	}
}

func decodeValue(b []byte) (types.Value, []byte, error) {
	if len(b) == 0 {
		return types.Null, nil, fmt.Errorf("wal: truncated value")
	}
	tag, b := b[0], b[1:]
	switch tag {
	case tagNull:
		return types.Null, b, nil
	case tagBool:
		if len(b) < 1 || b[0] > 1 {
			return types.Null, nil, fmt.Errorf("wal: bad bool byte")
		}
		return types.Bool(b[0] == 1), b[1:], nil
	case tagInt:
		n, rest, err := readVarint(b)
		if err != nil {
			return types.Null, nil, fmt.Errorf("wal: bad int varint")
		}
		return types.Int(n), rest, nil
	case tagFloat:
		if len(b) < 8 {
			return types.Null, nil, fmt.Errorf("wal: truncated float")
		}
		return types.Float(math.Float64frombits(binary.LittleEndian.Uint64(b))), b[8:], nil
	case tagStr:
		n, rest, err := readUvarint(b)
		if err != nil || uint64(len(rest)) < n {
			return types.Null, nil, fmt.Errorf("wal: bad string length")
		}
		return types.Str(string(rest[:n])), rest[n:], nil
	}
	return types.Null, nil, fmt.Errorf("wal: unknown value tag %d", tag)
}

func appendTuple(dst []byte, row tuple.Tuple) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(row)))
	for _, v := range row {
		dst = appendValue(dst, v)
	}
	return dst
}

func decodeTuple(b []byte) (tuple.Tuple, []byte, error) {
	n, b, err := readUvarint(b)
	if err != nil || n > uint64(len(b)) {
		return nil, nil, fmt.Errorf("wal: bad tuple arity")
	}
	row := make(tuple.Tuple, n)
	for i := range row {
		var err error
		row[i], b, err = decodeValue(b)
		if err != nil {
			return nil, nil, err
		}
	}
	return row, b, nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func decodeString(b []byte) (string, []byte, error) {
	n, rest, err := readUvarint(b)
	if err != nil || uint64(len(rest)) < n {
		return "", nil, fmt.Errorf("wal: bad string length")
	}
	return string(rest[:n]), rest[n:], nil
}

// appendPayload encodes rec (kind, LSN, body) onto dst.
func appendPayload(dst []byte, rec Record) []byte {
	dst = append(dst, byte(rec.Kind))
	dst = binary.AppendUvarint(dst, rec.LSN)
	switch rec.Kind {
	case KindDelta:
		flag := byte(0)
		if rec.SrcApplied {
			flag = 1
		}
		dst = append(dst, flag)
		dst = AppendDelta(dst, rec.Delta)
	case KindDDL:
		dst = appendString(dst, rec.SQL)
	}
	return dst
}

// decodePayload parses one record payload. Trailing bytes are an error:
// a payload is exactly one record.
func decodePayload(b []byte) (Record, error) {
	var rec Record
	if len(b) == 0 {
		return rec, fmt.Errorf("wal: empty payload")
	}
	rec.Kind = Kind(b[0])
	b = b[1:]
	lsn, b, err := readUvarint(b)
	if err != nil {
		return rec, fmt.Errorf("wal: bad LSN varint")
	}
	rec.LSN = lsn
	switch rec.Kind {
	case KindDelta:
		if len(b) < 1 || b[0] > 1 {
			return rec, fmt.Errorf("wal: bad delta flag byte")
		}
		rec.SrcApplied = b[0] == 1
		b = b[1:]
		if rec.Delta, b, err = DecodeDelta(b); err != nil {
			return rec, err
		}
	case KindDDL:
		if rec.SQL, b, err = decodeString(b); err != nil {
			return rec, err
		}
	case KindCommit, KindAbort, KindCheckpoint:
		// LSN only.
	default:
		return rec, fmt.Errorf("wal: unknown record kind %d", byte(rec.Kind))
	}
	if len(b) != 0 {
		return rec, fmt.Errorf("wal: %d trailing bytes in payload", len(b))
	}
	return rec, nil
}
