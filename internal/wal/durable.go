package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"

	"mindetail/internal/persist"
	"mindetail/internal/warehouse"
)

// File names inside a durable warehouse directory.
const (
	SnapshotFile = "snapshot"
	LogFile      = "wal.log"
)

// Options configures a durable warehouse directory.
type Options struct {
	// Sync is the log's fsync policy (default SyncAlways).
	Sync SyncPolicy
}

// Durable binds a warehouse to an on-disk directory holding its latest
// snapshot and write-ahead log. Open recovers; Checkpoint compacts.
type Durable struct {
	dir string
	w   *warehouse.Warehouse
	log *Log
}

// Open opens (creating if needed) the durable warehouse in dir:
// it loads the latest snapshot when one exists, opens the log (truncating
// any half-written tail record), replays the committed suffix past the
// snapshot's recorded LSN through the normal propagate path, and attaches
// the log so subsequent mutations are write-ahead logged. The recovered
// warehouse is bit-identical to one that never crashed; mutations whose
// commit record never reached disk were never acknowledged and are
// dropped.
func Open(dir string, opts Options) (*Durable, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var w *warehouse.Warehouse
	snapPath := filepath.Join(dir, SnapshotFile)
	if f, err := os.Open(snapPath); err == nil {
		w, err = persist.Load(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("wal: loading snapshot %s: %w", snapPath, err)
		}
	} else if errors.Is(err, os.ErrNotExist) {
		w = warehouse.New()
	} else {
		return nil, err
	}

	log, err := OpenLog(filepath.Join(dir, LogFile), opts.Sync)
	if err != nil {
		return nil, err
	}
	log.SetObs(w.ObsRegistry())
	recs, err := log.Records()
	if err != nil {
		log.Close()
		return nil, err
	}
	if err := Replay(w, recs); err != nil {
		log.Close()
		return nil, fmt.Errorf("wal: replaying %s: %w", log.Path(), err)
	}
	w.SetWAL(log)
	return &Durable{dir: dir, w: w, log: log}, nil
}

// Replay applies the committed intents of recs to w in log order,
// skipping — idempotently, by LSN — everything the warehouse's snapshot
// already covers, and dropping intents with a missing or abort outcome.
func Replay(w *warehouse.Warehouse, recs []Record) error {
	committed := make(map[uint64]bool)
	for _, r := range recs {
		if r.Kind == KindCommit {
			committed[r.LSN] = true
		}
	}
	for _, r := range recs {
		if !committed[r.LSN] {
			continue
		}
		switch r.Kind {
		case KindDelta:
			if err := w.ReplayDelta(r.LSN, r.Delta, r.SrcApplied); err != nil {
				return err
			}
		case KindDDL:
			if err := w.ReplayDDL(r.LSN, r.SQL); err != nil {
				return err
			}
		}
	}
	return nil
}

// Warehouse returns the recovered, WAL-attached warehouse.
func (d *Durable) Warehouse() *warehouse.Warehouse { return d.w }

// Log returns the underlying write-ahead log.
func (d *Durable) Log() *Log { return d.log }

// Dir returns the durable directory.
func (d *Durable) Dir() string { return d.dir }

// Checkpoint compacts the log: it writes a snapshot of the warehouse
// (sources included while attached) to a temporary file, fsyncs it,
// atomically renames it over the previous snapshot, and trims the log to
// a single checkpoint record. A crash between the rename and the trim is
// harmless — replay of the stale suffix is idempotent by LSN. Like
// persist.Save, Checkpoint must not run concurrently with writes to the
// warehouse.
func (d *Durable) Checkpoint() error {
	tmp := filepath.Join(d.dir, SnapshotFile+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := persist.Save(d.w, f, !d.w.Detached()); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(d.dir, SnapshotFile)); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := syncDir(d.dir); err != nil {
		return fmt.Errorf("wal: checkpoint rename not durable: %w", err)
	}
	return d.log.Reset(d.w.LSN())
}

// syncDir fsyncs a directory so a just-renamed file's entry is durable.
// Filesystems that do not support fsync on a directory handle report
// EINVAL or ENOTSUP; on those the rename's durability cannot be helped,
// so that case is tolerated. Every other failure — including being unable
// to open the directory at all — is a real durability gap and is returned.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		if errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) {
			return nil
		}
		return err
	}
	return f.Close()
}

// Close detaches and closes the log. The warehouse remains usable in
// memory but further mutations are no longer logged.
func (d *Durable) Close() error {
	d.w.SetWAL(nil)
	return d.log.Close()
}
