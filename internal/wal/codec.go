// Exported codec surface: the WAL's self-delimiting binary conventions
// (minimal uvarints, exact-kind value tags, length-prefixed strings) are
// also the payload vocabulary of the wire protocol (internal/wire), which
// reuses these helpers instead of inventing a second delta encoding. Every
// decoder rejects non-minimal or truncated input, so a valid encoding is
// unique — the property the fuzz tests assert by re-encoding.
package wal

import (
	"encoding/binary"
	"fmt"

	"mindetail/internal/maintain"
	"mindetail/internal/tuple"
)

// Uvarint decodes a minimally encoded uvarint, returning the value and the
// remaining bytes. Non-minimal encodings (a padded high byte of zero) are
// rejected so each value has exactly one byte representation.
func Uvarint(b []byte) (uint64, []byte, error) { return readUvarint(b) }

// AppendUvarint appends the minimal uvarint encoding of v.
func AppendUvarint(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }

// AppendString appends a length-prefixed string.
func AppendString(dst []byte, s string) []byte { return appendString(dst, s) }

// DecodeString decodes a length-prefixed string.
func DecodeString(b []byte) (string, []byte, error) { return decodeString(b) }

// AppendTuple appends a row with exact-kind value tags (an Int never comes
// back as a Float).
func AppendTuple(dst []byte, row tuple.Tuple) []byte { return appendTuple(dst, row) }

// DecodeTuple decodes one row.
func DecodeTuple(b []byte) (tuple.Tuple, []byte, error) { return decodeTuple(b) }

// AppendDelta appends a maintain.Delta: table name, then the insert,
// delete, and update row sets, each length-prefixed.
func AppendDelta(dst []byte, d maintain.Delta) []byte {
	dst = appendString(dst, d.Table)
	dst = binary.AppendUvarint(dst, uint64(len(d.Inserts)))
	for _, r := range d.Inserts {
		dst = appendTuple(dst, r)
	}
	dst = binary.AppendUvarint(dst, uint64(len(d.Deletes)))
	for _, r := range d.Deletes {
		dst = appendTuple(dst, r)
	}
	dst = binary.AppendUvarint(dst, uint64(len(d.Updates)))
	for _, u := range d.Updates {
		dst = appendTuple(dst, u.Old)
		dst = appendTuple(dst, u.New)
	}
	return dst
}

// DecodeDelta decodes one AppendDelta encoding, returning the remaining
// bytes.
func DecodeDelta(b []byte) (maintain.Delta, []byte, error) {
	var d maintain.Delta
	var err error
	if d.Table, b, err = decodeString(b); err != nil {
		return d, nil, err
	}
	readTuples := func(b []byte) ([]tuple.Tuple, []byte, error) {
		n, b, err := readUvarint(b)
		if err != nil || n > uint64(len(b)) {
			return nil, nil, fmt.Errorf("wal: bad tuple count")
		}
		if n == 0 {
			return nil, b, nil
		}
		rows := make([]tuple.Tuple, n)
		for i := range rows {
			var err error
			if rows[i], b, err = decodeTuple(b); err != nil {
				return nil, nil, err
			}
		}
		return rows, b, nil
	}
	if d.Inserts, b, err = readTuples(b); err != nil {
		return d, nil, err
	}
	if d.Deletes, b, err = readTuples(b); err != nil {
		return d, nil, err
	}
	var n uint64
	if n, b, err = readUvarint(b); err != nil || n > uint64(len(b)) {
		return d, nil, fmt.Errorf("wal: bad update count")
	}
	if n > 0 {
		d.Updates = make([]maintain.Update, n)
		for i := range d.Updates {
			if d.Updates[i].Old, b, err = decodeTuple(b); err != nil {
				return d, nil, err
			}
			if d.Updates[i].New, b, err = decodeTuple(b); err != nil {
				return d, nil, err
			}
		}
	}
	return d, b, nil
}
