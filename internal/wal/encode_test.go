package wal

import (
	"reflect"
	"testing"

	"mindetail/internal/maintain"
	"mindetail/internal/tuple"
	"mindetail/internal/types"
)

func roundTrip(t *testing.T, rec Record) Record {
	t.Helper()
	payload := appendPayload(nil, rec)
	got, err := decodePayload(payload)
	if err != nil {
		t.Fatalf("decode %v: %v", rec.Kind, err)
	}
	return got
}

func TestPayloadRoundTripDelta(t *testing.T) {
	rec := Record{
		LSN:        42,
		Kind:       KindDelta,
		SrcApplied: true,
		Delta: maintain.Delta{
			Table: "sale",
			Inserts: []tuple.Tuple{
				{types.Int(1), types.Str("a,b\nc"), types.Float(1.25), types.Null, types.Bool(true)},
			},
			Deletes: []tuple.Tuple{
				{types.Int(-7), types.Str(""), types.Float(-0.0), types.Bool(false)},
			},
			Updates: []maintain.Update{{
				Old: tuple.Tuple{types.Int(3), types.Str("héllo")},
				New: tuple.Tuple{types.Int(3), types.Str("wörld")},
			}},
		},
	}
	got := roundTrip(t, rec)
	if !reflect.DeepEqual(got, rec) {
		t.Fatalf("delta round-trip mismatch:\n got %#v\nwant %#v", got, rec)
	}
}

// TestValueKindsExact verifies the WAL codec keeps value kinds exact:
// Int(2) must not come back as Float(2) (unlike the group-key encoding).
func TestValueKindsExact(t *testing.T) {
	vals := tuple.Tuple{
		types.Int(2), types.Float(2), types.Int(1 << 62), types.Float(1e-300),
		types.Str("2"), types.Bool(true), types.Bool(false), types.Null,
	}
	b := appendTuple(nil, vals)
	got, rest, err := decodeTuple(b)
	if err != nil || len(rest) != 0 {
		t.Fatalf("decodeTuple: %v (rest %d)", err, len(rest))
	}
	for i, v := range vals {
		if got[i].Kind() != v.Kind() || !types.Identical(got[i], v) {
			t.Fatalf("value %d: got %v (kind %v), want %v (kind %v)",
				i, got[i], got[i].Kind(), v, v.Kind())
		}
	}
}

func TestPayloadRoundTripOtherKinds(t *testing.T) {
	for _, rec := range []Record{
		{LSN: 1, Kind: KindDDL, SQL: "CREATE TABLE t (id INTEGER PRIMARY KEY);"},
		{LSN: 9, Kind: KindCommit},
		{LSN: 9, Kind: KindAbort},
		{LSN: 100, Kind: KindCheckpoint},
		{LSN: 5, Kind: KindDelta, Delta: maintain.Delta{Table: "t"}},
	} {
		got := roundTrip(t, rec)
		if !reflect.DeepEqual(got, rec) {
			t.Fatalf("%v round-trip mismatch:\n got %#v\nwant %#v", rec.Kind, got, rec)
		}
	}
}

// FuzzDecodePayload asserts the payload decoder rejects arbitrary bytes
// with an error, never a panic or huge allocation.
func FuzzDecodePayload(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{byte(KindDelta), 1})
	f.Add([]byte{byte(KindDDL), 2, 200})
	f.Add(appendPayload(nil, Record{LSN: 3, Kind: KindCommit}))
	f.Add(appendPayload(nil, Record{LSN: 1, Kind: KindDelta, Delta: maintain.Delta{
		Table:   "t",
		Inserts: []tuple.Tuple{{types.Int(1), types.Str("x")}},
	}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := decodePayload(data)
		if err == nil {
			// A valid payload must re-encode to the same bytes.
			if got := appendPayload(nil, rec); string(got) != string(data) {
				t.Fatalf("re-encode mismatch:\n got %x\nwant %x", got, data)
			}
		}
	})
}
