package wal_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"mindetail/internal/maintain"
	"mindetail/internal/persist"
	"mindetail/internal/tuple"
	"mindetail/internal/types"
	"mindetail/internal/wal"
	"mindetail/internal/warehouse"
)

const testDDL = `
CREATE TABLE product (id INTEGER PRIMARY KEY, brand STRING MUTABLE, category STRING);
CREATE TABLE sale (id INTEGER PRIMARY KEY, productid INTEGER REFERENCES product, qty INTEGER, price FLOAT MUTABLE);
CREATE MATERIALIZED VIEW by_brand AS
  SELECT brand, SUM(price) AS total, COUNT(*) AS cnt
  FROM sale, product WHERE sale.productid = product.id GROUP BY brand;
CREATE MATERIALIZED VIEW by_category AS
  SELECT category, SUM(qty) AS q, COUNT(*) AS cnt
  FROM sale, product WHERE sale.productid = product.id GROUP BY category;
`

// Prices are multiples of 0.25 so float aggregation is exact and the
// byte-identity assertions are independent of accumulation order.
var testSteps = []string{
	`INSERT INTO product VALUES (1, 'acme', 'tools');`,
	`INSERT INTO product VALUES (2, 'zenith', 'toys');`,
	`INSERT INTO sale VALUES (10, 1, 3, 9.75);`,
	`INSERT INTO sale VALUES (11, 2, 1, 4.25), (12, 1, 2, 8.5);`,
	`UPDATE sale SET price = 5.25 WHERE id = 11;`,
	`UPDATE product SET brand = 'nadir' WHERE id = 2;`,
	`DELETE FROM sale WHERE id = 10;`,
	`INSERT INTO sale VALUES (13, 2, 4, 2.75);`,
}

// stateBytes snapshots a warehouse to its canonical persisted form —
// sorted rows, tagged values, the committed LSN — used as the
// byte-identity oracle in the recovery tests.
func stateBytes(t *testing.T, w *warehouse.Warehouse) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := persist.Save(w, &buf, !w.Detached()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// openDurable opens a durable warehouse with SyncAlways in dir.
func openDurable(t *testing.T, dir string) *wal.Durable {
	t.Helper()
	d, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// runSteps executes DDL plus the first k mutation steps.
func runSteps(t *testing.T, w *warehouse.Warehouse, k int) {
	t.Helper()
	if _, err := w.Exec(testDDL); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		if _, err := w.Exec(testSteps[i]); err != nil {
			t.Fatalf("step %d (%s): %v", i, testSteps[i], err)
		}
	}
}

// copyDir simulates kill -9: the on-disk bytes at this instant are all a
// restart gets to see.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestRecoverFromLogOnly replays DDL and every delta from a log with no
// snapshot at all, and must match a never-crashed run byte for byte.
func TestRecoverFromLogOnly(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir)
	runSteps(t, d.Warehouse(), len(testSteps))
	want := stateBytes(t, d.Warehouse())
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	r := openDurable(t, dir)
	defer r.Close()
	got := stateBytes(t, r.Warehouse())
	if !bytes.Equal(got, want) {
		t.Fatalf("recovered state differs from live state:\n got:\n%s\nwant:\n%s", got, want)
	}
	if r.Warehouse().LSN() == 0 {
		t.Fatal("recovered warehouse lost its LSN")
	}
}

// TestRecoverSnapshotPlusSuffix checkpoints mid-stream, applies more
// deltas, and recovers from snapshot + committed log suffix.
func TestRecoverSnapshotPlusSuffix(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir)
	runSteps(t, d.Warehouse(), 4)
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 4; i < len(testSteps); i++ {
		if _, err := d.Warehouse().Exec(testSteps[i]); err != nil {
			t.Fatal(err)
		}
	}
	want := stateBytes(t, d.Warehouse())
	d.Close()

	r := openDurable(t, dir)
	defer r.Close()
	if got := stateBytes(t, r.Warehouse()); !bytes.Equal(got, want) {
		t.Fatalf("snapshot+suffix recovery diverged:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestCheckpointTrimsLog verifies compaction shrinks the log and that a
// recovery immediately after a checkpoint replays nothing.
func TestCheckpointTrimsLog(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir)
	runSteps(t, d.Warehouse(), len(testSteps))
	before := d.Log().Size()
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if d.Log().Size() >= before {
		t.Fatalf("checkpoint did not trim the log: %d -> %d", before, d.Log().Size())
	}
	want := stateBytes(t, d.Warehouse())
	lsn := d.Warehouse().LSN()
	d.Close()

	r := openDurable(t, dir)
	defer r.Close()
	if got := r.Warehouse().LSN(); got != lsn {
		t.Fatalf("LSN after checkpointed recovery = %d, want %d", got, lsn)
	}
	if got := stateBytes(t, r.Warehouse()); !bytes.Equal(got, want) {
		t.Fatal("checkpointed recovery diverged")
	}
}

// TestRecoveryIsIdempotent recovers twice from the same crash image: a
// stale suffix whose LSNs the snapshot already covers must be skipped.
func TestRecoveryIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir)
	runSteps(t, d.Warehouse(), len(testSteps))
	want := stateBytes(t, d.Warehouse())
	d.Close()

	img := copyDir(t, dir)
	r1 := openDurable(t, img)
	got1 := stateBytes(t, r1.Warehouse())
	r1.Close()
	r2 := openDurable(t, img)
	defer r2.Close()
	got2 := stateBytes(t, r2.Warehouse())
	if !bytes.Equal(got1, want) || !bytes.Equal(got2, want) {
		t.Fatal("repeated recovery diverged")
	}
}

// TestDetachedApplyDeltaRecovery exercises the paper's detached scenario:
// after DetachSources every change arrives via ApplyDelta; the logged
// deltas carry srcApplied=false and recovery must not touch sources.
func TestDetachedApplyDeltaRecovery(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir)
	w := d.Warehouse()
	runSteps(t, w, 4)
	w.DetachSources()
	if err := d.Checkpoint(); err != nil { // snapshot without sources
		t.Fatal(err)
	}
	deltas := []maintain.Delta{
		{Table: "sale", Inserts: []tuple.Tuple{
			{types.Int(20), types.Int(1), types.Int(2), types.Float(3.25)},
		}},
		{Table: "sale", Deletes: []tuple.Tuple{
			{types.Int(11), types.Int(2), types.Int(1), types.Float(4.25)},
		}},
	}
	for _, del := range deltas {
		if err := w.ApplyDelta(del); err != nil {
			t.Fatal(err)
		}
	}
	want := stateBytes(t, w)
	d.Close()

	r := openDurable(t, dir)
	defer r.Close()
	if !r.Warehouse().Detached() {
		t.Fatal("recovered warehouse is not detached")
	}
	if got := stateBytes(t, r.Warehouse()); !bytes.Equal(got, want) {
		t.Fatalf("detached recovery diverged:\n got:\n%s\nwant:\n%s", got, want)
	}
	// The recovered warehouse keeps maintaining: one more delta, and its
	// views still answer.
	if err := r.Warehouse().ApplyDelta(maintain.Delta{Table: "sale", Inserts: []tuple.Tuple{
		{types.Int(21), types.Int(2), types.Int(5), types.Float(1.5)},
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Warehouse().Query("by_brand"); err != nil {
		t.Fatal(err)
	}
}

// TestDanglingIntentDropped simulates a crash after the intent was made
// durable but before the apply finished: recovery must discard the
// unacknowledged mutation.
func TestDanglingIntentDropped(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir)
	w := d.Warehouse()
	runSteps(t, w, 4)
	want := stateBytes(t, w)
	wantLSN := w.LSN()

	// Append a bare intent with no outcome, as logAndPropagate would have
	// just before the crash.
	if _, err := d.Log().BeginDelta(maintain.Delta{Table: "sale", Inserts: []tuple.Tuple{
		{types.Int(99), types.Int(1), types.Int(1), types.Float(1.0)},
	}}, true); err != nil {
		t.Fatal(err)
	}
	img := copyDir(t, dir)
	d.Close()

	r := openDurable(t, img)
	defer r.Close()
	if got := r.Warehouse().LSN(); got != wantLSN {
		t.Fatalf("recovered LSN = %d, want %d (dangling intent must not commit)", got, wantLSN)
	}
	if got := stateBytes(t, r.Warehouse()); !bytes.Equal(got, want) {
		t.Fatal("dangling intent leaked into recovered state")
	}
	// The next mutation must get a fresh LSN past the dangling one.
	if _, err := r.Warehouse().Exec(`INSERT INTO sale VALUES (30, 1, 1, 2.25);`); err != nil {
		t.Fatal(err)
	}
	if r.Warehouse().LSN() <= wantLSN {
		t.Fatal("LSN did not advance past the dangling intent")
	}
}
