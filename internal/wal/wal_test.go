package wal

import (
	"os"
	"path/filepath"
	"testing"

	"mindetail/internal/maintain"
	"mindetail/internal/obs"
	"mindetail/internal/tuple"
	"mindetail/internal/types"
)

func testDelta(n int64) maintain.Delta {
	return maintain.Delta{Table: "sale", Inserts: []tuple.Tuple{
		{types.Int(n), types.Str("x"), types.Float(1.5)},
	}}
}

// appendN logs n committed deltas and returns their LSNs.
func appendN(t *testing.T, l *Log, n int) []uint64 {
	t.Helper()
	var lsns []uint64
	for i := 0; i < n; i++ {
		lsn, err := l.BeginDelta(testDelta(int64(i)), true)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Commit(lsn); err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	return lsns
}

func TestAppendReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := OpenLog(path, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	lsns := appendN(t, l, 3)
	if lsns[0] != 1 || lsns[2] != 3 {
		t.Fatalf("LSNs not monotonic from 1: %v", lsns)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenLog(path, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.TornBytes() != 0 {
		t.Fatalf("clean log reported %d torn bytes", l2.TornBytes())
	}
	if got := l2.LastLSN(); got != 3 {
		t.Fatalf("LastLSN after reopen = %d, want 3", got)
	}
	recs, err := l2.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 6 { // 3 intents + 3 commits
		t.Fatalf("got %d records, want 6", len(recs))
	}
	// A fresh LSN continues past the reopened tail.
	lsn, err := l2.BeginDelta(testDelta(9), false)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 4 {
		t.Fatalf("next LSN after reopen = %d, want 4", lsn)
	}
}

// TestTornTailEveryPrefix truncates the file at every byte offset inside
// the final record and verifies Open cuts exactly back to the last whole
// record, preserving every earlier one.
func TestTornTailEveryPrefix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l, err := OpenLog(path, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 2)
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()

	recs, ends, terr := Decode(whole)
	if terr != nil || validEnd(ends) != int64(len(whole)) {
		t.Fatalf("baseline log not clean: end=%d len=%d err=%v", validEnd(ends), len(whole), terr)
	}
	if len(recs) != 4 {
		t.Fatalf("baseline records = %d, want 4", len(recs))
	}
	// Offset where the last record begins.
	lastStart := ends[len(ends)-2]
	for cut := lastStart + 1; cut < int64(len(whole)); cut++ {
		torn := filepath.Join(dir, "torn.log")
		if err := os.WriteFile(torn, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		tl, err := OpenLog(torn, SyncNever)
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		if tl.TornBytes() != cut-lastStart {
			t.Fatalf("cut %d: torn bytes = %d, want %d", cut, tl.TornBytes(), cut-lastStart)
		}
		got, err := tl.Records()
		if err != nil {
			t.Fatalf("cut %d: records: %v", cut, err)
		}
		if len(got) != 3 {
			t.Fatalf("cut %d: surviving records = %d, want 3", cut, len(got))
		}
		// The truncated file must be whole again: reopen is clean.
		if st, _ := os.Stat(torn); st.Size() != lastStart {
			t.Fatalf("cut %d: truncated size = %d, want %d", cut, st.Size(), lastStart)
		}
		tl.Close()
	}
}

// TestCorruptTailChecksum flips a byte in the final record's payload: the
// checksum must catch it and Open must truncate the record.
func TestCorruptTailChecksum(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l, err := OpenLog(path, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 2)
	l.Close()
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenLog(path, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.TornBytes() == 0 {
		t.Fatal("checksum corruption not detected")
	}
	recs, _ := l2.Records()
	if len(recs) != 3 {
		t.Fatalf("surviving records = %d, want 3", len(recs))
	}
}

func TestBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	if err := os.WriteFile(path, []byte("not a wal file at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenLog(path, SyncAlways); err == nil {
		t.Fatal("expected bad-magic error")
	}
}

// TestGarbageLengthPrefix writes an absurd length prefix; recovery must
// treat it as a torn tail without attempting the allocation.
func TestGarbageLengthPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := OpenLog(path, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1)
	l.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3, 4, 5})
	f.Close()
	l2, err := OpenLog(path, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.TornBytes() != 9 {
		t.Fatalf("torn bytes = %d, want 9", l2.TornBytes())
	}
}

func TestResetCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := OpenLog(path, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 10)
	before := l.Size()
	if err := l.Reset(10); err != nil {
		t.Fatal(err)
	}
	if l.Size() >= before {
		t.Fatalf("Reset did not shrink the log: %d -> %d", before, l.Size())
	}
	recs, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Kind != KindCheckpoint || recs[0].LSN != 10 {
		t.Fatalf("after Reset, records = %+v, want one checkpoint at LSN 10", recs)
	}
	// LSNs stay monotonic across compaction.
	lsn, err := l.BeginDelta(testDelta(1), true)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 11 {
		t.Fatalf("LSN after compaction = %d, want 11", lsn)
	}
}

func TestAbortOutcome(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := OpenLog(path, SyncCommit)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	lsn, err := l.BeginDelta(testDelta(1), true)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Abort(lsn); err != nil {
		t.Fatal(err)
	}
	recs, _ := l.Records()
	if len(recs) != 2 || recs[1].Kind != KindAbort || recs[1].LSN != lsn {
		t.Fatalf("records = %+v, want intent+abort", recs)
	}
}

func TestObsMetrics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := OpenLog(path, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	reg := obs.NewRegistry()
	l.SetObs(reg)
	appendN(t, l, 2)
	lsn, _ := l.BeginDelta(testDelta(7), false)
	l.Abort(lsn)
	snap := reg.Snapshot()
	if got := snap.Counters["wal.appends"]; got != 6 {
		t.Fatalf("wal.appends = %d, want 6", got)
	}
	if got := snap.Counters["wal.records.commit"]; got != 2 {
		t.Fatalf("wal.records.commit = %d, want 2", got)
	}
	if got := snap.Counters["wal.records.abort"]; got != 1 {
		t.Fatalf("wal.records.abort = %d, want 1", got)
	}
	if got := snap.Gauges["wal.lsn"]; got != 3 {
		t.Fatalf("wal.lsn = %d, want 3", got)
	}
	if snap.Gauges["wal.size_bytes"] != l.Size() {
		t.Fatalf("wal.size_bytes = %d, want %d", snap.Gauges["wal.size_bytes"], l.Size())
	}
	if h := snap.Histograms["wal.append.ns"]; h.Count != 6 {
		t.Fatalf("wal.append.ns count = %d, want 6", h.Count)
	}
	if h := snap.Histograms["wal.fsync.ns"]; h.Count == 0 {
		t.Fatal("wal.fsync.ns never observed under SyncAlways")
	}
}
