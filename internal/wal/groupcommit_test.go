package wal

import (
	"path/filepath"
	"sync"
	"testing"

	"mindetail/internal/obs"
)

// TestCommitBatchRecords verifies CommitBatch appends one commit record
// per LSN, in order, and that a reopened log sees every outcome.
func TestCommitBatchRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := OpenLog(path, SyncCommit)
	if err != nil {
		t.Fatal(err)
	}
	var lsns []uint64
	for i := 0; i < 5; i++ {
		lsn, err := l.BeginDelta(testDelta(int64(i)), true)
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	if err := l.CommitBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if err := l.CommitBatch(lsns); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenLog(path, SyncCommit)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs, err := l2.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 {
		t.Fatalf("got %d records, want 10 (5 intents + 5 commits)", len(recs))
	}
	for i, lsn := range lsns {
		c := recs[5+i]
		if c.Kind != KindCommit || c.LSN != lsn {
			t.Fatalf("commit record %d = kind %v lsn %d, want commit of %d", i, c.Kind, c.LSN, lsn)
		}
	}
}

// TestGroupCommitterBatches drives concurrent writers through a
// GroupCommitter and verifies every commit lands durably while the log
// performs strictly fewer batch syncs than commits — the fsync
// amortization the group commit exists for.
func TestGroupCommitterBatches(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := OpenLog(path, SyncCommit)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	reg := obs.NewRegistry()
	l.SetObs(reg)

	const writers = 32
	g := NewGroupCommitter(l, 0)
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lsn, err := l.BeginDelta(testDelta(int64(i)), true)
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = g.Commit(lsn)
		}(i)
	}
	wg.Wait()
	g.Close()
	g.Close() // idempotent

	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	recs, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	commits := 0
	for _, r := range recs {
		if r.Kind == KindCommit {
			commits++
		}
	}
	if commits != writers {
		t.Fatalf("got %d commit records, want %d", commits, writers)
	}
	snap := reg.Snapshot()
	syncs := snap.Counters["wal.groupcommit.syncs"]
	if syncs < 1 || syncs > writers {
		t.Fatalf("group-commit syncs = %d, want within [1, %d]", syncs, writers)
	}
}

// TestGroupCommitterSingle checks the degenerate light-load case: one
// writer, one batch, same contract as Log.Commit.
func TestGroupCommitterSingle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := OpenLog(path, SyncCommit)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	g := NewGroupCommitter(l, 8)
	defer g.Close()
	lsn, err := l.BeginDelta(testDelta(1), true)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Commit(lsn); err != nil {
		t.Fatal(err)
	}
	recs, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].Kind != KindCommit || recs[1].LSN != lsn {
		t.Fatalf("unexpected records after single group commit: %+v", recs)
	}
}
