package answer

import (
	"strings"
	"testing"

	"mindetail/internal/core"
	"mindetail/internal/gpsj"
	"mindetail/internal/ra"
	"mindetail/internal/schema"
	"mindetail/internal/sqlparse"
	"mindetail/internal/storage"
	"mindetail/internal/tuple"
	"mindetail/internal/types"
)

func catalogFromDDL(t *testing.T, ddl string) *schema.Catalog {
	t.Helper()
	stmts, err := sqlparse.ParseAll(ddl)
	if err != nil {
		t.Fatal(err)
	}
	cat := schema.NewCatalog()
	var fks []schema.ForeignKey
	for _, s := range stmts {
		ct := s.(*sqlparse.CreateTable)
		if err := cat.AddTable(ct.Table); err != nil {
			t.Fatal(err)
		}
		fks = append(fks, ct.FKs...)
	}
	for _, fk := range fks {
		if err := cat.AddForeignKey(fk); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

const retailDDL = `
	CREATE TABLE time (id INTEGER PRIMARY KEY, day INTEGER, month INTEGER, year INTEGER);
	CREATE TABLE product (id INTEGER PRIMARY KEY, brand VARCHAR, category VARCHAR);
	CREATE TABLE sale (id INTEGER PRIMARY KEY,
		timeid INTEGER REFERENCES time,
		productid INTEGER REFERENCES product,
		price FLOAT);`

// The plan's view: grouped finer than the queries below, price plain
// because of MAX, brand plain because of DISTINCT.
const planSQL = `
	SELECT time.month, product.category, SUM(price) AS total, COUNT(*) AS cnt,
	       MAX(price) AS hi, COUNT(DISTINCT brand) AS brands
	FROM sale, time, product
	WHERE sale.timeid = time.id AND sale.productid = product.id
	GROUP BY time.month, product.category`

type fixture struct {
	cat  *schema.Catalog
	db   *storage.DB
	plan *core.Plan
	aux  map[string]*ra.Relation
}

func setup(t *testing.T) *fixture {
	t.Helper()
	cat := catalogFromDDL(t, retailDDL)
	db := storage.NewDB(cat)
	ins := func(table string, vals ...types.Value) {
		t.Helper()
		if err := db.Insert(table, tuple.Tuple(vals)); err != nil {
			t.Fatal(err)
		}
	}
	ins("time", types.Int(1), types.Int(5), types.Int(1), types.Int(1997))
	ins("time", types.Int(2), types.Int(6), types.Int(2), types.Int(1997))
	ins("product", types.Int(100), types.Str("acme"), types.Str("tools"))
	ins("product", types.Int(101), types.Str("bolt"), types.Str("tools"))
	ins("product", types.Int(102), types.Str("cask"), types.Str("food"))
	ins("sale", types.Int(1), types.Int(1), types.Int(100), types.Float(10))
	ins("sale", types.Int(2), types.Int(1), types.Int(100), types.Float(10))
	ins("sale", types.Int(3), types.Int(1), types.Int(101), types.Float(4))
	ins("sale", types.Int(4), types.Int(2), types.Int(102), types.Float(7))
	ins("sale", types.Int(5), types.Int(2), types.Int(100), types.Float(3))

	v := mustView(t, cat, planSQL)
	plan, err := core.Derive(v)
	if err != nil {
		t.Fatal(err)
	}
	aux, err := plan.Materialize(func(tb string) *ra.Relation {
		return ra.FromTable(db.Table(tb), tb)
	})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{cat: cat, db: db, plan: plan, aux: aux}
}

func mustView(t *testing.T, cat *schema.Catalog, sql string) *gpsj.View {
	t.Helper()
	s, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	v, err := gpsj.FromSelect(cat, "q", s.(*sqlparse.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestAnswerableQueries: queries the navigator must answer exactly.
func TestAnswerableQueries(t *testing.T) {
	f := setup(t)
	queries := []string{
		// Coarser grouping over the same tables.
		`SELECT time.month, SUM(price) AS total, COUNT(*) AS cnt
		 FROM sale, time, product
		 WHERE sale.timeid = time.id AND sale.productid = product.id
		 GROUP BY time.month`,
		// A subtree of the plan's tables (product joins 1:1 via RI).
		`SELECT time.month, COUNT(*) AS cnt, AVG(price) AS ap
		 FROM sale, time WHERE sale.timeid = time.id GROUP BY time.month`,
		// Root only, global aggregation.
		`SELECT SUM(price) AS total, COUNT(*) AS cnt, MAX(price) AS hi FROM sale`,
		// Residual conditions on stored attributes.
		`SELECT product.category, COUNT(*) AS cnt, COUNT(DISTINCT brand) AS b
		 FROM sale, time, product
		 WHERE sale.timeid = time.id AND sale.productid = product.id AND time.month = 1
		 GROUP BY product.category`,
		// HAVING over the answered groups.
		`SELECT product.category, COUNT(*) AS cnt
		 FROM sale, product WHERE sale.productid = product.id
		 GROUP BY product.category HAVING cnt >= 4`,
	}
	for _, sql := range queries {
		q := mustView(t, f.cat, sql)
		if ok, why := Answerable(f.plan, q); !ok {
			t.Errorf("%q should be answerable: %s", sql, why)
			continue
		}
		got, err := Answer(f.plan, q, f.aux)
		if err != nil {
			t.Errorf("%q: %v", sql, err)
			continue
		}
		want, err := q.Evaluate(f.db)
		if err != nil {
			t.Fatal(err)
		}
		if !ra.EqualBag(got, want) {
			t.Errorf("%q diverged:\nfrom aux:\n%s\ndirect:\n%s", sql, got.Format(), want.Format())
		}
	}
}

// TestNotAnswerable: rejections with their reasons.
func TestNotAnswerable(t *testing.T) {
	f := setup(t)
	cases := []struct {
		sql, why string
	}{
		{`SELECT time.day, COUNT(*) AS cnt FROM sale, time
		  WHERE sale.timeid = time.id GROUP BY time.day`, "not stored plain"},
		{`SELECT time.month, MIN(sale.id) AS lo FROM sale, time
		  WHERE sale.timeid = time.id GROUP BY time.month`, "needs sale.id plain"},
		{`SELECT time.month, COUNT(*) AS cnt FROM sale, time
		  WHERE sale.timeid = time.id AND time.year = 1997 GROUP BY time.month`, "selection"},
		{`SELECT product.category, COUNT(*) AS cnt FROM product GROUP BY product.category`, "root table"},
	}
	for _, c := range cases {
		q := mustView(t, f.cat, c.sql)
		ok, why := Answerable(f.plan, q)
		if ok {
			t.Errorf("%q should not be answerable", c.sql)
			continue
		}
		if !strings.Contains(why, c.why) {
			t.Errorf("%q: reason %q, want fragment %q", c.sql, why, c.why)
		}
		if _, err := Answer(f.plan, q, f.aux); err == nil {
			t.Errorf("%q: Answer should fail", c.sql)
		}
	}
}

// TestNotAnswerableFromFilteredPlan: a plan that filtered the detail
// (year=1997) cannot answer a query over all years, and a plan over
// filtered extra tables cannot drop them.
func TestNotAnswerableFromFilteredPlan(t *testing.T) {
	cat := catalogFromDDL(t, retailDDL)
	v := mustView(t, cat, `
		SELECT time.month, SUM(price) AS total, COUNT(*) AS cnt
		FROM sale, time WHERE time.year = 1997 AND sale.timeid = time.id
		GROUP BY time.month`)
	plan, err := core.Derive(v)
	if err != nil {
		t.Fatal(err)
	}
	q := mustView(t, cat, `
		SELECT time.month, COUNT(*) AS cnt FROM sale, time
		WHERE sale.timeid = time.id GROUP BY time.month`)
	if ok, why := Answerable(plan, q); ok {
		t.Error("query over all years answerable from a 1997-filtered plan")
	} else if !strings.Contains(why, "filtered the detail") {
		t.Errorf("reason = %q", why)
	}
	// But the matching-condition query is answerable.
	q2 := mustView(t, cat, `
		SELECT time.month, COUNT(*) AS cnt FROM sale, time
		WHERE time.year = 1997 AND sale.timeid = time.id GROUP BY time.month`)
	if ok, why := Answerable(plan, q2); !ok {
		t.Errorf("matching-condition query should be answerable: %s", why)
	}
}

// TestNotAnswerableEliminatedRoot: with the root auxiliary view omitted
// there is no detail to answer from.
func TestNotAnswerableEliminatedRoot(t *testing.T) {
	cat := catalogFromDDL(t, retailDDL)
	v := mustView(t, cat, `
		SELECT product.id, SUM(price) AS total, COUNT(*) AS cnt
		FROM sale, product WHERE sale.productid = product.id GROUP BY product.id`)
	plan, err := core.Derive(v)
	if err != nil {
		t.Fatal(err)
	}
	q := mustView(t, cat, `SELECT COUNT(*) AS cnt FROM sale`)
	if ok, why := Answerable(plan, q); ok {
		t.Error("answerable from an omitted root")
	} else if !strings.Contains(why, "omitted") {
		t.Errorf("reason = %q", why)
	}
}
