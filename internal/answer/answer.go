// Package answer implements an aggregate navigator in the spirit of the
// query tools the paper targets (Kimball's Star Tracker, cited in
// Section 4): it answers ad hoc GPSJ queries from a materialized view's
// auxiliary detail data instead of the base tables — which keeps such
// queries answerable even after the sources are detached.
//
// A query Q is answerable from a plan P's auxiliary views when
//
//   - Q references a subset of P's tables that forms a connected subtree
//     containing P's root (so the join multiplicities match: every extra
//     table P joins is reached through a key join with referential
//     integrity and multiplies nothing);
//   - every attribute Q needs raw — group-by attributes, selection
//     attributes, and non-CSMAS aggregate arguments — is stored plain;
//   - every selection condition of Q either already holds in the auxiliary
//     views (it is one of P's conditions) or can be re-applied because its
//     attributes are stored;
//   - Q's CSMAS aggregates are computable: COUNT from cnt0, SUM from the
//     compressed SUM column or from a·cnt0, AVG from both.
package answer

import (
	"fmt"

	"mindetail/internal/core"
	"mindetail/internal/gpsj"
	"mindetail/internal/ra"
)

// Answerable checks whether the query can be answered from the plan's
// auxiliary views, returning a human-readable reason when it cannot.
func Answerable(p *core.Plan, q *gpsj.View) (bool, string) {
	if !p.Reconstructable() {
		return false, "the plan's root auxiliary view is omitted"
	}
	inPlan := make(map[string]bool, len(p.View.Tables))
	for _, t := range p.View.Tables {
		inPlan[t] = true
	}
	qTables := make(map[string]bool, len(q.Tables))
	for _, t := range q.Tables {
		if !inPlan[t] {
			return false, fmt.Sprintf("table %s is not covered by the plan", t)
		}
		qTables[t] = true
	}
	if !qTables[p.Graph.Root] {
		return false, fmt.Sprintf("query does not include the plan's root table %s", p.Graph.Root)
	}
	// Connected subtree: every query table's parent chain to the root must
	// stay inside the query tables.
	for t := range qTables {
		for _, anc := range p.Graph.PathToRoot(t) {
			if !qTables[anc] {
				return false, fmt.Sprintf("query tables are not a connected subtree (missing %s)", anc)
			}
		}
	}
	// Every extra plan table below the query subtree must join 1:1 so the
	// multiplicities of the joined auxiliary detail match the query's own
	// join: that holds exactly when the plan applied a join reduction (RI
	// and no exposed updates) AND the table carries no conditions in the
	// plan (its auxiliary view drops no rows the query would keep).
	// Conservative and simple: require every plan table outside the query
	// to be non-filtering and reached by a depends edge.
	cat := p.View.Catalog()
	for _, t := range p.View.Tables {
		if qTables[t] {
			continue
		}
		j, ok := p.Graph.EdgeTo[t]
		if !ok {
			return false, fmt.Sprintf("plan table %s has no join edge", t)
		}
		if !cat.HasRI(j.Left, j.LeftAttr, j.Right) {
			return false, fmt.Sprintf("plan joins extra table %s without referential integrity; multiplicities may differ", t)
		}
		if len(p.View.Local[t]) > 0 {
			return false, fmt.Sprintf("plan filters extra table %s; the auxiliary detail is narrower than the query", t)
		}
		if p.View.HasExposedUpdates(t) {
			return false, fmt.Sprintf("extra table %s has exposed updates", t)
		}
	}

	// Plan conditions must be a subset of the query's semantics: every
	// local condition the plan pushed down must also be required by the
	// query, or the auxiliary data is missing rows the query needs.
	qConds := make(map[string]bool)
	for _, t := range q.Tables {
		for _, c := range q.Local[t] {
			qConds[c.String()] = true
		}
	}
	for _, t := range q.Tables {
		for _, c := range p.View.Local[t] {
			if !qConds[c.String()] {
				return false, fmt.Sprintf("the plan's condition %q filtered the detail; the query does not require it", c)
			}
		}
	}

	// Attribute availability.
	root := p.Aux[p.Graph.Root]
	stored := func(t, a string) (plain bool, summed bool) {
		x := p.Aux[t]
		if x == nil {
			return false, false
		}
		for _, pa := range x.PlainAttrs {
			if pa == a {
				return true, false
			}
		}
		if _, ok := x.SumName[a]; ok {
			return false, true
		}
		return false, false
	}
	needPlain := func(t, a, why string) (bool, string) {
		if plain, _ := stored(t, a); !plain {
			return false, fmt.Sprintf("attribute %s.%s (%s) is not stored plain", t, a, why)
		}
		return true, ""
	}
	for _, a := range q.GroupBy() {
		if ok, why := needPlain(a.Table, a.Name, "group-by"); !ok {
			return false, why
		}
	}
	for _, t := range q.Tables {
		for _, c := range q.Local[t] {
			if qCondHeldByPlan(p, t, c) {
				continue // already enforced by the auxiliary views
			}
			for _, col := range c.Cols(nil) {
				if ok, why := needPlain(col.Table, col.Name, "selection"); !ok {
					return false, why
				}
			}
		}
	}
	for _, agg := range q.Aggregates() {
		if agg.Arg == nil {
			continue // COUNT(*) from cnt0
		}
		c := agg.Arg.(ra.ColRef)
		plain, summed := stored(c.Table, c.Name)
		switch {
		case agg.Distinct, agg.Func == ra.FuncMin, agg.Func == ra.FuncMax:
			if !plain {
				return false, fmt.Sprintf("non-CSMAS aggregate %s needs %s plain", agg, c)
			}
		default: // COUNT/SUM/AVG
			if !plain && !(summed && c.Table == root.Base) {
				return false, fmt.Sprintf("aggregate %s: %s is neither plain nor compressed", agg, c)
			}
		}
	}
	return true, ""
}

// qCondHeldByPlan reports whether the query condition is one the plan
// already pushed into table t's auxiliary view.
func qCondHeldByPlan(p *core.Plan, t string, c ra.Comparison) bool {
	for _, pc := range p.View.Local[t] {
		if pc.String() == c.String() {
			return true
		}
	}
	return false
}

// Answer evaluates the query from the plan's materialized auxiliary views.
// It fails with the Answerable reason when the query is not covered.
func Answer(p *core.Plan, q *gpsj.View, aux map[string]*ra.Relation) (*ra.Relation, error) {
	if ok, why := Answerable(p, q); !ok {
		return nil, fmt.Errorf("answer: query %s not answerable from plan %s: %s", q.Name, p.View.Name, why)
	}
	node, err := p.JoinAux(aux)
	if err != nil {
		return nil, err
	}
	// Residual conditions: the query's conditions not already enforced.
	var residual []ra.Comparison
	for _, t := range q.Tables {
		for _, c := range q.Local[t] {
			if !qCondHeldByPlan(p, t, c) {
				residual = append(residual, c)
			}
		}
	}
	if len(residual) > 0 {
		node = ra.Select(node, residual...)
	}

	// Two-stage aggregation over the (possibly compressed) detail: the
	// same f(a·cnt0) machinery as reconstruction, but for the query's
	// projection list.
	root := p.Aux[p.Graph.Root]
	var cntExpr ra.Expr
	if root.HasCount {
		cntExpr = ra.ColRef{Table: root.Base, Name: root.CountName}
	}
	weighted := func(e ra.Expr) ra.Expr {
		if cntExpr == nil {
			return e
		}
		return ra.Arith{Op: "*", L: e, R: cntExpr}
	}
	rowCount := func() *ra.Aggregate {
		if cntExpr == nil {
			return &ra.Aggregate{Func: ra.FuncCount}
		}
		return &ra.Aggregate{Func: ra.FuncSum, Arg: cntExpr}
	}

	var stage1 []ra.ProjItem
	var stage2 []ra.OutExpr
	helperN := 0
	helper := func(agg *ra.Aggregate) string {
		name := fmt.Sprintf("q%d", helperN)
		helperN++
		stage1 = append(stage1, ra.ProjItem{Name: name, Agg: agg})
		return name
	}
	for _, it := range q.Items {
		if !it.IsAggregate() {
			stage1 = append(stage1, ra.ProjItem{Name: it.Name, Expr: it.Expr})
			stage2 = append(stage2, ra.OutExpr{Name: it.Name, Expr: ra.ColRef{Name: it.Name}})
			continue
		}
		agg := it.Agg
		switch {
		case agg.Distinct, agg.Func == ra.FuncMin, agg.Func == ra.FuncMax:
			h := helper(&ra.Aggregate{Func: agg.Func, Arg: agg.Arg, Distinct: agg.Distinct})
			stage2 = append(stage2, ra.OutExpr{Name: it.Name, Expr: ra.ColRef{Name: h}})
		case agg.Func == ra.FuncCount:
			h := helper(rowCount())
			stage2 = append(stage2, ra.OutExpr{Name: it.Name, Expr: ra.ColRef{Name: h}})
		default: // SUM / AVG
			arg := agg.Arg.(ra.ColRef)
			var sumAgg *ra.Aggregate
			if name, compressed := root.SumName[arg.Name]; compressed && arg.Table == root.Base {
				sumAgg = &ra.Aggregate{Func: ra.FuncSum, Arg: ra.ColRef{Table: root.Base, Name: name}}
			} else {
				sumAgg = &ra.Aggregate{Func: ra.FuncSum, Arg: weighted(agg.Arg)}
			}
			hs := helper(sumAgg)
			if agg.Func == ra.FuncSum {
				stage2 = append(stage2, ra.OutExpr{Name: it.Name, Expr: ra.ColRef{Name: hs}})
			} else {
				hc := helper(rowCount())
				stage2 = append(stage2, ra.OutExpr{
					Name: it.Name,
					Expr: ra.Arith{Op: "/", L: ra.ColRef{Name: hs}, R: ra.ColRef{Name: hc}},
				})
			}
		}
	}
	node = ra.GProject(node, stage1...)
	out, err := ra.Project(node, stage2...).Eval()
	if err != nil {
		return nil, err
	}
	return q.ApplyHaving(out)
}
