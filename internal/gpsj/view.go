// Package gpsj models generalized project-select-join views, the class of
// views the paper targets (Section 2.1):
//
//	V = Π_A σ_S (R1 ⋈C1 R2 ⋈C2 ... ⋈Cn-1 Rn)
//
// where Π_A is generalized projection (grouping + aggregation, duplicate
// eliminating), S is a conjunction of selection conditions, and every join
// condition Ci is an equality Ri.b = Rj.a with a the key of Rj.
//
// The package normalizes a parsed SELECT into this form: it resolves every
// column reference to its owning table, partitions the WHERE clause into
// per-table local conditions and key-join conditions, and validates the
// paper's structural assumptions. It also derives the per-view exposed-
// update analysis and can build an executable plan for full recomputation.
package gpsj

import (
	"fmt"
	"sort"

	"mindetail/internal/ra"
	"mindetail/internal/schema"
	"mindetail/internal/sqlparse"
	"mindetail/internal/storage"
)

// JoinCond is a normalized key-join condition Left.LeftAttr = Right.RightAttr
// where RightAttr is the key of Right (paper Section 2.1).
type JoinCond struct {
	Left      string
	LeftAttr  string
	Right     string
	RightAttr string
}

// String renders the condition in SQL syntax.
func (j JoinCond) String() string {
	return fmt.Sprintf("%s.%s = %s.%s", j.Left, j.LeftAttr, j.Right, j.RightAttr)
}

// Attr names an attribute of a specific base table.
type Attr struct {
	Table string
	Name  string
}

// String renders the attribute as table.name.
func (a Attr) String() string { return a.Table + "." + a.Name }

// View is a validated GPSJ view.
type View struct {
	Name string

	// Items is the generalized projection list A. Every ColRef inside is
	// fully qualified after normalization.
	Items []ra.ProjItem

	// Tables lists the referenced base tables R in FROM order.
	Tables []string

	// Local maps each table to its local selection conditions (conditions
	// referencing only that table).
	Local map[string][]ra.Comparison

	// Joins are the normalized key-join conditions C1..Cn-1.
	Joins []JoinCond

	// Having restricts the produced groups (the Section 4 generalization).
	// Conditions reference output column names and compare against
	// literals; they are applied on top of the maintained, unrestricted
	// groups, so they never affect auxiliary view derivation or
	// maintenance.
	Having []ra.Comparison

	cat *schema.Catalog
}

// Catalog returns the catalog the view was validated against.
func (v *View) Catalog() *schema.Catalog { return v.cat }

// FromSelect normalizes and validates a parsed SELECT statement into a GPSJ
// view against the catalog.
func FromSelect(cat *schema.Catalog, name string, sel *sqlparse.SelectStmt) (*View, error) {
	v := &View{
		Name:   name,
		Tables: append([]string(nil), sel.From...),
		Local:  make(map[string][]ra.Comparison),
		cat:    cat,
	}
	if len(v.Tables) == 0 {
		return nil, fmt.Errorf("gpsj: view %s has no FROM tables", name)
	}
	seen := make(map[string]bool)
	for _, t := range v.Tables {
		if cat.Table(t) == nil {
			return nil, fmt.Errorf("gpsj: view %s references unknown table %s", name, t)
		}
		if seen[t] {
			return nil, fmt.Errorf("gpsj: view %s references table %s twice (self-joins are outside the paper's view class)", name, t)
		}
		seen[t] = true
	}

	// Resolve and validate the projection list.
	names := make(map[string]bool)
	for _, it := range sel.Items {
		item := it
		if item.IsAggregate() {
			agg := *item.Agg
			if err := validateAggArg(cat, v.Tables, &agg); err != nil {
				return nil, fmt.Errorf("gpsj: view %s: %w", name, err)
			}
			item.Agg = &agg
		} else {
			e, err := resolveExpr(cat, v.Tables, item.Expr)
			if err != nil {
				return nil, fmt.Errorf("gpsj: view %s: %w", name, err)
			}
			if _, ok := e.(ra.ColRef); !ok {
				return nil, fmt.Errorf("gpsj: view %s: plain select item %q must be a column (group-by attributes are columns)", name, item.Expr)
			}
			item.Expr = e
		}
		if names[item.Name] {
			return nil, fmt.Errorf("gpsj: view %s: duplicate output column %q (use AS to disambiguate)", name, item.Name)
		}
		names[item.Name] = true
		v.Items = append(v.Items, item)
	}

	// Partition WHERE into local and join conditions.
	for _, c := range sel.Where {
		cond := c
		l, lerr := resolveExpr(cat, v.Tables, cond.L)
		if lerr != nil {
			return nil, fmt.Errorf("gpsj: view %s: %w", name, lerr)
		}
		r, rerr := resolveExpr(cat, v.Tables, cond.R)
		if rerr != nil {
			return nil, fmt.Errorf("gpsj: view %s: %w", name, rerr)
		}
		cond.L, cond.R = l, r
		tabs := condTables(cond)
		switch len(tabs) {
		case 0:
			return nil, fmt.Errorf("gpsj: view %s: condition %q references no table", name, cond)
		case 1:
			v.Local[tabs[0]] = append(v.Local[tabs[0]], cond)
		case 2:
			jc, err := normalizeJoin(cat, cond)
			if err != nil {
				return nil, fmt.Errorf("gpsj: view %s: %w", name, err)
			}
			v.Joins = append(v.Joins, jc)
		default:
			return nil, fmt.Errorf("gpsj: view %s: condition %q spans more than two tables", name, cond)
		}
	}

	if err := v.checkConnected(); err != nil {
		return nil, err
	}

	// HAVING conditions reference output columns by name and literals.
	outCols := make(ra.Schema, len(v.Items))
	for i, it := range v.Items {
		outCols[i] = ra.Col{Name: it.Name}
	}
	for _, c := range sel.Having {
		if err := validateHaving(c, outCols); err != nil {
			return nil, fmt.Errorf("gpsj: view %s: %w", name, err)
		}
		v.Having = append(v.Having, c)
	}
	return v, nil
}

// validateHaving checks that a HAVING comparison references only output
// columns (unqualified) and literals, and that every reference resolves.
func validateHaving(c ra.Comparison, out ra.Schema) error {
	for _, col := range c.Cols(nil) {
		if col.Table != "" {
			return fmt.Errorf("HAVING condition %q must reference output columns by name, not %s", c, col)
		}
		if _, err := out.Index("", col.Name); err != nil {
			return fmt.Errorf("HAVING condition %q: %w", c, err)
		}
	}
	return nil
}

// ApplyHaving filters a relation in the view's output schema by the HAVING
// conditions. With no HAVING it returns the input unchanged.
func (v *View) ApplyHaving(rel *ra.Relation) (*ra.Relation, error) {
	if len(v.Having) == 0 {
		return rel, nil
	}
	out, err := ra.Select(ra.Scan(v.Name, rel), v.Having...).Eval()
	if err != nil {
		return nil, err
	}
	return out, nil
}

// validateAggArg resolves the aggregate's argument and checks that it is an
// aggregate the paper covers, on a single attribute (Section 2.1: "all
// aggregates are assumed to be on single attributes").
func validateAggArg(cat *schema.Catalog, tables []string, agg *ra.Aggregate) error {
	switch agg.Func {
	case ra.FuncCount, ra.FuncSum, ra.FuncAvg, ra.FuncMin, ra.FuncMax:
	default:
		return fmt.Errorf("unsupported aggregate %q", agg.Func)
	}
	if agg.Arg == nil {
		if agg.Func != ra.FuncCount {
			return fmt.Errorf("%s requires an argument", agg.Func)
		}
		return nil
	}
	e, err := resolveExpr(cat, tables, agg.Arg)
	if err != nil {
		return err
	}
	if _, ok := e.(ra.ColRef); !ok {
		return fmt.Errorf("aggregate argument %q must be a single attribute (paper Section 2.1)", agg.Arg)
	}
	agg.Arg = e
	return nil
}

// resolveExpr qualifies every ColRef in the expression with its owning
// table.
func resolveExpr(cat *schema.Catalog, tables []string, e ra.Expr) (ra.Expr, error) {
	switch x := e.(type) {
	case ra.ColRef:
		owner, err := cat.ResolveAttr(tables, x.Table, x.Name)
		if err != nil {
			return nil, err
		}
		return ra.ColRef{Table: owner, Name: x.Name}, nil
	case ra.Lit:
		return x, nil
	case ra.Arith:
		l, err := resolveExpr(cat, tables, x.L)
		if err != nil {
			return nil, err
		}
		r, err := resolveExpr(cat, tables, x.R)
		if err != nil {
			return nil, err
		}
		return ra.Arith{Op: x.Op, L: l, R: r}, nil
	default:
		return nil, fmt.Errorf("unsupported expression %q", e)
	}
}

// condTables returns the distinct tables referenced by a condition, sorted.
func condTables(c ra.Comparison) []string {
	set := make(map[string]bool)
	for _, col := range c.Cols(nil) {
		set[col.Table] = true
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// normalizeJoin checks that a two-table condition is an equality between
// two bare columns where at least one side is the key of its table, and
// orients it as Left.b = Right.a with a the key of Right. When both sides
// are keys, the side with a declared referential integrity constraint from
// the other becomes Right.
func normalizeJoin(cat *schema.Catalog, c ra.Comparison) (JoinCond, error) {
	if c.Op != ra.OpEQ {
		return JoinCond{}, fmt.Errorf("cross-table condition %q must be an equality join (paper Section 2.1)", c)
	}
	lc, lok := c.L.(ra.ColRef)
	rc, rok := c.R.(ra.ColRef)
	if !lok || !rok {
		return JoinCond{}, fmt.Errorf("join condition %q must compare two columns", c)
	}
	lKey := cat.MustTable(lc.Table).Key == lc.Name
	rKey := cat.MustTable(rc.Table).Key == rc.Name
	switch {
	case rKey && !lKey:
		return JoinCond{Left: lc.Table, LeftAttr: lc.Name, Right: rc.Table, RightAttr: rc.Name}, nil
	case lKey && !rKey:
		return JoinCond{Left: rc.Table, LeftAttr: rc.Name, Right: lc.Table, RightAttr: lc.Name}, nil
	case lKey && rKey:
		// Both keys: orient using referential integrity if declared.
		if cat.HasRI(lc.Table, lc.Name, rc.Table) {
			return JoinCond{Left: lc.Table, LeftAttr: lc.Name, Right: rc.Table, RightAttr: rc.Name}, nil
		}
		if cat.HasRI(rc.Table, rc.Name, lc.Table) {
			return JoinCond{Left: rc.Table, LeftAttr: rc.Name, Right: lc.Table, RightAttr: lc.Name}, nil
		}
		return JoinCond{}, fmt.Errorf("join %q relates two keys with no referential integrity to orient it", c)
	default:
		return JoinCond{}, fmt.Errorf("join condition %q does not join on a key (paper Section 2.1 requires joins on keys)", c)
	}
}

// checkConnected verifies that the join conditions connect all FROM tables.
func (v *View) checkConnected() error {
	if len(v.Tables) == 1 {
		return nil
	}
	adj := make(map[string][]string)
	for _, j := range v.Joins {
		adj[j.Left] = append(adj[j.Left], j.Right)
		adj[j.Right] = append(adj[j.Right], j.Left)
	}
	seen := map[string]bool{v.Tables[0]: true}
	queue := []string{v.Tables[0]}
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		for _, n := range adj[t] {
			if !seen[n] {
				seen[n] = true
				queue = append(queue, n)
			}
		}
	}
	for _, t := range v.Tables {
		if !seen[t] {
			return fmt.Errorf("gpsj: view %s: table %s is not connected by join conditions (cross products are outside the paper's view class)", v.Name, t)
		}
	}
	return nil
}

// GroupBy returns GB(A): the view's group-by attributes (the plain items).
func (v *View) GroupBy() []Attr {
	var out []Attr
	for _, it := range v.Items {
		if it.IsAggregate() {
			continue
		}
		c := it.Expr.(ra.ColRef)
		out = append(out, Attr{Table: c.Table, Name: c.Name})
	}
	return out
}

// Aggregates returns the aggregate items of the view.
func (v *View) Aggregates() []*ra.Aggregate {
	var out []*ra.Aggregate
	for _, it := range v.Items {
		if it.IsAggregate() {
			out = append(out, it.Agg)
		}
	}
	return out
}

// PreservedAttrs returns, per table, the attributes preserved in V: those
// appearing in A either as group-by attributes or inside aggregates
// (Section 2.1).
func (v *View) PreservedAttrs(table string) []string {
	set := make(map[string]bool)
	add := func(cols []ra.Col) {
		for _, c := range cols {
			if c.Table == table {
				set[c.Name] = true
			}
		}
	}
	for _, it := range v.Items {
		if it.IsAggregate() {
			if it.Agg.Arg != nil {
				add(it.Agg.Arg.Cols(nil))
			}
		} else {
			add(it.Expr.Cols(nil))
		}
	}
	return sortedKeys(set)
}

// JoinAttrs returns the attributes of the table involved in join
// conditions (either referencing another table's key or being the
// referenced key).
func (v *View) JoinAttrs(table string) []string {
	set := make(map[string]bool)
	for _, j := range v.Joins {
		if j.Left == table {
			set[j.LeftAttr] = true
		}
		if j.Right == table {
			set[j.RightAttr] = true
		}
	}
	return sortedKeys(set)
}

// CondAttrs returns the attributes of the table involved in selection or
// join conditions — the attributes whose updates are "exposed"
// (Section 2.1).
func (v *View) CondAttrs(table string) []string {
	set := make(map[string]bool)
	for _, c := range v.Local[table] {
		for _, col := range c.Cols(nil) {
			if col.Table == table {
				set[col.Name] = true
			}
		}
	}
	for _, a := range v.JoinAttrs(table) {
		set[a] = true
	}
	return sortedKeys(set)
}

// HasExposedUpdates reports whether updates to the table can change
// attributes involved in selection or join conditions of this view
// (Section 2.1). The analysis combines the view's condition attributes
// with the schema's mutable-attribute declarations.
func (v *View) HasExposedUpdates(table string) bool {
	meta := v.cat.Table(table)
	for _, a := range v.CondAttrs(table) {
		if meta.IsMutable(a) {
			return true
		}
	}
	return false
}

// NonCSMASAttrTables returns the set of tables owning attributes involved
// in non-CSMAS aggregates (MIN/MAX or DISTINCT) — used by the elimination
// test of Section 3.3.
func (v *View) NonCSMASAttrTables() map[string]bool {
	out := make(map[string]bool)
	for _, agg := range v.Aggregates() {
		if isCSMASAgg(agg) {
			continue
		}
		if agg.Arg != nil {
			for _, c := range agg.Arg.Cols(nil) {
				out[c.Table] = true
			}
		}
	}
	return out
}

// isCSMASAgg mirrors aggregates.IsCSMAS; duplicated here to avoid an import
// cycle would be a smell — the rule is one line (Table 2): non-DISTINCT
// COUNT/SUM/AVG are CSMAS.
func isCSMASAgg(a *ra.Aggregate) bool {
	if a.Distinct {
		return false
	}
	return a.Func == ra.FuncCount || a.Func == ra.FuncSum || a.Func == ra.FuncAvg
}

// Plan builds an executable plan that recomputes the view from base-table
// relations: local conditions pushed to scans, joins applied in a
// connectivity-driven order, generalized projection on top.
func (v *View) Plan(src func(table string) *ra.Relation) (ra.Node, error) {
	node, err := v.DetailPlan(src)
	if err != nil {
		return nil, err
	}
	node = ra.GProject(node, v.Items...)
	if len(v.Having) > 0 {
		node = ra.Select(node, v.Having...)
	}
	return node, nil
}

// DetailPlan builds the plan for the view's detail rows: the selected and
// joined base tables before the generalized projection. The maintenance
// engine uses it to initialize the materialized view's component form.
func (v *View) DetailPlan(src func(table string) *ra.Relation) (ra.Node, error) {
	scan := func(t string) ra.Node {
		var n ra.Node = ra.Scan(t, src(t))
		if local := v.Local[t]; len(local) > 0 {
			n = ra.Select(n, local...)
		}
		return n
	}
	node := scan(v.Tables[0])
	included := map[string]bool{v.Tables[0]: true}
	pending := append([]JoinCond(nil), v.Joins...)
	for len(pending) > 0 {
		progress := false
		rest := pending[:0]
		for _, j := range pending {
			switch {
			case included[j.Left] && !included[j.Right]:
				node = ra.Join(node, scan(j.Right),
					ra.Col{Table: j.Left, Name: j.LeftAttr},
					ra.Col{Table: j.Right, Name: j.RightAttr})
				included[j.Right] = true
				progress = true
			case included[j.Right] && !included[j.Left]:
				node = ra.Join(node, scan(j.Left),
					ra.Col{Table: j.Right, Name: j.RightAttr},
					ra.Col{Table: j.Left, Name: j.LeftAttr})
				included[j.Left] = true
				progress = true
			case included[j.Left] && included[j.Right]:
				// Redundant join condition over already-joined tables:
				// apply as a selection.
				node = ra.Select(node, ra.Comparison{
					Op: ra.OpEQ,
					L:  ra.ColRef{Table: j.Left, Name: j.LeftAttr},
					R:  ra.ColRef{Table: j.Right, Name: j.RightAttr},
				})
				progress = true
			default:
				rest = append(rest, j)
			}
		}
		pending = rest
		if !progress {
			return nil, fmt.Errorf("gpsj: view %s: join conditions do not connect %v", v.Name, pending)
		}
	}
	return node, nil
}

// Evaluate recomputes the view from a storage DB — the brute-force baseline
// and the correctness oracle for maintenance tests.
func (v *View) Evaluate(db *storage.DB) (*ra.Relation, error) {
	plan, err := v.Plan(func(t string) *ra.Relation {
		return ra.FromTable(db.Table(t), t)
	})
	if err != nil {
		return nil, err
	}
	return plan.Eval()
}

// SQL renders the view definition back to SQL.
func (v *View) SQL() string {
	s := "SELECT "
	for i, it := range v.Items {
		if i > 0 {
			s += ", "
		}
		s += it.String()
	}
	s += " FROM "
	for i, t := range v.Tables {
		if i > 0 {
			s += ", "
		}
		s += t
	}
	var conds []string
	for _, t := range v.Tables {
		for _, c := range v.Local[t] {
			conds = append(conds, c.String())
		}
	}
	for _, j := range v.Joins {
		conds = append(conds, j.String())
	}
	if len(conds) > 0 {
		s += " WHERE "
		for i, c := range conds {
			if i > 0 {
				s += " AND "
			}
			s += c
		}
	}
	var gb []string
	for _, a := range v.GroupBy() {
		gb = append(gb, a.String())
	}
	if len(gb) > 0 {
		s += " GROUP BY "
		for i, a := range gb {
			if i > 0 {
				s += ", "
			}
			s += a
		}
	}
	if len(v.Having) > 0 {
		s += " HAVING " + ra.ConjString(v.Having)
	}
	return s
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
