package gpsj

import (
	"strings"
	"testing"

	"mindetail/internal/ra"
	"mindetail/internal/sqlparse"
	"mindetail/internal/tuple"
	"mindetail/internal/types"
)

func TestHavingParsedAndValidated(t *testing.T) {
	cat := retailCatalog(t)
	v := mustView(t, cat, "h", `
		SELECT time.month, COUNT(*) AS cnt FROM sale, time
		WHERE sale.timeid = time.id GROUP BY time.month
		HAVING cnt > 2`)
	if len(v.Having) != 1 {
		t.Fatalf("Having = %v", v.Having)
	}
	if got := v.SQL(); !strings.Contains(got, "HAVING cnt > 2") {
		t.Errorf("SQL = %q", got)
	}
}

func TestHavingValidationErrors(t *testing.T) {
	cat := retailCatalog(t)
	cases := []struct {
		sql, errSub string
	}{
		{`SELECT time.month, COUNT(*) AS cnt FROM sale, time
		  WHERE sale.timeid = time.id GROUP BY time.month HAVING nope > 1`, "not found"},
		{`SELECT time.month, COUNT(*) AS cnt FROM sale, time
		  WHERE sale.timeid = time.id GROUP BY time.month HAVING sale.price > 1`, "output columns"},
	}
	for _, c := range cases {
		s, err := sqlparse.Parse(c.sql)
		if err != nil {
			t.Fatal(err)
		}
		_, err = FromSelect(cat, "h", s.(*sqlparse.SelectStmt))
		if err == nil || !strings.Contains(err.Error(), c.errSub) {
			t.Errorf("%q: got %v, want %q", c.sql, err, c.errSub)
		}
	}
}

func TestApplyHaving(t *testing.T) {
	cat := retailCatalog(t)
	v := mustView(t, cat, "h", `
		SELECT sale.productid, COUNT(*) AS cnt FROM sale
		GROUP BY sale.productid HAVING cnt >= 2`)
	rel := ra.NewRelation(ra.Schema{{Name: "sale.productid"}, {Name: "cnt"}})
	rel.Rows = append(rel.Rows,
		tuple.Tuple{types.Int(100), types.Int(3)},
		tuple.Tuple{types.Int(101), types.Int(1)},
	)
	out, err := v.ApplyHaving(rel)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || out.Rows[0][0].AsInt() != 100 {
		t.Errorf("ApplyHaving:\n%s", out.Format())
	}

	// No HAVING: identity (same relation back, not a copy).
	v2 := mustView(t, cat, "nh", `
		SELECT sale.productid, COUNT(*) AS cnt FROM sale GROUP BY sale.productid`)
	out2, err := v2.ApplyHaving(rel)
	if err != nil {
		t.Fatal(err)
	}
	if out2 != rel {
		t.Error("ApplyHaving without HAVING should be identity")
	}
}

func TestHavingEvaluate(t *testing.T) {
	cat := retailCatalog(t)
	db := seedRetail(t, cat)
	v := mustView(t, cat, "h", `
		SELECT sale.productid, COUNT(*) AS cnt FROM sale
		GROUP BY sale.productid HAVING cnt >= 3`)
	out, err := v.Evaluate(db)
	if err != nil {
		t.Fatal(err)
	}
	// seedRetail: product 100 has 2 sales + product 101 has 2: none >= 3.
	for _, row := range out.Rows {
		if row[1].AsInt() < 3 {
			t.Errorf("HAVING leaked group %v", row)
		}
	}
}
