package gpsj

import (
	"strings"
	"testing"

	"mindetail/internal/ra"
	"mindetail/internal/schema"
	"mindetail/internal/sqlparse"
	"mindetail/internal/storage"
	"mindetail/internal/tuple"
	"mindetail/internal/types"
)

// retailCatalog builds the paper's running-example schema (Section 1.1).
func retailCatalog(t *testing.T) *schema.Catalog {
	t.Helper()
	ddl := `
	CREATE TABLE time (id INTEGER PRIMARY KEY, day INTEGER, month INTEGER, year INTEGER);
	CREATE TABLE product (id INTEGER PRIMARY KEY, brand VARCHAR MUTABLE, category VARCHAR);
	CREATE TABLE store (id INTEGER PRIMARY KEY, street_address VARCHAR, city VARCHAR, country VARCHAR, manager VARCHAR MUTABLE);
	CREATE TABLE sale (id INTEGER PRIMARY KEY,
		timeid INTEGER REFERENCES time,
		productid INTEGER REFERENCES product,
		storeid INTEGER REFERENCES store,
		price FLOAT);
	`
	return catalogFromDDL(t, ddl)
}

func catalogFromDDL(t *testing.T, ddl string) *schema.Catalog {
	t.Helper()
	stmts, err := sqlparse.ParseAll(ddl)
	if err != nil {
		t.Fatal(err)
	}
	cat := schema.NewCatalog()
	var fks []schema.ForeignKey
	for _, s := range stmts {
		ct := s.(*sqlparse.CreateTable)
		if err := cat.AddTable(ct.Table); err != nil {
			t.Fatal(err)
		}
		fks = append(fks, ct.FKs...)
	}
	for _, fk := range fks {
		if err := cat.AddForeignKey(fk); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

func mustView(t *testing.T, cat *schema.Catalog, name, sql string) *View {
	t.Helper()
	s, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	v, err := FromSelect(cat, name, s.(*sqlparse.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	return v
}

const productSalesSQL = `
	SELECT time.month, SUM(price) AS TotalPrice, COUNT(*) AS TotalCount,
	       COUNT(DISTINCT brand) AS DifferentBrands
	FROM sale, time, product
	WHERE time.year = 1997 AND sale.timeid = time.id AND sale.productid = product.id
	GROUP BY time.month`

func TestFromSelectProductSales(t *testing.T) {
	cat := retailCatalog(t)
	v := mustView(t, cat, "product_sales", productSalesSQL)

	if len(v.Tables) != 3 {
		t.Errorf("tables = %v", v.Tables)
	}
	if len(v.Joins) != 2 {
		t.Fatalf("joins = %v", v.Joins)
	}
	// Joins oriented with the key side on the right.
	for _, j := range v.Joins {
		if j.Left != "sale" {
			t.Errorf("join %s should have sale on the left", j)
		}
		if cat.Table(j.Right).Key != j.RightAttr {
			t.Errorf("join %s right side is not a key", j)
		}
	}
	if len(v.Local["time"]) != 1 || len(v.Local["sale"]) != 0 {
		t.Errorf("local = %v", v.Local)
	}
	// Resolution: SUM(price) must have been qualified to sale.price.
	agg := v.Items[1].Agg
	if agg.Arg.(ra.ColRef).Table != "sale" {
		t.Errorf("price resolved to %v", agg.Arg)
	}
	gb := v.GroupBy()
	if len(gb) != 1 || gb[0] != (Attr{Table: "time", Name: "month"}) {
		t.Errorf("GroupBy = %v", gb)
	}
	if got := len(v.Aggregates()); got != 3 {
		t.Errorf("aggregates = %d", got)
	}
}

func TestJoinOrientationKeyOnEitherSide(t *testing.T) {
	cat := retailCatalog(t)
	// Reversed condition: time.id = sale.timeid — must normalize the same.
	v := mustView(t, cat, "v", `
		SELECT time.month, COUNT(*) FROM sale, time
		WHERE time.id = sale.timeid GROUP BY time.month`)
	j := v.Joins[0]
	if j.Left != "sale" || j.Right != "time" || j.RightAttr != "id" {
		t.Errorf("join = %+v", j)
	}
}

func TestPreservedJoinCondAttrs(t *testing.T) {
	cat := retailCatalog(t)
	v := mustView(t, cat, "product_sales", productSalesSQL)

	if got := v.PreservedAttrs("sale"); len(got) != 1 || got[0] != "price" {
		t.Errorf("preserved(sale) = %v", got)
	}
	if got := v.PreservedAttrs("time"); len(got) != 1 || got[0] != "month" {
		t.Errorf("preserved(time) = %v", got)
	}
	if got := v.PreservedAttrs("product"); len(got) != 1 || got[0] != "brand" {
		t.Errorf("preserved(product) = %v", got)
	}
	if got := v.JoinAttrs("sale"); strings.Join(got, ",") != "productid,timeid" {
		t.Errorf("joinattrs(sale) = %v", got)
	}
	if got := v.JoinAttrs("time"); strings.Join(got, ",") != "id" {
		t.Errorf("joinattrs(time) = %v", got)
	}
	if got := v.CondAttrs("time"); strings.Join(got, ",") != "id,year" {
		t.Errorf("condattrs(time) = %v", got)
	}
}

func TestExposedUpdates(t *testing.T) {
	cat := retailCatalog(t)
	v := mustView(t, cat, "product_sales", productSalesSQL)
	// brand is mutable but not a condition attribute: not exposed.
	if v.HasExposedUpdates("product") {
		t.Error("product should not have exposed updates")
	}
	// No mutable attribute of time or sale at all.
	if v.HasExposedUpdates("time") || v.HasExposedUpdates("sale") {
		t.Error("time/sale should not have exposed updates")
	}

	// A schema where year is mutable makes time exposed for this view.
	cat2 := catalogFromDDL(t, `
		CREATE TABLE time (id INTEGER PRIMARY KEY, month INTEGER, year INTEGER MUTABLE);
		CREATE TABLE sale (id INTEGER PRIMARY KEY, timeid INTEGER REFERENCES time, price FLOAT);
	`)
	v2 := mustView(t, cat2, "v", `
		SELECT time.month, COUNT(*) FROM sale, time
		WHERE time.year = 1997 AND sale.timeid = time.id GROUP BY time.month`)
	if !v2.HasExposedUpdates("time") {
		t.Error("time with mutable year in a year-condition must be exposed")
	}
	if v2.HasExposedUpdates("sale") {
		t.Error("sale has no mutable attributes")
	}
}

func TestNonCSMASAttrTables(t *testing.T) {
	cat := retailCatalog(t)
	v := mustView(t, cat, "product_sales", productSalesSQL)
	got := v.NonCSMASAttrTables()
	if len(got) != 1 || !got["product"] {
		t.Errorf("NonCSMASAttrTables = %v", got)
	}

	v2 := mustView(t, cat, "v2", `
		SELECT sale.productid, SUM(price), COUNT(*) FROM sale GROUP BY sale.productid`)
	if len(v2.NonCSMASAttrTables()) != 0 {
		t.Errorf("CSMAS-only view reported non-CSMAS tables: %v", v2.NonCSMASAttrTables())
	}

	v3 := mustView(t, cat, "v3", `
		SELECT sale.productid, MAX(price) FROM sale GROUP BY sale.productid`)
	got3 := v3.NonCSMASAttrTables()
	if len(got3) != 1 || !got3["sale"] {
		t.Errorf("MAX view = %v", got3)
	}
}

func TestFromSelectErrors(t *testing.T) {
	cat := retailCatalog(t)
	cases := []struct {
		sql, errSub string
	}{
		{`SELECT nope.month, COUNT(*) FROM sale, nope WHERE sale.timeid = nope.id GROUP BY nope.month`, "unknown table"},
		{`SELECT month, COUNT(*) FROM sale, time, time WHERE sale.timeid = time.id GROUP BY month`, "twice"},
		{`SELECT month, COUNT(*) FROM sale, time WHERE sale.timeid < time.id GROUP BY month`, "equality join"},
		{`SELECT month, COUNT(*) FROM sale, time WHERE sale.timeid = time.month GROUP BY month`, "join on a key"},
		{`SELECT month, COUNT(*) FROM sale, time GROUP BY month`, "not connected"},
		{`SELECT price + 1, COUNT(*) FROM sale GROUP BY price + 1`, ""}, // caught at parse: group-by of expression
		{`SELECT MAX(price + 1) FROM sale`, "single attribute"},
		{`SELECT nothere, COUNT(*) FROM sale GROUP BY nothere`, "not found"},
		{`SELECT sale.id, sale.id FROM sale`, "duplicate output column"},
		{`SELECT month, COUNT(*) FROM sale, time WHERE sale.timeid + time.id = 3 GROUP BY month`, "must compare two columns"},
	}
	for _, c := range cases {
		s, perr := sqlparse.Parse(c.sql)
		if perr != nil {
			if c.errSub == "" {
				continue // expected parse-level rejection
			}
			t.Errorf("%q: parse error %v", c.sql, perr)
			continue
		}
		_, err := FromSelect(cat, "v", s.(*sqlparse.SelectStmt))
		if err == nil || !strings.Contains(err.Error(), c.errSub) {
			t.Errorf("%q: got %v, want error containing %q", c.sql, err, c.errSub)
		}
	}
}

func TestNoFromTables(t *testing.T) {
	cat := retailCatalog(t)
	_, err := FromSelect(cat, "v", &sqlparse.SelectStmt{})
	if err == nil {
		t.Error("empty FROM accepted")
	}
}

func seedRetail(t *testing.T, cat *schema.Catalog) *storage.DB {
	t.Helper()
	db := storage.NewDB(cat)
	ins := func(table string, vals ...types.Value) {
		t.Helper()
		if err := db.Insert(table, tuple.Tuple(vals)); err != nil {
			t.Fatal(err)
		}
	}
	ins("time", types.Int(1), types.Int(5), types.Int(1), types.Int(1997))
	ins("time", types.Int(2), types.Int(6), types.Int(1), types.Int(1997))
	ins("time", types.Int(3), types.Int(5), types.Int(2), types.Int(1998))
	ins("product", types.Int(100), types.Str("acme"), types.Str("tools"))
	ins("product", types.Int(101), types.Str("bolt"), types.Str("tools"))
	ins("store", types.Int(7), types.Str("a st"), types.Str("aalborg"), types.Str("dk"), types.Str("kim"))
	ins("sale", types.Int(1), types.Int(1), types.Int(100), types.Int(7), types.Float(10))
	ins("sale", types.Int(2), types.Int(1), types.Int(100), types.Int(7), types.Float(10))
	ins("sale", types.Int(3), types.Int(2), types.Int(101), types.Int(7), types.Float(5))
	ins("sale", types.Int(4), types.Int(3), types.Int(101), types.Int(7), types.Float(99))
	return db
}

func TestEvaluateProductSales(t *testing.T) {
	cat := retailCatalog(t)
	v := mustView(t, cat, "product_sales", productSalesSQL)
	db := seedRetail(t, cat)
	out, err := v.Evaluate(db)
	if err != nil {
		t.Fatal(err)
	}
	// Only month 1 of 1997 has sales (sale 4 is 1998): 3 rows, total 25,
	// 2 distinct brands.
	if out.Len() != 1 {
		t.Fatalf("view:\n%s", out.Format())
	}
	row := out.Rows[0]
	if row[0].AsInt() != 1 || row[1].AsFloat() != 25 || row[2].AsInt() != 3 || row[3].AsInt() != 2 {
		t.Errorf("row = %v", row)
	}
}

func TestEvaluateSingleTableView(t *testing.T) {
	cat := retailCatalog(t)
	v := mustView(t, cat, "by_product", `
		SELECT sale.productid, SUM(price) AS total, COUNT(*) AS cnt
		FROM sale GROUP BY sale.productid`)
	db := seedRetail(t, cat)
	out, err := v.Evaluate(db)
	if err != nil {
		t.Fatal(err)
	}
	s := out.Sorted()
	if s.Len() != 2 {
		t.Fatalf("view:\n%s", s.Format())
	}
	if s.Rows[0][0].AsInt() != 100 || s.Rows[0][1].AsFloat() != 20 || s.Rows[0][2].AsInt() != 2 {
		t.Errorf("row 0 = %v", s.Rows[0])
	}
	if s.Rows[1][0].AsInt() != 101 || s.Rows[1][1].AsFloat() != 104 || s.Rows[1][2].AsInt() != 2 {
		t.Errorf("row 1 = %v", s.Rows[1])
	}
}

func TestSQLRoundTrip(t *testing.T) {
	cat := retailCatalog(t)
	v := mustView(t, cat, "product_sales", productSalesSQL)
	sql := v.SQL()
	for _, want := range []string{
		"SELECT", "time.month", "SUM(sale.price) AS totalprice", "COUNT(*)",
		"COUNT(DISTINCT product.brand)", "FROM sale, time, product",
		"time.year = 1997", "sale.timeid = time.id", "GROUP BY time.month",
	} {
		if !strings.Contains(sql, want) {
			t.Errorf("SQL() missing %q:\n%s", want, sql)
		}
	}
	// The rendered SQL must re-parse and re-normalize to the same shape.
	s, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	v2, err := FromSelect(cat, "again", s.(*sqlparse.SelectStmt))
	if err != nil {
		t.Fatalf("re-normalize: %v", err)
	}
	if len(v2.Joins) != len(v.Joins) || len(v2.Items) != len(v.Items) {
		t.Error("round trip changed view shape")
	}
}

func TestEvaluateMatchesManualPlan(t *testing.T) {
	cat := retailCatalog(t)
	db := seedRetail(t, cat)
	v := mustView(t, cat, "v", `
		SELECT product.category, COUNT(*) AS cnt, MIN(price) AS lo
		FROM sale, product WHERE sale.productid = product.id
		GROUP BY product.category`)
	out, err := v.Evaluate(db)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("got:\n%s", out.Format())
	}
	if out.Rows[0][1].AsInt() != 4 || out.Rows[0][2].AsFloat() != 5 {
		t.Errorf("row = %v", out.Rows[0])
	}
}
