package types

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull:   "NULL",
		KindBool:   "BOOLEAN",
		KindInt:    "INTEGER",
		KindFloat:  "FLOAT",
		KindString: "VARCHAR",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(42).String(); got != "Kind(42)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if v := Int(7); v.Kind() != KindInt || v.AsInt() != 7 {
		t.Errorf("Int(7) = %v", v)
	}
	if v := Float(2.5); v.Kind() != KindFloat || v.AsFloat() != 2.5 {
		t.Errorf("Float(2.5) = %v", v)
	}
	if v := Str("abc"); v.Kind() != KindString || v.AsString() != "abc" {
		t.Errorf("Str = %v", v)
	}
	if v := Bool(true); v.Kind() != KindBool || !v.AsBool() {
		t.Errorf("Bool(true) = %v", v)
	}
	if v := Bool(false); v.AsBool() {
		t.Errorf("Bool(false) = %v", v)
	}
	if !Null.IsNull() || Null.Kind() != KindNull {
		t.Errorf("Null = %v", Null)
	}
	if Int(3).IsNull() {
		t.Error("Int(3).IsNull() = true")
	}
}

func TestAsFloatWidensInt(t *testing.T) {
	if got := Int(4).AsFloat(); got != 4.0 {
		t.Errorf("Int(4).AsFloat() = %v", got)
	}
}

func TestAccessorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("AsInt on string", func() { Str("x").AsInt() })
	mustPanic("AsFloat on string", func() { Str("x").AsFloat() })
	mustPanic("AsString on int", func() { Int(1).AsString() })
	mustPanic("AsBool on int", func() { Int(1).AsBool() })
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{Bool(true), "TRUE"},
		{Bool(false), "FALSE"},
		{Int(-12), "-12"},
		{Float(2.5), "2.5"},
		{Str("it's"), "'it''s'"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
	if got := Str("plain").Display(); got != "plain" {
		t.Errorf("Display = %q", got)
	}
	if got := Int(3).Display(); got != "3" {
		t.Errorf("Display = %q", got)
	}
}

func TestEqualAndIdentical(t *testing.T) {
	if !Equal(Int(2), Float(2.0)) {
		t.Error("Int(2) != Float(2.0)")
	}
	if Equal(Null, Null) {
		t.Error("NULL = NULL should be false (SQL)")
	}
	if !Identical(Null, Null) {
		t.Error("Identical(NULL, NULL) should be true (grouping)")
	}
	if Identical(Null, Int(0)) || Identical(Int(0), Null) {
		t.Error("NULL identical to 0")
	}
	if Equal(Str("a"), Int(1)) {
		t.Error("cross-kind equal")
	}
	if !Identical(Str("a"), Str("a")) {
		t.Error("string identity")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(2), Int(2), 0},
		{Int(2), Float(2.5), -1},
		{Float(3), Int(2), 1},
		{Str("a"), Str("b"), -1},
		{Bool(false), Bool(true), -1},
		{Null, Int(0), -1},    // NULL sorts first
		{Str("a"), Int(9), 1}, // strings after numerics
		{Null, Null, 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestArithmetic(t *testing.T) {
	check := func(got Value, err error, want Value) {
		t.Helper()
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		if !Identical(got, want) && !(got.IsNull() && want.IsNull()) {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	v, err := Add(Int(2), Int(3))
	check(v, err, Int(5))
	if v.Kind() != KindInt {
		t.Errorf("int+int should stay int, got %v", v.Kind())
	}
	v, err = Add(Int(2), Float(0.5))
	check(v, err, Float(2.5))
	v, err = Sub(Int(5), Int(7))
	check(v, err, Int(-2))
	v, err = Mul(Float(1.5), Int(4))
	check(v, err, Float(6))
	v, err = Div(Int(7), Int(2))
	check(v, err, Float(3.5))
	if _, err := Div(Int(1), Int(0)); err == nil {
		t.Error("division by zero: want error")
	}
	v, err = Add(Null, Int(1))
	check(v, err, Null)
	if _, err := Add(Str("x"), Int(1)); err == nil {
		t.Error("string arithmetic: want error")
	}
}

func TestEncodeDistinguishesValues(t *testing.T) {
	vals := []Value{
		Null, Bool(false), Bool(true),
		Int(0), Int(1), Int(-1), Int(math.MaxInt64), Int(math.MinInt64),
		Float(0), Float(0.5), Float(-0.5),
		Str(""), Str("a"), Str("ab"), Str("b"),
	}
	for i, a := range vals {
		for j, b := range vals {
			ea := Encode(nil, a)
			eb := Encode(nil, b)
			same := bytes.Equal(ea, eb)
			if Identical(a, b) != same {
				t.Errorf("encode collision mismatch: %v (i=%d) vs %v (j=%d): identical=%v, encodeEqual=%v",
					a, i, b, j, Identical(a, b), same)
			}
		}
	}
}

func TestEncodeIntFloatCollide(t *testing.T) {
	if !bytes.Equal(Encode(nil, Int(2)), Encode(nil, Float(2))) {
		t.Error("Int(2) and Float(2) must encode identically for grouping")
	}
}

func TestEncodeSelfDelimiting(t *testing.T) {
	// ("a","bc") must not collide with ("ab","c") when concatenated.
	ab := Encode(Encode(nil, Str("a")), Str("bc"))
	ba := Encode(Encode(nil, Str("ab")), Str("c"))
	if bytes.Equal(ab, ba) {
		t.Error("concatenated encodings collide: encoding not self-delimiting")
	}
}

func TestEncodedSizeMatchesEncode(t *testing.T) {
	vals := []Value{Null, Bool(true), Int(12345), Float(3.14), Str("hello world")}
	for _, v := range vals {
		if got, want := EncodedSize(v), len(Encode(nil, v)); got != want {
			t.Errorf("EncodedSize(%v) = %d, len(Encode) = %d", v, got, want)
		}
	}
}

func TestPropertyCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return Compare(Int(a), Int(b)) == -Compare(Int(b), Int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyCompareTransitiveOnInts(t *testing.T) {
	f := func(a, b, c int64) bool {
		va, vb, vc := Int(a), Int(b), Int(c)
		if Compare(va, vb) <= 0 && Compare(vb, vc) <= 0 {
			return Compare(va, vc) <= 0
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyEncodeInjectiveInts(t *testing.T) {
	f := func(a, b int64) bool {
		same := bytes.Equal(Encode(nil, Int(a)), Encode(nil, Int(b)))
		return same == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyEncodeInjectiveStrings(t *testing.T) {
	f := func(a, b string) bool {
		same := bytes.Equal(Encode(nil, Str(a)), Encode(nil, Str(b)))
		return same == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyAddCommutative(t *testing.T) {
	f := func(a, b int32) bool {
		x, err1 := Add(Int(int64(a)), Float(float64(b)))
		y, err2 := Add(Float(float64(b)), Int(int64(a)))
		return err1 == nil && err2 == nil && Identical(x, y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
