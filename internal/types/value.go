// Package types defines the value model of the mindetail engine: typed
// scalar values, ordering, arithmetic, and a canonical byte encoding used
// for grouping and hashing.
//
// The paper assumes base tables contain no null values (Section 2.1);
// KindNull exists only so that expression evaluation has a well-defined
// error value and so that aggregate results over empty groups can be
// represented. The storage layer rejects nulls in base data.
package types

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the runtime type of a Value.
type Kind uint8

// The supported kinds. The paper's examples use integers, floats (prices)
// and strings (brands, cities); booleans appear as comparison results.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBool:
		return "BOOLEAN"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "VARCHAR"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a scalar runtime value. The zero Value is NULL.
//
// Value is a small immutable struct passed by value; it deliberately avoids
// interface boxing so that tuples are flat slices with no per-field heap
// allocation for numeric data.
type Value struct {
	kind Kind
	i    int64   // KindInt, and KindBool (0/1)
	f    float64 // KindFloat
	s    string  // KindString
}

// Null is the NULL value.
var Null = Value{}

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a float value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// Str returns a string value.
func Str(v string) Value { return Value{kind: KindString, s: v} }

// Bool returns a boolean value.
func Bool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// Kind reports the runtime kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the integer payload. It panics unless v is an integer or a
// boolean; use Coerce helpers for lenient access.
func (v Value) AsInt() int64 {
	if v.kind != KindInt && v.kind != KindBool {
		panic(fmt.Sprintf("types: AsInt on %s value", v.kind))
	}
	return v.i
}

// AsFloat returns the numeric payload widened to float64. It panics unless
// v is numeric.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.i)
	default:
		panic(fmt.Sprintf("types: AsFloat on %s value", v.kind))
	}
}

// AsString returns the string payload. It panics unless v is a string.
func (v Value) AsString() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("types: AsString on %s value", v.kind))
	}
	return v.s
}

// AsBool returns the boolean payload. It panics unless v is a boolean.
func (v Value) AsBool() bool {
	if v.kind != KindBool {
		panic(fmt.Sprintf("types: AsBool on %s value", v.kind))
	}
	return v.i != 0
}

// IsNumeric reports whether v is an integer or a float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// String renders the value in SQL literal syntax.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.i != 0 {
			return "TRUE"
		}
		return "FALSE"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	default:
		return fmt.Sprintf("Value(kind=%d)", v.kind)
	}
}

// Display renders the value for tabular output (strings unquoted).
func (v Value) Display() string {
	if v.kind == KindString {
		return v.s
	}
	return v.String()
}

// Equal reports value equality with numeric coercion: Int(2) equals
// Float(2.0). NULL equals nothing, including NULL (SQL semantics); use
// Identical for grouping.
func Equal(a, b Value) bool {
	if a.kind == KindNull || b.kind == KindNull {
		return false
	}
	c, ok := compare(a, b)
	return ok && c == 0
}

// Identical reports whether a and b are indistinguishable for grouping and
// duplicate elimination: NULL is identical to NULL, and numeric coercion
// applies as in Equal.
func Identical(a, b Value) bool {
	if a.kind == KindNull && b.kind == KindNull {
		return true
	}
	if a.kind == KindNull || b.kind == KindNull {
		return false
	}
	c, ok := compare(a, b)
	return ok && c == 0
}

// Compare orders a and b, returning -1, 0, or +1. Numeric kinds compare by
// value across Int/Float. Values of incomparable kinds order by kind (NULL
// first, then bool, numeric, string) so sorting is total and deterministic.
func Compare(a, b Value) int {
	if c, ok := compare(a, b); ok {
		return c
	}
	// Incomparable kinds: order by kind tag, numerics unified.
	ka, kb := orderClass(a.kind), orderClass(b.kind)
	switch {
	case ka < kb:
		return -1
	case ka > kb:
		return 1
	default:
		return 0
	}
}

func orderClass(k Kind) int {
	switch k {
	case KindNull:
		return 0
	case KindBool:
		return 1
	case KindInt, KindFloat:
		return 2
	default: // KindString
		return 3
	}
}

// compare returns the ordering of two comparable values; ok is false when
// the kinds are incomparable (e.g. string vs int) or either side is NULL.
func compare(a, b Value) (int, bool) {
	if a.kind == KindNull || b.kind == KindNull {
		return 0, false
	}
	if a.IsNumeric() && b.IsNumeric() {
		if a.kind == KindInt && b.kind == KindInt {
			switch {
			case a.i < b.i:
				return -1, true
			case a.i > b.i:
				return 1, true
			default:
				return 0, true
			}
		}
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1, true
		case af > bf:
			return 1, true
		default:
			return 0, true
		}
	}
	if a.kind != b.kind {
		return 0, false
	}
	switch a.kind {
	case KindBool:
		switch {
		case a.i < b.i:
			return -1, true
		case a.i > b.i:
			return 1, true
		default:
			return 0, true
		}
	case KindString:
		return strings.Compare(a.s, b.s), true
	default:
		return 0, false
	}
}

// Add returns a+b with integer arithmetic when both sides are integers and
// float arithmetic otherwise. NULL propagates.
func Add(a, b Value) (Value, error) { return arith(a, b, "+") }

// Sub returns a-b. NULL propagates.
func Sub(a, b Value) (Value, error) { return arith(a, b, "-") }

// Mul returns a*b. NULL propagates.
func Mul(a, b Value) (Value, error) { return arith(a, b, "*") }

// Div returns a/b; integer operands use float division to match SQL AVG
// expectations of the examples. Division by zero is an error.
func Div(a, b Value) (Value, error) { return arith(a, b, "/") }

func arith(a, b Value, op string) (Value, error) {
	if a.kind == KindNull || b.kind == KindNull {
		return Null, nil
	}
	if !a.IsNumeric() || !b.IsNumeric() {
		return Null, fmt.Errorf("types: %s %s %s: non-numeric operand", a, op, b)
	}
	if a.kind == KindInt && b.kind == KindInt && op != "/" {
		switch op {
		case "+":
			return Int(a.i + b.i), nil
		case "-":
			return Int(a.i - b.i), nil
		case "*":
			return Int(a.i * b.i), nil
		}
	}
	af, bf := a.AsFloat(), b.AsFloat()
	switch op {
	case "+":
		return Float(af + bf), nil
	case "-":
		return Float(af - bf), nil
	case "*":
		return Float(af * bf), nil
	case "/":
		if bf == 0 {
			return Null, fmt.Errorf("types: division by zero")
		}
		return Float(af / bf), nil
	}
	return Null, fmt.Errorf("types: unknown operator %q", op)
}

// EncodedSize is the number of bytes Encode appends for v, used by storage
// statistics. Strings cost their length plus a 4-byte length prefix; other
// kinds cost a tag byte plus fixed payload.
func EncodedSize(v Value) int {
	switch v.kind {
	case KindNull:
		return 1
	case KindBool:
		return 2
	case KindInt, KindFloat:
		return 9
	case KindString:
		return 5 + len(v.s)
	default:
		return 1
	}
}

// Encode appends a canonical, self-delimiting byte encoding of v to dst.
// Identical values (per Identical) encode identically: integers that fit are
// encoded as floats are not — instead both Int and Float of equal numeric
// value normalize to the float bit pattern when the value is integral, so
// Int(2) and Float(2) group together, matching Identical.
func Encode(dst []byte, v Value) []byte {
	switch v.kind {
	case KindNull:
		return append(dst, 0)
	case KindBool:
		return append(dst, 1, byte(v.i))
	case KindInt, KindFloat:
		// Normalize numerics to a float64 bit pattern when exactly
		// representable so Int/Float of equal value collide; large
		// integers keep an exact integer encoding.
		if v.kind == KindInt {
			f := float64(v.i)
			if int64(f) == v.i {
				return appendU64(append(dst, 2), math.Float64bits(f))
			}
			return appendU64(append(dst, 3), uint64(v.i))
		}
		return appendU64(append(dst, 2), math.Float64bits(v.f))
	case KindString:
		dst = append(dst, 4)
		dst = appendU32(dst, uint32(len(v.s)))
		return append(dst, v.s...)
	default:
		return append(dst, 0xFF)
	}
}

func appendU64(dst []byte, u uint64) []byte {
	return append(dst,
		byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
		byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
}

func appendU32(dst []byte, u uint32) []byte {
	return append(dst, byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
}
